package gsi

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"

	"gsi/internal/core"
)

// isASCII reports whether s contains only ASCII bytes. Case-folding
// assertions are gated on it: for some Unicode code points (the long s,
// the Kelvin sign) ToLower(ToUpper(x)) differs from ToLower(x), so only
// ASCII spellings are guaranteed to collapse under the registry's
// lower-casing.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// FuzzCacheKey drives CacheKey with arbitrary workload/parameter
// spellings and scheduling-knob settings, asserting the canonicalization
// invariants the serve layer's result cache is built on:
//
//   - the key is a stable 64-hex content address,
//   - engine mode, parallel worker count, dense ticking, express routing,
//     and trace presence are erased (all produce byte-identical Reports),
//   - cosmetic spellings — name case and surrounding whitespace — collapse,
//   - an explicitly default-valued parameter hashes like an absent one
//     when the workload resolves in the registry,
//   - engine-relevant differences (protocol, Timeline, SkipVerify,
//     ablations, architectural parameters, the workload itself) all
//     separate keys.
func FuzzCacheKey(f *testing.F) {
	f.Add("uts", "nodes", "6000", uint8(0), uint8(0), false, false, false, true, uint16(0))
	f.Add(" UTS ", "NODES", " 6000 ", uint8(1), uint8(4), true, false, false, false, uint16(64))
	f.Add("stencil", "steps", "3", uint8(2), uint8(2), false, true, true, true, uint16(16))
	f.Add("steal", "tasks", "40", uint8(3), uint8(7), true, true, false, true, uint16(32))
	f.Add("implicit", "databytes", "", uint8(0), uint8(0), false, false, false, true, uint16(1))
	f.Add("no-such-workload", "whatever", "value", uint8(0), uint8(0), false, false, false, false, uint16(0))
	f.Add("", "", "", uint8(0), uint8(0), false, false, false, true, uint16(0))
	f.Add("gups", "updates", "0x10", uint8(1), uint8(3), false, false, true, false, uint16(8))
	f.Fuzz(func(t *testing.T, wl, pname, pval string, engineSel, parallel uint8, timeline, skipVerify, sfifo, express bool, mshr uint16) {
		modes := []EngineMode{EngineSkip, EngineQuiescent, EngineDense, EngineParallel}
		sys := DefaultConfig()
		sys.Engine = modes[int(engineSel)%len(modes)]
		sys.Parallel = int(parallel % 8)
		sys.Express = express
		if mshr > 0 {
			sys.MSHREntries = int(mshr)
		}
		opt := Options{System: sys, Protocol: DeNovo, Timeline: timeline, SkipVerify: skipVerify, SFIFO: sfifo}
		params := WorkloadValues{}
		if pname != "" {
			params[pname] = pval
		}

		key := CacheKey(opt, wl, params)
		if len(key) != 64 {
			t.Fatalf("key %q is not 64 hex chars", key)
		}
		for _, c := range key {
			if !strings.ContainsRune("0123456789abcdef", c) {
				t.Fatalf("key %q is not lowercase hex", key)
			}
		}
		if again := CacheKey(opt, wl, params); again != key {
			t.Fatalf("CacheKey is not deterministic: %s then %s", key, again)
		}

		// Scheduling erasure: every engine mode, worker count, dense/express
		// setting, and trace attachment demands byte-identical Reports, so
		// all must share one cache identity.
		sched := opt
		sched.System.Engine = modes[(int(engineSel)+1)%len(modes)]
		sched.System.Parallel = (sys.Parallel + 3) % 8
		sched.System.DenseTicking = !sys.DenseTicking
		sched.System.Express = !express
		sched.Trace = NewTrace()
		if got := CacheKey(sched, wl, params); got != key {
			t.Fatalf("scheduling knobs changed the key: %s vs %s", got, key)
		}

		// Spelling collapse: whitespace padding always; case only for ASCII.
		spelledW, spelledN := "  "+wl+"\t", pname
		if isASCII(wl) {
			spelledW = "  " + strings.ToUpper(wl) + "\t"
		}
		spelledParams := WorkloadValues{}
		if pname != "" {
			if isASCII(pname) {
				spelledN = strings.ToUpper(pname)
			}
			spelledN = " " + spelledN + " "
			spelledParams[spelledN] = "\t" + pval + " "
		}
		// Padding can collide two distinct fuzzed names (e.g. "n" and
		// " n"), so only assert when the respelling still trims back to
		// the same single entry.
		if pname == "" || strings.ToLower(strings.TrimSpace(spelledN)) == strings.ToLower(strings.TrimSpace(pname)) {
			if got := CacheKey(opt, spelledW, spelledParams); got != key {
				t.Fatalf("cosmetic respelling changed the key: %s vs %s", got, key)
			}
		}

		// Default-param collapse: when the workload resolves, writing any
		// schema parameter at its default value is a no-op.
		canonical := strings.ToLower(strings.TrimSpace(wl))
		if e, ok := Workloads().Lookup(canonical); ok {
			defaults := e.Defaults()
			bare := CacheKey(opt, wl, nil)
			for name, value := range defaults {
				if got := CacheKey(opt, wl, WorkloadValues{name: value}); got != bare {
					t.Fatalf("default-valued %s=%s changed the key: %s vs %s", name, value, got, bare)
				}
				break
			}
		}

		// Engine-relevant differences must all separate keys — from the
		// base and from each other.
		moreCycles := opt
		moreCycles.System.MaxCycles = sys.MaxCycles + 1
		moreMSHR := opt
		moreMSHR.System.MSHREntries = sys.MSHREntries + 1
		variants := map[string]string{
			"base":         key,
			"protocol":     CacheKey(Options{System: sys, Protocol: GPUCoherence, Timeline: timeline, SkipVerify: skipVerify, SFIFO: sfifo}, wl, params),
			"timeline":     CacheKey(Options{System: sys, Protocol: DeNovo, Timeline: !timeline, SkipVerify: skipVerify, SFIFO: sfifo}, wl, params),
			"skip-verify":  CacheKey(Options{System: sys, Protocol: DeNovo, Timeline: timeline, SkipVerify: !skipVerify, SFIFO: sfifo}, wl, params),
			"sfifo":        CacheKey(Options{System: sys, Protocol: DeNovo, Timeline: timeline, SkipVerify: skipVerify, SFIFO: !sfifo}, wl, params),
			"strong-cycle": CacheKey(Options{System: sys, Protocol: DeNovo, Timeline: timeline, SkipVerify: skipVerify, SFIFO: sfifo, StrongCycle: true}, wl, params),
			"max-cycles":   CacheKey(moreCycles, wl, params),
			"mshr":         CacheKey(moreMSHR, wl, params),
			"workload":     CacheKey(opt, wl+" -other", params),
		}
		seen := map[string]string{}
		for name, k := range variants {
			if prev, dup := seen[k]; dup {
				t.Fatalf("engine-relevant variants %s and %s collide on %s", name, prev, k)
			}
			seen[k] = name
		}
	})
}

// FuzzDecodeReport feeds DecodeReport arbitrary bytes (it must never
// panic) and round-trips constructed reports through every
// IncludeEngineStats x IncludeTimeline opt-in combination, asserting the
// fold-back is exact: an opted-in block decodes back into the inline
// field, an absent block leaves it zero, and re-encoding a decoded
// document reproduces it byte for byte.
func FuzzDecodeReport(f *testing.F) {
	f.Add([]byte("{}"), "uts", uint64(100), uint64(7), uint64(3), uint64(42), uint64(5), uint64(12), true)
	f.Add([]byte("null"), "", uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), false)
	f.Add([]byte(`{"workload":"uts","cycles":1`), "stencil", uint64(1), uint64(2), uint64(3), uint64(4), uint64(5), uint64(6), true)
	f.Add([]byte(`{"engineStats":{"steps":-1}}`), "steal", uint64(9), uint64(8), uint64(7), uint64(6), uint64(5), uint64(4), false)
	f.Add([]byte(`{"timelineData":{"bucketWidth":0,"sms":[[{"bogus":1}]]}}`), "gups", uint64(2), uint64(0), uint64(1), uint64(0), uint64(1), uint64(0), true)
	f.Fuzz(func(t *testing.T, raw []byte, wl string, cycles, memData, whereL1, steps, jumps, skipped uint64, withTimeline bool) {
		// Arbitrary bytes: any error is fine, a panic is the bug.
		if r, err := DecodeReport(raw); err == nil && r == nil {
			t.Fatal("DecodeReport returned nil report and nil error")
		}

		// json.Marshal escapes invalid UTF-8 bytes as �, which decodes
		// to a literal U+FFFD that re-encodes unescaped — so byte-exact
		// round-tripping is only promised for valid UTF-8. Apply the same
		// replacement Marshal would before building the report.
		wl = strings.ToValidUTF8(wl, "�")
		base := &Report{Workload: wl, Protocol: DeNovo.String(), Cycles: cycles}
		base.Counts.Cycles[MemData] = memData
		base.Counts.MemData[WhereL1] = whereL1
		base.Counts.MemStruct[StructMSHRFull] = skipped % 97
		base.PerSM = []Counts{base.Counts}
		base.InstrsIssued = cycles / 2
		base.EngineStats = EngineStats{
			Steps: steps, Jumps: jumps, SkippedCycles: skipped,
			ExpressDeliveries: steps % 13, ExpressDemotions: jumps % 5,
		}
		base.EngineStats.JumpHist[int(jumps%16)] = jumps
		if withTimeline {
			base.Timeline = "SM0 |####|"
			col := core.TimelineColumn{}
			col.Counts[MemData] = memData
			base.TimelineData = &core.TimelineSnapshot{
				BucketWidth: 1 + cycles%512,
				SMs:         [][]core.TimelineColumn{{col}, {}},
			}
		}

		for _, combo := range []struct {
			stats, timeline bool
		}{{false, false}, {true, false}, {false, true}, {true, true}} {
			rep := *base
			if combo.stats {
				rep.IncludeEngineStats()
			}
			if combo.timeline {
				rep.IncludeTimeline()
			}
			doc, err := rep.JSON()
			if err != nil {
				t.Fatalf("encoding (stats=%v timeline=%v): %v", combo.stats, combo.timeline, err)
			}
			dec, err := DecodeReport(doc)
			if err != nil {
				t.Fatalf("decoding own encoding (stats=%v timeline=%v): %v\n%s", combo.stats, combo.timeline, err, doc)
			}
			if combo.stats {
				if dec.Scheduling == nil || dec.EngineStats != base.EngineStats {
					t.Fatalf("scheduling block did not fold back: %+v vs %+v", dec.EngineStats, base.EngineStats)
				}
			} else if dec.Scheduling != nil || dec.EngineStats != (EngineStats{}) {
				t.Fatalf("scheduling leaked into a non-opted-in document: %+v", dec.EngineStats)
			}
			if combo.timeline && withTimeline {
				if dec.TimelineData == nil || dec.TimelineData.BucketWidth != base.TimelineData.BucketWidth {
					t.Fatalf("timeline block did not fold back: %+v", dec.TimelineData)
				}
				if len(dec.TimelineData.SMs) != len(base.TimelineData.SMs) {
					t.Fatalf("timeline SM count drifted: %d vs %d", len(dec.TimelineData.SMs), len(base.TimelineData.SMs))
				}
			} else if dec.TimelineData != nil {
				t.Fatalf("timeline data leaked into a non-opted-in document")
			}
			if dec.Cycles != base.Cycles || dec.Counts != base.Counts {
				t.Fatalf("core fields drifted through the round trip")
			}
			again, err := dec.JSON()
			if err != nil {
				t.Fatalf("re-encoding decoded report: %v", err)
			}
			if !bytes.Equal(doc, again) {
				t.Fatalf("encode(decode(doc)) != doc (stats=%v timeline=%v):\n%s\nvs\n%s",
					combo.stats, combo.timeline, doc, again)
			}
		}
	})
}
