package gsi

import "testing"

// spinShape returns the spin-dominated tree-search shapes the ROADMAP's
// event-density-ceiling item describes: one warp per SM, so nearly all
// machine activity is lock/queue traffic crossing the mesh, and per-hop
// message movement is what used to bound every skip-ahead jump to 1-2
// cycles.
func spinUTS() Workload {
	return NewUTSWith(UTS{Seed: 0xC0FFEE, Nodes: 250, FrontierMin: 60,
		Blocks: 15, WarpsPerBlock: 1, Work: 16, FMAs: 4})
}

func spinUTSD() Workload {
	return NewUTSDWith(UTSD{Seed: 0xC0FFEE, Nodes: 250, FrontierMin: 60,
		Blocks: 15, WarpsPerBlock: 1, Work: 16, FMAs: 4, LQCap: 128})
}

// TestExpressBreaksEventDensityCeiling guards the point of express
// routing: on mesh-bound spin traffic (UTS/UTSD with single-warp SMs),
// the skip engine must route traversals express, take jumps, and skip
// strictly more cycles than it can with express disabled — the regime
// where per-hop events used to collapse every jump. Result bytes are
// covered by the engine diff tests; this test pins the scheduling-cost
// claim.
func TestExpressBreaksEventDensityCeiling(t *testing.T) {
	cases := []struct {
		name string
		w    func() Workload
	}{
		{"uts", spinUTS},
		{"utsd", spinUTSD},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(express bool) EngineStats {
				sys := DefaultConfig()
				sys.Engine = EngineSkip
				sys.Express = express
				rep, err := Run(Options{System: sys, Protocol: DeNovo}, tc.w())
				if err != nil {
					t.Fatal(err)
				}
				return rep.EngineStats
			}
			on, off := run(true), run(false)
			if on.Jumps == 0 {
				t.Fatalf("no jumps with express routing: %+v", on)
			}
			if on.ExpressDeliveries == 0 {
				t.Fatalf("spin traffic never completed an express traversal: %+v", on)
			}
			if on.ExpressDemotions == 0 {
				t.Fatalf("contending spin traffic never demoted a flit (the congestion-adaptive switch never fired): %+v", on)
			}
			if on.SkippedCycles <= off.SkippedCycles {
				t.Errorf("express routing did not widen the jumped windows: %d skipped cycles with express, %d without",
					on.SkippedCycles, off.SkippedCycles)
			}
			if off.ExpressDeliveries != 0 || off.ExpressDemotions != 0 {
				t.Errorf("express counters nonzero with express disabled: %+v", off)
			}
			t.Logf("express on: %+v", on)
			t.Logf("express off: %+v", off)
		})
	}
}
