package gsi

// Canonical hashing for content-addressed results.
//
// A simulation is fully determined by (Options, workload name, workload
// parameters): runs are single-threaded and deterministic, and the engine
// modes are byte-identical by contract (engine_diff_test.go), so two
// requests that canonicalize to the same inputs must produce the same
// Report bytes. CacheKey turns that determinism into a content address —
// the soundness argument behind the serve layer's result cache (see
// docs/ARCHITECTURE.md, "Sweep serving and the result cache").

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// CanonicalOptions normalizes an Options value so that two configurations
// demanding byte-identical Reports compare (and hash) equal:
//
//   - defaults are materialized (a zero System hashes like an explicit
//     DefaultConfig),
//   - the scheduling knobs — Engine, DenseTicking, Express, Parallel —
//     are reset to their defaults, because every engine mode produces
//     byte-identical results (the cross-engine contract enforced by
//     engine_diff_test.go, which includes the parallel tick engine at any
//     worker count); they change wall-clock cost, never the Report,
//   - Trace is cleared: tracing observes a run without perturbing it, so
//     a traced and an untraced run share one cache identity. (The field
//     is also tagged out of JSON, so it never reaches the hash document
//     either way.)
//
// Every other field stays significant. In particular MaxCycles (a tighter
// watchdog can fail a run that a looser one completes), Timeline (it adds
// a rendered block to the Report), and SkipVerify (it changes which runs
// error) all separate cache entries.
func CanonicalOptions(opt Options) Options {
	opt = opt.withDefaults()
	opt.System.Engine = EngineSkip
	opt.System.DenseTicking = false
	opt.System.Express = true
	opt.System.Parallel = 0
	opt.Trace = nil
	return opt
}

// CacheKey returns the content address of one simulation: a SHA-256 hash
// (hex) over a stable JSON encoding of the canonicalized Options, the
// workload's registry name, and its parameter overrides. Two invocations
// hash equal exactly when they demand byte-identical Reports, so a cache
// keyed by this string may serve one run's serialized Report for the
// other — the serve layer's core invariant.
//
// Parameters are canonicalized through the workload's registry schema
// when the name resolves: overrides are layered over the schema defaults,
// so an explicit default-valued parameter hashes like an absent one, and
// map ordering never matters (names are sorted). Names are lower-cased
// and values trimmed, matching how the registry parses them. An unknown
// workload name or an override naming no schema parameter still produces
// a stable key — such jobs fail at Run time and failures are never
// cached, so their keys are inert.
func CacheKey(opt Options, workload string, params WorkloadValues) string {
	type pair struct {
		Name, Value string
	}
	workload = strings.ToLower(strings.TrimSpace(workload))
	doc := struct {
		Options  Options
		Workload string
		Params   []pair
	}{Options: CanonicalOptions(opt), Workload: workload}
	resolved := canonicalParams(workload, params)
	names := make([]string, 0, len(resolved))
	for name := range resolved {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		doc.Params = append(doc.Params, pair{name, resolved[name]})
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		// Unreachable: the document is built from fixed value types
		// (ints, bools, strings) that always marshal.
		panic(fmt.Sprintf("gsi: encoding cache key: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// canonicalParams resolves overrides against the workload's schema
// defaults so equivalent override sets collapse to one value map. When
// the name or an override does not resolve, the trimmed overrides are
// used as given (the job itself will fail with the real error).
func canonicalParams(workload string, params WorkloadValues) WorkloadValues {
	trimmed := make(WorkloadValues, len(params))
	for name, value := range params {
		trimmed[strings.ToLower(strings.TrimSpace(name))] = strings.TrimSpace(value)
	}
	e, ok := Workloads().Lookup(workload)
	if !ok {
		return trimmed
	}
	resolved := e.Defaults()
	for name, value := range trimmed {
		if _, known := resolved[name]; !known {
			return trimmed
		}
		resolved[name] = value
	}
	return resolved
}
