package gsi

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"strings"
	"time"

	"gsi/internal/cpu"
	"gsi/internal/gpu"
	"gsi/internal/sweep"
)

// Job is one simulation in a Sweep: a display label, the options to run
// under, and a factory producing a fresh Workload. The factory (rather
// than a Workload value) keeps jobs self-contained so concurrent workers
// never share workload state.
type Job struct {
	Label    string
	Options  Options
	Workload func() Workload
	// Axes records the grid point that produced this job (the zero value
	// for hand-built jobs). Content-addressing layers combine it with
	// Grid.PointParams to recover the registry inputs behind the factory.
	Axes Axes
}

// Sweep is an ordered batch of independent simulations — the unit the
// batch runner executes. Build one by hand with Add, or expand a cartesian
// Grid. Results always come back in job order, byte-identical to a serial
// run, regardless of how many workers execute the batch.
type Sweep struct {
	Name string
	Jobs []Job
}

// Add appends one job.
func (s *Sweep) Add(label string, opt Options, w func() Workload) {
	s.Jobs = append(s.Jobs, Job{Label: label, Options: opt, Workload: w})
}

// SweepResult is one job's outcome, in job order.
type SweepResult struct {
	Job    Job
	Report *Report
	Err    error
}

// SweepProgress is one completion event, delivered to SweepConfig.Progress
// as jobs finish (completion order, serialized).
type SweepProgress struct {
	Done, Total int
	Index       int
	Label       string
	Err         error
}

// SweepConfig configures a batch run.
type SweepConfig struct {
	// Parallel is the worker count: 1 runs serially, anything below 1
	// selects GOMAXPROCS. Simulations are single-threaded and share
	// nothing, so any value yields identical results.
	Parallel int
	// Progress, when non-nil, receives one event per finished job. Events
	// arrive in completion order — use them for meters, not results.
	Progress func(SweepProgress)
	// JobTimeout, when positive, bounds each job's wall-clock time: a job
	// exceeding it fails with an error wrapping ErrDeadline (carrying the
	// engine's diagnosis dump) while its siblings keep running. Zero means
	// no per-job deadline; the RunContext context still applies.
	JobTimeout time.Duration
}

// ProgressPrinter returns a Progress callback that writes one
// "[done/total] label (ok|FAILED: cause)" line per finished job to w — the
// meter both CLIs print to stderr. Failure lines carry the job's error
// (truncated to one line) so the meter says why, not just that.
func ProgressPrinter(w io.Writer) func(SweepProgress) {
	return func(p SweepProgress) {
		status := "ok"
		if p.Err != nil {
			status = "FAILED: " + truncateError(p.Err, 120)
		}
		fmt.Fprintf(w, "[%d/%d] %s (%s)\n", p.Done, p.Total, p.Label, status)
	}
}

// truncateError renders an error as a single line of at most max runes,
// marking elision with "..." — progress meters and event streams want the
// cause without a multi-kilobyte diagnosis dump.
func truncateError(err error, max int) string {
	msg := strings.Join(strings.Fields(err.Error()), " ")
	runes := []rune(msg)
	if len(runes) <= max {
		return msg
	}
	return string(runes[:max]) + "..."
}

// Run executes every job and returns all results in job order:
// RunContext under context.Background().
func (s Sweep) Run(cfg SweepConfig) ([]SweepResult, error) {
	return s.RunContext(context.Background(), cfg)
}

// RunContext executes every job under ctx and returns all results in job
// order. The returned error is the lowest-index job error (nil if all
// succeeded); results for the other jobs are still returned alongside it,
// so a batch with one bad configuration does not forfeit the rest.
//
// Fault isolation per job: a panic is recovered (with its stack) into that
// job's error, cfg.JobTimeout bounds each job's wall clock, and a fired
// ctx cancels in-flight simulations cooperatively — jobs that had not
// started yet fail immediately with the context's error.
func (s Sweep) RunContext(ctx context.Context, cfg SweepConfig) ([]SweepResult, error) {
	total := len(s.Jobs)
	var onDone func(sweep.Result[*Report])
	if cfg.Progress != nil {
		done := 0
		onDone = func(r sweep.Result[*Report]) {
			done++
			cfg.Progress(SweepProgress{Done: done, Total: total,
				Index: r.Index, Label: s.Jobs[r.Index].Label, Err: r.Err})
		}
	}
	raw := sweep.MapContext(ctx, cfg.Parallel, total, func(ctx context.Context, i int) (rep *Report, err error) {
		j := s.Jobs[i]
		// Catch panics here, where the job label is known: the pool's own
		// recovery backstop can only name a batch index.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%s: job %q panicked: %v\n%s", s.Name, j.Label, r, debug.Stack())
			}
		}()
		if err := ctx.Err(); err != nil {
			// The batch was canceled before this job started; don't pay
			// for a workload build just to discover it.
			return nil, fmt.Errorf("%s: job %q: %w", s.Name, j.Label, err)
		}
		if cfg.JobTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, cfg.JobTimeout)
			defer cancel()
		}
		rep, err = RunContext(ctx, j.Options, j.Workload())
		if err != nil {
			return nil, fmt.Errorf("%s: job %q: %w", s.Name, j.Label, err)
		}
		return rep, nil
	}, onDone)

	out := make([]SweepResult, total)
	for i, r := range raw {
		out[i] = SweepResult{Job: s.Jobs[i], Report: r.Value, Err: r.Err}
	}
	return out, sweep.FirstError(raw)
}

// Axes is one point of a Grid's cartesian product. Fields for axes the
// Grid leaves empty hold that axis's default (no workload name, DeNovo,
// MSHR 0 = "keep the system's size", Scratchpad, false).
type Axes struct {
	// Workload is the registry name of the point's workload ("" when
	// the grid has no workload axis).
	Workload     string
	Protocol     Protocol
	MSHR         int
	LocalMem     LocalMem
	SFIFO        bool
	OwnedAtomics bool
	StrongCycle  bool
}

// Grid declares a cartesian product of configuration axes — the
// workload × protocol × MSHR × local-memory × ablation grids the paper's
// case studies sweep. Expand it with Sweep; jobs are emitted in row-major
// order with the rightmost declared axis varying fastest (Workloads
// outermost, then Protocols, StrongCycle innermost), so the order is
// deterministic and matches the figures' bar order.
type Grid struct {
	// Name labels the resulting sweep.
	Name string
	// Axis values; an empty axis contributes a single default point and
	// stays out of generated labels.
	//
	// Workloads is the workload axis: registry names (see Workloads),
	// varied outermost. When it is set Grid.Workload may be nil — each
	// point then constructs its workload from the registry at default
	// scale, and a registry entry's system-shaping hook (e.g. the
	// implicit microbenchmark's single-SM machine) is applied to points
	// whose Grid leaves System zero.
	Workloads    []string
	Protocols    []Protocol
	MSHRSizes    []int
	LocalMems    []LocalMem
	SFIFO        []bool
	OwnedAtomics []bool
	StrongCycle  []bool
	// System is the base configuration for every point (zero value means
	// DefaultConfig). A non-zero Axes.MSHR overrides both MSHREntries and
	// StoreBufEntries, the convention of the paper's figure 6.4 sweep.
	System SystemConfig
	// Params holds registry parameter overrides applied to every
	// registry-built point (grids with a Workloads axis and no Workload
	// builder). An override naming no parameter of a point's schema
	// surfaces as that job's error. Ignored when Workload is set.
	Params WorkloadValues
	// Workload builds the workload for one point; required unless the
	// Workloads axis is set.
	Workload func(Axes) Workload
	// Options, when non-nil, replaces the default mapping from a point to
	// simulation options (use it to wire custom ablations).
	Options func(Axes) Options
	// Label, when non-nil, replaces the generated per-point label.
	Label func(Axes) string
}

// Sweep expands the grid into a concrete job list.
func (g Grid) Sweep() Sweep {
	if g.Workload == nil && len(g.Workloads) == 0 {
		panic("gsi: Grid.Workload (or the Workloads axis) is required")
	}
	s := Sweep{Name: g.Name}
	names := g.Workloads
	if len(names) == 0 {
		names = []string{""}
	}
	protocols := g.Protocols
	if len(protocols) == 0 {
		protocols = []Protocol{DeNovo}
	}
	mshrs := g.MSHRSizes
	if len(mshrs) == 0 {
		mshrs = []int{0}
	}
	locals := g.LocalMems
	if len(locals) == 0 {
		locals = []LocalMem{Scratchpad}
	}
	bools := func(vs []bool) []bool {
		if len(vs) == 0 {
			return []bool{false}
		}
		return vs
	}
	for _, wn := range names {
		for _, p := range protocols {
			for _, m := range mshrs {
				for _, lm := range locals {
					for _, sf := range bools(g.SFIFO) {
						for _, oa := range bools(g.OwnedAtomics) {
							for _, sc := range bools(g.StrongCycle) {
								ax := Axes{Workload: wn, Protocol: p, MSHR: m, LocalMem: lm,
									SFIFO: sf, OwnedAtomics: oa, StrongCycle: sc}
								s.Jobs = append(s.Jobs, g.point(ax))
							}
						}
					}
				}
			}
		}
	}
	return s
}

// point materializes one grid point as a Job. Failures that can only be
// detected here — an unknown registry name, a bad parameter override, a
// failed system tune — are deferred into the job's factory (the
// brokenWorkload pattern) so one bad point surfaces as that job's error
// instead of sinking or silently mis-running the batch.
func (g Grid) point(ax Axes) Job {
	job := Job{Label: g.label(ax), Axes: ax}
	opt, err := g.options(ax)
	job.Options = opt
	if err != nil {
		job.Workload = brokenThunk(ax.Workload, err)
		return job
	}
	job.Workload = g.workloadThunk(ax)
	return job
}

// PointParams returns the registry parameter overrides a registry-built
// grid point is constructed (and tuned) with: the grid's Params plus,
// when the LocalMems axis is declared, the point's local-memory
// organization as the "local" parameter. Layers that content-address grid
// points (the serve cache) must hash exactly these values alongside the
// point's Options. Returns nil when the point carries no overrides.
func (g Grid) PointParams(ax Axes) WorkloadValues {
	if len(g.Params) == 0 && len(g.LocalMems) == 0 {
		return nil
	}
	v := make(WorkloadValues, len(g.Params)+1)
	for k, val := range g.Params {
		v[k] = val
	}
	if len(g.LocalMems) > 0 {
		// The local-memory axis is a workload parameter, not a system
		// one: thread it into the build so distinct axis values produce
		// distinct simulations. A workload without a "local" parameter
		// rejects the combination as that job's error.
		v["local"] = localMemParam(ax.LocalMem)
	}
	return v
}

// localMemParam names a local-memory organization in the registry's
// "local" parameter vocabulary (see the implicit workload's schema).
func localMemParam(lm LocalMem) string {
	switch lm {
	case ScratchpadDMA:
		return "dma"
	case Stash:
		return "stash"
	}
	return "scratchpad"
}

// workloadThunk binds one grid point to its factory without capturing the
// loop variables by reference. A grid with a workload axis but no builder
// constructs the point's workload from the registry at default scale with
// the point's parameter overrides applied; an unknown name or bad
// override surfaces as the job's error rather than a panic, so one bad
// axis value cannot sink a whole batch.
func (g Grid) workloadThunk(ax Axes) func() Workload {
	if g.Workload != nil {
		build := g.Workload
		return func() Workload { return build(ax) }
	}
	name := ax.Workload
	params := g.PointParams(ax)
	return func() Workload {
		e, ok := Workloads().Lookup(name)
		if !ok {
			return brokenWorkload{name: name,
				err: fmt.Errorf("gsi: unknown workload %q (see Workloads().Names())", name)}
		}
		w, err := e.Build(params)
		if err != nil {
			return brokenWorkload{name: name, err: err}
		}
		return w
	}
}

// brokenThunk defers a point-construction error into the job's factory.
func brokenThunk(name string, err error) func() Workload {
	return func() Workload { return brokenWorkload{name: name, err: err} }
}

// brokenWorkload defers a construction failure to Run, where it becomes
// the job's error.
type brokenWorkload struct {
	name string
	err  error
}

func (b brokenWorkload) Name() string { return b.name }
func (b brokenWorkload) Build(*cpu.Host) (*gpu.Kernel, func(*cpu.Host) error, error) {
	return nil, nil, b.err
}

func (g Grid) options(ax Axes) (Options, error) {
	if g.Options != nil {
		return g.Options(ax), nil
	}
	opt := Options{System: g.System, Protocol: ax.Protocol,
		SFIFO: ax.SFIFO, OwnedAtomics: ax.OwnedAtomics, StrongCycle: ax.StrongCycle}
	tune := ax.Workload != "" && g.System.NumSMs == 0
	opt = opt.withDefaults()
	if tune {
		// The point's workload came off the registry and the grid did
		// not pin a system: let the entry shape the default machine
		// (e.g. implicit's and pipeline's single-SM configurations).
		if e, ok := Workloads().Lookup(ax.Workload); ok {
			cfg, err := e.TuneSystem(false, g.PointParams(ax), opt.System)
			if err != nil {
				// Do not fall through to the untuned system: a point
				// whose tune failed would simulate a different machine
				// than asked for. The caller defers this into the job.
				return opt, fmt.Errorf("gsi: tuning system for workload %q: %w", ax.Workload, err)
			}
			mode := opt.System.Engine
			opt.System = cfg
			opt.System.Engine = mode
		}
	}
	if ax.MSHR > 0 {
		opt.System.MSHREntries = ax.MSHR
		opt.System.StoreBufEntries = ax.MSHR
	}
	return opt, nil
}

// label names a point from the axes that actually vary in this grid.
func (g Grid) label(ax Axes) string {
	if g.Label != nil {
		return g.Label(ax)
	}
	var parts []string
	if len(g.Workloads) > 0 {
		parts = append(parts, ax.Workload)
	}
	if len(g.Protocols) > 0 {
		parts = append(parts, ax.Protocol.String())
	}
	if len(g.MSHRSizes) > 0 {
		parts = append(parts, fmt.Sprintf("mshr=%d", ax.MSHR))
	}
	if len(g.LocalMems) > 0 {
		parts = append(parts, ax.LocalMem.String())
	}
	flag := func(name string, axis []bool, v bool) {
		if len(axis) > 0 {
			parts = append(parts, fmt.Sprintf("%s=%t", name, v))
		}
	}
	flag("sfifo", g.SFIFO, ax.SFIFO)
	flag("owned-atomics", g.OwnedAtomics, ax.OwnedAtomics)
	flag("strong-cycle", g.StrongCycle, ax.StrongCycle)
	if len(parts) == 0 {
		return "default"
	}
	return strings.Join(parts, " ")
}
