package gsi

import (
	"fmt"
	"io"
	"strings"

	"gsi/internal/cpu"
	"gsi/internal/gpu"
	"gsi/internal/sweep"
)

// Job is one simulation in a Sweep: a display label, the options to run
// under, and a factory producing a fresh Workload. The factory (rather
// than a Workload value) keeps jobs self-contained so concurrent workers
// never share workload state.
type Job struct {
	Label    string
	Options  Options
	Workload func() Workload
}

// Sweep is an ordered batch of independent simulations — the unit the
// batch runner executes. Build one by hand with Add, or expand a cartesian
// Grid. Results always come back in job order, byte-identical to a serial
// run, regardless of how many workers execute the batch.
type Sweep struct {
	Name string
	Jobs []Job
}

// Add appends one job.
func (s *Sweep) Add(label string, opt Options, w func() Workload) {
	s.Jobs = append(s.Jobs, Job{Label: label, Options: opt, Workload: w})
}

// SweepResult is one job's outcome, in job order.
type SweepResult struct {
	Job    Job
	Report *Report
	Err    error
}

// SweepProgress is one completion event, delivered to SweepConfig.Progress
// as jobs finish (completion order, serialized).
type SweepProgress struct {
	Done, Total int
	Index       int
	Label       string
	Err         error
}

// SweepConfig configures a batch run.
type SweepConfig struct {
	// Parallel is the worker count: 1 runs serially, anything below 1
	// selects GOMAXPROCS. Simulations are single-threaded and share
	// nothing, so any value yields identical results.
	Parallel int
	// Progress, when non-nil, receives one event per finished job. Events
	// arrive in completion order — use them for meters, not results.
	Progress func(SweepProgress)
}

// ProgressPrinter returns a Progress callback that writes one
// "[done/total] label (ok|FAILED)" line per finished job to w — the meter
// both CLIs print to stderr.
func ProgressPrinter(w io.Writer) func(SweepProgress) {
	return func(p SweepProgress) {
		status := "ok"
		if p.Err != nil {
			status = "FAILED"
		}
		fmt.Fprintf(w, "[%d/%d] %s (%s)\n", p.Done, p.Total, p.Label, status)
	}
}

// Run executes every job and returns all results in job order. The
// returned error is the lowest-index job error (nil if all succeeded);
// results for the other jobs are still returned alongside it, so a batch
// with one bad configuration does not forfeit the rest.
func (s Sweep) Run(cfg SweepConfig) ([]SweepResult, error) {
	total := len(s.Jobs)
	var onDone func(sweep.Result[*Report])
	if cfg.Progress != nil {
		done := 0
		onDone = func(r sweep.Result[*Report]) {
			done++
			cfg.Progress(SweepProgress{Done: done, Total: total,
				Index: r.Index, Label: s.Jobs[r.Index].Label, Err: r.Err})
		}
	}
	raw := sweep.Map(cfg.Parallel, total, func(i int) (rep *Report, err error) {
		j := s.Jobs[i]
		// Catch panics here, where the job label is known: the pool's own
		// recovery backstop can only name a batch index.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%s: job %q panicked: %v", s.Name, j.Label, r)
			}
		}()
		rep, err = Run(j.Options, j.Workload())
		if err != nil {
			return nil, fmt.Errorf("%s: job %q: %w", s.Name, j.Label, err)
		}
		return rep, nil
	}, onDone)

	out := make([]SweepResult, total)
	for i, r := range raw {
		out[i] = SweepResult{Job: s.Jobs[i], Report: r.Value, Err: r.Err}
	}
	return out, sweep.FirstError(raw)
}

// Axes is one point of a Grid's cartesian product. Fields for axes the
// Grid leaves empty hold that axis's default (no workload name, DeNovo,
// MSHR 0 = "keep the system's size", Scratchpad, false).
type Axes struct {
	// Workload is the registry name of the point's workload ("" when
	// the grid has no workload axis).
	Workload     string
	Protocol     Protocol
	MSHR         int
	LocalMem     LocalMem
	SFIFO        bool
	OwnedAtomics bool
	StrongCycle  bool
}

// Grid declares a cartesian product of configuration axes — the
// workload × protocol × MSHR × local-memory × ablation grids the paper's
// case studies sweep. Expand it with Sweep; jobs are emitted in row-major
// order with the rightmost declared axis varying fastest (Workloads
// outermost, then Protocols, StrongCycle innermost), so the order is
// deterministic and matches the figures' bar order.
type Grid struct {
	// Name labels the resulting sweep.
	Name string
	// Axis values; an empty axis contributes a single default point and
	// stays out of generated labels.
	//
	// Workloads is the workload axis: registry names (see Workloads),
	// varied outermost. When it is set Grid.Workload may be nil — each
	// point then constructs its workload from the registry at default
	// scale, and a registry entry's system-shaping hook (e.g. the
	// implicit microbenchmark's single-SM machine) is applied to points
	// whose Grid leaves System zero.
	Workloads    []string
	Protocols    []Protocol
	MSHRSizes    []int
	LocalMems    []LocalMem
	SFIFO        []bool
	OwnedAtomics []bool
	StrongCycle  []bool
	// System is the base configuration for every point (zero value means
	// DefaultConfig). A non-zero Axes.MSHR overrides both MSHREntries and
	// StoreBufEntries, the convention of the paper's figure 6.4 sweep.
	System SystemConfig
	// Workload builds the workload for one point; required unless the
	// Workloads axis is set.
	Workload func(Axes) Workload
	// Options, when non-nil, replaces the default mapping from a point to
	// simulation options (use it to wire custom ablations).
	Options func(Axes) Options
	// Label, when non-nil, replaces the generated per-point label.
	Label func(Axes) string
}

// Sweep expands the grid into a concrete job list.
func (g Grid) Sweep() Sweep {
	if g.Workload == nil && len(g.Workloads) == 0 {
		panic("gsi: Grid.Workload (or the Workloads axis) is required")
	}
	s := Sweep{Name: g.Name}
	names := g.Workloads
	if len(names) == 0 {
		names = []string{""}
	}
	protocols := g.Protocols
	if len(protocols) == 0 {
		protocols = []Protocol{DeNovo}
	}
	mshrs := g.MSHRSizes
	if len(mshrs) == 0 {
		mshrs = []int{0}
	}
	locals := g.LocalMems
	if len(locals) == 0 {
		locals = []LocalMem{Scratchpad}
	}
	bools := func(vs []bool) []bool {
		if len(vs) == 0 {
			return []bool{false}
		}
		return vs
	}
	for _, wn := range names {
		for _, p := range protocols {
			for _, m := range mshrs {
				for _, lm := range locals {
					for _, sf := range bools(g.SFIFO) {
						for _, oa := range bools(g.OwnedAtomics) {
							for _, sc := range bools(g.StrongCycle) {
								ax := Axes{Workload: wn, Protocol: p, MSHR: m, LocalMem: lm,
									SFIFO: sf, OwnedAtomics: oa, StrongCycle: sc}
								s.Add(g.label(ax), g.options(ax), g.workloadThunk(ax))
							}
						}
					}
				}
			}
		}
	}
	return s
}

// workloadThunk binds one grid point to its factory without capturing the
// loop variables by reference. A grid with a workload axis but no builder
// constructs the point's workload from the registry at default scale; an
// unknown name surfaces as the job's error rather than a panic, so one
// bad axis value cannot sink a whole batch.
func (g Grid) workloadThunk(ax Axes) func() Workload {
	if g.Workload != nil {
		build := g.Workload
		return func() Workload { return build(ax) }
	}
	name := ax.Workload
	return func() Workload {
		e, ok := Workloads().Lookup(name)
		if !ok {
			return brokenWorkload{name: name,
				err: fmt.Errorf("gsi: unknown workload %q (see Workloads().Names())", name)}
		}
		w, err := e.Build(nil)
		if err != nil {
			return brokenWorkload{name: name, err: err}
		}
		return w
	}
}

// brokenWorkload defers a construction failure to Run, where it becomes
// the job's error.
type brokenWorkload struct {
	name string
	err  error
}

func (b brokenWorkload) Name() string { return b.name }
func (b brokenWorkload) Build(*cpu.Host) (*gpu.Kernel, func(*cpu.Host) error, error) {
	return nil, nil, b.err
}

func (g Grid) options(ax Axes) Options {
	if g.Options != nil {
		return g.Options(ax)
	}
	opt := Options{System: g.System, Protocol: ax.Protocol,
		SFIFO: ax.SFIFO, OwnedAtomics: ax.OwnedAtomics, StrongCycle: ax.StrongCycle}
	tune := ax.Workload != "" && g.System.NumSMs == 0
	opt = opt.withDefaults()
	if tune {
		// The point's workload came off the registry and the grid did
		// not pin a system: let the entry shape the default machine
		// (e.g. implicit's and pipeline's single-SM configurations).
		if e, ok := Workloads().Lookup(ax.Workload); ok {
			if cfg, err := e.TuneSystem(false, nil, opt.System); err == nil {
				mode := opt.System.Engine
				opt.System = cfg
				opt.System.Engine = mode
			}
		}
	}
	if ax.MSHR > 0 {
		opt.System.MSHREntries = ax.MSHR
		opt.System.StoreBufEntries = ax.MSHR
	}
	return opt
}

// label names a point from the axes that actually vary in this grid.
func (g Grid) label(ax Axes) string {
	if g.Label != nil {
		return g.Label(ax)
	}
	var parts []string
	if len(g.Workloads) > 0 {
		parts = append(parts, ax.Workload)
	}
	if len(g.Protocols) > 0 {
		parts = append(parts, ax.Protocol.String())
	}
	if len(g.MSHRSizes) > 0 {
		parts = append(parts, fmt.Sprintf("mshr=%d", ax.MSHR))
	}
	if len(g.LocalMems) > 0 {
		parts = append(parts, ax.LocalMem.String())
	}
	flag := func(name string, axis []bool, v bool) {
		if len(axis) > 0 {
			parts = append(parts, fmt.Sprintf("%s=%t", name, v))
		}
	}
	flag("sfifo", g.SFIFO, ax.SFIFO)
	flag("owned-atomics", g.OwnedAtomics, ax.OwnedAtomics)
	flag("strong-cycle", g.StrongCycle, ax.StrongCycle)
	if len(parts) == 0 {
		return "default"
	}
	return strings.Join(parts, " ")
}
