// Command gsi-scale is the iterate-until-failure scale harness: it grows
// one configuration axis at a time (mesh dims, warps per SM, workload
// size, sweep-grid width, parallel-tick workers) until a wall — per-rung
// wall-clock budget, RSS ceiling, error, or engine identity break —
// recording per-rung ns-per-cycle, scheduling counters, RSS, and
// allocations into BENCH_scale.json, and optionally a markdown ceiling
// report. Every rung runs the workload through all four engine modes and
// asserts byte-identical reports.
//
// Examples:
//
//	gsi-scale -axis mesh -workload stencil
//	gsi-scale -workload all -axis all -rung-budget 5s -report docs/SCALE_CEILINGS.md
//	gsi-scale -smoke -baseline BENCH_scale.json -threshold 0.15 -max-rungs 3
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"gsi"
	"gsi/internal/scale"
)

func main() {
	var (
		workload    = flag.String("workload", "all", "comma-separated registry names, or all")
		axis        = flag.String("axis", "all", "comma-separated growth axes (mesh, warps, size, grid, ticks), or all")
		rungBudget  = flag.Duration("rung-budget", 10*time.Second, "stop a series after the first rung exceeding this wall clock (0 = none)")
		totalBudget = flag.Duration("total-budget", 0, "wall-clock bound for the whole run (0 = none)")
		rssMB       = flag.Int("rss-mb", 0, "stop a series when process max RSS passes this many MB (0 = none)")
		maxRungs    = flag.Int("max-rungs", 8, "rung cap per series (the backstop wall); in smoke mode, rungs replayed per series")
		knee        = flag.Float64("knee", 1.5, "knee factor: first rung above knee*min(ns/cycle so far) is the knee")
		out         = flag.String("out", "BENCH_scale.json", "output document path (- for stdout)")
		reportPath  = flag.String("report", "", "also write the markdown ceiling report to this path")
		note        = flag.String("note", "", "free-form note recorded in the document")
		quiet       = flag.Bool("quiet", false, "suppress per-rung progress on stderr")
		smoke       = flag.Bool("smoke", false, "smoke mode: replay the baseline's series and gate on regressions instead of writing a document")
		baseline    = flag.String("baseline", "", "committed BENCH_scale.json to gate against (smoke mode)")
		threshold   = flag.Float64("threshold", 0.15, "allowed fractional ns-per-cycle regression per rung, rung-0 normalized (smoke mode)")
	)
	flag.Parse()

	cfg := scale.Config{
		RungBudget:  *rungBudget,
		TotalBudget: *totalBudget,
		RSSLimitKB:  uint64(*rssMB) * 1024,
		MaxRungs:    *maxRungs,
		KneeFactor:  *knee,
	}
	if !*quiet {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *workload != "all" {
		cfg.Workloads = splitList(*workload)
	}
	if *axis != "all" {
		for _, s := range splitList(*axis) {
			a, err := scale.ParseAxis(s)
			if err != nil {
				fail("%v", err)
			}
			cfg.Axes = append(cfg.Axes, a)
		}
	}
	reg := gsi.Workloads()
	for _, n := range cfg.Workloads {
		if _, ok := reg.Lookup(n); !ok {
			fail("unknown workload %q (see gsi-run -list-workloads)", n)
		}
	}

	if *smoke {
		runSmoke(cfg, *baseline, *threshold, *maxRungs)
		return
	}

	doc, err := scale.Run(cfg)
	if err != nil {
		fail("%v", err)
	}
	doc.Date = time.Now().Format("2006-01-02")
	doc.Host = hostString()
	doc.Command = strings.Join(os.Args, " ")
	doc.Note = *note
	encoded, err := doc.Encode()
	if err != nil {
		fail("%v", err)
	}
	if *out == "-" {
		os.Stdout.Write(encoded)
	} else if err := os.WriteFile(*out, encoded, 0o644); err != nil {
		fail("%v", err)
	}
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, []byte(doc.Markdown()), 0o644); err != nil {
			fail("%v", err)
		}
	}
}

// runSmoke replays exactly the series the baseline recorded — each
// (workload, axis) pair up to maxRungs rungs — and gates on the
// comparator's findings. The -workload and -axis flags narrow the replay
// when set; the wall budgets still apply.
func runSmoke(cfg scale.Config, baselinePath string, threshold float64, maxRungs int) {
	if baselinePath == "" {
		fail("-smoke needs -baseline")
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fail("%v", err)
	}
	base, err := scale.DecodeDoc(data)
	if err != nil {
		fail("%v", err)
	}
	keepW := map[string]bool{}
	for _, w := range cfg.Workloads {
		keepW[w] = true
	}
	keepA := map[scale.Axis]bool{}
	for _, a := range cfg.Axes {
		keepA[a] = true
	}
	cur := &scale.Doc{}
	replayed := &scale.Doc{}
	for _, res := range base.Results {
		if len(keepW) > 0 && !keepW[res.Workload] {
			continue
		}
		if len(keepA) > 0 && !keepA[scale.Axis(res.Axis)] {
			continue
		}
		pair := cfg
		pair.Workloads = []string{res.Workload}
		pair.Axes = []scale.Axis{scale.Axis(res.Axis)}
		if len(res.Rungs) < pair.MaxRungs {
			pair.MaxRungs = len(res.Rungs)
		}
		doc, err := scale.Run(pair)
		if err != nil {
			fail("replaying %s/%s: %v", res.Workload, res.Axis, err)
		}
		cur.Results = append(cur.Results, doc.Results...)
		replayed.Results = append(replayed.Results, res)
	}
	if len(replayed.Results) == 0 {
		fail("baseline has no series matching the -workload/-axis selection")
	}
	findings := scale.Compare(replayed, cur, threshold, maxRungs)
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "FAIL %s\n", f)
		}
		fail("%d scale-smoke violation(s) against %s", len(findings), baselinePath)
	}
	fmt.Printf("scale smoke OK: %d series replayed against %s (threshold %.0f%%)\n",
		len(replayed.Results), baselinePath, threshold*100)
}

// hostString describes the machine well enough to interpret wall-clock
// numbers: CPU model when /proc/cpuinfo offers one, plus OS/arch and the
// usable core count.
func hostString() string {
	model := ""
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, value, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(name) == "model name" {
				model = strings.TrimSpace(value) + ", "
				break
			}
		}
	}
	return fmt.Sprintf("%s%s/%s, %d core(s)", model, runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		f = strings.ToLower(strings.TrimSpace(f))
		if f != "" {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		fail("empty list")
	}
	return out
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsi-scale: "+format+"\n", args...)
	os.Exit(1)
}
