// Command gsi-serve runs the sweep service: a long-running HTTP/JSON
// server that accepts sweep submissions (cartesian grids in the public
// Grid/Axes vocabulary), executes them on a shared bounded worker pool,
// and serves results through a content-addressed cache — identical grid
// points across overlapping submissions are answered from cache,
// byte-identical to a fresh run.
//
// Examples:
//
//	gsi-serve -addr :8080 -parallel 8 -cache-dir /var/cache/gsi
//
//	curl -X POST localhost:8080/sweeps -d '{
//	  "name": "mshr",
//	  "workloads": ["implicit"],
//	  "localMems": ["scratchpad", "stash"],
//	  "mshrSizes": [32, 64]
//	}'
//	curl 'localhost:8080/sweeps/s1?wait=1'
//	curl -X DELETE localhost:8080/sweeps/s1
//	curl localhost:8080/metrics
//
// Failures stay inside their grid point: a panicking or deadline-blown
// job fails individually (surfaced on /sweeps/{id} and the SSE stream)
// while its siblings complete, completed results are journaled to
// -cache-dir as they finish (a kill -9 loses at most in-flight work),
// and on SIGINT/SIGTERM the server drains gracefully: new submissions
// are refused with 503 (and /readyz flips), running jobs get
// -drain-grace to finish before being canceled cooperatively, the cache
// is flushed, and only then does the listener shut down.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gsi"
	"gsi/internal/faultinject"
	"gsi/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		parallel   = flag.Int("parallel", 0, "simulation pool size shared across submissions (0 = all cores)")
		ticks      = flag.Int("parallel-ticks", 0, "tick workers per simulation (>= 2 selects the parallel engine; the pool shrinks to fit)")
		engine     = flag.String("engine", "skip", "scheduling engine: dense | quiescent | skip | parallel (results are byte-identical; this is a wall-clock knob)")
		cacheDir   = flag.String("cache-dir", "", "persist the result cache in this directory (journaled as results complete, flushed on drain)")
		maxEnt     = flag.Int("cache-max-entries", 0, "bound the in-memory result cache to this many entries, LRU-evicted (0 = unlimited)")
		maxBytes   = flag.Int("cache-max-bytes", 0, "bound the in-memory result cache to this many bytes of result documents, LRU-evicted (0 = unlimited)")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "default wall-clock deadline per job; a slower simulation fails with a deadline error carrying the engine diagnosis (0 = none)")
		jobTimeMax = flag.Duration("job-timeout-max", 30*time.Minute, "cap on the per-job deadline, including per-submission overrides (0 = no cap)")
		retries    = flag.Int("retries", 0, "retry budget per job for transient failures — contained panics and I/O errors (0 = default of 2, negative = disabled)")
		drainGrace = flag.Duration("drain-grace", 2*time.Minute, "how long a drain lets running jobs finish before canceling them cooperatively (0 = wait forever)")
		timeout    = flag.Duration("drain-timeout", 30*time.Second, "maximum time to wait for the HTTP listener to close after jobs drain")
		chaos      = flag.String("chaos", "", "fault-injection spec for testing, e.g. 'seed=1,panic=0.1' or 'uts:stall' (do not use in production)")
	)
	flag.Parse()
	mode, err := gsi.ParseEngineMode(*engine)
	if err != nil {
		fail("%v", err)
	}
	var injector *faultinject.Injector
	if *chaos != "" {
		if injector, err = faultinject.Parse(*chaos); err != nil {
			fail("%v", err)
		}
		log.Printf("gsi-serve: CHAOS MODE: injecting faults per %q", *chaos)
	}
	server, err := serve.New(serve.Config{
		Workers:         *parallel,
		Engine:          mode,
		Parallel:        *ticks,
		CacheDir:        *cacheDir,
		CacheMaxEntries: *maxEnt,
		CacheMaxBytes:   *maxBytes,
		JobTimeout:      *jobTimeout,
		MaxJobTimeout:   *jobTimeMax,
		Retries:         *retries,
		Chaos:           injector,
	})
	if err != nil {
		fail("%v", err)
	}
	hs := &http.Server{
		Addr:    *addr,
		Handler: server.Handler(),
		// Slow-client bounds. Long-lived responses (SSE, ?wait=1 long
		// polls) lift the write deadline per handler; everything else is
		// cut off rather than pinning a connection forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("gsi-serve: listening on %s (pool=%d, engine=%s)", *addr, *parallel, *engine)

	select {
	case err := <-errc:
		fail("%v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	log.Printf("gsi-serve: draining (refusing new sweeps, grace %v for running jobs)", *drainGrace)
	graceCtx := context.Background()
	if *drainGrace > 0 {
		var cancel context.CancelFunc
		graceCtx, cancel = context.WithTimeout(graceCtx, *drainGrace)
		defer cancel()
	}
	if err := server.DrainContext(graceCtx); err != nil {
		log.Printf("gsi-serve: cache flush: %v", err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("gsi-serve: shutdown: %v", err)
	}
	log.Printf("gsi-serve: drained")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsi-serve: "+format+"\n", args...)
	os.Exit(1)
}
