// Command gsi-serve runs the sweep service: a long-running HTTP/JSON
// server that accepts sweep submissions (cartesian grids in the public
// Grid/Axes vocabulary), executes them on a shared bounded worker pool,
// and serves results through a content-addressed cache — identical grid
// points across overlapping submissions are answered from cache,
// byte-identical to a fresh run.
//
// Examples:
//
//	gsi-serve -addr :8080 -parallel 8 -cache-dir /var/cache/gsi
//
//	curl -X POST localhost:8080/sweeps -d '{
//	  "name": "mshr",
//	  "workloads": ["implicit"],
//	  "localMems": ["scratchpad", "stash"],
//	  "mshrSizes": [32, 64]
//	}'
//	curl 'localhost:8080/sweeps/s1?wait=1'
//	curl localhost:8080/metrics
//
// On SIGINT/SIGTERM the server drains gracefully: new submissions are
// refused with 503, running jobs finish, the cache is flushed to
// -cache-dir, and only then does the listener shut down.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gsi"
	"gsi/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		parallel = flag.Int("parallel", 0, "simulation pool size shared across submissions (0 = all cores)")
		ticks    = flag.Int("parallel-ticks", 0, "tick workers per simulation (>= 2 selects the parallel engine; the pool shrinks to fit)")
		engine   = flag.String("engine", "skip", "scheduling engine: dense | quiescent | skip | parallel (results are byte-identical; this is a wall-clock knob)")
		cacheDir = flag.String("cache-dir", "", "persist the result cache in this directory (loaded at startup, flushed on drain)")
		maxEnt   = flag.Int("cache-max-entries", 0, "bound the in-memory result cache to this many entries, LRU-evicted (0 = unlimited)")
		maxBytes = flag.Int("cache-max-bytes", 0, "bound the in-memory result cache to this many bytes of result documents, LRU-evicted (0 = unlimited)")
		timeout  = flag.Duration("drain-timeout", 30*time.Second, "maximum time to wait for the HTTP listener to close after jobs drain")
	)
	flag.Parse()
	mode, err := gsi.ParseEngineMode(*engine)
	if err != nil {
		fail("%v", err)
	}
	server, err := serve.New(serve.Config{
		Workers:         *parallel,
		Engine:          mode,
		Parallel:        *ticks,
		CacheDir:        *cacheDir,
		CacheMaxEntries: *maxEnt,
		CacheMaxBytes:   *maxBytes,
	})
	if err != nil {
		fail("%v", err)
	}
	hs := &http.Server{Addr: *addr, Handler: server.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("gsi-serve: listening on %s (pool=%d, engine=%s)", *addr, *parallel, *engine)

	select {
	case err := <-errc:
		fail("%v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	log.Printf("gsi-serve: draining (refusing new sweeps, finishing running jobs)")
	if err := server.Drain(); err != nil {
		log.Printf("gsi-serve: cache flush: %v", err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("gsi-serve: shutdown: %v", err)
	}
	log.Printf("gsi-serve: drained")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsi-serve: "+format+"\n", args...)
	os.Exit(1)
}
