// Command gsi-experiments regenerates the paper's evaluation artifacts:
// Table 5.1 (system parameters with measured latency ranges) and figures
// 6.1 through 6.4 (stall breakdowns for both case studies).
//
// Examples:
//
//	gsi-experiments                     # everything, default scale
//	gsi-experiments -exp fig6.2         # one figure
//	gsi-experiments -scale small -csv   # fast run, CSV output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gsi"
	"gsi/internal/stats"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "all | table5.1 | fig6.1 | fig6.2 | fig6.3 | fig6.4")
		scale = flag.String("scale", "default", "default | small")
		width = flag.Int("width", 64, "chart width")
		csv   = flag.Bool("csv", false, "emit CSV instead of tables and charts")
	)
	flag.Parse()

	var sc gsi.Scale
	switch strings.ToLower(*scale) {
	case "default":
		sc = gsi.DefaultScale()
	case "small":
		sc = gsi.SmallScale()
	default:
		fail("unknown scale %q", *scale)
	}

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	ran := false

	if want("table5.1") {
		ran = true
		s, err := gsi.Table51(gsi.DefaultConfig())
		if err != nil {
			fail("table 5.1: %v", err)
		}
		fmt.Println(s)
	}
	if want("fig6.1") {
		ran = true
		fs, err := gsi.Figure61(sc)
		if err != nil {
			fail("%v", err)
		}
		render(fs, *width, *csv, fs.BaselineTotal())
	}
	if want("fig6.2") {
		ran = true
		fs, err := gsi.Figure62(sc)
		if err != nil {
			fail("%v", err)
		}
		render(fs, *width, *csv, fs.BaselineTotal())
	}
	if want("fig6.3") {
		ran = true
		fs, err := gsi.Figure63()
		if err != nil {
			fail("%v", err)
		}
		render(fs, *width, *csv, fs.BaselineTotal())
	}
	if want("fig6.4") {
		ran = true
		sets, err := gsi.Figure64(sc)
		if err != nil {
			fail("%v", err)
		}
		base := gsi.Figure64Baseline(sets)
		for _, fs := range sets {
			render(fs, *width, *csv, base)
		}
	}
	if !ran {
		fail("unknown experiment %q", *exp)
	}
}

func render(fs *gsi.FigureSet, width int, csv bool, base float64) {
	if !csv {
		fmt.Print(fs.RenderTo(width, base))
		return
	}
	exec, data, structural := fs.NormalizedTo(base)
	for _, g := range []*stats.Group{exec, data, structural} {
		fmt.Printf("# %s\n%s", g.Title, g.CSV())
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsi-experiments: "+format+"\n", args...)
	os.Exit(1)
}
