// Command gsi-experiments regenerates the paper's evaluation artifacts:
// Table 5.1 (system parameters with measured latency ranges) and figures
// 6.1 through 6.4 (stall breakdowns for both case studies). All requested
// figures are batched through one worker pool; results are identical for
// any -parallel value.
//
// Examples:
//
//	gsi-experiments                     # everything, default scale, all cores
//	gsi-experiments -exp fig6.2         # one figure
//	gsi-experiments -scale small -csv   # fast run, CSV output
//	gsi-experiments -parallel 1 -json   # serial run, one JSON array
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gsi"
	"gsi/internal/prof"
	"gsi/internal/stats"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "all | table5.1 | fig6.1 | fig6.2 | fig6.3 | fig6.4 | workloads")
		list     = flag.Bool("list-workloads", false, "print the workload registry (name, parameters, default scale) and exit")
		scale    = flag.String("scale", "default", "default | small")
		width    = flag.Int("width", 64, "chart width")
		csv      = flag.Bool("csv", false, "emit CSV instead of tables and charts")
		jsonOut  = flag.Bool("json", false, "emit all requested figures as one JSON array")
		parallel = flag.Int("parallel", 0, "simulation workers (0 = all cores, 1 = serial)")
		quiet    = flag.Bool("quiet", false, "suppress per-job progress on stderr")
		engine   = flag.String("engine", "skip", "scheduling engine: dense | quiescent | skip (all byte-identical)")
		dense    = flag.Bool("dense", false, "shorthand for -engine dense")
		express  = flag.Bool("express", true, "mesh express routing: model uncontended multi-hop traversals as one timed event (always off in dense mode; timing is byte-identical either way)")
		traceDir = flag.String("trace-dir", "", "write one Chrome/Perfetto trace-event JSON per figure job into this directory")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *list {
		gsi.Workloads().Describe(os.Stdout)
		return
	}
	if *csv && *jsonOut {
		fail("-csv and -json are mutually exclusive")
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fail("%v", err)
	}
	defer stopProf()

	mode, err := gsi.ParseEngineMode(*engine)
	if err != nil {
		fail("%v", err)
	}
	if *dense {
		mode = gsi.EngineDense
	}

	var sc gsi.Scale
	switch strings.ToLower(*scale) {
	case "default":
		sc = gsi.DefaultScale()
	case "small":
		sc = gsi.SmallScale()
	default:
		fail("unknown scale %q", *scale)
	}

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	ran := false

	if want("table5.1") {
		if *jsonOut {
			if *exp != "all" {
				fail("table 5.1 has no JSON form")
			}
			// Don't let a figure-only document read as the full artifact
			// set: say on stderr that the table was dropped.
			fmt.Fprintln(os.Stderr, "gsi-experiments: note: table 5.1 has no JSON form; omitting it")
		} else {
			ran = true
			s, err := gsi.Table51(gsi.DefaultConfig())
			if err != nil {
				fail("table 5.1: %v", err)
			}
			fmt.Println(s)
		}
	}

	// Collect every requested figure as a spec, then run the whole batch
	// through one pool so small figures fill the gaps behind big ones.
	var specs []gsi.FigureSpec
	if want("fig6.1") {
		specs = append(specs, gsi.Figure61Spec(sc))
	}
	if want("fig6.2") {
		specs = append(specs, gsi.Figure62Spec(sc))
	}
	if want("fig6.3") {
		specs = append(specs, gsi.Figure63Spec())
	}
	if want("fig6.4") {
		specs = append(specs, gsi.Figure64Specs(sc)...)
	}
	if want("workloads") || strings.EqualFold(*exp, "figW") {
		specs = append(specs, gsi.WorkloadGallerySpec(sc))
	}
	if len(specs) == 0 && !ran {
		fail("unknown experiment %q", *exp)
	}
	if len(specs) == 0 {
		return
	}
	// Each traced job gets its own collector — collectors are single-run
	// state, and the pool executes jobs concurrently.
	type jobTrace struct {
		file string
		tr   *gsi.Trace
	}
	var traces []jobTrace
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fail("%v", err)
		}
	}
	for si := range specs {
		for ji := range specs[si].Sweep.Jobs {
			o := &specs[si].Sweep.Jobs[ji].Options
			if o.System.NumSMs == 0 {
				// Materialize the default system so the engine and
				// express switches below survive Options' own defaulting.
				o.System = gsi.DefaultConfig()
			}
			o.System.Engine = mode
			o.System.Express = *express
			if *traceDir != "" {
				tr := gsi.NewTrace()
				o.Trace = tr
				name := sanitizeName(specs[si].ID + "-" + specs[si].Sweep.Jobs[ji].Label)
				traces = append(traces, jobTrace{
					file: fmt.Sprintf("%s/%s.trace.json", *traceDir, name),
					tr:   tr,
				})
			}
		}
	}

	writeTraces := func() {
		for _, jt := range traces {
			f, err := os.Create(jt.file)
			if err != nil {
				fail("%v", err)
			}
			if err := jt.tr.WriteChromeTrace(f); err != nil {
				f.Close()
				fail("writing %s: %v", jt.file, err)
			}
			if err := f.Close(); err != nil {
				fail("writing %s: %v", jt.file, err)
			}
		}
		if len(traces) > 0 {
			fmt.Fprintf(os.Stderr, "gsi-experiments: wrote %d traces to %s\n", len(traces), *traceDir)
		}
	}

	cfg := gsi.SweepConfig{Parallel: *parallel}
	if !*quiet {
		cfg.Progress = gsi.ProgressPrinter(os.Stderr)
	}
	sets, err := gsi.RunFigureSpecs(specs, cfg)
	if err != nil {
		fail("%v", err)
	}
	writeTraces()

	if *jsonOut {
		// One array of figure documents — the same single-shape contract
		// as gsi-run's -json, parseable by any JSON consumer in one read.
		doc, err := json.MarshalIndent(sets, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("%s\n", doc)
		return
	}
	bases := gsi.RenderBases(specs, sets)
	for i, fs := range sets {
		render(fs, *width, *csv, bases[i])
	}
}

func render(fs *gsi.FigureSet, width int, csv bool, base float64) {
	switch {
	case csv:
		exec, data, structural := fs.NormalizedTo(base)
		for _, g := range []*stats.Group{exec, data, structural} {
			fmt.Printf("# %s\n%s", g.Title, g.CSV())
		}
	default:
		fmt.Print(fs.RenderTo(width, base))
	}
}

// sanitizeName turns a figure/job label into a safe file-name stem:
// lower-cased, runs of non-alphanumerics collapsed to single dashes.
func sanitizeName(s string) string {
	var sb strings.Builder
	dash := false
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '.':
			sb.WriteRune(r)
			dash = false
		default:
			if !dash && sb.Len() > 0 {
				sb.WriteByte('-')
			}
			dash = true
		}
	}
	return strings.TrimSuffix(sb.String(), "-")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsi-experiments: "+format+"\n", args...)
	os.Exit(1)
}
