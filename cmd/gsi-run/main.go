// Command gsi-run executes workloads under one or many configurations and
// prints their GSI stall profiles. Workloads are selected from the
// registry by name (-list-workloads prints the table); the -workload,
// -protocol, -local, and -mshr flags accept comma-separated lists, and
// supplying more than one value on any of them turns the invocation into
// a cartesian sweep executed by the worker pool (results are printed in
// grid order, identical for any -parallel value).
//
// Examples:
//
//	gsi-run -list-workloads
//	gsi-run -workload utsd -protocol denovo -nodes 1500
//	gsi-run -workload bfs -param vertices=2000,avgdeg=6 -chart
//	gsi-run -workload bfs,spmv,gups -protocol gpu,denovo -json
//	gsi-run -workload implicit -local scratchpad,dma,stash -mshr 32,64,128,256,512 -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"gsi"
	"gsi/internal/prof"
	"gsi/internal/stats"
)

func main() {
	var (
		workload = flag.String("workload", "implicit", "comma-separated registry names (see -list-workloads)")
		list     = flag.Bool("list-workloads", false, "print the workload registry (name, parameters, default scale) and exit")
		param    = flag.String("param", "", "comma-separated workload parameter overrides, name=value (see -list-workloads)")
		protocol = flag.String("protocol", "denovo", "comma-separated: gpu | denovo")
		local    = flag.String("local", "scratchpad", "implicit only, comma-separated: scratchpad | dma | stash")
		warps    = flag.Int("warps", 0, "shorthand for -param warps=N (warp count: most workloads take it; fewer warps = less MLP, more latency-dominated)")
		nodes    = flag.Int("nodes", 0, "shorthand for -param nodes=N (uts/utsd tree size)")
		sms      = flag.Int("sms", 0, "SM count override (default: per-workload tuned system)")
		mshr     = flag.String("mshr", "32", "comma-separated MSHR (and store buffer) entries")
		sfifo    = flag.Bool("sfifo", false, "enable the S-FIFO release ablation")
		owned    = flag.Bool("owned-atomics", false, "enable the owned-atomics optimization (DeNovo)")
		chart    = flag.Bool("chart", false, "print ASCII charts")
		timeline = flag.Bool("timeline", false, "print the per-SM stall timeline")
		jsonOut  = flag.Bool("json", false, "emit JSON reports instead of text summaries")
		parallel = flag.Int("parallel", 0, "sweep workers (0 = all cores, 1 = serial)")
		quiet    = flag.Bool("quiet", false, "suppress sweep progress on stderr")
		engine   = flag.String("engine", "skip", "scheduling engine: dense | quiescent | skip | parallel (all byte-identical)")
		dense    = flag.Bool("dense", false, "shorthand for -engine dense")
		ticks    = flag.Int("parallel-ticks", 0, "tick workers per simulation (>= 2 selects the parallel engine; 0 = serial)")
		express  = flag.Bool("express", true, "mesh express routing: model uncontended multi-hop traversals as one timed event (always off in dense mode; timing is byte-identical either way)")
		stats    = flag.Bool("stats", false, "print per-run engine scheduling stats (steps, jumps, express deliveries/demotions) to stderr")
		traceOut = flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON of the run to this file (single configuration only)")
		htmlOut  = flag.String("timeline-html", "", "write a self-contained interactive HTML timeline of the run to this file (single configuration only)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		runLimit = flag.Duration("timeout", 0, "wall-clock deadline for the whole invocation; on expiry running jobs are canceled and completed results still print (0 = none)")
		jobLimit = flag.Duration("job-timeout", 0, "wall-clock deadline per simulation; a slower job fails with a deadline error carrying the engine diagnosis (0 = none)")
	)
	flag.Parse()
	if *list {
		gsi.Workloads().Describe(os.Stdout)
		return
	}
	if *jsonOut && *chart {
		fail("-chart and -json are mutually exclusive")
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fail("%v", err)
	}
	defer stopProf()

	mode, err := gsi.ParseEngineMode(*engine)
	if err != nil {
		fail("%v", err)
	}
	if *dense {
		mode = gsi.EngineDense
	}

	reg := gsi.Workloads()
	names := splitList(*workload)
	for _, n := range names {
		if _, ok := reg.Lookup(n); !ok {
			fail("unknown workload %q (run -list-workloads for the registry)", n)
		}
	}
	overrides := parseParams(*param)
	localSet := false
	// Legacy shorthand flags fold into the override set when given; a
	// value also present in -param is a conflict, not a silent override.
	shorthand := func(name string, value int) {
		if _, conflict := overrides[name]; conflict {
			fail("-%s and -param %s=... are mutually exclusive", name, name)
		}
		overrides[name] = strconv.Itoa(value)
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "warps":
			shorthand("warps", *warps)
		case "nodes":
			shorthand("nodes", *nodes)
		case "local":
			localSet = true
		}
	})
	// The -local flag is the implicit workload's local-memory axis; it
	// requires an implicit-only selection (other workloads would run
	// duplicate simulations per axis value). Single organizations can
	// also be chosen with -param local=..., which conflicts with the
	// explicit flag.
	var locals []gsi.LocalMem
	if localSet {
		for _, n := range names {
			if n != "implicit" {
				fail("-local applies to the implicit workload only (use -param for %s)", n)
			}
		}
		if _, conflict := overrides["local"]; conflict {
			fail("-local and -param local=... are mutually exclusive")
		}
		locals = parseLocals(*local)
	}

	// values merges the CLI overrides for one grid point (the local-memory
	// axis feeds the implicit workload's "local" parameter).
	values := func(ax gsi.Axes) gsi.WorkloadValues {
		v := gsi.WorkloadValues{}
		for k, val := range overrides {
			v[k] = val
		}
		if ax.Workload == "implicit" && len(locals) > 0 {
			v["local"] = localParam(ax.LocalMem)
		}
		return v
	}
	// Validate every workload × local-memory combination up front so a
	// bad parameter fails before any simulation starts (the factory
	// below runs on pool workers).
	for _, n := range names {
		e, _ := reg.Lookup(n)
		points := []gsi.Axes{{Workload: n}}
		if n == "implicit" && len(locals) > 0 {
			points = points[:0]
			for _, lm := range locals {
				points = append(points, gsi.Axes{Workload: n, LocalMem: lm})
			}
		}
		for _, ax := range points {
			if _, err := e.Build(values(ax)); err != nil {
				fail("%v", err)
			}
		}
	}

	grid := gsi.Grid{
		Name:      "sweep",
		Workloads: names,
		Protocols: parseProtocols(*protocol),
		MSHRSizes: parseInts(*mshr),
		LocalMems: locals,
		Workload: func(ax gsi.Axes) gsi.Workload {
			e, _ := reg.Lookup(ax.Workload)
			w, err := e.Build(values(ax))
			if err != nil {
				// Unreachable: every combination was validated above.
				// Panic rather than exit — the sweep pool recovers a
				// job panic into that job's error, preserving the
				// partial-results path below.
				panic(err)
			}
			return w
		},
		Options: func(ax gsi.Axes) gsi.Options {
			e, _ := reg.Lookup(ax.Workload)
			sys := gsi.DefaultConfig()
			if cfg, err := e.TuneSystem(false, values(ax), sys); err == nil {
				sys = cfg
			}
			if ax.MSHR > 0 {
				sys.MSHREntries = ax.MSHR
				sys.StoreBufEntries = ax.MSHR
			}
			if *sms > 0 {
				sys.NumSMs = *sms
			}
			sys.Engine = mode
			sys.Express = *express
			sys.Parallel = *ticks
			return gsi.Options{System: sys, Protocol: ax.Protocol,
				SFIFO: *sfifo, OwnedAtomics: *owned, Timeline: *timeline}
		},
	}
	sweep := grid.Sweep()

	// Tracing instruments exactly one simulation: a single collector
	// shared across grid points would reset itself per run and race the
	// pool. Attach it to the job after expansion so the sweep layer never
	// sees trace-specific options.
	var tr *gsi.Trace
	if *traceOut != "" || *htmlOut != "" {
		if len(sweep.Jobs) != 1 {
			fail("-trace and -timeline-html need a single configuration, got %d grid points", len(sweep.Jobs))
		}
		tr = gsi.NewTrace()
		sweep.Jobs[0].Options.Trace = tr
	}

	cfg := gsi.SweepConfig{Parallel: *parallel}
	if *ticks > 1 {
		// Nested-parallelism budget: each simulation already spreads its
		// tick pass over *ticks workers, so the sweep fan-out is capped at
		// NumCPU / ticks (at least one job) to keep the product of the two
		// levels within the machine instead of oversubscribing it.
		maxSweep := runtime.NumCPU() / *ticks
		if maxSweep < 1 {
			maxSweep = 1
		}
		if cfg.Parallel == 0 || cfg.Parallel > maxSweep {
			cfg.Parallel = maxSweep
		}
	}
	if !*quiet && len(sweep.Jobs) > 1 {
		cfg.Progress = gsi.ProgressPrinter(os.Stderr)
	}
	cfg.JobTimeout = *jobLimit
	// Ctrl-C (or -timeout expiry) cancels the remaining jobs
	// cooperatively; completed results survive into the partial-results
	// path below instead of being lost with the process.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *runLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runLimit)
		defer cancel()
	}
	results, err := sweep.RunContext(ctx, cfg)
	sweepMode := len(results) > 1
	emit := func(rs []gsi.SweepResult) {
		if *stats {
			// Stderr, not the report stream: engine stats legitimately
			// differ between modes, while stdout stays byte-identical
			// (the CI consistency gate diffs it).
			for _, res := range rs {
				printEngineStats(res.Job.Label, res.Report.EngineStats)
			}
		}
		if *jsonOut {
			if *stats {
				// Explicit opt-in: with both flags the scheduling
				// counters also join the JSON documents (which are then
				// not comparable across engine modes — the plain -json
				// stream stays the byte-identity surface CI diffs).
				for _, res := range rs {
					res.Report.IncludeEngineStats()
				}
			}
			printJSON(rs)
			return
		}
		for _, res := range rs {
			if sweepMode {
				fmt.Printf("### %s\n", res.Job.Label)
			}
			printReport(res.Report, *chart, *timeline)
		}
	}
	if err != nil {
		// The pool keeps running past a bad grid point; don't forfeit the
		// completed simulations — print them, then report the failure.
		var done []gsi.SweepResult
		for _, res := range results {
			if res.Err == nil {
				done = append(done, res)
			}
		}
		if len(done) > 0 {
			emit(done)
		}
		fail("%v", err)
	}
	emit(results)
	if tr != nil {
		if *traceOut != "" {
			exportTrace(*traceOut, tr.WriteChromeTrace)
		}
		if *htmlOut != "" {
			exportTrace(*htmlOut, tr.WriteHTML)
		}
	}
}

// printEngineStats prints one run's scheduling counters to stderr in a
// uniform shape for all four engine modes — the dense loop simply reports
// jumps=0 — so scripted consumers (including the CI event-density gate)
// parse one format everywhere. Jump-width and phase-attribution detail
// lines appear only when the run recorded such events.
func printEngineStats(label string, st gsi.EngineStats) {
	fmt.Fprintf(os.Stderr,
		"engine stats [%s]: steps=%d jumps=%d skipped=%d express=%d demotions=%d\n",
		label, st.Steps, st.Jumps, st.SkippedCycles,
		st.ExpressDeliveries, st.ExpressDemotions)
	if st.Jumps > 0 {
		var sb strings.Builder
		for b, n := range st.JumpHist {
			if n == 0 {
				continue
			}
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "2^%d:%d", b, n)
		}
		fmt.Fprintf(os.Stderr, "  jump widths [%s]: %s\n", label, sb.String())
	}
	if total := st.PhaseNanos.Hub + st.PhaseNanos.Group + st.PhaseNanos.Commit; total > 0 {
		pct := func(v uint64) float64 { return 100 * float64(v) / float64(total) }
		fmt.Fprintf(os.Stderr,
			"  tick phases [%s]: hub=%dns (%.0f%%) group=%dns (%.0f%%) commit=%dns (%.0f%%)\n",
			label, st.PhaseNanos.Hub, pct(st.PhaseNanos.Hub),
			st.PhaseNanos.Group, pct(st.PhaseNanos.Group),
			st.PhaseNanos.Commit, pct(st.PhaseNanos.Commit))
	}
}

// exportTrace writes one trace artifact, failing loudly on any I/O error:
// a truncated trace silently loaded into a viewer is worse than no trace.
func exportTrace(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	if err := write(f); err != nil {
		f.Close()
		fail("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fail("writing %s: %v", path, err)
	}
}

// printJSON emits an array of {label, report} objects — always an array,
// even for one result, so scripted consumers see one shape regardless of
// how many grid points a flag list expands to. The label disambiguates
// grid points, e.g. MSHR sizes, that the report itself does not record.
func printJSON(results []gsi.SweepResult) {
	type labeled struct {
		Label  string      `json:"label"`
		Report *gsi.Report `json:"report"`
	}
	docs := make([]labeled, len(results))
	for i, res := range results {
		docs[i] = labeled{Label: res.Job.Label, Report: res.Report}
	}
	doc, err := json.MarshalIndent(docs, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("%s\n", doc)
}

func printReport(rep *gsi.Report, chart, timeline bool) {
	fmt.Print(rep.Summary())
	if timeline {
		fmt.Print(rep.Timeline)
	}
	if chart {
		for _, b := range []stats.Breakdown{
			rep.ExecBreakdown(), rep.MemDataBreakdown(), rep.MemStructBreakdown(),
		} {
			g := stats.NewGroup(b.Name, b.Labels)
			g.Add(b)
			fmt.Print(g.Chart(64))
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		f = strings.ToLower(strings.TrimSpace(f))
		if f != "" {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		fail("empty workload list")
	}
	return out
}

// parseParams parses "name=value,name=value" override lists.
func parseParams(s string) map[string]string {
	out := map[string]string{}
	if strings.TrimSpace(s) == "" {
		return out
	}
	for _, f := range strings.Split(s, ",") {
		name, value, ok := strings.Cut(strings.TrimSpace(f), "=")
		if !ok || name == "" || value == "" {
			fail("bad -param entry %q (want name=value)", f)
		}
		out[strings.ToLower(name)] = value
	}
	return out
}

func localParam(lm gsi.LocalMem) string {
	switch lm {
	case gsi.ScratchpadDMA:
		return "dma"
	case gsi.Stash:
		return "stash"
	}
	return "scratchpad"
}

func parseProtocols(s string) []gsi.Protocol {
	var out []gsi.Protocol
	for _, f := range strings.Split(s, ",") {
		p, err := gsi.ParseProtocol(f)
		if err != nil {
			fail("%v", err)
		}
		out = append(out, p)
	}
	return out
}

func parseLocals(s string) []gsi.LocalMem {
	var out []gsi.LocalMem
	for _, f := range strings.Split(s, ",") {
		lm, err := gsi.ParseLocalMem(f)
		if err != nil {
			fail("%v", err)
		}
		out = append(out, lm)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			fail("bad MSHR size %q", f)
		}
		out = append(out, v)
	}
	return out
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsi-run: "+format+"\n", args...)
	os.Exit(1)
}
