// Command gsi-run executes one workload under one configuration and prints
// its GSI stall profile.
//
// Examples:
//
//	gsi-run -workload utsd -protocol denovo -nodes 1500
//	gsi-run -workload implicit -local stash -mshr 256 -chart
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gsi"
	"gsi/internal/stats"
)

func main() {
	var (
		workload = flag.String("workload", "implicit", "uts | utsd | implicit")
		protocol = flag.String("protocol", "denovo", "gpu | denovo")
		local    = flag.String("local", "scratchpad", "implicit only: scratchpad | dma | stash")
		nodes    = flag.Int("nodes", 1000, "tree size for uts/utsd")
		sms      = flag.Int("sms", 0, "SM count override (default: 15 for uts/utsd, 1 for implicit)")
		mshr     = flag.Int("mshr", 32, "MSHR (and store buffer) entries")
		sfifo    = flag.Bool("sfifo", false, "enable the S-FIFO release ablation")
		owned    = flag.Bool("owned-atomics", false, "enable the owned-atomics optimization (DeNovo)")
		chart    = flag.Bool("chart", false, "print ASCII charts")
		timeline = flag.Bool("timeline", false, "print the per-SM stall timeline")
	)
	flag.Parse()

	opt := gsi.Options{System: gsi.DefaultConfig(), SFIFO: *sfifo,
		OwnedAtomics: *owned, Timeline: *timeline}
	switch strings.ToLower(*protocol) {
	case "gpu", "gpucoherence", "gpu-coherence":
		opt.Protocol = gsi.GPUCoherence
	case "denovo":
		opt.Protocol = gsi.DeNovo
	default:
		fail("unknown protocol %q", *protocol)
	}
	opt.System.MSHREntries = *mshr
	opt.System.StoreBufEntries = *mshr

	var w gsi.Workload
	switch strings.ToLower(*workload) {
	case "uts":
		w = gsi.NewUTS(*nodes)
	case "utsd":
		w = gsi.NewUTSD(*nodes)
	case "implicit":
		opt.System = gsi.ImplicitSystem(*mshr)
		switch strings.ToLower(*local) {
		case "scratchpad", "scratch":
			w = gsi.NewImplicit(gsi.Scratchpad)
		case "dma", "scratchpad+dma":
			w = gsi.NewImplicit(gsi.ScratchpadDMA)
		case "stash":
			w = gsi.NewImplicit(gsi.Stash)
		default:
			fail("unknown local memory %q", *local)
		}
	default:
		fail("unknown workload %q", *workload)
	}
	if *sms > 0 {
		opt.System.NumSMs = *sms
	}

	rep, err := gsi.Run(opt, w)
	if err != nil {
		fail("%v", err)
	}
	fmt.Print(rep.Summary())
	if *timeline {
		fmt.Print(rep.Timeline)
	}
	if *chart {
		for _, b := range []stats.Breakdown{
			rep.ExecBreakdown(), rep.MemDataBreakdown(), rep.MemStructBreakdown(),
		} {
			g := stats.NewGroup(b.Name, b.Labels)
			g.Add(b)
			fmt.Print(g.Chart(64))
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsi-run: "+format+"\n", args...)
	os.Exit(1)
}
