// Command gsi-run executes workloads under one or many configurations and
// prints their GSI stall profiles. The -protocol, -local, and -mshr flags
// accept comma-separated lists; supplying more than one value turns the
// invocation into a cartesian sweep executed by the worker pool (results
// are printed in grid order, identical for any -parallel value).
//
// Examples:
//
//	gsi-run -workload utsd -protocol denovo -nodes 1500
//	gsi-run -workload implicit -local stash -mshr 256 -chart
//	gsi-run -workload implicit -local scratchpad,dma,stash -mshr 32,64,128,256,512 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gsi"
	"gsi/internal/prof"
	"gsi/internal/stats"
)

func main() {
	var (
		workload = flag.String("workload", "implicit", "uts | utsd | implicit")
		protocol = flag.String("protocol", "denovo", "comma-separated: gpu | denovo")
		local    = flag.String("local", "scratchpad", "implicit only, comma-separated: scratchpad | dma | stash")
		warps    = flag.Int("warps", 0, "implicit only: warp count override (fewer warps = less MLP, more latency-dominated)")
		nodes    = flag.Int("nodes", 1000, "tree size for uts/utsd")
		sms      = flag.Int("sms", 0, "SM count override (default: 15 for uts/utsd, 1 for implicit)")
		mshr     = flag.String("mshr", "32", "comma-separated MSHR (and store buffer) entries")
		sfifo    = flag.Bool("sfifo", false, "enable the S-FIFO release ablation")
		owned    = flag.Bool("owned-atomics", false, "enable the owned-atomics optimization (DeNovo)")
		chart    = flag.Bool("chart", false, "print ASCII charts")
		timeline = flag.Bool("timeline", false, "print the per-SM stall timeline")
		jsonOut  = flag.Bool("json", false, "emit JSON reports instead of text summaries")
		parallel = flag.Int("parallel", 0, "sweep workers (0 = all cores, 1 = serial)")
		quiet    = flag.Bool("quiet", false, "suppress sweep progress on stderr")
		engine   = flag.String("engine", "skip", "scheduling engine: dense | quiescent | skip (all byte-identical)")
		dense    = flag.Bool("dense", false, "shorthand for -engine dense")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *jsonOut && *chart {
		fail("-chart and -json are mutually exclusive")
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fail("%v", err)
	}
	defer stopProf()

	mode, err := gsi.ParseEngineMode(*engine)
	if err != nil {
		fail("%v", err)
	}
	if *dense {
		mode = gsi.EngineDense
	}

	protocols := parseProtocols(*protocol)
	mshrs := parseInts(*mshr)
	kind, implicit := parseWorkload(*workload)
	localSet, warpsSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "local":
			localSet = true
		case "warps":
			warpsSet = true
		}
	})
	var locals []gsi.LocalMem
	if implicit {
		locals = parseLocals(*local)
	} else if localSet {
		fail("-local applies to the implicit workload only")
	}
	if warpsSet && !implicit {
		fail("-warps applies to the implicit workload only")
	}
	if warpsSet && *warps <= 0 {
		fail("bad warp count %d", *warps)
	}

	grid := gsi.Grid{
		Name:      "sweep",
		Protocols: protocols,
		MSHRSizes: mshrs,
		LocalMems: locals,
	}
	if implicit {
		grid.System = gsi.ImplicitSystem(mshrs[0])
		if warpsSet {
			p := gsi.DefaultImplicit()
			p.Warps = *warps
			if *warps < grid.System.WarpsPerSM {
				grid.System.WarpsPerSM = *warps
			}
			grid.Workload = func(ax gsi.Axes) gsi.Workload { return gsi.NewImplicitWith(p, ax.LocalMem) }
		} else {
			grid.Workload = func(ax gsi.Axes) gsi.Workload { return gsi.NewImplicit(ax.LocalMem) }
		}
	} else {
		n := *nodes
		if kind == "uts" {
			grid.Workload = func(gsi.Axes) gsi.Workload { return gsi.NewUTS(n) }
		} else {
			grid.Workload = func(gsi.Axes) gsi.Workload { return gsi.NewUTSD(n) }
		}
	}
	sweep := grid.Sweep()
	// Flags that apply uniformly to every grid point.
	for i := range sweep.Jobs {
		o := &sweep.Jobs[i].Options
		o.SFIFO = *sfifo
		o.OwnedAtomics = *owned
		o.Timeline = *timeline
		if *sms > 0 {
			o.System.NumSMs = *sms
		}
		o.System.Engine = mode
	}

	cfg := gsi.SweepConfig{Parallel: *parallel}
	if !*quiet && len(sweep.Jobs) > 1 {
		cfg.Progress = gsi.ProgressPrinter(os.Stderr)
	}
	results, err := sweep.Run(cfg)
	sweepMode := len(results) > 1
	emit := func(rs []gsi.SweepResult) {
		if *jsonOut {
			printJSON(rs)
			return
		}
		for _, res := range rs {
			if sweepMode {
				fmt.Printf("### %s\n", res.Job.Label)
			}
			printReport(res.Report, *chart, *timeline)
		}
	}
	if err != nil {
		// The pool keeps running past a bad grid point; don't forfeit the
		// completed simulations — print them, then report the failure.
		var done []gsi.SweepResult
		for _, res := range results {
			if res.Err == nil {
				done = append(done, res)
			}
		}
		if len(done) > 0 {
			emit(done)
		}
		fail("%v", err)
	}
	emit(results)
}

// printJSON emits an array of {label, report} objects — always an array,
// even for one result, so scripted consumers see one shape regardless of
// how many grid points a flag list expands to. The label disambiguates
// grid points, e.g. MSHR sizes, that the report itself does not record.
func printJSON(results []gsi.SweepResult) {
	type labeled struct {
		Label  string      `json:"label"`
		Report *gsi.Report `json:"report"`
	}
	docs := make([]labeled, len(results))
	for i, res := range results {
		docs[i] = labeled{Label: res.Job.Label, Report: res.Report}
	}
	doc, err := json.MarshalIndent(docs, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("%s\n", doc)
}

func printReport(rep *gsi.Report, chart, timeline bool) {
	fmt.Print(rep.Summary())
	if timeline {
		fmt.Print(rep.Timeline)
	}
	if chart {
		for _, b := range []stats.Breakdown{
			rep.ExecBreakdown(), rep.MemDataBreakdown(), rep.MemStructBreakdown(),
		} {
			g := stats.NewGroup(b.Name, b.Labels)
			g.Add(b)
			fmt.Print(g.Chart(64))
		}
	}
}

func parseWorkload(s string) (kind string, implicit bool) {
	switch strings.ToLower(s) {
	case "uts":
		return "uts", false
	case "utsd":
		return "utsd", false
	case "implicit":
		return "implicit", true
	}
	fail("unknown workload %q", s)
	return "", false
}

func parseProtocols(s string) []gsi.Protocol {
	var out []gsi.Protocol
	for _, f := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(f)) {
		case "gpu", "gpucoherence", "gpu-coherence":
			out = append(out, gsi.GPUCoherence)
		case "denovo":
			out = append(out, gsi.DeNovo)
		default:
			fail("unknown protocol %q", f)
		}
	}
	return out
}

func parseLocals(s string) []gsi.LocalMem {
	var out []gsi.LocalMem
	for _, f := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(f)) {
		case "scratchpad", "scratch":
			out = append(out, gsi.Scratchpad)
		case "dma", "scratchpad+dma":
			out = append(out, gsi.ScratchpadDMA)
		case "stash":
			out = append(out, gsi.Stash)
		default:
			fail("unknown local memory %q", f)
		}
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			fail("bad MSHR size %q", f)
		}
		out = append(out, v)
	}
	return out
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsi-run: "+format+"\n", args...)
	os.Exit(1)
}
