package gsi

import (
	"errors"
	"strings"
	"testing"
)

// determinismGrid is an 8-point grid over fast implicit-microbenchmark
// configurations: 2 local memories x 2 MSHR sizes x 2 classifier
// ablations.
func determinismGrid() Grid {
	return Grid{
		Name:        "determinism",
		MSHRSizes:   []int{16, 32},
		LocalMems:   []LocalMem{Scratchpad, Stash},
		StrongCycle: []bool{false, true},
		System:      implicitSystem(32),
		Workload:    func(ax Axes) Workload { return NewImplicit(ax.LocalMem) },
	}
}

// renderAll is the byte-comparison surface: every report's full text
// summary in job order.
func renderAll(results []SweepResult) string {
	var sb strings.Builder
	for _, r := range results {
		sb.WriteString("## ")
		sb.WriteString(r.Job.Label)
		sb.WriteString("\n")
		sb.WriteString(r.Report.Summary())
	}
	return sb.String()
}

// TestSweepDeterminism is the engine's core guarantee: a parallel run is
// byte-identical to the serial run — same Counts, same rendered reports —
// because simulations share nothing and results are returned in job order.
// Under -race this is also the concurrency-safety test for the pool.
func TestSweepDeterminism(t *testing.T) {
	s := determinismGrid().Sweep()
	if len(s.Jobs) != 8 {
		t.Fatalf("grid expanded to %d jobs, want 8", len(s.Jobs))
	}
	serial, err := s.Run(SweepConfig{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := s.Run(SweepConfig{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Report.Counts != parallel[i].Report.Counts {
			t.Errorf("job %d (%s): Counts differ between serial and parallel runs",
				i, serial[i].Job.Label)
		}
		if serial[i].Report.Cycles != parallel[i].Report.Cycles {
			t.Errorf("job %d (%s): cycles %d (serial) vs %d (parallel)",
				i, serial[i].Job.Label, serial[i].Report.Cycles, parallel[i].Report.Cycles)
		}
	}
	if a, b := renderAll(serial), renderAll(parallel); a != b {
		t.Fatalf("rendered reports not byte-identical:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestFigureSpecsMatchSerialFigures pins the refactor: running the figure
// specs through the batched pool reproduces exactly what the serial
// FigureXX wrappers produce.
func TestFigureSpecsMatchSerialFigures(t *testing.T) {
	sc := testScale()
	serial, err := Figure63()
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Figure63Spec().Run(SweepConfig{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := serial.Render(64), pooled.Render(64); a != b {
		t.Fatalf("figure 6.3 differs between serial and pooled runs:\n%s\nvs\n%s", a, b)
	}

	specs := Figure64Specs(sc)
	sets, err := RunFigureSpecs(specs, SweepConfig{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Figure64(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != len(ref) {
		t.Fatalf("%d sets, want %d", len(sets), len(ref))
	}
	base := Figure64Baseline(ref)
	for i := range sets {
		if a, b := ref[i].RenderTo(64, base), sets[i].RenderTo(64, Figure64Baseline(sets)); a != b {
			t.Errorf("figure %s differs between serial and pooled runs", ref[i].ID)
		}
	}
}

func TestGridExpansionOrderAndLabels(t *testing.T) {
	g := Grid{
		Name:      "order",
		Protocols: []Protocol{GPUCoherence, DeNovo},
		MSHRSizes: []int{32, 64},
		Workload:  func(Axes) Workload { return NewImplicit(Scratchpad) },
	}
	s := g.Sweep()
	want := []string{
		"GPU coherence mshr=32",
		"GPU coherence mshr=64",
		"DeNovo mshr=32",
		"DeNovo mshr=64",
	}
	if len(s.Jobs) != len(want) {
		t.Fatalf("%d jobs, want %d", len(s.Jobs), len(want))
	}
	for i, w := range want {
		if s.Jobs[i].Label != w {
			t.Errorf("job %d label %q, want %q", i, s.Jobs[i].Label, w)
		}
	}
	// The MSHR axis must override both the MSHR and the store buffer,
	// figure 6.4's convention.
	if got := s.Jobs[1].Options.System.MSHREntries; got != 64 {
		t.Errorf("job 1 MSHR = %d, want 64", got)
	}
	if got := s.Jobs[1].Options.System.StoreBufEntries; got != 64 {
		t.Errorf("job 1 store buffer = %d, want 64", got)
	}
	if s.Jobs[2].Options.Protocol != DeNovo {
		t.Error("job 2 protocol not DeNovo")
	}
}

func TestGridDefaultsAndEmptyAxes(t *testing.T) {
	g := Grid{Workload: func(Axes) Workload { return NewImplicit(Scratchpad) }}
	s := g.Sweep()
	if len(s.Jobs) != 1 {
		t.Fatalf("empty grid expanded to %d jobs, want 1", len(s.Jobs))
	}
	j := s.Jobs[0]
	if j.Label != "default" {
		t.Errorf("label %q, want \"default\"", j.Label)
	}
	if j.Options.Protocol != DeNovo {
		t.Error("default protocol not DeNovo")
	}
	if j.Options.System.NumSMs == 0 {
		t.Error("zero System not defaulted")
	}
}

// TestGridLocalMemAxisDistinctReports is the regression test for the
// silently ignored LocalMems axis: a registry-built grid combining the
// Workloads axis with LocalMems must thread each point's organization
// into the build, so distinct axis values produce distinct simulations —
// not identical runs under different labels.
func TestGridLocalMemAxisDistinctReports(t *testing.T) {
	g := Grid{
		Name:      "localmem-axis",
		Workloads: []string{"implicit"},
		LocalMems: []LocalMem{Scratchpad, Stash},
		Params:    WorkloadValues{"warps": "4", "databytes": "2048", "rounds": "1"},
	}
	results, err := g.Sweep().Run(SweepConfig{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	if a, b := results[0].Job.Label, results[1].Job.Label; a == b {
		t.Errorf("labels identical: %q", a)
	}
	if got := results[1].Report.LocalMem; got != "stash" {
		t.Errorf("second point ran local memory %q, want stash", got)
	}
	if results[0].Report.Counts == results[1].Report.Counts &&
		results[0].Report.Cycles == results[1].Report.Cycles {
		t.Error("distinct LocalMems axis values produced identical simulations")
	}
}

// TestGridLocalMemAxisRejectsWorkloadWithoutLocalParam: combining the
// LocalMems axis with a workload that has no local-memory organization
// must fail that job with a clear error instead of silently running
// duplicate simulations per axis value.
func TestGridLocalMemAxisRejectsWorkloadWithoutLocalParam(t *testing.T) {
	g := Grid{
		Name:      "localmem-mismatch",
		Workloads: []string{"uts"},
		LocalMems: []LocalMem{Scratchpad, Stash},
	}
	_, err := g.Sweep().Run(SweepConfig{Parallel: 1})
	if err == nil {
		t.Fatal("uts x LocalMems grid ran without error")
	}
	if !strings.Contains(err.Error(), `no parameter "local"`) {
		t.Errorf("error %q does not explain the local-parameter mismatch", err)
	}
}

// TestGridTuneErrorSurfaces is the regression test for the swallowed
// TuneSystem error: a point whose system tune fails must surface that as
// the job's error rather than silently simulating the untuned machine.
func TestGridTuneErrorSurfaces(t *testing.T) {
	g := Grid{
		Name:      "tune-error",
		Workloads: []string{"implicit"}, // has a Tune hook, so resolve runs
		Params:    WorkloadValues{"bogus": "1"},
	}
	results, err := g.Sweep().Run(SweepConfig{Parallel: 1})
	if err == nil {
		t.Fatal("grid with a bad override ran without error")
	}
	for _, want := range []string{"tuning system", "bogus"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if results[0].Report != nil {
		t.Error("failed tune still produced a report")
	}
}

// TestProgressPrinterFailureCause: FAILED lines must say why — the job's
// error, truncated to one line.
func TestProgressPrinterFailureCause(t *testing.T) {
	var sb strings.Builder
	print := ProgressPrinter(&sb)
	print(SweepProgress{Done: 1, Total: 2, Label: "ok-job"})
	print(SweepProgress{Done: 2, Total: 2, Label: "bad-job",
		Err: errors.New("gsi: building x: bad\nparameter")})
	out := sb.String()
	if !strings.Contains(out, "[1/2] ok-job (ok)") {
		t.Errorf("success line malformed:\n%s", out)
	}
	if !strings.Contains(out, "(FAILED: gsi: building x: bad parameter)") {
		t.Errorf("failure line does not carry the single-line cause:\n%s", out)
	}

	sb.Reset()
	print(SweepProgress{Done: 1, Total: 1, Label: "verbose",
		Err: errors.New(strings.Repeat("x", 500))})
	line := sb.String()
	if len(line) > 200 {
		t.Errorf("failure line not truncated: %d bytes", len(line))
	}
	if !strings.Contains(line, "...") {
		t.Errorf("truncated line missing elision marker:\n%s", line)
	}
}

// TestSweepErrorPolicy: a failing job yields the lowest-index error while
// the healthy jobs still return reports, serial or parallel alike.
func TestSweepErrorPolicy(t *testing.T) {
	var s Sweep
	s.Name = "errors"
	bad := DefaultConfig()
	bad.MSHREntries = 0 // fails validation
	s.Add("ok-a", Options{System: implicitSystem(32), Protocol: DeNovo},
		func() Workload { return NewImplicit(Scratchpad) })
	s.Add("bad", Options{System: bad}, func() Workload { return NewImplicit(Scratchpad) })
	s.Add("ok-b", Options{System: implicitSystem(32), Protocol: DeNovo},
		func() Workload { return NewImplicit(Stash) })

	for _, par := range []int{1, 4} {
		results, err := s.Run(SweepConfig{Parallel: par})
		if err == nil {
			t.Fatalf("parallel=%d: no error from failing job", par)
		}
		if !strings.Contains(err.Error(), `"bad"`) {
			t.Errorf("parallel=%d: error %q does not name the failing job", par, err)
		}
		if results[0].Report == nil || results[2].Report == nil {
			t.Errorf("parallel=%d: healthy jobs lost their reports", par)
		}
		if results[1].Err == nil || results[1].Report != nil {
			t.Errorf("parallel=%d: failing job result inconsistent: %+v", par, results[1])
		}
	}
}

// TestRunFigureSpecsProgressNamesFigure: batched figures repeat bar labels
// ("stash" appears in 6.3 and every 6.4 size), so progress events and job
// errors must carry the figure name.
func TestRunFigureSpecsProgressNamesFigure(t *testing.T) {
	var labels []string
	_, err := RunFigureSpecs([]FigureSpec{Figure63Spec()},
		SweepConfig{Parallel: 1, Progress: func(p SweepProgress) { labels = append(labels, p.Label) }})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if !strings.HasPrefix(l, "figure 6.3: ") {
			t.Errorf("progress label %q does not name the figure", l)
		}
	}
}

// TestSweepPanicNamesJob: a panicking job surfaces as an error carrying
// the sweep name and job label, not just a batch index.
func TestSweepPanicNamesJob(t *testing.T) {
	var s Sweep
	s.Name = "panics"
	s.Add("ok", Options{System: implicitSystem(32), Protocol: DeNovo},
		func() Workload { return NewImplicit(Scratchpad) })
	s.Add("exploder", Options{System: implicitSystem(32), Protocol: DeNovo},
		func() Workload { panic("kaboom") })
	results, err := s.Run(SweepConfig{Parallel: 2})
	if err == nil {
		t.Fatal("panicking job produced no error")
	}
	for _, want := range []string{"panics", `"exploder"`, "kaboom"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("panic error %q missing %q", err, want)
		}
	}
	if results[0].Report == nil {
		t.Error("healthy job lost its report")
	}
}

func TestSweepProgressEvents(t *testing.T) {
	s := determinismGrid().Sweep()
	var events []SweepProgress
	_, err := s.Run(SweepConfig{Parallel: 4, Progress: func(p SweepProgress) {
		events = append(events, p)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(s.Jobs) {
		t.Fatalf("%d progress events, want %d", len(events), len(s.Jobs))
	}
	seen := make(map[int]bool)
	for i, e := range events {
		if e.Done != i+1 || e.Total != len(s.Jobs) {
			t.Errorf("event %d: done %d/%d, want %d/%d", i, e.Done, e.Total, i+1, len(s.Jobs))
		}
		if seen[e.Index] {
			t.Errorf("index %d reported twice", e.Index)
		}
		seen[e.Index] = true
		if e.Label != s.Jobs[e.Index].Label {
			t.Errorf("event %d: label %q, want %q", i, e.Label, s.Jobs[e.Index].Label)
		}
	}
}
