package gsi

import (
	"fmt"
	"strings"

	"gsi/internal/core"
	"gsi/internal/gpu"
	"gsi/internal/stats"
)

// Report is the outcome of one simulation: GSI's aggregated stall counts
// plus enough system statistics to sanity-check the run.
type Report struct {
	Workload string
	Protocol string
	// LocalMem names the local-memory organization for case-study-2
	// workloads ("" otherwise).
	LocalMem string
	// Cycles is the kernel execution time in GPU cycles.
	Cycles uint64
	// Counts aggregates every SM's classified cycles; PerSM keeps the
	// per-core profiles.
	Counts core.Counts
	PerSM  []core.Counts

	// System-level statistics.
	Net          NetStats
	Mem          MemStats
	InstrsIssued uint64

	// Timeline is the rendered per-SM stall timeline (empty unless
	// Options.Timeline was set).
	Timeline string
}

// NetStats summarizes interconnect traffic.
type NetStats struct {
	Messages uint64
	Hops     uint64
}

// MemStats summarizes memory-side event counts across GPU cores.
type MemStats struct {
	L1Hits, L1Misses, MSHRMerges uint64
	MSHRFullEvents, SBFullEvents uint64
	Flushes, ReleaseFlushes      uint64
	FlushNoops                   uint64
	WriteThroughs, OwnReqs       uint64
	RemoteServed, Atomics        uint64
	LocalAtomics                 uint64
	MemRequests                  uint64
}

func newReport(workload string, opt Options, g *gpu.GPU, cycles uint64) *Report {
	r := &Report{
		Workload: workload,
		Protocol: opt.Protocol.String(),
		LocalMem: localMemOf(workload),
		Cycles:   cycles,
		Counts:   g.Insp.Aggregate(),
		PerSM:    make([]core.Counts, g.Insp.NumSMs()),
	}
	for i := range r.PerSM {
		r.PerSM[i] = *g.Insp.SM(i)
	}
	r.Net = NetStats{Messages: g.Sys.Mesh.Stats.Messages, Hops: g.Sys.Mesh.Stats.Hops}
	for i := 0; i < g.Cfg.NumSMs; i++ {
		s := g.Sys.Cores[i].Stats
		r.Mem.L1Hits += s.Hits
		r.Mem.L1Misses += s.Misses
		r.Mem.MSHRMerges += s.Merges
		r.Mem.MSHRFullEvents += s.MSHRFullEvents
		r.Mem.SBFullEvents += s.SBFullEvents
		r.Mem.Flushes += s.Flushes
		r.Mem.ReleaseFlushes += s.ReleaseFlushes
		r.Mem.FlushNoops += s.FlushNoops
		r.Mem.WriteThroughs += s.WriteThroughs
		r.Mem.OwnReqs += s.OwnReqs
		r.Mem.RemoteServed += s.RemoteServed
		r.Mem.Atomics += s.Atomics
		r.Mem.LocalAtomics += s.LocalAtomics
	}
	r.Mem.MemRequests = g.Sys.Ctrl.Requests
	for _, sm := range g.SMs {
		r.InstrsIssued += sm.InstrsIssued
	}
	if g.Insp.Timeline != nil {
		r.Timeline = g.Insp.Timeline.Render()
	}
	return r
}

// ExecBreakdown returns the execution-time breakdown (figure "a" of each
// case study): total cycles across SMs by top-level stall kind.
func (r *Report) ExecBreakdown() stats.Breakdown {
	kinds := core.StallKinds()
	labels := make([]string, len(kinds))
	values := make([]float64, len(kinds))
	for i, k := range kinds {
		labels[i] = k.String()
		values[i] = float64(r.Counts.Cycles[k])
	}
	return stats.NewBreakdown(r.barName(), labels, values)
}

// MemDataBreakdown returns the memory data stall sub-classification
// (figure "b"): stall cycles by where the blocking load was serviced.
func (r *Report) MemDataBreakdown() stats.Breakdown {
	wheres := core.DataWheres()
	labels := make([]string, len(wheres))
	values := make([]float64, len(wheres))
	for i, wh := range wheres {
		labels[i] = wh.String()
		values[i] = float64(r.Counts.MemData[wh])
	}
	// Unresolved in-flight loads were flushed to main memory by the
	// Inspector; surface any "unknown" remainder there too.
	values[len(values)-1] += float64(r.Counts.MemData[core.WhereUnknown])
	return stats.NewBreakdown(r.barName(), labels, values)
}

// MemStructBreakdown returns the memory structural stall
// sub-classification (figure "c"): stall cycles by blocking resource.
func (r *Report) MemStructBreakdown() stats.Breakdown {
	causes := core.StructCauses()
	labels := make([]string, len(causes))
	values := make([]float64, len(causes))
	for i, c := range causes {
		labels[i] = c.String()
		values[i] = float64(r.Counts.MemStruct[c])
	}
	return stats.NewBreakdown(r.barName(), labels, values)
}

// CompDataBreakdown sub-classifies compute data stalls by the producing
// pipeline (the paper's suggested extension for functional-unit studies).
func (r *Report) CompDataBreakdown() stats.Breakdown {
	units := core.CompUnits()
	labels := make([]string, len(units))
	values := make([]float64, len(units))
	for i, u := range units {
		labels[i] = u.String()
		values[i] = float64(r.Counts.CompData[u])
	}
	return stats.NewBreakdown(r.barName(), labels, values)
}

// CompStructBreakdown sub-classifies compute structural stalls by the
// contended pipeline.
func (r *Report) CompStructBreakdown() stats.Breakdown {
	units := core.CompUnits()
	labels := make([]string, len(units))
	values := make([]float64, len(units))
	for i, u := range units {
		labels[i] = u.String()
		values[i] = float64(r.Counts.CompStruct[u])
	}
	return stats.NewBreakdown(r.barName(), labels, values)
}

// localMemOf extracts the organization from a case-study-2 workload name
// like "implicit (stash)".
func localMemOf(workload string) string {
	if !strings.HasPrefix(workload, "implicit (") {
		return ""
	}
	return strings.TrimSuffix(strings.TrimPrefix(workload, "implicit ("), ")")
}

// barName labels this run's bar in grouped figures: case study 2 compares
// local-memory organizations (all under DeNovo), case study 1 protocols.
func (r *Report) barName() string {
	if r.LocalMem != "" {
		return r.LocalMem
	}
	return r.Protocol
}

// Summary renders a one-run overview: totals, the three breakdowns, and
// key memory-system counters.
func (r *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload: %s   protocol: %s   cycles: %d   instrs: %d\n",
		r.Workload, r.Protocol, r.Cycles, r.InstrsIssued)
	exec := stats.NewGroup("execution time breakdown (cycles across SMs)", r.ExecBreakdown().Labels)
	exec.Add(r.ExecBreakdown())
	sb.WriteString(exec.Table())
	data := stats.NewGroup("memory data stalls by service location", r.MemDataBreakdown().Labels)
	data.Add(r.MemDataBreakdown())
	sb.WriteString(data.Table())
	st := stats.NewGroup("memory structural stalls by cause", r.MemStructBreakdown().Labels)
	st.Add(r.MemStructBreakdown())
	sb.WriteString(st.Table())
	fmt.Fprintf(&sb, "L1 hits %d  misses %d  merges %d  |  flushes %d (release %d, no-op lines %d)\n",
		r.Mem.L1Hits, r.Mem.L1Misses, r.Mem.MSHRMerges,
		r.Mem.Flushes, r.Mem.ReleaseFlushes, r.Mem.FlushNoops)
	fmt.Fprintf(&sb, "write-throughs %d  ownership reqs %d  remote L1 served %d  atomics %d (%d local)  DRAM reqs %d\n",
		r.Mem.WriteThroughs, r.Mem.OwnReqs, r.Mem.RemoteServed, r.Mem.Atomics, r.Mem.LocalAtomics, r.Mem.MemRequests)
	fmt.Fprintf(&sb, "network: %d messages, %d hops\n", r.Net.Messages, r.Net.Hops)
	return sb.String()
}
