package gsi

import (
	"encoding/json"
	"fmt"
	"strings"

	"gsi/internal/core"
	"gsi/internal/gpu"
	"gsi/internal/stats"
)

// Report is the outcome of one simulation: GSI's aggregated stall counts
// plus enough system statistics to sanity-check the run.
type Report struct {
	Workload string `json:"workload"`
	Protocol string `json:"protocol"`
	// LocalMem names the local-memory organization for case-study-2
	// workloads ("" otherwise).
	LocalMem string `json:"localMem,omitempty"`
	// Cycles is the kernel execution time in GPU cycles.
	Cycles uint64 `json:"cycles"`
	// Counts aggregates every SM's classified cycles; PerSM keeps the
	// per-core profiles.
	Counts core.Counts   `json:"counts"`
	PerSM  []core.Counts `json:"perSM"`

	// System-level statistics.
	Net          NetStats `json:"net"`
	Mem          MemStats `json:"mem"`
	InstrsIssued uint64   `json:"instrsIssued"`

	// Timeline is the rendered per-SM stall timeline (empty unless
	// Options.Timeline was set).
	Timeline string `json:"timeline,omitempty"`

	// TimelineData is the structured form of Timeline: the bucketed
	// per-SM, per-kind cycle counts behind the ASCII rendering (nil unless
	// Options.Timeline was set). Excluded from JSON by default so the
	// default encoding stays exactly as before; opt in explicitly with
	// IncludeTimeline, which mirrors it into TimelineJSON.
	TimelineData *core.TimelineSnapshot `json:"-"`

	// TimelineJSON is the explicit opt-in JSON carrier for TimelineData:
	// nil (and therefore absent) by default, set by IncludeTimeline.
	// DecodeReport folds a present block back into TimelineData, so the
	// opt-in round-trips exactly.
	TimelineJSON *core.TimelineSnapshot `json:"timelineData,omitempty"`

	// EngineStats counts the scheduling work of the run (tick passes,
	// skip-ahead jumps, skipped cycles, express-routed mesh deliveries
	// and demotions). Excluded from JSON by default: every engine mode
	// produces identical simulation results, but their scheduling cost
	// necessarily differs, and the serialized report is the
	// byte-identity contract between them. Opt in explicitly with
	// IncludeEngineStats, which mirrors the counters into Scheduling.
	EngineStats EngineStats `json:"-"`

	// Scheduling is the explicit opt-in JSON carrier for EngineStats:
	// nil (and therefore absent) by default, set by IncludeEngineStats.
	// DecodeReport folds a present block back into EngineStats, so the
	// opt-in round-trips exactly. Documents carrying it are not
	// byte-comparable across engine modes — the default encoding remains
	// the cross-engine contract.
	Scheduling *EngineStats `json:"engineStats,omitempty"`
}

// NetStats summarizes interconnect traffic.
type NetStats struct {
	Messages uint64 `json:"messages"`
	Hops     uint64 `json:"hops"`
}

// MemStats summarizes memory-side event counts across GPU cores.
type MemStats struct {
	L1Hits         uint64 `json:"l1Hits"`
	L1Misses       uint64 `json:"l1Misses"`
	MSHRMerges     uint64 `json:"mshrMerges"`
	MSHRFullEvents uint64 `json:"mshrFullEvents"`
	SBFullEvents   uint64 `json:"sbFullEvents"`
	Flushes        uint64 `json:"flushes"`
	ReleaseFlushes uint64 `json:"releaseFlushes"`
	FlushNoops     uint64 `json:"flushNoops"`
	WriteThroughs  uint64 `json:"writeThroughs"`
	OwnReqs        uint64 `json:"ownReqs"`
	RemoteServed   uint64 `json:"remoteServed"`
	Atomics        uint64 `json:"atomics"`
	LocalAtomics   uint64 `json:"localAtomics"`
	MemRequests    uint64 `json:"memRequests"`
}

func newReport(workload string, opt Options, g *gpu.GPU, cycles uint64) *Report {
	r := &Report{
		Workload: workload,
		Protocol: opt.Protocol.String(),
		LocalMem: localMemOf(workload),
		Cycles:   cycles,
		Counts:   g.Insp.Aggregate(),
		PerSM:    make([]core.Counts, g.Insp.NumSMs()),
	}
	for i := range r.PerSM {
		r.PerSM[i] = *g.Insp.SM(i)
	}
	r.Net = NetStats{Messages: g.Sys.Mesh.Stats.Messages, Hops: g.Sys.Mesh.Stats.Hops}
	for i := 0; i < g.Cfg.NumSMs; i++ {
		s := g.Sys.Cores[i].Stats
		r.Mem.L1Hits += s.Hits
		r.Mem.L1Misses += s.Misses
		r.Mem.MSHRMerges += s.Merges
		r.Mem.MSHRFullEvents += s.MSHRFullEvents
		r.Mem.SBFullEvents += s.SBFullEvents
		r.Mem.Flushes += s.Flushes
		r.Mem.ReleaseFlushes += s.ReleaseFlushes
		r.Mem.FlushNoops += s.FlushNoops
		r.Mem.WriteThroughs += s.WriteThroughs
		r.Mem.OwnReqs += s.OwnReqs
		r.Mem.RemoteServed += s.RemoteServed
		r.Mem.Atomics += s.Atomics
		r.Mem.LocalAtomics += s.LocalAtomics
	}
	r.Mem.MemRequests = g.Sys.Ctrl.Requests
	for _, sm := range g.SMs {
		r.InstrsIssued += sm.InstrsIssued
	}
	r.EngineStats = g.EngineStats
	if g.Insp.Timeline != nil {
		r.Timeline = g.Insp.Timeline.Render()
		r.TimelineData = g.Insp.Timeline.Snapshot()
	}
	return r
}

// ExecBreakdown returns the execution-time breakdown (figure "a" of each
// case study): total cycles across SMs by top-level stall kind.
func (r *Report) ExecBreakdown() stats.Breakdown {
	kinds := core.StallKinds()
	labels := make([]string, len(kinds))
	values := make([]float64, len(kinds))
	for i, k := range kinds {
		labels[i] = k.String()
		values[i] = float64(r.Counts.Cycles[k])
	}
	return stats.NewBreakdown(r.barName(), labels, values)
}

// MemDataBreakdown returns the memory data stall sub-classification
// (figure "b"): stall cycles by where the blocking load was serviced.
func (r *Report) MemDataBreakdown() stats.Breakdown {
	wheres := core.DataWheres()
	labels := make([]string, len(wheres))
	values := make([]float64, len(wheres))
	for i, wh := range wheres {
		labels[i] = wh.String()
		values[i] = float64(r.Counts.MemData[wh])
	}
	// Unresolved in-flight loads were flushed to main memory by the
	// Inspector; surface any "unknown" remainder there too.
	values[len(values)-1] += float64(r.Counts.MemData[core.WhereUnknown])
	return stats.NewBreakdown(r.barName(), labels, values)
}

// MemStructBreakdown returns the memory structural stall
// sub-classification (figure "c"): stall cycles by blocking resource.
func (r *Report) MemStructBreakdown() stats.Breakdown {
	causes := core.StructCauses()
	labels := make([]string, len(causes))
	values := make([]float64, len(causes))
	for i, c := range causes {
		labels[i] = c.String()
		values[i] = float64(r.Counts.MemStruct[c])
	}
	return stats.NewBreakdown(r.barName(), labels, values)
}

// CompDataBreakdown sub-classifies compute data stalls by the producing
// pipeline (the paper's suggested extension for functional-unit studies).
func (r *Report) CompDataBreakdown() stats.Breakdown {
	units := core.CompUnits()
	labels := make([]string, len(units))
	values := make([]float64, len(units))
	for i, u := range units {
		labels[i] = u.String()
		values[i] = float64(r.Counts.CompData[u])
	}
	return stats.NewBreakdown(r.barName(), labels, values)
}

// CompStructBreakdown sub-classifies compute structural stalls by the
// contended pipeline.
func (r *Report) CompStructBreakdown() stats.Breakdown {
	units := core.CompUnits()
	labels := make([]string, len(units))
	values := make([]float64, len(units))
	for i, u := range units {
		labels[i] = u.String()
		values[i] = float64(r.Counts.CompStruct[u])
	}
	return stats.NewBreakdown(r.barName(), labels, values)
}

// localMemOf extracts the organization from a case-study-2 workload name
// like "implicit (stash)".
func localMemOf(workload string) string {
	if !strings.HasPrefix(workload, "implicit (") {
		return ""
	}
	return strings.TrimSuffix(strings.TrimPrefix(workload, "implicit ("), ")")
}

// barName labels this run's bar in grouped figures: case study 2 compares
// local-memory organizations (all under DeNovo), case study 1 protocols.
func (r *Report) barName() string {
	if r.LocalMem != "" {
		return r.LocalMem
	}
	return r.Protocol
}

// JSON encodes the report as an indented, machine-readable document.
// Stall profiles appear as label-keyed maps (the figure labels), so the
// output diffs cleanly and survives taxonomy reordering; DecodeReport
// reverses it exactly. Scheduling counters are omitted unless the report
// opted in via IncludeEngineStats.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// IncludeEngineStats opts this report's scheduling counters into its JSON
// encoding by mirroring EngineStats into the Scheduling field; it returns
// r for chaining (gsi-run wires it to -json -stats). Use it only when the
// consumer wants the scheduling-cost picture: documents carrying the
// block legitimately differ across engine modes, so they fall outside the
// cross-engine byte-identity contract of the default encoding.
func (r *Report) IncludeEngineStats() *Report {
	st := r.EngineStats
	r.Scheduling = &st
	return r
}

// IncludeTimeline opts this report's structured timeline data into its
// JSON encoding by mirroring TimelineData into the TimelineJSON carrier;
// it returns r for chaining. A no-op when the run did not record a
// timeline (Options.Timeline unset).
func (r *Report) IncludeTimeline() *Report {
	if r.TimelineData != nil {
		snap := *r.TimelineData
		r.TimelineJSON = &snap
	}
	return r
}

// DecodeReport parses a document produced by Report.JSON, folding an
// opted-in scheduling block (see IncludeEngineStats) back into
// EngineStats — and an opted-in timeline block (see IncludeTimeline)
// back into TimelineData — so the opt-ins round-trip exactly.
func DecodeReport(data []byte) (*Report, error) {
	r := new(Report)
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("gsi: decoding report: %w", err)
	}
	if r.Scheduling != nil {
		r.EngineStats = *r.Scheduling
	}
	if r.TimelineJSON != nil {
		r.TimelineData = r.TimelineJSON
	}
	return r, nil
}

// JSON encodes the whole figure — the three grouped sub-figures plus every
// per-run report — as an indented document; DecodeFigureSet reverses it.
// The groups are included so non-Go consumers can plot the stacked bars
// without reimplementing the breakdown logic, but the reports are the
// source of truth: decoding rebuilds the groups from them, so a document
// whose groups disagree with its reports cannot smuggle the divergence in.
func (fs *FigureSet) JSON() ([]byte, error) {
	return json.MarshalIndent(fs, "", "  ")
}

// UnmarshalJSON decodes the header and reports, then rederives the three
// sub-figure groups exactly as the figure was originally built.
func (fs *FigureSet) UnmarshalJSON(data []byte) error {
	var doc struct {
		ID       string    `json:"id"`
		Title    string    `json:"title"`
		Baseline string    `json:"baseline"`
		Reports  []*Report `json:"reports"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	// Reject documents the figure methods cannot operate on, rather than
	// letting a truncated or hand-edited file panic the consumer later.
	if len(doc.Reports) == 0 {
		return fmt.Errorf("figure set %q has no reports", doc.ID)
	}
	for i, r := range doc.Reports {
		if r == nil {
			return fmt.Errorf("figure set %q: report %d is null", doc.ID, i)
		}
	}
	*fs = FigureSet{ID: doc.ID, Title: doc.Title, Baseline: doc.Baseline}
	for _, r := range doc.Reports {
		fs.add(r)
	}
	return nil
}

// DecodeFigureSet parses a document produced by FigureSet.JSON.
func DecodeFigureSet(data []byte) (*FigureSet, error) {
	fs := new(FigureSet)
	if err := json.Unmarshal(data, fs); err != nil {
		return nil, fmt.Errorf("gsi: decoding figure set: %w", err)
	}
	return fs, nil
}

// Summary renders a one-run overview: totals, the three breakdowns, and
// key memory-system counters.
func (r *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload: %s   protocol: %s   cycles: %d   instrs: %d\n",
		r.Workload, r.Protocol, r.Cycles, r.InstrsIssued)
	exec := stats.NewGroup("execution time breakdown (cycles across SMs)", r.ExecBreakdown().Labels)
	exec.Add(r.ExecBreakdown())
	sb.WriteString(exec.Table())
	data := stats.NewGroup("memory data stalls by service location", r.MemDataBreakdown().Labels)
	data.Add(r.MemDataBreakdown())
	sb.WriteString(data.Table())
	st := stats.NewGroup("memory structural stalls by cause", r.MemStructBreakdown().Labels)
	st.Add(r.MemStructBreakdown())
	sb.WriteString(st.Table())
	fmt.Fprintf(&sb, "L1 hits %d  misses %d  merges %d  |  flushes %d (release %d, no-op lines %d)\n",
		r.Mem.L1Hits, r.Mem.L1Misses, r.Mem.MSHRMerges,
		r.Mem.Flushes, r.Mem.ReleaseFlushes, r.Mem.FlushNoops)
	fmt.Fprintf(&sb, "write-throughs %d  ownership reqs %d  remote L1 served %d  atomics %d (%d local)  DRAM reqs %d\n",
		r.Mem.WriteThroughs, r.Mem.OwnReqs, r.Mem.RemoteServed, r.Mem.Atomics, r.Mem.LocalAtomics, r.Mem.MemRequests)
	fmt.Fprintf(&sb, "network: %d messages, %d hops\n", r.Net.Messages, r.Net.Hops)
	return sb.String()
}
