package gsi

import (
	"context"
	"fmt"

	"gsi/internal/coherence"
	"gsi/internal/core"
	"gsi/internal/cpu"
	"gsi/internal/gpu"
	"gsi/internal/workloads"
)

// Workload is anything Run can execute: it initializes host memory,
// supplies the kernel, and verifies the result afterwards.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Build writes initial memory through the host and returns the
	// kernel plus a post-run functional check.
	Build(h *cpu.Host) (*gpu.Kernel, func(h *cpu.Host) error, error)
}

// NewUTS wraps the unbalanced-tree-search workload (global queue) with
// default sizing for the 15-SM system.
func NewUTS(nodes int) Workload { return workloads.DefaultUTS(nodes).Instance() }

// NewUTSWith uses explicit UTS parameters.
func NewUTSWith(p UTS) Workload { return p.Instance() }

// NewUTSD wraps decentralized unbalanced tree search with default sizing.
func NewUTSD(nodes int) Workload { return workloads.DefaultUTSD(nodes).Instance() }

// NewUTSDWith uses explicit UTSD parameters.
func NewUTSDWith(p UTSD) Workload { return p.Instance() }

// NewImplicit wraps the implicit microbenchmark in the given local-memory
// organization with default sizing (one SM).
func NewImplicit(kind LocalMem) Workload {
	return workloads.DefaultImplicit().Instance(kind)
}

// DefaultImplicit returns the microbenchmark's default parameters (32
// warps filling the 16 KB scratchpad) for callers that want to tweak one
// axis — e.g. the warp count, which sets the memory-level parallelism and
// therefore how latency-dominated the run is.
func DefaultImplicit() Implicit { return workloads.DefaultImplicit() }

// NewImplicitWith uses explicit parameters.
func NewImplicitWith(p Implicit, kind LocalMem) Workload { return p.Instance(kind) }

// NewBFS wraps level-synchronized breadth-first search with default
// sizing for the 15-SM system.
func NewBFS(vertices int) Workload { return workloads.DefaultBFS(vertices).Instance() }

// NewBFSWith uses explicit BFS parameters.
func NewBFSWith(p BFS) Workload { return p.Instance() }

// NewSpMV wraps the CSR sparse matrix-vector product with default sizing.
func NewSpMV(rows int) Workload { return workloads.DefaultSpMV(rows).Instance() }

// NewSpMVWith uses explicit SpMV parameters.
func NewSpMVWith(p SpMV) Workload { return p.Instance() }

// NewPipeline wraps the producer-consumer pipeline with default sizing
// (one producer warp, one consumer warp, one SM — see PipelineSystem).
func NewPipeline(rounds int) Workload { return workloads.DefaultPipeline(rounds).Instance() }

// NewPipelineWith uses explicit pipeline parameters.
func NewPipelineWith(p Pipeline) Workload { return p.Instance() }

// NewGUPS wraps the random-access update benchmark with default sizing.
func NewGUPS(updates int) Workload { return workloads.DefaultGUPS(updates).Instance() }

// NewGUPSWith uses explicit GUPS parameters.
func NewGUPSWith(p GUPS) Workload { return p.Instance() }

// NewStencil wraps the 2D halo-exchange stencil with default sizing
// (one DMA-staged band window per block, ping-pong planes, parity-indexed
// halo slots).
func NewStencil() Workload { return workloads.DefaultStencil().Instance() }

// NewStencilWith uses explicit stencil parameters.
func NewStencilWith(p Stencil) Workload { return p.Instance() }

// NewSteal wraps the work-stealing deque benchmark with default sizing
// (one deque per block, steal-half on empty).
func NewSteal(tasks int) Workload { return workloads.DefaultSteal(tasks).Instance() }

// NewStealWith uses explicit steal parameters.
func NewStealWith(p Steal) Workload { return p.Instance() }

// Run executes one workload under the given options and returns its GSI
// report. The workload's functional post-check runs before the report is
// returned: a timing bug that corrupts results fails loudly rather than
// producing a plausible breakdown.
func Run(opt Options, w Workload) (*Report, error) {
	return RunContext(context.Background(), opt, w)
}

// RunContext is Run under a context: cancellation and wall-clock deadlines
// are checked cooperatively between simulated cycles, so a fired context
// stops the simulation within one engine check interval without ever
// perturbing its state — a run that completes is byte-identical to an
// uncancellable one. A canceled run returns an error wrapping ErrCanceled;
// an expired deadline wraps ErrDeadline and carries the engine's
// per-component diagnosis dump, like the in-sim ErrMaxCycles watchdog.
func RunContext(ctx context.Context, opt Options, w Workload) (*Report, error) {
	opt = opt.withDefaults()
	if err := opt.System.Validate(); err != nil {
		return nil, err
	}
	g, err := gpu.New(opt.System, coherence.PoliciesFor(opt.System.NumSMs, opt.Protocol.policy()))
	if err != nil {
		return nil, err
	}
	g.Insp.StrongCycle = opt.StrongCycle
	g.Insp.EagerAttribution = opt.EagerAttribution
	if opt.Timeline {
		g.Insp.Timeline = core.NewTimeline(opt.System.NumSMs, 96)
	}
	if opt.Trace != nil {
		opt.Trace.Begin(opt.System.NumSMs)
		g.Insp.Trace = opt.Trace
		g.Trace = opt.Trace
	}
	for _, cm := range g.Sys.Cores {
		cm.SFIFO = opt.SFIFO
		cm.OwnedAtomics = opt.OwnedAtomics
	}

	h := cpu.NewHost(g.Sys.Backing)
	kernel, verify, err := w.Build(h)
	if err != nil {
		return nil, fmt.Errorf("gsi: building %s: %w", w.Name(), err)
	}
	if err := ctx.Err(); err != nil {
		// Building a large workload's memory image can take a while; honor
		// a context that fired during it before committing to the run.
		return nil, fmt.Errorf("gsi: %s canceled before launch: %w", w.Name(), err)
	}
	if err := g.Launch(kernel); err != nil {
		return nil, err
	}
	cycles, err := g.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("gsi: running %s under %s: %w", w.Name(), opt.Protocol, err)
	}
	if !opt.SkipVerify {
		if err := verify(h); err != nil {
			return nil, fmt.Errorf("gsi: %s under %s failed verification: %w", w.Name(), opt.Protocol, err)
		}
	}
	return newReport(w.Name(), opt, g, cycles), nil
}
