package gsi

import "testing"

// TestCacheKeyEquivalentConfigsHashEqual: CacheKey must collapse every
// spelling of the same simulation onto one content address — defaulted vs
// explicit configuration, engine-mode and express selections (results are
// byte-identical by contract), default-valued vs absent parameters, and
// cosmetic name/value spellings.
func TestCacheKeyEquivalentConfigsHashEqual(t *testing.T) {
	base := CacheKey(Options{Protocol: DeNovo}, "uts", nil)
	equivalent := map[string]string{
		"explicit defaults": CacheKey(Options{System: DefaultConfig(), Protocol: DeNovo}, "uts", nil),
		"engine dense": CacheKey(Options{
			System:   func() SystemConfig { c := DefaultConfig(); c.Engine = EngineDense; return c }(),
			Protocol: DeNovo}, "uts", nil),
		"engine quiescent": CacheKey(Options{
			System:   func() SystemConfig { c := DefaultConfig(); c.Engine = EngineQuiescent; return c }(),
			Protocol: DeNovo}, "uts", nil),
		"legacy dense ticking": CacheKey(Options{
			System:   func() SystemConfig { c := DefaultConfig(); c.DenseTicking = true; return c }(),
			Protocol: DeNovo}, "uts", nil),
		"express off": CacheKey(Options{
			System:   func() SystemConfig { c := DefaultConfig(); c.Express = false; return c }(),
			Protocol: DeNovo}, "uts", nil),
		"default-valued param": CacheKey(Options{Protocol: DeNovo}, "uts",
			WorkloadValues{"nodes": "6000"}), // the schema default
		"spelling": CacheKey(Options{Protocol: DeNovo}, " UTS ",
			WorkloadValues{"NODES": " 6000 "}),
	}
	for name, key := range equivalent {
		if key != base {
			t.Errorf("%s: key %s differs from base %s", name, key, base)
		}
	}
}

// TestCacheKeyEngineRelevantDifferencesHashUnequal: anything that can
// change the Report bytes (or which runs fail) must separate keys.
func TestCacheKeyEngineRelevantDifferencesHashUnequal(t *testing.T) {
	base := CacheKey(Options{Protocol: DeNovo}, "uts", nil)
	variants := map[string]string{
		"protocol": CacheKey(Options{Protocol: GPUCoherence}, "uts", nil),
		"workload": CacheKey(Options{Protocol: DeNovo}, "utsd", nil),
		"param":    CacheKey(Options{Protocol: DeNovo}, "uts", WorkloadValues{"nodes": "100"}),
		"mshr": CacheKey(Options{
			System:   func() SystemConfig { c := DefaultConfig(); c.MSHREntries = 64; return c }(),
			Protocol: DeNovo}, "uts", nil),
		"max cycles": CacheKey(Options{
			System:   func() SystemConfig { c := DefaultConfig(); c.MaxCycles = 1000; return c }(),
			Protocol: DeNovo}, "uts", nil),
		"timeline":    CacheKey(Options{Protocol: DeNovo, Timeline: true}, "uts", nil),
		"skip verify": CacheKey(Options{Protocol: DeNovo, SkipVerify: true}, "uts", nil),
		"ablation":    CacheKey(Options{Protocol: DeNovo, SFIFO: true}, "uts", nil),
	}
	seen := map[string]string{base: "base"}
	for name, key := range variants {
		if prev, dup := seen[key]; dup {
			t.Errorf("%s: key collides with %s", name, prev)
		}
		seen[key] = name
	}
}

// TestCacheKeyGridAxisOrdering: reordering a grid's axis values permutes
// the jobs but must not change any point's content address — overlapping
// sweeps declared in different orders hit the same cache entries.
func TestCacheKeyGridAxisOrdering(t *testing.T) {
	keysOf := func(g Grid) map[string]bool {
		out := map[string]bool{}
		for _, job := range g.Sweep().Jobs {
			key := CacheKey(job.Options, job.Axes.Workload, g.PointParams(job.Axes))
			if out[key] {
				t.Fatalf("grid %q: duplicate key within one grid (%s)", g.Name, job.Label)
			}
			out[key] = true
		}
		return out
	}
	forward := keysOf(Grid{
		Name:      "forward",
		Workloads: []string{"implicit"},
		Protocols: []Protocol{GPUCoherence, DeNovo},
		MSHRSizes: []int{16, 32},
		LocalMems: []LocalMem{Scratchpad, Stash},
	})
	reversed := keysOf(Grid{
		Name:      "reversed",
		Workloads: []string{"implicit"},
		Protocols: []Protocol{DeNovo, GPUCoherence},
		MSHRSizes: []int{32, 16},
		LocalMems: []LocalMem{Stash, Scratchpad},
	})
	if len(forward) != len(reversed) {
		t.Fatalf("key sets differ in size: %d vs %d", len(forward), len(reversed))
	}
	for key := range forward {
		if !reversed[key] {
			t.Errorf("key %s missing from the reordered grid", key)
		}
	}
}
