package gsi

import (
	"strings"
	"testing"
)

// TestRegistryRoundTrip is the registry contract: every registered name
// constructs at SmallScale, runs to completion on its tuned system, and
// passes its own functional verification (Run fails loudly otherwise).
func TestRegistryRoundTrip(t *testing.T) {
	reg := Workloads()
	names := reg.Names()
	if len(names) < 7 {
		t.Fatalf("registry has %d workloads, want at least 7 (uts, utsd, implicit + 4 sparse)", len(names))
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			e, ok := reg.Lookup(name)
			if !ok {
				t.Fatalf("Lookup(%q) failed for a listed name", name)
			}
			if e.Summary == "" || len(e.Params) == 0 {
				t.Fatalf("%s: entry missing summary or parameter schema", name)
			}
			w, err := e.BuildSmall(nil)
			if err != nil {
				t.Fatal(err)
			}
			opt := Options{Protocol: DeNovo}
			opt.System = DefaultConfig()
			cfg, err := e.TuneSystem(true, nil, opt.System)
			if err != nil {
				t.Fatal(err)
			}
			opt.System = cfg
			rep, err := Run(opt, w)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Cycles == 0 || rep.Counts.Total() == 0 {
				t.Fatalf("%s: empty report: %d cycles", name, rep.Cycles)
			}
		})
	}
}

// TestRegistryParamOverrides: overrides reach the constructor, and unknown
// parameter names are rejected with the schema in the error.
func TestRegistryParamOverrides(t *testing.T) {
	e, ok := Workloads().Lookup("bfs")
	if !ok {
		t.Fatal("bfs not registered")
	}
	if _, err := e.Build(WorkloadValues{"vertices": "64", "blocks": "2", "warps": "1"}); err != nil {
		t.Fatalf("valid overrides rejected: %v", err)
	}
	_, err := e.Build(WorkloadValues{"nodes": "64"})
	if err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if !strings.Contains(err.Error(), "vertices") {
		t.Fatalf("error does not name the schema: %v", err)
	}
	if _, err := e.Build(WorkloadValues{"vertices": "not-a-number"}); err == nil {
		t.Fatal("non-integer parameter accepted")
	}
}

// TestGridWorkloadAxis: the Workloads axis expands with registry-built
// workloads, labels carry the names, and registry tuning applies (the
// pipeline point runs on its single-SM system).
func TestGridWorkloadAxis(t *testing.T) {
	sweep := Grid{
		Name:      "axis",
		Workloads: []string{"spmv", "pipeline"},
	}.Sweep()
	if len(sweep.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(sweep.Jobs))
	}
	if sweep.Jobs[0].Label != "spmv" || sweep.Jobs[1].Label != "pipeline" {
		t.Fatalf("labels = %q, %q", sweep.Jobs[0].Label, sweep.Jobs[1].Label)
	}
	if got := sweep.Jobs[1].Options.System.NumSMs; got != 1 {
		t.Fatalf("pipeline point runs on %d SMs, want the tuned 1", got)
	}
	if got := sweep.Jobs[0].Options.System.NumSMs; got != DefaultConfig().NumSMs {
		t.Fatalf("spmv point runs on %d SMs, want the default %d", got, DefaultConfig().NumSMs)
	}
	// An unknown axis value must surface as that job's error, not a panic
	// or a batch failure for the valid points.
	bad := Grid{Name: "bad-axis", Workloads: []string{"no-such-workload"}}.Sweep()
	results, err := bad.Run(SweepConfig{Parallel: 1})
	if err == nil || results[0].Err == nil {
		t.Fatal("unknown workload name did not fail the job")
	}
	if !strings.Contains(results[0].Err.Error(), "no-such-workload") {
		t.Fatalf("job error does not name the workload: %v", results[0].Err)
	}
}
