module gsi

go 1.21
