package gsi

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Image links and
// reference-style links are not used in this repository.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// mdHeading matches ATX headings for anchor derivation.
var mdHeading = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// docFiles returns every markdown file the link gate covers.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	for _, glob := range []string{"docs/*.md", "examples/*/README.md"} {
		m, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, m...)
	}
	return files
}

// anchorSlug derives the GitHub-style anchor for a heading: lower-cased,
// spaces to dashes, punctuation (except dashes) dropped, backticks
// stripped.
func anchorSlug(heading string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			sb.WriteRune(r)
		case r == ' ':
			sb.WriteByte('-')
		case r == '-' || r == '_':
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// anchorsOf returns the set of heading anchors a markdown file defines.
func anchorsOf(t *testing.T, path string) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	anchors := map[string]bool{}
	for _, m := range mdHeading.FindAllStringSubmatch(string(raw), -1) {
		anchors[anchorSlug(m[1])] = true
	}
	return anchors
}

// TestDocLinks is the markdown link gate: every relative link in the
// README, docs/, and example READMEs must point at an existing file (or
// directory), and every #anchor — with or without a file part — must
// match a heading in the target document. External http(s) links are out
// of scope. This keeps the README ↔ ARCHITECTURE ↔ examples
// cross-reference web live as sections are renamed.
func TestDocLinks(t *testing.T) {
	for _, path := range docFiles(t) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Dir(path)
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, frag, _ := strings.Cut(target, "#")
			resolved := path
			if file != "" {
				resolved = filepath.Join(dir, file)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", path, target, err)
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(resolved, ".md") {
				t.Errorf("%s: anchor link %q into a non-markdown target", path, target)
				continue
			}
			if !anchorsOf(t, resolved)[frag] {
				t.Errorf("%s: link %q: no heading in %s produces anchor #%s",
					path, target, resolved, frag)
			}
		}
	}
}
