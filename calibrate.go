package gsi

import (
	"fmt"
	"strings"

	"gsi/internal/coherence"
	"gsi/internal/core"
	"gsi/internal/mem"
	"gsi/internal/sim"
)

// LatencyRange is an observed min..max latency in GPU cycles.
type LatencyRange struct {
	Min, Max uint64
}

// String renders the range as "min-max", the form Table 5.1 reports.
func (r LatencyRange) String() string { return fmt.Sprintf("%d-%d", r.Min, r.Max) }

func (r *LatencyRange) update(v uint64) {
	if r.Min == 0 || v < r.Min {
		r.Min = v
	}
	if v > r.Max {
		r.Max = v
	}
}

// Calibration holds measured memory latencies for the Table 5.1
// reproduction. The paper reports L1 hit 1 cycle, L2 hit 29-61, remote
// L1/stash 35-83, memory 197-261; in this simulator the ranges emerge from
// mesh distance, bank access latency, and queueing, so Calibrate measures
// them with single-request probes (no contention: expect the low ends of
// the paper's ranges to line up and contention to supply the high ends).
type Calibration struct {
	L1Hit    LatencyRange
	L2Hit    LatencyRange
	RemoteL1 LatencyRange
	Memory   LatencyRange
}

// Calibrate probes an idle system built from cfg: every L2 bank is probed
// from SM 0 for L2-hit and memory latencies, and every other core is made
// owner of a line to measure remote-L1 forwarding.
func Calibrate(cfg SystemConfig) (*Calibration, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys, err := mem.NewSystem(cfg, coherence.PoliciesFor(cfg.NumSMs, coherence.DeNovo{}))
	if err != nil {
		return nil, err
	}
	// The probes poke the core memory unit directly between engine runs,
	// so there is no wake wiring; drive the system densely as one
	// component (calibration runs are tiny).
	eng := sim.NewEngine()
	eng.SetDense(true)
	eng.Register("mem", sim.TickFunc(sys.Tick))
	last := eng.LastTick

	cm0 := sys.Cores[0]
	var fired bool
	var firedAt uint64
	var firedWhere core.DataWhere
	cm0.OnLoadDone = func(t mem.Target, w core.DataWhere) {
		fired = true
		firedAt = eng.Cycle()
		firedWhere = w
	}

	quiesce := func() error {
		_, err := eng.Run(sys.Quiesced, 1_000_000)
		return err
	}
	probe := func(addr uint64) (uint64, core.DataWhere, error) {
		fired = false
		start := eng.Cycle()
		switch cm0.Load(addr, mem.Target{Kind: mem.TargetLoad, Load: 1}, last()) {
		case mem.LoadHit:
			return uint64(cfg.L1HitLat), core.WhereL1, nil
		case mem.LoadMSHRFull:
			return 0, core.WhereUnknown, fmt.Errorf("gsi: calibrate: MSHR full on idle system")
		}
		if _, err := eng.Run(func() bool { return fired }, 1_000_000); err != nil {
			return 0, core.WhereUnknown, err
		}
		return firedAt - start, firedWhere, nil
	}

	cal := &Calibration{L1Hit: LatencyRange{Min: uint64(cfg.L1HitLat), Max: uint64(cfg.L1HitLat)}}
	lineSize := uint64(cfg.LineSize)

	// Memory and L2-hit latency per bank: the first load of a line goes
	// to main memory; self-invalidating and reloading hits the L2.
	for b := 0; b < cfg.L2Banks; b++ {
		addr := uint64(b)*lineSize + 0x4000_0000
		lat, where, err := probe(addr)
		if err != nil {
			return nil, err
		}
		if where != core.WhereMemory {
			return nil, fmt.Errorf("gsi: calibrate: cold probe of bank %d serviced at %s", b, where)
		}
		cal.Memory.update(lat)
		cm0.SelfInvalidate()
		lat, where, err = probe(addr)
		if err != nil {
			return nil, err
		}
		if where != core.WhereL2 {
			return nil, fmt.Errorf("gsi: calibrate: warm probe of bank %d serviced at %s", b, where)
		}
		cal.L2Hit.update(lat)
		cm0.SelfInvalidate()
	}

	// Remote L1: every other core takes ownership of one line (store +
	// flush registers it under DeNovo), then SM 0 reads it.
	for owner := 1; owner < cfg.NumCores(); owner++ {
		addr := uint64(owner)*lineSize + 0x5000_0000
		cmO := sys.Cores[owner]
		if out := cmO.Store(addr, last()); out != mem.StoreOK {
			return nil, fmt.Errorf("gsi: calibrate: store on idle core %d blocked (%d)", owner, out)
		}
		cmO.FlushAll()
		if err := quiesce(); err != nil {
			return nil, err
		}
		lat, where, err := probe(addr)
		if err != nil {
			return nil, err
		}
		if where != core.WhereRemoteL1 {
			return nil, fmt.Errorf("gsi: calibrate: probe of core %d's line serviced at %s", owner, where)
		}
		cal.RemoteL1.update(lat)
		cm0.SelfInvalidate()
	}
	return cal, nil
}

// Table51 renders the reproduced Table 5.1: the configured parameters plus
// the measured latency ranges alongside the paper's.
func Table51(cfg SystemConfig) (string, error) {
	cal, err := Calibrate(cfg)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Table 5.1: parameters of the simulated heterogeneous system\n")
	fmt.Fprintf(&sb, "  CPU cores                      %d @ %d MHz\n", 1, cfg.CPUFreqMHz)
	fmt.Fprintf(&sb, "  GPU SMs                        %d @ %d MHz\n", cfg.NumSMs, cfg.GPUFreqMHz)
	fmt.Fprintf(&sb, "  scratchpad/stash               %d KB, %d banks\n", cfg.ScratchSize>>10, cfg.ScratchBanks)
	fmt.Fprintf(&sb, "  L1                             %d KB, %d banks, %d-way\n", cfg.L1Size>>10, cfg.L1Banks, cfg.L1Assoc)
	fmt.Fprintf(&sb, "  L2                             %d MB, %d banks, NUCA\n", cfg.L2Size>>20, cfg.L2Banks)
	fmt.Fprintf(&sb, "  MSHR / store buffer entries    %d / %d\n", cfg.MSHREntries, cfg.StoreBufEntries)
	fmt.Fprintf(&sb, "  mesh                           %dx%d, link %d + router %d cycles/hop\n",
		cfg.MeshWidth, cfg.MeshHeight, cfg.LinkLat, cfg.RouterLat)
	sb.WriteString("  latencies (measured, idle system)        paper\n")
	fmt.Fprintf(&sb, "    L1 / scratchpad hit          %-10s   1\n", cal.L1Hit)
	fmt.Fprintf(&sb, "    L2 hit                       %-10s   29-61\n", cal.L2Hit)
	fmt.Fprintf(&sb, "    remote L1 hit                %-10s   35-83\n", cal.RemoteL1)
	fmt.Fprintf(&sb, "    main memory                  %-10s   197-261\n", cal.Memory)
	return sb.String(), nil
}
