// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations of GSI's design choices and microbenchmarks of
// the classifier itself.
//
// Figure benchmarks execute the full experiment per iteration and report
// the figure's headline series as custom metrics (normalized execution
// totals and the key sub-components), so `go test -bench .` regenerates the
// numbers the paper plots; `gsi-experiments` prints the full tables.
package gsi

import (
	"fmt"
	"testing"

	"gsi/internal/core"
)

// benchScale sizes the figure benchmarks: large enough to show the paper's
// contention and locality effects, small enough to iterate.
func benchScale() Scale {
	return Scale{UTSNodes: 800, UTSDNodes: 800, FrontierMin: 120, MSHRSizes: []int{32, 64, 128, 256}}
}

// BenchmarkTable51 regenerates Table 5.1: the latency calibration probe
// against the paper's reported ranges.
func BenchmarkTable51(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cal, err := Calibrate(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(cal.L2Hit.Min), "L2hit-min")
		b.ReportMetric(float64(cal.L2Hit.Max), "L2hit-max")
		b.ReportMetric(float64(cal.RemoteL1.Min), "remoteL1-min")
		b.ReportMetric(float64(cal.RemoteL1.Max), "remoteL1-max")
		b.ReportMetric(float64(cal.Memory.Min), "mem-min")
		b.ReportMetric(float64(cal.Memory.Max), "mem-max")
	}
}

// BenchmarkFig61 regenerates figure 6.1: UTS, DeNovo normalized to GPU
// coherence (paper: near-equal totals, synchronization dominant).
func BenchmarkFig61(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs, err := Figure61(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		gpuR, dnv := fs.Reports[0], fs.Reports[1]
		base := float64(gpuR.Counts.Total())
		b.ReportMetric(float64(dnv.Counts.Total())/base, "denovo-exec")
		b.ReportMetric(float64(gpuR.Counts.Cycles[core.Sync])/base, "gpu-sync")
		b.ReportMetric(float64(dnv.Counts.Cycles[core.Sync])/base, "denovo-sync")
		b.ReportMetric(float64(dnv.Counts.MemData[core.WhereRemoteL1])/base, "denovo-remoteL1")
	}
}

// BenchmarkFig62 regenerates figure 6.2: UTSD (paper: DeNovo cuts memory
// data stalls via the L2 component and structural stalls via pending
// release).
func BenchmarkFig62(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs, err := Figure62(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		gpuR, dnv := fs.Reports[0], fs.Reports[1]
		base := float64(gpuR.Counts.Total())
		b.ReportMetric(float64(dnv.Counts.Total())/base, "denovo-exec")
		b.ReportMetric(ratio(dnv.Counts.Cycles[core.MemData], gpuR.Counts.Cycles[core.MemData]), "data-ratio")
		b.ReportMetric(ratio(dnv.Counts.Cycles[core.MemStructural], gpuR.Counts.Cycles[core.MemStructural]), "struct-ratio")
		b.ReportMetric(ratio(dnv.Counts.MemStruct[core.StructPendingRelease],
			gpuR.Counts.MemStruct[core.StructPendingRelease]), "release-ratio")
		b.ReportMetric(ratio(dnv.Counts.MemData[core.WhereL2], gpuR.Counts.MemData[core.WhereL2]), "L2data-ratio")
	}
}

// BenchmarkFig62VsFig61 regenerates the section 6.1.4 headline: UTSD cuts
// execution time by ~90% relative to UTS for both protocols.
func BenchmarkFig62VsFig61(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f61, err := Figure61(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		f62, err := Figure62(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1-float64(f62.Reports[0].Cycles)/float64(f61.Reports[0].Cycles), "gpu-reduction")
		b.ReportMetric(1-float64(f62.Reports[1].Cycles)/float64(f61.Reports[1].Cycles), "denovo-reduction")
	}
}

// BenchmarkFig63 regenerates figure 6.3: the implicit microbenchmark across
// local-memory organizations (paper: no-stall cycles fall, structural
// stalls rise for scratchpad+DMA and stash).
func BenchmarkFig63(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs, err := Figure63()
		if err != nil {
			b.Fatal(err)
		}
		base := fs.Reports[0]
		for j, name := range []string{"dma", "stash"} {
			r := fs.Reports[j+1]
			b.ReportMetric(float64(r.Counts.Total())/float64(base.Counts.Total()), name+"-exec")
			b.ReportMetric(ratio(r.Counts.Cycles[core.NoStall], base.Counts.Cycles[core.NoStall]), name+"-nostall")
			b.ReportMetric(ratio(r.Counts.Cycles[core.MemStructural], base.Counts.Cycles[core.MemStructural]), name+"-struct")
		}
	}
}

// BenchmarkFig64 regenerates figure 6.4: the MSHR sweep (paper: full-MSHR
// stalls vanish, data stalls grow ~13X for scratchpad and ~2.1X for stash,
// pending-DMA stalls grow ~8.9X for scratchpad+DMA).
func BenchmarkFig64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sets, err := Figure64(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		first, last := sets[0], sets[len(sets)-1]
		b.ReportMetric(ratio(last.Reports[0].Counts.Cycles[core.MemData],
			first.Reports[0].Counts.Cycles[core.MemData]), "scratch-data-growth")
		b.ReportMetric(ratio(last.Reports[2].Counts.Cycles[core.MemData],
			first.Reports[2].Counts.Cycles[core.MemData]), "stash-data-growth")
		b.ReportMetric(ratio(last.Reports[1].Counts.MemStruct[core.StructPendingDMA],
			first.Reports[1].Counts.MemStruct[core.StructPendingDMA]), "dma-pending-growth")
		b.ReportMetric(ratio(last.Reports[0].Counts.MemStruct[core.StructMSHRFull],
			first.Reports[0].Counts.MemStruct[core.StructMSHRFull]), "scratch-mshr-residual")
	}
}

// BenchmarkAblationSFIFO quantifies the paper's section 6.1.4 suggestion:
// a QuickRelease-style S-FIFO removes pending-release stalls.
func BenchmarkAblationSFIFO(b *testing.B) {
	w := NewUTSDWith(UTSD{Seed: 0xC0FFEE, Nodes: 400, FrontierMin: 120,
		Blocks: 15, WarpsPerBlock: 8, Work: 8, FMAs: 4, LQCap: 128})
	for i := 0; i < b.N; i++ {
		baseRep, err := Run(Options{Protocol: GPUCoherence}, w)
		if err != nil {
			b.Fatal(err)
		}
		sfifoRep, err := Run(Options{Protocol: GPUCoherence, SFIFO: true}, w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ratio(sfifoRep.Counts.MemStruct[core.StructPendingRelease],
			baseRep.Counts.MemStruct[core.StructPendingRelease]), "release-stall-ratio")
		b.ReportMetric(float64(sfifoRep.Counts.Total())/float64(baseRep.Counts.Total()), "exec-ratio")
	}
}

// BenchmarkAblationStrongCycle quantifies how classifying cycles with the
// strong (Algorithm 1) priority instead of the paper's weak order shifts
// the breakdown (section 4.2's design discussion).
func BenchmarkAblationStrongCycle(b *testing.B) {
	w := NewUTSDWith(UTSD{Seed: 0xC0FFEE, Nodes: 400, FrontierMin: 120,
		Blocks: 15, WarpsPerBlock: 8, Work: 8, FMAs: 4, LQCap: 128})
	for i := 0; i < b.N; i++ {
		weak, err := Run(Options{Protocol: GPUCoherence}, w)
		if err != nil {
			b.Fatal(err)
		}
		strong, err := Run(Options{Protocol: GPUCoherence, StrongCycle: true}, w)
		if err != nil {
			b.Fatal(err)
		}
		// How much of the breakdown moves between buckets.
		var moved uint64
		for k := 0; k < core.NumStallKinds; k++ {
			d := int64(weak.Counts.Cycles[k]) - int64(strong.Counts.Cycles[k])
			if d < 0 {
				d = -d
			}
			moved += uint64(d)
		}
		b.ReportMetric(float64(moved)/float64(weak.Counts.Total()), "breakdown-shift")
	}
}

// BenchmarkAblationEagerAttribution quantifies what deferred data-stall
// attribution buys: the fraction of memory data stalls an eager classifier
// would dump into the main-memory bucket despite being serviced closer.
func BenchmarkAblationEagerAttribution(b *testing.B) {
	w := NewUTSDWith(UTSD{Seed: 0xC0FFEE, Nodes: 400, FrontierMin: 120,
		Blocks: 15, WarpsPerBlock: 8, Work: 8, FMAs: 4, LQCap: 128})
	for i := 0; i < b.N; i++ {
		deferred, err := Run(Options{Protocol: GPUCoherence}, w)
		if err != nil {
			b.Fatal(err)
		}
		near := deferred.Counts.MemData[core.WhereL1] +
			deferred.Counts.MemData[core.WhereL1Coalescing] +
			deferred.Counts.MemData[core.WhereL2] +
			deferred.Counts.MemData[core.WhereRemoteL1]
		b.ReportMetric(ratio(near, deferred.Counts.Cycles[core.MemData]), "misattributed-by-eager")
	}
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// --- microbenchmarks of the tool itself ---

// BenchmarkClassifyCycle measures Algorithm 1 + Algorithm 2 for a full
// 8-warp SM observation, the per-cycle cost GSI adds to the simulator.
func BenchmarkClassifyCycle(b *testing.B) {
	conds := []core.Cond{
		{Issued: true},
		{SyncBlocked: true},
		{MemDataHazard: true, PendingLoad: 7},
		{MemStructHazard: true, StructCause: core.StructMSHRFull},
		{CompDataHazard: true},
		{NextUnavailable: true},
		{SyncBlocked: true},
		{MemDataHazard: true, PendingLoad: 9},
	}
	obs := make([]core.WarpObs, len(conds))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, c := range conds {
			obs[j] = core.ClassifyInstruction(c)
		}
		_ = core.ClassifyCycle(obs)
	}
}

// BenchmarkInspectorObserve measures the full per-SM-cycle collection path
// including deferred attribution bookkeeping.
func BenchmarkInspectorObserve(b *testing.B) {
	in := core.NewInspector(1)
	obs := []core.WarpObs{
		{Kind: core.MemData, PendingLoad: 1},
		{Kind: core.Sync},
		{Kind: core.MemStructural, StructCause: core.StructStoreBufferFull},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Observe(0, obs)
		if i%64 == 0 {
			in.LoadCompleted(0, core.LoadID(1), core.WhereL2)
		}
	}
}

// benchThroughput runs one workload repeatedly and reports simulated
// cycles per iteration; b.N iterations over wall time give cycles/sec.
func benchThroughput(b *testing.B, sys SystemConfig, mode EngineMode, w Workload) {
	sys.Engine = mode
	var cycles uint64
	for i := 0; i < b.N; i++ {
		rep, err := Run(Options{System: sys, Protocol: DeNovo}, w)
		if err != nil {
			b.Fatal(err)
		}
		cycles += rep.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
}

// BenchmarkSimulatorCyclesPerSecond measures raw simulation throughput on
// the implicit microbenchmark (cycles simulated per wall-clock second,
// reported as cycles/op) under the default skip-ahead engine.
func BenchmarkSimulatorCyclesPerSecond(b *testing.B) {
	benchThroughput(b, implicitSystem(32), EngineSkip, NewImplicit(Scratchpad))
}

// BenchmarkSimulatorCyclesPerSecondQuiescent is the no-jump reference for
// BenchmarkSimulatorCyclesPerSecond: same active-set scheduling, clock
// advanced one cycle at a time.
func BenchmarkSimulatorCyclesPerSecondQuiescent(b *testing.B) {
	benchThroughput(b, implicitSystem(32), EngineQuiescent, NewImplicit(Scratchpad))
}

// BenchmarkSimulatorCyclesPerSecondDense is the dense-loop reference for
// BenchmarkSimulatorCyclesPerSecond: identical simulation, every component
// ticked every cycle. The ratios of the three are the scheduling wins.
func BenchmarkSimulatorCyclesPerSecondDense(b *testing.B) {
	benchThroughput(b, implicitSystem(32), EngineDense, NewImplicit(Scratchpad))
}

func benchUTSD() Workload {
	return NewUTSDWith(UTSD{Seed: 0xC0FFEE, Nodes: 400, FrontierMin: 120,
		Blocks: 15, WarpsPerBlock: 8, Work: 8, FMAs: 4, LQCap: 128})
}

// BenchmarkUTSDThroughput measures throughput on the figure 6.2 workload
// (15 SMs, DeNovo) under the default skip-ahead engine.
func BenchmarkUTSDThroughput(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineSkip, benchUTSD())
}

// BenchmarkUTSDThroughputQuiescent is the no-jump reference for
// BenchmarkUTSDThroughput.
func BenchmarkUTSDThroughputQuiescent(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineQuiescent, benchUTSD())
}

// BenchmarkUTSDThroughputDense is the dense-loop reference for
// BenchmarkUTSDThroughput.
func BenchmarkUTSDThroughputDense(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineDense, benchUTSD())
}

// latencyBoundSystem is the latency-dominated configuration the skip-ahead
// engine targets: a single warp streaming a 256 KB region through
// dependent global loads with a 512-entry MSHR, so structural stalls
// vanish (figure 6.4's high-MSHR regime) and nearly every cycle is pure
// memory waiting. memLat selects the memory distance: 170 is Table 5.1's
// local DRAM; 600 models far/remote memory, where waits dominate even
// harder.
func latencyBoundSystem(memLat int) SystemConfig {
	sys := implicitSystem(512)
	sys.WarpsPerSM = 1
	sys.ScratchSize = 256 << 10
	sys.MemLat = memLat
	return sys
}

func latencyBoundWorkload() Workload {
	return NewImplicitWith(Implicit{Seed: 0xD17A, Warps: 1, DataBytes: 256 << 10, FMAs: 4, Rounds: 1}, Scratchpad)
}

// BenchmarkLatencyBound* measure the skip-ahead engine's headline case on
// the local-DRAM latency (Table 5.1's 170 cycles).
func BenchmarkLatencyBound(b *testing.B) {
	benchThroughput(b, latencyBoundSystem(170), EngineSkip, latencyBoundWorkload())
}

func BenchmarkLatencyBoundQuiescent(b *testing.B) {
	benchThroughput(b, latencyBoundSystem(170), EngineQuiescent, latencyBoundWorkload())
}

func BenchmarkLatencyBoundDense(b *testing.B) {
	benchThroughput(b, latencyBoundSystem(170), EngineDense, latencyBoundWorkload())
}

// BenchmarkLatencyBoundRemote* repeat the latency-bound measurement at a
// remote-memory distance (600 cycles): the deeper the wait, the more of
// the run the skip-ahead engine jumps.
func BenchmarkLatencyBoundRemote(b *testing.B) {
	benchThroughput(b, latencyBoundSystem(600), EngineSkip, latencyBoundWorkload())
}

func BenchmarkLatencyBoundRemoteQuiescent(b *testing.B) {
	benchThroughput(b, latencyBoundSystem(600), EngineQuiescent, latencyBoundWorkload())
}

func BenchmarkLatencyBoundRemoteDense(b *testing.B) {
	benchThroughput(b, latencyBoundSystem(600), EngineDense, latencyBoundWorkload())
}

// --- sparse/bursty workload throughput (skip vs quiescent vs dense) ---

func benchBFS() Workload {
	return NewBFSWith(BFS{Seed: 0xB4B4, Vertices: 1200, AvgDeg: 4, Blocks: 15, WarpsPerBlock: 4})
}

// BenchmarkBFSThroughput measures the level-synchronized BFS workload
// (frontier atomics and barrier spins keep the mesh event-dense, so the
// skip-ahead engine rides the active set rather than jumps).
func BenchmarkBFSThroughput(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineSkip, benchBFS())
}

func BenchmarkBFSThroughputQuiescent(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineQuiescent, benchBFS())
}

func BenchmarkBFSThroughputDense(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineDense, benchBFS())
}

func benchSpMV() Workload {
	return NewSpMVWith(SpMV{Seed: 0x59A7, Rows: 1024, NnzPerRow: 8, Blocks: 15, WarpsPerBlock: 8})
}

// BenchmarkSpMVThroughput measures the streaming-with-gathers SpMV
// workload.
func BenchmarkSpMVThroughput(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineSkip, benchSpMV())
}

func BenchmarkSpMVThroughputQuiescent(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineQuiescent, benchSpMV())
}

func BenchmarkSpMVThroughputDense(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineDense, benchSpMV())
}

func benchPipeline() Workload {
	return NewPipelineWith(Pipeline{Seed: 0x9199, Rounds: 12, Chase: 64, Work: 24,
		Producers: 1, Consumers: 1, PermWords: 1 << 12})
}

// BenchmarkPipelineThroughput measures the bursty producer-consumer
// pipeline — the skip-ahead engine's best case: while one stage runs its
// dependent-latency chain, the other stage's warps are idle at a barrier,
// so nearly the whole round is jumpable waiting.
func BenchmarkPipelineThroughput(b *testing.B) {
	benchThroughput(b, PipelineSystem(), EngineSkip, benchPipeline())
}

func BenchmarkPipelineThroughputQuiescent(b *testing.B) {
	benchThroughput(b, PipelineSystem(), EngineQuiescent, benchPipeline())
}

func BenchmarkPipelineThroughputDense(b *testing.B) {
	benchThroughput(b, PipelineSystem(), EngineDense, benchPipeline())
}

// BenchmarkPipelineThroughputNoExpress isolates express routing's share
// of the pipeline win: same skip engine, per-hop mesh only. The pointer
// chase holds one load in flight at a time, the ideal express traversal.
func BenchmarkPipelineThroughputNoExpress(b *testing.B) {
	sys := PipelineSystem()
	sys.Express = false
	benchThroughput(b, sys, EngineSkip, benchPipeline())
}

// benchSpinUTS and benchSpinUTSD are the ROADMAP's event-density-ceiling
// shapes: single-warp SMs make lock/queue spin traffic the machine's
// dominant activity, so per-hop mesh events used to bound every jump to
// the 1-2 cycles between hops. Express routing models each uncontended
// traversal as one event; these benchmarks (with their NoExpress
// references) record how much of the ceiling that removes. blocks sets
// how many SMs spin concurrently: at 15 the machine is saturated with
// contending spinners (express's congestion gate keeps it near-inert), at
// 2 each spin round trip is a long uncontended traversal — the
// latency-bound regime express routing targets.
func benchSpinUTS(blocks int) Workload {
	return NewUTSWith(UTS{Seed: 0xC0FFEE, Nodes: 1000, FrontierMin: 60,
		Blocks: blocks, WarpsPerBlock: 1, Work: 16, FMAs: 4})
}

func benchSpinUTSD(blocks int) Workload {
	return NewUTSDWith(UTSD{Seed: 0xC0FFEE, Nodes: 1000, FrontierMin: 60,
		Blocks: blocks, WarpsPerBlock: 1, Work: 16, FMAs: 4, LQCap: 128})
}

// BenchmarkSpinUTSThroughput measures contended spin-dominated UTS (15
// concurrent spinners) under the skip engine with express routing (the
// default).
func BenchmarkSpinUTSThroughput(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineSkip, benchSpinUTS(15))
}

// BenchmarkSpinUTSThroughputNoExpress is the per-hop reference for
// BenchmarkSpinUTSThroughput.
func BenchmarkSpinUTSThroughputNoExpress(b *testing.B) {
	sys := DefaultConfig()
	sys.Express = false
	benchThroughput(b, sys, EngineSkip, benchSpinUTS(15))
}

// BenchmarkSpinUTSThroughputDense is the dense reference (per-hop mesh,
// every component ticked every cycle).
func BenchmarkSpinUTSThroughputDense(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineDense, benchSpinUTS(15))
}

// BenchmarkSpinUTSDThroughput measures the contended decentralized spin
// shape under the skip engine with express routing.
func BenchmarkSpinUTSDThroughput(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineSkip, benchSpinUTSD(15))
}

// BenchmarkSpinUTSDThroughputNoExpress is the per-hop reference for
// BenchmarkSpinUTSDThroughput.
func BenchmarkSpinUTSDThroughputNoExpress(b *testing.B) {
	sys := DefaultConfig()
	sys.Express = false
	benchThroughput(b, sys, EngineSkip, benchSpinUTSD(15))
}

// BenchmarkSpinUTSDThroughputDense is the dense reference.
func BenchmarkSpinUTSDThroughputDense(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineDense, benchSpinUTSD(15))
}

// BenchmarkSpinUTSLatencyBound and its references measure the two-spinner
// regime: with most SMs idle, each lock round trip is a long uncontended
// mesh traversal, so express routing turns nearly every spin wait into one
// jumpable event (~35% of all cycles skipped; see BENCH_engine.json).
func BenchmarkSpinUTSLatencyBound(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineSkip, benchSpinUTS(2))
}

func BenchmarkSpinUTSLatencyBoundNoExpress(b *testing.B) {
	sys := DefaultConfig()
	sys.Express = false
	benchThroughput(b, sys, EngineSkip, benchSpinUTS(2))
}

func BenchmarkSpinUTSLatencyBoundQuiescent(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineQuiescent, benchSpinUTS(2))
}

func BenchmarkSpinUTSLatencyBoundDense(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineDense, benchSpinUTS(2))
}

// BenchmarkSpinUTSDLatencyBound is the decentralized two-spinner shape.
func BenchmarkSpinUTSDLatencyBound(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineSkip, benchSpinUTSD(2))
}

func BenchmarkSpinUTSDLatencyBoundNoExpress(b *testing.B) {
	sys := DefaultConfig()
	sys.Express = false
	benchThroughput(b, sys, EngineSkip, benchSpinUTSD(2))
}

func BenchmarkSpinUTSDLatencyBoundQuiescent(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineQuiescent, benchSpinUTSD(2))
}

func BenchmarkSpinUTSDLatencyBoundDense(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineDense, benchSpinUTSD(2))
}

func benchGUPS() Workload {
	return NewGUPSWith(GUPS{Seed: 0x6095, Updates: 64, WindowsPerWarp: 32, Blocks: 15, WarpsPerBlock: 4})
}

// BenchmarkGUPSThroughput measures the random-access update workload
// (sustained MSHR/coalescer pressure).
func BenchmarkGUPSThroughput(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineSkip, benchGUPS())
}

func BenchmarkGUPSThroughputQuiescent(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineQuiescent, benchGUPS())
}

func BenchmarkGUPSThroughputDense(b *testing.B) {
	benchThroughput(b, DefaultConfig(), EngineDense, benchGUPS())
}

// --- parallel tick engine (1/2/4/8 workers vs the serial skip rows) ---

// benchThroughputParallel measures the parallel tick engine at a fixed
// worker count; the serial skip benchmarks above are the baseline. One
// worker runs the full partition/commit structure through the inline
// fallback (no pool), isolating the partition overhead from the
// concurrency win; recorded numbers only show a speedup when the host
// grants the pool real cores (see BENCH_engine.json's host note).
func benchThroughputParallel(b *testing.B, sys SystemConfig, w Workload) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := sys
			s.Parallel = workers
			benchThroughput(b, s, EngineParallel, w)
		})
	}
}

// BenchmarkPipelineThroughputParallel: two SMs busy at a time — little
// group-level concurrency to mine, the parallel engine's worst shape.
func BenchmarkPipelineThroughputParallel(b *testing.B) {
	benchThroughputParallel(b, PipelineSystem(), benchPipeline())
}

// BenchmarkGUPSThroughputParallel: all 15 SMs issuing random updates —
// the widest group phase, the parallel engine's target shape.
func BenchmarkGUPSThroughputParallel(b *testing.B) {
	benchThroughputParallel(b, DefaultConfig(), benchGUPS())
}

// BenchmarkSpinUTSThroughputParallel: 15 contending spinners; wide
// active set but mesh-dominated, so the serial hub prefix bounds the
// parallel win (Amdahl on the fabric).
func BenchmarkSpinUTSThroughputParallel(b *testing.B) {
	benchThroughputParallel(b, DefaultConfig(), benchSpinUTS(15))
}

// BenchmarkAblationOwnedAtomics quantifies the owned-atomics suggestion of
// section 6.1.4: the local-service fraction of atomics and the execution
// and sync-stall ratios versus baseline DeNovo on UTSD.
func BenchmarkAblationOwnedAtomics(b *testing.B) {
	w := NewUTSDWith(UTSD{Seed: 0xC0FFEE, Nodes: 400, FrontierMin: 120,
		Blocks: 15, WarpsPerBlock: 8, Work: 8, FMAs: 4, LQCap: 128})
	for i := 0; i < b.N; i++ {
		base, err := Run(Options{Protocol: DeNovo}, w)
		if err != nil {
			b.Fatal(err)
		}
		owned, err := Run(Options{Protocol: DeNovo, OwnedAtomics: true}, w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ratio(owned.Mem.LocalAtomics, owned.Mem.Atomics), "local-atomic-frac")
		b.ReportMetric(float64(owned.Counts.Total())/float64(base.Counts.Total()), "exec-ratio")
		b.ReportMetric(ratio(owned.Counts.Cycles[core.Sync], base.Counts.Cycles[core.Sync]), "sync-ratio")
	}
}
