package gsi

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"gsi/internal/core"
)

// TestReportJSONRoundTrip: marshal -> unmarshal must reproduce the stall
// profile and every derived breakdown exactly.
func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Run(Options{System: implicitSystem(32), Protocol: DeNovo}, NewImplicit(ScratchpadDMA))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// The profile must be labeled, not positional.
	for _, label := range []string{`"memory structural"`, `"pending DMA"`, `"cycles"`} {
		if !strings.Contains(string(doc), label) {
			t.Errorf("JSON document missing label %s", label)
		}
	}
	back, err := DecodeReport(doc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Counts != rep.Counts {
		t.Error("Counts changed across the round trip")
	}
	if back.Cycles != rep.Cycles || back.Workload != rep.Workload ||
		back.Protocol != rep.Protocol || back.LocalMem != rep.LocalMem {
		t.Error("report header changed across the round trip")
	}
	if back.Mem != rep.Mem || back.Net != rep.Net || back.InstrsIssued != rep.InstrsIssued {
		t.Error("system statistics changed across the round trip")
	}
	if len(back.PerSM) != len(rep.PerSM) {
		t.Fatalf("PerSM length %d, want %d", len(back.PerSM), len(rep.PerSM))
	}
	for i := range rep.PerSM {
		if back.PerSM[i] != rep.PerSM[i] {
			t.Errorf("PerSM[%d] changed across the round trip", i)
		}
	}
	for _, pair := range [][2]interface{ Total() float64 }{
		{back.ExecBreakdown(), rep.ExecBreakdown()},
		{back.MemDataBreakdown(), rep.MemDataBreakdown()},
		{back.MemStructBreakdown(), rep.MemStructBreakdown()},
	} {
		if pair[0].Total() != pair[1].Total() {
			t.Error("derived breakdown total changed across the round trip")
		}
	}
}

// TestEngineStatsJSONOptIn pins the EngineStats encoding decision: the
// default document excludes the scheduling counters (the cross-engine
// byte-identity contract), IncludeEngineStats mirrors them in under the
// explicit "engineStats" field, and DecodeReport folds them back so the
// opt-in round-trips exactly.
func TestEngineStatsJSONOptIn(t *testing.T) {
	rep, err := Run(Options{System: implicitSystem(32), Protocol: DeNovo}, NewImplicit(Scratchpad))
	if err != nil {
		t.Fatal(err)
	}
	if rep.EngineStats.Steps == 0 {
		t.Fatal("run recorded no engine steps; the opt-in test would be vacuous")
	}
	plain, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "engineStats") {
		t.Error("default encoding leaks the scheduling counters")
	}
	opted, err := rep.IncludeEngineStats().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(opted), `"engineStats"`) {
		t.Error("opted-in encoding missing the engineStats field")
	}
	back, err := DecodeReport(opted)
	if err != nil {
		t.Fatal(err)
	}
	if back.EngineStats != rep.EngineStats {
		t.Errorf("EngineStats changed across the opt-in round trip:\n%+v\nvs\n%+v",
			back.EngineStats, rep.EngineStats)
	}
	// A plain document must decode to zero counters, not stale ones.
	bare, err := DecodeReport(plain)
	if err != nil {
		t.Fatal(err)
	}
	if bare.EngineStats != (EngineStats{}) {
		t.Errorf("plain document decoded non-zero EngineStats: %+v", bare.EngineStats)
	}
}

// TestTimelineJSONOptIn pins the structured-timeline encoding decision,
// mirroring the EngineStats opt-in: the default document carries only the
// rendered ASCII timeline, IncludeTimeline mirrors the bucketed counts in
// under the explicit "timelineData" field, and DecodeReport folds them
// back so the opt-in round-trips exactly.
func TestTimelineJSONOptIn(t *testing.T) {
	rep, err := Run(Options{System: implicitSystem(32), Protocol: DeNovo, Timeline: true},
		NewImplicit(Scratchpad))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TimelineData == nil || len(rep.TimelineData.SMs) == 0 {
		t.Fatal("timeline run captured no structured timeline; the opt-in test would be vacuous")
	}
	plain, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "timelineData") {
		t.Error("default encoding leaks the structured timeline")
	}
	if !strings.Contains(string(plain), `"timeline"`) {
		t.Error("default encoding lost the rendered timeline")
	}
	opted, err := rep.IncludeTimeline().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(opted), `"timelineData"`) {
		t.Error("opted-in encoding missing the timelineData field")
	}
	back, err := DecodeReport(opted)
	if err != nil {
		t.Fatal(err)
	}
	if back.TimelineData == nil || !reflect.DeepEqual(back.TimelineData, rep.TimelineData) {
		t.Errorf("TimelineData changed across the opt-in round trip:\n%+v\nvs\n%+v",
			back.TimelineData, rep.TimelineData)
	}
	// A plain document must decode to a nil snapshot, not a stale one.
	bare, err := DecodeReport(plain)
	if err != nil {
		t.Fatal(err)
	}
	if bare.TimelineData != nil {
		t.Errorf("plain document decoded a structured timeline: %+v", bare.TimelineData)
	}
}

// TestCacheKeyIgnoresTrace pins the cache-identity decision for tracing:
// attaching a collector observes a run without changing it, so a traced
// and an untraced request must share one content address — otherwise a
// "trace": true submission would re-simulate every cached grid point.
func TestCacheKeyIgnoresTrace(t *testing.T) {
	opt := Options{Protocol: DeNovo}
	plainKey := CacheKey(opt, "uts", nil)
	opt.Trace = NewTrace()
	if tracedKey := CacheKey(opt, "uts", nil); tracedKey != plainKey {
		t.Errorf("Options.Trace changed the cache key: %s vs %s", tracedKey, plainKey)
	}
}

// TestFigureSetJSONRoundTrip: a decoded figure renders byte-identically to
// the original, so JSON documents are a faithful interchange format for
// whole figures.
func TestFigureSetJSONRoundTrip(t *testing.T) {
	fs, err := Figure63()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := fs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFigureSet(doc)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := fs.Render(64), back.Render(64); a != b {
		t.Fatalf("decoded figure renders differently:\n--- original ---\n%s\n--- decoded ---\n%s", a, b)
	}
	if len(back.Reports) != len(fs.Reports) {
		t.Fatalf("%d reports, want %d", len(back.Reports), len(fs.Reports))
	}
	for i := range fs.Reports {
		if back.Reports[i].Counts != fs.Reports[i].Counts {
			t.Errorf("report %d Counts changed across the round trip", i)
		}
	}
}

// TestFigureSetDecodeRebuildsGroups: the decoder derives the sub-figure
// groups from the reports, so a document whose serialized groups were
// tampered with (or stripped) still decodes to a consistent figure.
func TestFigureSetDecodeRebuildsGroups(t *testing.T) {
	fs, err := Figure63()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := fs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(doc, &raw); err != nil {
		t.Fatal(err)
	}
	delete(raw, "exec")
	raw["data"] = json.RawMessage(`{"title":"tampered","labels":[],"bars":null}`)
	tampered, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFigureSet(tampered)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := fs.Render(64), back.Render(64); a != b {
		t.Fatalf("tampered groups leaked into the decoded figure:\n%s\nvs\n%s", a, b)
	}
}

// TestFigureSetDecodeRejectsUnusableDocuments: null or missing reports
// must surface as decode errors, not later panics in figure methods.
func TestFigureSetDecodeRejectsUnusableDocuments(t *testing.T) {
	for _, doc := range []string{
		`{"id":"x","reports":[null]}`,
		`{"id":"x","reports":[]}`,
		`{"id":"x"}`,
	} {
		if _, err := DecodeFigureSet([]byte(doc)); err == nil {
			t.Errorf("document %s decoded without error", doc)
		}
	}
}

// TestCountsJSONRejectsUnknownLabels: the decoder must not silently drop
// misspelled or stale bucket names.
func TestCountsJSONRejectsUnknownLabels(t *testing.T) {
	var c core.Counts
	if err := json.Unmarshal([]byte(`{"cycles": {"no such kind": 3}}`), &c); err == nil {
		t.Fatal("unknown stall kind accepted")
	}
	if err := json.Unmarshal([]byte(`{"memStruct": {"pending release": 7}}`), &c); err != nil {
		t.Fatal(err)
	}
	if c.MemStruct[core.StructPendingRelease] != 7 {
		t.Error("labeled bucket not restored")
	}
}

// TestCountsJSONOmitsZeroBuckets keeps documents compact: an empty profile
// marshals to an empty object.
func TestCountsJSONOmitsZeroBuckets(t *testing.T) {
	var c core.Counts
	doc, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(doc) != "{}" {
		t.Errorf("zero Counts marshaled to %s, want {}", doc)
	}
}
