package gsi

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// registryBlock matches a generated parameter-table block in an example
// README: everything between <!-- registry:NAME --> and <!-- /registry -->
// is owned by the generator below and regenerated from the workload
// registry, so example docs cannot drift from the schema.
var registryBlock = regexp.MustCompile(`(?s)<!-- registry:([a-z0-9]+) -->\n(.*?)<!-- /registry -->`)

// registryParamTable renders the canonical markdown block for one
// workload: its summary line and the full parameter schema with
// default-scale values and SmallScale overrides.
func registryParamTable(name string) (string, error) {
	e, ok := Workloads().Lookup(name)
	if !ok {
		return "", fmt.Errorf("workload %q is not in the registry", name)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "`%s` — %s\n\n", e.Name, e.Summary)
	sb.WriteString("| parameter | description | default | small scale |\n")
	sb.WriteString("|---|---|---|---|\n")
	for _, p := range e.Params {
		small := "—"
		if v, ok := e.Small[p.Name]; ok {
			small = "`" + v + "`"
		}
		// Pipes in help strings would split the table cell.
		help := strings.ReplaceAll(p.Help, "|", "\\|")
		fmt.Fprintf(&sb, "| `%s` | %s | `%s` | %s |\n", p.Name, help, p.Default, small)
	}
	return sb.String(), nil
}

// TestExampleREADMEParamTables keeps every example README's workload
// parameter tables generated from the registry schema: a parameter
// rename, default change, or new SmallScale override fails this test
// until the docs are regenerated with
//
//	go test -run TestExampleREADMEParamTables -update
func TestExampleREADMEParamTables(t *testing.T) {
	dirs, err := filepath.Glob("examples/*")
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no example directories found: %v", err)
	}
	for _, dir := range dirs {
		path := filepath.Join(dir, "README.md")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: every example needs a README with a registry-generated parameter table: %v", dir, err)
			continue
		}
		blocks := registryBlock.FindAllSubmatchIndex(raw, -1)
		if len(blocks) == 0 {
			t.Errorf("%s: no <!-- registry:NAME --> parameter block found", path)
			continue
		}
		rebuilt := registryBlock.ReplaceAllFunc(raw, func(m []byte) []byte {
			sub := registryBlock.FindSubmatch(m)
			name := string(sub[1])
			table, err := registryParamTable(name)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				return m
			}
			return []byte(fmt.Sprintf("<!-- registry:%s -->\n%s<!-- /registry -->", name, table))
		})
		if string(rebuilt) == string(raw) {
			continue
		}
		if *update {
			if err := os.WriteFile(path, rebuilt, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: regenerated parameter tables", path)
			continue
		}
		t.Errorf("%s: parameter tables drifted from the workload registry; regenerate with go test -run TestExampleREADMEParamTables -update", path)
	}
}
