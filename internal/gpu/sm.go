package gpu

import (
	"fmt"

	"gsi/internal/core"
	"gsi/internal/isa"
	"gsi/internal/mem"
	"gsi/internal/scratchpad"
	"gsi/internal/sim"
)

// SM is one streaming multiprocessor. Its Tick runs the local-memory
// engines, the LSU, and then the issue stage, where every active warp is
// classified (Algorithm 1) and the cycle recorded (Algorithm 2) through the
// GPU's Inspector.
type SM struct {
	id  int
	gpu *GPU
	cm  *mem.CoreMem
	lsu *LSU

	pad   *scratchpad.Scratchpad
	dma   *scratchpad.DMAEngine
	stash *scratchpad.Stash

	kernel    *Kernel
	localKind LocalKind
	block     int
	warps     []*Warp

	greedy         int
	slots          int
	barrierArrived int
	finished       int
	flushStarted   bool
	sfuBusyUntil   uint64

	obsBuf []core.WarpObs
	order  []int
	// orderValid caches order across cycles: the consideration order is a
	// pure function of greedy, the warps' finished states, and lastIssue
	// cycles, all of which change only when a warp issues (or a block
	// starts) — so stall-heavy cycles reuse the previous order instead of
	// re-sorting.
	orderValid bool

	// lastClass is the cycle classification recorded by the most recent
	// issue stage; when the engine skips ahead over a window in which
	// nothing can change, the same classification is credited for every
	// skipped cycle (see SkipAhead on the GPU's smSlot).
	lastClass core.CycleClass
	// issuedThisTick reports whether any warp issued during the most
	// recent tick: SM state changed, so NextEvent makes no promise beyond
	// the next cycle.
	issuedThisTick bool

	// staged marks a parallel-engine run: Tick then executes concurrently
	// with other SMs, so the end-of-block handoff — which mutates the
	// GPU's shared block cursor — is deferred to the commit phase via
	// blockDonePending instead of running mid-tick.
	staged           bool
	blockDonePending bool

	// loadSeq drives this SM's load-identifier sequence (see nextLoadID).
	loadSeq uint64

	// Stats.
	InstrsIssued uint64
	BlocksRun    uint64
}

func newSM(id int, g *GPU, cm *mem.CoreMem) *SM {
	sm := &SM{
		id:    id,
		gpu:   g,
		cm:    cm,
		pad:   scratchpad.New(g.Cfg.ScratchSize, g.Cfg.ScratchBanks),
		block: -1,
	}
	sm.lsu = newLSU(sm)
	sm.stash = scratchpad.NewStash(sm.pad, g.Cfg.LineSize)
	sm.dma = scratchpad.NewDMAEngine(sm.pad, cm, g.Sys.Backing, g.Sys.Mesh,
		g.Sys.CoreTile(id), id, g.Sys.BankTile, g.Cfg.LineSize)
	cm.OnLoadDone = sm.onLoadDone
	cm.OnAtomicDone = sm.onAtomicDone
	cm.OnWriteAck = sm.dma.WriteAcked
	return sm
}

// startBlock installs one thread block on the SM: warps are reset and
// seeded, the kernel-launch acquire self-invalidates the L1, and the local
// memory organization is programmed.
func (sm *SM) startBlock(k *Kernel, block int) {
	sm.kernel = k
	sm.localKind = k.Local
	sm.block = block
	sm.BlocksRun++
	if cap(sm.warps) < k.WarpsPerBlock {
		sm.warps = make([]*Warp, k.WarpsPerBlock)
		for i := range sm.warps {
			sm.warps[i] = &Warp{idx: i}
		}
	}
	sm.warps = sm.warps[:k.WarpsPerBlock]
	for i, w := range sm.warps {
		w.reset(k.Program)
		if k.InitRegs != nil {
			k.InitRegs(block, i, &w.regs)
		}
	}
	sm.greedy = 0
	sm.barrierArrived = 0
	sm.finished = 0
	sm.flushStarted = false
	sm.orderValid = false
	sm.cm.SelfInvalidate() // kernel launch has acquire semantics

	sm.pad.Reset()
	switch k.Local {
	case LocalScratchDMA:
		sm.dma.StartIn(k.LocalMap(block))
	case LocalStash:
		sm.stash.SetMapping(k.LocalMap(block))
	}
}

// Tick advances the SM one cycle. It reports whether a block is still
// resident: a drained SM observes one final Idle cycle and then sleeps, and
// the GPU credits the remaining idle cycles in bulk at the end of the run
// (an SM never re-acquires work mid-run — blocks are handed out by the SM's
// own finishBlock — so going idle is permanent until the next launch).
func (sm *SM) Tick(cycle uint64) bool {
	if sm.localKind == LocalScratchDMA {
		sm.dma.Tick(cycle)
	}
	sm.lsu.Tick(cycle)
	sm.issueStage(cycle)
	if sm.kernel != nil && sm.finished == len(sm.warps) {
		sm.finishBlock(cycle)
	}
	return sm.kernel != nil
}

// issueStage classifies every active warp (issuing up to IssueWidth of
// them) and records the cycle with the Inspector.
func (sm *SM) issueStage(cycle uint64) {
	sm.obsBuf = sm.obsBuf[:0]
	sm.issuedThisTick = false
	if sm.kernel != nil {
		sm.slots = sm.gpu.Cfg.IssueWidth
		// Greedy-then-oldest: the warp that issued last keeps priority
		// while it can issue; everyone else is considered least
		// recently issued first (ties by index). The LRU fallback is
		// what keeps a lock holder making progress while cheap local
		// atomics let spinners saturate the issue ports.
		for _, idx := range sm.schedOrder() {
			sm.considerWarp(sm.warps[idx], cycle)
		}
	}
	sm.lastClass = sm.gpu.Insp.Observe(sm.id, sm.obsBuf)
}

// schedOrder builds the warp consideration order: greedy warp first, the
// rest sorted by last issue cycle (oldest first), then index. The order is
// cached until an issue (or block start) changes one of its inputs.
func (sm *SM) schedOrder() []int {
	if sm.orderValid {
		return sm.order
	}
	sm.orderValid = true
	sm.order = sm.order[:0]
	if g := sm.greedy; g < len(sm.warps) && sm.warps[g].state != warpFinished {
		sm.order = append(sm.order, g)
	}
	start := len(sm.order)
	for i, w := range sm.warps {
		if i == sm.greedy || w.state == warpFinished {
			continue
		}
		sm.order = append(sm.order, i)
	}
	rest := sm.order[start:]
	// Insertion sort: warp counts are small and the slice is nearly
	// sorted from cycle to cycle.
	for i := 1; i < len(rest); i++ {
		for j := i; j > 0; j-- {
			a, b := sm.warps[rest[j-1]], sm.warps[rest[j]]
			if a.lastIssue < b.lastIssue ||
				(a.lastIssue == b.lastIssue && rest[j-1] < rest[j]) {
				break
			}
			rest[j-1], rest[j] = rest[j], rest[j-1]
		}
	}
	return sm.order
}

// considerWarp builds the warp's issue condition, issues if possible, and
// appends the Algorithm-1 classification.
func (sm *SM) considerWarp(w *Warp, cycle uint64) {
	var cond core.Cond
	switch w.state {
	case warpAtomic, warpBarrier:
		cond.SyncBlocked = true
	case warpReady:
		if cycle < w.ibufReadyAt {
			cond.NextUnavailable = true
			break
		}
		in := w.next()
		memHaz, blocking, compHaz, compUnit := w.hazards(in, cycle)
		cond.MemDataHazard = memHaz
		cond.PendingLoad = blocking
		cond.CompDataHazard = compHaz
		cond.CompDataUnit = compUnit
		switch in.Op.Class() {
		case isa.ClassMem, isa.ClassAtomic:
			if ok, cause := sm.lsu.CanAccept(cycle); !ok {
				cond.MemStructHazard = true
				cond.StructCause = cause
			}
		case isa.ClassSFU:
			if sm.sfuBusyUntil > cycle {
				cond.CompStructHazard = true
				cond.CompStructUnit = core.UnitSFU
			}
		}
		if !memHaz && !compHaz && !cond.MemStructHazard && !cond.CompStructHazard {
			if sm.slots > 0 {
				sm.slots--
				cond.Issued = true
				sm.greedy = w.idx
				w.lastIssue = cycle
				sm.orderValid = false
				sm.issuedThisTick = true
				sm.execute(w, in, cycle)
			}
		}
	}
	sm.obsBuf = append(sm.obsBuf, core.ClassifyInstruction(cond))
}

// execute performs one issued instruction.
func (sm *SM) execute(w *Warp, in isa.Instr, cycle uint64) {
	sm.InstrsIssued++
	cfg := &sm.gpu.Cfg
	switch in.Op.Class() {
	case isa.ClassNop:
		w.pc++
	case isa.ClassALU:
		w.regs[in.Rd] = isa.EvalALU(in.Op, w.regs[in.Ra], w.regs[in.Rb], w.regs[in.Rd], in.Imm)
		w.setPendingCompute(in.Rd, cycle+uint64(cfg.ALULat), core.UnitALU)
		w.pc++
	case isa.ClassSFU:
		w.regs[in.Rd] = isa.EvalALU(in.Op, w.regs[in.Ra], 0, 0, 0)
		w.setPendingCompute(in.Rd, cycle+uint64(cfg.SFULat), core.UnitSFU)
		sm.sfuBusyUntil = cycle + uint64(cfg.SFUInterval)
		w.pc++
	case isa.ClassCtrl:
		if isa.BranchTaken(in.Op, w.regs[in.Ra], w.regs[in.Rb]) {
			w.pc = in.Target
			w.ibufReadyAt = cycle + uint64(cfg.FetchLat)
		} else {
			w.pc++
		}
	case isa.ClassBarrier:
		w.pc++
		w.state = warpBarrier
		sm.barrierArrived++
		sm.checkBarrier()
	case isa.ClassExit:
		w.state = warpFinished
		sm.finished++
		sm.checkBarrier() // fewer active warps may release the barrier
	case isa.ClassMem, isa.ClassAtomic:
		w.pc++
		sm.lsu.Accept(w, in, cycle)
	}
}

// checkBarrier releases waiting warps once every still-active warp has
// arrived.
func (sm *SM) checkBarrier() {
	active := len(sm.warps) - sm.finished
	if sm.barrierArrived == 0 || sm.barrierArrived < active {
		return
	}
	for _, w := range sm.warps {
		if w.state == warpBarrier {
			w.state = warpReady
		}
	}
	sm.barrierArrived = 0
}

// finishBlock sequences the end-of-kernel release: flush the store buffer
// (and start the DMA write-back), then report the block done once
// everything has drained.
func (sm *SM) finishBlock(cycle uint64) {
	if !sm.flushStarted {
		sm.flushStarted = true
		sm.cm.FlushAll()
		if sm.localKind == LocalScratchDMA {
			sm.dma.StartOut()
		}
		return
	}
	if sm.cm.Quiesced() && sm.lsu.Idle() && sm.dma.Quiesced() {
		sm.kernel = nil
		sm.localKind = LocalNone
		sm.block = -1
		if sm.staged {
			// The handoff advances the GPU's shared block cursor; under
			// the parallel engine it defers to the commit phase so SMs
			// finishing in the same cycle claim their next blocks in SM
			// order — the order the serial loops hand them out.
			sm.blockDonePending = true
		} else {
			sm.gpu.blockDone(sm)
		}
		return
	}
	if sm.lsu.Idle() && !sm.cm.Flushing() && sm.cm.SBLen() > 0 {
		// Straggler stores: a multi-line vector store still draining
		// through the LSU when the kernel-end flush started parks until
		// the release completes, then refills the store buffer behind
		// it. Without another flush nothing would ever drain those
		// entries and the block could never retire.
		sm.cm.FlushAll()
	}
}

// Diagnose summarizes warp scheduling state for engine deadlock dumps.
func (sm *SM) Diagnose() string {
	if sm.kernel == nil {
		return "no block resident"
	}
	var ready, barrier, atomic, finished int
	for _, w := range sm.warps {
		switch w.state {
		case warpReady:
			ready++
		case warpBarrier:
			barrier++
		case warpAtomic:
			atomic++
		case warpFinished:
			finished++
		}
	}
	return fmt.Sprintf("kernel=%s block=%d warps ready=%d barrier=%d atomic=%d finished=%d lsu-busy=%v %s",
		sm.kernel.Name, sm.block, ready, barrier, atomic, finished, !sm.lsu.Idle(), sm.dma.Diagnose())
}

// NextEvent supports the engine's skip-ahead extension. Called after the
// SM's tick at cycle now, it returns the earliest cycle at which the SM's
// observable behavior — issue decisions and per-cycle classification —
// could change, sim.NoEvent when every blocked warp waits on an external
// event (an in-flight load, atomic response, or barrier peer whose own
// progress is bounded elsewhere), or now+1 when no promise can be made
// (something issued this cycle, the DMA engine or LSU works every cycle, a
// warp is issuable). The promise never under-reports: jumping to the
// returned cycle and ticking from there is indistinguishable from ticking
// densely through the gap.
func (sm *SM) NextEvent(now uint64) uint64 {
	if sm.kernel == nil {
		return sim.NoEvent // drained: the engine never consults an idle SM
	}
	if sm.issuedThisTick {
		return now + 1
	}
	next := sim.NoEvent
	if sm.localKind == LocalScratchDMA {
		if t := sm.dma.NextEvent(now); t < next {
			next = t
		}
	}
	if t := sm.lsu.NextEvent(now); t < next {
		next = t
	}
	if next <= now+1 {
		return now + 1
	}
	for _, w := range sm.warps {
		if w.state != warpReady {
			// Finished warps do nothing; atomic- and barrier-blocked
			// warps wait on external events (the response in flight, a
			// peer warp whose own hazards are scanned here).
			continue
		}
		if now < w.ibufReadyAt {
			// Control stall: constant until the buffer refills.
			if w.ibufReadyAt < next {
				next = w.ibufReadyAt
			}
			continue
		}
		in := w.next()
		var external, hazard bool
		var nextReady uint64
		if s := &w.haz; s.valid && s.pc == w.pc && (s.expiresAt == 0 || now < s.expiresAt) {
			// considerWarp scanned this warp's operands this very cycle;
			// reuse its cached summary instead of re-walking the board.
			external, hazard = s.memHaz, s.memHaz || s.compHaz
			nextReady = s.expiresAt
		} else {
			external, nextReady, hazard = w.nextBoardEvent(in, now)
		}
		if hazard {
			// A pending-load hazard is external and shadows compute
			// retirements (MemData outranks CompData and the warp stays
			// blocked either way); a compute-only hazard clears at the
			// earliest operand retirement.
			if !external {
				if nextReady <= now {
					return now + 1
				}
				if nextReady < next {
					next = nextReady
				}
			}
			continue
		}
		// No data hazard: the warp is structurally gated or issuable.
		switch in.Op.Class() {
		case isa.ClassMem, isa.ClassAtomic:
			if ok, _ := sm.lsu.CanAccept(now); ok {
				return now + 1 // issuable: no promise
			}
			// Gated by the LSU or a pending release; the LSU's own
			// timer (counted above) or the external event that frees
			// it bounds the window.
		case isa.ClassSFU:
			if sm.sfuBusyUntil <= now {
				return now + 1 // issuable: no promise
			}
			if sm.sfuBusyUntil < next {
				next = sm.sfuBusyUntil
			}
		default:
			// An issuable ALU/control/barrier instruction that did not
			// issue only lost arbitration; it can issue next cycle.
			return now + 1
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// nextLoadID allocates a load identifier for GSI attribution, unique
// across the device for the whole run. IDs are striped by SM
// (id ≡ sm.id+1 mod NumSMs) so concurrent SM ticks under the parallel
// engine never touch a shared counter, and a given SM draws the identical
// sequence under every engine mode. The values never surface in Reports.
func (sm *SM) nextLoadID() core.LoadID {
	id := sm.loadSeq*uint64(len(sm.gpu.SMs)) + uint64(sm.id) + 1
	sm.loadSeq++
	return core.LoadID(id)
}

// onLoadDone dispatches fill completions to their unit.
func (sm *SM) onLoadDone(t mem.Target, where core.DataWhere) {
	switch t.Kind {
	case mem.TargetLoad:
		sm.lsu.LoadFillDone(t, where)
	case mem.TargetDMAFill:
		sm.dma.FillDone(t.Aux)
	}
}

// onAtomicDone unblocks the warp and delivers the old value.
// Fire-and-forget atomics never blocked anyone and carry no result.
func (sm *SM) onAtomicDone(op mem.AtomicOp, old uint64) {
	if op.NoRet {
		return
	}
	w := sm.warps[op.Warp]
	w.regs[op.Rd] = old
	if w.state == warpAtomic {
		w.state = warpReady
	}
}
