// Package gpu implements the cycle-level SIMT core model: streaming
// multiprocessors with warps, a greedy-then-oldest dual-issue scheduler,
// per-warp instruction buffers, a scoreboard, ALU/SFU pipelines, a
// load/store unit with coalescing, and the local-memory organizations of
// case study 2. The SM issue stage is where GSI observes: every cycle, each
// active warp's issue condition is classified with Algorithm 1 and the
// cycle with Algorithm 2 (see internal/core).
package gpu

import (
	"fmt"

	"gsi/internal/isa"
	"gsi/internal/scratchpad"
)

// LocalKind selects the local-memory organization a kernel's OpLdL/OpStL
// instructions address.
type LocalKind uint8

const (
	// LocalNone: the kernel uses no local memory.
	LocalNone LocalKind = iota
	// LocalScratch: baseline software-managed scratchpad.
	LocalScratch
	// LocalScratchDMA: scratchpad preloaded (and written back) by a DMA
	// engine; mapped accesses block at core granularity while the bulk
	// load is in flight.
	LocalScratchDMA
	// LocalStash: coherent stash; mapped lines fill on demand, blocking
	// only the touching warp, and dirty lines register lazily.
	LocalStash
)

// String names the organization as in the paper's figures.
func (k LocalKind) String() string {
	switch k {
	case LocalNone:
		return "none"
	case LocalScratch:
		return "scratchpad"
	case LocalScratchDMA:
		return "scratchpad+DMA"
	case LocalStash:
		return "stash"
	}
	return fmt.Sprintf("LocalKind(%d)", uint8(k))
}

// Kernel describes one GPU kernel launch.
type Kernel struct {
	Name    string
	Program *isa.Program
	// Blocks is the grid size; blocks are dispatched to SMs round-robin
	// and a block occupies its SM until every warp exits.
	Blocks int
	// WarpsPerBlock warps execute Program concurrently per block.
	WarpsPerBlock int
	// InitRegs seeds a warp's registers before it starts (block and warp
	// identifiers, base addresses, per-warp work partitions).
	InitRegs func(block, warp int, regs *[isa.NumRegs]uint64)
	// Local selects the local-memory organization for OpLdL/OpStL.
	Local LocalKind
	// LocalMap supplies the block's scratchpad/stash window onto global
	// memory. Required for LocalScratchDMA and LocalStash; optional for
	// LocalScratch (the baseline moves data with explicit instructions).
	LocalMap func(block int) scratchpad.Mapping
	// Coresident declares that the kernel synchronizes across blocks (a
	// software global barrier), so every block must be resident at once:
	// Blocks may not exceed the SM count, or late blocks would wait for
	// SMs that never free and the barrier would deadlock. Launch
	// enforces this.
	Coresident bool
}

// Validate reports the first structural problem with the kernel.
func (k *Kernel) Validate() error {
	switch {
	case k.Program == nil:
		return fmt.Errorf("gpu: kernel %q has no program", k.Name)
	case k.Blocks < 1:
		return fmt.Errorf("gpu: kernel %q has %d blocks", k.Name, k.Blocks)
	case k.WarpsPerBlock < 1:
		return fmt.Errorf("gpu: kernel %q has %d warps per block", k.Name, k.WarpsPerBlock)
	case (k.Local == LocalScratchDMA || k.Local == LocalStash) && k.LocalMap == nil:
		return fmt.Errorf("gpu: kernel %q: %s requires LocalMap", k.Name, k.Local)
	}
	return nil
}
