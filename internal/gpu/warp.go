package gpu

import (
	"gsi/internal/core"
	"gsi/internal/isa"
)

// warpState is a warp's scheduling state.
type warpState uint8

const (
	// warpReady: the warp competes for issue.
	warpReady warpState = iota
	// warpBarrier: blocked at a thread-block barrier (sync stall).
	warpBarrier
	// warpAtomic: blocked on a pending acquire/release atomic (sync
	// stall).
	warpAtomic
	// warpFinished: the warp has exited.
	warpFinished
)

// pendKind says what a scoreboarded register is waiting on.
type pendKind uint8

const (
	pendNone pendKind = iota
	// pendCompute: an ALU/SFU result arrives at readyAt.
	pendCompute
	// pendLoad: a load identified by loadID is in flight.
	pendLoad
)

// regStatus is one scoreboard slot.
type regStatus struct {
	kind    pendKind
	readyAt uint64
	loadID  core.LoadID
	unit    core.CompUnit // producing pipeline for pendCompute
}

// Warp is one resident warp: program counter, warp-scalar registers, the
// scoreboard, and instruction-buffer state.
type Warp struct {
	idx   int // index within the SM
	prog  *isa.Program
	pc    int
	regs  [isa.NumRegs]uint64
	board [isa.NumRegs]regStatus
	state warpState

	// ibufReadyAt models the instruction buffer: after a taken branch
	// the buffer refills and the next instruction is unavailable until
	// this cycle (control stalls).
	ibufReadyAt uint64

	// lastIssue is the cycle this warp last issued; the scheduler's
	// "oldest" fallback prefers the least recently issued warp, which
	// guarantees a blocked-but-ready warp (e.g. a lock holder amid
	// cheap spinners) eventually gets an issue slot.
	lastIssue uint64
}

// reset prepares the warp to run prog from pc 0.
func (w *Warp) reset(prog *isa.Program) {
	w.prog = prog
	w.pc = 0
	w.regs = [isa.NumRegs]uint64{}
	w.board = [isa.NumRegs]regStatus{}
	w.state = warpReady
	w.ibufReadyAt = 0
	w.lastIssue = 0
}

// next returns the instruction at the warp's pc.
func (w *Warp) next() isa.Instr { return w.prog.At(w.pc) }

// clearReady lazily retires compute scoreboard entries whose results have
// arrived.
func (w *Warp) clearReady(r isa.Reg, cycle uint64) {
	if w.board[r].kind == pendCompute && w.board[r].readyAt <= cycle {
		w.board[r] = regStatus{}
	}
}

// hazards inspects the scoreboard for the instruction's operands (reads
// plus the write destination, for WAW). It reports a memory-data hazard
// with the blocking load, or a compute-data hazard.
func (w *Warp) hazards(in isa.Instr, cycle uint64) (memHaz bool, blocking core.LoadID, compHaz bool, compUnit core.CompUnit) {
	var buf [4]isa.Reg
	regs := in.ReadRegs(buf[:0])
	if rd, ok := in.WritesReg(); ok {
		regs = append(regs, rd)
	}
	for _, r := range regs {
		w.clearReady(r, cycle)
		switch w.board[r].kind {
		case pendLoad:
			if !memHaz {
				memHaz = true
				blocking = w.board[r].loadID
			}
		case pendCompute:
			if !compHaz {
				compHaz = true
				compUnit = w.board[r].unit
			}
		}
	}
	return memHaz, blocking, compHaz, compUnit
}

// setPendingCompute marks rd as produced by a compute op on the given
// pipeline finishing at readyAt.
func (w *Warp) setPendingCompute(rd isa.Reg, readyAt uint64, unit core.CompUnit) {
	w.board[rd] = regStatus{kind: pendCompute, readyAt: readyAt, unit: unit}
}

// setPendingLoad marks rd as produced by an in-flight load.
func (w *Warp) setPendingLoad(rd isa.Reg, id core.LoadID) {
	w.board[rd] = regStatus{kind: pendLoad, loadID: id}
}

// loadArrived retires the scoreboard entry for a completed load and writes
// the value.
func (w *Warp) loadArrived(rd isa.Reg, id core.LoadID, value uint64) {
	if w.board[rd].kind == pendLoad && w.board[rd].loadID == id {
		w.board[rd] = regStatus{}
		w.regs[rd] = value
	}
}
