package gpu

import (
	"gsi/internal/core"
	"gsi/internal/isa"
)

// warpState is a warp's scheduling state.
type warpState uint8

const (
	// warpReady: the warp competes for issue.
	warpReady warpState = iota
	// warpBarrier: blocked at a thread-block barrier (sync stall).
	warpBarrier
	// warpAtomic: blocked on a pending acquire/release atomic (sync
	// stall).
	warpAtomic
	// warpFinished: the warp has exited.
	warpFinished
)

// pendKind says what a scoreboarded register is waiting on.
type pendKind uint8

const (
	pendNone pendKind = iota
	// pendCompute: an ALU/SFU result arrives at readyAt.
	pendCompute
	// pendLoad: a load identified by loadID is in flight.
	pendLoad
)

// regStatus is one scoreboard slot.
type regStatus struct {
	kind    pendKind
	readyAt uint64
	loadID  core.LoadID
	unit    core.CompUnit // producing pipeline for pendCompute
}

// hazSummary caches the result of one hazards scan. The scoreboard only
// changes on issue (setPendingCompute / setPendingLoad), load delivery
// (loadArrived), or the timed retirement of a compute result, so on
// stall-heavy cycles the summary for an unchanged (pc, scoreboard) pair is
// reused instead of re-scanning the operand registers: the first two events
// invalidate explicitly, and expiresAt self-invalidates at the earliest
// compute retirement among the scanned operands.
type hazSummary struct {
	valid    bool
	pc       int
	memHaz   bool
	blocking core.LoadID
	compHaz  bool
	compUnit core.CompUnit
	// expiresAt is the earliest pendCompute readyAt among the scanned
	// operands (0 = none pending: valid until an invalidating event).
	expiresAt uint64
}

// Warp is one resident warp: program counter, warp-scalar registers, the
// scoreboard, and instruction-buffer state.
type Warp struct {
	idx   int // index within the SM
	prog  *isa.Program
	pc    int
	regs  [isa.NumRegs]uint64
	board [isa.NumRegs]regStatus
	state warpState
	haz   hazSummary

	// ibufReadyAt models the instruction buffer: after a taken branch
	// the buffer refills and the next instruction is unavailable until
	// this cycle (control stalls).
	ibufReadyAt uint64

	// lastIssue is the cycle this warp last issued; the scheduler's
	// "oldest" fallback prefers the least recently issued warp, which
	// guarantees a blocked-but-ready warp (e.g. a lock holder amid
	// cheap spinners) eventually gets an issue slot.
	lastIssue uint64
}

// reset prepares the warp to run prog from pc 0.
func (w *Warp) reset(prog *isa.Program) {
	w.prog = prog
	w.pc = 0
	w.regs = [isa.NumRegs]uint64{}
	w.board = [isa.NumRegs]regStatus{}
	w.state = warpReady
	w.ibufReadyAt = 0
	w.lastIssue = 0
	w.haz = hazSummary{}
}

// next returns the instruction at the warp's pc.
func (w *Warp) next() isa.Instr { return w.prog.At(w.pc) }

// clearReady lazily retires compute scoreboard entries whose results have
// arrived.
func (w *Warp) clearReady(r isa.Reg, cycle uint64) {
	if w.board[r].kind == pendCompute && w.board[r].readyAt <= cycle {
		w.board[r] = regStatus{}
	}
}

// hazards inspects the scoreboard for the instruction's operands (reads
// plus the write destination, for WAW). It reports a memory-data hazard
// with the blocking load, or a compute-data hazard. The scan result is
// cached in w.haz so a stalled warp whose scoreboard has not changed does
// not re-scan its registers every cycle.
func (w *Warp) hazards(in isa.Instr, cycle uint64) (memHaz bool, blocking core.LoadID, compHaz bool, compUnit core.CompUnit) {
	s := &w.haz
	if s.valid && s.pc == w.pc && (s.expiresAt == 0 || cycle < s.expiresAt) {
		return s.memHaz, s.blocking, s.compHaz, s.compUnit
	}
	var buf [4]isa.Reg
	regs := in.ReadRegs(buf[:0])
	if rd, ok := in.WritesReg(); ok {
		regs = append(regs, rd)
	}
	*s = hazSummary{valid: true, pc: w.pc}
	for _, r := range regs {
		w.clearReady(r, cycle)
		switch w.board[r].kind {
		case pendLoad:
			if !s.memHaz {
				s.memHaz = true
				s.blocking = w.board[r].loadID
			}
		case pendCompute:
			if !s.compHaz {
				s.compHaz = true
				s.compUnit = w.board[r].unit
			}
			if t := w.board[r].readyAt; s.expiresAt == 0 || t < s.expiresAt {
				s.expiresAt = t
			}
		}
	}
	return s.memHaz, s.blocking, s.compHaz, s.compUnit
}

// setPendingCompute marks rd as produced by a compute op on the given
// pipeline finishing at readyAt.
func (w *Warp) setPendingCompute(rd isa.Reg, readyAt uint64, unit core.CompUnit) {
	w.board[rd] = regStatus{kind: pendCompute, readyAt: readyAt, unit: unit}
	w.haz.valid = false
}

// setPendingLoad marks rd as produced by an in-flight load.
func (w *Warp) setPendingLoad(rd isa.Reg, id core.LoadID) {
	w.board[rd] = regStatus{kind: pendLoad, loadID: id}
	w.haz.valid = false
}

// loadArrived retires the scoreboard entry for a completed load and writes
// the value.
func (w *Warp) loadArrived(rd isa.Reg, id core.LoadID, value uint64) {
	if w.board[rd].kind == pendLoad && w.board[rd].loadID == id {
		w.board[rd] = regStatus{}
		w.regs[rd] = value
		w.haz.valid = false
	}
}

// nextBoardEvent supports the SM's skip-ahead promise for a ready warp
// whose head instruction is in: it reports whether any operand is blocked
// by an in-flight load (external — no internal bound), and the earliest
// compute retirement among the operands (0 = none). Unlike hazards it never
// mutates the scoreboard.
func (w *Warp) nextBoardEvent(in isa.Instr, now uint64) (external bool, nextReady uint64, hazard bool) {
	var buf [4]isa.Reg
	regs := in.ReadRegs(buf[:0])
	if rd, ok := in.WritesReg(); ok {
		regs = append(regs, rd)
	}
	for _, r := range regs {
		switch w.board[r].kind {
		case pendLoad:
			external = true
			hazard = true
		case pendCompute:
			hazard = true
			if t := w.board[r].readyAt; nextReady == 0 || t < nextReady {
				nextReady = t
			}
		}
	}
	return external, nextReady, hazard
}
