package gpu

import (
	"fmt"

	"gsi/internal/core"
	"gsi/internal/mem"
	"gsi/internal/sim"
)

// GPU is the full simulated device: the memory system, the SMs, and the
// GSI Inspector. One GPU runs one kernel launch at a time.
type GPU struct {
	Cfg  sim.Config
	Sys  *mem.System
	Insp *core.Inspector
	SMs  []*SM

	kernel     *Kernel
	nextBlock  int
	blocksDone int
	loadSeq    uint64
}

// New builds a GPU with the given per-core coherence policies (one per
// core: SMs first, then the CPU; see coherence.ForGPU).
func New(cfg sim.Config, policies []mem.Policy) (*GPU, error) {
	sys, err := mem.NewSystem(cfg, policies)
	if err != nil {
		return nil, err
	}
	g := &GPU{
		Cfg:  cfg,
		Sys:  sys,
		Insp: core.NewInspector(cfg.NumSMs),
	}
	g.SMs = make([]*SM, cfg.NumSMs)
	for i := range g.SMs {
		g.SMs[i] = newSM(i, g, sys.Cores[i])
	}
	return g, nil
}

// nextLoadID allocates a run-unique load identifier for GSI attribution.
func (g *GPU) nextLoadID() core.LoadID {
	g.loadSeq++
	return core.LoadID(g.loadSeq)
}

// Launch installs a kernel and dispatches its first blocks (round-robin,
// one resident block per SM; further blocks start as SMs free up).
func (g *GPU) Launch(k *Kernel) error {
	if err := k.Validate(); err != nil {
		return err
	}
	if g.kernel != nil && g.blocksDone < g.kernel.Blocks {
		return fmt.Errorf("gpu: kernel %q still running", g.kernel.Name)
	}
	if k.WarpsPerBlock > g.Cfg.WarpsPerSM {
		return fmt.Errorf("gpu: kernel %q needs %d warps per block, SM holds %d",
			k.Name, k.WarpsPerBlock, g.Cfg.WarpsPerSM)
	}
	g.kernel = k
	g.nextBlock = 0
	g.blocksDone = 0
	for _, sm := range g.SMs {
		if g.nextBlock >= k.Blocks {
			break
		}
		sm.startBlock(k, g.nextBlock)
		g.nextBlock++
	}
	return nil
}

// blockDone is called by an SM that finished (and drained) its block; the
// SM picks up the next pending block if any remain.
func (g *GPU) blockDone(sm *SM) {
	g.blocksDone++
	if g.nextBlock < g.kernel.Blocks {
		sm.startBlock(g.kernel, g.nextBlock)
		g.nextBlock++
	}
}

// Done reports kernel completion: every block retired and the memory
// system quiesced.
func (g *GPU) Done() bool {
	return g.kernel != nil && g.blocksDone == g.kernel.Blocks && g.Sys.Quiesced()
}

// Tick advances the device one GPU cycle: memory side first (mesh, memory
// controller, banks, core units), then every SM.
func (g *GPU) Tick(cycle uint64) {
	g.Sys.Tick(cycle)
	for _, sm := range g.SMs {
		sm.Tick(cycle)
	}
}

// Run drives the launched kernel to completion and returns the cycle
// count. It resolves GSI's deferred attribution before returning.
func (g *GPU) Run() (uint64, error) {
	if g.kernel == nil {
		return 0, fmt.Errorf("gpu: no kernel launched")
	}
	eng := sim.NewEngine()
	eng.Register("gpu", sim.TickFunc(g.Tick))
	cycles, err := eng.Run(g.Done, g.Cfg.MaxCycles)
	g.Insp.Flush()
	return cycles, err
}
