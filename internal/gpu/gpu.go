package gpu

import (
	"context"
	"fmt"

	"gsi/internal/core"
	"gsi/internal/mem"
	"gsi/internal/sim"
	"gsi/internal/trace"
)

// GPU is the full simulated device: the memory system, the SMs, and the
// GSI Inspector. One GPU runs one kernel launch at a time.
type GPU struct {
	Cfg  sim.Config
	Sys  *mem.System
	Insp *core.Inspector
	SMs  []*SM

	// EngineStats holds the scheduling counters of the most recent Run
	// (steps executed, skip-ahead jumps, cycles skipped). It is not part
	// of the Report: every engine mode produces identical Reports.
	EngineStats sim.EngineStats

	// Trace, when set before Run, observes the engine's clock jumps and
	// parallel phase timings plus the mesh's express events. The
	// Inspector's classification stream is wired separately (set
	// Insp.Trace). Tracing never changes results.
	Trace *trace.Collector

	kernel     *Kernel
	nextBlock  int
	blocksDone int
}

// New builds a GPU with the given per-core coherence policies (one per
// core: SMs first, then the CPU; see coherence.ForGPU).
func New(cfg sim.Config, policies []mem.Policy) (*GPU, error) {
	sys, err := mem.NewSystem(cfg, policies)
	if err != nil {
		return nil, err
	}
	g := &GPU{
		Cfg:  cfg,
		Sys:  sys,
		Insp: core.NewInspector(cfg.NumSMs),
	}
	g.SMs = make([]*SM, cfg.NumSMs)
	for i := range g.SMs {
		g.SMs[i] = newSM(i, g, sys.Cores[i])
	}
	return g, nil
}

// Launch installs a kernel and dispatches its first blocks (round-robin,
// one resident block per SM; further blocks start as SMs free up).
func (g *GPU) Launch(k *Kernel) error {
	if err := k.Validate(); err != nil {
		return err
	}
	if g.kernel != nil && g.blocksDone < g.kernel.Blocks {
		return fmt.Errorf("gpu: kernel %q still running", g.kernel.Name)
	}
	if k.WarpsPerBlock > g.Cfg.WarpsPerSM {
		return fmt.Errorf("gpu: kernel %q needs %d warps per block, SM holds %d",
			k.Name, k.WarpsPerBlock, g.Cfg.WarpsPerSM)
	}
	if k.Coresident && k.Blocks > g.Cfg.NumSMs {
		return fmt.Errorf("gpu: kernel %q synchronizes across blocks but launches %d on %d SMs",
			k.Name, k.Blocks, g.Cfg.NumSMs)
	}
	g.kernel = k
	g.nextBlock = 0
	g.blocksDone = 0
	for _, sm := range g.SMs {
		if g.nextBlock >= k.Blocks {
			break
		}
		sm.startBlock(k, g.nextBlock)
		g.nextBlock++
	}
	return nil
}

// blockDone is called by an SM that finished (and drained) its block; the
// SM picks up the next pending block if any remain.
func (g *GPU) blockDone(sm *SM) {
	g.blocksDone++
	if g.nextBlock < g.kernel.Blocks {
		sm.startBlock(g.kernel, g.nextBlock)
		g.nextBlock++
	}
}

// Done reports kernel completion: every block retired and the memory
// system quiesced.
func (g *GPU) Done() bool {
	return g.kernel != nil && g.blocksDone == g.kernel.Blocks && g.Sys.Quiesced()
}

// smSlot adapts one SM to the scheduling engine: when the SM goes idle
// (block retired, nothing pending) the slot records the first skipped cycle
// so the run's tail of idle cycles can be credited to the Inspector in one
// bulk span — GSI still accounts a classification for every GPU cycle of
// every SM, including the ones the engine never ticked.
type smSlot struct {
	sm *SM
	// track enables sleep bookkeeping; the dense loop ticks the SM every
	// cycle (observing Idle directly), so crediting again would double
	// count.
	track    bool
	asleep   bool
	idleFrom uint64
	// wake re-arms the slot in the engine; the parallel engine's commit
	// phase uses it when a deferred block handoff gives the SM new work
	// in the same cycle its Tick reported idle.
	wake func()
}

// Tick implements sim.Component.
func (s *smSlot) Tick(cycle uint64) bool {
	busy := s.sm.Tick(cycle)
	if s.track && !busy && !s.asleep {
		s.asleep = true
		s.idleFrom = cycle + 1
	}
	return busy
}

// creditIdle folds the skipped [idleFrom, end) span into the Inspector as
// Idle cycles, matching what a dense loop would have observed one cycle at
// a time.
func (s *smSlot) creditIdle(end uint64, insp *core.Inspector) {
	if !s.asleep || end <= s.idleFrom {
		return
	}
	insp.RecordIdleSpan(s.sm.id, end-s.idleFrom)
}

// NextEvent implements sim.NextEventer for the skip-ahead engine.
func (s *smSlot) NextEvent(now uint64) uint64 { return s.sm.NextEvent(now) }

// SkipAhead implements sim.Skipper: the engine jumped over cycles
// [from, to), during which the SM's classification provably could not
// change, so the classification observed at from-1 is credited once per
// skipped cycle — exactly the counts (and timeline) a dense loop would
// have accumulated one cycle at a time.
func (s *smSlot) SkipAhead(from, to uint64) {
	s.sm.gpu.Insp.RecordCycleSpan(s.sm.id, s.sm.lastClass, to-from)
}

// Diagnose implements sim.Diagnoser for engine deadlock dumps.
func (s *smSlot) Diagnose() string { return s.sm.Diagnose() }

// Commit implements sim.Committer for the parallel tick engine: called in
// registration order after the concurrent group phase, it injects the DMA
// engine's staged mesh sends (the order across SMs then matches the
// serial loops' in-tick sends) and applies a deferred end-of-block
// handoff. A handoff that lands a new block un-marks the sleep the
// just-finished Tick recorded and re-arms the slot, so the SM resumes
// next cycle exactly as it would had blockDone run mid-tick.
func (s *smSlot) Commit(cycle uint64) {
	sm := s.sm
	sm.dma.FlushStaged(cycle)
	if sm.blockDonePending {
		sm.blockDonePending = false
		sm.gpu.blockDone(sm)
		if sm.kernel != nil {
			s.asleep = false
			s.wake()
		}
	}
}

// Run drives the launched kernel to completion with no external
// cancellation: RunContext under context.Background().
func (g *GPU) Run() (uint64, error) { return g.RunContext(context.Background()) }

// RunContext drives the launched kernel to completion and returns the
// cycle count. Every component — mesh, memory controller, L2 banks,
// per-core memory units, SMs — registers individually with the engine
// selected by Cfg.EngineMode (skip-ahead by default), in the same order
// the dense compound Tick evaluates them, so all modes produce
// byte-identical results. It resolves GSI's deferred attribution before
// returning and records the engine's scheduling counters in EngineStats.
//
// ctx cancellation is cooperative and checked only between cycles (see
// sim.Engine.RunContext): a canceled run returns sim.ErrCanceled, an
// expired deadline sim.ErrDeadline with the engine diagnosis attached.
func (g *GPU) RunContext(ctx context.Context) (uint64, error) {
	if g.kernel == nil {
		return 0, fmt.Errorf("gpu: no kernel launched")
	}
	mode := g.Cfg.EngineMode()
	parallel := mode == sim.EngineParallel
	eng := sim.NewEngine()
	eng.SetMode(mode)
	if parallel {
		eng.SetParallel(g.Cfg.TickWorkers())
	}
	if g.Trace != nil {
		eng.SetObserver(g.Trace)
		g.Sys.Mesh.SetObserver(g.Trace)
	}
	g.Sys.Attach(eng)
	slots := make([]*smSlot, len(g.SMs))
	for i, sm := range g.SMs {
		sm.staged = parallel
		sm.dma.SetStaged(parallel)
		slots[i] = &smSlot{sm: sm, track: mode != sim.EngineDense}
		// SM i joins tick group i alongside its CoreMem (see
		// mem.System.Attach): the pair shares a worker, preserving their
		// serial intra-cycle interplay, while distinct SMs tick
		// concurrently.
		slots[i].wake = eng.RegisterGroup(fmt.Sprintf("sm%d", i), slots[i], i).Wake
	}
	cycles, err := eng.RunContext(ctx, g.Done, g.Cfg.MaxCycles)
	for _, s := range slots {
		s.creditIdle(eng.Cycle(), g.Insp)
	}
	g.Insp.Flush()
	g.EngineStats = eng.Stats()
	g.EngineStats.ExpressDeliveries = g.Sys.Mesh.Stats.ExpressDeliveries
	g.EngineStats.ExpressDemotions = g.Sys.Mesh.Stats.ExpressDemotions
	return cycles, err
}
