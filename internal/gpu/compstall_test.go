package gpu_test

import (
	"testing"

	"gsi/internal/coherence"
	"gsi/internal/core"
	"gsi/internal/gpu"
	"gsi/internal/isa"
)

// TestSFUStallSubclassification: a dependent chain of SFU ops from several
// warps must produce compute data stalls attributed to the SFU and compute
// structural stalls on its issue interval.
func TestSFUStallSubclassification(t *testing.T) {
	b := isa.NewBuilder("sfu")
	b.MovI(1, 7)
	for i := 0; i < 8; i++ {
		b.SFU(1, 1) // dependent chain: each waits SFULat
	}
	b.Exit()
	g, err := gpu.New(smallCfg(1), coherence.PoliciesFor(1, coherence.DeNovo{}))
	if err != nil {
		t.Fatal(err)
	}
	run(t, g, &gpu.Kernel{Name: "sfu", Program: b.MustBuild(), Blocks: 1, WarpsPerBlock: 4})
	c := g.Insp.SM(0)
	if c.CompData[core.UnitSFU] == 0 {
		t.Error("no SFU-attributed compute data stalls")
	}
	if c.Cycles[core.CompData] != c.CompData[core.UnitALU]+c.CompData[core.UnitSFU]+c.CompData[core.UnitIssue] {
		t.Error("compute data sub-buckets do not sum to the top-level count")
	}
}

// TestALUStallSubclassification: a dependent ALU chain attributes its
// compute data stalls to the ALU.
func TestALUStallSubclassification(t *testing.T) {
	b := isa.NewBuilder("alu-chain")
	b.MovI(1, 3)
	for i := 0; i < 16; i++ {
		b.Mul(1, 1, 1) // 4-cycle latency chain, single warp
	}
	b.Exit()
	g, err := gpu.New(smallCfg(1), coherence.PoliciesFor(1, coherence.DeNovo{}))
	if err != nil {
		t.Fatal(err)
	}
	run(t, g, &gpu.Kernel{Name: "alu-chain", Program: b.MustBuild(), Blocks: 1, WarpsPerBlock: 1})
	c := g.Insp.SM(0)
	if c.CompData[core.UnitALU] == 0 {
		t.Error("no ALU-attributed compute data stalls for a dependent chain")
	}
	if c.CompData[core.UnitSFU] != 0 {
		t.Error("phantom SFU stalls")
	}
}
