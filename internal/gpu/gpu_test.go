// Tests for the SM core model: tiny kernels run on a real memory system,
// checking functional results, scoreboard behaviour, synchronization, and
// the stall classifications GSI observes.
package gpu_test

import (
	"errors"
	"strings"
	"testing"

	"gsi/internal/coherence"
	"gsi/internal/core"
	"gsi/internal/gpu"
	"gsi/internal/isa"
	"gsi/internal/mem"
	"gsi/internal/scratchpad"
	"gsi/internal/sim"
)

func smallCfg(sms int) sim.Config {
	cfg := sim.Default()
	cfg.NumSMs = sms
	cfg.MaxCycles = 2_000_000
	return cfg
}

func newGPU(t *testing.T, sms int, policy mem.Policy) *gpu.GPU {
	t.Helper()
	g, err := gpu.New(smallCfg(sms), coherence.PoliciesFor(sms, policy))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func run(t *testing.T, g *gpu.GPU, k *gpu.Kernel) uint64 {
	t.Helper()
	if err := g.Launch(k); err != nil {
		t.Fatal(err)
	}
	cycles, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	return cycles
}

func TestALUAndStoreKernel(t *testing.T) {
	// result = (3+4)*6 stored per warp at RES + warp*8.
	const res = uint64(0x1_0000)
	b := isa.NewBuilder("alu")
	b.MovI(1, 3).MovI(2, 4).Add(3, 1, 2).MovI(4, 6).Mul(3, 3, 4)
	b.St(10, 0, 3)
	b.Exit()
	prog := b.MustBuild()

	g := newGPU(t, 1, coherence.DeNovo{})
	k := &gpu.Kernel{
		Name: "alu", Program: prog, Blocks: 1, WarpsPerBlock: 4,
		InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
			regs[10] = res + uint64(warp)*8
		},
	}
	run(t, g, k)
	for w := 0; w < 4; w++ {
		if got := g.Sys.Backing.Load64(res + uint64(w)*8); got != 42 {
			t.Errorf("warp %d result = %d, want 42", w, got)
		}
	}
}

func TestLoopAndBranchKernel(t *testing.T) {
	// Sum 1..10 with a loop; exercises backward branches and the
	// instruction buffer refill (control stalls).
	const res = uint64(0x1_0000)
	b := isa.NewBuilder("loop")
	b.MovI(1, 0)  // sum
	b.MovI(2, 1)  // i
	b.MovI(3, 11) // bound
	top := b.Here()
	b.Add(1, 1, 2)
	b.AddI(2, 2, 1)
	b.BLT(2, 3, top)
	b.MovI(4, int64(res))
	b.St(4, 0, 1)
	b.Exit()
	g := newGPU(t, 1, coherence.DeNovo{})
	run(t, g, &gpu.Kernel{Name: "loop", Program: b.MustBuild(), Blocks: 1, WarpsPerBlock: 1})
	if got := g.Sys.Backing.Load64(res); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
	// Control stalls must have been observed (taken branches flush the
	// instruction buffer).
	if g.Insp.SM(0).Cycles[core.Control] == 0 {
		t.Error("no control stalls recorded for a branchy kernel")
	}
}

func TestLoadUseProducesMemDataStalls(t *testing.T) {
	const data = uint64(0x2_0000)
	b := isa.NewBuilder("loaduse")
	b.MovI(1, int64(data))
	b.Ld(2, 1, 0)   // cold load
	b.AddI(3, 2, 1) // immediately dependent
	b.St(1, 8, 3)
	b.Exit()
	g := newGPU(t, 1, coherence.DeNovo{})
	g.Sys.Backing.Store64(data, 41)
	run(t, g, &gpu.Kernel{Name: "loaduse", Program: b.MustBuild(), Blocks: 1, WarpsPerBlock: 1})
	if got := g.Sys.Backing.Load64(data + 8); got != 42 {
		t.Fatalf("result = %d, want 42", got)
	}
	c := g.Insp.SM(0)
	if c.Cycles[core.MemData] == 0 {
		t.Fatal("no memory data stalls for a load-use chain")
	}
	if c.MemData[core.WhereMemory] == 0 {
		t.Fatal("cold miss stalls not attributed to main memory")
	}
}

func TestScoreboardWAW(t *testing.T) {
	// A second write to a pending-load register must wait (WAW), so the
	// final value is the MovI's, not the load's.
	const data = uint64(0x2_0000)
	b := isa.NewBuilder("waw")
	b.MovI(1, int64(data))
	b.Ld(2, 1, 0)
	b.MovI(2, 7) // WAW on r2: must not complete before the load
	b.St(1, 8, 2)
	b.Exit()
	g := newGPU(t, 1, coherence.DeNovo{})
	g.Sys.Backing.Store64(data, 999)
	run(t, g, &gpu.Kernel{Name: "waw", Program: b.MustBuild(), Blocks: 1, WarpsPerBlock: 1})
	if got := g.Sys.Backing.Load64(data + 8); got != 7 {
		t.Fatalf("result = %d, want 7 (MovI after load)", got)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Each warp stores its id, all barrier, then warp 0 sums the values:
	// without the barrier the sum would miss late warps. Uses the
	// scratchpad so data is SM-local.
	const n = 4
	b := isa.NewBuilder("bar")
	b.StL(10, 0, 11) // pad[warp*8] = warp id + 1
	atBar := b.NewLabel()
	b.BNE(11, 12, atBar) // warps 1..3 go straight to the barrier
	b.MovI(7, 0x3_1000)
	b.AtomAdd(8, 7, 12, isa.Relaxed) // warp 0 blocks on an L2 atomic first
	b.Bind(atBar)
	b.Bar()
	done := b.NewLabel()
	b.BNE(11, 12, done) // only warp with id+1==1 (warp 0) sums
	b.MovI(1, 0)
	b.MovI(2, 0) // i
	b.MovI(3, n)
	top := b.Here()
	b.MulI(4, 2, 8)
	b.LdL(5, 4, 0)
	b.Add(1, 1, 5)
	b.AddI(2, 2, 1)
	b.BLT(2, 3, top)
	b.MovI(6, 0x3_0000)
	b.St(6, 0, 1)
	b.Bind(done)
	b.Exit()
	g := newGPU(t, 1, coherence.DeNovo{})
	k := &gpu.Kernel{
		Name: "bar", Program: b.MustBuild(), Blocks: 1, WarpsPerBlock: n,
		Local: gpu.LocalScratch,
		InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
			regs[10] = uint64(warp) * 8
			regs[11] = uint64(warp) + 1
			regs[12] = 1
		},
	}
	run(t, g, k)
	want := uint64(n * (n + 1) / 2)
	if got := g.Sys.Backing.Load64(0x3_0000); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if g.Insp.SM(0).Cycles[core.Sync] == 0 {
		t.Error("no synchronization stalls recorded around a barrier")
	}
}

func TestAtomicCASLockBetweenWarps(t *testing.T) {
	// Two warps increment a shared counter 10 times each under a CAS
	// lock; the final value proves mutual exclusion (a lost update would
	// leave it short).
	const lock, counter = uint64(0x4_0000), uint64(0x4_0040)
	b := isa.NewBuilder("lock")
	b.MovI(1, int64(lock))
	b.MovI(2, int64(counter))
	b.MovI(3, 0)  // zero
	b.MovI(4, 1)  // one
	b.MovI(5, 0)  // i
	b.MovI(6, 10) // iters
	top := b.Here()
	acq := b.Here()
	b.AtomCAS(7, 1, 3, 4, isa.Acquire)
	b.BNE(7, 3, acq)
	b.Ld(8, 2, 0)
	b.AddI(8, 8, 1)
	b.St(2, 0, 8)
	b.AtomExch(7, 1, 3, isa.Release)
	b.AddI(5, 5, 1)
	b.BLT(5, 6, top)
	b.Exit()
	g := newGPU(t, 2, coherence.DeNovo{})
	// One warp per block, two blocks on two SMs: true inter-SM locking.
	run(t, g, &gpu.Kernel{Name: "lock", Program: b.MustBuild(), Blocks: 2, WarpsPerBlock: 1})
	if got := g.Sys.Backing.Load64(counter); got != 20 {
		t.Fatalf("counter = %d, want 20 (lost update => mutual exclusion broken)", got)
	}
}

func TestNoRetAtomicDoesNotBlock(t *testing.T) {
	const ctr = uint64(0x5_0000)
	b := isa.NewBuilder("noret")
	b.MovI(1, int64(ctr))
	b.MovI(2, 1)
	b.AtomAddNR(1, 2, isa.Relaxed)
	b.AtomAddNR(1, 2, isa.Relaxed)
	b.Exit()
	g := newGPU(t, 1, coherence.DeNovo{})
	cycles := run(t, g, &gpu.Kernel{Name: "noret", Program: b.MustBuild(), Blocks: 1, WarpsPerBlock: 1})
	if got := g.Sys.Backing.Load64(ctr); got != 2 {
		t.Fatalf("counter = %d, want 2", got)
	}
	// Two blocking atomics would serialize into ~2 L2 round trips; the
	// fire-and-forget pair plus drain must be well under that.
	if cycles > 250 {
		t.Errorf("fire-and-forget atomics took %d cycles", cycles)
	}
}

func TestCycleAccounting(t *testing.T) {
	// The inspector must classify exactly one observation per SM per
	// cycle: totals equal the run length times the SM count.
	b := isa.NewBuilder("acct")
	b.MovI(1, 1)
	b.FMA(2, 1, 1)
	b.Exit()
	g := newGPU(t, 3, coherence.DeNovo{})
	cycles := run(t, g, &gpu.Kernel{Name: "acct", Program: b.MustBuild(), Blocks: 3, WarpsPerBlock: 2})
	agg := g.Insp.Aggregate()
	if agg.Total() != cycles*3 {
		t.Fatalf("classified %d cycles, want %d (3 SMs x %d)", agg.Total(), cycles*3, cycles)
	}
}

func TestBlockDispatchRoundRobin(t *testing.T) {
	// More blocks than SMs: blocks queue and every block runs.
	const res = uint64(0x6_0000)
	b := isa.NewBuilder("blocks")
	b.MovI(2, 1)
	b.St(1, 0, 2)
	b.Exit()
	g := newGPU(t, 2, coherence.DeNovo{})
	const blocks = 5
	k := &gpu.Kernel{
		Name: "blocks", Program: b.MustBuild(), Blocks: blocks, WarpsPerBlock: 1,
		InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
			regs[1] = res + uint64(block)*8
		},
	}
	run(t, g, k)
	for blk := 0; blk < blocks; blk++ {
		if g.Sys.Backing.Load64(res+uint64(blk)*8) != 1 {
			t.Errorf("block %d never ran", blk)
		}
	}
}

func TestLaunchValidation(t *testing.T) {
	g := newGPU(t, 1, coherence.DeNovo{})
	b := isa.NewBuilder("v")
	b.Exit()
	prog := b.MustBuild()
	if err := g.Launch(&gpu.Kernel{Name: "v", Program: prog, Blocks: 0, WarpsPerBlock: 1}); err == nil {
		t.Error("zero blocks accepted")
	}
	if err := g.Launch(&gpu.Kernel{Name: "v", Program: prog, Blocks: 1, WarpsPerBlock: 99}); err == nil {
		t.Error("oversubscribed warps accepted")
	}
	if err := g.Launch(&gpu.Kernel{Name: "v", Program: prog, Blocks: 1, WarpsPerBlock: 1,
		Local: gpu.LocalStash}); err == nil {
		t.Error("stash kernel without mapping accepted")
	}
}

func TestScratchpadKernelBankConflicts(t *testing.T) {
	// 32 lanes striding 32 words alias a single scratchpad bank:
	// the access serializes and bank-conflict stalls appear.
	b := isa.NewBuilder("conflict")
	b.MovI(1, 0)
	b.MovI(3, 42)
	for i := 0; i < 8; i++ {
		b.StLV(1, 32*8, 3) // stride 32 words -> all lanes on bank 0
	}
	b.Exit()
	g := newGPU(t, 1, coherence.DeNovo{})
	run(t, g, &gpu.Kernel{
		Name: "conflict", Program: b.MustBuild(), Blocks: 1, WarpsPerBlock: 2,
		Local: gpu.LocalScratch,
	})
	if got := g.Insp.SM(0).MemStruct[core.StructBankConflict]; got == 0 {
		t.Error("no bank-conflict stalls for a fully aliased access pattern")
	}
}

func TestStashKernelFillsOnDemand(t *testing.T) {
	const base = uint64(0x7_0000)
	b := isa.NewBuilder("stash")
	b.MovI(1, 0)
	b.LdL(2, 1, 0) // first touch: global fill
	b.LdL(3, 1, 8) // same line: hit or merge
	b.Add(4, 2, 3)
	b.MovI(5, int64(base+0x100))
	b.St(5, 0, 4)
	b.Exit()
	g := newGPU(t, 1, coherence.DeNovo{})
	g.Sys.Backing.Store64(base, 30)
	g.Sys.Backing.Store64(base+8, 12)
	k := &gpu.Kernel{
		Name: "stash", Program: b.MustBuild(), Blocks: 1, WarpsPerBlock: 1,
		Local: gpu.LocalStash,
		LocalMap: func(int) scratchpad.Mapping {
			return scratchpad.Mapping{GlobalBase: base, LocalBase: 0, Bytes: 0x100}
		},
	}
	run(t, g, k)
	if got := g.Sys.Backing.Load64(base + 0x100); got != 42 {
		t.Fatalf("stash sum = %d, want 42", got)
	}
	// The stash fill must not have polluted the L1.
	if g.Sys.Cores[0].LineStateOf(base) != mem.LineInvalid {
		t.Error("stash fill installed the line in the L1")
	}
}

func TestDeterminism(t *testing.T) {
	build := func() (*gpu.GPU, *gpu.Kernel) {
		g := newGPU(t, 2, coherence.GPUCoherence{})
		b := isa.NewBuilder("det")
		b.MovI(1, 0x9_0000)
		b.LdV(2, 1, 8)
		b.FMA(2, 2, 2)
		b.StV(1, 8, 2)
		b.Exit()
		return g, &gpu.Kernel{Name: "det", Program: b.MustBuild(), Blocks: 2, WarpsPerBlock: 4}
	}
	g1, k1 := build()
	c1 := run(t, g1, k1)
	g2, k2 := build()
	c2 := run(t, g2, k2)
	if c1 != c2 {
		t.Fatalf("cycle counts differ: %d vs %d", c1, c2)
	}
	a1, a2 := g1.Insp.Aggregate(), g2.Insp.Aggregate()
	if a1 != a2 {
		t.Fatalf("breakdowns differ:\n%v\n%v", a1, a2)
	}
}

// TestSchedulerFairness: a lock holder must make progress even when cheap
// local atomics let sibling warps spin at issue-port rate — the livelock
// mode that motivates the scheduler's least-recently-issued fallback.
func TestSchedulerFairness(t *testing.T) {
	const lock, res = uint64(0xA_0000), uint64(0xA_1000)
	b := isa.NewBuilder("fair")
	b.MovI(1, int64(lock))
	b.MovI(2, 0) // zero
	b.MovI(3, 1) // one
	holder := b.NewLabel()
	b.BEQ(11, 3, holder) // warp 0 (r11=1) takes the critical section
	// Spinners: hammer the lock until it reads 0 (released at the end).
	spin := b.Here()
	b.AtomCAS(4, 1, 2, 3, isa.Acquire)
	b.BNE(4, 2, spin)
	// Got the lock: pass it on so the remaining spinners can finish.
	b.AtomExch(4, 1, 2, isa.Release)
	b.Exit()
	b.Bind(holder)
	// Holder: the lock starts held by it (host init); do some work, then
	// release so the spinners can finish.
	b.MovI(5, 0)
	b.MovI(6, 200)
	work := b.Here()
	b.AddI(5, 5, 1)
	b.BLT(5, 6, work)
	b.MovI(7, int64(res))
	b.St(7, 0, 5)
	b.AtomExch(4, 1, 2, isa.Release)
	b.Exit()

	cfg := smallCfg(1)
	cfg.MaxCycles = 400_000
	g, err := gpu.New(cfg, coherence.PoliciesFor(1, coherence.DeNovo{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, cm := range g.Sys.Cores {
		cm.OwnedAtomics = true // cheapest possible spinning
	}
	g.Sys.Backing.Store64(lock, 1) // held by the "holder" warp
	k := &gpu.Kernel{
		Name: "fair", Program: b.MustBuild(), Blocks: 1, WarpsPerBlock: 8,
		InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
			if warp == 0 {
				regs[11] = 1
			}
		},
	}
	run(t, g, k) // a starved holder would hit MaxCycles and fail
	if got := g.Sys.Backing.Load64(res); got != 200 {
		t.Fatalf("holder result = %d, want 200", got)
	}
}

// TestWatchdogDumpsDiagnosis: an unbounded spin loop trips the engine
// watchdog, and the error names the stuck components with their pending
// work instead of just "max cycles exceeded".
func TestWatchdogDumpsDiagnosis(t *testing.T) {
	b := isa.NewBuilder("spin")
	top := b.Here()
	b.Br(top)
	b.Exit()
	prog := b.MustBuild()

	cfg := smallCfg(1)
	cfg.MaxCycles = 2000
	g, err := gpu.New(cfg, coherence.PoliciesFor(1, coherence.DeNovo{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Launch(&gpu.Kernel{Name: "spin", Program: prog, Blocks: 1, WarpsPerBlock: 1}); err != nil {
		t.Fatal(err)
	}
	_, err = g.Run()
	if !errors.Is(err, sim.ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	for _, want := range []string{"sm0", "busy", "kernel=spin", "mesh", "memctrl"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnosis missing %q:\n%v", want, err)
		}
	}
}

// TestEnginesAgreeOnEmptyReleaseFlush pins a subtle skip-ahead hazard: a
// release atomic issued with an empty store buffer starts a flush that is
// already complete, and the core memory unit's next tick must clear it and
// dispatch the atomic. A second SM sits in a long SFU dependency chain, so
// the skip-ahead engine has a far event it could wrongly jump to if the
// flushing unit failed to demand the very next cycle — which would delay
// the release and diverge from the dense loop.
func TestEnginesAgreeOnEmptyReleaseFlush(t *testing.T) {
	const lock = uint64(0x1_0000)
	// One program, two blocks: block 0 runs the SFU chain, block 1 the
	// back-to-back release atomics (nothing dirty, so both flushes are
	// empty).
	b := isa.NewBuilder("mixed")
	release := b.NewLabel()
	b.BNE(11, 12, release) // block 1 jumps to the release path
	b.MovI(1, 7)
	for i := 0; i < 8; i++ {
		b.SFU(1, 1)
	}
	b.St(1, int64(lock+64), 1)
	b.Exit()
	b.Bind(release)
	b.MovI(1, int64(lock)).MovI(2, 1)
	b.AtomAdd(3, 1, 2, isa.Release)
	b.AtomAdd(3, 1, 2, isa.Release)
	b.Exit()
	prog := b.MustBuild()

	runMode := func(mode sim.EngineMode) (uint64, [2]core.Counts) {
		cfg := smallCfg(2)
		cfg.Engine = mode
		g, err := gpu.New(cfg, coherence.PoliciesFor(2, coherence.DeNovo{}))
		if err != nil {
			t.Fatal(err)
		}
		k := &gpu.Kernel{
			Name: "mixed", Program: prog, Blocks: 2, WarpsPerBlock: 1,
			InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
				regs[11] = uint64(block)
				regs[12] = 0
			},
		}
		cycles := run(t, g, k)
		if got := g.Sys.Backing.Load64(lock); got != 2 {
			t.Fatalf("%s: lock = %d, want 2", mode, got)
		}
		return cycles, [2]core.Counts{*g.Insp.SM(0), *g.Insp.SM(1)}
	}
	denseCycles, denseCounts := runMode(sim.EngineDense)
	for _, mode := range []sim.EngineMode{sim.EngineQuiescent, sim.EngineSkip} {
		cycles, counts := runMode(mode)
		if cycles != denseCycles {
			t.Errorf("%s: %d cycles, dense: %d", mode, cycles, denseCycles)
		}
		// The total is dominated by the SFU chain, so a delayed release
		// would hide in the cycle count — but it shifts the releasing
		// SM's breakdown from idle toward synchronization stalls.
		if counts != denseCounts {
			t.Errorf("%s: per-SM counts diverge from dense:\n%+v\nvs\n%+v", mode, counts, denseCounts)
		}
	}
}
