package gpu

import (
	"fmt"

	"gsi/internal/core"
	"gsi/internal/isa"
	"gsi/internal/mem"
	"gsi/internal/scratchpad"
	"gsi/internal/sim"
)

// LSU is an SM's load/store unit. It holds at most one warp memory
// instruction at a time; a multi-line instruction, a full MSHR or store
// buffer, a bank conflict, a pending release, or a pending DMA keep it
// occupied, and while occupied every other memory instruction on the SM
// sees a memory structural stall whose cause is BlockCause.
type LSU struct {
	sm *SM

	cur        *memOp
	blockCause core.StructCause
	busyUntil  uint64

	tracks map[core.LoadID]*loadTrack
	comps  []compEvent

	// Reusable per-access buffers: lane address expansion, line
	// deduplication, and L1 bank tallies run for every memory
	// instruction, so they must not allocate.
	addrBuf   []uint64
	linesBuf  []uint64
	bankCount []uint16

	// Stats.
	Accepted, LinesIssued uint64
}

// memOp is the instruction currently occupying the LSU.
type memOp struct {
	warp    *Warp
	in      isa.Instr
	lines   []lineReq
	curLoad core.LoadID // load id when the op is a load
	// dmaWait: the op touches a DMA-mapped region still loading; it
	// blocks the whole LSU until the engine reports ready (core
	// granularity), then replays.
	dmaWait bool
}

// lineReq is one outstanding line-level request of the current op.
type lineReq struct {
	global  uint64 // global line address (stash accesses are translated)
	isStore bool
	noL1    bool // stash traffic bypasses the L1
	stash   bool
}

// loadTrack aggregates the line fills of one warp load instruction.
// The architectural value is captured when the load is accepted — its
// program-order linearization point — so a same-warp store issued while the
// load is still in flight cannot be observed out of order.
type loadTrack struct {
	warp      *Warp
	rd        isa.Reg
	id        core.LoadID
	remaining int
	lastWhere core.DataWhere
	value     uint64
}

// compEvent is a delayed local completion (L1/scratchpad/stash hits model a
// short load-to-use pipeline, which is what populates the paper's "L1
// cache" data-stall bucket).
type compEvent struct {
	at    uint64
	id    core.LoadID
	where core.DataWhere
}

func newLSU(sm *SM) *LSU {
	return &LSU{sm: sm, tracks: make(map[core.LoadID]*loadTrack)}
}

// hitLatency is the extra load-to-use delay of a local hit beyond issue
// (1-cycle access plus writeback).
const hitLatency = 2

// CanAccept reports whether a new memory instruction may enter the LSU;
// when it cannot, cause says why (for Algorithm 1's memory structural
// classification).
func (l *LSU) CanAccept(cycle uint64) (ok bool, cause core.StructCause) {
	cm := l.sm.cm
	if cm.ReleaseInProgress() && !cm.SFIFO {
		return false, core.StructPendingRelease
	}
	if l.cur != nil {
		if l.cur.dmaWait {
			// The paper attributes a blocked access during a bulk
			// DMA to "a full MSHR or a pending DMA": while the DMA
			// keeps the MSHR saturated the stronger cause is the
			// full MSHR; once MSHRs free up the pending transfer
			// itself is what blocks (this attribution shift is
			// exactly what figure 6.4c shows as MSHR size grows).
			if cm.MSHRFree() == 0 {
				return false, core.StructMSHRFull
			}
			return false, core.StructPendingDMA
		}
		c := l.blockCause
		if c == core.StructNone {
			c = core.StructBankConflict
		}
		return false, c
	}
	if l.busyUntil > cycle {
		return false, core.StructBankConflict
	}
	return true, core.StructNone
}

// Accept takes one memory-class instruction from a warp. The caller must
// have checked CanAccept this cycle. Atomics hand off to the core memory
// unit immediately (the warp blocks on synchronization, not on the LSU).
func (l *LSU) Accept(w *Warp, in isa.Instr, cycle uint64) {
	l.Accepted++
	if in.Op.Class() == isa.ClassAtomic {
		l.sm.cm.Atomic(mem.AtomicOp{
			Warp: w.idx, Rd: in.Rd, Addr: w.regs[in.Ra], AOp: in.Op,
			B: w.regs[in.Rb], C: w.regs[in.Rc], Order: in.Order,
			NoRet: in.NoRet,
		}, cycle)
		if !in.NoRet {
			// The warp blocks on synchronization until the old
			// value returns; fire-and-forget atomics keep going.
			w.state = warpAtomic
		}
		return
	}
	op := &memOp{warp: w, in: in}
	if in.Op.IsLocal() {
		l.acceptLocal(op, cycle)
	} else {
		l.acceptGlobal(op, cycle)
	}
}

// laneAddrs expands an instruction into per-lane addresses. The returned
// slice aliases a reusable buffer: it is valid until the next laneAddrs
// call on this LSU.
func (l *LSU) laneAddrs(w *Warp, in isa.Instr) []uint64 {
	addrs := l.addrBuf[:0]
	if !in.Op.IsVector() {
		addrs = append(addrs, w.regs[in.Ra]+uint64(in.Imm))
		l.addrBuf = addrs
		return addrs
	}
	lanes := in.Lanes
	if lanes <= 0 || lanes > l.sm.gpu.Cfg.WarpSize {
		lanes = l.sm.gpu.Cfg.WarpSize
	}
	base := w.regs[in.Ra]
	for i := 0; i < lanes; i++ {
		addrs = append(addrs, base+uint64(i)*uint64(in.Imm))
	}
	l.addrBuf = addrs
	return addrs
}

// distinctLines returns the sorted distinct line bases touched by addrs.
// The returned slice aliases a reusable buffer, valid until the next call;
// a warp touches at most a few lines, so linear dedup plus insertion sort
// beats the map-and-sort it replaces.
func (l *LSU) distinctLines(addrs []uint64, lineSize uint64) []uint64 {
	lines := l.linesBuf[:0]
	for _, a := range addrs {
		ln := a &^ (lineSize - 1)
		dup := false
		for _, e := range lines {
			if e == ln {
				dup = true
				break
			}
		}
		if !dup {
			lines = append(lines, ln)
		}
	}
	for i := 1; i < len(lines); i++ {
		for j := i; j > 0 && lines[j-1] > lines[j]; j-- {
			lines[j-1], lines[j] = lines[j], lines[j-1]
		}
	}
	l.linesBuf = lines
	return lines
}

// l1BankOccupancy is the serialization cost of a set of line requests on
// the L1's line-interleaved banks.
func (l *LSU) l1BankOccupancy(lines []uint64) int {
	banks := l.sm.gpu.Cfg.L1Banks
	lineSize := uint64(l.sm.gpu.Cfg.LineSize)
	if l.bankCount == nil {
		l.bankCount = make([]uint16, banks)
	}
	counts := l.bankCount
	clear(counts)
	maxCount := uint16(1)
	for _, ln := range lines {
		b := int(ln/lineSize) % banks
		counts[b]++
		if counts[b] > maxCount {
			maxCount = counts[b]
		}
	}
	return int(maxCount)
}

func (l *LSU) acceptGlobal(op *memOp, cycle uint64) {
	in := op.in
	w := op.warp
	addrs := l.laneAddrs(w, in)
	lines := l.distinctLines(addrs, uint64(l.sm.gpu.Cfg.LineSize))
	// The coalescer emits one line request per cycle, and requests that
	// collide on an L1 bank serialize further; either way the LSU stays
	// occupied (bank-conflict structural stalls for followers).
	occ := l.l1BankOccupancy(lines)
	if n := len(lines); n > occ {
		occ = n
	}
	if occ > 1 {
		l.busyUntil = cycle + uint64(occ-1)
	}
	if in.Op.IsStore() {
		// Non-blocking stores: architectural values reach the backing
		// store now; timing rides on the store buffer entries.
		v := w.regs[in.Rb]
		for _, a := range addrs {
			l.sm.gpu.Sys.Backing.Store64(a, v)
		}
		for _, ln := range lines {
			op.lines = append(op.lines, lineReq{global: ln, isStore: true})
		}
	} else {
		id := l.sm.nextLoadID()
		w.setPendingLoad(in.Rd, id)
		l.tracks[id] = &loadTrack{
			warp: w, rd: in.Rd, id: id,
			remaining: len(lines),
			value:     l.sm.gpu.Sys.Backing.Load64(addrs[0]),
		}
		for _, ln := range lines {
			op.lines = append(op.lines, lineReq{global: ln})
		}
		op.curLoad = id
	}
	l.cur = op
	l.submit(cycle)
}

func (l *LSU) acceptLocal(op *memOp, cycle uint64) {
	in := op.in
	w := op.warp
	addrs := l.laneAddrs(w, in)
	_ = w
	switch l.sm.localKind {
	case LocalScratch, LocalScratchDMA:
		l.acceptScratch(op, addrs, cycle)
	case LocalStash:
		l.acceptStash(op, addrs, cycle)
	default:
		panic(fmt.Sprintf("gpu: kernel %q uses local memory but SM has none",
			l.sm.kernel.Name))
	}
}

func (l *LSU) acceptScratch(op *memOp, addrs []uint64, cycle uint64) {
	in := op.in
	w := op.warp
	if in.Op.IsLoad() && op.curLoad == 0 {
		// Allocate the load and block the destination register up
		// front: even if the access parks on a pending DMA, dependent
		// instructions must see the scoreboard hazard. The value is
		// captured on replay (after the DMA has filled the pad).
		id := l.sm.nextLoadID()
		w.setPendingLoad(in.Rd, id)
		l.tracks[id] = &loadTrack{warp: w, rd: in.Rd, id: id, remaining: 1}
		op.curLoad = id
	}
	if l.sm.localKind == LocalScratchDMA && l.sm.dma.Blocking(addrs[0]) {
		// Pending DMA blocks at core granularity: the op parks in the
		// LSU, stalling the whole SM's memory issue, until the bulk
		// load completes; stores write the scratchpad only on replay.
		op.dmaWait = true
		l.cur = op
		l.blockCause = core.StructPendingDMA
		return
	}
	occ := l.sm.pad.ConflictCycles(addrs)
	if occ > 1 {
		l.busyUntil = cycle + uint64(occ-1)
	}
	if in.Op.IsStore() {
		v := w.regs[in.Rb]
		for _, a := range addrs {
			l.sm.pad.Store64(a, v)
		}
		return // purely local: no line requests
	}
	l.tracks[op.curLoad].value = l.sm.pad.Load64(addrs[0])
	l.comps = append(l.comps, compEvent{
		at: cycle + uint64(occ-1) + hitLatency, id: op.curLoad, where: core.WhereL1,
	})
}

func (l *LSU) acceptStash(op *memOp, addrs []uint64, cycle uint64) {
	in := op.in
	w := op.warp
	st := l.sm.stash
	occ := l.sm.pad.ConflictCycles(addrs)
	if occ > 1 {
		l.busyUntil = cycle + uint64(occ-1)
	}
	lines := l.distinctLines(addrs, uint64(l.sm.gpu.Cfg.LineSize))
	if in.Op.IsStore() {
		// Stash stores: write-allocate locally, dirty lines register
		// through the store buffer (lazy, coherent write-back).
		v := w.regs[in.Rb]
		for _, a := range addrs {
			l.sm.gpu.Sys.Backing.Store64(st.GlobalFor(a), v)
		}
		for _, ln := range lines {
			st.StoreAccess(ln)
			op.lines = append(op.lines, lineReq{
				global: st.GlobalFor(ln), isStore: true,
				noL1: true, stash: true,
			})
		}
		l.cur = op
		l.submit(cycle)
		return
	}
	id := l.sm.nextLoadID()
	w.setPendingLoad(in.Rd, id)
	tr := &loadTrack{
		warp: w, rd: in.Rd, id: id,
		remaining: len(lines),
		value:     l.sm.gpu.Sys.Backing.Load64(st.GlobalFor(addrs[0])),
	}
	l.tracks[id] = tr
	for _, ln := range lines {
		switch st.LoadAccess(ln) {
		case scratchpad.StashHit:
			l.comps = append(l.comps, compEvent{
				at: cycle + uint64(occ-1) + hitLatency, id: id, where: core.WhereL1,
			})
		default:
			// NeedFill and FillPending both turn into a global
			// request; the MSHR merges duplicates. Only this warp
			// blocks (warp-granularity blocking, the stash's
			// advantage over scratchpad+DMA).
			op.lines = append(op.lines, lineReq{
				global: st.GlobalFor(ln), noL1: true, stash: true,
			})
		}
	}
	op.curLoad = id
	if len(op.lines) > 0 {
		// Fill requests pass through the coalescer one line per cycle.
		if n := uint64(len(op.lines)); cycle+n-1 > l.busyUntil {
			l.busyUntil = cycle + n - 1
		}
		l.cur = op
		l.submit(cycle)
	}
}

// submit pushes the current op's outstanding line requests into the core
// memory unit, stopping (and recording the cause) at the first refusal.
func (l *LSU) submit(cycle uint64) {
	op := l.cur
	if op == nil {
		return
	}
	if op.dmaWait {
		if l.sm.dma.State() == scratchpad.DMALoading {
			return
		}
		// The bulk load finished: replay the parked access, keeping
		// the load id allocated at park time so the scoreboard entry
		// and GSI attribution stay attached to the same load.
		op.dmaWait = false
		l.cur = nil
		l.blockCause = core.StructNone
		l.acceptScratch(op, l.laneAddrs(op.warp, op.in), cycle)
		return
	}
	cm := l.sm.cm
	for len(op.lines) > 0 {
		req := op.lines[0]
		if req.isStore {
			var out mem.StoreOutcome
			if req.noL1 {
				out = cm.StoreNoL1(req.global, cycle)
			} else {
				out = cm.Store(req.global, cycle)
			}
			switch out {
			case mem.StoreOK:
				l.LinesIssued++
			case mem.StoreSBFull:
				l.blockCause = core.StructStoreBufferFull
				return
			case mem.StoreBlockedRelease:
				l.blockCause = core.StructPendingRelease
				return
			}
		} else {
			t := mem.Target{Kind: mem.TargetLoad, Load: op.curLoad, Aux: req.global, NoL1: req.noL1}
			switch cm.Load(req.global, t, cycle) {
			case mem.LoadHit:
				l.LinesIssued++
				l.comps = append(l.comps, compEvent{
					at: cycle + hitLatency, id: op.curLoad, where: core.WhereL1,
				})
			case mem.LoadMiss, mem.LoadMerged:
				l.LinesIssued++
				if req.stash {
					l.sm.stash.FillStarted(l.sm.stash.Mapping().LocalFor(req.global))
				}
			case mem.LoadMSHRFull:
				l.blockCause = core.StructMSHRFull
				return
			}
		}
		op.lines = op.lines[1:]
	}
	l.cur = nil
	l.blockCause = core.StructNone
}

// Tick retires due local completions and retries a blocked op. It reports
// whether the LSU still holds an op or pending completions.
func (l *LSU) Tick(cycle uint64) bool {
	if len(l.comps) > 0 {
		n := 0
		for _, e := range l.comps {
			if e.at <= cycle {
				l.lineDone(e.id, e.where)
			} else {
				l.comps[n] = e
				n++
			}
		}
		l.comps = l.comps[:n]
	}
	if l.cur != nil && l.busyUntil <= cycle {
		l.submit(cycle)
	}
	return !l.Idle()
}

// LoadFillDone routes a completed global fill for a warp load (called from
// the SM's OnLoadDone dispatcher).
func (l *LSU) LoadFillDone(t mem.Target, where core.DataWhere) {
	if tr, ok := l.tracks[t.Load]; ok && tr != nil {
		// Stash fills mark the stash line present for later hits.
		if t.NoL1 && l.sm.stash != nil {
			l.sm.stash.FillDone(t.Aux)
		}
	}
	l.lineDone(t.Load, where)
}

// lineDone accounts one completed line for a load track; the last line
// finishes the load: scoreboard release, architectural value write, and
// GSI's deferred attribution resolution.
func (l *LSU) lineDone(id core.LoadID, where core.DataWhere) {
	tr, ok := l.tracks[id]
	if !ok {
		return
	}
	tr.remaining--
	tr.lastWhere = where
	if tr.remaining > 0 {
		return
	}
	delete(l.tracks, id)
	tr.warp.loadArrived(tr.rd, id, tr.value)
	l.sm.gpu.Insp.LoadCompleted(l.sm.id, id, tr.lastWhere)
}

// NextEvent supports the SM's skip-ahead promise: the earliest cycle after
// now at which the LSU's Tick does real work, or sim.NoEvent when it only
// waits on external fills. A blocked current op whose busy window has
// passed retries submit every cycle — and those retries bump MSHR/store
// buffer stall statistics exactly as a dense loop would — so it forbids
// jumping outright. The one exception is an op parked on a pending DMA:
// its retry is a pure no-op until the bulk load finishes (an external,
// fill-driven event).
func (l *LSU) NextEvent(now uint64) uint64 {
	if l.cur != nil && !l.cur.dmaWait && l.busyUntil <= now {
		return now + 1
	}
	next := sim.NoEvent
	for _, e := range l.comps {
		if e.at < next {
			next = e.at
		}
	}
	if l.busyUntil > now && l.busyUntil < next {
		// Either the current op submits then, or CanAccept stops
		// reporting a bank conflict then — both can change what the
		// issue stage observes.
		next = l.busyUntil
	}
	if next != sim.NoEvent && next <= now {
		return now + 1
	}
	return next
}

// PendingLoads reports in-flight warp loads (quiescence checks).
func (l *LSU) PendingLoads() int { return len(l.tracks) }

// Idle reports whether the LSU holds no op and no pending completions.
func (l *LSU) Idle() bool { return l.cur == nil && len(l.comps) == 0 }
