// Differential testing: random straight-line kernels run both on the
// cycle-level simulator and on a trivial sequential reference interpreter;
// the final memory images must match exactly. This checks the whole
// functional path — scoreboard ordering, load-value capture, store buffers,
// coherence, coalescing — against program-order semantics, for both
// protocols.
package gpu_test

import (
	"fmt"
	"testing"

	"gsi/internal/coherence"
	"gsi/internal/gpu"
	"gsi/internal/isa"
	"gsi/internal/mem"
)

const (
	diffRegionBytes = 2048 // per-warp sandbox, disjoint between warps
	diffRegionBase  = uint64(0x20_0000)
)

// diffProgram generates a deterministic random straight-line kernel.
// Register conventions: r1 = warp region base, r2..r9 data registers,
// r10 scratch address register.
func diffProgram(seed uint64, n int) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("diff-%d", seed))
	rng := seed
	next := func(bound uint64) uint64 {
		rng = isa.Mix64(rng)
		return rng % bound
	}
	dataReg := func() isa.Reg { return isa.Reg(2 + next(8)) }
	// A word-aligned offset inside the region, leaving room for a full
	// 32-lane vector access (256 bytes).
	off := func() int64 { return int64(next(diffRegionBytes-256) &^ 7) }

	for i := 0; i < n; i++ {
		switch next(10) {
		case 0:
			b.MovI(dataReg(), int64(next(1<<30)))
		case 1:
			b.Add(dataReg(), dataReg(), dataReg())
		case 2:
			b.Mul(dataReg(), dataReg(), dataReg())
		case 3:
			b.Xor(dataReg(), dataReg(), dataReg())
		case 4:
			b.AddI(dataReg(), dataReg(), int64(next(1000)))
		case 5:
			b.SFU(dataReg(), dataReg())
		case 6:
			b.Ld(dataReg(), 1, off())
		case 7:
			b.St(1, off(), dataReg())
		case 8:
			b.AddI(10, 1, off())
			b.LdV(dataReg(), 10, 8)
		case 9:
			b.AddI(10, 1, off())
			b.StV(10, 8, dataReg())
		}
	}
	// Dump the data registers so pure-ALU results are observable.
	for r := isa.Reg(2); r <= 9; r++ {
		b.St(1, int64(diffRegionBytes-256+int64(r)*8), r)
	}
	b.Exit()
	return b.MustBuild()
}

// interpret executes the program with sequential per-warp semantics over a
// private memory overlay and returns every written word.
func interpret(p *isa.Program, base uint64, warpSize int) map[uint64]uint64 {
	var regs [isa.NumRegs]uint64
	regs[1] = base
	written := map[uint64]uint64{}
	load := func(addr uint64) uint64 { return written[addr&^7] }
	for pc := 0; pc < p.Len(); pc++ {
		in := p.At(pc)
		switch in.Op.Class() {
		case isa.ClassALU, isa.ClassSFU:
			regs[in.Rd] = isa.EvalALU(in.Op, regs[in.Ra], regs[in.Rb], regs[in.Rd], in.Imm)
		case isa.ClassMem:
			switch in.Op {
			case isa.OpLd:
				regs[in.Rd] = load(regs[in.Ra] + uint64(in.Imm))
			case isa.OpSt:
				written[(regs[in.Ra]+uint64(in.Imm))&^7] = regs[in.Rb]
			case isa.OpLdV:
				regs[in.Rd] = load(regs[in.Ra]) // lane-0 value
			case isa.OpStV:
				for lane := 0; lane < warpSize; lane++ {
					written[(regs[in.Ra]+uint64(lane)*uint64(in.Imm))&^7] = regs[in.Rb]
				}
			}
		case isa.ClassExit:
			return written
		}
	}
	return written
}

func runDiff(t *testing.T, seed uint64, policy mem.Policy) {
	t.Helper()
	const warps = 4
	prog := diffProgram(seed, 60)
	g, err := gpu.New(smallCfg(1), coherence.PoliciesFor(1, policy))
	if err != nil {
		t.Fatal(err)
	}
	k := &gpu.Kernel{
		Name: prog.Name, Program: prog, Blocks: 1, WarpsPerBlock: warps,
		InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
			regs[1] = diffRegionBase + uint64(warp)*diffRegionBytes
		},
	}
	run(t, g, k)
	for w := 0; w < warps; w++ {
		base := diffRegionBase + uint64(w)*diffRegionBytes
		want := interpret(prog, base, g.Cfg.WarpSize)
		for addr, v := range want {
			if got := g.Sys.Backing.Load64(addr); got != v {
				t.Fatalf("seed %d warp %d: mem[%#x] = %#x, want %#x",
					seed, w, addr, got, v)
			}
		}
	}
}

func TestDifferentialRandomPrograms(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		t.Run(fmt.Sprintf("seed=%d/denovo", seed), func(t *testing.T) {
			runDiff(t, seed, coherence.DeNovo{})
		})
		t.Run(fmt.Sprintf("seed=%d/gpucoh", seed), func(t *testing.T) {
			runDiff(t, seed, coherence.GPUCoherence{})
		})
	}
}
