package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrderedForAnyWorkerCount(t *testing.T) {
	const n = 100
	fn := func(i int) (int, error) { return i * i, nil }
	for _, workers := range []int{1, 2, 7, 16, n + 5} {
		results := Map(workers, n, fn, nil)
		if len(results) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), n)
		}
		for i, r := range results {
			if r.Index != i || r.Value != i*i || r.Err != nil {
				t.Fatalf("workers=%d: result %d = %+v", workers, i, r)
			}
		}
	}
}

func TestMapRunsConcurrently(t *testing.T) {
	// With enough workers, every job can be in flight at once: block each
	// job until all have started. A serial pool would deadlock, so a pass
	// proves real fan-out; the timeout path fails loudly instead.
	const n = 8
	var started atomic.Int32
	release := make(chan struct{})
	results := Map(n, n, func(i int) (int, error) {
		if started.Add(1) == n {
			close(release)
		}
		<-release
		return i, nil
	}, nil)
	for i, r := range results {
		if r.Value != i {
			t.Fatalf("result %d = %d", i, r.Value)
		}
	}
}

func TestMapCapturesPanics(t *testing.T) {
	results := Map(4, 6, func(i int) (string, error) {
		if i == 3 {
			panic("boom")
		}
		return fmt.Sprintf("job-%d", i), nil
	}, nil)
	for i, r := range results {
		if i == 3 {
			if r.Err == nil {
				t.Fatal("panicking job reported no error")
			}
			continue
		}
		if r.Err != nil || r.Value != fmt.Sprintf("job-%d", i) {
			t.Fatalf("job %d: %+v", i, r)
		}
	}
}

func TestMapOnDoneSerializedAndComplete(t *testing.T) {
	const n = 40
	seen := make(map[int]bool)
	calls := 0
	Map(8, n, func(i int) (int, error) { return i, nil }, func(r Result[int]) {
		// onDone runs under the pool's lock; plain map/int mutation here
		// is the point of the test under -race.
		calls++
		if seen[r.Index] {
			t.Errorf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
	})
	if calls != n {
		t.Fatalf("onDone called %d times, want %d", calls, n)
	}
}

func TestMapZeroJobs(t *testing.T) {
	if got := Map(4, 0, func(i int) (int, error) { return 0, nil }, nil); len(got) != 0 {
		t.Fatalf("zero jobs produced %d results", len(got))
	}
}

func TestFirstErrorLowestIndex(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	results := Map(4, 10, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, errA
		case 2:
			return 0, errB
		}
		return i, nil
	}, nil)
	if err := FirstError(results); !errors.Is(err, errB) {
		t.Fatalf("FirstError = %v, want the index-2 error", err)
	}
	if FirstError(results[8:]) != nil {
		t.Fatal("FirstError on clean tail not nil")
	}
}

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}
