// Package sweep provides the ordered worker pool behind gsi's batch layer.
//
// Each gsi simulation is single-threaded and deterministic, so a batch of
// independent simulations parallelizes trivially — the only thing a runner
// must guarantee is that concurrency never leaks into the results. Map
// enforces that by construction: workers share nothing but the index feed
// and write their outputs into per-index slots, so the returned slice is in
// submission order and identical for any worker count, including 1.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Result pairs one job's output with its submission index.
type Result[T any] struct {
	Index int
	Value T
	Err   error
}

// Workers normalizes a requested parallelism: n < 1 selects GOMAXPROCS
// (use everything), anything else is returned unchanged.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the n results in index order: MapContext under
// context.Background().
func Map[T any](workers, n int, fn func(i int) (T, error), onDone func(Result[T])) []Result[T] {
	return MapContext(context.Background(), workers, n,
		func(_ context.Context, i int) (T, error) { return fn(i) }, onDone)
}

// MapContext runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines and returns the n results in index order. A worker panic is
// captured (with the worker's stack) into that job's Err rather than
// tearing down the pool, so one bad job cannot lose the rest of a long
// batch. ctx is passed through to every fn call; a fired context does not
// abandon slots — every index still produces a Result, with jobs observing
// the cancellation reporting it as their Err.
//
// onDone, when non-nil, is invoked once per finished job in completion
// order (not index order), serialized under a lock — safe for progress
// meters that write to a terminal. It must not block for long: every
// worker serializes through it.
func MapContext[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error), onDone func(Result[T])) []Result[T] {
	out := make([]Result[T], n)
	if n == 0 {
		return out
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	var doneMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = run(ctx, i, fn)
				if onDone != nil {
					doneMu.Lock()
					onDone(out[i])
					doneMu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// run executes one job, converting a panic into an error that carries the
// panic value and the worker's stack trace.
func run[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (res Result[T]) {
	res.Index = i
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("sweep: job %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	res.Value, res.Err = fn(ctx, i)
	return res
}

// FirstError returns the error of the lowest-index failed result, or nil.
// Serial and parallel runs of the same failing batch therefore report the
// same error.
func FirstError[T any](results []Result[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
