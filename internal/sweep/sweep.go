// Package sweep provides the ordered worker pool behind gsi's batch layer.
//
// Each gsi simulation is single-threaded and deterministic, so a batch of
// independent simulations parallelizes trivially — the only thing a runner
// must guarantee is that concurrency never leaks into the results. Map
// enforces that by construction: workers share nothing but the index feed
// and write their outputs into per-index slots, so the returned slice is in
// submission order and identical for any worker count, including 1.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Result pairs one job's output with its submission index.
type Result[T any] struct {
	Index int
	Value T
	Err   error
}

// Workers normalizes a requested parallelism: n < 1 selects GOMAXPROCS
// (use everything), anything else is returned unchanged.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the n results in index order. A worker panic is captured into
// that job's Err rather than tearing down the pool, so one bad job cannot
// lose the rest of a long batch.
//
// onDone, when non-nil, is invoked once per finished job in completion
// order (not index order), serialized under a lock — safe for progress
// meters that write to a terminal. It must not block for long: every
// worker serializes through it.
func Map[T any](workers, n int, fn func(i int) (T, error), onDone func(Result[T])) []Result[T] {
	out := make([]Result[T], n)
	if n == 0 {
		return out
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	var doneMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = run(i, fn)
				if onDone != nil {
					doneMu.Lock()
					onDone(out[i])
					doneMu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// run executes one job, converting a panic into an error.
func run[T any](i int, fn func(i int) (T, error)) (res Result[T]) {
	res.Index = i
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("sweep: job %d panicked: %v", i, r)
		}
	}()
	res.Value, res.Err = fn(i)
	return res
}

// FirstError returns the error of the lowest-index failed result, or nil.
// Serial and parallel runs of the same failing batch therefore report the
// same error.
func FirstError[T any](results []Result[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
