// Package coherence implements the two GPU coherence protocols the paper
// compares (section 6.1): conventional software-driven GPU coherence and
// the DeNovo hybrid protocol with L1 ownership. Both plug into the memory
// system through the mem.Policy interface.
//
// Policies are stateless value types: every method is a pure function of
// its arguments. That makes one policy value safe to share across cores
// ticking concurrently under the parallel engine (sim.EngineParallel) —
// any future stateful policy must either stay per-core or synchronize
// internally (see docs/ARCHITECTURE.md, "Parallel ticking").
package coherence

import "gsi/internal/mem"

// GPUCoherence is the baseline protocol of modern GPUs: reader-initiated
// invalidation (an acquire self-invalidates the entire L1) and write-through
// of dirty data to the shared L2 on every store buffer flush. Simple, but
// frequent synchronization destroys L1 reuse and every release pays for a
// full write-through of the dirty lines.
type GPUCoherence struct{}

// Name implements mem.Policy.
func (GPUCoherence) Name() string { return "GPU coherence" }

// KeepOnAcquire implements mem.Policy: only lines with unflushed store
// buffer data survive (they are this core's own writes; everything else is
// conservatively invalidated because the protocol tracks no sharers).
func (GPUCoherence) KeepOnAcquire(state mem.LineState, dirty bool) bool {
	return dirty
}

// FlushLine implements mem.Policy: every dirty line is written through to
// the L2.
func (GPUCoherence) FlushLine(state mem.LineState) mem.FlushAction {
	return mem.FlushWriteThrough
}

// UsesOwnership implements mem.Policy.
func (GPUCoherence) UsesOwnership() bool { return false }

// DeNovo is the hybrid hardware-software protocol: acquires self-invalidate
// only unowned (clean) lines, and store buffer flushes *register ownership*
// of dirty lines at the L2 directory instead of moving data. Owned lines
// survive acquires, serve local hits across synchronization points, answer
// remote readers directly (remote L1 hits), and make repeat releases free —
// the effects GSI's breakdowns isolate in case study 1.
type DeNovo struct{}

// Name implements mem.Policy.
func (DeNovo) Name() string { return "DeNovo" }

// KeepOnAcquire implements mem.Policy: owned lines and pending dirty lines
// survive; clean unowned lines are self-invalidated.
func (DeNovo) KeepOnAcquire(state mem.LineState, dirty bool) bool {
	return dirty || state == mem.LineOwned
}

// FlushLine implements mem.Policy: a line already owned here needs nothing;
// anything else registers ownership at the directory.
func (DeNovo) FlushLine(state mem.LineState) mem.FlushAction {
	if state == mem.LineOwned {
		return mem.FlushNone
	}
	return mem.FlushOwnReq
}

// UsesOwnership implements mem.Policy.
func (DeNovo) UsesOwnership() bool { return true }

// PoliciesFor returns per-core policies for a system of numSMs GPU cores
// plus one CPU: GPU cores run gpuPolicy, the CPU always runs DeNovo (as in
// both of the paper's configurations).
func PoliciesFor(numSMs int, gpuPolicy mem.Policy) []mem.Policy {
	ps := make([]mem.Policy, numSMs+1)
	for i := 0; i < numSMs; i++ {
		ps[i] = gpuPolicy
	}
	ps[numSMs] = DeNovo{}
	return ps
}
