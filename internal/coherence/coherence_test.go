package coherence

import (
	"testing"

	"gsi/internal/mem"
)

func TestGPUCoherencePolicy(t *testing.T) {
	p := GPUCoherence{}
	if p.Name() != "GPU coherence" || p.UsesOwnership() {
		t.Fatalf("identity: name=%q ownership=%v", p.Name(), p.UsesOwnership())
	}
	// Acquire: only unflushed dirty data survives.
	keep := []struct {
		state mem.LineState
		dirty bool
		want  bool
	}{
		{mem.LineValid, false, false},
		{mem.LineValid, true, true},
		{mem.LineOwned, false, false}, // cannot occur, but must not survive
		{mem.LineOwned, true, true},
	}
	for _, tt := range keep {
		if got := p.KeepOnAcquire(tt.state, tt.dirty); got != tt.want {
			t.Errorf("KeepOnAcquire(%v, %v) = %v, want %v", tt.state, tt.dirty, got, tt.want)
		}
	}
	// Every flush writes through.
	for _, st := range []mem.LineState{mem.LineValid, mem.LineOwned, mem.LineInvalid} {
		if p.FlushLine(st) != mem.FlushWriteThrough {
			t.Errorf("FlushLine(%v) != write-through", st)
		}
	}
}

func TestDeNovoPolicy(t *testing.T) {
	p := DeNovo{}
	if p.Name() != "DeNovo" || !p.UsesOwnership() {
		t.Fatalf("identity: name=%q ownership=%v", p.Name(), p.UsesOwnership())
	}
	keep := []struct {
		state mem.LineState
		dirty bool
		want  bool
	}{
		{mem.LineValid, false, false}, // clean unowned: self-invalidated
		{mem.LineValid, true, true},   // pending store buffer data
		{mem.LineOwned, false, true},  // registered: survives acquires
		{mem.LineOwned, true, true},
	}
	for _, tt := range keep {
		if got := p.KeepOnAcquire(tt.state, tt.dirty); got != tt.want {
			t.Errorf("KeepOnAcquire(%v, %v) = %v, want %v", tt.state, tt.dirty, got, tt.want)
		}
	}
	if p.FlushLine(mem.LineOwned) != mem.FlushNone {
		t.Error("flushing an owned line must be free")
	}
	if p.FlushLine(mem.LineValid) != mem.FlushOwnReq {
		t.Error("flushing an unowned line must register ownership")
	}
}

func TestPoliciesFor(t *testing.T) {
	ps := PoliciesFor(3, GPUCoherence{})
	if len(ps) != 4 {
		t.Fatalf("len = %d, want 4 (3 SMs + CPU)", len(ps))
	}
	for i := 0; i < 3; i++ {
		if ps[i].Name() != "GPU coherence" {
			t.Errorf("SM %d policy = %q", i, ps[i].Name())
		}
	}
	// The CPU always runs DeNovo, per the paper's methodology.
	if ps[3].Name() != "DeNovo" {
		t.Errorf("CPU policy = %q, want DeNovo", ps[3].Name())
	}
}
