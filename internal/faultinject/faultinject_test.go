package faultinject_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gsi"
	"gsi/internal/cpu"
	"gsi/internal/faultinject"
	"gsi/internal/gpu"
	"gsi/internal/mem"
)

// stub is a minimal underlying workload for wrapper-level tests.
type stub struct{ built int }

func (s *stub) Name() string { return "stub" }

func (s *stub) Build(h *cpu.Host) (*gpu.Kernel, func(h *cpu.Host) error, error) {
	s.built++
	return nil, nil, errors.New("stub: not a runnable workload")
}

func TestParseSpec(t *testing.T) {
	in, err := faultinject.Parse("seed=7, uts:panic, implicit:stall, slow=0.25, slowms=10")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if in.Seed != 7 {
		t.Errorf("Seed = %d, want 7", in.Seed)
	}
	if in.SlowFor != 10*time.Millisecond {
		t.Errorf("SlowFor = %v, want 10ms", in.SlowFor)
	}
	if got := in.Decide("uts/denovo"); got != faultinject.FaultPanic {
		t.Errorf("Decide(uts/denovo) = %v, want panic", got)
	}
	if got := in.Decide("implicit/scratch"); got != faultinject.FaultStall {
		t.Errorf("Decide(implicit/scratch) = %v, want stall", got)
	}

	for _, bad := range []string{
		"uts:explode",         // unknown fault
		"panic=1.5",           // probability out of range
		"panic=0.7,slow=6",    // bad probability
		"frobnicate",          // not a clause
		"seed=x",              // bad seed
		"panic=0.8,stall=0.8", // sums past 1
	} {
		if _, err := faultinject.Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}

	none, err := faultinject.Parse("")
	if err != nil {
		t.Fatalf("Parse(empty): %v", err)
	}
	if got := none.Decide("anything"); got != faultinject.FaultNone {
		t.Errorf("empty spec Decide = %v, want none", got)
	}
}

func TestDecideIsDeterministic(t *testing.T) {
	a, _ := faultinject.Parse("seed=42,panic=0.3,stall=0.3,slow=0.3")
	b, _ := faultinject.Parse("seed=42,panic=0.3,stall=0.3,slow=0.3")
	counts := map[faultinject.Fault]int{}
	labels := []string{"uts/a", "uts/b", "implicit/1", "implicit/2", "bfs", "spmv", "gups", "pipeline"}
	for _, l := range labels {
		fa, fb := a.Decide(l), b.Decide(l)
		if fa != fb {
			t.Fatalf("Decide(%q) differs between identical injectors: %v vs %v", l, fa, fb)
		}
		counts[fa]++
	}
	// With p(fault)=0.9 over 8 labels, at least one label must draw a fault;
	// the draw is a fixed hash, so this cannot flake.
	if counts[faultinject.FaultNone] == len(labels) {
		t.Errorf("no label drew a fault under panic+stall+slow=0.9")
	}

	// A different seed must change at least one decision across the labels.
	c, _ := faultinject.Parse("seed=43,panic=0.3,stall=0.3,slow=0.3")
	same := true
	for _, l := range labels {
		if a.Decide(l) != c.Decide(l) {
			same = false
			break
		}
	}
	if same {
		t.Errorf("seed change did not alter any decision")
	}
}

func TestWrapPanicAndCounters(t *testing.T) {
	in, _ := faultinject.Parse("stub:panic")
	w := in.Wrap("stub/point", &stub{})
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("wrapped Build did not panic")
			}
			if !strings.Contains(r.(string), "injected panic") {
				t.Errorf("panic value %q missing injection marker", r)
			}
		}()
		w.Build(cpu.NewHost(mem.NewBacking()))
	}()
	if got := in.Injected(faultinject.FaultPanic); got != 1 {
		t.Errorf("Injected(panic) = %d, want 1", got)
	}
}

func TestWrapSlowDelegates(t *testing.T) {
	in, _ := faultinject.Parse("stub:slow,slowms=1")
	s := &stub{}
	w := in.Wrap("stub/point", s)
	if _, _, err := w.Build(cpu.NewHost(mem.NewBacking())); err == nil || s.built != 1 {
		t.Fatalf("slow wrapper did not delegate (built=%d, err=%v)", s.built, err)
	}
	if got := in.Injected(faultinject.FaultSlow); got != 1 {
		t.Errorf("Injected(slow) = %d, want 1", got)
	}
}

func TestWrapNoneReturnsUnderlying(t *testing.T) {
	in, _ := faultinject.Parse("other:panic")
	s := &stub{}
	if w := in.Wrap("stub/point", s); w != faultinject.Workload(s) {
		t.Errorf("unfaulted Wrap returned a wrapper, want the underlying workload")
	}
}

// TestStallHitsWatchdog runs a stall-injected workload under the real
// engine and asserts the in-sim MaxCycles watchdog converts it into a
// typed, diagnosable error instead of a hang.
func TestStallHitsWatchdog(t *testing.T) {
	in, _ := faultinject.Parse("implicit:stall")
	w := in.Wrap("implicit/scratch", gsi.NewImplicit(gsi.Scratchpad)).(gsi.Workload)
	opt := gsi.Options{System: gsi.DefaultConfig()}
	opt.System.MaxCycles = 20_000
	_, err := gsi.Run(opt, w)
	if !errors.Is(err, gsi.ErrMaxCycles) {
		t.Fatalf("stalled run returned %v, want ErrMaxCycles", err)
	}
	if got := in.Injected(faultinject.FaultStall); got != 1 {
		t.Errorf("Injected(stall) = %d, want 1", got)
	}
}

// TestStallHitsDeadline asserts the wall-clock bound fires on a wedged
// simulation well before the (deliberately huge) in-sim watchdog, and
// that the deadline error carries the engine diagnosis.
func TestStallHitsDeadline(t *testing.T) {
	in, _ := faultinject.Parse("implicit:stall")
	w := in.Wrap("implicit/scratch", gsi.NewImplicit(gsi.Scratchpad)).(gsi.Workload)
	opt := gsi.Options{System: gsi.DefaultConfig()}
	opt.System.MaxCycles = 1 << 62
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := gsi.RunContext(ctx, opt, w)
	if !errors.Is(err, gsi.ErrDeadline) {
		t.Fatalf("deadline run returned %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("deadline took %v to fire", elapsed)
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("deadline error %q carries no diagnosis", err)
	}
}
