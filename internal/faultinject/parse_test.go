package faultinject_test

import (
	"testing"
	"time"

	"gsi/internal/faultinject"
)

// TestParseEmptyAndBlankSpecs: specs with no clauses — empty, whitespace,
// stray commas — parse to an injector that never faults, with the slow
// default intact.
func TestParseEmptyAndBlankSpecs(t *testing.T) {
	for _, spec := range []string{"", "   ", ",", " , ,, ", "\t"} {
		in, err := faultinject.Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := in.Decide("uts/denovo"); got != faultinject.FaultNone {
			t.Errorf("Parse(%q).Decide = %v, want none", spec, got)
		}
		if in.SlowFor != 250*time.Millisecond {
			t.Errorf("Parse(%q).SlowFor = %v, want the 250ms default", spec, in.SlowFor)
		}
	}
}

// TestParseMalformedProbability: every malformed probability spelling must
// be rejected at parse time, not surface later as a draw that never (or
// always) fires. NaN is the sharp one — ParseFloat accepts it and it
// fails neither range comparison.
func TestParseMalformedProbability(t *testing.T) {
	for _, spec := range []string{
		"panic=",                       // empty value
		"panic=NaN",                    // passes both range comparisons if unchecked
		"stall=nan",                    // ParseFloat is case-insensitive about it
		"slow=+Inf",                    // over 1
		"panic=-0.0001",                // under 0
		"panic=1.0001",                 // over 1
		"stall=0.5.5",                  // not a float
		"slow=50%",                     // no percent spellings
		"panic=0.5,stall=0.4,slow=0.2", // each valid, sum past 1
	} {
		if _, err := faultinject.Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
	// Float edge values that are legitimate probabilities must survive:
	// exact bounds and negative zero (which compares equal to 0).
	for _, spec := range []string{"panic=0", "panic=1", "panic=-0", "panic=0.0", "slow=1.0"} {
		if _, err := faultinject.Parse(spec); err != nil {
			t.Errorf("Parse(%q): %v, want success", spec, err)
		}
	}
}

// TestParseOverlappingRules: when several substring rules match one label,
// the first clause in the spec wins — spec order is the priority order.
func TestParseOverlappingRules(t *testing.T) {
	in, err := faultinject.Parse("uts:panic,ut:stall,u:slow")
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Decide("uts/denovo"); got != faultinject.FaultPanic {
		t.Errorf("Decide(uts/denovo) = %v, want panic (first matching clause)", got)
	}
	if got := in.Decide("utd/denovo"); got != faultinject.FaultStall {
		t.Errorf("Decide(utd/denovo) = %v, want stall", got)
	}
	if got := in.Decide("gups"); got != faultinject.FaultSlow {
		t.Errorf("Decide(gups) = %v, want slow (the 'u' clause)", got)
	}
	if got := in.Decide("bfs"); got != faultinject.FaultNone {
		t.Errorf("Decide(bfs) = %v, want none", got)
	}

	// Reversing the spec reverses the priority: the broad clause shadows
	// the narrow ones entirely.
	rev, err := faultinject.Parse("u:slow,ut:stall,uts:panic")
	if err != nil {
		t.Fatal(err)
	}
	if got := rev.Decide("uts/denovo"); got != faultinject.FaultSlow {
		t.Errorf("reversed Decide(uts/denovo) = %v, want slow", got)
	}
}

// TestParseCatchAllRule: an empty substring (":fault") matches every
// label, and as a rule it takes precedence over any probability clause.
func TestParseCatchAllRule(t *testing.T) {
	in, err := faultinject.Parse(":stall,panic=1")
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"uts/denovo", "implicit/stash", ""} {
		if got := in.Decide(label); got != faultinject.FaultStall {
			t.Errorf("Decide(%q) = %v, want stall (catch-all rule beats panic=1)", label, got)
		}
	}
}

// TestParseDuplicateKeys: repeating a key=value clause keeps the last
// value — the spec reads left to right like flag overrides — and the
// sum-past-1 check applies to the final values, not intermediate ones.
func TestParseDuplicateKeys(t *testing.T) {
	in, err := faultinject.Parse("seed=1,slowms=5,seed=9,slowms=40,panic=0.9,panic=0.1,stall=0.8")
	if err != nil {
		t.Fatalf("Parse: %v (final probabilities sum to 0.9)", err)
	}
	if in.Seed != 9 {
		t.Errorf("Seed = %d, want 9 (last clause wins)", in.Seed)
	}
	if in.SlowFor != 40*time.Millisecond {
		t.Errorf("SlowFor = %v, want 40ms (last clause wins)", in.SlowFor)
	}
}

// TestParseRuleFaultSpellings: the fault side of a rule is parsed
// case-insensitively with surrounding space tolerated; the substring side
// is taken verbatim (labels are matched case-sensitively).
func TestParseRuleFaultSpellings(t *testing.T) {
	in, err := faultinject.Parse("uts: PANIC ")
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Decide("uts/denovo"); got != faultinject.FaultPanic {
		t.Errorf("Decide(uts/denovo) = %v, want panic", got)
	}
	if _, err := faultinject.Parse("uts:"); err == nil {
		t.Error("Parse(\"uts:\") succeeded, want error (empty fault name)")
	}
	// The substring is not case-folded: a capitalized substring does not
	// match lowercase labels.
	caps, err := faultinject.Parse("UTS:panic")
	if err != nil {
		t.Fatal(err)
	}
	if got := caps.Decide("uts/denovo"); got != faultinject.FaultNone {
		t.Errorf("Decide(uts/denovo) under UTS rule = %v, want none (substrings are verbatim)", got)
	}
}
