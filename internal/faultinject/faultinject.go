// Package faultinject wraps workloads to inject faults — panics, in-sim
// stalls, and wall-clock slowness — at deterministic, configurable points.
// It exists to prove the serve/sweep stack's fault-isolation story instead
// of asserting it: a chaos-wrapped sweep must complete with the injected
// points failing individually (typed per-point errors, panic counters
// moving) while their siblings succeed and the process stays up.
//
// An Injector decides per job label, so a given spec + seed always faults
// the same points: tests and the CI chaos gate can assert exact outcomes.
// Two clause forms compose in one spec string (see Parse):
//
//	substr:fault     rule — any label containing substr gets fault
//	fault=p          probability — labels draw from a seeded hash
//
// Faults:
//
//	panic   Build panics (exercises panic containment and the panic counter)
//	stall   the kernel is replaced by an infinite spin loop (exercises the
//	        in-sim ErrMaxCycles watchdog and the wall-clock ErrDeadline)
//	slow    Build sleeps SlowFor before delegating (exercises deadlines and
//	        cancellation on points that are merely slow, not wedged)
//
// The package is test/chaos-only wiring: nothing in the production path
// imports it except the serve layer's hidden -chaos hook.
package faultinject

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gsi/internal/cpu"
	"gsi/internal/gpu"
	"gsi/internal/isa"
)

// Workload is the structural mirror of gsi.Workload (name + Build), so the
// injector wraps public-API workloads without importing the public
// package: any gsi.Workload satisfies it, and a wrapped Workload satisfies
// gsi.Workload.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Build writes initial memory through the host and returns the kernel
	// plus a post-run functional check.
	Build(h *cpu.Host) (*gpu.Kernel, func(h *cpu.Host) error, error)
}

// Fault is one injectable failure mode.
type Fault uint8

// The injectable failure modes; FaultNone leaves the workload untouched.
const (
	FaultNone Fault = iota
	FaultPanic
	FaultStall
	FaultSlow
)

// String names the fault as accepted in spec clauses.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultStall:
		return "stall"
	case FaultSlow:
		return "slow"
	}
	return fmt.Sprintf("Fault(%d)", uint8(f))
}

func parseFault(s string) (Fault, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "panic":
		return FaultPanic, nil
	case "stall":
		return FaultStall, nil
	case "slow":
		return FaultSlow, nil
	}
	return FaultNone, fmt.Errorf("faultinject: unknown fault %q (want panic, stall, or slow)", s)
}

// rule is one deterministic substring clause.
type rule struct {
	substr string
	fault  Fault
}

// Injector decides, per job label, whether and how to sabotage a workload.
// The decision is a pure function of (spec, seed, label): rules win over
// probability draws, first matching rule first.
type Injector struct {
	// Seed perturbs the per-label probability draw.
	Seed uint64
	// SlowFor is how long a FaultSlow build sleeps (default 250ms).
	SlowFor time.Duration

	rules []rule
	// cumulative probability thresholds for the draw, in fault order
	// panic, stall, slow; zero when the spec has no probability clauses.
	pPanic, pStall, pSlow float64

	// Injected counts faults actually injected, by kind, for assertions.
	injected [4]atomic.Uint64
}

// Parse builds an Injector from a spec string: comma-separated clauses of
// the forms "substr:fault" (rule), "fault=p" (probability, p in [0,1]),
// "seed=n", and "slowms=n". An empty spec yields an injector that never
// faults.
func Parse(spec string) (*Injector, error) {
	in := &Injector{SlowFor: 250 * time.Millisecond}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if sub, fs, ok := strings.Cut(clause, ":"); ok {
			f, err := parseFault(fs)
			if err != nil {
				return nil, err
			}
			in.rules = append(in.rules, rule{substr: sub, fault: f})
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: bad clause %q (want substr:fault or key=value)", clause)
		}
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "seed":
			n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", val, err)
			}
			in.Seed = n
		case "slowms":
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultinject: bad slowms %q", val)
			}
			in.SlowFor = time.Duration(n) * time.Millisecond
		case "panic", "stall", "slow":
			p, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			// The NaN check matters: ParseFloat accepts "NaN", and NaN
			// fails neither range comparison, so it would slip through as
			// a probability that never fires.
			if err != nil || math.IsNaN(p) || p < 0 || p > 1 {
				return nil, fmt.Errorf("faultinject: bad probability %q", clause)
			}
			f, _ := parseFault(key)
			switch f {
			case FaultPanic:
				in.pPanic = p
			case FaultStall:
				in.pStall = p
			case FaultSlow:
				in.pSlow = p
			}
		default:
			return nil, fmt.Errorf("faultinject: unknown clause %q", clause)
		}
	}
	if in.pPanic+in.pStall+in.pSlow > 1 {
		return nil, fmt.Errorf("faultinject: probabilities sum past 1")
	}
	return in, nil
}

// Decide returns the fault (if any) for a job label.
func (in *Injector) Decide(label string) Fault {
	for _, r := range in.rules {
		if strings.Contains(label, r.substr) {
			return r.fault
		}
	}
	total := in.pPanic + in.pStall + in.pSlow
	if total == 0 {
		return FaultNone
	}
	u := draw(in.Seed, label)
	switch {
	case u < in.pPanic:
		return FaultPanic
	case u < in.pPanic+in.pStall:
		return FaultStall
	case u < total:
		return FaultSlow
	}
	return FaultNone
}

// draw maps (seed, label) to a uniform value in [0, 1) via FNV-1a — no
// global randomness, so a spec's outcome is reproducible run to run.
func draw(seed uint64, label string) float64 {
	h := uint64(14695981039346656037)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < 8; i++ {
		mix(byte(seed >> (8 * i)))
	}
	for i := 0; i < len(label); i++ {
		mix(label[i])
	}
	return float64(h>>11) / float64(1<<53)
}

// Injected returns how many times the given fault has actually been
// injected (a wrapped workload's Build ran and sabotaged the job).
func (in *Injector) Injected(f Fault) uint64 { return in.injected[f].Load() }

// Wrap returns w, sabotaged according to the injector's decision for
// label. FaultNone returns w unchanged.
func (in *Injector) Wrap(label string, w Workload) Workload {
	switch in.Decide(label) {
	case FaultPanic:
		return &faulty{w: w, fault: FaultPanic, in: in}
	case FaultStall:
		return &faulty{w: w, fault: FaultStall, in: in}
	case FaultSlow:
		return &faulty{w: w, fault: FaultSlow, in: in}
	}
	return w
}

// faulty is the sabotaged workload wrapper.
type faulty struct {
	w     Workload
	fault Fault
	in    *Injector
}

func (f *faulty) Name() string { return f.w.Name() }

func (f *faulty) Build(h *cpu.Host) (*gpu.Kernel, func(h *cpu.Host) error, error) {
	f.in.injected[f.fault].Add(1)
	switch f.fault {
	case FaultPanic:
		panic(fmt.Sprintf("faultinject: injected panic in workload %s", f.w.Name()))
	case FaultStall:
		return stallKernel(), func(*cpu.Host) error {
			return fmt.Errorf("faultinject: stalled workload reached verification")
		}, nil
	case FaultSlow:
		time.Sleep(f.in.SlowFor)
	}
	return f.w.Build(h)
}

// stallKernel returns a one-warp kernel that spins forever: the SM stays
// busy, the active set never drains, and the run ends only when the in-sim
// MaxCycles watchdog (ErrMaxCycles) or a wall-clock deadline (ErrDeadline)
// fires — exactly the two bounds the isolation layer must enforce.
func stallKernel() *gpu.Kernel {
	const rCount isa.Reg = 2
	b := isa.NewBuilder("faultinject-stall")
	spin := b.Here()
	b.AddI(rCount, rCount, 1)
	b.Br(spin)
	b.Exit() // unreachable; satisfies the builder's has-exit validation
	prog, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("faultinject: stall kernel failed to assemble: %v", err))
	}
	return &gpu.Kernel{
		Name:          "faultinject-stall",
		Program:       prog,
		Blocks:        1,
		WarpsPerBlock: 1,
		InitRegs:      func(block, warp int, regs *[isa.NumRegs]uint64) {},
	}
}
