package cpu

import (
	"testing"

	"gsi/internal/mem"
)

func TestHostMemoryAccess(t *testing.T) {
	b := mem.NewBacking()
	h := NewHost(b)
	h.Write64(0x100, 7)
	if h.Read64(0x100) != 7 {
		t.Fatal("roundtrip failed")
	}
	h.WriteSlice(0x200, []uint64{1, 2, 3})
	got := h.ReadSlice(0x200, 3)
	for i, v := range []uint64{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("slice[%d] = %d, want %d", i, got[i], v)
		}
	}
	// Host writes are functional: the backing store sees them directly.
	if b.Load64(0x208) != 2 {
		t.Fatal("host write not visible in backing store")
	}
}
