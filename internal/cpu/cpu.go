// Package cpu models the host side of the tightly coupled system. The
// paper's case studies profile only the GPU, so the host's role here is the
// same as in the original methodology: it owns the unified address space
// before a kernel runs (initializing workload data structures) and launches
// kernels. The host core's L1 always uses DeNovo coherence, as in both of
// the paper's configurations.
package cpu

import "gsi/internal/mem"

// Host is the CPU-side driver over the unified address space.
type Host struct {
	backing *mem.Backing
}

// NewHost attaches a host to the shared functional memory.
func NewHost(b *mem.Backing) *Host { return &Host{backing: b} }

// Write64 initializes one word.
func (h *Host) Write64(addr, v uint64) { h.backing.Store64(addr, v) }

// Read64 reads one word (result verification after a kernel).
func (h *Host) Read64(addr uint64) uint64 { return h.backing.Load64(addr) }

// WriteSlice initializes consecutive words starting at base.
func (h *Host) WriteSlice(base uint64, vals []uint64) {
	for i, v := range vals {
		h.backing.Store64(base+uint64(i)*8, v)
	}
}

// ReadSlice reads n consecutive words starting at base.
func (h *Host) ReadSlice(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = h.backing.Load64(base + uint64(i)*8)
	}
	return out
}
