// Package mem implements the timing model of the tightly coupled CPU-GPU
// memory hierarchy: per-core L1 caches with MSHRs and write-combining store
// buffers, a banked NUCA L2 with an ownership directory, and a bandwidth-
// limited memory controller. Functional data lives in a single flat Backing
// store (the standard timing/functional split): caches and protocols decide
// *when* a value is available and *where* it was serviced, while values are
// always read from and written to the backing store, which keeps workloads
// functionally correct independent of timing bugs.
package mem

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// backingPageWords is the word count of one Backing page (4 KiB). Pages are
// fixed arrays so word access is a shift and a mask, not a map probe.
const backingPageWords = 512

// backingPage holds one 4 KiB span of functional memory. words are accessed
// atomically; present is a bitmap of words ever written (atomic OR), which
// keeps Footprint exact without a shared counter.
type backingPage struct {
	words   [backingPageWords]uint64
	present [backingPageWords / 64]uint64
}

// Backing is the flat functional memory shared by every core, a paged store
// of 8-byte-aligned addresses to 64-bit words. Reads of never-written words
// return zero.
//
// All word accesses are atomic, so the store is safe under the parallel
// tick engine, where SM lanes on different workers load and store
// concurrently. The guarantee is per-word atomicity and nothing more:
// workloads are expected to be data-race-free at the program level
// (cross-SM synchronization goes through the atomic ops, which the timing
// model serializes at the L2 banks' directory), exactly as on the modeled
// hardware. Word values therefore never depend on scheduling, and the
// serial engines observe the identical store they always did.
type Backing struct {
	pages sync.Map // page index (addr >> 12) -> *backingPage

	// allocMu serializes page creation so racing first-writers agree on
	// one page object; steady-state access is lock-free.
	allocMu sync.Mutex
}

// NewBacking returns an empty functional memory.
func NewBacking() *Backing { return &Backing{} }

// align8 masks addr down to an 8-byte boundary.
func align8(addr uint64) uint64 { return addr &^ 7 }

// lookup returns the page holding addr, or nil if no word on it was ever
// written.
func (b *Backing) lookup(addr uint64) *backingPage {
	if p, ok := b.pages.Load(addr >> 12); ok {
		return p.(*backingPage)
	}
	return nil
}

// page returns the page holding addr, creating it if needed.
func (b *Backing) page(addr uint64) *backingPage {
	if p := b.lookup(addr); p != nil {
		return p
	}
	b.allocMu.Lock()
	defer b.allocMu.Unlock()
	if p, ok := b.pages.Load(addr >> 12); ok {
		return p.(*backingPage)
	}
	p := &backingPage{}
	b.pages.Store(addr>>12, p)
	return p
}

// slot returns the page-local word index of addr.
func slot(addr uint64) uint64 { return (addr >> 3) & (backingPageWords - 1) }

// mark records a write to word s of p in the presence bitmap.
func (p *backingPage) mark(s uint64) {
	bit := uint64(1) << (s & 63)
	word := &p.present[s>>6]
	for {
		old := atomic.LoadUint64(word)
		if old&bit != 0 || atomic.CompareAndSwapUint64(word, old, old|bit) {
			return
		}
	}
}

// Load64 returns the word at addr (aligned down to 8 bytes).
func (b *Backing) Load64(addr uint64) uint64 {
	a := align8(addr)
	p := b.lookup(a)
	if p == nil {
		return 0
	}
	return atomic.LoadUint64(&p.words[slot(a)])
}

// Store64 writes the word at addr (aligned down to 8 bytes).
func (b *Backing) Store64(addr uint64, v uint64) {
	a := align8(addr)
	p := b.page(a)
	s := slot(a)
	atomic.StoreUint64(&p.words[s], v)
	p.mark(s)
}

// Add64 adds delta to the word at addr and returns the previous value.
func (b *Backing) Add64(addr uint64, delta uint64) uint64 {
	a := align8(addr)
	p := b.page(a)
	s := slot(a)
	old := atomic.AddUint64(&p.words[s], delta) - delta
	p.mark(s)
	return old
}

// CAS64 installs swap at addr if the current value equals cmp; it returns
// the previous value either way.
func (b *Backing) CAS64(addr uint64, cmp, swap uint64) uint64 {
	a := align8(addr)
	p := b.page(a)
	s := slot(a)
	w := &p.words[s]
	for {
		old := atomic.LoadUint64(w)
		if old != cmp {
			return old
		}
		if atomic.CompareAndSwapUint64(w, cmp, swap) {
			p.mark(s)
			return old
		}
	}
}

// Exch64 stores v at addr and returns the previous value.
func (b *Backing) Exch64(addr uint64, v uint64) uint64 {
	a := align8(addr)
	p := b.page(a)
	s := slot(a)
	old := atomic.SwapUint64(&p.words[s], v)
	p.mark(s)
	return old
}

// Footprint returns the number of distinct words ever written; tests use it
// to sanity-check workload initialization.
func (b *Backing) Footprint() int {
	n := 0
	b.pages.Range(func(_, v any) bool {
		p := v.(*backingPage)
		for i := range p.present {
			n += bits.OnesCount64(atomic.LoadUint64(&p.present[i]))
		}
		return true
	})
	return n
}
