// Package mem implements the timing model of the tightly coupled CPU-GPU
// memory hierarchy: per-core L1 caches with MSHRs and write-combining store
// buffers, a banked NUCA L2 with an ownership directory, and a bandwidth-
// limited memory controller. Functional data lives in a single flat Backing
// store (the standard timing/functional split): caches and protocols decide
// *when* a value is available and *where* it was serviced, while values are
// always read from and written to the backing store, which keeps workloads
// functionally correct independent of timing bugs.
package mem

// Backing is the flat functional memory shared by every core: a map of
// 8-byte-aligned addresses to 64-bit words. Reads of never-written words
// return zero.
type Backing struct {
	words map[uint64]uint64
}

// NewBacking returns an empty functional memory.
func NewBacking() *Backing {
	return &Backing{words: make(map[uint64]uint64)}
}

// align8 masks addr down to an 8-byte boundary.
func align8(addr uint64) uint64 { return addr &^ 7 }

// Load64 returns the word at addr (aligned down to 8 bytes).
func (b *Backing) Load64(addr uint64) uint64 { return b.words[align8(addr)] }

// Store64 writes the word at addr (aligned down to 8 bytes).
func (b *Backing) Store64(addr uint64, v uint64) { b.words[align8(addr)] = v }

// Add64 adds delta to the word at addr and returns the previous value.
func (b *Backing) Add64(addr uint64, delta uint64) uint64 {
	a := align8(addr)
	old := b.words[a]
	b.words[a] = old + delta
	return old
}

// CAS64 installs swap at addr if the current value equals cmp; it returns
// the previous value either way.
func (b *Backing) CAS64(addr uint64, cmp, swap uint64) uint64 {
	a := align8(addr)
	old := b.words[a]
	if old == cmp {
		b.words[a] = swap
	}
	return old
}

// Exch64 stores v at addr and returns the previous value.
func (b *Backing) Exch64(addr uint64, v uint64) uint64 {
	a := align8(addr)
	old := b.words[a]
	b.words[a] = v
	return old
}

// Footprint returns the number of distinct words ever written; tests use it
// to sanity-check workload initialization.
func (b *Backing) Footprint() int { return len(b.words) }
