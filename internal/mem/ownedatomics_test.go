package mem_test

import (
	"testing"

	"gsi/internal/coherence"
	"gsi/internal/isa"
	"gsi/internal/mem"
)

const atomAddr = uint64(0x6_0000)

func TestOwnedAtomicsLocalFastPath(t *testing.T) {
	h := newHarness(t, coherence.DeNovo{})
	cm := h.sys.Cores[0]
	cm.OwnedAtomics = true

	// First atomic: L2 round trip, but it registers ownership.
	cm.Atomic(mem.AtomicOp{Warp: 0, Addr: atomAddr, AOp: isa.OpAtomAdd, B: 1}, h.now())
	h.quiesce()
	if len(h.atoms) != 1 {
		t.Fatalf("completions = %d", len(h.atoms))
	}
	if cm.LineStateOf(atomAddr) != mem.LineOwned {
		t.Fatal("first atomic did not register ownership")
	}
	bank := h.sys.Banks[h.sys.BankTile(atomAddr)]
	if owner, ok := bank.Owner(atomAddr &^ 63); !ok || owner != 0 {
		t.Fatalf("directory owner = %d, %v", owner, ok)
	}

	// Second atomic: served at the L1, no bank traffic.
	banksBefore := bank.Atomics
	startCycle := h.eng.Cycle()
	cm.Atomic(mem.AtomicOp{Warp: 0, Addr: atomAddr, AOp: isa.OpAtomAdd, B: 1}, h.now())
	h.quiesce()
	if len(h.atoms) != 2 {
		t.Fatalf("completions = %d", len(h.atoms))
	}
	if bank.Atomics != banksBefore {
		t.Fatal("locally owned atomic still went to the L2")
	}
	if cm.Stats.LocalAtomics != 1 {
		t.Fatalf("LocalAtomics = %d", cm.Stats.LocalAtomics)
	}
	if lat := h.eng.Cycle() - startCycle; lat > 10 {
		t.Errorf("local atomic took %d cycles", lat)
	}
	if h.sys.Backing.Load64(atomAddr) != 2 {
		t.Fatalf("value = %d, want 2", h.sys.Backing.Load64(atomAddr))
	}
}

func TestOwnedAtomicsOwnershipMigrates(t *testing.T) {
	h := newHarness(t, coherence.DeNovo{})
	a, b := h.sys.Cores[0], h.sys.Cores[1]
	a.OwnedAtomics = true
	b.OwnedAtomics = true

	a.Atomic(mem.AtomicOp{Warp: 0, Addr: atomAddr, AOp: isa.OpAtomAdd, B: 1}, h.now())
	h.quiesce()
	// B's atomic steals the registration; A loses the line.
	b.Atomic(mem.AtomicOp{Warp: 0, Addr: atomAddr, AOp: isa.OpAtomAdd, B: 1}, h.now())
	h.quiesce()
	if a.LineStateOf(atomAddr) != mem.LineInvalid {
		t.Fatal("previous atomic owner kept the line")
	}
	if b.LineStateOf(atomAddr) != mem.LineOwned {
		t.Fatal("new atomic owner not registered locally")
	}
	bank := h.sys.Banks[h.sys.BankTile(atomAddr)]
	if owner, _ := bank.Owner(atomAddr &^ 63); owner != 1 {
		t.Fatalf("directory owner = %d, want 1", owner)
	}
	if h.sys.Backing.Load64(atomAddr) != 2 {
		t.Fatalf("value = %d, want 2 (lost update)", h.sys.Backing.Load64(atomAddr))
	}
	// A's next atomic goes remote again and steals back.
	a.Atomic(mem.AtomicOp{Warp: 0, Addr: atomAddr, AOp: isa.OpAtomAdd, B: 1}, h.now())
	h.quiesce()
	if h.sys.Backing.Load64(atomAddr) != 3 {
		t.Fatalf("value = %d, want 3", h.sys.Backing.Load64(atomAddr))
	}
	if a.LineStateOf(atomAddr) != mem.LineOwned || b.LineStateOf(atomAddr) != mem.LineInvalid {
		t.Fatal("ownership did not migrate back")
	}
}

func TestOwnedAtomicsAcquireKeepsOwnedLine(t *testing.T) {
	h := newHarness(t, coherence.DeNovo{})
	cm := h.sys.Cores[0]
	cm.OwnedAtomics = true
	cm.Atomic(mem.AtomicOp{Warp: 0, Addr: atomAddr, AOp: isa.OpAtomCAS, B: 0, C: 1, Order: isa.Acquire}, h.now())
	h.quiesce()
	// The acquire's self-invalidation must not drop the just-granted
	// owned line (that is the point of the optimization: the lock line
	// survives for the next local acquire).
	if cm.LineStateOf(atomAddr) != mem.LineOwned {
		t.Fatal("acquire invalidated the granted line")
	}
	cm.Atomic(mem.AtomicOp{Warp: 0, Addr: atomAddr, AOp: isa.OpAtomExch, B: 0, Order: isa.Acquire}, h.now())
	h.quiesce()
	if cm.Stats.LocalAtomics != 1 {
		t.Fatalf("repeat acquire not local: LocalAtomics = %d", cm.Stats.LocalAtomics)
	}
}

func TestOwnedAtomicsNoEffectUnderGPUCoherence(t *testing.T) {
	// GPU coherence has no ownership: the option must degrade to plain
	// L2 atomics rather than corrupting state.
	h := newHarness(t, coherence.GPUCoherence{})
	cm := h.sys.Cores[0]
	cm.OwnedAtomics = true
	cm.Atomic(mem.AtomicOp{Warp: 0, Addr: atomAddr, AOp: isa.OpAtomAdd, B: 5}, h.now())
	cm.Atomic(mem.AtomicOp{Warp: 1, Addr: atomAddr, AOp: isa.OpAtomAdd, B: 5}, h.now())
	h.quiesce()
	if cm.Stats.LocalAtomics != 0 {
		t.Fatal("local atomics under a non-ownership protocol")
	}
	if h.sys.Backing.Load64(atomAddr) != 10 {
		t.Fatalf("value = %d, want 10", h.sys.Backing.Load64(atomAddr))
	}
}
