package mem

import "testing"

// tiny array: 2 sets x 2 ways x 64-byte lines = 256 bytes.
func tinyArray() *Array { return NewArray(256, 2, 64) }

func TestArrayLookupInstall(t *testing.T) {
	a := tinyArray()
	if a.Lookup(0, 0) != nil {
		t.Fatal("empty array hit")
	}
	w, _, evicted := a.Install(0, 1)
	if w == nil || evicted {
		t.Fatalf("install: w=%v evicted=%v", w, evicted)
	}
	if got := a.Lookup(0, 2); got == nil || got.Line != 0 {
		t.Fatal("installed line not found")
	}
	if a.Count() != 1 {
		t.Fatalf("count = %d", a.Count())
	}
}

func TestArrayReinstallRefreshes(t *testing.T) {
	a := tinyArray()
	a.Install(0, 1)
	w, _, evicted := a.Install(0, 2)
	if evicted || w == nil {
		t.Fatal("reinstall evicted or failed")
	}
	if a.Count() != 1 {
		t.Fatalf("count = %d after reinstall", a.Count())
	}
}

func TestArrayLRUEviction(t *testing.T) {
	a := tinyArray()
	// Lines 0, 128, 256 all map to set 0 (set = line/64 % 2).
	a.Install(0, 1)
	a.Install(128, 2)
	a.Lookup(0, 3) // refresh line 0; line 128 becomes LRU
	_, victim, evicted := a.Install(256, 4)
	if !evicted || victim.Line != 128 {
		t.Fatalf("victim = %+v evicted=%v, want line 128", victim, evicted)
	}
	if a.Lookup(0, 5) == nil || a.Lookup(256, 5) == nil {
		t.Fatal("survivors missing")
	}
}

func TestArrayPinnedNotEvicted(t *testing.T) {
	a := tinyArray()
	w0, _, _ := a.Install(0, 1)
	w0.Pinned = true
	w1, _, _ := a.Install(128, 2)
	w1.Pinned = true
	w, _, _ := a.Install(256, 3)
	if w != nil {
		t.Fatal("install succeeded with all ways pinned")
	}
	w1.Pinned = false
	w, victim, evicted := a.Install(256, 4)
	if w == nil || !evicted || victim.Line != 128 {
		t.Fatalf("unpinned way not chosen: victim=%+v", victim)
	}
}

func TestArrayInvalidateWhere(t *testing.T) {
	a := tinyArray()
	w, _, _ := a.Install(0, 1)
	w.State = LineOwned
	a.Install(64, 1)
	a.Install(128, 1)
	// Keep only owned lines (DeNovo acquire semantics).
	a.InvalidateWhere(func(w *Way) bool { return w.State == LineOwned })
	if a.Count() != 1 {
		t.Fatalf("count = %d, want 1", a.Count())
	}
	if a.Peek(0) == nil {
		t.Fatal("owned line invalidated")
	}
}

func TestArrayInvalidateLine(t *testing.T) {
	a := tinyArray()
	a.Install(0, 1)
	old, ok := a.Invalidate(0)
	if !ok || old.Line != 0 {
		t.Fatalf("invalidate = %+v, %v", old, ok)
	}
	if _, ok := a.Invalidate(0); ok {
		t.Fatal("double invalidate reported a line")
	}
}

func TestArrayGeometryPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewArray(64, 2, 64) // zero sets
}
