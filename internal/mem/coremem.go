package mem

import (
	"fmt"

	"gsi/internal/core"
	"gsi/internal/isa"
	"gsi/internal/noc"
)

// TargetKind says which unit a line fill belongs to; the SM-side client
// dispatches completions on it.
type TargetKind uint8

const (
	// TargetLoad fills a warp load instruction (identified by LoadID);
	// stash fills ride on warp loads with NoL1 set.
	TargetLoad TargetKind = iota
	// TargetDMAFill fills one line of a bulk DMA transfer.
	TargetDMAFill
)

// Target identifies one requested line fill.
type Target struct {
	Kind TargetKind
	Load core.LoadID // TargetLoad
	Aux  uint64      // the global line (stash/DMA routing)
	// NoL1 suppresses installing the fill into the L1 array: DMA and
	// stash transfers bypass the cache ("without polluting the L1
	// cache", D2MA; stash fills load directly into the stash).
	NoL1 bool
}

// LoadOutcome is the immediate result of CoreMem.Load.
type LoadOutcome uint8

const (
	// LoadHit: the line is in the L1; the caller completes the access
	// with core.WhereL1 at hit latency.
	LoadHit LoadOutcome = iota
	// LoadMiss: an MSHR was allocated and a request sent.
	LoadMiss
	// LoadMerged: an in-flight MSHR entry absorbed the request; the
	// target completes as core.WhereL1Coalescing.
	LoadMerged
	// LoadMSHRFull: no MSHR free; retry later (memory structural stall,
	// cause full MSHR).
	LoadMSHRFull
)

// StoreOutcome is the immediate result of CoreMem.Store.
type StoreOutcome uint8

const (
	// StoreOK: the store entered the write-combining buffer (or merged).
	StoreOK StoreOutcome = iota
	// StoreSBFull: the buffer is full (a flush has been triggered);
	// retry later (memory structural stall, cause full store buffer).
	StoreSBFull
	// StoreBlockedRelease: a release flush is in progress; retry later
	// (memory structural stall, cause pending release).
	StoreBlockedRelease
)

// AtomicOp is a warp atomic handed to CoreMem for protocol sequencing.
type AtomicOp struct {
	Warp  int
	Rd    isa.Reg // destination for the old value (unused when NoRet)
	Addr  uint64
	AOp   isa.Op
	B, C  uint64
	Order isa.Order
	// NoRet marks a fire-and-forget atomic: the issuing warp did not
	// block, so completion only decrements the in-flight count.
	NoRet bool
}

// CoreMemStats counts per-core memory events.
type CoreMemStats struct {
	Hits, Misses, Merges    uint64
	MSHRFullEvents          uint64
	SBFullEvents            uint64
	Flushes, ReleaseFlushes uint64
	FlushNoops              uint64 // lines already owned: free release work
	WriteThroughs, OwnReqs  uint64
	RemoteServed            uint64 // FwdReads answered from this L1
	Evictions, OwnedEvicts  uint64
	Atomics                 uint64
	LocalAtomics            uint64 // owned atomics served at this L1
}

// CoreMem is one core's private memory-side unit: the L1 array, MSHRs, the
// write-combining store buffer, flush and release sequencing, and the
// core's side of the coherence protocol. The SM's load/store unit calls
// Load/Store/Atomic during its tick; completions come back through the
// OnLoadDone / OnAtomicDone callbacks during the mesh/CoreMem ticks.
type CoreMem struct {
	coreID   int
	tile     int
	lineSize uint64
	policy   Policy
	array    *Array
	backing  *Backing

	mshr    map[uint64]*mshrEntry
	mshrCap int

	sb    []uint64            // FIFO of dirty lines awaiting flush
	sbSet map[uint64]struct{} // membership for write combining
	sbCap int

	flushing     bool
	flushRelease bool
	flushQ       []uint64
	acksWanted   map[uint64]struct{}

	releaseQ        []AtomicOp // atomics waiting for a release flush
	inflightAtomics int

	// SFIFO enables the QuickRelease-style ablation (paper section
	// 6.1.4): stores and loads keep issuing during a release flush.
	SFIFO bool
	// OwnedAtomics enables the Sinclair et al. optimization the paper's
	// section 6.1.4 suggests: atomics register ownership of their line,
	// and atomics to a locally owned line execute at the L1 instead of
	// making the L2 round trip. Requires an ownership protocol.
	OwnedAtomics bool

	localAtomics []localAtomic

	out      outbox
	bankTile func(line uint64) int
	coreTile func(core int) int
	wake     func()

	// cycle is the unit's notion of "now", refreshed at every external
	// entry point (Tick, Load, Store, Atomic, Deliver) from the caller's
	// explicit cycle. Keeping it caller-supplied rather than tick-derived
	// is what lets an otherwise-idle CoreMem skip cycles entirely without
	// perturbing LRU timestamps or outbox send times.
	cycle uint64

	// OnLoadDone fires once per completed fill target.
	OnLoadDone func(t Target, where core.DataWhere)
	// OnAtomicDone fires when an atomic's old value returns; the op is
	// echoed so the core can route the value (or ignore it for NoRet).
	OnAtomicDone func(op AtomicOp, old uint64)
	// OnWriteAck fires for every WriteAck delivered to this core; the
	// DMA engine uses it to track bulk write-back completion (lines it
	// did not send are simply not in its outstanding set).
	OnWriteAck func(line uint64)

	Stats CoreMemStats
}

type mshrEntry struct {
	primary     Target
	secondaries []Target
}

// CoreMemConfig collects construction parameters.
type CoreMemConfig struct {
	CoreID   int
	Tile     int
	LineSize int
	L1Size   int
	L1Assoc  int
	MSHRCap  int
	SBCap    int
	Policy   Policy
	Backing  *Backing
	Mesh     *noc.Mesh
	BankTile func(line uint64) int
	CoreTile func(core int) int
}

// NewCoreMem builds the unit.
func NewCoreMem(cfg CoreMemConfig) *CoreMem {
	return &CoreMem{
		coreID:     cfg.CoreID,
		tile:       cfg.Tile,
		lineSize:   uint64(cfg.LineSize),
		policy:     cfg.Policy,
		array:      NewArray(cfg.L1Size, cfg.L1Assoc, cfg.LineSize),
		backing:    cfg.Backing,
		mshr:       make(map[uint64]*mshrEntry),
		mshrCap:    cfg.MSHRCap,
		sbSet:      make(map[uint64]struct{}),
		sbCap:      cfg.SBCap,
		acksWanted: make(map[uint64]struct{}),
		out:        outbox{mesh: cfg.Mesh, from: cfg.Tile},
		bankTile:   cfg.BankTile,
		coreTile:   cfg.CoreTile,
	}
}

// SetWaker installs the engine re-arm callback. Entry points that create
// tick-serviced work (flush draining, release dispatch, local atomics,
// outbound messages) call arm so a sleeping unit resumes ticking.
func (c *CoreMem) SetWaker(wake func()) { c.wake = wake }

// SetStaged switches the unit's outbox into staged mode for the parallel
// tick engine: mesh sends that become due during Tick — which then runs
// concurrently with other cores' ticks — are parked in order and injected
// by Commit instead of touching the shared mesh mid-phase.
func (c *CoreMem) SetStaged(on bool) { c.out.staged = on }

// Commit implements sim.Committer for the parallel tick engine: it injects
// the mesh sends staged by this cycle's Tick. The engine calls Commit in
// registration order, which is exactly the order the serial engines'
// in-tick sends reach the mesh, so downstream FIFO order is identical.
func (c *CoreMem) Commit(cycle uint64) {
	c.out.flush(cycle)
}

// tickWork reports whether Tick has anything to do. Misses waiting on fills
// and flushes waiting on acks are completed by Deliver, not Tick, so they
// alone do not keep the unit ticking — except that a completed flush must
// be noticed by Tick, so flushing counts as tick work throughout.
func (c *CoreMem) tickWork() bool {
	return c.flushing || len(c.flushQ) > 0 || len(c.releaseQ) > 0 ||
		len(c.localAtomics) > 0 || c.out.pending() > 0
}

// arm re-activates the unit in the scheduling engine if it has tick work.
func (c *CoreMem) arm() {
	if c.wake != nil && c.tickWork() {
		c.wake()
	}
}

// Line returns addr's line base address.
func (c *CoreMem) Line(addr uint64) uint64 { return addr &^ (c.lineSize - 1) }

// Policy returns the active coherence policy.
func (c *CoreMem) Policy() Policy { return c.policy }

// MSHRFree reports the number of free MSHR entries (the DMA engine
// throttles on this).
func (c *CoreMem) MSHRFree() int { return c.mshrCap - len(c.mshr) }

// ReleaseInProgress reports whether a release flush is draining; the LSU
// blocks memory issue with cause pending-release while true (unless SFIFO).
func (c *CoreMem) ReleaseInProgress() bool { return c.flushing && c.flushRelease }

// Flushing reports any flush in progress.
func (c *CoreMem) Flushing() bool { return c.flushing }

// Load requests the line containing addr on behalf of target, during cycle
// now (the caller's current cycle).
func (c *CoreMem) Load(addr uint64, t Target, now uint64) LoadOutcome {
	c.cycle = now
	line := c.Line(addr)
	if c.array.Lookup(line, c.cycle) != nil {
		c.Stats.Hits++
		return LoadHit
	}
	if e, ok := c.mshr[line]; ok {
		c.Stats.Merges++
		e.secondaries = append(e.secondaries, t)
		return LoadMerged
	}
	if len(c.mshr) >= c.mshrCap {
		c.Stats.MSHRFullEvents++
		return LoadMSHRFull
	}
	c.Stats.Misses++
	c.mshr[line] = &mshrEntry{primary: t}
	c.out.send(c.cycle+1, c.bankTile(line), noc.PortL2,
		ReadReq{Line: line, Requestor: c.coreID})
	c.arm()
	return LoadMiss
}

// Store enters addr's line into the write-combining store buffer during
// cycle now. The caller writes the value to the backing store itself
// (stores are non-blocking). A full buffer triggers an automatic flush, per
// the paper: the buffer "is flushed when it becomes full, at the end of a
// kernel, and on a release operation".
func (c *CoreMem) Store(addr uint64, now uint64) StoreOutcome { return c.store(addr, true, now) }

// StoreNoL1 is Store for stash writes: the dirty data lives in the stash,
// so the store buffer tracks the line for flushing (ownership registration
// under DeNovo) without installing it in the L1.
func (c *CoreMem) StoreNoL1(addr uint64, now uint64) StoreOutcome {
	return c.store(addr, false, now)
}

func (c *CoreMem) store(addr uint64, installL1 bool, now uint64) StoreOutcome {
	c.cycle = now
	defer c.arm()
	if c.flushing {
		if c.flushRelease && !c.SFIFO {
			return StoreBlockedRelease
		}
		if !c.SFIFO {
			// Whole-buffer flush events: stores wait for the drain.
			return StoreSBFull
		}
		// SFIFO: stores may enter fresh entries during a flush, but
		// lines with an in-flight flush cannot merge.
		line := c.Line(addr)
		if _, inflight := c.acksWanted[line]; inflight {
			return StoreSBFull
		}
	}
	line := c.Line(addr)
	if _, ok := c.sbSet[line]; ok {
		// Write combining: the pending entry absorbs the store.
		if installL1 {
			c.markDirty(line)
		}
		return StoreOK
	}
	if len(c.sb) >= c.sbCap {
		c.Stats.SBFullEvents++
		c.startFlush(false)
		return StoreSBFull
	}
	if installL1 && !c.markDirty(line) {
		// Could not install (every way pinned): treat as buffer
		// pressure and drain.
		c.Stats.SBFullEvents++
		c.startFlush(false)
		return StoreSBFull
	}
	c.sb = append(c.sb, line)
	c.sbSet[line] = struct{}{}
	return StoreOK
}

// markDirty installs (write-allocate, no fetch) and pins the line. It
// reports false if no way could be claimed.
func (c *CoreMem) markDirty(line uint64) bool {
	w := c.array.Lookup(line, c.cycle)
	if w == nil {
		var victim Way
		var evicted bool
		w, victim, evicted = c.array.Install(line, c.cycle)
		if w == nil {
			return false
		}
		if evicted {
			c.evict(victim)
		}
	}
	w.Dirty = true
	w.Pinned = true
	return true
}

// evict handles a victim pushed out by Install: owned lines return to the
// L2 (data + deregistration).
func (c *CoreMem) evict(victim Way) {
	c.Stats.Evictions++
	if victim.State == LineOwned {
		c.Stats.OwnedEvicts++
		c.out.send(c.cycle+1, c.bankTile(victim.Line), noc.PortL2,
			WbOwned{Line: victim.Line, Requestor: c.coreID})
	}
}

// Atomic sequences a warp atomic during cycle now: release-ordered atomics
// wait behind a store buffer flush; others go straight to the home bank.
// The warp is expected to block (synchronization stall) until OnAtomicDone
// fires.
func (c *CoreMem) Atomic(op AtomicOp, now uint64) {
	c.cycle = now
	c.Stats.Atomics++
	if op.Order.IsRelease() {
		c.releaseQ = append(c.releaseQ, op)
		c.startFlush(true)
		c.arm()
		return
	}
	c.sendAtomic(op)
	c.arm()
}

// localAtomic is an owned-atomic executing at the L1 (short fixed latency).
type localAtomic struct {
	at  uint64
	op  AtomicOp
	old uint64
}

// localAtomicLat is the L1-side atomic latency (tag check + RMW).
const localAtomicLat = 3

func (c *CoreMem) sendAtomic(op AtomicOp) {
	c.inflightAtomics++
	ownedMode := c.OwnedAtomics && c.policy.UsesOwnership()
	if ownedMode {
		if w := c.array.Peek(c.Line(op.Addr)); w != nil && w.State == LineOwned {
			// The line is registered here: execute at the L1. The
			// RMW is the linearization point; losing ownership later
			// cannot reorder it because the backing operation is
			// already done.
			c.Stats.LocalAtomics++
			old := ExecRMW(c.backing, op.AOp, op.Addr, op.B, op.C)
			c.localAtomics = append(c.localAtomics, localAtomic{
				at: c.cycle + localAtomicLat, op: op, old: old,
			})
			return
		}
	}
	c.out.send(c.cycle+1, c.bankTile(c.Line(op.Addr)), noc.PortL2, AtomicReq{
		Addr: op.Addr, AOp: op.AOp, B: op.B, C: op.C,
		Requestor: c.coreID, Op: op, TakeOwnership: ownedMode,
	})
}

// SelfInvalidate applies acquire semantics: every line the policy does not
// keep is dropped. Called on acquire-atomic completion and at kernel
// launch.
func (c *CoreMem) SelfInvalidate() {
	c.array.InvalidateWhere(func(w *Way) bool {
		return w.Pinned || c.policy.KeepOnAcquire(w.State, w.Dirty)
	})
}

// FlushAll starts a kernel-end flush (release semantics, no atomic).
func (c *CoreMem) FlushAll() {
	c.startFlush(true)
	c.arm()
}

func (c *CoreMem) startFlush(release bool) {
	if c.flushing {
		if release {
			c.flushRelease = true
		}
		return
	}
	c.Stats.Flushes++
	if release {
		c.Stats.ReleaseFlushes++
	}
	c.flushing = true
	c.flushRelease = release
	c.flushQ = append(c.flushQ[:0], c.sb...)
}

// Tick drains one flush line per cycle, dispatches release atomics once
// their flush has completed, and sends due messages. It reports whether
// tick-serviced work remains; a unit waiting only on fills or atomic
// responses sleeps and is re-armed by Deliver.
func (c *CoreMem) Tick(cycle uint64) bool {
	c.cycle = cycle
	if c.flushing && len(c.flushQ) > 0 {
		line := c.flushQ[0]
		c.flushQ = c.flushQ[1:]
		c.flushLine(line)
	}
	if c.flushing && len(c.flushQ) == 0 && len(c.acksWanted) == 0 {
		c.flushing = false
		c.flushRelease = false
	}
	if !c.flushing && len(c.releaseQ) > 0 {
		op := c.releaseQ[0]
		c.releaseQ = c.releaseQ[1:]
		c.sendAtomic(op)
	}
	if len(c.localAtomics) > 0 {
		n := 0
		for _, la := range c.localAtomics {
			if la.at > cycle {
				c.localAtomics[n] = la
				n++
				continue
			}
			c.inflightAtomics--
			if la.op.Order.IsAcquire() {
				c.SelfInvalidate()
			}
			if c.OnAtomicDone != nil {
				c.OnAtomicDone(la.op, la.old)
			}
		}
		c.localAtomics = c.localAtomics[:n]
	}
	c.out.tick(cycle)
	return c.tickWork()
}

func (c *CoreMem) flushLine(line uint64) {
	w := c.array.Peek(line)
	state := LineValid
	if w != nil {
		state = w.State
	}
	switch c.policy.FlushLine(state) {
	case FlushNone:
		// Already owned: a release has nothing to do (DeNovo).
		c.Stats.FlushNoops++
		c.completeFlush(line)
	case FlushWriteThrough:
		c.Stats.WriteThroughs++
		c.acksWanted[line] = struct{}{}
		c.out.send(c.cycle+1, c.bankTile(line), noc.PortL2,
			WriteThrough{Line: line, Requestor: c.coreID})
	case FlushOwnReq:
		c.Stats.OwnReqs++
		c.acksWanted[line] = struct{}{}
		c.out.send(c.cycle+1, c.bankTile(line), noc.PortL2,
			OwnReq{Line: line, Requestor: c.coreID})
	}
}

// completeFlush retires one store buffer entry.
func (c *CoreMem) completeFlush(line uint64) {
	delete(c.acksWanted, line)
	if _, ok := c.sbSet[line]; ok {
		delete(c.sbSet, line)
		for i, l := range c.sb {
			if l == line {
				c.sb = append(c.sb[:i], c.sb[i+1:]...)
				break
			}
		}
	}
	if w := c.array.Peek(line); w != nil {
		w.Dirty = false
		w.Pinned = false
	}
}

// Deliver handles a mesh message addressed to this core. now is the cycle
// timings reference: the mesh delivers before cores tick within a cycle, so
// the System passes the previous cycle — the unit's most recent tick
// opportunity — keeping response times and LRU stamps identical to a dense
// loop that ticked the unit every cycle.
func (c *CoreMem) Deliver(payload any, now uint64) {
	c.cycle = now
	defer c.arm()
	switch msg := payload.(type) {
	case ReadResp:
		c.fill(msg.Line, msg.Where)
	case WriteAck:
		c.completeFlush(msg.Line)
		if c.OnWriteAck != nil {
			c.OnWriteAck(msg.Line)
		}
	case OwnAck:
		if w := c.array.Peek(msg.Line); w != nil {
			w.State = LineOwned
		}
		c.completeFlush(msg.Line)
	case FwdRead:
		// Serve a remote reader from this L1 (DeNovo): respond
		// directly to the requestor. Answer even if the line has been
		// evicted in the meantime (the WbOwned is racing to the L2;
		// data is functionally in the backing store).
		c.Stats.RemoteServed++
		c.out.send(c.cycle+2, c.coreTile(msg.Requestor), noc.PortCore,
			ReadResp{Line: msg.Line, Where: core.WhereRemoteL1})
	case OwnTransfer:
		// Lost ownership to another core (the directory already acked
		// the new owner). Drop the line; if it had an unflushed entry
		// (a data race under DRF, but stay robust) retire the entry so
		// the flush cannot deadlock.
		if w := c.array.Peek(msg.Line); w != nil {
			c.array.Invalidate(msg.Line)
		}
		c.completeFlush(msg.Line)
	case AtomicResp:
		c.inflightAtomics--
		if msg.Granted {
			// Owned atomics: the bank registered us; install the
			// line owned so the next atomic runs locally. If no way
			// can be claimed, give the registration straight back
			// rather than leaving a dangling directory entry.
			if w, victim, evicted := c.array.Install(c.Line(msg.Addr), c.cycle); w != nil {
				if evicted {
					c.evict(victim)
				}
				w.State = LineOwned
			} else {
				c.out.send(c.cycle+1, c.bankTile(c.Line(msg.Addr)), noc.PortL2,
					WbOwned{Line: c.Line(msg.Addr), Requestor: c.coreID})
			}
		}
		if msg.Op.Order.IsAcquire() {
			c.SelfInvalidate()
		}
		if c.OnAtomicDone != nil {
			c.OnAtomicDone(msg.Op, msg.Old)
		}
	default:
		panic(fmt.Sprintf("mem: core %d: unexpected message %T", c.coreID, payload))
	}
}

// fill completes an MSHR entry: install the line and finish every target.
// The primary target is charged where the response was serviced; merged
// secondaries are charged L1-coalescing per the paper's definition.
func (c *CoreMem) fill(line uint64, where core.DataWhere) {
	e, ok := c.mshr[line]
	if !ok {
		// A fill for a line we no longer track (e.g. a FwdRead answer
		// arriving after invalidation): nothing to complete.
		return
	}
	delete(c.mshr, line)
	install := !e.primary.NoL1
	for _, t := range e.secondaries {
		if !t.NoL1 {
			install = true
		}
	}
	if install {
		if _, victim, evicted := c.array.Install(line, c.cycle); evicted {
			c.evict(victim)
		}
	}
	if c.OnLoadDone != nil {
		c.OnLoadDone(e.primary, where)
		for _, t := range e.secondaries {
			c.OnLoadDone(t, core.WhereL1Coalescing)
		}
	}
}

// NextEvent implements the engine's skip-ahead extension: the earliest
// cycle after now at which Tick has real work. A draining flush and a
// dispatchable release atomic are one-per-cycle work (next cycle); local
// atomics and the outbox carry their own due times; a flush waiting only on
// acks is external (the acks arrive through Deliver, which is bounded by
// the mesh's own next event).
func (c *CoreMem) NextEvent(now uint64) uint64 {
	if c.flushing && (len(c.flushQ) > 0 || len(c.acksWanted) == 0) {
		// Either a line drains next cycle, or the flush is already
		// complete (an empty-buffer flush started after this unit's
		// tick) and the next tick must clear it — and possibly
		// dispatch a waiting release atomic.
		return now + 1
	}
	if !c.flushing && len(c.releaseQ) > 0 {
		return now + 1
	}
	next := c.out.nextDue()
	for _, la := range c.localAtomics {
		if la.at < next {
			next = la.at
		}
	}
	if next != noEvent && next <= now {
		return now + 1
	}
	return next
}

// Quiesced reports that no miss, flush, atomic, or outbound message is in
// flight.
func (c *CoreMem) Quiesced() bool {
	return len(c.mshr) == 0 && !c.flushing && len(c.sb) == 0 &&
		len(c.releaseQ) == 0 && c.inflightAtomics == 0 && c.out.pending() == 0
}

// Diagnose describes pending work for engine deadlock dumps.
func (c *CoreMem) Diagnose() string {
	return fmt.Sprintf("mshr=%d sb=%d flushQ=%d acks=%d relQ=%d atomics=%d out=%d",
		len(c.mshr), len(c.sb), len(c.flushQ), len(c.acksWanted),
		len(c.releaseQ), c.inflightAtomics, c.out.pending())
}

// SBLen reports current store buffer occupancy (tests).
func (c *CoreMem) SBLen() int { return len(c.sb) }

// LineStateOf reports the L1 state of addr's line (tests).
func (c *CoreMem) LineStateOf(addr uint64) LineState {
	if w := c.array.Peek(c.Line(addr)); w != nil {
		return w.State
	}
	return LineInvalid
}
