package mem

import "testing"

func TestMemCtrlLatency(t *testing.T) {
	mc := NewMemCtrl(10, 1)
	var doneAt uint64 = 0
	var fired bool
	mc.Request(0x40, func(line uint64) { fired = true })
	for c := uint64(0); c < 20 && !fired; c++ {
		mc.Tick(c)
		doneAt = c
	}
	if !fired {
		t.Fatal("request never completed")
	}
	if doneAt < 10 {
		t.Fatalf("completed at %d, want >= 10", doneAt)
	}
	if mc.Pending() != 0 {
		t.Fatalf("pending = %d", mc.Pending())
	}
}

func TestMemCtrlBandwidth(t *testing.T) {
	// perReq=4: service starts are at least 4 cycles apart, so the
	// completions of back-to-back requests are too.
	mc := NewMemCtrl(10, 4)
	var times []uint64
	for i := 0; i < 4; i++ {
		mc.Request(uint64(i*64), func(line uint64) {})
	}
	for c := uint64(0); c < 100 && mc.Pending() > 0; c++ {
		before := mc.Pending()
		mc.Tick(c)
		for i := 0; i < before-mc.Pending(); i++ {
			times = append(times, c)
		}
	}
	if len(times) != 4 {
		t.Fatalf("completions = %d", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] < 4 {
			t.Fatalf("completions %d apart, want >= 4: %v", times[i]-times[i-1], times)
		}
	}
	if mc.Requests != 4 || mc.MaxQueue < 3 {
		t.Fatalf("stats: requests=%d maxqueue=%d", mc.Requests, mc.MaxQueue)
	}
}

func TestMemCtrlZeroBandwidthClamped(t *testing.T) {
	mc := NewMemCtrl(1, 0)
	fired := false
	mc.Request(0, func(uint64) { fired = true })
	for c := uint64(0); c < 10; c++ {
		mc.Tick(c)
	}
	if !fired {
		t.Fatal("clamped controller never completed")
	}
}
