package mem

import "fmt"

// Way is one way of a set-associative array.
type Way struct {
	Line    uint64 // line base address (tag+index combined; unambiguous)
	State   LineState
	Dirty   bool
	Pinned  bool // pending store-buffer flush: not evictable
	lastUse uint64
}

// Array is a set-associative cache tag array with LRU replacement. It
// tracks presence and state only; data lives in the Backing store.
type Array struct {
	lineSize uint64
	sets     [][]Way
	valid    int // valid lines across all sets (keeps Count and the
	// empty-array fast path of InvalidateWhere O(1))
}

// NewArray builds an array of the given total size in bytes.
func NewArray(size, assoc, lineSize int) *Array {
	nsets := size / (assoc * lineSize)
	if nsets <= 0 {
		panic(fmt.Sprintf("mem: array size %d too small for assoc %d line %d", size, assoc, lineSize))
	}
	sets := make([][]Way, nsets)
	ways := make([]Way, nsets*assoc)
	for i := range sets {
		sets[i], ways = ways[:assoc:assoc], ways[assoc:]
	}
	return &Array{lineSize: uint64(lineSize), sets: sets}
}

// setIndex maps a line address to its set.
func (a *Array) setIndex(line uint64) int {
	return int((line / a.lineSize) % uint64(len(a.sets)))
}

// Lookup returns the way holding line, or nil. It refreshes LRU on hit.
func (a *Array) Lookup(line uint64, cycle uint64) *Way {
	set := a.sets[a.setIndex(line)]
	for i := range set {
		if set[i].State != LineInvalid && set[i].Line == line {
			set[i].lastUse = cycle
			return &set[i]
		}
	}
	return nil
}

// Peek is Lookup without the LRU refresh.
func (a *Array) Peek(line uint64) *Way {
	set := a.sets[a.setIndex(line)]
	for i := range set {
		if set[i].State != LineInvalid && set[i].Line == line {
			return &set[i]
		}
	}
	return nil
}

// Install places line into its set, evicting the LRU non-pinned way if the
// set is full. It returns the installed way and, when an eviction occurred,
// the victim's pre-eviction copy. If every way is pinned, Install returns
// (nil, Way{}, false) and the caller must retry later.
func (a *Array) Install(line uint64, cycle uint64) (w *Way, victim Way, evicted bool) {
	set := a.sets[a.setIndex(line)]
	var free *Way
	var lru *Way
	for i := range set {
		way := &set[i]
		if way.State == LineInvalid {
			if free == nil {
				free = way
			}
			continue
		}
		if way.Line == line {
			// Already present; treat as a refresh.
			way.lastUse = cycle
			return way, Way{}, false
		}
		if way.Pinned {
			continue
		}
		if lru == nil || way.lastUse < lru.lastUse {
			lru = way
		}
	}
	target := free
	if target == nil {
		if lru == nil {
			return nil, Way{}, false
		}
		victim = *lru
		evicted = true
		target = lru
	} else {
		a.valid++
	}
	*target = Way{Line: line, State: LineValid, lastUse: cycle}
	return target, victim, evicted
}

// InvalidateWhere clears every way for which keep returns false. An empty
// array returns immediately — acquire self-invalidations on a cold or
// fully-invalidated L1 (the common case under GPU coherence, which keeps
// nothing across acquires) cost nothing.
func (a *Array) InvalidateWhere(keep func(w *Way) bool) {
	if a.valid == 0 {
		return
	}
	for s := range a.sets {
		set := a.sets[s]
		for i := range set {
			if set[i].State == LineInvalid {
				continue
			}
			if !keep(&set[i]) {
				set[i] = Way{}
				a.valid--
			}
		}
	}
}

// Invalidate drops line if present, returning its prior copy.
func (a *Array) Invalidate(line uint64) (Way, bool) {
	set := a.sets[a.setIndex(line)]
	for i := range set {
		if set[i].State != LineInvalid && set[i].Line == line {
			old := set[i]
			set[i] = Way{}
			a.valid--
			return old, true
		}
	}
	return Way{}, false
}

// Count returns the number of valid lines (tests and stats).
func (a *Array) Count() int { return a.valid }
