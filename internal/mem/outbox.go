package mem

import "gsi/internal/noc"

// outbox defers mesh sends until a component's access latency has elapsed,
// preserving injection order among messages that become due the same cycle.
type outbox struct {
	mesh *noc.Mesh
	from int // tile index
	q    []outMsg
}

type outMsg struct {
	at      uint64
	dst     int
	port    noc.Port
	payload any
}

func (o *outbox) send(at uint64, dst int, port noc.Port, payload any) {
	o.q = append(o.q, outMsg{at: at, dst: dst, port: port, payload: payload})
}

// tick injects every due message into the mesh.
func (o *outbox) tick(cycle uint64) {
	n := 0
	for _, m := range o.q {
		if m.at <= cycle {
			o.mesh.Send(o.from, m.dst, m.port, m.payload)
		} else {
			o.q[n] = m
			n++
		}
	}
	o.q = o.q[:n]
}

func (o *outbox) pending() int { return len(o.q) }
