package mem

import "gsi/internal/noc"

// outbox defers mesh sends until a component's access latency has elapsed,
// preserving injection order among messages that become due the same cycle.
//
// In staged mode (the parallel tick engine) due messages are not injected
// by tick — the mesh is cross-group shared state — but parked in order on
// a staging slice that flush hands to the mesh during the owner's commit
// phase. The injection cycle and order are identical; only the goroutine
// that performs the Send changes.
type outbox struct {
	mesh *noc.Mesh
	from int // tile index
	q    []outMsg
	next uint64 // earliest due time in q; tick is a no-op before it

	staged  bool
	staging []outMsg
}

type outMsg struct {
	at      uint64
	dst     int
	port    noc.Port
	payload any
}

func (o *outbox) send(at uint64, dst int, port noc.Port, payload any) {
	if len(o.q) == 0 || at < o.next {
		o.next = at
	}
	o.q = append(o.q, outMsg{at: at, dst: dst, port: port, payload: payload})
}

// tick injects every due message into the mesh. Nothing can be due before
// next, so the scan is skipped entirely until then.
func (o *outbox) tick(cycle uint64) {
	if len(o.q) == 0 || cycle < o.next {
		return
	}
	n := 0
	var nextDue uint64
	for _, m := range o.q {
		if m.at <= cycle {
			if o.staged {
				o.staging = append(o.staging, m)
			} else {
				o.mesh.Send(cycle, o.from, m.dst, m.port, m.payload)
			}
		} else {
			if n == 0 || m.at < nextDue {
				nextDue = m.at
			}
			o.q[n] = m
			n++
		}
	}
	o.q = o.q[:n]
	o.next = nextDue
}

// flush injects the messages staged by tick into the mesh, in the order
// tick parked them. Called from the owning component's commit phase, on
// the engine goroutine, in registration order — the same relative order
// the serial engines inject in.
func (o *outbox) flush(cycle uint64) {
	for _, m := range o.staging {
		o.mesh.Send(cycle, o.from, m.dst, m.port, m.payload)
	}
	o.staging = o.staging[:0]
}

func (o *outbox) pending() int { return len(o.q) }

// nextDue returns the earliest due time among queued messages, or
// sim.NoEvent when the outbox is empty. After a tick at cycle c every
// remaining message is due strictly after c, so the value bounds a
// skip-ahead jump exactly.
func (o *outbox) nextDue() uint64 {
	if len(o.q) == 0 {
		return noEvent
	}
	return o.next
}

// noEvent mirrors sim.NoEvent without importing the package into this
// low-level helper.
const noEvent = ^uint64(0)
