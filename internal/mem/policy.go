package mem

// LineState is the coherence state of an L1 line.
type LineState uint8

const (
	// LineInvalid: the way holds no line.
	LineInvalid LineState = iota
	// LineValid: a clean (or pending-flush dirty) copy; invalidated by
	// acquire self-invalidation unless the policy keeps it.
	LineValid
	// LineOwned: a registered DeNovo line; the L2 directory points here,
	// remote readers are forwarded here, and the line survives acquires.
	LineOwned
)

// String returns the state name.
func (s LineState) String() string {
	switch s {
	case LineInvalid:
		return "I"
	case LineValid:
		return "V"
	case LineOwned:
		return "O"
	}
	return "?"
}

// FlushAction tells the store buffer what flushing one dirty line requires
// under the active protocol.
type FlushAction uint8

const (
	// FlushWriteThrough sends the line's data to the L2 and waits for a
	// WriteAck (GPU coherence).
	FlushWriteThrough FlushAction = iota
	// FlushOwnReq registers ownership at the L2 directory and waits for
	// an OwnAck; the data stays dirty in the L1 (DeNovo).
	FlushOwnReq
	// FlushNone completes immediately: the line is already owned here, so
	// a release has nothing to do for it (DeNovo's cheap-release win).
	FlushNone
)

// Policy is the coherence protocol hook consumed by CoreMem. The two
// implementations live in internal/coherence; keeping the interface here,
// next to its consumer, follows the usual Go dependency direction.
type Policy interface {
	// Name identifies the protocol in reports ("GPU coherence", "DeNovo").
	Name() string
	// KeepOnAcquire reports whether a line in the given state (with the
	// given dirty status) survives an acquire self-invalidation.
	// Pending-flush dirty lines are the warp's own unflushed writes and
	// survive under both protocols of the paper.
	KeepOnAcquire(state LineState, dirty bool) bool
	// FlushLine returns the action required to flush one dirty line.
	FlushLine(state LineState) FlushAction
	// UsesOwnership reports whether the protocol registers L1 ownership
	// (enables remote-L1 forwarding at the L2).
	UsesOwnership() bool
}
