package mem

import "fmt"

// MemCtrl models main memory: a single controller with fixed access latency
// and a cycles-per-request bandwidth limit. L2 banks enqueue fill requests
// and receive a callback when the data is available.
type MemCtrl struct {
	latency   uint64
	perReq    uint64 // minimum cycles between request starts
	nextStart uint64 // earliest cycle the next request may start service

	queue    []memReq
	inflight []memReq // served, waiting for latency to elapse
	wake     func()

	// Stats.
	Requests uint64
	MaxQueue int
}

type memReq struct {
	line    uint64
	readyAt uint64
	done    func(line uint64)
}

// NewMemCtrl builds a controller with the given access latency and
// bandwidth (one request per perReq cycles).
func NewMemCtrl(latency, perReq int) *MemCtrl {
	if perReq < 1 {
		perReq = 1
	}
	return &MemCtrl{latency: uint64(latency), perReq: uint64(perReq)}
}

// SetWaker installs the engine re-arm callback; Request invokes it so an
// idle controller resumes ticking when an L2 bank enqueues a fill.
func (m *MemCtrl) SetWaker(wake func()) { m.wake = wake }

// Request enqueues a line fill; done fires when the line arrives, during a
// MemCtrl tick at least latency cycles later.
func (m *MemCtrl) Request(line uint64, done func(line uint64)) {
	m.Requests++
	m.queue = append(m.queue, memReq{line: line, done: done})
	if len(m.queue) > m.MaxQueue {
		m.MaxQueue = len(m.queue)
	}
	if m.wake != nil {
		m.wake()
	}
}

// Tick starts at most one queued request per perReq cycles and completes
// any in-flight requests whose latency has elapsed. It reports whether any
// request remains queued or in flight.
func (m *MemCtrl) Tick(cycle uint64) bool {
	// Complete in order; inflight is sorted by readyAt because service
	// starts are monotonic.
	n := 0
	for _, r := range m.inflight {
		if r.readyAt <= cycle {
			r.done(r.line)
		} else {
			m.inflight[n] = r
			n++
		}
	}
	m.inflight = m.inflight[:n]

	if len(m.queue) > 0 && cycle >= m.nextStart {
		r := m.queue[0]
		m.queue = m.queue[1:]
		r.readyAt = cycle + m.latency
		m.inflight = append(m.inflight, r)
		m.nextStart = cycle + m.perReq
	}
	return len(m.queue) > 0 || len(m.inflight) > 0
}

// Pending reports queued plus in-flight requests (for quiescence checks).
func (m *MemCtrl) Pending() int { return len(m.queue) + len(m.inflight) }

// NextEvent implements the engine's skip-ahead extension: the earliest
// cycle after now at which the controller can start a queued request or
// complete an in-flight one. inflight is sorted by readyAt (service starts
// are monotonic), so its head is the earliest completion.
func (m *MemCtrl) NextEvent(now uint64) uint64 {
	next := noEvent
	if len(m.inflight) > 0 {
		next = m.inflight[0].readyAt
	}
	if len(m.queue) > 0 {
		start := m.nextStart
		if start < now+1 {
			start = now + 1
		}
		if start < next {
			next = start
		}
	}
	if next != noEvent && next <= now {
		return now + 1
	}
	return next
}

// Diagnose describes pending requests for engine deadlock dumps.
func (m *MemCtrl) Diagnose() string {
	return fmt.Sprintf("queued=%d inflight=%d served=%d", len(m.queue), len(m.inflight), m.Requests)
}
