package mem

import (
	"gsi/internal/core"
	"gsi/internal/isa"
)

// Message payloads exchanged over the mesh. Requests travel to an L2 bank
// (noc.PortL2); responses and forwards travel to a core (noc.PortCore).

// ReadReq asks the home L2 bank for a line. The bank either answers from
// its array, fetches from memory, or — when the line is owned by a remote
// L1 under DeNovo — forwards the request to the owner.
type ReadReq struct {
	Line      uint64
	Requestor int // core id
}

// ReadResp delivers a line to the requesting core. Where records the
// service point for GSI's memory data stall sub-classification.
type ReadResp struct {
	Line  uint64
	Where core.DataWhere
}

// WriteThrough carries a dirty line's data to the L2 (GPU coherence store
// buffer flush). The bank acknowledges with WriteAck.
type WriteThrough struct {
	Line      uint64
	Requestor int
}

// WriteAck confirms a WriteThrough has been applied at the L2.
type WriteAck struct {
	Line uint64
}

// OwnReq registers the requesting core as owner of a line (DeNovo store
// buffer flush). The bank answers OwnAck directly if the line is unowned;
// otherwise it updates the directory and sends OwnTransfer to the previous
// owner, which forwards OwnAck to the new owner (three-hop transfer).
type OwnReq struct {
	Line      uint64
	Requestor int
}

// OwnAck confirms ownership registration to the new owner.
type OwnAck struct {
	Line uint64
}

// OwnTransfer tells the previous owner it has lost a line; it invalidates
// locally and forwards OwnAck to NewOwner.
type OwnTransfer struct {
	Line     uint64
	NewOwner int
}

// FwdRead is sent by the L2 to a line's owner; the owner responds to
// Requestor directly with ReadResp{Where: WhereRemoteL1}.
type FwdRead struct {
	Line      uint64
	Requestor int
}

// WbOwned returns an owned line to the L2 on eviction: the bank installs
// the data and clears the directory entry. Fire-and-forget.
type WbOwned struct {
	Line      uint64
	Requestor int
}

// AtomicReq executes a read-modify-write at the home L2 bank (the
// simulated system performs all atomics at L2). Release ordering is
// enforced at the core before the request is sent; acquire ordering is
// applied at the core when the response arrives. Op is echoed back in the
// response so the core can route the old value.
type AtomicReq struct {
	Addr      uint64
	AOp       isa.Op // OpAtomCAS, OpAtomExch, OpAtomAdd
	B, C      uint64 // operands
	Requestor int
	Op        AtomicOp
	// TakeOwnership asks the bank to register the requestor as the
	// line's owner after executing, so the requestor's subsequent
	// atomics run locally (the owned-atomics optimization of Sinclair
	// et al., suggested in the paper's section 6.1.4).
	TakeOwnership bool
}

// AtomicResp returns the old value to the issuing warp. Granted reports
// that the bank registered the requestor as the line's owner.
type AtomicResp struct {
	Addr    uint64
	Old     uint64
	Op      AtomicOp
	Granted bool
}
