package mem

import (
	"fmt"

	"gsi/internal/core"
	"gsi/internal/isa"
	"gsi/internal/noc"
)

// L2Bank is one NUCA bank of the shared last-level cache. It owns a slice
// of the address space (line interleaved), the DeNovo ownership directory
// for that slice, and the atomic execution unit (all atomics in the
// simulated system execute at the L2).
//
// The bank processes one delivered message per occupancy period and answers
// after its access latency via the outbox, so end-to-end L2 hit latency is
// network distance + queueing + access latency — the 29-61 cycle range of
// Table 5.1.
type L2Bank struct {
	id        int // bank id == tile index
	array     *Array
	owner     map[uint64]int // line -> owning core (DeNovo registration)
	backing   *Backing
	ctrl      *MemCtrl
	coreTile  func(core int) int
	accessLat uint64
	occupancy uint64
	busyUntil uint64

	inQ     []any
	out     outbox
	pending map[uint64]*l2Miss
	wake    func()

	// Stats.
	Hits, Misses, Forwards, Atomics, OwnershipChanges uint64
}

// l2Miss tracks requestors waiting on one in-flight memory fill.
type l2Miss struct {
	waiters []l2Waiter
}

// l2Waiter is one blocked request: a plain read (atomic == nil) or an
// atomic continuation executed on fill.
type l2Waiter struct {
	core   int
	atomic *AtomicReq
}

// NewL2Bank builds bank id with sizePerBank bytes of capacity.
func NewL2Bank(id, sizePerBank, assoc, lineSize int, accessLat int, backing *Backing,
	ctrl *MemCtrl, mesh *noc.Mesh, coreTile func(int) int) *L2Bank {
	return &L2Bank{
		id:        id,
		array:     NewArray(sizePerBank, assoc, lineSize),
		owner:     make(map[uint64]int),
		backing:   backing,
		ctrl:      ctrl,
		coreTile:  coreTile,
		accessLat: uint64(accessLat),
		occupancy: 2,
		out:       outbox{mesh: mesh, from: id},
		pending:   make(map[uint64]*l2Miss),
	}
}

// SetWaker installs the engine re-arm callback; Deliver invokes it so an
// idle bank resumes ticking when the mesh or the memory controller hands it
// a message.
func (b *L2Bank) SetWaker(wake func()) { b.wake = wake }

// Deliver receives a message from the mesh; processing happens in Tick.
func (b *L2Bank) Deliver(payload any) {
	b.inQ = append(b.inQ, payload)
	if b.wake != nil {
		b.wake()
	}
}

// Tick processes at most one queued message per occupancy period and
// flushes due responses. It reports whether queued messages or undelivered
// responses remain; in-flight memory fills re-arm the bank via Deliver.
func (b *L2Bank) Tick(cycle uint64) bool {
	if len(b.inQ) > 0 && cycle >= b.busyUntil {
		m := b.inQ[0]
		b.inQ[0] = nil
		b.inQ = b.inQ[1:]
		b.busyUntil = cycle + b.occupancy
		b.process(m, cycle)
	}
	b.out.tick(cycle)
	return len(b.inQ) > 0 || b.out.pending() > 0
}

func (b *L2Bank) process(m any, cycle uint64) {
	switch msg := m.(type) {
	case ReadReq:
		b.read(msg, cycle)
	case WriteThrough:
		b.writeThrough(msg, cycle)
	case OwnReq:
		b.ownReq(msg, cycle)
	case WbOwned:
		// Owned line returned on eviction: clear registration and
		// install the data locally.
		if b.owner[msg.Line] == msg.Requestor {
			delete(b.owner, msg.Line)
		}
		b.array.Install(msg.Line, cycle)
	case AtomicReq:
		b.atomic(msg, cycle)
	case memFill:
		b.fill(msg.line, cycle)
	default:
		panic(fmt.Sprintf("mem: L2 bank %d: unexpected message %T", b.id, m))
	}
}

// memFill is the internal event the memory controller posts back to the
// bank when a fill completes.
type memFill struct{ line uint64 }

func (b *L2Bank) read(msg ReadReq, cycle uint64) {
	if owner, ok := b.owner[msg.Line]; ok && owner != msg.Requestor {
		// DeNovo: the up-to-date copy is registered in a remote L1;
		// forward after the full tag+directory access, the owner
		// responds directly to the requestor (the extra hop that makes
		// remote L1 hits slower than L2 hits).
		b.Forwards++
		b.out.send(cycle+b.accessLat, b.coreTile(owner), noc.PortCore,
			FwdRead{Line: msg.Line, Requestor: msg.Requestor})
		return
	}
	if b.array.Lookup(msg.Line, cycle) != nil {
		b.Hits++
		b.respond(cycle, msg.Requestor, ReadResp{Line: msg.Line, Where: core.WhereL2})
		return
	}
	b.Misses++
	b.miss(msg.Line, l2Waiter{core: msg.Requestor})
}

// miss coalesces waiters on an in-flight fill, issuing the fetch for the
// first one.
func (b *L2Bank) miss(line uint64, w l2Waiter) {
	if p, ok := b.pending[line]; ok {
		p.waiters = append(p.waiters, w)
		return
	}
	b.pending[line] = &l2Miss{waiters: []l2Waiter{w}}
	b.ctrl.Request(line, func(l uint64) { b.Deliver(memFill{line: l}) })
}

// fill completes an in-flight memory fetch: install the line and satisfy
// every waiter in arrival order.
func (b *L2Bank) fill(line uint64, cycle uint64) {
	b.array.Install(line, cycle)
	p := b.pending[line]
	if p == nil {
		return
	}
	delete(b.pending, line)
	for _, w := range p.waiters {
		if w.atomic != nil {
			b.finishAtomic(*w.atomic, cycle)
			continue
		}
		b.respond(cycle, w.core, ReadResp{Line: line, Where: core.WhereMemory})
	}
}

func (b *L2Bank) writeThrough(msg WriteThrough, cycle uint64) {
	// Write-through data supersedes any stale registration (should not
	// occur for data-race-free programs, but stay robust).
	if owner, ok := b.owner[msg.Line]; ok && owner == msg.Requestor {
		delete(b.owner, msg.Line)
	}
	b.array.Install(msg.Line, cycle)
	b.respond(cycle, msg.Requestor, WriteAck{Line: msg.Line})
}

func (b *L2Bank) ownReq(msg OwnReq, cycle uint64) {
	prev, wasOwned := b.owner[msg.Line]
	b.owner[msg.Line] = msg.Requestor
	b.OwnershipChanges++
	if wasOwned && prev != msg.Requestor {
		// The directory is the serialization point: ack the new owner
		// immediately and invalidate the previous owner in parallel
		// (the old copy's data is already superseded by the new
		// owner's dirty words).
		b.out.send(cycle+b.accessLat/2, b.coreTile(prev), noc.PortCore,
			OwnTransfer{Line: msg.Line, NewOwner: msg.Requestor})
	}
	// The L2 copy is stale once a core owns the line.
	b.array.Invalidate(msg.Line)
	b.respond(cycle, msg.Requestor, OwnAck{Line: msg.Line})
}

func (b *L2Bank) atomic(msg AtomicReq, cycle uint64) {
	b.Atomics++
	line := msg.Addr &^ (b.array.lineSize - 1)
	if msg.TakeOwnership {
		// Owned atomics: execute here, then register the requestor so
		// its next atomic to this line runs locally at its L1. A
		// previous owner is invalidated in parallel.
		if prev, ok := b.owner[line]; ok && prev != msg.Requestor {
			b.out.send(cycle+b.accessLat/2, b.coreTile(prev), noc.PortCore,
				OwnTransfer{Line: line, NewOwner: msg.Requestor})
		}
		b.owner[line] = msg.Requestor
		b.OwnershipChanges++
		b.array.Invalidate(line)
		b.finishAtomic(msg, cycle)
		return
	}
	if _, ok := b.owner[line]; ok {
		// Atomics execute at the L2 in the baseline system (see
		// methodology: atomics are not owned). Values live in the
		// backing store, which the owner also updates, so executing
		// here stays functionally correct; we charge only the L2 path.
		b.finishAtomic(msg, cycle)
		return
	}
	if b.array.Lookup(line, cycle) != nil {
		b.finishAtomic(msg, cycle)
		return
	}
	b.miss(line, l2Waiter{core: msg.Requestor, atomic: &msg})
}

// finishAtomic performs the read-modify-write and responds.
func (b *L2Bank) finishAtomic(msg AtomicReq, cycle uint64) {
	old := ExecRMW(b.backing, msg.AOp, msg.Addr, msg.B, msg.C)
	b.respond(cycle, msg.Requestor, AtomicResp{
		Addr: msg.Addr, Old: old, Op: msg.Op, Granted: msg.TakeOwnership,
	})
}

// ExecRMW executes one atomic read-modify-write against the functional
// backing store and returns the old value. Shared by the L2 banks and the
// owned-atomics fast path at the L1.
func ExecRMW(backing *Backing, op isa.Op, addr, b2, c uint64) uint64 {
	switch op {
	case isa.OpAtomCAS:
		return backing.CAS64(addr, b2, c)
	case isa.OpAtomExch:
		return backing.Exch64(addr, b2)
	case isa.OpAtomAdd:
		return backing.Add64(addr, b2)
	}
	panic(fmt.Sprintf("mem: bad atomic op %s", op))
}

func (b *L2Bank) respond(cycle uint64, coreID int, payload any) {
	b.out.send(cycle+b.accessLat, b.coreTile(coreID), noc.PortCore, payload)
}

// Owner exposes the directory for tests.
func (b *L2Bank) Owner(line uint64) (int, bool) {
	c, ok := b.owner[line]
	return c, ok
}

// Quiesced reports no queued work, in-flight fills, or undelivered
// responses.
func (b *L2Bank) Quiesced() bool {
	return len(b.inQ) == 0 && len(b.pending) == 0 && b.out.pending() == 0
}

// NextEvent implements the engine's skip-ahead extension: the earliest
// cycle after now at which the bank can process a queued message (once its
// occupancy window ends) or inject a due response. In-flight memory fills
// re-arm the bank through Deliver and are therefore external.
func (b *L2Bank) NextEvent(now uint64) uint64 {
	next := b.out.nextDue()
	if len(b.inQ) > 0 {
		t := b.busyUntil
		if t < now+1 {
			t = now + 1
		}
		if t < next {
			next = t
		}
	}
	if next != noEvent && next <= now {
		return now + 1
	}
	return next
}

// Diagnose describes pending work for engine deadlock dumps.
func (b *L2Bank) Diagnose() string {
	return fmt.Sprintf("inq=%d fills=%d out=%d", len(b.inQ), len(b.pending), b.out.pending())
}
