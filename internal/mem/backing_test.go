package mem

import (
	"testing"
	"testing/quick"
)

func TestBackingBasics(t *testing.T) {
	b := NewBacking()
	if b.Load64(0x100) != 0 {
		t.Fatal("unwritten word not zero")
	}
	b.Store64(0x100, 42)
	if b.Load64(0x100) != 42 {
		t.Fatal("store/load roundtrip failed")
	}
	// Sub-word addresses alias the containing 8-byte word.
	if b.Load64(0x103) != 42 {
		t.Fatal("unaligned load did not alias the word")
	}
	b.Store64(0x107, 7)
	if b.Load64(0x100) != 7 {
		t.Fatal("unaligned store did not alias the word")
	}
	if b.Footprint() != 1 {
		t.Fatalf("footprint = %d, want 1", b.Footprint())
	}
}

func TestBackingAtomics(t *testing.T) {
	b := NewBacking()
	b.Store64(8, 10)
	if old := b.Add64(8, 5); old != 10 || b.Load64(8) != 15 {
		t.Fatalf("Add64: old=%d now=%d", old, b.Load64(8))
	}
	if old := b.CAS64(8, 99, 1); old != 15 || b.Load64(8) != 15 {
		t.Fatalf("failed CAS mutated: old=%d now=%d", old, b.Load64(8))
	}
	if old := b.CAS64(8, 15, 1); old != 15 || b.Load64(8) != 1 {
		t.Fatalf("successful CAS: old=%d now=%d", old, b.Load64(8))
	}
	if old := b.Exch64(8, 77); old != 1 || b.Load64(8) != 77 {
		t.Fatalf("Exch64: old=%d now=%d", old, b.Load64(8))
	}
}

// TestBackingAtomicProperties: CAS succeeds exactly when cmp matches, Add
// is a fetch-add, and distinct words never interfere.
func TestBackingAtomicProperties(t *testing.T) {
	prop := func(addr1, addr2, v1, v2, delta uint64) bool {
		addr1, addr2 = addr1&^7, addr2&^7
		if addr1 == addr2 {
			return true
		}
		b := NewBacking()
		b.Store64(addr1, v1)
		b.Store64(addr2, v2)
		if got := b.Add64(addr1, delta); got != v1 {
			return false
		}
		if b.Load64(addr1) != v1+delta || b.Load64(addr2) != v2 {
			return false
		}
		old := b.CAS64(addr2, v2, delta)
		return old == v2 && b.Load64(addr2) == delta
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
