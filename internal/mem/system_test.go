// Integration tests for the memory system: CoreMem + L2 banks + mesh +
// memory controller under both coherence policies. The external test
// package lets these tests use internal/coherence without a dependency
// cycle.
package mem_test

import (
	"testing"

	"gsi/internal/coherence"
	"gsi/internal/core"
	"gsi/internal/isa"
	"gsi/internal/mem"
	"gsi/internal/sim"
)

// harness wires a small system and drives it cycle by cycle.
type harness struct {
	t     *testing.T
	sys   *mem.System
	eng   *sim.Engine
	loads []loadDone
	acks  []uint64
	atoms []atomDone
}

type loadDone struct {
	core  int
	t     mem.Target
	where core.DataWhere
}

type atomDone struct {
	core int
	op   mem.AtomicOp
	old  uint64
}

func newHarness(t *testing.T, gpuPolicy mem.Policy) *harness {
	t.Helper()
	cfg := sim.Default()
	cfg.NumSMs = 3 // cores 0..2 GPU, core 3 CPU
	sys, err := mem.NewSystem(cfg, coherence.PoliciesFor(cfg.NumSMs, gpuPolicy))
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, sys: sys, eng: sim.NewEngine()}
	// The tests poke CoreMems directly between steps with no wake wiring,
	// so drive the system densely as one compound component.
	h.eng.SetDense(true)
	h.eng.Register("mem", sim.TickFunc(sys.Tick))
	for i, cm := range sys.Cores {
		i := i
		cm.OnLoadDone = func(tg mem.Target, w core.DataWhere) {
			h.loads = append(h.loads, loadDone{core: i, t: tg, where: w})
		}
		cm.OnWriteAck = func(line uint64) { h.acks = append(h.acks, line) }
		cm.OnAtomicDone = func(op mem.AtomicOp, old uint64) {
			h.atoms = append(h.atoms, atomDone{core: i, op: op, old: old})
		}
	}
	return h
}

// now is the cycle a component would have observed at its most recent tick
// — the reference cycle for direct calls made between engine steps.
func (h *harness) now() uint64 { return h.eng.LastTick() }

func (h *harness) run(n uint64) {
	for i := uint64(0); i < n; i++ {
		h.eng.Step()
	}
}

func (h *harness) quiesce() {
	h.t.Helper()
	if _, err := h.eng.Run(h.sys.Quiesced, 100_000); err != nil {
		h.t.Fatal(err)
	}
}

func (h *harness) lastLoad() loadDone {
	h.t.Helper()
	if len(h.loads) == 0 {
		h.t.Fatal("no load completions")
	}
	return h.loads[len(h.loads)-1]
}

const testLine = uint64(0x4_0000)

func TestLoadMissServicedAtMemoryThenL2(t *testing.T) {
	h := newHarness(t, coherence.GPUCoherence{})
	cm := h.sys.Cores[0]
	if out := cm.Load(testLine, mem.Target{Load: 1}, h.now()); out != mem.LoadMiss {
		t.Fatalf("first load outcome = %v", out)
	}
	h.quiesce()
	if ld := h.lastLoad(); ld.where != core.WhereMemory {
		t.Fatalf("cold miss serviced at %s", ld.where)
	}
	// Now cached locally: hit.
	if out := cm.Load(testLine, mem.Target{Load: 2}, h.now()); out != mem.LoadHit {
		t.Fatalf("second load outcome = %v", out)
	}
	// After self-invalidation, the L2 still has it.
	cm.SelfInvalidate()
	if out := cm.Load(testLine, mem.Target{Load: 3}, h.now()); out != mem.LoadMiss {
		t.Fatalf("post-invalidate load outcome = %v", out)
	}
	h.quiesce()
	if ld := h.lastLoad(); ld.where != core.WhereL2 {
		t.Fatalf("warm miss serviced at %s, want L2", ld.where)
	}
}

func TestMSHRMergeChargedAsCoalescing(t *testing.T) {
	h := newHarness(t, coherence.GPUCoherence{})
	cm := h.sys.Cores[0]
	if out := cm.Load(testLine, mem.Target{Load: 1}, h.now()); out != mem.LoadMiss {
		t.Fatal("expected miss")
	}
	if out := cm.Load(testLine+8, mem.Target{Load: 2}, h.now()); out != mem.LoadMerged {
		t.Fatalf("same-line load outcome = %v, want merge", out)
	}
	h.quiesce()
	if len(h.loads) != 2 {
		t.Fatalf("completions = %d", len(h.loads))
	}
	wheres := map[core.LoadID]core.DataWhere{}
	for _, ld := range h.loads {
		wheres[ld.t.Load] = ld.where
	}
	if wheres[1] != core.WhereMemory || wheres[2] != core.WhereL1Coalescing {
		t.Fatalf("wheres = %v", wheres)
	}
}

func TestMSHRCapacity(t *testing.T) {
	h := newHarness(t, coherence.GPUCoherence{})
	cm := h.sys.Cores[0]
	lineSize := uint64(h.sys.Cfg.LineSize)
	for i := 0; i < h.sys.Cfg.MSHREntries; i++ {
		if out := cm.Load(testLine+uint64(i)*lineSize, mem.Target{Load: core.LoadID(i + 1)}, h.now()); out != mem.LoadMiss {
			t.Fatalf("load %d outcome = %v", i, out)
		}
	}
	if out := cm.Load(testLine+uint64(h.sys.Cfg.MSHREntries)*lineSize, mem.Target{Load: 999}, h.now()); out != mem.LoadMSHRFull {
		t.Fatalf("over-capacity load outcome = %v, want MSHR full", out)
	}
	if cm.MSHRFree() != 0 {
		t.Fatalf("MSHRFree = %d", cm.MSHRFree())
	}
	h.quiesce()
	if cm.MSHRFree() != h.sys.Cfg.MSHREntries {
		t.Fatalf("MSHRFree after drain = %d", cm.MSHRFree())
	}
}

func TestStoreBufferWriteCombiningAndCapacity(t *testing.T) {
	h := newHarness(t, coherence.GPUCoherence{})
	cm := h.sys.Cores[0]
	lineSize := uint64(h.sys.Cfg.LineSize)
	// Two stores to the same line use one entry.
	if cm.Store(testLine, h.now()) != mem.StoreOK || cm.Store(testLine+8, h.now()) != mem.StoreOK {
		t.Fatal("stores rejected")
	}
	if cm.SBLen() != 1 {
		t.Fatalf("SBLen = %d, want 1 (write combining)", cm.SBLen())
	}
	for i := 1; i < h.sys.Cfg.StoreBufEntries; i++ {
		if cm.Store(testLine+uint64(i)*lineSize, h.now()) != mem.StoreOK {
			t.Fatalf("store %d rejected", i)
		}
	}
	// Buffer full: the next store is refused and triggers a flush.
	if out := cm.Store(testLine+uint64(64)*lineSize, h.now()); out != mem.StoreSBFull {
		t.Fatalf("over-capacity store outcome = %v", out)
	}
	if !cm.Flushing() {
		t.Fatal("full store buffer did not trigger a flush")
	}
	h.quiesce()
	if cm.SBLen() != 0 {
		t.Fatalf("SBLen after flush = %d", cm.SBLen())
	}
}

func TestReleaseBlocksStoresUntilFlushed(t *testing.T) {
	h := newHarness(t, coherence.GPUCoherence{})
	cm := h.sys.Cores[0]
	cm.Store(testLine, h.now())
	cm.Atomic(mem.AtomicOp{Warp: 0, Addr: 0x9000, AOp: isa.OpAtomExch, B: 0, Order: isa.Release}, h.now())
	h.run(2)
	if !cm.ReleaseInProgress() {
		t.Fatal("release flush not in progress")
	}
	if out := cm.Store(testLine+0x1000, h.now()); out != mem.StoreBlockedRelease {
		t.Fatalf("store during release = %v", out)
	}
	h.quiesce()
	if len(h.atoms) != 1 {
		t.Fatalf("atomic completions = %d", len(h.atoms))
	}
	if cm.ReleaseInProgress() {
		t.Fatal("release still in progress after quiesce")
	}
	if out := cm.Store(testLine+0x1000, h.now()); out != mem.StoreOK {
		t.Fatalf("store after release = %v", out)
	}
}

func TestSFIFOAllowsStoresDuringRelease(t *testing.T) {
	h := newHarness(t, coherence.GPUCoherence{})
	cm := h.sys.Cores[0]
	cm.SFIFO = true
	cm.Store(testLine, h.now())
	cm.Atomic(mem.AtomicOp{Warp: 0, Addr: 0x9000, AOp: isa.OpAtomExch, Order: isa.Release}, h.now())
	h.run(2)
	if !cm.ReleaseInProgress() {
		t.Fatal("release flush not in progress")
	}
	if out := cm.Store(testLine+0x1000, h.now()); out != mem.StoreOK {
		t.Fatalf("S-FIFO store during release = %v", out)
	}
	// The new entry is not covered by the in-flight release; a kernel-end
	// flush drains it.
	for cm.Flushing() {
		h.run(1)
	}
	cm.FlushAll()
	h.quiesce()
	if cm.SBLen() != 0 {
		t.Fatalf("SBLen = %d after final flush", cm.SBLen())
	}
}

func TestGPUCoherenceFlushWritesThrough(t *testing.T) {
	h := newHarness(t, coherence.GPUCoherence{})
	cm := h.sys.Cores[0]
	cm.Store(testLine, h.now())
	cm.FlushAll()
	h.quiesce()
	if cm.Stats.WriteThroughs != 1 || cm.Stats.OwnReqs != 0 {
		t.Fatalf("stats = %+v", cm.Stats)
	}
	if cm.LineStateOf(testLine) != mem.LineValid {
		t.Fatalf("line state = %v, want valid (clean)", cm.LineStateOf(testLine))
	}
	// GPU coherence: a clean line does not survive an acquire.
	cm.SelfInvalidate()
	if cm.LineStateOf(testLine) != mem.LineInvalid {
		t.Fatal("clean line survived acquire under GPU coherence")
	}
}

func TestDeNovoFlushRegistersOwnership(t *testing.T) {
	h := newHarness(t, coherence.DeNovo{})
	cm := h.sys.Cores[0]
	cm.Store(testLine, h.now())
	cm.FlushAll()
	h.quiesce()
	if cm.Stats.OwnReqs != 1 || cm.Stats.WriteThroughs != 0 {
		t.Fatalf("stats = %+v", cm.Stats)
	}
	if cm.LineStateOf(testLine) != mem.LineOwned {
		t.Fatalf("line state = %v, want owned", cm.LineStateOf(testLine))
	}
	bank := h.sys.Banks[h.sys.BankTile(testLine)]
	if owner, ok := bank.Owner(testLine); !ok || owner != 0 {
		t.Fatalf("directory owner = %d, %v", owner, ok)
	}
	// Owned lines survive acquires: the DeNovo reuse advantage.
	cm.SelfInvalidate()
	if cm.LineStateOf(testLine) != mem.LineOwned {
		t.Fatal("owned line did not survive acquire")
	}
	// Re-flushing an owned line is free (no message).
	cm.Store(testLine, h.now())
	cm.FlushAll()
	h.quiesce()
	if cm.Stats.OwnReqs != 1 {
		t.Fatalf("re-flush sent another ownership request: %+v", cm.Stats)
	}
	if cm.Stats.FlushNoops != 1 {
		t.Fatalf("FlushNoops = %d, want 1", cm.Stats.FlushNoops)
	}
}

func TestDeNovoRemoteL1Forwarding(t *testing.T) {
	h := newHarness(t, coherence.DeNovo{})
	owner, reader := h.sys.Cores[1], h.sys.Cores[2]
	owner.Store(testLine, h.now())
	owner.FlushAll()
	h.quiesce()
	if out := reader.Load(testLine, mem.Target{Load: 7}, h.now()); out != mem.LoadMiss {
		t.Fatalf("reader load outcome = %v", out)
	}
	h.quiesce()
	if ld := h.lastLoad(); ld.core != 2 || ld.where != core.WhereRemoteL1 {
		t.Fatalf("remote read = %+v, want remote L1 at core 2", ld)
	}
	if owner.Stats.RemoteServed != 1 {
		t.Fatalf("owner served %d remote reads", owner.Stats.RemoteServed)
	}
	// Ownership did not move on a read.
	bank := h.sys.Banks[h.sys.BankTile(testLine)]
	if o, _ := bank.Owner(testLine); o != 1 {
		t.Fatalf("owner after read = %d, want 1", o)
	}
}

func TestDeNovoOwnershipTransfer(t *testing.T) {
	h := newHarness(t, coherence.DeNovo{})
	a, b := h.sys.Cores[0], h.sys.Cores[1]
	a.Store(testLine, h.now())
	a.FlushAll()
	h.quiesce()
	b.Store(testLine, h.now())
	b.FlushAll()
	h.quiesce()
	bank := h.sys.Banks[h.sys.BankTile(testLine)]
	if o, _ := bank.Owner(testLine); o != 1 {
		t.Fatalf("owner = %d, want 1", o)
	}
	if a.LineStateOf(testLine) != mem.LineInvalid {
		t.Fatal("previous owner kept the line")
	}
	if b.LineStateOf(testLine) != mem.LineOwned {
		t.Fatal("new owner not owned")
	}
}

func TestDeNovoOwnedEvictionWritesBack(t *testing.T) {
	h := newHarness(t, coherence.DeNovo{})
	cm := h.sys.Cores[0]
	cm.Store(testLine, h.now())
	cm.FlushAll()
	h.quiesce()
	// Fill the set until the owned line is evicted. Set count =
	// L1Size/(assoc*lineSize); lines that alias testLine's set are
	// setStride apart.
	cfg := h.sys.Cfg
	setStride := uint64(cfg.L1Size / cfg.L1Assoc)
	for i := 1; i <= cfg.L1Assoc; i++ {
		cm.Load(testLine+uint64(i)*setStride, mem.Target{Load: core.LoadID(i)}, h.now())
		h.quiesce()
	}
	if cm.LineStateOf(testLine) != mem.LineInvalid {
		t.Fatal("owned line not evicted by set pressure")
	}
	if cm.Stats.OwnedEvicts != 1 {
		t.Fatalf("OwnedEvicts = %d", cm.Stats.OwnedEvicts)
	}
	bank := h.sys.Banks[h.sys.BankTile(testLine)]
	if _, ok := bank.Owner(testLine); ok {
		t.Fatal("directory still records evicted owner")
	}
	// A third core's read is now serviced at the L2, not forwarded.
	h.sys.Cores[2].Load(testLine, mem.Target{Load: 99}, h.now())
	h.quiesce()
	if ld := h.lastLoad(); ld.where != core.WhereL2 {
		t.Fatalf("post-eviction read serviced at %s, want L2", ld.where)
	}
}

func TestAtomicsExecuteAtL2(t *testing.T) {
	h := newHarness(t, coherence.DeNovo{})
	addr := uint64(0x8000)
	h.sys.Backing.Store64(addr, 5)
	h.sys.Cores[0].Atomic(mem.AtomicOp{Warp: 3, Rd: 9, Addr: addr, AOp: isa.OpAtomAdd, B: 2}, h.now())
	h.quiesce()
	if len(h.atoms) != 1 {
		t.Fatalf("atomic completions = %d", len(h.atoms))
	}
	got := h.atoms[0]
	if got.old != 5 || got.op.Warp != 3 || got.op.Rd != 9 {
		t.Fatalf("atomic completion = %+v", got)
	}
	if h.sys.Backing.Load64(addr) != 7 {
		t.Fatalf("backing = %d, want 7", h.sys.Backing.Load64(addr))
	}
	bank := h.sys.Banks[h.sys.BankTile(addr)]
	if bank.Atomics != 1 {
		t.Fatalf("bank atomics = %d", bank.Atomics)
	}
}

func TestAcquireAtomicSelfInvalidates(t *testing.T) {
	h := newHarness(t, coherence.GPUCoherence{})
	cm := h.sys.Cores[0]
	cm.Load(testLine, mem.Target{Load: 1}, h.now())
	h.quiesce()
	if cm.LineStateOf(testLine) != mem.LineValid {
		t.Fatal("line not cached")
	}
	cm.Atomic(mem.AtomicOp{Warp: 0, Addr: 0x8000, AOp: isa.OpAtomCAS, Order: isa.Acquire}, h.now())
	h.quiesce()
	if cm.LineStateOf(testLine) != mem.LineInvalid {
		t.Fatal("acquire atomic did not self-invalidate")
	}
}

func TestQuiescence(t *testing.T) {
	h := newHarness(t, coherence.DeNovo{})
	if !h.sys.Quiesced() {
		t.Fatal("fresh system not quiesced")
	}
	h.sys.Cores[0].Load(testLine, mem.Target{Load: 1}, h.now())
	if h.sys.Quiesced() {
		t.Fatal("system quiesced with a miss in flight")
	}
	h.quiesce()
}
