package mem

import (
	"fmt"

	"gsi/internal/noc"
	"gsi/internal/sim"
)

// System wires the full memory side of the simulated chip: the mesh, one
// CoreMem per core (SMs then the CPU), one L2 bank per tile, and the memory
// controller. Core i sits at tile CoreTile(i); L2 bank b sits at tile b.
type System struct {
	Cfg     sim.Config
	Backing *Backing
	Mesh    *noc.Mesh
	Ctrl    *MemCtrl
	Cores   []*CoreMem
	Banks   []*L2Bank

	coreTiles []int
	tileCore  []int // tile -> core id, or -1
}

// NewSystem builds the memory system. policies supplies one coherence
// policy per core (index = core id); the paper's configurations give GPU
// cores the protocol under study and the CPU DeNovo.
func NewSystem(cfg sim.Config, policies []Policy) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(policies) != cfg.NumCores() {
		return nil, fmt.Errorf("mem: %d policies for %d cores", len(policies), cfg.NumCores())
	}
	s := &System{
		Cfg:     cfg,
		Backing: NewBacking(),
		Ctrl:    NewMemCtrl(cfg.MemLat, cfg.MemBandwidthCycles),
	}
	tiles := cfg.MeshWidth * cfg.MeshHeight
	s.coreTiles = make([]int, cfg.NumCores())
	s.tileCore = make([]int, tiles)
	for i := range s.tileCore {
		s.tileCore[i] = -1
	}
	for i := 0; i < cfg.NumCores(); i++ {
		t := i * tiles / cfg.NumCores()
		s.coreTiles[i] = t
		s.tileCore[t] = i
	}
	s.Mesh = noc.New(cfg.MeshWidth, cfg.MeshHeight, cfg.LinkLat, cfg.RouterLat, s.deliver)
	// Express routing stays off in dense mode so the reference loop always
	// exercises the per-hop pipeline the engine diff tests compare against.
	s.Mesh.SetExpress(cfg.Express && cfg.EngineMode() != sim.EngineDense)

	s.Banks = make([]*L2Bank, cfg.L2Banks)
	for b := range s.Banks {
		s.Banks[b] = NewL2Bank(b, cfg.L2Size/cfg.L2Banks, cfg.L2Assoc,
			cfg.LineSize, cfg.L2AccessLat, s.Backing, s.Ctrl, s.Mesh, s.CoreTile)
	}
	s.Cores = make([]*CoreMem, cfg.NumCores())
	for c := range s.Cores {
		s.Cores[c] = NewCoreMem(CoreMemConfig{
			CoreID:   c,
			Tile:     s.coreTiles[c],
			LineSize: cfg.LineSize,
			L1Size:   cfg.L1Size,
			L1Assoc:  cfg.L1Assoc,
			MSHRCap:  cfg.MSHREntries,
			SBCap:    cfg.StoreBufEntries,
			Policy:   policies[c],
			Backing:  s.Backing,
			Mesh:     s.Mesh,
			BankTile: s.BankTile,
			CoreTile: s.CoreTile,
		})
	}
	return s, nil
}

// deliver is the mesh ejection handler.
func (s *System) deliver(cycle uint64, tile int, port noc.Port, payload any) {
	if port == noc.PortL2 {
		s.Banks[tile%len(s.Banks)].Deliver(payload)
		return
	}
	c := s.tileCore[tile]
	if c < 0 {
		panic(fmt.Sprintf("mem: message for core port of coreless tile %d", tile))
	}
	// The mesh ticks before the cores within a cycle, so a delivered
	// message finds the core as its previous tick left it; passing
	// cycle-1 keeps the core's timestamps identical whether or not it
	// actually ticked every intervening cycle. (No message can be in
	// flight before cycle 1, so the subtraction cannot underflow in a
	// driven system; guard anyway for robustness.)
	now := cycle
	if now > 0 {
		now--
	}
	s.Cores[c].Deliver(payload, now)
}

// BankTile maps a line address to its home bank's tile (line interleaved).
func (s *System) BankTile(line uint64) int {
	return int((line / uint64(s.Cfg.LineSize)) % uint64(len(s.Banks)))
}

// CoreTile maps a core id to its tile.
func (s *System) CoreTile(core int) int { return s.coreTiles[core] }

// Attach registers every memory-side unit with the scheduling engine, in
// the same order a dense System.Tick evaluates them (mesh, controller,
// banks, cores), and wires each unit's wake callback to its engine handle
// so idle units stop ticking until a message, fill, or flush re-arms them.
//
// The mesh, the controller, and the banks are hub components — they
// exchange work with every core in the same cycle, so the parallel engine
// ticks them in its serial phase. Core i's memory unit joins tick group i,
// pairing it with SM i (gpu.Run registers the SMs into the same groups);
// the CPU's unit gets the group after the last SM to itself. Under the
// parallel engine the cores' outboxes run staged so mesh injection happens
// in the commit phase.
func (s *System) Attach(eng *sim.Engine) {
	parallel := s.Cfg.EngineMode() == sim.EngineParallel
	s.Mesh.SetWaker(eng.Register("mesh", s.Mesh).Wake)
	s.Ctrl.SetWaker(eng.Register("memctrl", s.Ctrl).Wake)
	for i, b := range s.Banks {
		b.SetWaker(eng.Register(fmt.Sprintf("l2b%d", i), b).Wake)
	}
	for i, c := range s.Cores {
		c.SetStaged(parallel)
		c.SetWaker(eng.RegisterGroup(fmt.Sprintf("core%d", i), c, i).Wake)
	}
}

// Tick advances the whole memory side one cycle: mesh delivery first, then
// the memory controller, the banks, and the per-core units, in fixed order.
// It is the dense compound form of Attach's per-unit registration, kept for
// calibration probes and tests that drive the system as a single component;
// it reports whether any unit still has tick work.
func (s *System) Tick(cycle uint64) bool {
	busy := s.Mesh.Tick(cycle)
	if s.Ctrl.Tick(cycle) {
		busy = true
	}
	for _, b := range s.Banks {
		if b.Tick(cycle) {
			busy = true
		}
	}
	for _, c := range s.Cores {
		if c.Tick(cycle) {
			busy = true
		}
	}
	return busy
}

// Quiesced reports that no request, response, flush, or fill is in flight
// anywhere in the memory system.
func (s *System) Quiesced() bool {
	if !s.Mesh.Quiesced() || s.Ctrl.Pending() != 0 {
		return false
	}
	for _, b := range s.Banks {
		if !b.Quiesced() {
			return false
		}
	}
	for _, c := range s.Cores {
		if !c.Quiesced() {
			return false
		}
	}
	return true
}
