package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"gsi/internal/core"
)

// HTML timeline export: a single self-contained page — embedded JSON data,
// inline styles, inline vanilla-JS canvas renderer, no external assets or
// network references — in the spirit of Daisen's interactive component
// timelines. One row per SM plus engine-jump and express-mesh rows;
// wheel-zoom around the cursor, drag to pan, per-kind filter checkboxes,
// and hover detail showing kind, sub-cause, and span extent.

// kindCSSColors maps stall kinds to the page's palette (CSS colors).
var kindCSSColors = [core.NumStallKinds]string{
	core.NoStall:        "#2e7d32",
	core.Idle:           "#9e9e9e",
	core.Control:        "#fbc02d",
	core.Sync:           "#1565c0",
	core.MemData:        "#ef6c00",
	core.MemStructural:  "#c62828",
	core.CompData:       "#6a1b9a",
	core.CompStructural: "#827717",
}

// htmlData is the JSON document embedded in the page.
type htmlData struct {
	Kinds   []string    `json:"kinds"`
	Colors  []string    `json:"colors"`
	End     uint64      `json:"end"`
	SMs     [][][4]any  `json:"sms"`     // per SM: [start, cycles, kindIdx, subCause]
	Jumps   [][2]uint64 `json:"jumps"`   // [from, to]
	Express [][2]uint64 `json:"express"` // [inject, deliverAt]
	Dropped uint64      `json:"dropped"` // total dropped events across buffers
}

// WriteHTML writes the interactive timeline as one self-contained HTML
// document.
func (c *Collector) WriteHTML(w io.Writer) error {
	kinds := core.StallKinds()
	data := htmlData{
		Kinds:  make([]string, len(kinds)),
		Colors: make([]string, len(kinds)),
		End:    c.EndCycle(),
		SMs:    make([][][4]any, len(c.sms)),
	}
	for i, k := range kinds {
		data.Kinds[i] = k.String()
		data.Colors[i] = kindCSSColors[k]
	}
	for sm := range c.sms {
		rows := make([][4]any, 0, len(c.sms[sm].spans))
		for _, s := range c.sms[sm].spans {
			rows = append(rows, [4]any{s.Start, s.Cycles, int(s.Class.Kind), c.SubCause(sm, s)})
		}
		data.SMs[sm] = rows
	}
	data.Jumps = make([][2]uint64, 0, len(c.jumps))
	for _, j := range c.jumps {
		data.Jumps = append(data.Jumps, [2]uint64{j.From, j.To})
	}
	data.Express = make([][2]uint64, 0, len(c.deliveries))
	for _, d := range c.deliveries {
		data.Express = append(data.Express, [2]uint64{d.Inject, d.At})
	}
	sd, jd, pd, ed, ld := c.Dropped()
	data.Dropped = sd + jd + pd + ed + ld

	doc, err := json.Marshal(data)
	if err != nil {
		return err
	}
	// "</" never appears inside a script element's data: close-tag scanning
	// is the one place embedded JSON can break the page.
	safe := strings.ReplaceAll(string(doc), "</", "<\\/")

	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, htmlPage, safe); err != nil {
		return err
	}
	return bw.Flush()
}

// htmlPage is the page template; the single %s is the embedded JSON.
const htmlPage = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>gsi stall timeline</title>
<style>
body { margin: 0; font: 13px monospace; background: #111; color: #ddd; }
#bar { padding: 6px 10px; background: #1c1c1c; border-bottom: 1px solid #333; }
#bar label { margin-right: 10px; cursor: pointer; white-space: nowrap; }
#bar .sw { display: inline-block; width: 10px; height: 10px; margin-right: 3px; }
#hint { color: #888; margin-left: 12px; }
#wrap { position: relative; }
canvas { display: block; width: 100vw; cursor: crosshair; }
#tip { position: absolute; display: none; pointer-events: none; background: #222;
      border: 1px solid #555; padding: 4px 7px; z-index: 2; }
</style>
</head>
<body>
<div id="bar"></div>
<div id="wrap"><canvas id="cv"></canvas><div id="tip"></div></div>
<script id="trace-data" type="application/json">
%s
</script>
<script>
"use strict";
var D = JSON.parse(document.getElementById("trace-data").textContent);
var rows = [];
for (var i = 0; i < D.sms.length; i++) rows.push({label: "SM" + i, spans: D.sms[i]});
rows.push({label: "jumps", jumps: D.jumps});
rows.push({label: "express", express: D.express});
var show = D.kinds.map(function(){ return true; });
var v0 = 0, v1 = Math.max(D.end, 1);
var ROW = 18, LEFT = 64, TOP = 8;
var cv = document.getElementById("cv"), cx = cv.getContext("2d");
var tip = document.getElementById("tip");

var bar = document.getElementById("bar");
D.kinds.forEach(function(k, i) {
  var lab = document.createElement("label");
  var cb = document.createElement("input");
  cb.type = "checkbox"; cb.checked = true;
  cb.onchange = function(){ show[i] = cb.checked; draw(); };
  var sw = document.createElement("span");
  sw.className = "sw"; sw.style.background = D.colors[i];
  lab.appendChild(cb); lab.appendChild(sw);
  lab.appendChild(document.createTextNode(k));
  bar.appendChild(lab);
});
var hint = document.createElement("span");
hint.id = "hint";
hint.textContent = "wheel: zoom   drag: pan" + (D.dropped ? "   (" + D.dropped + " events dropped at buffer caps)" : "");
bar.appendChild(hint);

function resize() {
  var h = TOP * 2 + rows.length * ROW;
  cv.width = window.innerWidth * devicePixelRatio;
  cv.height = h * devicePixelRatio;
  cv.style.height = h + "px";
  draw();
}
function xOf(t) { return LEFT + (t - v0) / (v1 - v0) * (window.innerWidth - LEFT); }
function tOf(x) { return v0 + (x - LEFT) / (window.innerWidth - LEFT) * (v1 - v0); }

function draw() {
  cx.setTransform(devicePixelRatio, 0, 0, devicePixelRatio, 0, 0);
  cx.clearRect(0, 0, window.innerWidth, cv.height);
  cx.fillStyle = "#111";
  cx.fillRect(0, 0, window.innerWidth, cv.height);
  rows.forEach(function(r, ri) {
    var y = TOP + ri * ROW;
    cx.fillStyle = "#888";
    cx.fillText(r.label, 4, y + 12);
    if (r.spans) {
      for (var i = 0; i < r.spans.length; i++) {
        var s = r.spans[i];
        if (!show[s[2]] || s[0] + s[1] < v0 || s[0] > v1) continue;
        var x0 = Math.max(xOf(s[0]), LEFT), x1 = xOf(s[0] + s[1]);
        cx.fillStyle = D.colors[s[2]];
        cx.fillRect(x0, y + 2, Math.max(x1 - x0, 0.5), ROW - 5);
      }
    } else {
      var evs = r.jumps || r.express;
      cx.fillStyle = r.jumps ? "#00acc1" : "#7cb342";
      for (var j = 0; j < evs.length; j++) {
        var e = evs[j];
        if (e[1] < v0 || e[0] > v1) continue;
        var a = Math.max(xOf(e[0]), LEFT), b = xOf(e[1]);
        cx.fillRect(a, y + 6, Math.max(b - a, 1), ROW - 12);
      }
    }
  });
  cx.fillStyle = "#666";
  cx.fillText(Math.round(v0) + " .. " + Math.round(v1) + " cycles", LEFT, cv.height / devicePixelRatio - 2);
}

cv.addEventListener("wheel", function(ev) {
  ev.preventDefault();
  var t = tOf(ev.clientX), f = ev.deltaY > 0 ? 1.25 : 0.8;
  var w = (v1 - v0) * f;
  if (w < 4) w = 4;
  if (w > D.end * 2 + 2) w = D.end * 2 + 2;
  v0 = t - (t - v0) * (w / (v1 - v0));
  v1 = v0 + w;
  draw();
}, {passive: false});

var dragX = null;
cv.addEventListener("mousedown", function(ev){ dragX = ev.clientX; });
window.addEventListener("mouseup", function(){ dragX = null; });
cv.addEventListener("mousemove", function(ev) {
  if (dragX !== null) {
    var dt = (dragX - ev.clientX) / (window.innerWidth - LEFT) * (v1 - v0);
    v0 += dt; v1 += dt; dragX = ev.clientX;
    draw(); return;
  }
  var ri = Math.floor((ev.offsetY - TOP) / ROW), t = tOf(ev.clientX);
  var txt = "";
  if (ri >= 0 && ri < rows.length) {
    var r = rows[ri];
    if (r.spans) {
      for (var i = 0; i < r.spans.length; i++) {
        var s = r.spans[i];
        if (t >= s[0] && t < s[0] + s[1] && show[s[2]]) {
          txt = r.label + ": " + D.kinds[s[2]] + (s[3] ? " (" + s[3] + ")" : "") +
                " @" + s[0] + " for " + s[1] + " cycles";
          break;
        }
      }
    } else {
      var evs = r.jumps || r.express;
      for (var j = 0; j < evs.length; j++) {
        if (t >= evs[j][0] && t <= evs[j][1]) {
          txt = r.label + ": " + evs[j][0] + " to " + evs[j][1] +
                " (" + (evs[j][1] - evs[j][0]) + " cycles)";
          break;
        }
      }
    }
  }
  if (txt) {
    tip.style.display = "block";
    tip.style.left = (ev.clientX + 14) + "px";
    tip.style.top = (ev.offsetY + 14) + "px";
    tip.textContent = txt;
  } else {
    tip.style.display = "none";
  }
});
cv.addEventListener("mouseleave", function(){ tip.style.display = "none"; });

window.addEventListener("resize", resize);
resize();
</script>
</body>
</html>
`
