// Package trace records structured events during a simulation run for
// post-hoc visualization: per-SM stall spans straight from the Inspector's
// classification stream, skip-engine clock jumps, express mesh deliveries
// and demotions, and the parallel engine's per-phase wall times. The
// Collector is nil-by-default in every instrumented path — the engine, the
// mesh, and the Inspector each test a single pointer before forwarding —
// so a run without tracing pays nothing, and a run with tracing produces
// the byte-identical Report (the collector only observes; it never touches
// simulation state).
//
// Two exporters sit on top of the collected events: WriteChromeTrace emits
// Chrome trace-event JSON loadable in Perfetto (one track per SM plus
// engine and mesh tracks), and WriteHTML emits a single self-contained
// interactive timeline page with zoom, per-kind filtering, and hover
// detail.
//
// Every event buffer is bounded: a pathological run cannot grow the
// collector without limit. Overflow is never silent — each buffer keeps a
// dropped-event counter that both exporters surface in their metadata.
package trace

import "gsi/internal/core"

// Buffer bounds. Spans dominate memory, so they get the largest budget;
// phase samples are per-parallel-tick and capped hardest.
const (
	maxSpansPerSM = 1 << 20
	maxLoadsPerSM = 1 << 20
	maxJumps      = 1 << 16
	maxPhases     = 1 << 13
	maxExpress    = 1 << 16
)

// Span is one run of consecutive cycles with a single classification on one
// SM: [Start, Start+Cycles) all classified Class. Consecutive identical
// classifications are coalesced at record time, so a long stall window is
// one span regardless of which engine credited it (per-cycle or in bulk).
type Span struct {
	// Start is the first cycle of the span (absolute, per-SM cycle index).
	Start uint64
	// Cycles is the span width.
	Cycles uint64
	// Class is the full classification, including the sub-cause payload
	// (pending load, structural cause, compute unit).
	Class core.CycleClass
}

// JumpEvent is one skip-ahead clock jump: the engine advanced the clock
// from From straight to To, crediting the window in bulk.
type JumpEvent struct {
	From, To uint64
}

// PhaseSample attributes one parallel tick pass's wall time to its three
// phases (serial hub prefix, concurrent group phase, registration-order
// commit).
type PhaseSample struct {
	// Cycle is the simulated cycle the pass executed.
	Cycle uint64
	// HubNs, GroupNs, and CommitNs are the phases' wall times.
	HubNs, GroupNs, CommitNs int64
}

// ExpressEvent is one express-routing event on the mesh. For a delivery,
// At is the delivery cycle and Hops the full route length; for a demotion,
// At is the materialization cycle and Hops the hop index at which the flit
// re-entered the per-hop pipeline.
type ExpressEvent struct {
	// Inject is the cycle the message entered the mesh.
	Inject uint64
	// At is the delivery or materialization cycle.
	At uint64
	// Src and Dst are the route's endpoint tiles.
	Src, Dst int
	// Hops is the route length (delivery) or materialization hop (demotion).
	Hops int
}

// smTrack is one SM's event shard. Stall spans for one SM always arrive
// from one goroutine at a time (the engine serializes an SM's ticks even
// in parallel mode, with pool barriers providing the happens-before
// edges), so the shard needs no locking — the same argument that keeps the
// Inspector's per-SM pending maps race-free. The trailing pad keeps shards
// on distinct cache lines under the parallel engine.
type smTrack struct {
	pos     uint64 // cycles recorded so far; the next span's Start
	spans   []Span
	dropped uint64 // cycles dropped after the span cap
	loads   map[core.LoadID]core.DataWhere
	_       [16]byte
}

// Collector accumulates one run's events. The zero value is not usable:
// Begin must size the per-SM shards before the run starts (gsi.Run does
// this when Options.Trace is set). A Collector records one run at a time;
// Begin resets it for reuse.
type Collector struct {
	sms []smTrack

	// Engine- and mesh-side buffers. All of these are appended from the
	// engine goroutine only (jumps and phase samples by the engine itself,
	// express events by the mesh, which ticks in the serial hub phase), so
	// they need no locking either.
	jumps         []JumpEvent
	jumpsDropped  uint64
	phases        []PhaseSample
	phasesDropped uint64
	deliveries    []ExpressEvent
	demotions     []ExpressEvent
	exprDropped   uint64
	loadsDropped  uint64
}

// New returns an empty collector. Call Begin (or let gsi.Run call it)
// before recording.
func New() *Collector { return &Collector{} }

// Begin resets the collector for a run over numSMs SMs. It must be called
// single-threaded, before the run starts ticking.
func (c *Collector) Begin(numSMs int) {
	c.sms = make([]smTrack, numSMs)
	for i := range c.sms {
		c.sms[i].loads = make(map[core.LoadID]core.DataWhere)
	}
	c.jumps, c.phases, c.deliveries, c.demotions = nil, nil, nil, nil
	c.jumpsDropped, c.phasesDropped, c.exprDropped, c.loadsDropped = 0, 0, 0, 0
}

// StallSpan implements core.TraceSink: the Inspector forwards every
// recorded classification span. Consecutive spans with the identical full
// classification coalesce, so the span list reflects classification
// changes, not the engine's crediting granularity.
func (c *Collector) StallSpan(sm int, cc core.CycleClass, n uint64) {
	t := &c.sms[sm]
	start := t.pos
	t.pos += n
	if ln := len(t.spans); ln > 0 {
		last := &t.spans[ln-1]
		if last.Class == cc && last.Start+last.Cycles == start {
			last.Cycles += n
			return
		}
	}
	if len(t.spans) >= maxSpansPerSM {
		t.dropped += n
		return
	}
	t.spans = append(t.spans, Span{Start: start, Cycles: n, Class: cc})
}

// LoadResolved implements core.TraceSink: the Inspector forwards each load
// completion so MemData spans can resolve their service location at export
// time (deferred attribution — the location is unknown while the stall is
// being recorded).
func (c *Collector) LoadResolved(sm int, id core.LoadID, where core.DataWhere) {
	if id == 0 {
		return
	}
	t := &c.sms[sm]
	if len(t.loads) >= maxLoadsPerSM {
		if _, ok := t.loads[id]; !ok {
			c.loadsDropped++
			return
		}
	}
	t.loads[id] = where
}

// Jump implements sim.Observer: the engine jumped the clock from from to to.
func (c *Collector) Jump(from, to uint64) {
	if len(c.jumps) >= maxJumps {
		c.jumpsDropped++
		return
	}
	c.jumps = append(c.jumps, JumpEvent{From: from, To: to})
}

// TickPhases implements sim.Observer: one parallel tick pass's phase wall
// times. Only the first maxPhases passes are kept (the dropped counter
// records the rest); the early passes are where phase-imbalance questions
// usually live.
func (c *Collector) TickPhases(cycle uint64, hubNs, groupNs, commitNs int64) {
	if len(c.phases) >= maxPhases {
		c.phasesDropped++
		return
	}
	c.phases = append(c.phases, PhaseSample{Cycle: cycle, HubNs: hubNs, GroupNs: groupNs, CommitNs: commitNs})
}

// ExpressDelivery implements noc.Observer: a message's whole traversal was
// modeled as one timed event and delivered at cycle.
func (c *Collector) ExpressDelivery(cycle, inject uint64, src, dst, hops int) {
	if len(c.deliveries) >= maxExpress {
		c.exprDropped++
		return
	}
	c.deliveries = append(c.deliveries, ExpressEvent{Inject: inject, At: cycle, Src: src, Dst: dst, Hops: hops})
}

// ExpressDemotion implements noc.Observer: an express flit materialized
// back into the per-hop pipeline at hop, with queue-entry time at.
func (c *Collector) ExpressDemotion(at, inject uint64, src, dst, hop int) {
	if len(c.demotions) >= maxExpress {
		c.exprDropped++
		return
	}
	c.demotions = append(c.demotions, ExpressEvent{Inject: inject, At: at, Src: src, Dst: dst, Hops: hop})
}

// NumSMs returns the number of per-SM tracks (0 before Begin).
func (c *Collector) NumSMs() int { return len(c.sms) }

// Spans returns one SM's coalesced stall spans. The slice aliases the
// collector's buffer; treat it as read-only.
func (c *Collector) Spans(sm int) []Span { return c.sms[sm].spans }

// Jumps returns the recorded clock jumps (aliased, read-only).
func (c *Collector) Jumps() []JumpEvent { return c.jumps }

// Phases returns the recorded parallel-phase samples (aliased, read-only).
func (c *Collector) Phases() []PhaseSample { return c.phases }

// Deliveries returns the recorded express deliveries (aliased, read-only).
func (c *Collector) Deliveries() []ExpressEvent { return c.deliveries }

// Demotions returns the recorded express demotions (aliased, read-only).
func (c *Collector) Demotions() []ExpressEvent { return c.demotions }

// EndCycle returns the last recorded per-SM cycle position — the span
// timeline's right edge.
func (c *Collector) EndCycle() uint64 {
	var end uint64
	for i := range c.sms {
		if c.sms[i].pos > end {
			end = c.sms[i].pos
		}
	}
	return end
}

// Dropped reports how many events each bounded buffer rejected: stall-span
// cycles (summed across SMs), jumps, phase samples, express events, and
// load resolutions. Both exporters embed these in their metadata so a
// truncated trace reads as truncated, never as complete.
func (c *Collector) Dropped() (spanCycles, jumps, phases, express, loads uint64) {
	for i := range c.sms {
		spanCycles += c.sms[i].dropped
	}
	return spanCycles, c.jumpsDropped, c.phasesDropped, c.exprDropped, c.loadsDropped
}

// WhereOf resolves the service location of a MemData span's pending load:
// the recorded completion location, WhereL1 for spans with no identified
// load (matching the Inspector's attribution), or WhereUnknown when the
// load never resolved (still in flight at end of run, or dropped).
func (c *Collector) WhereOf(sm int, id core.LoadID) core.DataWhere {
	if id == 0 {
		return core.WhereL1
	}
	if w, ok := c.sms[sm].loads[id]; ok {
		return w
	}
	return core.WhereUnknown
}

// SubCause renders the classification detail of a span for display: the
// resolved service location for MemData, the structural cause for
// MemStructural, the pipeline for compute stalls, "" otherwise.
func (c *Collector) SubCause(sm int, s Span) string {
	switch s.Class.Kind {
	case core.MemData:
		return c.WhereOf(sm, s.Class.PendingLoad).String()
	case core.MemStructural:
		return s.Class.StructCause.String()
	case core.CompData, core.CompStructural:
		return s.Class.CompUnit.String()
	}
	return ""
}
