package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"gsi/internal/core"
)

// Chrome trace-event export: the object form of the trace-event format,
// loadable in Perfetto and chrome://tracing. One simulated cycle maps to
// one microsecond of trace time (ts and dur are in µs by the format's
// definition), so the UI's time axis reads directly as cycles.
//
// Track layout:
//
//	pid 1 "SMs"    — one thread per SM ("SM0".."SMn"); stall spans as
//	                 complete ("X") slices named by stall kind, colored
//	                 per kind, with the sub-cause in args.
//	pid 2 "engine" — thread 0 "clock jumps": each skip-ahead jump as a
//	                 slice spanning the jumped window; phase wall times
//	                 as counter ("C") events.
//	pid 3 "mesh"   — thread 0 "express deliveries": each express
//	                 traversal as a slice from inject to delivery;
//	                 thread 1 "express demotions": instant ("i") events
//	                 at materialization time.

// chromeEvent is one trace-event entry. Fields follow the trace-event
// format's names exactly.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Cname string         `json:"cname,omitempty"`
	S     string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

const (
	pidSMs    = 1
	pidEngine = 2
	pidMesh   = 3
)

// kindColors maps each stall kind to a trace-viewer reserved color name, so
// the timeline is readable without custom categories.
var kindColors = [core.NumStallKinds]string{
	core.NoStall:        "thread_state_running",
	core.Idle:           "grey",
	core.Control:        "yellow",
	core.Sync:           "thread_state_runnable",
	core.MemData:        "thread_state_iowait",
	core.MemStructural:  "terrible",
	core.CompData:       "rail_animation",
	core.CompStructural: "olive",
}

// WriteChromeTrace writes the collected events as Chrome trace-event JSON.
// The document is the object form ({"traceEvents": [...], ...}) with the
// collector's dropped-event counters in otherData, so a truncated trace
// declares itself.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	spanDrop, jumpDrop, phaseDrop, exprDrop, loadDrop := c.Dropped()
	meta := map[string]any{
		"tool":              "gsi",
		"clock":             "1 cycle = 1us",
		"droppedSpanCycles": spanDrop,
		"droppedJumps":      jumpDrop,
		"droppedPhases":     phaseDrop,
		"droppedExpress":    exprDrop,
		"droppedLoads":      loadDrop,
	}
	metaDoc, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "{\"otherData\":%s,\"traceEvents\":[", metaDoc); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		doc, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		_, err = bw.Write(doc)
		return err
	}

	// Metadata: process and thread names for every track.
	named := func(pid int, name string) error {
		return emit(chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name}})
	}
	thread := func(pid, tid int, name string) error {
		return emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name}})
	}
	if err := named(pidSMs, "SMs"); err != nil {
		return err
	}
	for sm := range c.sms {
		if err := thread(pidSMs, sm, fmt.Sprintf("SM%d", sm)); err != nil {
			return err
		}
	}
	if err := named(pidEngine, "engine"); err != nil {
		return err
	}
	if err := thread(pidEngine, 0, "clock jumps"); err != nil {
		return err
	}
	if err := named(pidMesh, "mesh"); err != nil {
		return err
	}
	if err := thread(pidMesh, 0, "express deliveries"); err != nil {
		return err
	}
	if err := thread(pidMesh, 1, "express demotions"); err != nil {
		return err
	}

	// Per-SM stall slices.
	for sm := range c.sms {
		for _, s := range c.sms[sm].spans {
			args := map[string]any{
				"kind":   s.Class.Kind.String(),
				"cycles": s.Cycles,
			}
			if sub := c.SubCause(sm, s); sub != "" {
				args["cause"] = sub
			}
			if err := emit(chromeEvent{
				Name: s.Class.Kind.String(), Ph: "X",
				Ts: s.Start, Dur: s.Cycles,
				Pid: pidSMs, Tid: sm, Cat: "stall",
				Cname: kindColors[s.Class.Kind], Args: args,
			}); err != nil {
				return err
			}
		}
	}

	// Engine track: jumps as slices over the jumped window, phase wall
	// times as counters (one counter sample per recorded parallel pass).
	for _, j := range c.jumps {
		if err := emit(chromeEvent{
			Name: "jump", Ph: "X", Ts: j.From, Dur: j.To - j.From,
			Pid: pidEngine, Tid: 0, Cat: "engine", Cname: "good",
			Args: map[string]any{"from": j.From, "to": j.To, "width": j.To - j.From},
		}); err != nil {
			return err
		}
	}
	for _, p := range c.phases {
		if err := emit(chromeEvent{
			Name: "tick phase ns", Ph: "C", Ts: p.Cycle, Pid: pidEngine,
			Args: map[string]any{"hub": p.HubNs, "group": p.GroupNs, "commit": p.CommitNs},
		}); err != nil {
			return err
		}
	}

	// Mesh track: deliveries as inject-to-delivery slices, demotions as
	// instants at materialization time.
	for _, d := range c.deliveries {
		if err := emit(chromeEvent{
			Name: "express", Ph: "X", Ts: d.Inject, Dur: d.At - d.Inject,
			Pid: pidMesh, Tid: 0, Cat: "mesh", Cname: "good",
			Args: map[string]any{"src": d.Src, "dst": d.Dst, "hops": d.Hops},
		}); err != nil {
			return err
		}
	}
	for _, d := range c.demotions {
		if err := emit(chromeEvent{
			Name: "demotion", Ph: "i", Ts: d.At, Pid: pidMesh, Tid: 1,
			Cat: "mesh", S: "t",
			Args: map[string]any{"src": d.Src, "dst": d.Dst, "hop": d.Hops, "inject": d.Inject},
		}); err != nil {
			return err
		}
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
