package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"gsi"
	"gsi/internal/core"
	"gsi/internal/trace"
)

// TestSpanCoalescing pins the recording granularity contract: the span
// list reflects classification changes, not how the engine credited the
// cycles — per-cycle crediting and bulk crediting of the same window must
// produce the identical span list.
func TestSpanCoalescing(t *testing.T) {
	c := trace.New()
	c.Begin(2)
	idle := core.CycleClass{Kind: core.Idle}
	comp := core.CycleClass{Kind: core.CompData, CompUnit: core.UnitALU}
	// Three per-cycle credits, then a bulk credit of the same class.
	c.StallSpan(0, idle, 1)
	c.StallSpan(0, idle, 1)
	c.StallSpan(0, idle, 1)
	c.StallSpan(0, idle, 7)
	c.StallSpan(0, comp, 2)
	c.StallSpan(0, idle, 4)
	spans := c.Spans(0)
	want := []trace.Span{
		{Start: 0, Cycles: 10, Class: idle},
		{Start: 10, Cycles: 2, Class: comp},
		{Start: 12, Cycles: 4, Class: idle},
	}
	if len(spans) != len(want) {
		t.Fatalf("got %d spans %+v, want %d", len(spans), spans, len(want))
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Errorf("span %d = %+v, want %+v", i, spans[i], want[i])
		}
	}
	if c.EndCycle() != 16 {
		t.Errorf("EndCycle = %d, want 16", c.EndCycle())
	}
	// SM 1 untouched; its track must be independent.
	if len(c.Spans(1)) != 0 {
		t.Errorf("SM 1 recorded spans it never saw: %+v", c.Spans(1))
	}
}

// TestLoadResolution pins the deferred-attribution contract: a MemData
// span's service location resolves at export time from the recorded load
// completions — unresolved loads read as unknown, the zero LoadID as an
// L1 hit (matching the Inspector's attribution).
func TestLoadResolution(t *testing.T) {
	c := trace.New()
	c.Begin(1)
	c.LoadResolved(0, 7, core.WhereMemory)
	c.LoadResolved(0, 0, core.WhereL2) // ignored: 0 is "no identified load"
	if w := c.WhereOf(0, 7); w != core.WhereMemory {
		t.Errorf("WhereOf(7) = %v, want memory", w)
	}
	if w := c.WhereOf(0, 0); w != core.WhereL1 {
		t.Errorf("WhereOf(0) = %v, want L1", w)
	}
	if w := c.WhereOf(0, 99); w != core.WhereUnknown {
		t.Errorf("WhereOf(99) = %v, want unknown", w)
	}
	mem := trace.Span{Class: core.CycleClass{Kind: core.MemData, PendingLoad: 7}}
	if got := c.SubCause(0, mem); got != core.WhereMemory.String() {
		t.Errorf("SubCause(MemData) = %q, want %q", got, core.WhereMemory.String())
	}
	st := trace.Span{Class: core.CycleClass{Kind: core.MemStructural, StructCause: core.StructMSHRFull}}
	if got := c.SubCause(0, st); got != core.StructMSHRFull.String() {
		t.Errorf("SubCause(MemStructural) = %q, want %q", got, core.StructMSHRFull.String())
	}
	if got := c.SubCause(0, trace.Span{Class: core.CycleClass{Kind: core.Idle}}); got != "" {
		t.Errorf("SubCause(Idle) = %q, want empty", got)
	}
}

// TestBeginResets: a reused collector must not leak the previous run's
// events into the next.
func TestBeginResets(t *testing.T) {
	c := trace.New()
	c.Begin(1)
	c.StallSpan(0, core.CycleClass{Kind: core.Idle}, 5)
	c.Jump(1, 4)
	c.TickPhases(2, 10, 20, 30)
	c.ExpressDelivery(9, 5, 0, 3, 4)
	c.ExpressDemotion(8, 5, 0, 3, 2)
	c.Begin(3)
	if c.NumSMs() != 3 || c.EndCycle() != 0 {
		t.Errorf("Begin left state: sms=%d end=%d", c.NumSMs(), c.EndCycle())
	}
	if len(c.Jumps()) != 0 || len(c.Phases()) != 0 ||
		len(c.Deliveries()) != 0 || len(c.Demotions()) != 0 {
		t.Error("Begin left engine/mesh events from the previous run")
	}
}

var tracedRun struct {
	once sync.Once
	tr   *gsi.Trace
	err  error
}

// runTraced executes a small UTS run with a collector attached (once —
// both exporter tests read the same collected events) and returns it
// populated.
func runTraced(t *testing.T) *gsi.Trace {
	t.Helper()
	tracedRun.once.Do(func() {
		tracedRun.tr = gsi.NewTrace()
		opt := gsi.Options{Protocol: gsi.DeNovo, Trace: tracedRun.tr}
		_, tracedRun.err = gsi.Run(opt, gsi.NewUTSWith(gsi.UTS{
			Seed: 0xC0FFEE, Nodes: 120, FrontierMin: 40,
			Blocks: 15, WarpsPerBlock: 8, Work: 8, FMAs: 4}))
	})
	if tracedRun.err != nil {
		t.Fatal(tracedRun.err)
	}
	return tracedRun.tr
}

// TestChromeTraceSchema validates the exported trace-event JSON against
// the format Perfetto loads: a top-level object with a traceEvents array,
// every event carrying name/ph/ts/pid, complete ("X") slices carrying a
// duration, and one named thread track per SM.
func TestChromeTraceSchema(t *testing.T) {
	tr := runTraced(t)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData   map[string]any   `json:"otherData"`
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("exported trace has no events")
	}
	if doc.OtherData["tool"] != "gsi" {
		t.Errorf("otherData.tool = %v, want gsi", doc.OtherData["tool"])
	}
	smTracks := map[string]bool{}
	var slices int
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		ph := ev["ph"].(string)
		switch ph {
		case "M", "X", "C", "i":
		default:
			t.Fatalf("event %d has unexpected phase %q", i, ph)
		}
		if ph == "X" {
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete slice %d missing dur: %v", i, ev)
			}
			slices++
		}
		if ph == "M" && ev["name"] == "thread_name" {
			if args, ok := ev["args"].(map[string]any); ok {
				if name, ok := args["name"].(string); ok && strings.HasPrefix(name, "SM") {
					smTracks[name] = true
				}
			}
		}
	}
	if slices == 0 {
		t.Error("exported trace has no stall slices")
	}
	if len(smTracks) != tr.NumSMs() {
		t.Errorf("trace names %d SM tracks, want one per SM (%d)", len(smTracks), tr.NumSMs())
	}
}

// TestHTMLTimelineSelfContained pins the HTML exporter's portability
// contract: one file, no network — the page must embed its data and
// scripts and reference no external URL.
func TestHTMLTimelineSelfContained(t *testing.T) {
	tr := runTraced(t)
	var buf bytes.Buffer
	if err := tr.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	if !strings.HasPrefix(page, "<!DOCTYPE html>") {
		t.Error("page does not start with a doctype")
	}
	for _, ref := range []string{"http://", "https://", "<link", "src="} {
		if strings.Contains(page, ref) {
			t.Errorf("page references external content (%q)", ref)
		}
	}
	if !strings.Contains(page, `id="trace-data"`) {
		t.Error("page is missing the embedded trace data")
	}
	if strings.Contains(page, "%!") {
		t.Error("page contains a mangled format verb")
	}
	// The embedded JSON must itself parse.
	i := strings.Index(page, `id="trace-data" type="application/json">`)
	j := strings.Index(page[i:], "</script>")
	if i < 0 || j < 0 {
		t.Fatal("cannot locate the embedded data block")
	}
	raw := page[i+len(`id="trace-data" type="application/json">`) : i+j]
	raw = strings.ReplaceAll(raw, `<\/`, "</")
	var data map[string]any
	if err := json.Unmarshal([]byte(raw), &data); err != nil {
		t.Fatalf("embedded trace data is not valid JSON: %v", err)
	}
	if _, ok := data["sms"]; !ok {
		t.Error("embedded data has no per-SM rows")
	}
}
