package sim

import (
	"errors"
	"strings"
	"testing"
)

// busyFor returns a TickFunc that records its tick cycles and stays busy
// for the first n ticks.
func busyFor(n int, ticks *[]uint64) TickFunc {
	count := 0
	return func(c uint64) bool {
		*ticks = append(*ticks, c)
		count++
		return count < n
	}
}

func TestEngineTickOrderAndCount(t *testing.T) {
	eng := NewEngine()
	var order []string
	eng.Register("a", TickFunc(func(uint64) bool { order = append(order, "a"); return true }))
	eng.Register("b", TickFunc(func(uint64) bool { order = append(order, "b"); return true }))
	eng.Step()
	eng.Step()
	want := []string{"a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if eng.Cycle() != 2 {
		t.Fatalf("Cycle = %d, want 2", eng.Cycle())
	}
}

func TestEngineRunUntilDone(t *testing.T) {
	eng := NewEngine()
	count := 0
	eng.Register("c", TickFunc(func(uint64) bool { count++; return true }))
	n, err := eng.Run(func() bool { return count >= 5 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || count != 5 {
		t.Fatalf("ran %d cycles, count %d, want 5", n, count)
	}
}

func TestEngineWatchdog(t *testing.T) {
	eng := NewEngine()
	eng.Register("spin", TickFunc(func(uint64) bool { return true }))
	_, err := eng.Run(func() bool { return false }, 10)
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if eng.Cycle() != 10 {
		t.Fatalf("Cycle = %d, want 10", eng.Cycle())
	}
	if !strings.Contains(err.Error(), "spin") || !strings.Contains(err.Error(), "busy") {
		t.Errorf("watchdog error lacks component diagnosis: %v", err)
	}
}

func TestEngineTickSeesCycleBeforeIncrement(t *testing.T) {
	eng := NewEngine()
	var seen []uint64
	eng.Register("c", TickFunc(func(c uint64) bool { seen = append(seen, c); return true }))
	eng.Step()
	eng.Step()
	if seen[0] != 0 || seen[1] != 1 {
		t.Fatalf("seen = %v, want [0 1]", seen)
	}
}

// TestEngineIdleComponentSkipped: a component that quiesces stops ticking;
// in dense mode it keeps ticking every cycle.
func TestEngineIdleComponentSkipped(t *testing.T) {
	for _, dense := range []bool{false, true} {
		eng := NewEngine()
		eng.SetDense(dense)
		var idleTicks, busyTicks []uint64
		eng.Register("idle", busyFor(1, &idleTicks))
		eng.Register("busy", busyFor(100, &busyTicks))
		for i := 0; i < 5; i++ {
			eng.Step()
		}
		wantIdle := 1
		if dense {
			wantIdle = 5
		}
		if len(idleTicks) != wantIdle {
			t.Errorf("dense=%v: idle component ticked %d times, want %d", dense, len(idleTicks), wantIdle)
		}
		if len(busyTicks) != 5 {
			t.Errorf("dense=%v: busy component ticked %d times, want 5", dense, len(busyTicks))
		}
	}
}

// TestEngineWakeWhileIdle: a component that quiesced is re-armed by another
// component's Wake. Woken by an earlier-registered component, it ticks the
// same cycle; its own tick then keeps it alive per its busy return.
func TestEngineWakeWhileIdle(t *testing.T) {
	eng := NewEngine()
	var ticks []uint64
	var sleeper Handle
	eng.Register("waker", TickFunc(func(c uint64) bool {
		if c == 3 {
			sleeper.Wake()
		}
		return c < 6
	}))
	sleeper = eng.Register("sleeper", busyFor(1, &ticks))
	for i := 0; i < 8; i++ {
		eng.Step()
	}
	// Tick at 0 (initial), quiesce; woken during cycle 3 by the earlier
	// component, so it ticks at 3 and quiesces again.
	if len(ticks) != 2 || ticks[0] != 0 || ticks[1] != 3 {
		t.Fatalf("sleeper ticks = %v, want [0 3]", ticks)
	}
}

// TestEngineWakeByLaterComponentNextCycle: a wake from a component
// registered after the sleeper arrives too late for the current cycle and
// takes effect the next one — matching when a dense loop would first let
// the sleeper observe work created after its slot.
func TestEngineWakeByLaterComponentNextCycle(t *testing.T) {
	eng := NewEngine()
	var ticks []uint64
	sleeper := eng.Register("sleeper", busyFor(1, &ticks))
	eng.Register("waker", TickFunc(func(c uint64) bool {
		if c == 3 {
			sleeper.Wake()
		}
		return c < 6
	}))
	for i := 0; i < 8; i++ {
		eng.Step()
	}
	if len(ticks) != 2 || ticks[0] != 0 || ticks[1] != 4 {
		t.Fatalf("sleeper ticks = %v, want [0 4]", ticks)
	}
}

// TestEngineWakeDuringOwnTick: a component that wakes itself mid-tick stays
// active even though its Tick returned false.
func TestEngineWakeDuringOwnTick(t *testing.T) {
	eng := NewEngine()
	var self Handle
	var ticks []uint64
	self = eng.Register("self", TickFunc(func(c uint64) bool {
		ticks = append(ticks, c)
		if c == 0 {
			self.Wake() // re-arm despite returning false
		}
		return false
	}))
	for i := 0; i < 4; i++ {
		eng.Step()
	}
	if len(ticks) != 2 || ticks[0] != 0 || ticks[1] != 1 {
		t.Fatalf("ticks = %v, want [0 1]", ticks)
	}
}

// TestEngineLastComponentQuiesces: once the last active component goes
// idle, Run reports ErrStalled (with a diagnosis) instead of spinning to
// the watchdog — and exits cleanly when done turns true first.
func TestEngineLastComponentQuiesces(t *testing.T) {
	eng := NewEngine()
	done := false
	eng.Register("a", busyFor(2, &[]uint64{}))
	eng.Register("b", TickFunc(func(c uint64) bool {
		if c == 4 {
			done = true
		}
		return c < 4
	}))
	n, err := eng.Run(func() bool { return done }, 1000)
	if err != nil {
		t.Fatalf("clean quiescence errored: %v", err)
	}
	// b stays busy through cycle 4 and sets done during cycle 4; done is
	// observed before cycle 5.
	if n != 5 {
		t.Fatalf("ran %d cycles, want 5", n)
	}

	// Without the done flag flipping, full quiescence is a stall.
	eng2 := NewEngine()
	eng2.Register("a", busyFor(2, &[]uint64{}))
	_, err = eng2.Run(func() bool { return false }, 1000)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if !strings.Contains(err.Error(), "idle") {
		t.Errorf("stall error lacks diagnosis: %v", err)
	}
}

// TestEngineDiagnosis: the dump names every component with its state and
// includes Diagnoser detail.
type diagComp struct{ busy bool }

func (d diagComp) Tick(uint64) bool { return d.busy }
func (d diagComp) Diagnose() string { return "queue=7" }

func TestEngineDiagnosis(t *testing.T) {
	eng := NewEngine()
	eng.Register("router", diagComp{busy: true})
	eng.Register("drained", diagComp{busy: false})
	eng.Step()
	dump := eng.Diagnosis()
	for _, want := range []string{"router", "busy", "drained", "idle", "queue=7"} {
		if !strings.Contains(dump, want) {
			t.Errorf("diagnosis missing %q:\n%s", want, dump)
		}
	}
	if eng.ActiveCount() != 1 {
		t.Errorf("ActiveCount = %d, want 1", eng.ActiveCount())
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cfg := Default()
	if cfg.NumCores() != 16 || cfg.CPUCore() != 15 {
		t.Fatalf("cores = %d, cpu = %d", cfg.NumCores(), cfg.CPUCore())
	}
	if cfg.DenseTicking {
		t.Fatal("default config must not use the dense reference loop")
	}
	if cfg.EngineMode() != EngineSkip {
		t.Fatalf("default engine mode = %s, want skip", cfg.EngineMode())
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero SMs", func(c *Config) { c.NumSMs = 0 }},
		{"zero warps", func(c *Config) { c.WarpsPerSM = 0 }},
		{"zero warp size", func(c *Config) { c.WarpSize = 0 }},
		{"zero issue width", func(c *Config) { c.IssueWidth = 0 }},
		{"non-power-of-two line", func(c *Config) { c.LineSize = 48 }},
		{"tiny line", func(c *Config) { c.LineSize = 4 }},
		{"L1 not divisible", func(c *Config) { c.L1Size = 1000 }},
		{"zero L1 banks", func(c *Config) { c.L1Banks = 0 }},
		{"too many L2 banks", func(c *Config) { c.L2Banks = 17 }},
		{"L2 not divisible", func(c *Config) { c.L2Size = 12345 }},
		{"zero MSHR", func(c *Config) { c.MSHREntries = 0 }},
		{"zero store buffer", func(c *Config) { c.StoreBufEntries = 0 }},
		{"zero scratch", func(c *Config) { c.ScratchSize = 0 }},
		{"too many cores for mesh", func(c *Config) { c.NumSMs = 16 }},
		{"zero max cycles", func(c *Config) { c.MaxCycles = 0 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Default()
			tt.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("config %s passed validation", tt.name)
			}
		})
	}
}
