package sim

import (
	"errors"
	"testing"
)

func TestEngineTickOrderAndCount(t *testing.T) {
	eng := NewEngine()
	var order []string
	eng.Register("a", TickFunc(func(uint64) { order = append(order, "a") }))
	eng.Register("b", TickFunc(func(uint64) { order = append(order, "b") }))
	eng.Step()
	eng.Step()
	want := []string{"a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if eng.Cycle() != 2 {
		t.Fatalf("Cycle = %d, want 2", eng.Cycle())
	}
}

func TestEngineRunUntilDone(t *testing.T) {
	eng := NewEngine()
	count := 0
	eng.Register("c", TickFunc(func(uint64) { count++ }))
	n, err := eng.Run(func() bool { return count >= 5 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || count != 5 {
		t.Fatalf("ran %d cycles, count %d, want 5", n, count)
	}
}

func TestEngineWatchdog(t *testing.T) {
	eng := NewEngine()
	_, err := eng.Run(func() bool { return false }, 10)
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if eng.Cycle() != 10 {
		t.Fatalf("Cycle = %d, want 10", eng.Cycle())
	}
}

func TestEngineTickSeesCycleBeforeIncrement(t *testing.T) {
	eng := NewEngine()
	var seen []uint64
	eng.Register("c", TickFunc(func(c uint64) { seen = append(seen, c) }))
	eng.Step()
	eng.Step()
	if seen[0] != 0 || seen[1] != 1 {
		t.Fatalf("seen = %v, want [0 1]", seen)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cfg := Default()
	if cfg.NumCores() != 16 || cfg.CPUCore() != 15 {
		t.Fatalf("cores = %d, cpu = %d", cfg.NumCores(), cfg.CPUCore())
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero SMs", func(c *Config) { c.NumSMs = 0 }},
		{"zero warps", func(c *Config) { c.WarpsPerSM = 0 }},
		{"zero warp size", func(c *Config) { c.WarpSize = 0 }},
		{"zero issue width", func(c *Config) { c.IssueWidth = 0 }},
		{"non-power-of-two line", func(c *Config) { c.LineSize = 48 }},
		{"tiny line", func(c *Config) { c.LineSize = 4 }},
		{"L1 not divisible", func(c *Config) { c.L1Size = 1000 }},
		{"zero L1 banks", func(c *Config) { c.L1Banks = 0 }},
		{"too many L2 banks", func(c *Config) { c.L2Banks = 17 }},
		{"L2 not divisible", func(c *Config) { c.L2Size = 12345 }},
		{"zero MSHR", func(c *Config) { c.MSHREntries = 0 }},
		{"zero store buffer", func(c *Config) { c.StoreBufEntries = 0 }},
		{"zero scratch", func(c *Config) { c.ScratchSize = 0 }},
		{"too many cores for mesh", func(c *Config) { c.NumSMs = 16 }},
		{"zero max cycles", func(c *Config) { c.MaxCycles = 0 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Default()
			tt.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("config %s passed validation", tt.name)
			}
		})
	}
}
