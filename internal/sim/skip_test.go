package sim

import (
	"fmt"
	"strings"
	"testing"
)

// timedComp is a synthetic component driven by an explicit event schedule:
// Tick fires every due event, appends to a shared log, and (pseudo-randomly
// but deterministically) schedules follow-up events on itself or a peer —
// the shape of a real component exchanging timed messages. NextEvent
// reports the earliest pending event, so the skip-ahead engine may jump
// straight to it.
//
// One branch models an express-routed mesh traversal: a single far-future
// event standing for a whole multi-hop delivery, which a later peer
// exchange may "demote" — replace with a much nearer event plus a Wake,
// exactly the pattern of contending traffic materializing an express flit
// back into the per-hop pipeline. The engine must cope with a component's
// NextEvent moving earlier after a wake.
type timedComp struct {
	name   string
	events []uint64 // sorted pending event times
	peer   *timedComp
	handle Handle
	rng    uint64
	log    *[]string
	// expressAt is the pending express-style event (0 = none): scheduled
	// far out, possibly demoted to a near event by the peer.
	expressAt uint64
	// skips records SkipAhead windows for assertions.
	skips []string
}

func (c *timedComp) schedule(at uint64) {
	i := len(c.events)
	c.events = append(c.events, at)
	for i > 0 && c.events[i-1] > c.events[i] {
		c.events[i-1], c.events[i] = c.events[i], c.events[i-1]
		i--
	}
}

func (c *timedComp) next(bound uint64) uint64 {
	c.rng = c.rng*6364136223846793005 + 1442695040888963407
	return (c.rng >> 33) % bound
}

func (c *timedComp) unschedule(at uint64) {
	for i, e := range c.events {
		if e == at {
			c.events = append(c.events[:i], c.events[i+1:]...)
			return
		}
	}
}

func (c *timedComp) Tick(cycle uint64) bool {
	for len(c.events) > 0 && c.events[0] <= cycle {
		at := c.events[0]
		c.events = c.events[1:]
		if at == c.expressAt {
			c.expressAt = 0 // the express traversal completed undisturbed
		}
		// A late-fired event is exactly an under-promise: the engine
		// jumped past it. Make the failure visible in the log.
		status := "ok"
		if at < cycle {
			status = fmt.Sprintf("LATE(due=%d)", at)
		}
		*c.log = append(*c.log, fmt.Sprintf("%s@%d:%s", c.name, cycle, status))
		switch c.next(6) {
		case 0:
			c.schedule(cycle + 1 + c.next(40))
		case 1:
			// Timed "message" to the peer: schedule its event and wake
			// it, like a mesh delivery re-arming a sleeping unit.
			c.peer.schedule(cycle + 1 + c.next(25))
			c.peer.handle.Wake()
		case 2:
			// Express-route exchange: one far event stands for a whole
			// uncontended multi-hop traversal.
			if c.expressAt == 0 {
				c.expressAt = cycle + 10 + c.next(160)
				c.schedule(c.expressAt)
			}
		case 3:
			// Contention reaches the peer's express path: demote it —
			// the far promise is replaced by a near per-hop event and
			// the peer re-armed, like a materialized flit.
			if p := c.peer; p.expressAt > cycle+1 {
				p.unschedule(p.expressAt)
				p.schedule(cycle + 1 + c.next(6))
				p.expressAt = 0
				p.handle.Wake()
			}
		}
	}
	return len(c.events) > 0
}

func (c *timedComp) NextEvent(now uint64) uint64 {
	if len(c.events) == 0 {
		return NoEvent
	}
	return c.events[0]
}

func (c *timedComp) SkipAhead(from, to uint64) {
	c.skips = append(c.skips, fmt.Sprintf("[%d,%d)", from, to))
}

// runTimed builds a deterministic two-component event exchange from seed
// and runs it to quiescence under the given mode, returning the event log
// and the engine.
func runTimed(t *testing.T, seed uint64, mode EngineMode) ([]string, *Engine) {
	t.Helper()
	var log []string
	a := &timedComp{name: "a", rng: seed, log: &log}
	b := &timedComp{name: "b", rng: seed ^ 0x9E3779B97F4A7C15, log: &log}
	a.peer, b.peer = b, a
	a.schedule(2 + seed%7)
	a.schedule(50 + seed%23)
	b.schedule(5 + seed%13)
	eng := NewEngine()
	eng.SetMode(mode)
	a.handle = eng.Register("a", a)
	b.handle = eng.Register("b", b)
	done := func() bool { return len(a.events) == 0 && len(b.events) == 0 }
	if _, err := eng.Run(done, 1_000_000); err != nil {
		t.Fatalf("seed %d mode %s: %v", seed, mode, err)
	}
	return log, eng
}

// TestSkipAheadNeverUnderPromises is the property test for the NextEvent
// contract: across many randomized timed-event exchanges, the skip-ahead
// engine must fire every event at exactly the cycle the dense and
// quiescent loops fire it (jumping to the reported cycle and stepping from
// there is indistinguishable from dense execution), and no event may ever
// fire late.
func TestSkipAheadNeverUnderPromises(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		dense, _ := runTimed(t, seed, EngineDense)
		quiescent, _ := runTimed(t, seed, EngineQuiescent)
		skip, eng := runTimed(t, seed, EngineSkip)
		if fmt.Sprint(dense) != fmt.Sprint(quiescent) {
			t.Fatalf("seed %d: quiescent log diverges from dense:\n%v\nvs\n%v", seed, quiescent, dense)
		}
		if fmt.Sprint(dense) != fmt.Sprint(skip) {
			t.Fatalf("seed %d: skip log diverges from dense:\n%v\nvs\n%v", seed, skip, dense)
		}
		for _, e := range skip {
			if len(e) > 0 && e[len(e)-1] != 'k' { // ":ok" suffix
				t.Fatalf("seed %d: late event %q under skip-ahead", seed, e)
			}
		}
		if st := eng.Stats(); st.SkippedCycles == 0 {
			t.Errorf("seed %d: skip-ahead engine never jumped over a timed gap", seed)
		}
	}
}

// TestSkipJumpAndWindows pins the basic jump mechanics: components whose
// next events are far out get the gap jumped in one step, Skippers are
// told the exact window, and the engine's cycle lands on the earliest
// event.
func TestSkipJumpAndWindows(t *testing.T) {
	var log []string
	a := &timedComp{name: "a", log: &log}
	b := &timedComp{name: "b", log: &log}
	a.peer, b.peer = b, a
	a.rng, b.rng = 2, 2 // next(4) sequence avoids rescheduling branches
	a.schedule(100)
	b.schedule(150)
	eng := NewEngine()
	a.handle = eng.Register("a", a)
	b.handle = eng.Register("b", b)

	eng.Step() // tick pass at 0, then jump to the earliest event
	if eng.Cycle() != 100 {
		t.Fatalf("Cycle after first step = %d, want 100", eng.Cycle())
	}
	if len(a.skips) != 1 || a.skips[0] != "[1,100)" {
		t.Fatalf("a.skips = %v, want [[1,100)]", a.skips)
	}
	if len(b.skips) != 1 || b.skips[0] != "[1,100)" {
		t.Fatalf("b.skips = %v, want [[1,100)]", b.skips)
	}
	eng.Step() // fires a@100, then jumps toward b's event
	if len(log) != 1 || log[0] != "a@100:ok" {
		t.Fatalf("log = %v", log)
	}
	st := eng.Stats()
	if st.Jumps < 2 || st.SkippedCycles == 0 {
		t.Fatalf("stats = %+v, want at least 2 jumps", st)
	}
}

// nextEventFunc adapts funcs to Component+NextEventer for clamp tests.
type nextEventFunc struct {
	tick func(uint64) bool
	next func(uint64) uint64
}

func (c *nextEventFunc) Tick(cycle uint64) bool      { return c.tick(cycle) }
func (c *nextEventFunc) NextEvent(now uint64) uint64 { return c.next(now) }

// TestSkipJumpClampedByWake: a Wake that lands while the engine is
// planning a jump must clamp (abort) the jump, so the woken component
// ticks on the very next cycle exactly as it would under a dense loop.
// The waker here wakes its sleeping peer from inside NextEvent, modeling
// an arrival racing the plan.
func TestSkipJumpClampedByWake(t *testing.T) {
	eng := NewEngine()
	var sleeperTicks []uint64
	var sleeper Handle
	woke := false
	waker := &nextEventFunc{
		tick: func(cycle uint64) bool { return cycle < 10 },
		next: func(now uint64) uint64 {
			if !woke {
				woke = true
				sleeper.Wake() // arrival lands mid-plan
			}
			return now + 50
		},
	}
	eng.Register("waker", waker)
	sleeper = eng.Register("sleeper", TickFunc(func(c uint64) bool {
		sleeperTicks = append(sleeperTicks, c)
		return false
	}))

	eng.Step() // sleeper ticks at 0, quiesces; plan wakes it and must clamp
	if eng.Cycle() != 1 {
		t.Fatalf("Cycle = %d, want 1 (jump clamped by mid-plan wake)", eng.Cycle())
	}
	eng.Step()
	if len(sleeperTicks) != 2 || sleeperTicks[1] != 1 {
		t.Fatalf("sleeper ticks = %v, want [0 1]", sleeperTicks)
	}
}

// TestSkipRequiresAllNextEventers: one active component without NextEvent
// disables jumping entirely — the engine can promise nothing on its
// behalf.
func TestSkipRequiresAllNextEventers(t *testing.T) {
	eng := NewEngine()
	timer := &nextEventFunc{
		tick: func(cycle uint64) bool { return true },
		next: func(now uint64) uint64 { return now + 1000 },
	}
	eng.Register("timer", timer)
	eng.Register("plain", TickFunc(func(uint64) bool { return true }))
	for i := 0; i < 5; i++ {
		eng.Step()
	}
	if eng.Cycle() != 5 {
		t.Fatalf("Cycle = %d, want 5 (no jumps with a non-NextEventer active)", eng.Cycle())
	}
}

// TestSkipExternalOnlyWaitersDoNotJump: when every active component
// reports NoEvent (waiting on input none of them will produce), the engine
// must not jump — it ticks densely so the stall is observable.
func TestSkipExternalOnlyWaitersDoNotJump(t *testing.T) {
	eng := NewEngine()
	ext := &nextEventFunc{
		tick: func(cycle uint64) bool { return true },
		next: func(now uint64) uint64 { return NoEvent },
	}
	eng.Register("ext", ext)
	for i := 0; i < 4; i++ {
		eng.Step()
	}
	if eng.Cycle() != 4 {
		t.Fatalf("Cycle = %d, want 4 (external-only waiters must not jump)", eng.Cycle())
	}
}

// TestSkipRespectsWatchdogLimit: a jump may not leap past Run's maxCycles,
// so the watchdog fires at exactly the cycle count the dense loop reports.
func TestSkipRespectsWatchdogLimit(t *testing.T) {
	for _, mode := range []EngineMode{EngineDense, EngineQuiescent, EngineSkip} {
		eng := NewEngine()
		eng.SetMode(mode)
		far := &nextEventFunc{
			tick: func(cycle uint64) bool { return true },
			next: func(now uint64) uint64 { return now + 10_000 },
		}
		eng.Register("far", far)
		n, err := eng.Run(func() bool { return false }, 100)
		if err == nil {
			t.Fatalf("%s: expected watchdog error", mode)
		}
		if n != 100 {
			t.Fatalf("%s: watchdog fired after %d cycles, want 100", mode, n)
		}
	}
}

// TestSkipDiagnosisIncludesNextEvents: the deadlock dump names when each
// busy component expected progress, and marks external-only waiters.
func TestSkipDiagnosisIncludesNextEvents(t *testing.T) {
	eng := NewEngine()
	timer := &nextEventFunc{
		tick: func(cycle uint64) bool { return true },
		next: func(now uint64) uint64 { return 777 },
	}
	ext := &nextEventFunc{
		tick: func(cycle uint64) bool { return true },
		next: func(now uint64) uint64 { return NoEvent },
	}
	eng.Register("timer", timer)
	eng.Register("ext", ext)
	eng.Step()
	dump := eng.Diagnosis()
	for _, want := range []string{"next-event=777", "next-event=external"} {
		if !strings.Contains(dump, want) {
			t.Errorf("diagnosis missing %q:\n%s", want, dump)
		}
	}
}
