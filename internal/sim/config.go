package sim

import (
	"fmt"
	"runtime"
)

// Config holds every architectural parameter of the simulated system. The
// defaults (see Default) encode Table 5.1 of the paper.
type Config struct {
	// --- Core counts and geometry ---

	// NumSMs is the number of GPU streaming multiprocessors (15 in case
	// study 1, 1 in case study 2).
	NumSMs int
	// WarpsPerSM is the number of concurrent warps resident on one SM.
	WarpsPerSM int
	// WarpSize is the number of lanes (threads) per warp.
	WarpSize int
	// IssueWidth is the number of warp instructions an SM may issue per
	// cycle.
	IssueWidth int

	// --- Frequencies ---

	// GPUFreqMHz and CPUFreqMHz scale CPU work into GPU cycles; the GPU
	// clock is the simulation clock.
	GPUFreqMHz int
	CPUFreqMHz int

	// --- Memory hierarchy ---

	// LineSize is the cache line size in bytes throughout the hierarchy.
	LineSize int
	// L1Size, L1Assoc, L1Banks describe each core's private L1.
	L1Size  int
	L1Assoc int
	L1Banks int
	// L1HitLat is the L1 (and scratchpad/stash) hit latency in cycles.
	L1HitLat int
	// L2Banks is the number of NUCA banks of the shared L2; one bank per
	// mesh tile.
	L2Banks int
	// L2Size is the total L2 capacity across banks.
	L2Size  int
	L2Assoc int
	// L2AccessLat is the bank access (tag+data) latency, excluding
	// network traversal; the end-to-end L2 hit latency the paper reports
	// (29-61 cycles) emerges from this plus mesh distance and contention.
	L2AccessLat int
	// MemLat is the main-memory access latency beyond the L2, and
	// MemBandwidthCycles the controller's cycles-per-request throughput
	// limit.
	MemLat             int
	MemBandwidthCycles int

	// MSHREntries and StoreBufEntries size the per-core miss status
	// holding registers and write-combining store buffer (32 each in
	// Table 5.1; the MSHR sweep of figure 6.4 varies them together).
	MSHREntries     int
	StoreBufEntries int

	// --- Scratchpad / stash ---

	// ScratchSize is the per-SM scratchpad (or stash) capacity, and
	// ScratchBanks its bank count.
	ScratchSize  int
	ScratchBanks int

	// --- Interconnect ---

	// MeshWidth x MeshHeight tiles, each hosting one core's L1 and one
	// L2 bank. LinkLat is the per-hop link traversal latency and
	// RouterLat the per-router pipeline latency.
	MeshWidth  int
	MeshHeight int
	LinkLat    int
	RouterLat  int

	// --- Pipeline ---

	// ALULat / SFULat are compute result latencies; SFUInterval is the
	// SFU issue initiation interval (the ALU is fully pipelined).
	ALULat      int
	SFULat      int
	SFUInterval int
	// FetchLat is the instruction-buffer refill delay after a taken
	// branch (the source of control stalls).
	FetchLat int

	// --- Watchdog ---

	// MaxCycles bounds a run; exceeding it returns ErrMaxCycles.
	MaxCycles uint64

	// --- Engine ---

	// Engine selects the scheduling loop. The zero value (EngineSkip)
	// is the event-driven skip-ahead engine; EngineQuiescent keeps the
	// active set but ticks every cycle; EngineDense is the reference
	// loop that ticks every component every cycle. All three produce
	// byte-identical results.
	Engine EngineMode

	// DenseTicking is the legacy switch for the dense reference loop,
	// kept for older callers; when set it overrides Engine. Prefer
	// Engine = EngineDense.
	DenseTicking bool

	// Parallel is the intra-simulation tick worker count. A value >= 2
	// selects the parallel tick engine (EngineParallel) with that many
	// workers unless a serial mode is forced explicitly via Engine or
	// DenseTicking; 0 and 1 run serially. Like the engine mode itself,
	// the worker count is a pure wall-clock knob — results are
	// byte-identical for every value.
	Parallel int

	// Express enables mesh express routing (Default sets it): a message
	// whose whole route is uncontended is modeled as one timed delivery
	// event at now + hops*(link+router latency) instead of per-hop queue
	// movements, and is demoted back to the per-hop model the moment
	// potentially contending traffic enters its path. Timing is
	// byte-identical either way; express only reduces event density so
	// the skip-ahead engine can jump mesh traversals. The dense
	// reference loop always runs per-hop regardless of this switch, so
	// the cross-engine diff tests double as the express safety net.
	Express bool
}

// EngineMode resolves the scheduling loop, honoring the legacy
// DenseTicking switch and the Parallel worker count: an explicit serial
// mode (dense or quiescent) always wins; otherwise Parallel >= 2 — or
// Engine set to EngineParallel directly — selects the parallel tick
// engine, and the default skip engine runs everything else.
func (c Config) EngineMode() EngineMode {
	if c.DenseTicking {
		return EngineDense
	}
	switch c.Engine {
	case EngineDense, EngineQuiescent:
		return c.Engine
	}
	if c.Parallel >= 2 || c.Engine == EngineParallel {
		return EngineParallel
	}
	return EngineSkip
}

// TickWorkers resolves the parallel engine's worker count: Parallel when
// given, otherwise (engine forced parallel without a count) every core.
// An explicit Parallel of 1 keeps the parallel pass structure but runs
// the group phase inline — the partition-overhead baseline. Serial modes
// always report 1.
func (c Config) TickWorkers() int {
	if c.EngineMode() != EngineParallel {
		return 1
	}
	if c.Parallel >= 1 {
		return c.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Default returns the Table 5.1 configuration: 1 CPU + 15 SMs on a 4x4 mesh
// with 16 L2 banks, 32 KB 8-way 8-bank L1s, 4 MB 16-bank NUCA L2, 16 KB
// 32-bank scratchpad/stash, 32-entry MSHR and store buffer.
func Default() Config {
	return Config{
		NumSMs:     15,
		WarpsPerSM: 8,
		WarpSize:   32,
		IssueWidth: 2,

		GPUFreqMHz: 700,
		CPUFreqMHz: 2000,

		LineSize:    64,
		L1Size:      32 << 10,
		L1Assoc:     8,
		L1Banks:     8,
		L1HitLat:    1,
		L2Banks:     16,
		L2Size:      4 << 20,
		L2Assoc:     16,
		L2AccessLat: 27,
		MemLat:      170,

		MemBandwidthCycles: 4,

		MSHREntries:     32,
		StoreBufEntries: 32,

		ScratchSize:  16 << 10,
		ScratchBanks: 32,

		MeshWidth:  4,
		MeshHeight: 4,
		LinkLat:    1,
		RouterLat:  1,

		ALULat:      4,
		SFULat:      16,
		SFUInterval: 4,
		FetchLat:    3,

		MaxCycles: 50_000_000,

		Express: true,
	}
}

// Validate checks internal consistency and returns a descriptive error for
// the first violated constraint.
func (c Config) Validate() error {
	type check struct {
		ok  bool
		msg string
	}
	tiles := c.MeshWidth * c.MeshHeight
	checks := []check{
		{c.NumSMs >= 1, "NumSMs must be >= 1"},
		{c.WarpsPerSM >= 1, "WarpsPerSM must be >= 1"},
		{c.WarpSize >= 1, "WarpSize must be >= 1"},
		{c.IssueWidth >= 1, "IssueWidth must be >= 1"},
		{c.LineSize >= 8 && c.LineSize&(c.LineSize-1) == 0, "LineSize must be a power of two >= 8"},
		{c.L1Size > 0 && c.L1Assoc > 0, "L1 size and associativity must be positive"},
		{c.L1Size%(c.L1Assoc*c.LineSize) == 0, "L1Size must divide evenly into sets"},
		{c.L1Banks > 0, "L1Banks must be positive"},
		{c.L2Banks > 0 && c.L2Banks <= tiles, "L2Banks must fit on the mesh"},
		{c.L2Size%(c.L2Banks*c.L2Assoc*c.LineSize) == 0, "L2Size must divide evenly into banked sets"},
		{c.MSHREntries > 0, "MSHREntries must be positive"},
		{c.StoreBufEntries > 0, "StoreBufEntries must be positive"},
		{c.ScratchSize > 0 && c.ScratchBanks > 0, "scratchpad geometry must be positive"},
		{c.NumSMs+1 <= tiles, "mesh must have a tile per core (SMs + 1 CPU)"},
		{c.MaxCycles > 0, "MaxCycles must be positive"},
		{c.Parallel >= 0, "Parallel must be >= 0"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return fmt.Errorf("sim: invalid config: %s", ch.msg)
		}
	}
	return nil
}

// NumCores returns the total core count: NumSMs GPU cores plus one CPU.
func (c Config) NumCores() int { return c.NumSMs + 1 }

// CPUCore returns the core index of the CPU (the last core).
func (c Config) CPUCore() int { return c.NumSMs }
