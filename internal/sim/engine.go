// Package sim provides the deterministic cycle engine and the shared system
// configuration for the tightly coupled CPU-GPU simulator. All components
// advance in a fixed registration order each GPU cycle; no wall-clock time
// or map iteration order ever influences timing, so a given configuration
// always produces the identical result.
//
// The engine is quiescence-aware: a component reports from Tick whether it
// still has pending work, and an idle component leaves the active set until
// something re-arms it through its registration Handle. Because an idle
// component's Tick is required to be a pure no-op, skipping it cannot change
// the simulation — the dense loop (Config.DenseTicking, which ticks every
// component every cycle) produces byte-identical results and serves as the
// reference in cross-engine diff tests.
package sim

import (
	"errors"
	"fmt"
	"strings"
)

// Component is one simulated unit. Tick is called at most once per cycle, in
// registration order, and reports whether the component still has pending
// work of its own (queued messages, draining state machines, in-flight
// timers). A component that returns false is removed from the active set and
// will not tick again until woken via its Handle; its Tick must therefore be
// a pure no-op whenever it would return false, so that skipping the call is
// indistinguishable from making it.
type Component interface {
	Tick(cycle uint64) (busy bool)
}

// TickFunc adapts a function to the Component interface.
type TickFunc func(cycle uint64) bool

// Tick implements Component.
func (f TickFunc) Tick(cycle uint64) bool { return f(cycle) }

// Diagnoser is an optional Component extension: Diagnose returns a short
// description of the component's pending work (queue depths, in-flight
// counts, state-machine phase) for the engine's deadlock dump.
type Diagnoser interface {
	Diagnose() string
}

// Handle re-arms a registered component. Waking is idempotent and may happen
// at any point, including during the woken component's own tick: if the
// component's slot in the current cycle has already passed, it ticks again
// starting next cycle — exactly when a dense loop would first let it observe
// work created after its slot.
type Handle struct {
	e  *Engine
	id int
}

// Wake puts the component back in the active set.
func (h Handle) Wake() {
	if !h.e.active[h.id] {
		h.e.active[h.id] = true
		h.e.activeCount++
	}
}

// Engine drives the simulation: a single-threaded cycle loop over the
// registered components that skips components with no pending work.
type Engine struct {
	cycle       uint64
	comps       []Component
	names       []string
	active      []bool
	activeCount int
	dense       bool
}

// NewEngine returns an empty quiescence-aware engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// SetDense switches the engine to the dense reference loop: every component
// ticks every cycle regardless of the active set. Results are identical;
// only the per-cycle cost differs.
func (e *Engine) SetDense(dense bool) { e.dense = dense }

// Register appends a component to the tick order and returns its wake
// handle. Registration order defines evaluation order within a cycle;
// callers register producers before consumers (NoC before caches before
// cores) so messages sent in cycle N are visible no earlier than N+1.
// Components start active and are guaranteed at least one tick.
func (e *Engine) Register(name string, c Component) Handle {
	e.comps = append(e.comps, c)
	e.names = append(e.names, name)
	e.active = append(e.active, true)
	e.activeCount++
	return Handle{e: e, id: len(e.comps) - 1}
}

// Cycle returns the current cycle (the number of completed cycles).
func (e *Engine) Cycle() uint64 { return e.cycle }

// LastTick returns the cycle of the most recent completed tick — the "now"
// a component would have observed during it, and the reference cycle for
// direct probes made between engine steps (clamped to 0 before any tick).
func (e *Engine) LastTick() uint64 {
	if e.cycle > 0 {
		return e.cycle - 1
	}
	return 0
}

// ErrMaxCycles is returned by Run when the cycle limit is reached before
// done reports completion — the simulator equivalent of a watchdog timeout,
// and almost always a deadlocked workload or protocol bug.
var ErrMaxCycles = errors.New("sim: max cycles exceeded")

// ErrStalled is returned by Run when every component has quiesced but done
// still reports false: no tick can ever change anything again, so the run
// can never complete. It carries the same diagnosis dump as ErrMaxCycles.
var ErrStalled = errors.New("sim: all components idle before completion")

// Run advances the simulation until done returns true, checking done before
// every cycle. It returns the number of cycles executed by this call. Both
// failure modes — the watchdog limit and a fully quiesced-but-unfinished
// system — append a per-component diagnosis so the dump says which unit
// still held work instead of leaving a timeout opaque.
func (e *Engine) Run(done func() bool, maxCycles uint64) (uint64, error) {
	start := e.cycle
	for !done() {
		if e.cycle-start >= maxCycles {
			return e.cycle - start, fmt.Errorf("%w (%d)\n%s", ErrMaxCycles, maxCycles, e.Diagnosis())
		}
		if !e.dense && e.activeCount == 0 {
			return e.cycle - start, fmt.Errorf("%w (cycle %d)\n%s", ErrStalled, e.cycle, e.Diagnosis())
		}
		e.Step()
	}
	return e.cycle - start, nil
}

// Step executes exactly one cycle: every active component ticks in
// registration order (every component, in dense mode). A component woken
// during the pass ticks this cycle if its slot has not passed yet, next
// cycle otherwise — matching when the dense loop would first have it see
// the new work.
func (e *Engine) Step() {
	for i, c := range e.comps {
		if !e.dense && !e.active[i] {
			continue
		}
		if e.active[i] {
			e.active[i] = false
			e.activeCount--
		}
		if c.Tick(e.cycle) && !e.active[i] {
			e.active[i] = true
			e.activeCount++
		}
	}
	e.cycle++
}

// ActiveCount reports how many components currently have pending work.
func (e *Engine) ActiveCount() int { return e.activeCount }

// Diagnosis renders every registered component's name, busy/idle state, and
// (for Diagnosers) pending-work description — the deadlock dump attached to
// ErrMaxCycles and ErrStalled.
func (e *Engine) Diagnosis() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "engine diagnosis at cycle %d (%d/%d components busy):\n",
		e.cycle, e.activeCount, len(e.comps))
	for i, c := range e.comps {
		state := "idle"
		if e.active[i] {
			state = "busy"
		}
		fmt.Fprintf(&sb, "  %-10s %s", e.names[i], state)
		if d, ok := c.(Diagnoser); ok {
			fmt.Fprintf(&sb, "  %s", d.Diagnose())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
