// Package sim provides the deterministic cycle engine and the shared system
// configuration for the tightly coupled CPU-GPU simulator. All components
// advance in a fixed registration order each GPU cycle; no wall-clock time
// or map iteration order ever influences timing, so a given configuration
// always produces the identical result.
//
// The engine runs in one of four modes that all produce byte-identical
// results and differ only in per-cycle cost:
//
//   - EngineDense ticks every component every cycle — the reference loop.
//   - EngineQuiescent keeps a deterministic active set: a component reports
//     from Tick whether it still has pending work, and an idle component
//     leaves the active set until something re-arms it through its
//     registration Handle. Because an idle component's Tick is required to
//     be a pure no-op, skipping it cannot change the simulation.
//   - EngineSkip (the default) adds event-driven skip-ahead on top of the
//     active set: when every active component also implements NextEventer
//     and reports its next event strictly after the next cycle, the engine
//     jumps the clock straight to the earliest event instead of ticking
//     through the gap. Components implementing Skipper are told about the
//     jumped window so they can account the skipped cycles in bulk.
//   - EngineParallel (see parallel.go) is the skip engine with a
//     concurrent tick pass: components registered into tick groups run on
//     a bounded worker pool between a serial hub phase and a
//     deterministic registration-order commit phase, so Wake/Send side
//     effects land exactly where the serial loops put them.
//
// docs/ARCHITECTURE.md is the component author's guide to these
// contracts — the idle-tick no-op rule, Wake re-arming, the NextEvent
// never-under-promise contract, and bulk span crediting — with each
// invariant cross-referenced to the test that enforces it.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"strings"
	"sync"
)

// Component is one simulated unit. Tick is called at most once per cycle, in
// registration order, and reports whether the component still has pending
// work of its own (queued messages, draining state machines, in-flight
// timers). A component that returns false is removed from the active set and
// will not tick again until woken via its Handle; its Tick must therefore be
// a pure no-op whenever it would return false, so that skipping the call is
// indistinguishable from making it.
type Component interface {
	Tick(cycle uint64) (busy bool)
}

// TickFunc adapts a function to the Component interface.
type TickFunc func(cycle uint64) bool

// Tick implements Component.
func (f TickFunc) Tick(cycle uint64) bool { return f(cycle) }

// NoEvent is the NextEvent return value of a component whose remaining work
// waits purely on external input (a message in flight toward it, a wake from
// another component): it has no internal timer of its own, so it places no
// bound on a skip-ahead jump.
const NoEvent = ^uint64(0)

// NextEventer is the optional Component extension that enables event-driven
// skip-ahead. NextEvent is called after the component's Tick at cycle now
// and returns the earliest cycle strictly after now at which ticking the
// component could change any state or produce any output — including
// per-cycle side effects a dense loop would accumulate (retry counters,
// one-entry-per-cycle drains). A component that cannot make that promise
// must return now+1; a component waiting only on external events returns
// NoEvent. NextEvent must be read-only: it must not mutate simulation state
// or wake other components (a Wake during the engine's planning pass clamps
// the jump defensively, see Handle.Wake).
//
// The contract is "never under-promise": reporting an event later than it
// really is loses simulated work; reporting it earlier than necessary only
// costs a wasted tick and is always safe.
type NextEventer interface {
	NextEvent(now uint64) uint64
}

// Skipper is the optional Component extension notified when the engine
// jumps over a window: cycles [from, to) were skipped entirely, and the
// component's next Tick happens at cycle to. Implementations account the
// window in bulk (e.g. the GPU credits one stall classification per skipped
// cycle to the Inspector); they must not create new work or wake anyone.
type Skipper interface {
	SkipAhead(from, to uint64)
}

// Diagnoser is an optional Component extension: Diagnose returns a short
// description of the component's pending work (queue depths, in-flight
// counts, state-machine phase) for the engine's deadlock dump.
type Diagnoser interface {
	Diagnose() string
}

// EngineMode selects the scheduling loop. The zero value is EngineSkip, the
// fastest mode; all modes produce byte-identical results.
type EngineMode uint8

const (
	// EngineSkip is the quiescence-aware loop plus event-driven
	// skip-ahead over windows where every active component is a pure
	// timer-waiter.
	EngineSkip EngineMode = iota
	// EngineQuiescent is the quiescence-aware loop without skip-ahead:
	// idle components cost nothing, but the clock still advances one
	// cycle at a time.
	EngineQuiescent
	// EngineDense ticks every component every cycle — the reference loop
	// for cross-engine diff tests and scheduler-bug isolation.
	EngineDense
	// EngineParallel is the skip engine with a concurrent tick pass:
	// grouped components (see RegisterGroup) tick on a bounded worker
	// pool between a serial hub phase and a deterministic commit phase
	// (see Committer), then skip-ahead planning runs unchanged. Results
	// are byte-identical to the serial modes for any worker count.
	EngineParallel
)

// String names the mode as accepted by the CLIs' -engine flag.
func (m EngineMode) String() string {
	switch m {
	case EngineSkip:
		return "skip"
	case EngineQuiescent:
		return "quiescent"
	case EngineDense:
		return "dense"
	case EngineParallel:
		return "parallel"
	}
	return fmt.Sprintf("EngineMode(%d)", uint8(m))
}

// ParseEngineMode parses a -engine flag value.
func ParseEngineMode(s string) (EngineMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "skip", "skip-ahead", "skipahead":
		return EngineSkip, nil
	case "quiescent", "quiesce":
		return EngineQuiescent, nil
	case "dense":
		return EngineDense, nil
	case "parallel":
		return EngineParallel, nil
	}
	return EngineSkip, fmt.Errorf("sim: unknown engine mode %q (want dense, quiescent, skip, or parallel)", s)
}

// Handle re-arms a registered component. Waking is idempotent and may happen
// at any point, including during the woken component's own tick: if the
// component's slot in the current cycle has already passed, it ticks again
// starting next cycle — exactly when a dense loop would first let it observe
// work created after its slot.
type Handle struct {
	e  *Engine
	id int
}

// Wake puts the component back in the active set. A Wake that lands while
// the engine is planning a skip-ahead jump clamps the jump: new work just
// arrived, so the woken component must tick on the very next cycle exactly
// as it would under a dense loop.
func (h Handle) Wake() {
	e := h.e
	if e.inParallel {
		// A wake landing during the parallel group phase routes through
		// the group-aware path: applied directly for a same-group forward
		// wake, buffered to the post-barrier merge otherwise.
		e.parallelWake(h.id)
		return
	}
	if e.planning {
		e.wokeDuringPlan = true
	}
	if !e.active[h.id] {
		e.active[h.id] = true
		e.activeCount++
	}
}

// EngineStats counts scheduling work for benchmarks and tests; it is not
// part of any Report's JSON (all engine modes produce identical Reports).
type EngineStats struct {
	// Steps is the number of cycles actually executed (tick passes).
	Steps uint64 `json:"steps"`
	// Jumps is the number of skip-ahead jumps taken.
	Jumps uint64 `json:"jumps"`
	// SkippedCycles is the total width of all jumped windows: simulated
	// cycles that were accounted without a tick pass.
	SkippedCycles uint64 `json:"skippedCycles"`
	// ExpressDeliveries counts mesh messages whose whole traversal was
	// modeled as one timed event (express routing), and ExpressDemotions
	// counts express flits materialized back into the per-hop pipeline
	// by potentially contending traffic. The engine itself does not
	// produce these; the GPU run loop copies them from the mesh so one
	// stats block describes the run's whole event-density picture.
	ExpressDeliveries uint64 `json:"expressDeliveries"`
	ExpressDemotions  uint64 `json:"expressDemotions"`
	// JumpHist is the skip-jump size histogram: bucket i counts jumps of
	// width [2^i, 2^(i+1)) cycles, with the last bucket absorbing
	// anything wider. The bucket sum always equals Jumps.
	JumpHist [JumpHistBuckets]uint64 `json:"jumpHist"`
	// PhaseNanos attributes the parallel tick passes' wall time to the
	// hub, group, and commit phases; zero under the serial engines. Wall
	// time is inherently nondeterministic, which is fine here: EngineStats
	// never enters the default Report encoding.
	PhaseNanos PhaseNanos `json:"phaseNanos"`
}

// JumpHistBuckets is the number of power-of-two jump-width buckets in
// EngineStats.JumpHist.
const JumpHistBuckets = 16

// PhaseNanos is the parallel engine's per-phase wall-time attribution, in
// nanoseconds summed over all tick passes of a run.
type PhaseNanos struct {
	// Hub is the serial hub-prefix phase (mesh, memory controller, L2).
	Hub uint64 `json:"hub"`
	// Group is the concurrent group phase ({CoreMem, SM} pairs).
	Group uint64 `json:"group"`
	// Commit is the registration-order commit phase.
	Commit uint64 `json:"commit"`
}

// jumpBucket returns the JumpHist bucket for a jump of the given width
// (width >= 1: bucket floor(log2 width), capped at the last bucket).
func jumpBucket(width uint64) int {
	b := bits.Len64(width) - 1
	if b >= JumpHistBuckets {
		b = JumpHistBuckets - 1
	}
	return b
}

// Observer receives engine scheduling events for structured tracing
// (implemented by trace.Collector; defined here so sim stays free of trace
// dependencies). Both callbacks run on the engine goroutine.
type Observer interface {
	// Jump reports a skip-ahead jump: the clock advanced from from
	// straight to to, with the window credited in bulk.
	Jump(from, to uint64)
	// TickPhases reports one parallel tick pass's per-phase wall times.
	TickPhases(cycle uint64, hubNs, groupNs, commitNs int64)
}

// Engine drives the simulation: a single-threaded cycle loop over the
// registered components that skips components with no pending work and, in
// skip mode, jumps gaps where every active component is waiting on a timer.
type Engine struct {
	cycle       uint64
	comps       []Component
	names       []string
	active      []bool
	activeCount int
	mode        EngineMode

	// nexters caches the NextEventer assertion per component (nil when
	// not implemented), and skippers the Skipper assertion, so planning
	// a jump costs no interface type switches.
	nexters  []NextEventer
	skippers []Skipper

	// skipLimit bounds jumps so the watchdog in Run fires at exactly the
	// same cycle it would under the dense loop.
	skipLimit      uint64
	planning       bool
	wokeDuringPlan bool
	// lastBound is the component that clamped the previous failed plan
	// to the very next cycle; consulting it first lets the common
	// no-jump case abort after a single NextEvent call. The heuristic is
	// a pure function of simulation state, so determinism is unaffected.
	lastBound int
	// planBackoff delays the next planning attempt after consecutive
	// failures (capped exponential): event-dense phases stop paying for
	// plans that cannot jump, at the cost of entering a jumpable window
	// up to a few cycles late. Purely a wall-clock heuristic — skipped
	// plans only mean ticked-through cycles, never different results.
	planBackoff, planFails uint32

	// Parallel mode state (see parallel.go). The hub prefix [0, hubLen)
	// holds the ungrouped components of the serial phase; compGroup maps
	// a component to its tick group (-1 for hub) and memberIdx to its
	// slot within the group. committers caches the Committer assertion
	// per component like nexters/skippers.
	workers      int
	hubLen       int
	compGroup    []int
	memberIdx    []int
	committers   []Committer
	groups       [][]int
	groupCursor  []int
	groupDelta   []int
	activeGroups []int
	inParallel   bool
	wakeMu       sync.Mutex
	stagedWakes  []int
	pool         *tickPool

	stats EngineStats
	// obs, when set, receives jump and phase events (see Observer); nil
	// costs one pointer test per jump / parallel pass.
	obs Observer
}

// NewEngine returns an empty engine at cycle 0 in the default (skip-ahead)
// mode.
func NewEngine() *Engine { return &Engine{skipLimit: NoEvent, lastBound: -1} }

// SetMode selects the scheduling loop.
func (e *Engine) SetMode(m EngineMode) { e.mode = m }

// Mode returns the current scheduling loop.
func (e *Engine) Mode() EngineMode { return e.mode }

// SetDense is a legacy switch kept for harness code: true selects the dense
// reference loop, false the default skip-ahead mode.
func (e *Engine) SetDense(dense bool) {
	if dense {
		e.mode = EngineDense
	} else {
		e.mode = EngineSkip
	}
}

// Stats returns scheduling counters accumulated since construction.
func (e *Engine) Stats() EngineStats { return e.stats }

// SetObserver installs (or, with nil, removes) the scheduling-event
// observer. Observation never changes scheduling decisions or results.
func (e *Engine) SetObserver(o Observer) { e.obs = o }

// Register appends a component to the tick order and returns its wake
// handle. Registration order defines evaluation order within a cycle;
// callers register producers before consumers (NoC before caches before
// cores) so messages sent in cycle N are visible no earlier than N+1.
// Components start active and are guaranteed at least one tick. A
// component registered this way is a hub component: under the parallel
// engine it ticks in the serial phase (see RegisterGroup).
func (e *Engine) Register(name string, c Component) Handle {
	return e.register(name, c, -1)
}

// Cycle returns the current cycle (the number of completed cycles).
func (e *Engine) Cycle() uint64 { return e.cycle }

// LastTick returns the cycle of the most recent completed tick — the "now"
// a component would have observed during it, and the reference cycle for
// direct probes made between engine steps (clamped to 0 before any tick).
func (e *Engine) LastTick() uint64 {
	if e.cycle > 0 {
		return e.cycle - 1
	}
	return 0
}

// ErrMaxCycles is returned by Run when the cycle limit is reached before
// done reports completion — the simulator equivalent of a watchdog timeout,
// and almost always a deadlocked workload or protocol bug.
var ErrMaxCycles = errors.New("sim: max cycles exceeded")

// ErrStalled is returned by Run when every component has quiesced but done
// still reports false: no tick can ever change anything again, so the run
// can never complete. It carries the same diagnosis dump as ErrMaxCycles.
var ErrStalled = errors.New("sim: all components idle before completion")

// ErrDeadline is returned by RunContext when the context's wall-clock
// deadline expires mid-run. Unlike ErrMaxCycles (an in-sim watchdog on
// simulated cycles) this is a bound on real time; it carries the same
// per-component diagnosis dump, so a deadline on a wedged simulation still
// says which unit held work.
var ErrDeadline = errors.New("sim: wall-clock deadline exceeded")

// ErrCanceled is returned by RunContext when the context is canceled
// mid-run — a deliberate stop (job deletion, shutdown), so no diagnosis
// dump is attached.
var ErrCanceled = errors.New("sim: run canceled")

// ctxCheckInterval is the number of engine iterations (tick passes or
// skip-ahead jumps) between cooperative context checks in RunContext. The
// poll is a non-blocking select, so the steady-state cost is one channel
// check per interval; cancellation latency is bounded by the wall-clock
// cost of one interval's worth of tick passes.
const ctxCheckInterval = 1024

// Run advances the simulation until done returns true with no external
// cancellation: RunContext under context.Background().
func (e *Engine) Run(done func() bool, maxCycles uint64) (uint64, error) {
	return e.RunContext(context.Background(), done, maxCycles)
}

// RunContext advances the simulation until done returns true, checking done
// before every cycle. It returns the number of cycles executed by this call.
// Both failure modes — the watchdog limit and a fully quiesced-but-unfinished
// system — append a per-component diagnosis so the dump says which unit
// still held work instead of leaving a timeout opaque.
//
// ctx is polled cooperatively every ctxCheckInterval iterations, at tick/jump
// boundaries only — never mid-cycle — so cancellation cannot perturb
// simulation state: a run that completes did exactly what an uncancellable
// run would have done. A fired deadline returns ErrDeadline (with the
// diagnosis dump); any other cancellation returns ErrCanceled.
func (e *Engine) RunContext(ctx context.Context, done func() bool, maxCycles uint64) (uint64, error) {
	start := e.cycle
	e.startPool()
	defer e.stopPool()
	e.skipLimit = NoEvent
	if maxCycles < NoEvent-start {
		// Jumping past the watchdog would report a different cycle count
		// than the dense loop; clamp jumps to the limit instead.
		e.skipLimit = start + maxCycles
	}
	defer func() { e.skipLimit = NoEvent }()
	ctxDone := ctx.Done()
	sincePoll := 0
	for !done() {
		if e.cycle-start >= maxCycles {
			return e.cycle - start, fmt.Errorf("%w (%d)\n%s", ErrMaxCycles, maxCycles, e.Diagnosis())
		}
		if e.mode != EngineDense && e.activeCount == 0 {
			return e.cycle - start, fmt.Errorf("%w (cycle %d)\n%s", ErrStalled, e.cycle, e.Diagnosis())
		}
		if ctxDone != nil {
			if sincePoll++; sincePoll >= ctxCheckInterval {
				sincePoll = 0
				select {
				case <-ctxDone:
					return e.cycle - start, e.contextError(ctx)
				default:
				}
			}
		}
		e.Step()
	}
	return e.cycle - start, nil
}

// contextError converts a fired context into the engine's typed error: a
// deadline becomes ErrDeadline with the diagnosis dump (the caller wants to
// know what the simulation was stuck on), a plain cancel becomes ErrCanceled
// without one (the caller asked for the stop).
func (e *Engine) contextError(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("%w (cycle %d)\n%s", ErrDeadline, e.cycle, e.Diagnosis())
	}
	return fmt.Errorf("%w (cycle %d)", ErrCanceled, e.cycle)
}

// Step executes exactly one cycle: every active component ticks in
// registration order (every component, in dense mode). A component woken
// during the pass ticks this cycle if its slot has not passed yet, next
// cycle otherwise — matching when the dense loop would first have it see
// the new work. In skip mode, a completed cycle whose active components are
// all waiting on known future events advances the clock straight to the
// earliest one.
func (e *Engine) Step() {
	if e.mode == EngineParallel {
		e.stepParallel()
	} else {
		dense := e.mode == EngineDense
		for i, c := range e.comps {
			if !dense && !e.active[i] {
				continue
			}
			if e.active[i] {
				e.active[i] = false
				e.activeCount--
			}
			if c.Tick(e.cycle) && !e.active[i] {
				e.active[i] = true
				e.activeCount++
			}
		}
	}
	e.cycle++
	e.stats.Steps++
	if (e.mode == EngineSkip || e.mode == EngineParallel) && e.activeCount > 0 {
		if e.planBackoff > 0 {
			e.planBackoff--
		} else if e.trySkip() {
			e.planFails = 0
		} else {
			// Capped exponential backoff: 0, 1, 3, 7, then 15 cycles
			// between attempts while plans keep failing.
			if e.planFails < 5 {
				e.planFails++
			}
			e.planBackoff = 1<<e.planFails>>1 - 1
		}
	}
}

// trySkip implements the skip-ahead jump after a completed tick pass. The
// clock currently sits at the next cycle to execute; if every active
// component implements NextEventer and the minimum reported event lies
// strictly beyond it, the window up to that event is credited to Skippers
// in bulk and the clock jumps. Any Wake observed while planning aborts the
// jump (an arrival needs the very next cycle), and jumps never cross the
// watchdog limit installed by Run.
func (e *Engine) trySkip() (jumped bool) {
	now := e.cycle - 1 // the cycle the tick pass just executed
	e.planning, e.wokeDuringPlan = true, false
	defer func() { e.planning = false }()
	// Fast path: re-consult the component that clamped the previous failed
	// plan. If it still demands the very next cycle — the common case in
	// event-dense phases — the plan aborts after a single call; otherwise
	// the value is kept so the full scan below does not repeat the call.
	fastBound, fastT := -1, uint64(0)
	if b := e.lastBound; b >= 0 && b < len(e.comps) && e.active[b] {
		ne := e.nexters[b]
		if ne == nil {
			return false
		}
		if t := ne.NextEvent(now); t <= e.cycle {
			return false
		} else {
			fastBound, fastT = b, t
		}
	}
	target := NoEvent
	for i := range e.comps {
		if !e.active[i] {
			continue
		}
		ne := e.nexters[i]
		if ne == nil {
			e.lastBound = i
			return false
		}
		t := fastT
		if i != fastBound {
			t = ne.NextEvent(now)
		}
		if t <= now {
			// A component may not promise anything earlier than the
			// next cycle; treat a stale report as "tick me next cycle".
			t = e.cycle
		}
		if t <= e.cycle {
			// This component clamps the plan to the next cycle: no
			// jump is possible, stop consulting the rest.
			e.lastBound = i
			return false
		}
		if t < target {
			target = t
		}
	}
	e.lastBound = -1
	if e.wokeDuringPlan || target == NoEvent {
		// Either new work arrived mid-plan, or every active component is
		// waiting on an external event that no active component will
		// produce — tick densely and let the stall detector in Run (or
		// the events themselves) sort it out.
		return false
	}
	if target > e.skipLimit {
		target = e.skipLimit
	}
	if target <= e.cycle {
		return false
	}
	for i := range e.comps {
		if !e.active[i] {
			continue
		}
		if s := e.skippers[i]; s != nil {
			s.SkipAhead(e.cycle, target)
		}
	}
	width := target - e.cycle
	e.stats.Jumps++
	e.stats.SkippedCycles += width
	e.stats.JumpHist[jumpBucket(width)]++
	if e.obs != nil {
		e.obs.Jump(e.cycle, target)
	}
	e.cycle = target
	return true
}

// ActiveCount reports how many components currently have pending work.
func (e *Engine) ActiveCount() int { return e.activeCount }

// diagnosisMaxComponents bounds the Diagnosis dump. The dump is embedded in
// ErrMaxCycles/ErrStalled/ErrDeadline error strings, which the serve layer
// stores per job and ships over SSE — on large meshes an unbounded dump
// grows linearly with component count. Busy components carry the signal
// (they are what a deadlock dump exists to name), so they are listed first;
// idle ones fill the remaining budget and the rest collapse into one
// elision note.
const diagnosisMaxComponents = 32

// Diagnosis renders registered components' names, busy/idle state,
// next-event time (for NextEventers), and (for Diagnosers) pending-work
// description — the deadlock dump attached to ErrMaxCycles, ErrStalled, and
// ErrDeadline. The next-event column says when each busy component expected
// to make progress; "external" marks a component waiting purely on input
// from others. At most diagnosisMaxComponents components are listed — all
// of them in registration order when the system fits, otherwise busy
// components first (still in registration order) with a trailing note
// counting what was elided.
func (e *Engine) Diagnosis() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "engine diagnosis at cycle %d (%d/%d components busy):\n",
		e.cycle, e.activeCount, len(e.comps))
	now := e.LastTick()
	line := func(i int) {
		c := e.comps[i]
		state := "idle"
		if e.active[i] {
			state = "busy"
		}
		fmt.Fprintf(&sb, "  %-10s %s", e.names[i], state)
		if ne, ok := c.(NextEventer); ok && e.active[i] {
			if t := ne.NextEvent(now); t == NoEvent {
				sb.WriteString("  next-event=external")
			} else {
				fmt.Fprintf(&sb, "  next-event=%d", t)
			}
		}
		if d, ok := c.(Diagnoser); ok {
			fmt.Fprintf(&sb, "  %s", d.Diagnose())
		}
		sb.WriteByte('\n')
	}
	if len(e.comps) <= diagnosisMaxComponents {
		for i := range e.comps {
			line(i)
		}
		return sb.String()
	}
	printed := 0
	for i := range e.comps {
		if e.active[i] && printed < diagnosisMaxComponents {
			line(i)
			printed++
		}
	}
	for i := range e.comps {
		if !e.active[i] && printed < diagnosisMaxComponents {
			line(i)
			printed++
		}
	}
	fmt.Fprintf(&sb, "  ... %d more components elided (dump capped at %d)\n",
		len(e.comps)-printed, diagnosisMaxComponents)
	return sb.String()
}
