// Package sim provides the deterministic cycle engine and the shared system
// configuration for the tightly coupled CPU-GPU simulator. All components
// advance in a fixed registration order each GPU cycle; no wall-clock time
// or map iteration order ever influences timing, so a given configuration
// always produces the identical result.
package sim

import (
	"errors"
	"fmt"
)

// Ticker is one simulated component. Tick is called exactly once per GPU
// cycle, in registration order.
type Ticker interface {
	Tick(cycle uint64)
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(cycle uint64)

// Tick implements Ticker.
func (f TickFunc) Tick(cycle uint64) { f(cycle) }

// Engine drives the simulation: a flat, single-threaded cycle loop over the
// registered components.
type Engine struct {
	cycle   uint64
	tickers []Ticker
	names   []string
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Register appends a component to the tick order. The name is used in
// error messages only. Registration order defines evaluation order within a
// cycle; callers register producers before consumers (NoC before caches
// before cores) so messages sent in cycle N are visible no earlier than N+1.
func (e *Engine) Register(name string, t Ticker) {
	e.tickers = append(e.tickers, t)
	e.names = append(e.names, name)
}

// Cycle returns the current cycle (the number of completed cycles).
func (e *Engine) Cycle() uint64 { return e.cycle }

// ErrMaxCycles is returned by Run when the cycle limit is reached before
// done reports completion — the simulator equivalent of a watchdog timeout,
// and almost always a deadlocked workload or protocol bug.
var ErrMaxCycles = errors.New("sim: max cycles exceeded")

// Run advances the simulation until done returns true, checking done before
// every cycle. It returns the number of cycles executed by this call.
func (e *Engine) Run(done func() bool, maxCycles uint64) (uint64, error) {
	start := e.cycle
	for !done() {
		if e.cycle-start >= maxCycles {
			return e.cycle - start, fmt.Errorf("%w (%d)", ErrMaxCycles, maxCycles)
		}
		e.Step()
	}
	return e.cycle - start, nil
}

// Step executes exactly one cycle.
func (e *Engine) Step() {
	for _, t := range e.tickers {
		t.Tick(e.cycle)
	}
	e.cycle++
}
