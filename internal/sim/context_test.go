package sim

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestRunContextCancel: canceling the context stops a spinning engine at
// its next cooperative check — within one ctxCheckInterval of cycles —
// with the typed ErrCanceled.
func TestRunContextCancel(t *testing.T) {
	eng := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	var ticks uint64
	eng.Register("spin", TickFunc(func(uint64) bool {
		if ticks++; ticks == 100 {
			cancel()
		}
		return true
	}))
	n, err := eng.RunContext(ctx, func() bool { return false }, 1<<40)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if n > 100+2*ctxCheckInterval {
		t.Errorf("ran %d cycles after cancel at 100; want within ~%d", n, ctxCheckInterval)
	}
}

// TestRunContextPreCanceled: an already-fired context still stops the run
// at the first check instead of simulating to the watchdog.
func TestRunContextPreCanceled(t *testing.T) {
	eng := NewEngine()
	eng.Register("spin", TickFunc(func(uint64) bool { return true }))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := eng.RunContext(ctx, func() bool { return false }, 1<<40)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if n > 2*ctxCheckInterval {
		t.Errorf("pre-canceled run still simulated %d cycles", n)
	}
}

// TestRunContextDeadline: an expired deadline returns ErrDeadline carrying
// the engine diagnosis, so a wedged run still says which unit held work.
func TestRunContextDeadline(t *testing.T) {
	eng := NewEngine()
	eng.Register("wedged-unit", TickFunc(func(uint64) bool { return true }))
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := eng.RunContext(ctx, func() bool { return false }, 1<<40)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !strings.Contains(err.Error(), "wedged-unit") || !strings.Contains(err.Error(), "busy") {
		t.Errorf("deadline error lacks component diagnosis: %v", err)
	}
}

// TestRunContextDoneWinsOverCancel: a run that completes never reports a
// context error, even if the context fires on the same cycle — completed
// work is not retroactively failed.
func TestRunContextDoneWinsOverCancel(t *testing.T) {
	eng := NewEngine()
	count := 0
	eng.Register("c", TickFunc(func(uint64) bool { count++; return true }))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := eng.RunContext(ctx, func() bool { return count >= 1 }, 100)
	if err != nil || n != 1 {
		t.Fatalf("ran %d cycles, err %v; want 1 cycle, nil", n, err)
	}
}

// TestRunBackgroundUnaffected: the context path must not perturb the
// plain Run contract (byte-identity depends on it).
func TestRunBackgroundUnaffected(t *testing.T) {
	eng := NewEngine()
	count := 0
	eng.Register("c", TickFunc(func(uint64) bool { count++; return true }))
	n, err := eng.Run(func() bool { return count >= 5 }, 100)
	if err != nil || n != 5 {
		t.Fatalf("ran %d cycles, err %v; want 5, nil", n, err)
	}
}

// TestDiagnosisBounded: past diagnosisMaxComponents registered
// components, the dump lists busy components first, caps the listing, and
// says how many were elided — an ErrMaxCycles on the full 70-component
// system must not turn error strings into novels.
func TestDiagnosisBounded(t *testing.T) {
	eng := NewEngine()
	total := diagnosisMaxComponents + 8
	for i := 0; i < total; i++ {
		// Components 3 and total-1 stay busy; the rest quiesce instantly.
		busy := i == 3 || i == total-1
		eng.Register(fmt.Sprintf("comp%02d", i), TickFunc(func(uint64) bool { return busy }))
	}
	eng.Step() // let the idle components quiesce
	d := eng.Diagnosis()
	busyLine := regexp.MustCompile(`comp03\s+busy`)
	lastLine := regexp.MustCompile(fmt.Sprintf(`comp%02d\s+busy`, total-1))
	if !busyLine.MatchString(d) || !lastLine.MatchString(d) {
		t.Errorf("busy components missing from bounded diagnosis:\n%s", d)
	}
	if lines := strings.Count(d, "\n  "); lines > diagnosisMaxComponents+1 {
		t.Errorf("diagnosis lists %d lines, want at most %d plus the elision note", lines, diagnosisMaxComponents)
	}
	if !strings.Contains(d, "elided") {
		t.Errorf("over-cap diagnosis missing elision note:\n%s", d)
	}
}

// TestDiagnosisSmallSystemUnchanged: at or under the cap the dump still
// lists every component in registration order, no elision note.
func TestDiagnosisSmallSystemUnchanged(t *testing.T) {
	eng := NewEngine()
	eng.Register("a", TickFunc(func(uint64) bool { return true }))
	eng.Register("b", TickFunc(func(uint64) bool { return false }))
	eng.Step()
	d := eng.Diagnosis()
	ia := regexp.MustCompile(`\n\s+a\s+busy`).FindStringIndex(d)
	ib := regexp.MustCompile(`\n\s+b\s+idle`).FindStringIndex(d)
	if ia == nil || ib == nil || ib[0] < ia[0] {
		t.Errorf("small diagnosis lost registration order:\n%s", d)
	}
	if strings.Contains(d, "elided") {
		t.Errorf("small diagnosis has an elision note:\n%s", d)
	}
}

// panicComp panics on its nth group-phase tick.
type panicComp struct {
	at    int
	count int
}

func (c *panicComp) Tick(cycle uint64) bool {
	c.count++
	if c.count == c.at {
		panic(fmt.Sprintf("panicComp: injected at tick %d", c.at))
	}
	return true
}

func (c *panicComp) Commit(cycle uint64) {}

// TestParallelTickPanicSurfaces: a panic on a tick-pool worker is
// captured, re-panicked on the engine goroutine as a *PanicError carrying
// the worker stack, and the pool survives to serve the recover path —
// the caller's recover (the serve layer) sees a typed value, not a dead
// process.
func TestParallelTickPanicSurfaces(t *testing.T) {
	eng := NewEngine()
	eng.SetMode(EngineParallel)
	eng.SetParallel(2)
	eng.Register("hub", TickFunc(func(uint64) bool { return true }))
	eng.RegisterGroup("boom", &panicComp{at: 3}, 0)
	eng.RegisterGroup("calm", &emitComp{name: "calm", staged: true, led: new([]string), n: 100}, 1)

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		eng.Run(func() bool { return false }, 1000)
	}()
	pe, ok := recovered.(*PanicError)
	if !ok {
		t.Fatalf("recovered %T (%v), want *PanicError", recovered, recovered)
	}
	if !strings.Contains(fmt.Sprint(pe.Value), "injected at tick 3") {
		t.Errorf("PanicError.Value = %v, want the component's panic value", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "panicComp") {
		t.Errorf("PanicError.Stack missing the worker stack")
	}
}
