package sim

import (
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"time"
)

// This file implements the parallel tick engine (EngineParallel): a tick
// pass that partitions the grouped components of the active set across a
// bounded worker pool while keeping results byte-identical to the serial
// engines. The pass has three phases:
//
//  1. Serial phase — the registration-order prefix of ungrouped ("hub")
//     components ticks exactly as under the serial engines. The hub holds
//     the components that exchange work with everyone in the same cycle
//     (the mesh, the memory controller, the L2 banks); running them first,
//     serially, means every delivery they make lands before any grouped
//     component observes the cycle.
//  2. Group phase — components registered with RegisterGroup tick on the
//     worker pool, whole groups at a time. Members of one group tick in
//     registration order on one worker. The component contract (see
//     docs/ARCHITECTURE.md) is that during this phase a component may only
//     touch its own group's state, thread-safe shared fabric (the memory
//     backing, the inspector's per-SM shards), and its own staging
//     buffers; every cross-group side effect — a mesh send, a wake of
//     another group, a shared-counter update — must be deferred to the
//     commit phase. Wakes targeting a component whose slot already passed
//     (or another group) are buffered and applied after the phase barrier;
//     waking is idempotent, so the application order cannot matter.
//  3. Commit phase — after the barrier, every Committer runs in
//     registration order on the main goroutine and applies its staged
//     side effects. Registration order is exactly the order the serial
//     engines would have produced those effects mid-tick, so downstream
//     state (mesh FIFO order, block handout order) is bit-for-bit the
//     same.
//
// Skip-ahead planning then runs unchanged on the merged active set: the
// parallel engine is the skip engine with a concurrent tick pass.
type Committer interface {
	// Commit applies the side effects the component staged during the
	// tick pass at cycle. It runs on the engine goroutine, in
	// registration order, and may freely send messages and wake other
	// components. Commit is called every parallel tick pass, staged work
	// or not, so implementations must make the empty case cheap.
	Commit(cycle uint64)
}

// cursorIdle marks a group that is not being processed by the current
// group phase: no member index ever compares >= to it, so wakes for its
// members take the buffered path.
const cursorIdle = math.MaxInt

// SetParallel sets the worker count for the parallel tick pass. Worker
// count is a pure wall-clock knob: results are identical for any value,
// including 1 (which runs the parallel phases inline on the engine
// goroutine). The pool is started by Run and stopped when Run returns.
func (e *Engine) SetParallel(workers int) { e.workers = workers }

// RegisterGroup appends a component to the tick order like Register and
// assigns it to a parallel tick group. Components sharing a group tick on
// one worker in registration order; distinct groups may tick concurrently
// during a parallel pass, so everything a grouped component touches
// mid-tick must stay within its group (see Committer). Under the serial
// engines the group is ignored and RegisterGroup behaves exactly like
// Register. All ungrouped (hub) components must be registered before the
// first grouped one — the parallel pass ticks the hub prefix serially
// before the group phase.
func (e *Engine) RegisterGroup(name string, c Component, group int) Handle {
	if group < 0 {
		panic("sim: RegisterGroup requires group >= 0")
	}
	return e.register(name, c, group)
}

// register is the shared registration path; group -1 marks a hub (serial
// phase) component.
func (e *Engine) register(name string, c Component, group int) Handle {
	if group < 0 && len(e.groups) > 0 {
		panic("sim: hub component " + name + " registered after grouped components (hub must be a registration prefix)")
	}
	id := len(e.comps)
	e.comps = append(e.comps, c)
	e.names = append(e.names, name)
	e.active = append(e.active, true)
	e.activeCount++
	ne, _ := c.(NextEventer)
	e.nexters = append(e.nexters, ne)
	sk, _ := c.(Skipper)
	e.skippers = append(e.skippers, sk)
	cm, _ := c.(Committer)
	e.committers = append(e.committers, cm)
	e.compGroup = append(e.compGroup, group)
	if group >= 0 {
		for len(e.groups) <= group {
			e.groups = append(e.groups, nil)
			e.groupCursor = append(e.groupCursor, cursorIdle)
			e.groupDelta = append(e.groupDelta, 0)
		}
		e.memberIdx = append(e.memberIdx, len(e.groups[group]))
		e.groups[group] = append(e.groups[group], id)
	} else {
		e.memberIdx = append(e.memberIdx, 0)
		e.hubLen = id + 1
	}
	return Handle{e: e, id: id}
}

// stepParallel executes one parallel tick pass (the EngineParallel body of
// Step): serial hub prefix, concurrent group phase, then the
// registration-order commit phase. Wall time is attributed per phase into
// EngineStats.PhaseNanos — a pure measurement (a few clock reads per pass,
// dwarfed by the pool barriers) that never influences scheduling.
func (e *Engine) stepParallel() {
	cycle := e.cycle
	t0 := time.Now()
	// Phase 1: hub components, serial, exactly the serial engines' loop.
	for i := 0; i < e.hubLen; i++ {
		if !e.active[i] {
			continue
		}
		e.active[i] = false
		e.activeCount--
		if e.comps[i].Tick(cycle) && !e.active[i] {
			e.active[i] = true
			e.activeCount++
		}
	}
	t1 := time.Now()
	// Phase 2: grouped components on the pool.
	if len(e.groups) > 0 {
		e.runGroupPhase(cycle)
	}
	t2 := time.Now()
	// Phase 3: staged side effects, registration order.
	for _, cm := range e.committers {
		if cm != nil {
			cm.Commit(cycle)
		}
	}
	t3 := time.Now()
	hub, group, commit := t1.Sub(t0), t2.Sub(t1), t3.Sub(t2)
	e.stats.PhaseNanos.Hub += uint64(hub)
	e.stats.PhaseNanos.Group += uint64(group)
	e.stats.PhaseNanos.Commit += uint64(commit)
	if e.obs != nil {
		e.obs.TickPhases(cycle, int64(hub), int64(group), int64(commit))
	}
}

// runGroupPhase ticks every group holding at least one active component.
// The active-group list is a pure function of the active set, and the
// inline fallback (single worker, or fewer than two active groups) runs
// the identical code on the engine goroutine, so scheduling never leaks
// into results.
func (e *Engine) runGroupPhase(cycle uint64) {
	act := e.activeGroups[:0]
	for g, members := range e.groups {
		for _, i := range members {
			if e.active[i] {
				act = append(act, g)
				break
			}
		}
	}
	e.activeGroups = act
	if len(act) == 0 {
		return
	}
	e.inParallel = true
	if e.pool == nil || len(act) < 2 {
		for _, g := range act {
			e.runGroup(g, cycle)
		}
	} else {
		e.pool.run(e, act, cycle)
	}
	e.inParallel = false
	// Merge: fold the per-group active-count deltas, then apply buffered
	// wakes. Waking is idempotent (a flag set), so the buffer's arrival
	// order — the only schedule-dependent state of the pass — cannot
	// influence the merged result.
	for _, g := range act {
		e.activeCount += e.groupDelta[g]
		e.groupDelta[g] = 0
	}
	for _, id := range e.stagedWakes {
		if !e.active[id] {
			e.active[id] = true
			e.activeCount++
		}
	}
	e.stagedWakes = e.stagedWakes[:0]
}

// runGroup ticks one group's members in registration order, applying the
// serial engine's deactivate-tick-reactivate bookkeeping with the
// active-count delta accumulated per group (only this worker touches it).
// The cursor publishes the member currently ticking so same-group forward
// wakes (a member arming a later member, or itself) take effect within
// this pass exactly as they would mid-loop under the serial engines.
func (e *Engine) runGroup(g int, cycle uint64) {
	members := e.groups[g]
	for idx, i := range members {
		e.groupCursor[g] = idx
		if !e.active[i] {
			continue
		}
		e.active[i] = false
		e.groupDelta[g]--
		if e.comps[i].Tick(cycle) && !e.active[i] {
			e.active[i] = true
			e.groupDelta[g]++
		}
	}
	e.groupCursor[g] = cursorIdle
}

// parallelWake is Handle.Wake's group-phase path. A forward wake within
// the group currently ticking on the calling worker is applied directly —
// the target's slot has not passed, matching the serial engines' same-
// cycle semantics. Everything else (later groups, passed slots, hub
// components) is buffered and applied after the barrier, which is when a
// serial pass would next let the target tick anyway.
func (e *Engine) parallelWake(id int) {
	if g := e.compGroup[id]; g >= 0 && e.memberIdx[id] >= e.groupCursor[g] {
		if !e.active[id] {
			e.active[id] = true
			e.groupDelta[g]++
		}
		return
	}
	e.wakeMu.Lock()
	e.stagedWakes = append(e.stagedWakes, id)
	e.wakeMu.Unlock()
}

// tickPool is the persistent worker pool behind the group phase. Workers
// are assigned active groups round-robin by position; the engine
// goroutine takes stripe 0 itself, so -parallel-ticks N costs N-1
// goroutines. Channel handoffs give the usual happens-before edges: pass
// state written before the kick is visible to workers, worker writes are
// visible to the engine after the barrier.
type tickPool struct {
	n     int // total workers including the engine goroutine
	kicks []chan struct{}
	wg    sync.WaitGroup
	quit  chan struct{}

	// pass state, written by the engine goroutine before kicking
	eng   *Engine
	act   []int
	cycle uint64

	// Panic containment: a component panic on a worker goroutine would
	// kill the whole process (a goroutine panic cannot be recovered by
	// anyone else), so every stripe runs under a recover that parks the
	// first panic here; run re-throws it on the engine goroutine after
	// the barrier, where the caller's own recover (the sweep pool, the
	// serve layer) can contain it to one simulation.
	panicMu    sync.Mutex
	panicVal   any
	panicStack []byte
}

// PanicError is the value re-panicked on the engine goroutine when a
// parallel tick-pass worker panicked: the original panic value plus the
// worker's stack at the point of failure, which would otherwise be lost
// with the worker goroutine.
type PanicError struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking worker's stack trace.
	Stack []byte
}

// Error renders the original panic value and the worker stack.
func (p *PanicError) Error() string {
	return fmt.Sprintf("panic on parallel tick worker: %v\n%s", p.Value, p.Stack)
}

func newTickPool(workers int) *tickPool {
	p := &tickPool{n: workers, quit: make(chan struct{})}
	for w := 1; w < workers; w++ {
		kick := make(chan struct{}, 1)
		p.kicks = append(p.kicks, kick)
		go p.worker(w, kick)
	}
	return p
}

func (p *tickPool) worker(w int, kick chan struct{}) {
	for {
		select {
		case <-kick:
			p.runStripe(w)
			p.wg.Done()
		case <-p.quit:
			return
		}
	}
}

// runStripe ticks this worker's round-robin share of the active groups,
// containing any component panic to the pool's panic slot (first panic
// wins; later ones on other stripes describe the same broken pass).
func (p *tickPool) runStripe(w int) {
	defer func() {
		if r := recover(); r != nil {
			p.panicMu.Lock()
			if p.panicVal == nil {
				p.panicVal = r
				p.panicStack = debug.Stack()
			}
			p.panicMu.Unlock()
		}
	}()
	for j := w; j < len(p.act); j += p.n {
		p.eng.runGroup(p.act[j], p.cycle)
	}
}

// run executes one group phase across the pool and blocks until every
// group has ticked. A panic captured on any stripe is re-thrown here, on
// the engine goroutine, as a *PanicError — after the barrier, so no worker
// is still touching engine state while the caller unwinds.
func (p *tickPool) run(e *Engine, act []int, cycle uint64) {
	p.eng, p.act, p.cycle = e, act, cycle
	p.wg.Add(len(p.kicks))
	for _, kick := range p.kicks {
		kick <- struct{}{}
	}
	p.runStripe(0)
	p.wg.Wait()
	if p.panicVal != nil {
		err := &PanicError{Value: p.panicVal, Stack: p.panicStack}
		p.panicVal, p.panicStack = nil, nil
		panic(err)
	}
}

// stop terminates the pool's goroutines.
func (p *tickPool) stop() { close(p.quit) }

// startPool brings the worker pool up for a Run in parallel mode; Run
// tears it down on return so engines never leak goroutines.
func (e *Engine) startPool() {
	if e.mode == EngineParallel && e.workers >= 2 && e.pool == nil {
		e.pool = newTickPool(e.workers)
	}
}

func (e *Engine) stopPool() {
	if e.pool != nil {
		e.pool.stop()
		e.pool = nil
	}
}
