package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// emitComp is the synthetic component of the parallel-engine tests: busy
// for n ticks, and each tick it emits one "name@cycle" event into the
// shared ledger. In staged mode (the parallel component contract) the
// event is buffered during Tick and flushed by Commit; in serial mode it
// is appended directly mid-tick. The ledger therefore records the exact
// effect order each engine produces, and the commit-order property is
// that the two match byte for byte.
type emitComp struct {
	name   string
	staged bool
	led    *[]string
	buf    []string
	n      int
	count  int
}

func (c *emitComp) Tick(cycle uint64) bool {
	ev := fmt.Sprintf("%s@%d", c.name, cycle)
	if c.staged {
		c.buf = append(c.buf, ev)
	} else {
		*c.led = append(*c.led, ev)
	}
	c.count++
	return c.count < c.n
}

func (c *emitComp) Commit(cycle uint64) {
	*c.led = append(*c.led, c.buf...)
	c.buf = c.buf[:0]
}

// runEmitNetwork builds hub + grouped emitters from the lifetime script
// and runs them to quiescence, returning the ledger. groups[g][m] is the
// busy-tick count of member m of group g; hubs likewise for the serial
// prefix. workers 0 runs the skip engine; >= 1 the parallel engine with
// that many workers (grouped components staged).
func runEmitNetwork(t *testing.T, hubs []int, groups [][]int, workers int) []string {
	t.Helper()
	eng := NewEngine()
	parallel := workers >= 1
	if parallel {
		eng.SetMode(EngineParallel)
		eng.SetParallel(workers)
	}
	var led []string
	busy := 0
	for i, n := range hubs {
		c := &emitComp{name: fmt.Sprintf("hub%d", i), led: &led, n: n}
		eng.Register(c.name, c)
		if n > busy {
			busy = n
		}
	}
	comps := []*emitComp{}
	for g, members := range groups {
		for m, n := range members {
			c := &emitComp{name: fmt.Sprintf("g%dm%d", g, m), led: &led, n: n, staged: parallel}
			eng.RegisterGroup(c.name, c, g)
			comps = append(comps, c)
			if n > busy {
				busy = n
			}
		}
	}
	done := func() bool {
		for _, c := range comps {
			if c.count < c.n {
				return false
			}
		}
		return true
	}
	if _, err := eng.Run(done, uint64(busy)+8); err != nil {
		t.Fatal(err)
	}
	return led
}

// TestParallelCommitOrderMatchesSerial is the commit-order property test:
// over randomized component networks (group shapes and lifetimes drawn
// from a seeded source), the parallel engine's ledger — hub events
// mid-tick, grouped events staged and flushed by the registration-order
// commit phase — must equal the serial skip engine's mid-tick effect
// order exactly, for every worker count including the inline fallback.
func TestParallelCommitOrderMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		hubs := make([]int, 1+rng.Intn(3))
		for i := range hubs {
			hubs[i] = 1 + rng.Intn(20)
		}
		groups := make([][]int, 1+rng.Intn(6))
		for g := range groups {
			groups[g] = make([]int, 1+rng.Intn(3))
			for m := range groups[g] {
				groups[g][m] = 1 + rng.Intn(20)
			}
		}
		ref := runEmitNetwork(t, hubs, groups, 0)
		for _, workers := range []int{1, 2, 4, 8} {
			got := runEmitNetwork(t, hubs, groups, workers)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("seed %d workers %d: ledger diverges from serial\n got: %v\nwant: %v",
					seed, workers, got, ref)
			}
		}
	}
}

// wakeComp records its own tick cycles and runs scripted actions: onTick
// during its tick (any mode), onCommit in the commit phase under the
// parallel engine and at the end of its own tick under serial engines —
// the two points a staged side effect is applied at in each world.
type wakeComp struct {
	ticks    []uint64
	n        int
	count    int
	onTick   func(cycle uint64)
	onCommit func(cycle uint64)
	serial   bool
}

func (c *wakeComp) Tick(cycle uint64) bool {
	c.ticks = append(c.ticks, cycle)
	if c.onTick != nil {
		c.onTick(cycle)
	}
	if c.serial && c.onCommit != nil {
		c.onCommit(cycle)
	}
	c.count++
	return c.count < c.n
}

func (c *wakeComp) Commit(cycle uint64) {
	if !c.serial && c.onCommit != nil {
		c.onCommit(cycle)
	}
}

// TestParallelWakeSemantics pins the two wake paths the parallel
// component contract allows against their serial-engine timing:
//
//   - a same-group forward wake during a tick lands the same cycle (the
//     target's slot has not passed on the owning worker);
//   - a cross-group wake staged to the commit phase lands the next cycle,
//     exactly like a serial mid-tick wake of an already-passed slot.
func TestParallelWakeSemantics(t *testing.T) {
	build := func(workers int) (b, d *wakeComp, run func()) {
		eng := NewEngine()
		serial := workers == 0
		if !serial {
			eng.SetMode(EngineParallel)
			eng.SetParallel(workers)
		}
		var bH, dH Handle
		a := &wakeComp{n: 10, serial: serial, onTick: func(c uint64) {
			if c == 5 {
				bH.Wake() // same-group forward: b ticks this cycle
			}
		}}
		b = &wakeComp{n: 1, serial: serial}
		d = &wakeComp{n: 1, serial: serial}
		cc := &wakeComp{n: 10, serial: serial, onCommit: func(c uint64) {
			if c == 7 {
				dH.Wake() // cross-group, staged: d ticks next cycle
			}
		}}
		eng.RegisterGroup("a", a, 0)
		bH = eng.RegisterGroup("b", b, 0)
		dH = eng.RegisterGroup("d", d, 0)
		eng.RegisterGroup("c", cc, 1)
		return b, d, func() {
			if _, err := eng.Run(func() bool { return a.count >= 10 && cc.count >= 10 }, 64); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, workers := range []int{0, 1, 4} {
		b, d, run := build(workers)
		run()
		if want := []uint64{0, 5}; !reflect.DeepEqual(b.ticks, want) {
			t.Errorf("workers %d: same-group forward wake: b ticked at %v, want %v", workers, b.ticks, want)
		}
		if want := []uint64{0, 8}; !reflect.DeepEqual(d.ticks, want) {
			t.Errorf("workers %d: staged cross-group wake: d ticked at %v, want %v", workers, d.ticks, want)
		}
	}
}

// TestRegisterHubAfterGroupPanics enforces the hub-prefix rule: the
// parallel pass ticks ungrouped components serially before the group
// phase, which is only the serial order if they form a registration
// prefix.
func TestRegisterHubAfterGroupPanics(t *testing.T) {
	eng := NewEngine()
	eng.RegisterGroup("g", TickFunc(func(uint64) bool { return false }), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("hub registration after a grouped component did not panic")
		}
	}()
	eng.Register("late-hub", TickFunc(func(uint64) bool { return false }))
}

// TestParallelConfigResolution covers the Config plumbing: Parallel >= 2
// selects the parallel engine unless dense/quiescent is forced, and
// TickWorkers reports the pool size only in parallel mode.
func TestParallelConfigResolution(t *testing.T) {
	cfg := Default()
	cfg.Parallel = 4
	if got := cfg.EngineMode(); got != EngineParallel {
		t.Errorf("Parallel=4 resolves to %v, want parallel", got)
	}
	if got := cfg.TickWorkers(); got != 4 {
		t.Errorf("TickWorkers = %d, want 4", got)
	}
	cfg.Engine = EngineDense
	if got := cfg.EngineMode(); got != EngineDense {
		t.Errorf("explicit dense with Parallel=4 resolves to %v, want dense", got)
	}
	if got := cfg.TickWorkers(); got != 1 {
		t.Errorf("dense TickWorkers = %d, want 1", got)
	}
	cfg = Default()
	if got := cfg.TickWorkers(); got != 1 {
		t.Errorf("serial TickWorkers = %d, want 1", got)
	}
	cfg.Parallel = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative Parallel validated")
	}
	mode, err := ParseEngineMode("parallel")
	if err != nil || mode != EngineParallel {
		t.Errorf("ParseEngineMode(parallel) = %v, %v", mode, err)
	}
	if got := EngineParallel.String(); got != "parallel" {
		t.Errorf("EngineParallel.String() = %q", got)
	}
}
