// Package prof wires the standard pprof file profiles into the CLIs, so
// engine hot spots can be measured before and after scheduler changes:
//
//	gsi-run -workload utsd -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package prof

import (
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// Routes registers the standard pprof HTTP handlers on mux under
// /debug/pprof/ — the long-running server's counterpart of the CLIs' file
// profiles, so gsi-serve hot spots can be inspected live:
//
//	go tool pprof http://localhost:8080/debug/pprof/profile
func Routes(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// Start begins a CPU profile (cpuPath non-empty) and arranges a heap
// profile snapshot (memPath non-empty). The returned stop function ends the
// CPU profile and writes the heap profile; it must run before process exit,
// so profiles are only produced on a command's success path.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize a settled heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mem profile: %v\n", err)
			}
		}
	}, nil
}
