package scale

import "fmt"

// noiseFloorNS is the minimum primary-run wall time for a rung's timing
// to enter the regression gate: a run measured in a couple of
// milliseconds has scheduler jitter larger than any threshold worth
// setting, so such rungs keep their determinism and identity checks but
// skip the ns-per-cycle comparison. 10ms keeps every workload whose
// curve the gate can meaningfully guard while excusing the bursty
// pipeline's sub-millisecond rungs.
const noiseFloorNS = 10_000_000

// Finding is one smoke-gate violation: a regression, an identity break,
// or a determinism drift between the committed baseline and a replay.
type Finding struct {
	Workload string
	Axis     string
	Rung     int
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s/%s rung %d: %s", f.Workload, f.Axis, f.Rung, f.Msg)
}

// Compare checks a replayed document against the committed baseline and
// returns every violation (empty means the gate passes). minRungs is the
// number of rungs the replay must have completed per series (clamped to
// what the baseline recorded); threshold is the allowed fractional
// ns-per-cycle regression (0.15 = 15%).
//
// The timing check is host-speed independent: both documents are
// normalized to their own rung 0 before comparing, so a uniformly faster
// or slower machine cancels out and only shape changes — one rung growing
// disproportionately — fail the gate. The absolute-throughput guard is
// BENCH_engine.json, not this gate. Rungs whose primary run (in either
// document) finished under noiseFloorNS are exempt from the timing check
// — their measurement is jitter-dominated — as is a whole series whose
// rung-0 anchor is that fast. Cycles, steps, and jumps are deterministic
// for a fixed configuration and compared for equality on every rung,
// floor or no floor: a drift there means the timing semantics or engine
// scheduling changed and the baseline must be regenerated deliberately.
func Compare(baseline, current *Doc, threshold float64, minRungs int) []Finding {
	var out []Finding
	add := func(w, a string, rung int, format string, args ...any) {
		out = append(out, Finding{Workload: w, Axis: a, Rung: rung, Msg: fmt.Sprintf(format, args...)})
	}
	for _, base := range baseline.Results {
		cur := current.Lookup(base.Workload, base.Axis)
		if cur == nil {
			add(base.Workload, base.Axis, 0, "series missing from replay")
			continue
		}
		want := minRungs
		if want > len(base.Rungs) {
			want = len(base.Rungs)
		}
		if len(cur.Rungs) < want {
			add(base.Workload, base.Axis, len(cur.Rungs),
				"replay completed %d rungs, want %d (wall: %s %s)",
				len(cur.Rungs), want, cur.Wall, cur.WallDetail)
		}
		n := len(cur.Rungs)
		if n > len(base.Rungs) {
			n = len(base.Rungs)
		}
		if n == 0 {
			continue
		}
		b0, c0 := base.Rungs[0].NsPerCycle, cur.Rungs[0].NsPerCycle
		for i := 0; i < n; i++ {
			b, c := base.Rungs[i], cur.Rungs[i]
			if c.Identity != "ok" {
				add(base.Workload, base.Axis, i, "engine identity break: %s", c.Identity)
				continue
			}
			if b.Value != c.Value {
				add(base.Workload, base.Axis, i, "axis value drift: baseline %d, replay %d", b.Value, c.Value)
				continue
			}
			if b.Cycles != c.Cycles {
				add(base.Workload, base.Axis, i,
					"cycle count drift: baseline %d, replay %d (timing semantics changed; regenerate the baseline)",
					b.Cycles, c.Cycles)
			}
			if b.Steps != c.Steps || b.Jumps != c.Jumps {
				add(base.Workload, base.Axis, i,
					"scheduling drift: baseline steps=%d jumps=%d, replay steps=%d jumps=%d (regenerate the baseline)",
					b.Steps, b.Jumps, c.Steps, c.Jumps)
			}
			if i == 0 || b0 <= 0 || c0 <= 0 || b.NsPerCycle <= 0 {
				continue
			}
			if base.Rungs[0].WallNS < noiseFloorNS || cur.Rungs[0].WallNS < noiseFloorNS ||
				b.WallNS < noiseFloorNS || c.WallNS < noiseFloorNS {
				continue
			}
			baseRatio, curRatio := b.NsPerCycle/b0, c.NsPerCycle/c0
			if curRatio > baseRatio*(1+threshold) {
				add(base.Workload, base.Axis, i,
					"ns-per-cycle regression: rung-0-normalized ratio %.2f, baseline %.2f (threshold %.0f%%)",
					curRatio, baseRatio, threshold*100)
			}
		}
	}
	return out
}
