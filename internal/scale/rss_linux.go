package scale

import "syscall"

// rssKB returns the process's maximum resident set size in KB (the
// getrusage high-water mark — monotone, so a rung's reading includes
// every earlier rung's footprint; the RSS wall is a process ceiling, not
// a per-rung measurement).
func rssKB() uint64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return uint64(ru.Maxrss)
}
