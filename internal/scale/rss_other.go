//go:build !linux

package scale

// rssKB is unavailable off Linux; the RSS wall simply never fires there
// (zero is below any configured ceiling and excluded from reports).
func rssKB() uint64 { return 0 }
