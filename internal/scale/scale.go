// Package scale is the iterate-until-failure harness: it grows one
// configuration axis at a time — mesh dimensions, warps per SM, workload
// size, sweep-grid width, parallel-tick workers — until a wall stops the
// climb (per-rung wall-clock budget, RSS ceiling, an error, or an engine
// identity break), recording per-rung throughput (ns per simulated
// cycle), scheduling counters, and memory footprint into a
// BENCH_scale.json document. Every rung runs the workload through all
// four engine modes and asserts byte-identical reports, turning the
// repo's engine diff lattice into a scaled correctness gate; the smoke
// comparator (Compare) then gates CI against a committed baseline.
package scale

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"time"

	"gsi"
)

// Axis names one growth dimension.
type Axis string

// The growth axes. Each rung of an axis holds everything else at the
// workload's SmallScale configuration and grows exactly one dimension:
//
//   - mesh: square mesh side (4, 8, 16, ...), L2 banks fixed
//   - warps: the workload's warps parameter (doubling), SM residency
//     widened to match
//   - size: the workload's primary size parameter (doubling) — tree
//     nodes, graph vertices, matrix rows, table updates, time steps
//   - grid: sweep-grid width (doubling point count over an MSHR axis)
//   - ticks: parallel-tick workers (2, 3, 4, ...), the parallel engine
//     as the timed mode
const (
	AxisMesh  Axis = "mesh"
	AxisWarps Axis = "warps"
	AxisSize  Axis = "size"
	AxisGrid  Axis = "grid"
	AxisTicks Axis = "ticks"
)

// AllAxes returns every growth axis in canonical order.
func AllAxes() []Axis { return []Axis{AxisMesh, AxisWarps, AxisSize, AxisGrid, AxisTicks} }

// ParseAxis parses an axis name.
func ParseAxis(s string) (Axis, error) {
	for _, a := range AllAxes() {
		if string(a) == s {
			return a, nil
		}
	}
	return "", fmt.Errorf("scale: unknown axis %q (want mesh, warps, size, grid, or ticks)", s)
}

// Config drives one harness run.
type Config struct {
	// Workloads are registry names; empty means every registered
	// workload.
	Workloads []string
	// Axes are the growth axes; empty means all of them.
	Axes []Axis
	// RungBudget stops a series after the first rung whose total wall
	// clock (all engine modes) exceeds it; zero means no per-rung wall.
	RungBudget time.Duration
	// TotalBudget bounds the whole harness run; zero means none.
	TotalBudget time.Duration
	// RSSLimitKB stops a series when the process max-RSS high-water
	// mark passes it; zero means none.
	RSSLimitKB uint64
	// MaxRungs caps every series (the backstop wall); zero means 8.
	MaxRungs int
	// KneeFactor is the superlinearity threshold for FindKnee; values
	// <= 1 mean the default 1.5.
	KneeFactor float64
	// Repeats is how many times the timed (primary-mode) run executes
	// per rung; the recorded wall is the minimum, which strips scheduler
	// noise and cold-start effects from the knee and smoke comparisons.
	// Zero means 3. Identity runs are never repeated — reports are
	// deterministic.
	Repeats int
	// Log, when non-nil, receives one progress line per rung.
	Log func(format string, args ...any)
}

func (c Config) maxRungs() int {
	if c.MaxRungs <= 0 {
		return 8
	}
	return c.MaxRungs
}

func (c Config) repeats() int {
	if c.Repeats <= 0 {
		return 3
	}
	return c.Repeats
}

func (c Config) log(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// sizeParam names each workload's primary size parameter for the size
// axis; workloads absent here (none today) skip that axis.
var sizeParam = map[string]string{
	"uts":      "nodes",
	"utsd":     "nodes",
	"implicit": "databytes",
	"bfs":      "vertices",
	"spmv":     "rows",
	"pipeline": "rounds",
	"gups":     "updates",
	"stencil":  "steps",
	"steal":    "tasks",
}

// point is one simulation of a rung: a system shape plus workload
// parameter overrides. The engine mode is applied by the runner.
type point struct {
	sys       gsi.SystemConfig
	overrides gsi.WorkloadValues
}

// hasParam reports whether the entry's schema includes the parameter.
func hasParam(e *gsi.WorkloadEntry, name string) bool {
	for _, p := range e.Params {
		if p.Name == name {
			return true
		}
	}
	return false
}

// paramBase returns the SmallScale base value of an integer parameter
// (the Small override when present, the schema default otherwise).
func paramBase(e *gsi.WorkloadEntry, name string) (int, error) {
	s, ok := e.Small[name]
	if !ok {
		for _, p := range e.Params {
			if p.Name == name {
				s = p.Default
				ok = true
			}
		}
	}
	if !ok {
		return 0, fmt.Errorf("scale: %s has no parameter %q", e.Name, name)
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("scale: %s parameter %s=%q is not an integer", e.Name, name, s)
	}
	return n, nil
}

// axisApplies reports whether a (workload, axis) pair is growable.
func axisApplies(e *gsi.WorkloadEntry, axis Axis) bool {
	switch axis {
	case AxisWarps:
		return hasParam(e, "warps")
	case AxisSize:
		_, ok := sizeParam[e.Name]
		return ok
	}
	return true
}

// ceilPow2 returns the smallest power of two >= n (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// planRung resolves one rung of a series: the recorded axis value and
// the simulation points to run. Everything starts from the workload's
// SmallScale values and tuned system so that rung 0 is the shape the
// test suites already pin, and exactly one dimension grows per rung.
func planRung(e *gsi.WorkloadEntry, axis Axis, rung int) (int, []point, error) {
	overrides := gsi.WorkloadValues{}
	value := 0
	switch axis {
	case AxisMesh:
		value = 4 << rung
	case AxisWarps:
		base, err := paramBase(e, "warps")
		if err != nil {
			return 0, nil, err
		}
		value = base << rung
		overrides["warps"] = strconv.Itoa(value)
	case AxisSize:
		name := sizeParam[e.Name]
		base, err := paramBase(e, name)
		if err != nil {
			return 0, nil, err
		}
		value = base << rung
		overrides[name] = strconv.Itoa(value)
		if e.Name == "steal" {
			// The ring capacity must stay a power of two >= the task
			// count; grow it in lockstep.
			overrides["cap"] = strconv.Itoa(ceilPow2(value))
		}
	case AxisGrid:
		value = 1 << rung
	case AxisTicks:
		value = 2 + rung
	default:
		return 0, nil, fmt.Errorf("scale: unknown axis %q", axis)
	}

	sys, err := e.TuneSystem(true, overrides, gsi.DefaultConfig())
	if err != nil {
		return 0, nil, err
	}
	switch axis {
	case AxisMesh:
		sys.MeshWidth, sys.MeshHeight = value, value
	case AxisWarps:
		if sys.WarpsPerSM < value {
			sys.WarpsPerSM = value
		}
	}

	if axis == AxisGrid {
		// Width grid points over the MSHR axis (the figure-6.4 sweep
		// dimension), each its own simulation.
		pts := make([]point, value)
		for j := range pts {
			p := point{sys: sys, overrides: overrides}
			p.sys.MSHREntries = 8 * (j + 1)
			p.sys.StoreBufEntries = p.sys.MSHREntries
			pts[j] = p
		}
		return value, pts, nil
	}
	return value, []point{{sys: sys, overrides: overrides}}, nil
}

// engine modes of the identity lattice; the primary mode is the timed
// one (skip everywhere except the ticks axis, where the parallel engine
// under measurement is primary).
var modeNames = map[gsi.EngineMode]string{
	gsi.EngineDense:     "dense",
	gsi.EngineQuiescent: "quiescent",
	gsi.EngineSkip:      "skip",
	gsi.EngineParallel:  "parallel",
}

// withMode forces one engine mode onto a system shape.
func withMode(sys gsi.SystemConfig, mode gsi.EngineMode, workers int) gsi.SystemConfig {
	sys.Engine = mode
	sys.Parallel = 0
	if mode == gsi.EngineParallel {
		sys.Parallel = workers
	}
	return sys
}

// runContained runs one simulation with panics converted to errors. A
// grown workload can violate a model capacity the constructor does not
// check (an implicit databytes doubling can step outside the scratchpad,
// which panics in the gpu model); to the harness that is just another
// wall, so it must survive as a recorded error, not kill the process.
func runContained(ctx context.Context, opt gsi.Options, w gsi.Workload) (rep *gsi.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	return gsi.RunContext(ctx, opt, w)
}

// runPoints executes every point of a rung under one engine mode,
// returning each point's canonical report JSON plus the summed cycle
// count, wall time, and scheduling counters. The context carries the
// rung's wall budget: geometric growth means the next rung can cost an
// order of magnitude more than the last, so the budget must be able to
// abort a rung mid-flight, not just veto the one after it.
func runPoints(ctx context.Context, e *gsi.WorkloadEntry, pts []point, mode gsi.EngineMode, workers int) ([][]byte, uint64, time.Duration, gsi.EngineStats, error) {
	var (
		docs   [][]byte
		cycles uint64
		wall   time.Duration
		st     gsi.EngineStats
	)
	for j, p := range pts {
		// A fresh Instance per run: workload values are resolved again so
		// no state leaks between engine modes.
		w, err := e.BuildSmall(p.overrides)
		if err != nil {
			return nil, 0, 0, st, fmt.Errorf("point %d: %w", j, err)
		}
		opt := gsi.Options{System: withMode(p.sys, mode, workers)}
		t0 := time.Now()
		rep, err := runContained(ctx, opt, w)
		wall += time.Since(t0)
		if err != nil {
			return nil, 0, 0, st, fmt.Errorf("point %d (%s engine): %w", j, modeNames[mode], err)
		}
		b, err := rep.JSON()
		if err != nil {
			return nil, 0, 0, st, fmt.Errorf("point %d: encoding report: %w", j, err)
		}
		docs = append(docs, b)
		cycles += rep.Cycles
		st.Steps += rep.EngineStats.Steps
		st.Jumps += rep.EngineStats.Jumps
		st.SkippedCycles += rep.EngineStats.SkippedCycles
		st.ExpressDeliveries += rep.EngineStats.ExpressDeliveries
		st.ExpressDemotions += rep.EngineStats.ExpressDemotions
	}
	return docs, cycles, wall, st, nil
}

// runRung executes one rung: the primary (timed) mode first — repeated,
// with the minimum wall recorded — then the remaining engine modes for
// the byte-identity assertion.
func runRung(ctx context.Context, e *gsi.WorkloadEntry, axis Axis, rung, value int, pts []point, repeats int) (Rung, error) {
	primary, workers := gsi.EngineSkip, 2
	if axis == AxisTicks {
		primary, workers = gsi.EngineParallel, value
	}

	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	primDocs, cycles, wall, st, err := runPoints(ctx, e, pts, primary, workers)
	if err != nil {
		return Rung{}, err
	}
	for r := 1; r < repeats; r++ {
		_, _, again, _, err := runPoints(ctx, e, pts, primary, workers)
		if err != nil {
			return Rung{}, err
		}
		if again < wall {
			wall = again
		}
	}
	identity := "ok"
	for _, mode := range []gsi.EngineMode{gsi.EngineDense, gsi.EngineQuiescent, gsi.EngineSkip, gsi.EngineParallel} {
		if mode == primary {
			continue
		}
		docs, _, _, _, err := runPoints(ctx, e, pts, mode, workers)
		if err != nil {
			return Rung{}, err
		}
		for j := range docs {
			if !bytes.Equal(docs[j], primDocs[j]) {
				identity = fmt.Sprintf("%s report differs from %s at point %d",
					modeNames[mode], modeNames[primary], j)
			}
		}
		if identity != "ok" {
			break
		}
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	r := Rung{
		Rung:              rung,
		Value:             value,
		Cycles:            cycles,
		WallNS:            wall.Nanoseconds(),
		Steps:             st.Steps,
		Jumps:             st.Jumps,
		SkippedCycles:     st.SkippedCycles,
		ExpressDeliveries: st.ExpressDeliveries,
		ExpressDemotions:  st.ExpressDemotions,
		RSSKB:             rssKB(),
		AllocBytes:        after.TotalAlloc - before.TotalAlloc,
		Identity:          identity,
	}
	if cycles > 0 {
		r.NsPerCycle = float64(r.WallNS) / float64(cycles)
	}
	if len(pts) > 0 && len(pts[0].overrides) > 0 {
		r.Params = map[string]string{}
		for k, v := range pts[0].overrides {
			r.Params[k] = v
		}
	}
	return r, nil
}

// Run grows every requested (workload, axis) pair until its wall and
// returns the assembled document (envelope fields left for the caller).
func Run(cfg Config) (*Doc, error) {
	reg := gsi.Workloads()
	names := cfg.Workloads
	if len(names) == 0 {
		names = reg.Names()
	}
	axes := cfg.Axes
	if len(axes) == 0 {
		axes = AllAxes()
	}
	start := time.Now()
	doc := &Doc{Name: "scale ceilings: one-axis growth to the wall, four-way engine identity per rung"}
	for _, name := range names {
		e, ok := reg.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("scale: unknown workload %q", name)
		}
		for _, axis := range axes {
			if !axisApplies(e, axis) {
				cfg.log("skip %s/%s: axis not applicable", e.Name, axis)
				continue
			}
			res := growSeries(e, axis, cfg, start)
			doc.Results = append(doc.Results, res)
			if cfg.TotalBudget > 0 && time.Since(start) > cfg.TotalBudget {
				cfg.log("total budget exhausted after %s/%s", e.Name, axis)
				return doc, nil
			}
		}
	}
	return doc, nil
}

// growSeries climbs one (workload, axis) series until a wall.
func growSeries(e *gsi.WorkloadEntry, axis Axis, cfg Config, start time.Time) Result {
	res := Result{Workload: e.Name, Axis: string(axis)}
	for i := 0; i < cfg.maxRungs(); i++ {
		value, pts, err := planRung(e, axis, i)
		if err != nil {
			res.Wall = "error"
			res.WallDetail = fmt.Sprintf("rung %d: %v", i, err)
			break
		}
		rungStart := time.Now()
		ctx, cancel := context.WithCancel(context.Background())
		if cfg.RungBudget > 0 {
			ctx, cancel = context.WithTimeout(context.Background(), cfg.RungBudget)
		}
		r, err := runRung(ctx, e, axis, i, value, pts, cfg.repeats())
		cancel()
		if err != nil {
			if errors.Is(err, gsi.ErrDeadline) || errors.Is(err, context.DeadlineExceeded) {
				res.Wall = "budget"
				res.WallDetail = fmt.Sprintf("rung %d (value %d) aborted at the %s rung budget",
					i, value, cfg.RungBudget)
				cfg.log("%s/%s rung %d (value %d): over the %s rung budget, aborted",
					e.Name, axis, i, value, cfg.RungBudget)
				break
			}
			res.Wall = "error"
			res.WallDetail = fmt.Sprintf("rung %d (value %d): %v", i, value, err)
			cfg.log("%s/%s rung %d (value %d): wall: %v", e.Name, axis, i, value, err)
			break
		}
		res.Rungs = append(res.Rungs, r)
		rungWall := time.Since(rungStart)
		cfg.log("%s/%s rung %d: value %d, %d cycles, %.0f ns/cycle, %s total",
			e.Name, axis, i, value, r.Cycles, r.NsPerCycle, rungWall.Round(time.Millisecond))
		if r.Identity != "ok" {
			res.Wall = "identity"
			res.WallDetail = fmt.Sprintf("rung %d (value %d): %s", i, value, r.Identity)
			break
		}
		if cfg.RSSLimitKB > 0 && r.RSSKB > cfg.RSSLimitKB {
			res.Wall = "rss"
			res.WallDetail = fmt.Sprintf("rung %d (value %d): max RSS %d KB over the %d KB ceiling",
				i, value, r.RSSKB, cfg.RSSLimitKB)
			break
		}
		if cfg.RungBudget > 0 && rungWall > cfg.RungBudget {
			res.Wall = "budget"
			res.WallDetail = fmt.Sprintf("rung %d (value %d) took %s, over the %s rung budget",
				i, value, rungWall.Round(time.Millisecond), cfg.RungBudget)
			break
		}
		if cfg.TotalBudget > 0 && time.Since(start) > cfg.TotalBudget {
			res.Wall = "total-budget"
			break
		}
	}
	if res.Wall == "" {
		res.Wall = "max-rungs"
	}
	res.FirstKnee = FindKnee(res.Rungs, cfg.KneeFactor)
	return res
}
