package scale

import (
	"strings"
	"testing"
	"time"

	"gsi"
)

func TestParseAxis(t *testing.T) {
	for _, a := range AllAxes() {
		got, err := ParseAxis(string(a))
		if err != nil || got != a {
			t.Fatalf("ParseAxis(%q) = %v, %v", a, got, err)
		}
	}
	if _, err := ParseAxis("bogus"); err == nil {
		t.Fatal("bogus axis accepted")
	}
}

// TestPlanRungGrowsOneDimension pins the axis semantics: each rung grows
// exactly its own dimension from the SmallScale base and leaves the rest
// of the configuration alone.
func TestPlanRungGrowsOneDimension(t *testing.T) {
	reg := gsi.Workloads()
	stencil, _ := reg.Lookup("stencil")
	steal, _ := reg.Lookup("steal")
	uts, _ := reg.Lookup("uts")

	v0, pts, err := planRung(stencil, AxisMesh, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v0 != 4 || pts[0].sys.MeshWidth != 4 || pts[0].sys.MeshHeight != 4 {
		t.Fatalf("mesh rung 0 = %d (%dx%d), want side 4", v0, pts[0].sys.MeshWidth, pts[0].sys.MeshHeight)
	}
	v3, pts, _ := planRung(stencil, AxisMesh, 3)
	if v3 != 32 || pts[0].sys.MeshWidth != 32 {
		t.Fatalf("mesh rung 3 side = %d, want 32 (geometric growth)", v3)
	}
	if err := pts[0].sys.Validate(); err != nil {
		t.Fatalf("grown mesh config invalid: %v", err)
	}

	// Warps double from the SmallScale base and widen SM residency.
	v, pts, err := planRung(uts, AxisWarps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 32 || pts[0].overrides["warps"] != "32" {
		t.Fatalf("uts warps rung 2 = %d, want 32 (base 8 doubled twice)", v)
	}
	if pts[0].sys.WarpsPerSM < 32 {
		t.Fatalf("WarpsPerSM %d not widened to the warp count", pts[0].sys.WarpsPerSM)
	}

	// Size doubles the primary parameter; steal grows its ring capacity
	// in lockstep so the power-of-two >= tasks invariant holds.
	v, pts, err = planRung(steal, AxisSize, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 96*8 || pts[0].overrides["tasks"] != "768" || pts[0].overrides["cap"] != "1024" {
		t.Fatalf("steal size rung 3 = %d, overrides %v", v, pts[0].overrides)
	}

	// Grid width doubles the point count over the MSHR axis.
	v, pts, err = planRung(stencil, AxisGrid, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 || len(pts) != 4 {
		t.Fatalf("grid rung 2: width %d, %d points, want 4", v, len(pts))
	}
	seen := map[int]bool{}
	for _, p := range pts {
		if p.sys.MSHREntries != p.sys.StoreBufEntries {
			t.Fatal("MSHR and store buffer must grow together")
		}
		seen[p.sys.MSHREntries] = true
	}
	if len(seen) != 4 {
		t.Fatalf("grid points share MSHR sizes: %v", seen)
	}

	// Ticks grow the parallel worker count starting at 2.
	v, _, err = planRung(stencil, AxisTicks, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("ticks rung 3 = %d workers, want 5", v)
	}
}

func TestAxisApplies(t *testing.T) {
	reg := gsi.Workloads()
	pipeline, _ := reg.Lookup("pipeline")
	if axisApplies(pipeline, AxisWarps) {
		t.Fatal("pipeline has no warps parameter; the warps axis must not apply")
	}
	for _, name := range reg.Names() {
		e, _ := reg.Lookup(name)
		if !axisApplies(e, AxisSize) {
			t.Fatalf("%s has no size-axis mapping", name)
		}
		if !axisApplies(e, AxisMesh) || !axisApplies(e, AxisTicks) || !axisApplies(e, AxisGrid) {
			t.Fatalf("%s must support the system axes", name)
		}
	}
}

func TestFindKnee(t *testing.T) {
	mk := func(ns ...float64) []Rung {
		rungs := make([]Rung, len(ns))
		for i, v := range ns {
			rungs[i] = Rung{Rung: i, Value: 4 + i, NsPerCycle: v}
		}
		return rungs
	}
	if k := FindKnee(mk(100, 105, 98, 110), 1.5); k != nil {
		t.Fatalf("flat series has a knee: %+v", k)
	}
	k := FindKnee(mk(100, 110, 120, 180, 300), 1.5)
	if k == nil || k.Rung != 3 {
		t.Fatalf("knee = %+v, want rung 3 (180 > 1.5*100)", k)
	}
	if k.Ratio < 1.79 || k.Ratio > 1.81 {
		t.Fatalf("knee ratio = %.2f, want 1.80", k.Ratio)
	}
	// The minimum tracks improvements: a fast middle rung re-anchors.
	k = FindKnee(mk(100, 60, 95), 1.5)
	if k == nil || k.Rung != 2 {
		t.Fatalf("knee after re-anchor = %+v, want rung 2 (95 > 1.5*60)", k)
	}
	if FindKnee(nil, 1.5) != nil {
		t.Fatal("empty series has a knee")
	}
}

// smokeDoc builds a two-series baseline with deterministic counters and a
// linear timing shape.
func smokeDoc() *Doc {
	mk := func(w, a string, ns ...float64) Result {
		res := Result{Workload: w, Axis: a, Wall: "max-rungs"}
		for i, v := range ns {
			// WallNS is scaled well past the comparator's noise floor so
			// these fixtures exercise the timing gate, not the exemption.
			res.Rungs = append(res.Rungs, Rung{
				Rung: i, Value: 4 + i, Cycles: uint64(1000 + i), Steps: uint64(500 + i),
				Jumps: uint64(10 + i), WallNS: int64(v * float64(1000+i) * 1000), NsPerCycle: v,
				Identity: "ok",
			})
		}
		return res
	}
	return &Doc{Results: []Result{
		mk("stencil", "mesh", 100, 110, 125, 150),
		mk("steal", "size", 200, 210, 230, 260),
	}}
}

func TestCompareSmokePasses(t *testing.T) {
	base := smokeDoc()
	// A uniformly 3x slower host: every wall number scales, ratios do not.
	cur := smokeDoc()
	for i := range cur.Results {
		for j := range cur.Results[i].Rungs {
			cur.Results[i].Rungs[j].NsPerCycle *= 3
			cur.Results[i].Rungs[j].WallNS *= 3
		}
	}
	if f := Compare(base, cur, 0.15, 4); len(f) != 0 {
		t.Fatalf("uniform host-speed change failed the gate: %v", f)
	}
}

func TestCompareSmokeCatchesSlowRung(t *testing.T) {
	base := smokeDoc()
	cur := smokeDoc()
	// One rung artificially slowed 2x — the acceptance scenario. It must
	// fail at the 15% threshold and even at a lax 90%.
	cur.Results[0].Rungs[2].NsPerCycle *= 2
	for _, threshold := range []float64{0.15, 0.90} {
		f := Compare(base, cur, threshold, 4)
		if len(f) != 1 || f[0].Rung != 2 || !strings.Contains(f[0].Msg, "regression") {
			t.Fatalf("threshold %.2f: findings = %v, want one regression at rung 2", threshold, f)
		}
	}
}

// TestCompareSmokeNoiseFloor: rungs whose primary run finished under the
// noise floor are exempt from the timing gate (their measurement is
// jitter) but keep every determinism check.
func TestCompareSmokeNoiseFloor(t *testing.T) {
	short := func() *Doc {
		d := smokeDoc()
		for i := range d.Results {
			for j := range d.Results[i].Rungs {
				d.Results[i].Rungs[j].WallNS = int64(2_000_000) // 2ms: under the floor
			}
		}
		return d
	}
	base, cur := short(), short()
	cur.Results[0].Rungs[2].NsPerCycle *= 2
	if f := Compare(base, cur, 0.15, 4); len(f) != 0 {
		t.Fatalf("sub-floor rung timing failed the gate: %v", f)
	}
	// Determinism still gates under the floor.
	cur.Results[0].Rungs[2].Cycles++
	f := Compare(base, cur, 0.15, 4)
	if len(f) != 1 || !strings.Contains(f[0].Msg, "cycle count drift") {
		t.Fatalf("findings = %v, want one cycle-drift finding", f)
	}
}

func TestCompareSmokeCatchesInvariantBreaks(t *testing.T) {
	check := func(name string, mutate func(*Doc), want string) {
		t.Run(name, func(t *testing.T) {
			cur := smokeDoc()
			mutate(cur)
			f := Compare(smokeDoc(), cur, 0.15, 4)
			if len(f) == 0 {
				t.Fatal("break not detected")
			}
			if !strings.Contains(f[0].Msg, want) {
				t.Fatalf("findings = %v, want mention of %q", f, want)
			}
		})
	}
	check("identity break", func(d *Doc) {
		d.Results[0].Rungs[1].Identity = "dense report differs from skip at point 0"
	}, "identity break")
	check("cycle drift", func(d *Doc) {
		d.Results[1].Rungs[0].Cycles++
	}, "cycle count drift")
	check("scheduling drift", func(d *Doc) {
		d.Results[0].Rungs[3].Jumps = 0
	}, "scheduling drift")
	check("missing series", func(d *Doc) {
		d.Results = d.Results[:1]
	}, "missing")
	check("short replay", func(d *Doc) {
		d.Results[0].Rungs = d.Results[0].Rungs[:2]
		d.Results[0].Wall = "budget"
	}, "completed 2 rungs")
	check("value drift", func(d *Doc) {
		d.Results[0].Rungs[1].Value = 99
	}, "value drift")
}

func TestDocRoundTrip(t *testing.T) {
	d := smokeDoc()
	d.Name, d.Date, d.Host, d.Command = "n", "d", "h", "c"
	d.Results[0].FirstKnee = &Knee{Rung: 3, Value: 7, Ratio: 1.6}
	b, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDoc(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Results[0].FirstKnee == nil || back.Results[0].FirstKnee.Value != 7 {
		t.Fatalf("knee lost in round trip: %+v", back.Results[0])
	}
	if r := back.Lookup("steal", "size"); r == nil || len(r.Rungs) != 4 {
		t.Fatalf("lookup after round trip: %+v", r)
	}
	if back.Lookup("steal", "mesh") != nil {
		t.Fatal("lookup invented a series")
	}
}

// TestHarnessClimbsAndAssertsIdentity runs the real harness on the
// cheapest configuration — implicit on the ticks axis, two rungs — and
// checks the recorded rungs carry real measurements and a clean identity
// verdict. This is the end-to-end path the CLI and the CI smoke job use.
func TestHarnessClimbsAndAssertsIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	var lines []string
	doc, err := Run(Config{
		Workloads: []string{"implicit"},
		Axes:      []Axis{AxisTicks},
		MaxRungs:  2,
		Log:       func(f string, a ...any) { lines = append(lines, f) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(doc.Results))
	}
	res := doc.Results[0]
	if res.Wall != "max-rungs" || len(res.Rungs) != 2 {
		t.Fatalf("series = wall %q with %d rungs (%s), want max-rungs with 2", res.Wall, len(res.Rungs), res.WallDetail)
	}
	for i, r := range res.Rungs {
		if r.Identity != "ok" {
			t.Fatalf("rung %d identity: %s", i, r.Identity)
		}
		if r.Cycles == 0 || r.WallNS <= 0 || r.NsPerCycle <= 0 || r.Steps == 0 {
			t.Fatalf("rung %d carries empty measurements: %+v", i, r)
		}
		if r.Value != 2+i {
			t.Fatalf("rung %d ticks value = %d, want %d", i, r.Value, 2+i)
		}
	}
	// Both rungs simulate the same workload: deterministic cycle counts
	// must agree across worker counts.
	if res.Rungs[0].Cycles != res.Rungs[1].Cycles {
		t.Fatalf("worker count changed simulated cycles: %d vs %d", res.Rungs[0].Cycles, res.Rungs[1].Cycles)
	}
	if len(lines) == 0 {
		t.Fatal("no progress lines logged")
	}
	if md := doc.Markdown(); !strings.Contains(md, "implicit / ticks axis") {
		t.Fatalf("markdown report missing series header:\n%s", md)
	}
}

// TestHarnessContainsModelPanics: growing a workload can violate a model
// capacity its constructor does not check — implicit's databytes doubling
// steps outside the 16 KB scratchpad, which panics inside the gpu model.
// The harness must record that as an error wall and keep the process (and
// the remaining series) alive.
func TestHarnessContainsModelPanics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	doc, err := Run(Config{
		Workloads: []string{"implicit"},
		Axes:      []Axis{AxisSize},
		MaxRungs:  2,
		Repeats:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := doc.Results[0]
	if res.Wall != "error" || len(res.Rungs) != 1 {
		t.Fatalf("series = wall %q with %d rungs, want error after rung 0", res.Wall, len(res.Rungs))
	}
	if !strings.Contains(res.WallDetail, "panic") {
		t.Fatalf("wall detail %q does not record the contained panic", res.WallDetail)
	}
}

// TestHarnessBudgetWall proves the wall-clock budget stops a series
// mid-flight: with a budget no simulation can meet, the first rung is
// aborted by the cooperative deadline rather than run to completion, so
// zero rungs are recorded and the wall is "budget". Geometric growth makes
// this matter — the rung after the last affordable one can cost 10-80x it.
func TestHarnessBudgetWall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	doc, err := Run(Config{
		Workloads:  []string{"implicit"},
		Axes:       []Axis{AxisMesh},
		MaxRungs:   6,
		RungBudget: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := doc.Results[0]
	if res.Wall != "budget" || len(res.Rungs) != 0 {
		t.Fatalf("series = wall %q with %d rungs, want budget with 0", res.Wall, len(res.Rungs))
	}
	if !strings.Contains(res.WallDetail, "aborted") {
		t.Fatalf("wall detail %q does not mention the mid-run abort", res.WallDetail)
	}
}
