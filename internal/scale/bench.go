package scale

import (
	"encoding/json"
	"fmt"
	"math"
)

// Doc is the machine-readable scale record written to BENCH_scale.json.
// The envelope (name, date, host, command, note, results) is shared with
// BENCH_engine.json so the same tooling reads both; only the result rows
// differ — here each result is one (workload, axis) growth series.
type Doc struct {
	Name    string   `json:"name"`
	Date    string   `json:"date"`
	Host    string   `json:"host"`
	Command string   `json:"command"`
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
}

// Result is one (workload, axis) series: the rungs climbed before a wall
// stopped the growth, the wall itself, and the first knee if one appeared.
type Result struct {
	Workload string `json:"workload"`
	Axis     string `json:"axis"`
	Rungs    []Rung `json:"rungs"`
	// FirstKnee marks the first superlinear ns-per-cycle growth (see
	// FindKnee); absent when throughput stayed flat through every rung.
	FirstKnee *Knee `json:"first_knee,omitempty"`
	// Wall says what stopped the growth: "budget" (rung wall-clock),
	// "total-budget", "rss", "error", "identity", or "max-rungs".
	Wall string `json:"wall"`
	// WallDetail carries the failing rung and error text for "error" and
	// "identity" walls.
	WallDetail string `json:"wall_detail,omitempty"`
}

// Rung is one growth step of a series. Cycles, Steps, and Jumps are
// deterministic for a fixed configuration (the smoke gate checks them for
// equality against the baseline); WallNS and the footprint fields are
// host-dependent and only compared as rung-0-normalized ratios.
type Rung struct {
	Rung   int               `json:"rung"`
	Value  int               `json:"value"`
	Params map[string]string `json:"params,omitempty"`
	// Cycles is the simulated cycle count summed over the rung's grid
	// points (one point except on the grid axis).
	Cycles uint64 `json:"cycles"`
	// WallNS is the primary-mode wall-clock time and NsPerCycle its ratio
	// to Cycles — the throughput number the knee and smoke checks read.
	WallNS     int64   `json:"wall_ns"`
	NsPerCycle float64 `json:"ns_per_cycle"`
	// Scheduling counters from the primary mode (see EngineStats).
	Steps             uint64 `json:"steps"`
	Jumps             uint64 `json:"jumps"`
	SkippedCycles     uint64 `json:"skipped_cycles"`
	ExpressDeliveries uint64 `json:"express_deliveries"`
	ExpressDemotions  uint64 `json:"express_demotions"`
	// RSSKB is the process max-RSS high-water mark after the rung (so it
	// is monotone across rungs) and AllocBytes the heap allocated during
	// it (runtime TotalAlloc delta, all engine modes included).
	RSSKB      uint64 `json:"rss_kb"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// Identity is "ok" when every engine mode produced byte-identical
	// reports at this rung, else a description of the first divergence.
	Identity string `json:"identity"`
}

// Knee marks the first rung whose ns-per-cycle exceeded the knee factor
// times the best (minimum) ns-per-cycle of the preceding rungs.
type Knee struct {
	Rung  int     `json:"rung"`
	Value int     `json:"value"`
	Ratio float64 `json:"ratio"`
}

// Encode renders the document as indented JSON, trailing newline included
// (the committed-file convention BENCH_engine.json follows).
func (d *Doc) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeDoc parses a BENCH_scale.json document.
func DecodeDoc(data []byte) (*Doc, error) {
	var d Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("scale: decoding document: %w", err)
	}
	return &d, nil
}

// Lookup finds the series for one (workload, axis) pair.
func (d *Doc) Lookup(workload, axis string) *Result {
	for i := range d.Results {
		if d.Results[i].Workload == workload && d.Results[i].Axis == axis {
			return &d.Results[i]
		}
	}
	return nil
}

// FindKnee locates the first superlinear throughput break in a series:
// the first rung whose ns-per-cycle exceeds factor times the minimum
// ns-per-cycle seen on any earlier rung. A flat or improving series has
// no knee. Factors <= 1 fall back to the default 1.5.
func FindKnee(rungs []Rung, factor float64) *Knee {
	if factor <= 1 {
		factor = 1.5
	}
	best := math.Inf(1)
	for _, r := range rungs {
		if r.NsPerCycle <= 0 {
			continue
		}
		if !math.IsInf(best, 1) && r.NsPerCycle > factor*best {
			return &Knee{Rung: r.Rung, Value: r.Value, Ratio: r.NsPerCycle / best}
		}
		if r.NsPerCycle < best {
			best = r.NsPerCycle
		}
	}
	return nil
}
