package isa

import "fmt"

// Label is a forward-referenceable branch target managed by a Builder.
type Label int

// Builder assembles a Program with label patching and validation. Methods
// append one instruction each and return the Builder for chaining.
type Builder struct {
	name    string
	instrs  []Instr
	bound   map[Label]int // label -> instruction index
	uses    map[Label][]int
	nlabels int
}

// NewBuilder starts an empty program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:  name,
		bound: make(map[Label]int),
		uses:  make(map[Label][]int),
	}
}

// NewLabel allocates an unbound label.
func (b *Builder) NewLabel() Label {
	b.nlabels++
	return Label(b.nlabels)
}

// Bind attaches a label to the next instruction appended. Binding a label
// twice is a programming error and panics.
func (b *Builder) Bind(l Label) *Builder {
	if _, dup := b.bound[l]; dup {
		panic(fmt.Sprintf("isa: label %d bound twice in %q", l, b.name))
	}
	b.bound[l] = len(b.instrs)
	return b
}

// Here allocates a label bound to the next instruction (for backward
// branches: `top := b.Here()` ... `b.BNE(r1, r2, top)`).
func (b *Builder) Here() Label {
	l := b.NewLabel()
	b.Bind(l)
	return l
}

func (b *Builder) emit(i Instr) *Builder {
	b.instrs = append(b.instrs, i)
	return b
}

func (b *Builder) emitBranch(op Op, ra, rb Reg, l Label) *Builder {
	b.uses[l] = append(b.uses[l], len(b.instrs))
	return b.emit(Instr{Op: op, Ra: ra, Rb: rb, Target: -1})
}

// Nop appends a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: OpNop}) }

// MovI sets rd to an immediate.
func (b *Builder) MovI(rd Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpMovI, Rd: rd, Imm: imm})
}

// Mov copies ra to rd.
func (b *Builder) Mov(rd, ra Reg) *Builder {
	return b.emit(Instr{Op: OpMov, Rd: rd, Ra: ra})
}

// Add appends rd = ra + rb.
func (b *Builder) Add(rd, ra, rb Reg) *Builder {
	return b.emit(Instr{Op: OpAdd, Rd: rd, Ra: ra, Rb: rb})
}

// Sub appends rd = ra - rb.
func (b *Builder) Sub(rd, ra, rb Reg) *Builder {
	return b.emit(Instr{Op: OpSub, Rd: rd, Ra: ra, Rb: rb})
}

// Mul appends rd = ra * rb.
func (b *Builder) Mul(rd, ra, rb Reg) *Builder {
	return b.emit(Instr{Op: OpMul, Rd: rd, Ra: ra, Rb: rb})
}

// And appends rd = ra & rb.
func (b *Builder) And(rd, ra, rb Reg) *Builder {
	return b.emit(Instr{Op: OpAnd, Rd: rd, Ra: ra, Rb: rb})
}

// Or appends rd = ra | rb.
func (b *Builder) Or(rd, ra, rb Reg) *Builder {
	return b.emit(Instr{Op: OpOr, Rd: rd, Ra: ra, Rb: rb})
}

// Xor appends rd = ra ^ rb.
func (b *Builder) Xor(rd, ra, rb Reg) *Builder {
	return b.emit(Instr{Op: OpXor, Rd: rd, Ra: ra, Rb: rb})
}

// Shl appends rd = ra << (rb & 63).
func (b *Builder) Shl(rd, ra, rb Reg) *Builder {
	return b.emit(Instr{Op: OpShl, Rd: rd, Ra: ra, Rb: rb})
}

// Shr appends rd = ra >> rb.
func (b *Builder) Shr(rd, ra, rb Reg) *Builder {
	return b.emit(Instr{Op: OpShr, Rd: rd, Ra: ra, Rb: rb})
}

// AddI appends rd = ra + imm.
func (b *Builder) AddI(rd, ra Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpAddI, Rd: rd, Ra: ra, Imm: imm})
}

// MulI appends rd = ra * imm.
func (b *Builder) MulI(rd, ra Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpMulI, Rd: rd, Ra: ra, Imm: imm})
}

// AndI appends rd = ra & imm.
func (b *Builder) AndI(rd, ra Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpAndI, Rd: rd, Ra: ra, Imm: imm})
}

// Min appends rd = min(ra, rb).
func (b *Builder) Min(rd, ra, rb Reg) *Builder {
	return b.emit(Instr{Op: OpMin, Rd: rd, Ra: ra, Rb: rb})
}

// FMA appends the ALU-class fused multiply-add rd = ra*rb + rd.
func (b *Builder) FMA(rd, ra, rb Reg) *Builder {
	return b.emit(Instr{Op: OpFMA, Rd: rd, Ra: ra, Rb: rb})
}

// SFU appends a long-latency special-function op rd = hash(ra).
func (b *Builder) SFU(rd, ra Reg) *Builder {
	return b.emit(Instr{Op: OpSFU, Rd: rd, Ra: ra})
}

// Ld appends a scalar global load rd = mem[ra+imm].
func (b *Builder) Ld(rd, ra Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpLd, Rd: rd, Ra: ra, Imm: imm})
}

// St appends a scalar global store mem[ra+imm] = rb.
func (b *Builder) St(ra Reg, imm int64, rb Reg) *Builder {
	return b.emit(Instr{Op: OpSt, Ra: ra, Imm: imm, Rb: rb})
}

// LdV appends a vector global load from ra + lane*stride.
func (b *Builder) LdV(rd, ra Reg, stride int64) *Builder {
	return b.emit(Instr{Op: OpLdV, Rd: rd, Ra: ra, Imm: stride})
}

// StV appends a vector global store of rb to ra + lane*stride.
func (b *Builder) StV(ra Reg, stride int64, rb Reg) *Builder {
	return b.emit(Instr{Op: OpStV, Ra: ra, Imm: stride, Rb: rb})
}

// LdL appends a scalar local (scratchpad/stash) load.
func (b *Builder) LdL(rd, ra Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpLdL, Rd: rd, Ra: ra, Imm: imm})
}

// StL appends a scalar local store.
func (b *Builder) StL(ra Reg, imm int64, rb Reg) *Builder {
	return b.emit(Instr{Op: OpStL, Ra: ra, Imm: imm, Rb: rb})
}

// LdLV appends a vector local load from ra + lane*stride.
func (b *Builder) LdLV(rd, ra Reg, stride int64) *Builder {
	return b.emit(Instr{Op: OpLdLV, Rd: rd, Ra: ra, Imm: stride})
}

// StLV appends a vector local store of rb to ra + lane*stride.
func (b *Builder) StLV(ra Reg, stride int64, rb Reg) *Builder {
	return b.emit(Instr{Op: OpStLV, Ra: ra, Imm: stride, Rb: rb})
}

// AtomCAS appends rd = CAS(mem[ra], rb -> rc) with the given order.
func (b *Builder) AtomCAS(rd, ra, rb, rc Reg, o Order) *Builder {
	return b.emit(Instr{Op: OpAtomCAS, Rd: rd, Ra: ra, Rb: rb, Rc: rc, Order: o})
}

// AtomExch appends rd = exchange(mem[ra], rb) with the given order.
func (b *Builder) AtomExch(rd, ra, rb Reg, o Order) *Builder {
	return b.emit(Instr{Op: OpAtomExch, Rd: rd, Ra: ra, Rb: rb, Order: o})
}

// AtomAdd appends rd = fetch-add(mem[ra], rb) with the given order.
func (b *Builder) AtomAdd(rd, ra, rb Reg, o Order) *Builder {
	return b.emit(Instr{Op: OpAtomAdd, Rd: rd, Ra: ra, Rb: rb, Order: o})
}

// AtomAddNR appends a fire-and-forget fetch-add: the result is discarded
// and the warp does not block on completion.
func (b *Builder) AtomAddNR(ra, rb Reg, o Order) *Builder {
	return b.emit(Instr{Op: OpAtomAdd, Ra: ra, Rb: rb, Order: o, NoRet: true})
}

// Bar appends a thread-block barrier.
func (b *Builder) Bar() *Builder { return b.emit(Instr{Op: OpBar}) }

// Br appends an unconditional branch.
func (b *Builder) Br(l Label) *Builder { return b.emitBranch(OpBr, 0, 0, l) }

// BEQ appends if ra == rb goto l.
func (b *Builder) BEQ(ra, rb Reg, l Label) *Builder { return b.emitBranch(OpBEQ, ra, rb, l) }

// BNE appends if ra != rb goto l.
func (b *Builder) BNE(ra, rb Reg, l Label) *Builder { return b.emitBranch(OpBNE, ra, rb, l) }

// BLT appends if ra < rb goto l.
func (b *Builder) BLT(ra, rb Reg, l Label) *Builder { return b.emitBranch(OpBLT, ra, rb, l) }

// BGE appends if ra >= rb goto l.
func (b *Builder) BGE(ra, rb Reg, l Label) *Builder { return b.emitBranch(OpBGE, ra, rb, l) }

// Exit appends warp termination.
func (b *Builder) Exit() *Builder { return b.emit(Instr{Op: OpExit}) }

// Build patches labels, validates the program, and returns it. It returns
// an error for unbound labels, out-of-range registers, or a program with no
// exit.
func (b *Builder) Build() (*Program, error) {
	instrs := append([]Instr(nil), b.instrs...)
	for l, sites := range b.uses {
		target, ok := b.bound[l]
		if !ok {
			return nil, fmt.Errorf("isa: program %q: label %d used but never bound", b.name, l)
		}
		for _, site := range sites {
			instrs[site].Target = target
		}
	}
	hasExit := false
	for idx, in := range instrs {
		if in.Op == OpExit {
			hasExit = true
		}
		if in.Op.Class() == ClassCtrl && (in.Target < 0 || in.Target >= len(instrs)) {
			return nil, fmt.Errorf("isa: program %q: instr %d branches to %d, out of range", b.name, idx, in.Target)
		}
		for _, r := range [...]Reg{in.Rd, in.Ra, in.Rb, in.Rc} {
			if r >= NumRegs {
				return nil, fmt.Errorf("isa: program %q: instr %d uses register %d >= %d", b.name, idx, r, NumRegs)
			}
		}
	}
	if !hasExit {
		return nil, fmt.Errorf("isa: program %q has no exit instruction", b.name)
	}
	return &Program{Name: b.name, Instrs: instrs}, nil
}

// MustBuild is Build for statically known-good programs; it panics on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
