package isa

import (
	"strings"
	"testing"
)

func TestBuilderBackwardBranch(t *testing.T) {
	b := NewBuilder("loop")
	b.MovI(1, 3)
	top := b.Here()
	b.AddI(1, 1, -1)
	b.BNE(1, 0, top)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("len = %d, want 4", p.Len())
	}
	if p.At(2).Target != 1 {
		t.Fatalf("branch target = %d, want 1", p.At(2).Target)
	}
}

func TestBuilderForwardBranch(t *testing.T) {
	b := NewBuilder("fwd")
	done := b.NewLabel()
	b.BEQ(1, 2, done)
	b.Nop()
	b.Bind(done)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0).Target != 2 {
		t.Fatalf("forward target = %d, want 2", p.At(0).Target)
	}
}

func TestBuilderSharedLabelMultipleUses(t *testing.T) {
	b := NewBuilder("multi")
	l := b.NewLabel()
	b.Br(l)
	b.BEQ(1, 1, l)
	b.Bind(l)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0).Target != 2 || p.At(1).Target != 2 {
		t.Fatalf("targets = %d, %d, want 2, 2", p.At(0).Target, p.At(1).Target)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("unbound label", func(t *testing.T) {
		b := NewBuilder("bad")
		b.Br(b.NewLabel())
		b.Exit()
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "never bound") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("no exit", func(t *testing.T) {
		b := NewBuilder("noexit")
		b.Nop()
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no exit") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("register out of range", func(t *testing.T) {
		b := NewBuilder("regs")
		b.MovI(Reg(NumRegs), 1)
		b.Exit()
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "register") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("double bind panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		b := NewBuilder("dup")
		l := b.NewLabel()
		b.Bind(l)
		b.Nop()
		b.Bind(l)
	})
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder("empty").MustBuild()
}

func TestProgramAtOutOfRange(t *testing.T) {
	p := NewBuilder("p").Exit().MustBuild()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.At(5)
}

func TestBuilderEmitsExpectedOps(t *testing.T) {
	b := NewBuilder("all")
	l := b.NewLabel()
	b.Nop().MovI(1, 5).Mov(2, 1).Add(3, 1, 2).Sub(3, 1, 2).Mul(3, 1, 2)
	b.And(3, 1, 2).Or(3, 1, 2).Xor(3, 1, 2).Shl(3, 1, 2).Shr(3, 1, 2).AddI(3, 1, 1).MulI(3, 1, 2)
	b.AndI(3, 1, 7).Min(3, 1, 2).FMA(3, 1, 2).SFU(3, 1)
	b.Ld(4, 1, 0).St(1, 0, 4).LdV(4, 1, 8).StV(1, 8, 4)
	b.LdL(4, 1, 0).StL(1, 0, 4).LdLV(4, 1, 8).StLV(1, 8, 4)
	b.AtomCAS(4, 1, 0, 2, Acquire).AtomExch(4, 1, 0, Release).AtomAdd(4, 1, 2, Relaxed)
	b.AtomAddNR(1, 2, Relaxed)
	b.Bar().Bind(l).BEQ(1, 2, l).BNE(1, 2, l).BLT(1, 2, l).BGE(1, 2, l).Br(l)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []Op{
		OpNop, OpMovI, OpMov, OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpAddI, OpMulI, OpAndI, OpMin, OpFMA, OpSFU,
		OpLd, OpSt, OpLdV, OpStV, OpLdL, OpStL, OpLdLV, OpStLV,
		OpAtomCAS, OpAtomExch, OpAtomAdd, OpAtomAdd,
		OpBar, OpBEQ, OpBNE, OpBLT, OpBGE, OpBr, OpExit,
	}
	if p.Len() != len(wantOps) {
		t.Fatalf("len = %d, want %d", p.Len(), len(wantOps))
	}
	for i, op := range wantOps {
		if p.At(i).Op != op {
			t.Errorf("instr %d = %s, want %s", i, p.At(i).Op, op)
		}
	}
	if !p.At(28).NoRet {
		t.Errorf("AtomAddNR lost NoRet flag")
	}
}
