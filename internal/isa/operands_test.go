package isa

import "testing"

func TestReadRegsPrecision(t *testing.T) {
	// Unused operand fields must not be reported: register 0 is a real
	// register, and phantom reads of it would create false scoreboard
	// hazards.
	tests := []struct {
		in    Instr
		reads []Reg
	}{
		{Instr{Op: OpNop}, nil},
		{Instr{Op: OpMovI, Rd: 1, Imm: 5}, nil},
		{Instr{Op: OpMov, Rd: 1, Ra: 2}, []Reg{2}},
		{Instr{Op: OpAdd, Rd: 1, Ra: 2, Rb: 3}, []Reg{2, 3}},
		{Instr{Op: OpAddI, Rd: 1, Ra: 2}, []Reg{2}},
		{Instr{Op: OpFMA, Rd: 1, Ra: 2, Rb: 3}, []Reg{2, 3, 1}},
		{Instr{Op: OpSFU, Rd: 1, Ra: 2}, []Reg{2}},
		{Instr{Op: OpLd, Rd: 1, Ra: 2}, []Reg{2}},
		{Instr{Op: OpSt, Ra: 2, Rb: 1}, []Reg{2, 1}},
		{Instr{Op: OpLdLV, Rd: 1, Ra: 2}, []Reg{2}},
		{Instr{Op: OpAtomCAS, Rd: 1, Ra: 2, Rb: 3, Rc: 4}, []Reg{2, 3, 4}},
		{Instr{Op: OpAtomExch, Rd: 1, Ra: 2, Rb: 3}, []Reg{2, 3}},
		{Instr{Op: OpBr}, nil},
		{Instr{Op: OpBEQ, Ra: 5, Rb: 6}, []Reg{5, 6}},
		{Instr{Op: OpBar}, nil},
		{Instr{Op: OpExit}, nil},
	}
	for _, tt := range tests {
		got := tt.in.ReadRegs(nil)
		if len(got) != len(tt.reads) {
			t.Errorf("%s reads %v, want %v", tt.in.Op, got, tt.reads)
			continue
		}
		for i := range got {
			if got[i] != tt.reads[i] {
				t.Errorf("%s reads %v, want %v", tt.in.Op, got, tt.reads)
				break
			}
		}
	}
}

func TestWritesReg(t *testing.T) {
	tests := []struct {
		in     Instr
		wantRd Reg
		writes bool
	}{
		{Instr{Op: OpMovI, Rd: 3}, 3, true},
		{Instr{Op: OpLd, Rd: 4}, 4, true},
		{Instr{Op: OpSt}, 0, false},
		{Instr{Op: OpStLV}, 0, false},
		{Instr{Op: OpAtomAdd, Rd: 5}, 5, true},
		{Instr{Op: OpAtomAdd, Rd: 5, NoRet: true}, 0, false},
		{Instr{Op: OpBr}, 0, false},
		{Instr{Op: OpBar}, 0, false},
		{Instr{Op: OpExit}, 0, false},
	}
	for _, tt := range tests {
		rd, ok := tt.in.WritesReg()
		if ok != tt.writes || (ok && rd != tt.wantRd) {
			t.Errorf("%s WritesReg = (%d, %v), want (%d, %v)",
				tt.in.Op, rd, ok, tt.wantRd, tt.writes)
		}
	}
}

func TestReadRegsAppendsToBuffer(t *testing.T) {
	var buf [4]Reg
	got := Instr{Op: OpAdd, Ra: 1, Rb: 2}.ReadRegs(buf[:0])
	if &got[0] != &buf[0] {
		t.Error("ReadRegs reallocated despite sufficient capacity")
	}
}
