package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEvalALU(t *testing.T) {
	tests := []struct {
		op      Op
		a, b, d uint64
		imm     int64
		want    uint64
	}{
		{OpMovI, 0, 0, 0, 42, 42},
		{OpMov, 7, 0, 0, 0, 7},
		{OpAdd, 3, 4, 0, 0, 7},
		{OpSub, 3, 4, 0, 0, ^uint64(0)}, // wraparound
		{OpMul, 6, 7, 0, 0, 42},
		{OpAnd, 0b1100, 0b1010, 0, 0, 0b1000},
		{OpOr, 0b1100, 0b1010, 0, 0, 0b1110},
		{OpXor, 0b1100, 0b1010, 0, 0, 0b0110},
		{OpShl, 1, 4, 0, 0, 16},
		{OpShl, 1, 64, 0, 0, 1}, // shift count masked to 6 bits
		{OpShr, 16, 4, 0, 0, 1},
		{OpAddI, 10, 0, 0, -3, 7},
		{OpMulI, 10, 0, 0, 3, 30},
		{OpAndI, 0xFF, 0, 0, 0x0F, 0x0F},
		{OpMin, 3, 9, 0, 0, 3},
		{OpMin, 9, 3, 0, 0, 3},
		{OpFMA, 2, 3, 4, 0, 10},
	}
	for _, tt := range tests {
		if got := EvalALU(tt.op, tt.a, tt.b, tt.d, tt.imm); got != tt.want {
			t.Errorf("EvalALU(%s, %d, %d, %d, %d) = %d, want %d",
				tt.op, tt.a, tt.b, tt.d, tt.imm, got, tt.want)
		}
	}
	if EvalALU(OpSFU, 5, 0, 0, 0) != Mix64(5) {
		t.Errorf("SFU must compute Mix64")
	}
}

func TestEvalALUPanicsOnNonALU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EvalALU(OpLd, 0, 0, 0, 0)
}

func TestBranchTaken(t *testing.T) {
	tests := []struct {
		op   Op
		a, b uint64
		want bool
	}{
		{OpBr, 0, 0, true},
		{OpBEQ, 1, 1, true}, {OpBEQ, 1, 2, false},
		{OpBNE, 1, 2, true}, {OpBNE, 2, 2, false},
		{OpBLT, 1, 2, true}, {OpBLT, 2, 2, false},
		{OpBGE, 2, 2, true}, {OpBGE, 1, 2, false},
	}
	for _, tt := range tests {
		if got := BranchTaken(tt.op, tt.a, tt.b); got != tt.want {
			t.Errorf("BranchTaken(%s, %d, %d) = %v, want %v", tt.op, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMix64Properties(t *testing.T) {
	// Deterministic and adequately dispersive (no collisions over a
	// small dense range, which the workloads rely on).
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		v := Mix64(i)
		if v != Mix64(i) {
			t.Fatalf("Mix64 not deterministic at %d", i)
		}
		if seen[v] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[v] = true
	}
}

func TestOpClassTotal(t *testing.T) {
	// Every opcode has a class, a mnemonic, and consistent predicates.
	for op := OpNop; op < numOps; op++ {
		cls := op.Class() // must not panic
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
		if op.IsLoad() && op.IsStore() {
			t.Errorf("%s is both load and store", op)
		}
		if (op.IsLoad() || op.IsStore()) && cls != ClassMem {
			t.Errorf("%s is a load/store but class %d", op, cls)
		}
		if op.IsLocal() && !op.IsLoad() && !op.IsStore() {
			t.Errorf("%s local but neither load nor store", op)
		}
		if op.IsVector() && cls != ClassMem {
			t.Errorf("%s vector but not memory", op)
		}
	}
}

func TestOrderPredicates(t *testing.T) {
	if !Acquire.IsAcquire() || Acquire.IsRelease() {
		t.Error("Acquire predicates wrong")
	}
	if !Release.IsRelease() || Release.IsAcquire() {
		t.Error("Release predicates wrong")
	}
	if !AcqRel.IsAcquire() || !AcqRel.IsRelease() {
		t.Error("AcqRel predicates wrong")
	}
	if Relaxed.IsAcquire() || Relaxed.IsRelease() {
		t.Error("Relaxed predicates wrong")
	}
}

func TestInstrString(t *testing.T) {
	ins := []Instr{
		{Op: OpAdd, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpLd, Rd: 1, Ra: 2, Imm: 8},
		{Op: OpSt, Ra: 2, Imm: 8, Rb: 1},
		{Op: OpBr, Target: 4},
		{Op: OpBEQ, Ra: 1, Rb: 2, Target: 7},
		{Op: OpAtomCAS, Rd: 1, Ra: 2, Rb: 3, Rc: 4, Order: Acquire},
	}
	for _, in := range ins {
		if in.String() == "" {
			t.Errorf("empty String for %v", in.Op)
		}
	}
	if !strings.Contains(Instr{Op: OpAtomCAS, Order: Acquire}.String(), "acquire") {
		t.Error("atomic String missing order")
	}
}

// TestEvalALUTotal: EvalALU never panics for any ALU-class op and any
// operand values.
func TestEvalALUTotal(t *testing.T) {
	prop := func(a, b, d uint64, imm int64, opRaw uint8) bool {
		op := Op(opRaw) % numOps
		if op.Class() != ClassALU && op.Class() != ClassSFU {
			return true
		}
		EvalALU(op, a, b, d, imm)
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
