// Package isa defines the warp-level instruction set the simulated GPU
// executes, and a small assembler-style builder for writing kernels.
//
// Programs are warp programs: all lanes of a warp follow one control path
// (the paper's UTS kernels behave this way too — one lock holder per warp).
// Registers hold warp-scalar 64-bit values; vector memory operations expand
// a (base, stride) pair into per-lane addresses which the load/store unit
// coalesces into cache-line requests exactly as a SIMT coalescer would.
package isa

import "fmt"

// Reg names a warp-scalar register. Kernels may use registers 0 through
// NumRegs-1.
type Reg uint8

// NumRegs is the architectural register count per warp.
const NumRegs = 32

// Op enumerates the instruction opcodes.
type Op uint8

const (
	// OpNop does nothing for one issue slot.
	OpNop Op = iota

	// --- warp-scalar ALU (result latency: ALULat) ---

	OpMovI // Rd = Imm
	OpMov  // Rd = Ra
	OpAdd  // Rd = Ra + Rb
	OpSub  // Rd = Ra - Rb
	OpMul  // Rd = Ra * Rb
	OpAnd  // Rd = Ra & Rb
	OpOr   // Rd = Ra | Rb
	OpXor  // Rd = Ra ^ Rb
	OpShl  // Rd = Ra << (Rb & 63)
	OpShr  // Rd = Ra >> (Rb & 63)
	OpAddI // Rd = Ra + Imm
	OpMulI // Rd = Ra * Imm
	OpAndI // Rd = Ra & Imm
	OpMin  // Rd = min(Ra, Rb)
	OpFMA  // Rd = Ra*Rb + Rd (models a fused multiply-add; ALU class)

	// OpSFU models a long-latency special-function operation
	// (transcendental); Rd = hash(Ra). SFU class: long latency, limited
	// initiation interval, the source of compute structural stalls.
	OpSFU

	// --- global memory (unified CPU-GPU address space) ---

	OpLd  // Rd = mem64[Ra + Imm]           (scalar load)
	OpSt  // mem64[Ra + Imm] = Rb           (scalar store)
	OpLdV // per-lane load  at Ra + lane*Imm; Rd = lane-0 value
	OpStV // per-lane store at Ra + lane*Imm of Rb

	// --- local memory (scratchpad or stash address space) ---

	OpLdL  // Rd = local64[Ra + Imm]
	OpStL  // local64[Ra + Imm] = Rb
	OpLdLV // per-lane local load  at Ra + lane*Imm; Rd = lane-0 value
	OpStLV // per-lane local store at Ra + lane*Imm of Rb

	// --- atomics (execute at the L2 bank holding the address) ---

	OpAtomCAS  // Rd = old = mem64[Ra]; if old == Rb { mem64[Ra] = Rc }
	OpAtomExch // Rd = old = mem64[Ra]; mem64[Ra] = Rb
	OpAtomAdd  // Rd = old = mem64[Ra]; mem64[Ra] = old + Rb

	// --- control ---

	OpBar // block-wide thread barrier
	OpBr  // unconditional branch to Target
	OpBEQ // if Ra == Rb branch to Target
	OpBNE // if Ra != Rb branch to Target
	OpBLT // if Ra <  Rb branch to Target (unsigned)
	OpBGE // if Ra >= Rb branch to Target (unsigned)

	OpExit // warp terminates

	numOps
)

// Class groups opcodes by the pipeline resource they use.
type Class uint8

const (
	// ClassALU executes on the fully pipelined integer/FP unit.
	ClassALU Class = iota
	// ClassSFU executes on the special function unit.
	ClassSFU
	// ClassMem issues to the load/store unit (global or local space).
	ClassMem
	// ClassAtomic issues to the load/store unit and carries
	// synchronization semantics (the warp blocks until it completes).
	ClassAtomic
	// ClassBarrier blocks the warp at a thread-block barrier.
	ClassBarrier
	// ClassCtrl is a branch (resolved at issue; a taken branch flushes
	// the instruction buffer).
	ClassCtrl
	// ClassExit terminates the warp.
	ClassExit
	// ClassNop occupies an issue slot only.
	ClassNop
)

// Class returns the pipeline class of the opcode.
func (op Op) Class() Class {
	switch op {
	case OpNop:
		return ClassNop
	case OpMovI, OpMov, OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl,
		OpShr, OpAddI, OpMulI, OpAndI, OpMin, OpFMA:
		return ClassALU
	case OpSFU:
		return ClassSFU
	case OpLd, OpSt, OpLdV, OpStV, OpLdL, OpStL, OpLdLV, OpStLV:
		return ClassMem
	case OpAtomCAS, OpAtomExch, OpAtomAdd:
		return ClassAtomic
	case OpBar:
		return ClassBarrier
	case OpBr, OpBEQ, OpBNE, OpBLT, OpBGE:
		return ClassCtrl
	case OpExit:
		return ClassExit
	}
	panic(fmt.Sprintf("isa: unknown op %d", op))
}

// IsLoad reports whether the op reads memory into Rd via the LSU.
func (op Op) IsLoad() bool {
	switch op {
	case OpLd, OpLdV, OpLdL, OpLdLV:
		return true
	}
	return false
}

// IsStore reports whether the op writes memory via the LSU.
func (op Op) IsStore() bool {
	switch op {
	case OpSt, OpStV, OpStL, OpStLV:
		return true
	}
	return false
}

// IsLocal reports whether the op targets the local (scratchpad/stash)
// address space.
func (op Op) IsLocal() bool {
	switch op {
	case OpLdL, OpStL, OpLdLV, OpStLV:
		return true
	}
	return false
}

// IsVector reports whether the op expands to per-lane addresses.
func (op Op) IsVector() bool {
	switch op {
	case OpLdV, OpStV, OpLdLV, OpStLV:
		return true
	}
	return false
}

// String returns the mnemonic.
func (op Op) String() string {
	names := [...]string{
		OpNop: "nop", OpMovI: "movi", OpMov: "mov", OpAdd: "add",
		OpSub: "sub", OpMul: "mul", OpAnd: "and", OpOr: "or",
		OpXor: "xor", OpShl: "shl", OpShr: "shr", OpAddI: "addi",
		OpMulI: "muli", OpAndI: "andi", OpMin: "min", OpFMA: "fma",
		OpSFU: "sfu", OpLd: "ld", OpSt: "st", OpLdV: "ldv",
		OpStV: "stv", OpLdL: "ldl", OpStL: "stl", OpLdLV: "ldlv",
		OpStLV: "stlv", OpAtomCAS: "atom.cas", OpAtomExch: "atom.exch",
		OpAtomAdd: "atom.add", OpBar: "bar", OpBr: "br", OpBEQ: "beq",
		OpBNE: "bne", OpBLT: "blt", OpBGE: "bge", OpExit: "exit",
	}
	if int(op) < len(names) && names[op] != "" {
		return names[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Order is the memory-ordering annotation on an atomic operation; the
// simulated system uses a data-race-free model where acquires
// self-invalidate the L1 and releases flush the store buffer first.
type Order uint8

const (
	// Relaxed has no ordering side effects.
	Relaxed Order = iota
	// Acquire self-invalidates the L1 when the atomic completes.
	Acquire
	// Release flushes the store buffer before the atomic executes.
	Release
	// AcqRel combines both.
	AcqRel
)

// String returns the annotation's conventional name.
func (o Order) String() string {
	switch o {
	case Relaxed:
		return "relaxed"
	case Acquire:
		return "acquire"
	case Release:
		return "release"
	case AcqRel:
		return "acq_rel"
	}
	return fmt.Sprintf("order(%d)", uint8(o))
}

// IsAcquire reports whether the order has acquire semantics.
func (o Order) IsAcquire() bool { return o == Acquire || o == AcqRel }

// IsRelease reports whether the order has release semantics.
func (o Order) IsRelease() bool { return o == Release || o == AcqRel }

// Instr is one decoded instruction.
type Instr struct {
	Op     Op
	Rd     Reg
	Ra     Reg
	Rb     Reg
	Rc     Reg
	Imm    int64
	Target int   // branch target: instruction index
	Order  Order // atomics only
	Lanes  int   // active lanes for vector ops; 0 means the full warp
	// NoRet marks an atomic whose result is discarded: the warp does not
	// block waiting for the old value (GPU fire-and-forget atomics).
	NoRet bool
}

// String renders the instruction in assembly-like form.
func (i Instr) String() string {
	switch i.Op.Class() {
	case ClassCtrl:
		if i.Op == OpBr {
			return fmt.Sprintf("br @%d", i.Target)
		}
		return fmt.Sprintf("%s r%d, r%d, @%d", i.Op, i.Ra, i.Rb, i.Target)
	case ClassAtomic:
		return fmt.Sprintf("%s.%s r%d, [r%d], r%d, r%d", i.Op, i.Order, i.Rd, i.Ra, i.Rb, i.Rc)
	case ClassMem:
		if i.Op.IsLoad() {
			return fmt.Sprintf("%s r%d, [r%d+%d]", i.Op, i.Rd, i.Ra, i.Imm)
		}
		return fmt.Sprintf("%s [r%d+%d], r%d", i.Op, i.Ra, i.Imm, i.Rb)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d, %d", i.Op, i.Rd, i.Ra, i.Rb, i.Imm)
	}
}

// Program is a validated, immutable instruction sequence.
type Program struct {
	Name   string
	Instrs []Instr
}

// At returns the instruction at pc. It panics if pc is out of range, which
// indicates a control-flow bug in the core model (a warp must exit via
// OpExit).
func (p *Program) At(pc int) Instr {
	if pc < 0 || pc >= len(p.Instrs) {
		panic(fmt.Sprintf("isa: program %q pc %d out of range [0,%d)", p.Name, pc, len(p.Instrs)))
	}
	return p.Instrs[pc]
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Instrs) }

// EvalALU computes the functional result of a warp-scalar ALU op.
func EvalALU(op Op, a, b, d uint64, imm int64) uint64 {
	switch op {
	case OpMovI:
		return uint64(imm)
	case OpMov:
		return a
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 63)
	case OpShr:
		return a >> (b & 63)
	case OpAddI:
		return a + uint64(imm)
	case OpMulI:
		return a * uint64(imm)
	case OpAndI:
		return a & uint64(imm)
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpFMA:
		return a*b + d
	case OpSFU:
		return Mix64(a)
	}
	panic(fmt.Sprintf("isa: EvalALU on non-ALU op %s", op))
}

// Mix64 is the splitmix64 finalizer; workloads and the SFU use it as the
// deterministic hash underlying synthetic data.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BranchTaken evaluates a branch condition on warp-scalar values.
func BranchTaken(op Op, a, b uint64) bool {
	switch op {
	case OpBr:
		return true
	case OpBEQ:
		return a == b
	case OpBNE:
		return a != b
	case OpBLT:
		return a < b
	case OpBGE:
		return a >= b
	}
	panic(fmt.Sprintf("isa: BranchTaken on non-branch op %s", op))
}
