package isa

// ReadRegs appends to buf the registers the instruction reads and returns
// the extended slice. Unused operand fields are not reported, so register 0
// never produces false scoreboard hazards.
func (i Instr) ReadRegs(buf []Reg) []Reg {
	switch i.Op {
	case OpNop, OpMovI, OpBar, OpExit, OpBr:
		return buf
	case OpMov, OpAddI, OpMulI, OpAndI, OpSFU:
		return append(buf, i.Ra)
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMin:
		return append(buf, i.Ra, i.Rb)
	case OpFMA:
		return append(buf, i.Ra, i.Rb, i.Rd)
	case OpLd, OpLdV, OpLdL, OpLdLV:
		return append(buf, i.Ra)
	case OpSt, OpStV, OpStL, OpStLV:
		return append(buf, i.Ra, i.Rb)
	case OpAtomCAS:
		return append(buf, i.Ra, i.Rb, i.Rc)
	case OpAtomExch, OpAtomAdd:
		return append(buf, i.Ra, i.Rb)
	case OpBEQ, OpBNE, OpBLT, OpBGE:
		return append(buf, i.Ra, i.Rb)
	}
	return buf
}

// WritesReg reports the destination register, if the instruction has one.
func (i Instr) WritesReg() (Reg, bool) {
	switch i.Op {
	case OpMovI, OpMov, OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl,
		OpShr, OpAddI, OpMulI, OpAndI, OpMin, OpFMA, OpSFU,
		OpLd, OpLdV, OpLdL, OpLdLV:
		return i.Rd, true
	case OpAtomCAS, OpAtomExch, OpAtomAdd:
		return i.Rd, !i.NoRet
	}
	return 0, false
}
