package core

import (
	"fmt"
	"strings"
)

// Timeline records how each SM's cycle classification evolves over a run
// and renders it as one character column per time bucket — the
// "visualizing the causes of GPU stalls" half of GSI. It keeps a bounded
// number of buckets by doubling the bucket width whenever a run outgrows
// the current resolution (streaming downsample), so memory use is constant
// regardless of run length.
type Timeline struct {
	maxBuckets  int
	bucketWidth uint64
	sms         []timelineSM
}

type timelineSM struct {
	buckets []bucket
	fill    uint64 // cycles recorded into the last bucket
}

type bucket struct {
	counts [NumStallKinds]uint32
}

// NewTimeline returns a timeline for numSMs SMs with at most maxBuckets
// columns per SM.
func NewTimeline(numSMs, maxBuckets int) *Timeline {
	if maxBuckets < 8 {
		maxBuckets = 8
	}
	return &Timeline{
		maxBuckets:  maxBuckets,
		bucketWidth: 1,
		sms:         make([]timelineSM, numSMs),
	}
}

// Record appends one classified cycle for an SM. Cycles must arrive in
// order (one per simulation cycle), which is how the Inspector drives it.
func (tl *Timeline) Record(sm int, kind StallKind) {
	s := &tl.sms[sm]
	if len(s.buckets) == 0 || s.fill == tl.bucketWidth {
		if len(s.buckets) == tl.maxBuckets {
			tl.rescale()
		}
		s.buckets = append(s.buckets, bucket{})
		s.fill = 0
	}
	s.buckets[len(s.buckets)-1].counts[kind]++
	s.fill++
}

// rescale doubles the bucket width, merging adjacent buckets on every SM.
func (tl *Timeline) rescale() {
	for i := range tl.sms {
		s := &tl.sms[i]
		merged := s.buckets[:0]
		for j := 0; j < len(s.buckets); j += 2 {
			b := s.buckets[j]
			if j+1 < len(s.buckets) {
				for k := range b.counts {
					b.counts[k] += s.buckets[j+1].counts[k]
				}
			}
			merged = append(merged, b)
		}
		s.buckets = merged
		// The (possibly partial) last bucket absorbs future cycles up
		// to the new width.
		s.fill += tl.bucketWidth
		if s.fill > 2*tl.bucketWidth {
			s.fill = 2 * tl.bucketWidth
		}
	}
	tl.bucketWidth *= 2
}

// BucketWidth returns the current cycles-per-column resolution.
func (tl *Timeline) BucketWidth() uint64 { return tl.bucketWidth }

// timelineGlyphs maps each stall kind to its timeline character; idle
// renders as blank so busy phases stand out.
var timelineGlyphs = [NumStallKinds]byte{
	NoStall:        '#',
	Idle:           ' ',
	Control:        '+',
	Sync:           ':',
	MemData:        'o',
	MemStructural:  '*',
	CompData:       '.',
	CompStructural: '%',
}

// Render draws one row per SM; each column shows the dominant
// classification of that time bucket.
func (tl *Timeline) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycle timeline (1 column = %d cycles; dominant cause per bucket)\n", tl.bucketWidth)
	for i := range tl.sms {
		s := &tl.sms[i]
		fmt.Fprintf(&sb, "SM%-3d |", i)
		for _, b := range s.buckets {
			sb.WriteByte(timelineGlyphs[dominant(&b)])
		}
		sb.WriteString("|\n")
	}
	sb.WriteString("legend:")
	for _, k := range StallKinds() {
		g := timelineGlyphs[k]
		if g == ' ' {
			fmt.Fprintf(&sb, "  (blank)=%s", k)
			continue
		}
		fmt.Fprintf(&sb, "  %c=%s", g, k)
	}
	sb.WriteString("\n")
	return sb.String()
}

// dominant returns the kind with the most cycles in the bucket; ties go to
// the earlier kind in report order.
func dominant(b *bucket) StallKind {
	best := NoStall
	var bestN uint32
	for _, k := range StallKinds() {
		if n := b.counts[k]; n > bestN {
			best, bestN = k, n
		}
	}
	return best
}
