package core

import (
	"fmt"
	"strings"
	"sync"
)

// Timeline records how each SM's cycle classification evolves over a run
// and renders it as one character column per time bucket — the
// "visualizing the causes of GPU stalls" half of GSI. It keeps a bounded
// number of buckets by doubling the bucket width whenever a run outgrows
// the current resolution (streaming downsample), so memory use is constant
// regardless of run length.
type Timeline struct {
	// mu serializes recording: rescale touches every SM's buckets, so
	// per-SM sharding is not enough when the parallel tick engine records
	// from several workers at once. Buckets are aligned to absolute per-SM
	// cycle index, so the final timeline is independent of the order in
	// which concurrent recorders acquire the lock.
	mu          sync.Mutex
	maxBuckets  int
	bucketWidth uint64
	sms         []timelineSM
}

type timelineSM struct {
	buckets []bucket
	pos     uint64 // cycles recorded so far for this SM
}

type bucket struct {
	counts [NumStallKinds]uint64
}

// NewTimeline returns a timeline for numSMs SMs with at most maxBuckets
// columns per SM.
func NewTimeline(numSMs, maxBuckets int) *Timeline {
	if maxBuckets < 8 {
		maxBuckets = 8
	}
	return &Timeline{
		maxBuckets:  maxBuckets,
		bucketWidth: 1,
		sms:         make([]timelineSM, numSMs),
	}
}

// Record appends one classified cycle for an SM. Each SM's cycles must
// arrive in per-SM order (one per simulation cycle), which is how the
// Inspector drives it; SMs may progress at different rates, so a drained
// SM's remaining idle cycles can be appended in bulk via RecordSpan without
// changing the result.
func (tl *Timeline) Record(sm int, kind StallKind) { tl.RecordSpan(sm, kind, 1) }

// RecordSpan appends n consecutive cycles of one classification for an SM.
// Buckets are aligned to absolute per-SM cycle index (bucket b covers
// cycles [b*width, (b+1)*width)), so the final timeline depends only on
// each SM's cycle sequence, not on how recording interleaves across SMs.
func (tl *Timeline) RecordSpan(sm int, kind StallKind, n uint64) {
	if n == 0 {
		return
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	s := &tl.sms[sm]
	last := s.pos + n - 1
	for last/tl.bucketWidth >= uint64(tl.maxBuckets) {
		tl.rescale()
	}
	for s.pos <= last {
		b := s.pos / tl.bucketWidth
		for uint64(len(s.buckets)) <= b {
			s.buckets = append(s.buckets, bucket{})
		}
		// Fill to the end of bucket b or the end of the span.
		end := (b+1)*tl.bucketWidth - 1
		if end > last {
			end = last
		}
		s.buckets[b].counts[kind] += end - s.pos + 1
		s.pos = end + 1
	}
}

// rescale doubles the bucket width, merging aligned bucket pairs on every
// SM. Alignment to absolute cycle index is preserved, which is what makes
// the timeline independent of recording order across SMs.
func (tl *Timeline) rescale() {
	for i := range tl.sms {
		s := &tl.sms[i]
		merged := s.buckets[:0]
		for j := 0; j < len(s.buckets); j += 2 {
			b := s.buckets[j]
			if j+1 < len(s.buckets) {
				for k := range b.counts {
					b.counts[k] += s.buckets[j+1].counts[k]
				}
			}
			merged = append(merged, b)
		}
		s.buckets = merged
	}
	tl.bucketWidth *= 2
}

// BucketWidth returns the current cycles-per-column resolution.
func (tl *Timeline) BucketWidth() uint64 { return tl.bucketWidth }

// TimelineSnapshot is the structured form of a Timeline: the per-SM bucket
// matrix with its resolution, suitable for JSON interchange (serve clients
// plot it without the ASCII renderer). Columns marshal as labeled
// stall-kind maps like Counts, so documents survive taxonomy reordering.
type TimelineSnapshot struct {
	// BucketWidth is the cycles-per-column resolution.
	BucketWidth uint64 `json:"bucketWidth"`
	// SMs holds one column list per SM; column b covers cycles
	// [b*BucketWidth, (b+1)*BucketWidth).
	SMs [][]TimelineColumn `json:"sms"`
}

// TimelineColumn is one time bucket of one SM: classified cycles by kind.
type TimelineColumn struct {
	// Counts is the bucket's cycle count per stall kind.
	Counts [NumStallKinds]uint64
}

// Snapshot returns the timeline's current bucket matrix. The snapshot is a
// deep copy; recording may continue afterwards.
func (tl *Timeline) Snapshot() *TimelineSnapshot {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	s := &TimelineSnapshot{
		BucketWidth: tl.bucketWidth,
		SMs:         make([][]TimelineColumn, len(tl.sms)),
	}
	for i := range tl.sms {
		cols := make([]TimelineColumn, len(tl.sms[i].buckets))
		for j, b := range tl.sms[i].buckets {
			cols[j] = TimelineColumn{Counts: b.counts}
		}
		s.SMs[i] = cols
	}
	return s
}

// timelineGlyphs maps each stall kind to its timeline character; idle
// renders as blank so busy phases stand out.
var timelineGlyphs = [NumStallKinds]byte{
	NoStall:        '#',
	Idle:           ' ',
	Control:        '+',
	Sync:           ':',
	MemData:        'o',
	MemStructural:  '*',
	CompData:       '.',
	CompStructural: '%',
}

// Render draws one row per SM; each column shows the dominant
// classification of that time bucket.
func (tl *Timeline) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycle timeline (1 column = %d cycles; dominant cause per bucket)\n", tl.bucketWidth)
	for i := range tl.sms {
		s := &tl.sms[i]
		fmt.Fprintf(&sb, "SM%-3d |", i)
		for _, b := range s.buckets {
			sb.WriteByte(timelineGlyphs[dominant(&b)])
		}
		sb.WriteString("|\n")
	}
	sb.WriteString("legend:")
	for _, k := range StallKinds() {
		g := timelineGlyphs[k]
		if g == ' ' {
			fmt.Fprintf(&sb, "  (blank)=%s", k)
			continue
		}
		fmt.Fprintf(&sb, "  %c=%s", g, k)
	}
	sb.WriteString("\n")
	return sb.String()
}

// dominant returns the kind with the most cycles in the bucket; ties go to
// the earlier kind in report order.
func dominant(b *bucket) StallKind {
	best := NoStall
	var bestN uint64
	for _, k := range StallKinds() {
		if n := b.counts[k]; n > bestN {
			best, bestN = k, n
		}
	}
	return best
}
