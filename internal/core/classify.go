package core

// Cond captures everything the issue stage knows about one warp's next
// instruction in one cycle. The GPU core model fills one Cond per active
// warp; ClassifyInstruction reduces it to a single StallKind using the
// "strong" priority of Algorithm 1 (the cause most strongly preventing
// execution, i.e. the one most likely to still block next cycle).
type Cond struct {
	// Issued reports that the instruction issued this cycle.
	Issued bool
	// NextUnavailable reports that the instruction buffer could not
	// supply the next instruction for the warp (control stall).
	NextUnavailable bool
	// SyncBlocked reports that the warp is blocked on a pending acquire,
	// release, or thread barrier.
	SyncBlocked bool
	// MemDataHazard reports a data hazard on a pending load.
	MemDataHazard bool
	// PendingLoad identifies the blocking load when MemDataHazard is set.
	PendingLoad LoadID
	// MemStructHazard reports a structural hazard on the load/store unit.
	MemStructHazard bool
	// StructCause gives the blocking resource when MemStructHazard is set.
	StructCause StructCause
	// CompDataHazard reports a data hazard on a pending compute result.
	CompDataHazard bool
	// CompDataUnit identifies the producing pipeline when CompDataHazard
	// is set.
	CompDataUnit CompUnit
	// CompStructHazard reports that the required compute unit is busy.
	CompStructHazard bool
	// CompStructUnit identifies the contended pipeline when
	// CompStructHazard is set.
	CompStructUnit CompUnit
}

// WarpObs is the classified observation for one warp in one cycle: the
// stall kind chosen by Algorithm 1 plus the sub-classification payload
// needed if the cycle is later attributed to this warp.
type WarpObs struct {
	Kind        StallKind
	PendingLoad LoadID      // valid when Kind == MemData
	StructCause StructCause // valid when Kind == MemStructural
	CompUnit    CompUnit    // valid when Kind is a compute stall
}

// ClassifyInstruction implements Algorithm 1: it assigns a single stall
// type to one warp instruction considered in the issue stage, giving
// priority to the cause most strongly preventing execution.
//
// The priority order is exactly the paper's:
//
//	control > synchronization > memory data > memory structural >
//	compute data > compute structural > no stall
//
// (The "no active warps" case of Algorithm 1 is cycle-level and handled by
// ClassifyCycle when it receives zero observations.)
func ClassifyInstruction(c Cond) WarpObs {
	switch {
	case c.NextUnavailable:
		return WarpObs{Kind: Control}
	case c.SyncBlocked:
		return WarpObs{Kind: Sync}
	case c.MemDataHazard:
		return WarpObs{Kind: MemData, PendingLoad: c.PendingLoad}
	case c.MemStructHazard:
		return WarpObs{Kind: MemStructural, StructCause: c.StructCause}
	case c.CompDataHazard:
		return WarpObs{Kind: CompData, CompUnit: c.CompDataUnit}
	case c.CompStructHazard:
		return WarpObs{Kind: CompStructural, CompUnit: c.CompStructUnit}
	case c.Issued:
		return WarpObs{Kind: NoStall}
	default:
		// An active warp with no hazard that nevertheless did not
		// issue lost issue-port arbitration to another warp; the
		// cycle will be classified NoStall anyway (some warp issued).
		// If no warp issued this is a compute structural condition:
		// the issue ports themselves are the contended unit.
		return WarpObs{Kind: CompStructural, CompUnit: UnitIssue}
	}
}

// CycleClass is the result of Algorithm 2 for one SM-cycle: a single stall
// kind for the cycle plus the attribution payload for the memory
// sub-breakdowns.
type CycleClass struct {
	Kind        StallKind
	PendingLoad LoadID      // set when Kind == MemData
	StructCause StructCause // set when Kind == MemStructural
	CompUnit    CompUnit    // set when Kind is a compute stall
}

// cycle priority implements the "weak" order of Algorithm 2: after the
// no-stall check, the cycle takes the classification of the instruction
// that was closest to issuing, with memory and synchronization stalls
// prioritized over compute stalls because GSI targets memory-system
// analysis.
var cyclePriority = []StallKind{
	MemStructural, MemData, Sync, CompStructural, CompData, Control, Idle,
}

// ClassifyCycle implements Algorithm 2: it classifies an SM issue cycle
// from the per-warp observations. An empty slice means the SM had no
// active warps and the cycle is idle.
//
// When several warps share the winning kind, attribution (which pending
// load, which structural cause) goes to the first such warp in scheduler
// priority order, i.e. the warp that would have issued first.
func ClassifyCycle(warps []WarpObs) CycleClass {
	if len(warps) == 0 {
		return CycleClass{Kind: Idle}
	}
	for _, w := range warps {
		if w.Kind == NoStall {
			return CycleClass{Kind: NoStall}
		}
	}
	for _, kind := range cyclePriority {
		for _, w := range warps {
			if w.Kind != kind {
				continue
			}
			return CycleClass{
				Kind:        kind,
				PendingLoad: w.PendingLoad,
				StructCause: w.StructCause,
				CompUnit:    w.CompUnit,
			}
		}
	}
	// Unreachable: every observation has one of the kinds above.
	return CycleClass{Kind: Idle}
}

// ClassifyCycleStrong is the ablation variant discussed in section 4.2: it
// applies the *strong* (Algorithm 1) priority at cycle level instead of the
// weak one. It exists so the ablation benchmark can quantify how the choice
// of cycle-level priority shifts the breakdown.
func ClassifyCycleStrong(warps []WarpObs) CycleClass {
	if len(warps) == 0 {
		return CycleClass{Kind: Idle}
	}
	for _, w := range warps {
		if w.Kind == NoStall {
			return CycleClass{Kind: NoStall}
		}
	}
	strong := []StallKind{
		Control, Sync, MemData, MemStructural, CompData, CompStructural, Idle,
	}
	for _, kind := range strong {
		for _, w := range warps {
			if w.Kind != kind {
				continue
			}
			return CycleClass{
				Kind:        kind,
				PendingLoad: w.PendingLoad,
				StructCause: w.StructCause,
				CompUnit:    w.CompUnit,
			}
		}
	}
	return CycleClass{Kind: Idle}
}
