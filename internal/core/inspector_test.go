package core

import (
	"testing"
	"testing/quick"
)

func TestInspectorDeferredAttribution(t *testing.T) {
	in := NewInspector(1)
	// Three cycles blocked on load 5, then the load completes at the L2.
	for i := 0; i < 3; i++ {
		in.Observe(0, []WarpObs{{Kind: MemData, PendingLoad: 5}})
	}
	if got := in.SM(0).MemData[WhereL2]; got != 0 {
		t.Fatalf("attributed %d cycles before completion", got)
	}
	if in.PendingLoads() != 1 {
		t.Fatalf("PendingLoads = %d, want 1", in.PendingLoads())
	}
	in.LoadCompleted(0, 5, WhereL2)
	if got := in.SM(0).MemData[WhereL2]; got != 3 {
		t.Fatalf("L2 bucket = %d, want 3", got)
	}
	// A stall charged after completion resolves immediately.
	in.Observe(0, []WarpObs{{Kind: MemData, PendingLoad: 5}})
	if got := in.SM(0).MemData[WhereL2]; got != 4 {
		t.Fatalf("post-completion L2 bucket = %d, want 4", got)
	}
}

func TestInspectorFlushUnresolved(t *testing.T) {
	in := NewInspector(1)
	in.Observe(0, []WarpObs{{Kind: MemData, PendingLoad: 9}})
	in.Observe(0, []WarpObs{{Kind: MemData, PendingLoad: 9}})
	in.Flush()
	if got := in.SM(0).MemData[WhereMemory]; got != 2 {
		t.Fatalf("flush charged %d to main memory, want 2", got)
	}
	if in.PendingLoads() != 0 {
		t.Fatalf("PendingLoads after flush = %d", in.PendingLoads())
	}
}

func TestInspectorZeroLoadID(t *testing.T) {
	in := NewInspector(1)
	// A data hazard with no identified load charges the closest service
	// point (local L1) immediately.
	in.Observe(0, []WarpObs{{Kind: MemData}})
	if got := in.SM(0).MemData[WhereL1]; got != 1 {
		t.Fatalf("L1 bucket = %d, want 1", got)
	}
}

func TestInspectorEagerAblation(t *testing.T) {
	in := NewInspector(1)
	in.EagerAttribution = true
	in.Observe(0, []WarpObs{{Kind: MemData, PendingLoad: 3}})
	in.LoadCompleted(0, 3, WhereL2) // ignored in eager mode
	if got := in.SM(0).MemData[WhereMemory]; got != 1 {
		t.Fatalf("eager main-memory bucket = %d, want 1", got)
	}
	if got := in.SM(0).MemData[WhereL2]; got != 0 {
		t.Fatalf("eager L2 bucket = %d, want 0", got)
	}
}

func TestInspectorStructuralAttribution(t *testing.T) {
	in := NewInspector(2)
	in.Observe(1, []WarpObs{{Kind: MemStructural, StructCause: StructStoreBufferFull}})
	in.Observe(1, []WarpObs{{Kind: MemStructural, StructCause: StructPendingRelease}})
	c := in.SM(1)
	if c.MemStruct[StructStoreBufferFull] != 1 || c.MemStruct[StructPendingRelease] != 1 {
		t.Fatalf("structural buckets = %v", c.MemStruct)
	}
	if c.Cycles[MemStructural] != 2 {
		t.Fatalf("structural cycles = %d, want 2", c.Cycles[MemStructural])
	}
	// Defensive: a structural cycle with no cause lands in the generic
	// bucket rather than disappearing.
	in.RecordCycle(0, CycleClass{Kind: MemStructural})
	if in.SM(0).MemStruct[StructMSHRFull] != 1 {
		t.Fatalf("causeless structural cycle not charged")
	}
}

func TestInspectorAggregate(t *testing.T) {
	in := NewInspector(3)
	in.Observe(0, []WarpObs{{Kind: NoStall}})
	in.Observe(1, nil) // idle
	in.Observe(2, []WarpObs{{Kind: Sync}})
	agg := in.Aggregate()
	if agg.Total() != 3 {
		t.Fatalf("aggregate total = %d, want 3", agg.Total())
	}
	if agg.Cycles[NoStall] != 1 || agg.Cycles[Idle] != 1 || agg.Cycles[Sync] != 1 {
		t.Fatalf("aggregate = %v", agg.Cycles)
	}
}

func TestInspectorLoadCompletedWithoutStalls(t *testing.T) {
	in := NewInspector(1)
	in.LoadCompleted(0, 77, WhereL2) // never blocked anyone
	if in.PendingLoads() != 0 {
		t.Fatalf("completion created a pending record")
	}
	if in.Aggregate().Total() != 0 {
		t.Fatalf("completion created cycles")
	}
}

// TestInspectorConservation: however stalls are interleaved with
// completions, total mem-data sub-bucket cycles equal total MemData cycles
// after Flush.
func TestInspectorConservation(t *testing.T) {
	prop := func(events []uint16) bool {
		in := NewInspector(1)
		for _, e := range events {
			id := LoadID(e%7) + 1
			if e%3 == 0 {
				in.LoadCompleted(0, id, DataWhere(int(e/3)%NumDataWheres))
			} else {
				in.Observe(0, []WarpObs{{Kind: MemData, PendingLoad: id}})
			}
		}
		in.Flush()
		c := in.SM(0)
		var sub uint64
		for _, v := range c.MemData {
			sub += v
		}
		return sub == c.Cycles[MemData]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountsAdd(t *testing.T) {
	var a, b Counts
	a.Cycles[Sync] = 2
	a.MemData[WhereL2] = 1
	b.Cycles[Sync] = 3
	b.MemStruct[StructMSHRFull] = 4
	a.Add(&b)
	if a.Cycles[Sync] != 5 || a.MemData[WhereL2] != 1 || a.MemStruct[StructMSHRFull] != 4 {
		t.Fatalf("Add result = %+v", a)
	}
}

// TestRecordIdleSpanMatchesPerCycle: bulk idle crediting (the quiescent
// engine's path for sleeping SMs) must produce the same counts and the
// same rendered timeline as observing the idle cycles one at a time, even
// though the bulk path records whole spans out of interleaving order.
func TestRecordIdleSpanMatchesPerCycle(t *testing.T) {
	perCycle, bulk := NewInspector(2), NewInspector(2)
	perCycle.Timeline, bulk.Timeline = NewTimeline(2, 8), NewTimeline(2, 8)

	for i := 0; i < 3; i++ {
		perCycle.Observe(0, []WarpObs{{Kind: NoStall}})
		bulk.Observe(0, []WarpObs{{Kind: NoStall}})
	}
	// SM0 drains after 3 cycles and idles 50 more; SM1 never runs a block.
	for i := 0; i < 50; i++ {
		perCycle.Observe(0, nil)
	}
	for i := 0; i < 53; i++ {
		perCycle.Observe(1, nil)
	}
	bulk.RecordIdleSpan(0, 50)
	bulk.RecordIdleSpan(1, 53)

	for sm := 0; sm < 2; sm++ {
		if *perCycle.SM(sm) != *bulk.SM(sm) {
			t.Errorf("SM%d counts diverge:\n%+v\nvs\n%+v", sm, *perCycle.SM(sm), *bulk.SM(sm))
		}
	}
	if p, b := perCycle.Timeline.Render(), bulk.Timeline.Render(); p != b {
		t.Errorf("timelines diverge:\n--- per-cycle ---\n%s\n--- bulk ---\n%s", p, b)
	}
}
