package core

import (
	"encoding/json"
	"fmt"
)

// Counts marshals as label-keyed maps (the figure labels, e.g. "memory
// data", "pending release") rather than positional arrays, so JSON
// documents stay readable and robust to taxonomy reordering. Zero buckets
// are omitted; unmarshaling restores them as zeros, so the round trip is
// exact.

// countsJSON is the wire form of Counts.
type countsJSON struct {
	Cycles     map[string]uint64 `json:"cycles,omitempty"`
	MemData    map[string]uint64 `json:"memData,omitempty"`
	MemStruct  map[string]uint64 `json:"memStruct,omitempty"`
	CompData   map[string]uint64 `json:"compData,omitempty"`
	CompStruct map[string]uint64 `json:"compStruct,omitempty"`
}

// MarshalJSON encodes the profile as labeled maps, omitting zero buckets.
func (c Counts) MarshalJSON() ([]byte, error) {
	w := countsJSON{
		Cycles:     labelMap(c.Cycles[:], func(i int) string { return StallKind(i).String() }),
		MemData:    labelMap(c.MemData[:], func(i int) string { return DataWhere(i).String() }),
		MemStruct:  labelMap(c.MemStruct[:], func(i int) string { return StructCause(i).String() }),
		CompData:   labelMap(c.CompData[:], func(i int) string { return CompUnit(i).String() }),
		CompStruct: labelMap(c.CompStruct[:], func(i int) string { return CompUnit(i).String() }),
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes labeled maps back into the positional arrays,
// rejecting labels that name no bucket.
func (c *Counts) UnmarshalJSON(data []byte) error {
	var w countsJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*c = Counts{}
	if err := unlabelMap(c.Cycles[:], w.Cycles, "stall kind", func(i int) string { return StallKind(i).String() }); err != nil {
		return err
	}
	if err := unlabelMap(c.MemData[:], w.MemData, "data-stall location", func(i int) string { return DataWhere(i).String() }); err != nil {
		return err
	}
	if err := unlabelMap(c.MemStruct[:], w.MemStruct, "structural cause", func(i int) string { return StructCause(i).String() }); err != nil {
		return err
	}
	if err := unlabelMap(c.CompData[:], w.CompData, "compute unit", func(i int) string { return CompUnit(i).String() }); err != nil {
		return err
	}
	return unlabelMap(c.CompStruct[:], w.CompStruct, "compute unit", func(i int) string { return CompUnit(i).String() })
}

// MarshalJSON encodes the column as a labeled stall-kind map. An all-idle
// or empty column encodes as {} rather than null, so decoded snapshots
// compare deeply equal to the originals.
func (tc TimelineColumn) MarshalJSON() ([]byte, error) {
	m := labelMap(tc.Counts[:], func(i int) string { return StallKind(i).String() })
	if m == nil {
		m = map[string]uint64{}
	}
	return json.Marshal(m)
}

// UnmarshalJSON decodes a labeled stall-kind map back into the positional
// array, rejecting unknown labels.
func (tc *TimelineColumn) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*tc = TimelineColumn{}
	return unlabelMap(tc.Counts[:], m, "stall kind", func(i int) string { return StallKind(i).String() })
}

// labelMap turns a positional bucket array into a label-keyed map of its
// nonzero entries (nil if all zero, which omitempty then drops).
func labelMap(vals []uint64, label func(i int) string) map[string]uint64 {
	var m map[string]uint64
	for i, v := range vals {
		if v == 0 {
			continue
		}
		if m == nil {
			m = make(map[string]uint64)
		}
		m[label(i)] = v
	}
	return m
}

// unlabelMap writes a label-keyed map back into a positional array.
func unlabelMap(dst []uint64, src map[string]uint64, what string, label func(i int) string) error {
	for k, v := range src {
		idx := -1
		for i := range dst {
			if label(i) == k {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("core: unknown %s %q", what, k)
		}
		dst[idx] = v
	}
	return nil
}
