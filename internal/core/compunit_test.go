package core

import "testing"

func TestCompUnitSubclassification(t *testing.T) {
	obs := ClassifyInstruction(Cond{CompDataHazard: true, CompDataUnit: UnitSFU})
	if obs.Kind != CompData || obs.CompUnit != UnitSFU {
		t.Fatalf("obs = %+v", obs)
	}
	obs = ClassifyInstruction(Cond{CompStructHazard: true, CompStructUnit: UnitSFU})
	if obs.Kind != CompStructural || obs.CompUnit != UnitSFU {
		t.Fatalf("obs = %+v", obs)
	}
	in := NewInspector(1)
	in.Observe(0, []WarpObs{{Kind: CompData, CompUnit: UnitSFU}})
	in.Observe(0, []WarpObs{{Kind: CompData, CompUnit: UnitALU}})
	in.Observe(0, []WarpObs{{Kind: CompStructural, CompUnit: UnitIssue}})
	in.Observe(0, []WarpObs{{Kind: CompStructural}}) // unattributed -> ALU
	c := in.SM(0)
	if c.CompData[UnitSFU] != 1 || c.CompData[UnitALU] != 1 {
		t.Fatalf("comp data buckets = %v", c.CompData)
	}
	if c.CompStruct[UnitIssue] != 1 || c.CompStruct[UnitALU] != 1 {
		t.Fatalf("comp struct buckets = %v", c.CompStruct)
	}
}

func TestCompUnitLabels(t *testing.T) {
	if len(CompUnits()) != NumCompUnits-1 {
		t.Fatalf("CompUnits() has %d entries", len(CompUnits()))
	}
	for _, u := range CompUnits() {
		if u == UnitNone || u.String() == "none" {
			t.Fatal("UnitNone in report order")
		}
	}
}

func TestCountsAddCompUnits(t *testing.T) {
	var a, b Counts
	a.CompData[UnitSFU] = 2
	b.CompData[UnitSFU] = 3
	b.CompStruct[UnitIssue] = 1
	a.Add(&b)
	if a.CompData[UnitSFU] != 5 || a.CompStruct[UnitIssue] != 1 {
		t.Fatalf("Add = %+v", a)
	}
}
