// Package core implements the GPU Stall Inspector (GSI) stall taxonomy and
// the two classification algorithms from the paper: per-instruction "strong"
// classification (Algorithm 1) and per-cycle "weak" classification
// (Algorithm 2), plus the memory data and memory structural sub-classifiers.
//
// The package is deliberately independent of the simulator: the GPU core
// model reports what its issue stage observed each cycle (one WarpObs per
// active warp) and the Inspector folds those observations into breakdowns.
// Memory data stalls are attributed lazily: stall cycles accrue against the
// pending load that blocks the instruction, and are charged to a service
// location (L1, L1 coalescing, L2, remote L1, main memory) only when the
// load response arrives and the location is known.
package core

import "fmt"

// StallKind is the top-level classification of an issue-stage observation.
// The zero value is NoStall so that a zeroed WarpObs reads as "issued".
type StallKind uint8

// Top-level stall kinds, section 4.1 of the paper.
const (
	// NoStall: an instruction was issued this cycle.
	NoStall StallKind = iota
	// Idle: no active warps were available to issue instructions.
	Idle
	// Control: the instruction supplied by the instruction buffer is not
	// the next instruction to be executed in the warp.
	Control
	// Sync: the warp is blocked on a pending synchronization operation
	// (acquire, release, or thread barrier).
	Sync
	// MemData: the instruction depends on the output of a pending load.
	MemData
	// MemStructural: a memory instruction cannot issue because the
	// load/store unit is full (see StructCause for the reason).
	MemStructural
	// CompData: the instruction depends on a pending compute instruction.
	CompData
	// CompStructural: a compute instruction cannot issue because the
	// appropriate compute unit is occupied.
	CompStructural

	numStallKinds = int(CompStructural) + 1
)

// NumStallKinds is the number of distinct top-level stall kinds.
const NumStallKinds = numStallKinds

// String returns the label used in reports; it matches the paper's figures.
func (k StallKind) String() string {
	switch k {
	case NoStall:
		return "no stall"
	case Idle:
		return "idle"
	case Control:
		return "control"
	case Sync:
		return "synchronization"
	case MemData:
		return "memory data"
	case MemStructural:
		return "memory structural"
	case CompData:
		return "compute data"
	case CompStructural:
		return "compute structural"
	}
	return fmt.Sprintf("StallKind(%d)", uint8(k))
}

// StallKinds lists every top-level kind in report order: the paper's
// execution-time breakdown figures stack categories in this order.
func StallKinds() []StallKind {
	return []StallKind{
		NoStall, Idle, Control, Sync,
		MemData, MemStructural, CompData, CompStructural,
	}
}

// DataWhere sub-classifies a memory data stall by where the blocking load
// was serviced (section 4.3).
type DataWhere uint8

const (
	// WhereUnknown marks a load still in flight (or lost at end of
	// simulation); accrued stalls with this value are reported under
	// main memory, the conservative choice.
	WhereUnknown DataWhere = iota
	// WhereL1: the dependency load was satisfied by the local L1 (or
	// local scratchpad/stash hit).
	WhereL1
	// WhereL1Coalescing: the request missed in the L1 but was satisfied
	// by the response for another request to the same line (MSHR merge).
	WhereL1Coalescing
	// WhereL2: the request was satisfied at the shared L2.
	WhereL2
	// WhereRemoteL1: the request was forwarded to and satisfied by a
	// remote L1 that owned the line (possible only under protocols such
	// as DeNovo that allow ownership in L1 caches).
	WhereRemoteL1
	// WhereMemory: the request was satisfied by main memory.
	WhereMemory

	numDataWheres = int(WhereMemory) + 1
)

// NumDataWheres is the number of distinct data-stall service locations.
const NumDataWheres = numDataWheres

// String returns the label used in the memory data stall breakdown figures.
func (w DataWhere) String() string {
	switch w {
	case WhereUnknown:
		return "unknown"
	case WhereL1:
		return "L1 cache"
	case WhereL1Coalescing:
		return "L1 coalescing"
	case WhereL2:
		return "L2 cache"
	case WhereRemoteL1:
		return "remote L1 cache"
	case WhereMemory:
		return "main memory"
	}
	return fmt.Sprintf("DataWhere(%d)", uint8(w))
}

// DataWheres lists the service locations in report order (paper fig. order).
func DataWheres() []DataWhere {
	return []DataWhere{
		WhereL1, WhereL1Coalescing, WhereL2, WhereRemoteL1, WhereMemory,
	}
}

// StructCause sub-classifies a memory structural stall by the load/store
// unit resource that blocked issue (section 4.4).
type StructCause uint8

const (
	// StructNone is the zero value; it never appears in a breakdown.
	StructNone StructCause = iota
	// StructMSHRFull: the miss status holding registers are full.
	StructMSHRFull
	// StructStoreBufferFull: the write-combining store buffer is full.
	StructStoreBufferFull
	// StructBankConflict: accesses serialize on a cache or local-memory
	// bank.
	StructBankConflict
	// StructPendingRelease: a release is in progress; stores (and in the
	// baseline configuration all memory operations) are blocked until all
	// prior stores are flushed.
	StructPendingRelease
	// StructPendingDMA: the instruction touches a scratchpad region whose
	// DMA transfer has not yet completed.
	StructPendingDMA

	numStructCauses = int(StructPendingDMA) + 1
)

// NumStructCauses is the number of distinct structural stall causes.
const NumStructCauses = numStructCauses

// String returns the label used in the memory structural breakdown figures.
func (c StructCause) String() string {
	switch c {
	case StructNone:
		return "none"
	case StructMSHRFull:
		return "full MSHR"
	case StructStoreBufferFull:
		return "full store buffer"
	case StructBankConflict:
		return "bank conflict"
	case StructPendingRelease:
		return "pending release"
	case StructPendingDMA:
		return "pending DMA"
	}
	return fmt.Sprintf("StructCause(%d)", uint8(c))
}

// StructCauses lists the structural causes in report order.
func StructCauses() []StructCause {
	return []StructCause{
		StructMSHRFull, StructStoreBufferFull, StructBankConflict,
		StructPendingRelease, StructPendingDMA,
	}
}

// LoadID identifies a pending load for deferred data-stall attribution.
// IDs are allocated by the memory system and are unique within a run.
// The zero value means "no load".
type LoadID uint64

// CompUnit sub-classifies compute stalls by the pipeline involved: the
// producer of a pending result (compute data stalls) or the contended
// resource (compute structural stalls). The paper's conclusion notes GSI's
// methodology extends to compute-stall subcategorization when studying
// functional-unit changes; this is that extension.
type CompUnit uint8

const (
	// UnitNone is the zero value; it never appears in a breakdown.
	UnitNone CompUnit = iota
	// UnitALU: the fully pipelined integer/FP unit.
	UnitALU
	// UnitSFU: the special function unit (long latency, limited
	// initiation interval).
	UnitSFU
	// UnitIssue: the issue ports themselves (a ready warp lost
	// arbitration every slot this cycle).
	UnitIssue

	numCompUnits = int(UnitIssue) + 1
)

// NumCompUnits is the number of distinct compute-stall units.
const NumCompUnits = numCompUnits

// String returns the label used in the compute sub-breakdowns.
func (u CompUnit) String() string {
	switch u {
	case UnitNone:
		return "none"
	case UnitALU:
		return "ALU"
	case UnitSFU:
		return "SFU"
	case UnitIssue:
		return "issue port"
	}
	return fmt.Sprintf("CompUnit(%d)", uint8(u))
}

// CompUnits lists the units in report order.
func CompUnits() []CompUnit {
	return []CompUnit{UnitALU, UnitSFU, UnitIssue}
}
