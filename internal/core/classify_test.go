package core

import (
	"testing"
	"testing/quick"
)

func TestClassifyInstructionPriority(t *testing.T) {
	// Algorithm 1's "strong" priority: each row sets every weaker flag
	// too and must still classify as the strongest cause.
	tests := []struct {
		name string
		cond Cond
		want StallKind
	}{
		{"control beats everything", Cond{
			NextUnavailable: true, SyncBlocked: true, MemDataHazard: true,
			MemStructHazard: true, CompDataHazard: true, CompStructHazard: true,
		}, Control},
		{"sync beats data and structural", Cond{
			SyncBlocked: true, MemDataHazard: true, MemStructHazard: true,
			CompDataHazard: true, CompStructHazard: true,
		}, Sync},
		{"memory data beats memory structural", Cond{
			MemDataHazard: true, MemStructHazard: true,
			CompDataHazard: true, CompStructHazard: true,
		}, MemData},
		{"memory structural beats compute data", Cond{
			MemStructHazard: true, CompDataHazard: true, CompStructHazard: true,
		}, MemStructural},
		{"compute data beats compute structural", Cond{
			CompDataHazard: true, CompStructHazard: true,
		}, CompData},
		{"compute structural alone", Cond{CompStructHazard: true}, CompStructural},
		{"issued", Cond{Issued: true}, NoStall},
		{"arbitration loss counts as compute structural", Cond{}, CompStructural},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClassifyInstruction(tt.cond); got.Kind != tt.want {
				t.Errorf("ClassifyInstruction(%+v).Kind = %v, want %v", tt.cond, got.Kind, tt.want)
			}
		})
	}
}

func TestClassifyInstructionPayloads(t *testing.T) {
	obs := ClassifyInstruction(Cond{MemDataHazard: true, PendingLoad: 42})
	if obs.Kind != MemData || obs.PendingLoad != 42 {
		t.Errorf("mem data obs = %+v, want MemData with load 42", obs)
	}
	obs = ClassifyInstruction(Cond{MemStructHazard: true, StructCause: StructPendingDMA})
	if obs.Kind != MemStructural || obs.StructCause != StructPendingDMA {
		t.Errorf("mem structural obs = %+v, want pending DMA", obs)
	}
	// Payloads do not leak when a stronger cause wins.
	obs = ClassifyInstruction(Cond{
		SyncBlocked: true, MemDataHazard: true, PendingLoad: 7,
	})
	if obs.Kind != Sync || obs.PendingLoad != 0 {
		t.Errorf("sync obs carries load payload: %+v", obs)
	}
}

func TestClassifyCycleNoWarps(t *testing.T) {
	if got := ClassifyCycle(nil); got.Kind != Idle {
		t.Errorf("ClassifyCycle(nil).Kind = %v, want Idle", got.Kind)
	}
	if got := ClassifyCycle([]WarpObs{}); got.Kind != Idle {
		t.Errorf("ClassifyCycle(empty).Kind = %v, want Idle", got.Kind)
	}
}

func TestClassifyCycleWeakPriority(t *testing.T) {
	// Algorithm 2: no-stall wins outright; otherwise the weak order is
	// MemStructural > MemData > Sync > CompStructural > CompData >
	// Control > Idle.
	all := []WarpObs{
		{Kind: Control},
		{Kind: Sync},
		{Kind: MemData, PendingLoad: 9},
		{Kind: MemStructural, StructCause: StructMSHRFull},
		{Kind: CompData},
		{Kind: CompStructural},
	}
	tests := []struct {
		name string
		obs  []WarpObs
		want StallKind
	}{
		{"any issue wins", append([]WarpObs{{Kind: NoStall}}, all...), NoStall},
		{"mem structural first", all, MemStructural},
		{"mem data next", all[:3], MemData},
		{"sync next", all[:2], Sync},
		{"control last", all[:1], Control},
		{"comp structural over comp data", []WarpObs{{Kind: CompData}, {Kind: CompStructural}}, CompStructural},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClassifyCycle(tt.obs); got.Kind != tt.want {
				t.Errorf("ClassifyCycle = %v, want %v", got.Kind, tt.want)
			}
		})
	}
}

func TestClassifyCycleAttributionOrder(t *testing.T) {
	// Ties attribute to the first warp in scheduler priority order.
	cc := ClassifyCycle([]WarpObs{
		{Kind: MemData, PendingLoad: 1},
		{Kind: MemData, PendingLoad: 2},
	})
	if cc.PendingLoad != 1 {
		t.Errorf("attributed load %d, want 1 (first in priority order)", cc.PendingLoad)
	}
	cc = ClassifyCycle([]WarpObs{
		{Kind: Sync},
		{Kind: MemStructural, StructCause: StructBankConflict},
		{Kind: MemStructural, StructCause: StructMSHRFull},
	})
	if cc.StructCause != StructBankConflict {
		t.Errorf("attributed cause %v, want bank conflict (first matching warp)", cc.StructCause)
	}
}

func TestClassifyCycleStrongAblation(t *testing.T) {
	obs := []WarpObs{{Kind: Control}, {Kind: MemStructural, StructCause: StructMSHRFull}}
	if got := ClassifyCycle(obs); got.Kind != MemStructural {
		t.Errorf("weak order = %v, want MemStructural", got.Kind)
	}
	if got := ClassifyCycleStrong(obs); got.Kind != Control {
		t.Errorf("strong order = %v, want Control", got.Kind)
	}
	if got := ClassifyCycleStrong(nil); got.Kind != Idle {
		t.Errorf("strong order on empty = %v, want Idle", got.Kind)
	}
	if got := ClassifyCycleStrong([]WarpObs{{Kind: NoStall}, {Kind: Sync}}); got.Kind != NoStall {
		t.Errorf("strong order with issue = %v, want NoStall", got.Kind)
	}
}

// TestClassifyCycleProperty checks, for arbitrary observation sets, that
// the chosen cycle kind is always present among the observations (or Idle
// for an empty set), under both priority orders.
func TestClassifyCycleProperty(t *testing.T) {
	prop := func(kinds []uint8) bool {
		obs := make([]WarpObs, len(kinds))
		for i, k := range kinds {
			obs[i] = WarpObs{Kind: StallKind(k % uint8(NumStallKinds))}
		}
		for _, cc := range []CycleClass{ClassifyCycle(obs), ClassifyCycleStrong(obs)} {
			if len(obs) == 0 {
				if cc.Kind != Idle {
					return false
				}
				continue
			}
			found := false
			for _, o := range obs {
				if o.Kind == cc.Kind {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestClassifyCyclePermutationInvariance: the chosen *kind* must not depend
// on warp order (attribution may, the kind may not).
func TestClassifyCyclePermutationInvariance(t *testing.T) {
	prop := func(kinds []uint8, rot uint8) bool {
		if len(kinds) == 0 {
			return true
		}
		obs := make([]WarpObs, len(kinds))
		for i, k := range kinds {
			obs[i] = WarpObs{Kind: StallKind(k % uint8(NumStallKinds))}
		}
		r := int(rot) % len(obs)
		rotated := append(append([]WarpObs{}, obs[r:]...), obs[:r]...)
		return ClassifyCycle(obs).Kind == ClassifyCycle(rotated).Kind
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
