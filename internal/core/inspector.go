package core

// Counts is the per-SM (or aggregated) stall profile GSI produces: total
// cycles by top-level kind plus the two memory sub-breakdowns.
type Counts struct {
	// Cycles[k] is the number of issue cycles classified as StallKind(k).
	Cycles [NumStallKinds]uint64
	// MemData[w] is the number of memory-data stall cycles whose blocking
	// load was serviced at DataWhere(w).
	MemData [NumDataWheres]uint64
	// MemStruct[c] is the number of memory-structural stall cycles whose
	// blocking resource was StructCause(c).
	MemStruct [NumStructCauses]uint64
	// CompData[u] and CompStruct[u] sub-classify compute stalls by the
	// producing / contended pipeline (the paper's suggested extension for
	// studying functional-unit changes).
	CompData   [NumCompUnits]uint64
	CompStruct [NumCompUnits]uint64
}

// Total returns the total number of classified cycles.
func (c Counts) Total() uint64 {
	var t uint64
	for _, v := range c.Cycles {
		t += v
	}
	return t
}

// Add accumulates other into c.
func (c *Counts) Add(other *Counts) {
	for i := range c.Cycles {
		c.Cycles[i] += other.Cycles[i]
	}
	for i := range c.MemData {
		c.MemData[i] += other.MemData[i]
	}
	for i := range c.MemStruct {
		c.MemStruct[i] += other.MemStruct[i]
	}
	for i := range c.CompData {
		c.CompData[i] += other.CompData[i]
	}
	for i := range c.CompStruct {
		c.CompStruct[i] += other.CompStruct[i]
	}
}

// Inspector is the GSI collector. One Inspector profiles one simulation:
// each SM reports one CycleClass per cycle, and the memory system reports
// load completions so deferred memory-data attribution can resolve.
//
// Deferred attribution: when a cycle is classified MemData the blocking
// load is usually still in flight, so where it will be serviced is not yet
// known. The Inspector accrues such cycles against the LoadID and folds
// them into the proper DataWhere bucket when LoadCompleted is called.
// Stalls observed after completion (possible for the cycle in which the
// response is being written back) are charged directly.
type Inspector struct {
	perSM []Counts
	// pending is sharded per SM: load IDs are private to the issuing SM
	// (gpu.SM.nextLoadID stripes the ID space), so every accrual and
	// completion for a load comes from the same SM. The sharding makes the
	// Inspector safe under the parallel tick engine, where distinct SMs
	// record concurrently, without any locking on the hot path.
	pending []map[LoadID]*pendingLoad

	// StrongCycle selects the ablation classifier (strong priority at
	// cycle level); see ClassifyCycleStrong.
	StrongCycle bool
	// EagerAttribution selects the ablation data-stall attribution that
	// charges stalls immediately to main memory instead of deferring;
	// see DESIGN.md ablation 1.
	EagerAttribution bool
	// Timeline, when set, records a per-SM stall timeline alongside the
	// counters (see NewTimeline).
	Timeline *Timeline
	// Trace, when set, receives the full classification stream (every
	// recorded span with its sub-cause payload) plus load completions for
	// deferred-attribution resolution. Nil by default; the hot path pays
	// one pointer test.
	Trace TraceSink
}

// TraceSink receives the Inspector's classification stream for structured
// trace export (implemented by trace.Collector; defined here so core stays
// free of trace dependencies). Calls for one SM are always serialized by
// the engine, matching the Inspector's own per-SM sharding contract.
type TraceSink interface {
	// StallSpan reports n consecutive cycles of one classification on sm.
	// Spans arrive in per-SM cycle order with no gaps, so a sink can
	// reconstruct absolute cycle positions by accumulation.
	StallSpan(sm int, cc CycleClass, n uint64)
	// LoadResolved reports where a pending load was serviced, resolving
	// the deferred attribution of earlier MemData spans naming it.
	LoadResolved(sm int, id LoadID, where DataWhere)
}

type pendingLoad struct {
	sm      int
	accrued uint64
	where   DataWhere // WhereUnknown until completion
	done    bool
}

// NewInspector returns an Inspector profiling numSMs streaming
// multiprocessors.
func NewInspector(numSMs int) *Inspector {
	in := &Inspector{
		perSM:   make([]Counts, numSMs),
		pending: make([]map[LoadID]*pendingLoad, numSMs),
	}
	for i := range in.pending {
		in.pending[i] = make(map[LoadID]*pendingLoad)
	}
	return in
}

// Observe classifies one SM issue cycle from the per-warp observations and
// records it. It is the single entry point the GPU core model calls each
// cycle. The returned CycleClass is what was recorded (useful for tracing).
func (in *Inspector) Observe(sm int, warps []WarpObs) CycleClass {
	var cc CycleClass
	if in.StrongCycle {
		cc = ClassifyCycleStrong(warps)
	} else {
		cc = ClassifyCycle(warps)
	}
	in.RecordCycle(sm, cc)
	return cc
}

// RecordCycle records an already-classified cycle for an SM.
func (in *Inspector) RecordCycle(sm int, cc CycleClass) { in.RecordCycleSpan(sm, cc, 1) }

// RecordCycleSpan records n consecutive cycles of one classification for an
// SM in one call — exactly the counts, deferred-attribution accruals, and
// timeline a dense loop would accumulate by recording the same CycleClass n
// times in a row. It is the bulk-advance path for the skip-ahead engine:
// when the engine jumps a window in which an SM's classification provably
// cannot change, the whole window is credited here at once.
func (in *Inspector) RecordCycleSpan(sm int, cc CycleClass, n uint64) {
	if n == 0 {
		return
	}
	c := &in.perSM[sm]
	c.Cycles[cc.Kind] += n
	if in.Timeline != nil {
		in.Timeline.RecordSpan(sm, cc.Kind, n)
	}
	if in.Trace != nil {
		in.Trace.StallSpan(sm, cc, n)
	}
	switch cc.Kind {
	case MemData:
		in.recordMemData(sm, cc.PendingLoad, n)
	case MemStructural:
		cause := cc.StructCause
		if cause == StructNone {
			// Defensive: a structural stall must have a cause;
			// charge the most generic one rather than dropping.
			cause = StructMSHRFull
		}
		c.MemStruct[cause] += n
	case CompData:
		c.CompData[unitOrALU(cc.CompUnit)] += n
	case CompStructural:
		c.CompStruct[unitOrALU(cc.CompUnit)] += n
	}
}

// RecordIdleSpan records n consecutive Idle cycles for an SM in one call —
// the bulk path for a drained SM that stopped ticking, credited at the end
// of the run.
func (in *Inspector) RecordIdleSpan(sm int, n uint64) {
	in.RecordCycleSpan(sm, CycleClass{Kind: Idle}, n)
}

// unitOrALU defaults an unattributed compute stall to the ALU, the generic
// pipeline.
func unitOrALU(u CompUnit) CompUnit {
	if u == UnitNone {
		return UnitALU
	}
	return u
}

func (in *Inspector) recordMemData(sm int, id LoadID, n uint64) {
	c := &in.perSM[sm]
	if in.EagerAttribution {
		// Ablation: charge immediately to main memory (the only level
		// an eager classifier can safely assume for an in-flight
		// miss). The default deferred scheme is the paper's.
		c.MemData[WhereMemory] += n
		return
	}
	if id == 0 {
		// No load identified (e.g. dependency already resolved this
		// cycle): local L1 is the closest service point.
		c.MemData[WhereL1] += n
		return
	}
	p := in.pending[sm][id]
	if p == nil {
		p = &pendingLoad{sm: sm, where: WhereUnknown}
		in.pending[sm][id] = p
	}
	if p.done {
		c.MemData[p.where] += n
		return
	}
	p.accrued += n
}

// LoadCompleted tells the Inspector where a load was serviced; sm is the SM
// that issued the load (the one whose LSU observes the completion). Accrued
// stall cycles for that load are folded into the matching bucket. The entry
// is retained (marked done) so stalls charged to the load in the completion
// cycle itself still resolve correctly; Flush drops retained entries.
func (in *Inspector) LoadCompleted(sm int, id LoadID, where DataWhere) {
	if in.Trace != nil && id != 0 {
		in.Trace.LoadResolved(sm, id, where)
	}
	if in.EagerAttribution || id == 0 {
		return
	}
	p := in.pending[sm][id]
	if p == nil {
		// Load completed without ever blocking anyone: nothing to
		// attribute, and nothing to remember.
		return
	}
	p.where = where
	p.done = true
	if p.accrued > 0 {
		in.perSM[p.sm].MemData[where] += p.accrued
		p.accrued = 0
	}
}

// Flush resolves bookkeeping at end of simulation: loads still in flight
// have their accrued stalls charged to main memory (the conservative
// choice), and completed-load records are dropped.
func (in *Inspector) Flush() {
	for _, shard := range in.pending {
		for id, p := range shard {
			if !p.done && p.accrued > 0 {
				in.perSM[p.sm].MemData[WhereMemory] += p.accrued
			}
			delete(shard, id)
		}
	}
}

// SM returns the counts for one SM. The pointer stays valid for the
// Inspector's lifetime.
func (in *Inspector) SM(sm int) *Counts { return &in.perSM[sm] }

// NumSMs returns the number of SMs being profiled.
func (in *Inspector) NumSMs() int { return len(in.perSM) }

// Aggregate sums the per-SM counts. Call Flush first if the simulation has
// ended and in-flight loads should resolve to main memory.
func (in *Inspector) Aggregate() Counts {
	var total Counts
	for i := range in.perSM {
		total.Add(&in.perSM[i])
	}
	return total
}

// PendingLoads reports how many loads have unresolved attribution; useful
// for leak checks in tests.
func (in *Inspector) PendingLoads() int {
	n := 0
	for _, shard := range in.pending {
		for _, p := range shard {
			if !p.done {
				n++
			}
		}
	}
	return n
}
