package core

import (
	"strings"
	"testing"
)

func TestTimelineRecordsAndRenders(t *testing.T) {
	tl := NewTimeline(2, 8)
	for i := 0; i < 4; i++ {
		tl.Record(0, NoStall)
		tl.Record(1, Sync)
	}
	out := tl.Render()
	if !strings.Contains(out, "SM0") || !strings.Contains(out, "SM1") {
		t.Fatalf("missing SM rows:\n%s", out)
	}
	if !strings.Contains(out, "####") {
		t.Errorf("SM0 row should be no-stall glyphs:\n%s", out)
	}
	if !strings.Contains(out, "::::") {
		t.Errorf("SM1 row should be sync glyphs:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Errorf("missing legend:\n%s", out)
	}
}

func TestTimelineRescales(t *testing.T) {
	tl := NewTimeline(1, 8)
	// Record far more cycles than buckets: the width must double until
	// everything fits, and the bucket count must stay bounded.
	const cycles = 1000
	for i := 0; i < cycles; i++ {
		k := NoStall
		if i >= cycles/2 {
			k = MemData
		}
		tl.Record(0, k)
	}
	if got := len(tl.sms[0].buckets); got > 8 {
		t.Fatalf("buckets = %d, want <= 8", got)
	}
	if tl.BucketWidth() < cycles/8 {
		t.Fatalf("bucket width %d too small for %d cycles", tl.BucketWidth(), cycles)
	}
	// Total recorded cycles are conserved across rescales.
	var total uint64
	for _, b := range tl.sms[0].buckets {
		for _, n := range b.counts {
			total += n
		}
	}
	if total != cycles {
		t.Fatalf("conserved %d cycles, want %d", total, cycles)
	}
	// The first half renders no-stall, the second memory-data (inspect
	// the bar between the pipes, not the header text).
	out := tl.Render()
	start, end := strings.IndexByte(out, '|'), strings.LastIndexByte(out, '|')
	row := out[start:end]
	if !strings.Contains(row, "#") || !strings.Contains(row, "o") {
		t.Fatalf("timeline lost phase structure:\n%s", out)
	}
	if strings.Index(row, "#") > strings.Index(row, "o") {
		t.Fatalf("phases out of order:\n%s", out)
	}
}

func TestTimelineDominant(t *testing.T) {
	var b bucket
	b.counts[Sync] = 3
	b.counts[MemData] = 5
	if dominant(&b) != MemData {
		t.Fatal("dominant picked the wrong kind")
	}
}

func TestInspectorDrivesTimeline(t *testing.T) {
	in := NewInspector(1)
	in.Timeline = NewTimeline(1, 8)
	in.Observe(0, []WarpObs{{Kind: Sync}})
	in.Observe(0, nil)
	if !strings.Contains(in.Timeline.Render(), ":") {
		t.Fatal("inspector did not feed the timeline")
	}
}
