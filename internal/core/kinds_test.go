package core

import (
	"strings"
	"testing"
)

func TestStallKindStrings(t *testing.T) {
	want := map[StallKind]string{
		NoStall: "no stall", Idle: "idle", Control: "control",
		Sync: "synchronization", MemData: "memory data",
		MemStructural: "memory structural", CompData: "compute data",
		CompStructural: "compute structural",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if !strings.Contains(StallKind(250).String(), "250") {
		t.Errorf("unknown kind string: %q", StallKind(250).String())
	}
}

func TestReportOrders(t *testing.T) {
	if got := len(StallKinds()); got != NumStallKinds {
		t.Errorf("StallKinds() has %d entries, want %d", got, NumStallKinds)
	}
	seen := map[StallKind]bool{}
	for _, k := range StallKinds() {
		if seen[k] {
			t.Errorf("duplicate kind %v in report order", k)
		}
		seen[k] = true
	}
	// DataWheres excludes the internal WhereUnknown.
	if got := len(DataWheres()); got != NumDataWheres-1 {
		t.Errorf("DataWheres() has %d entries, want %d", got, NumDataWheres-1)
	}
	for _, w := range DataWheres() {
		if w == WhereUnknown {
			t.Errorf("WhereUnknown leaked into report order")
		}
	}
	// StructCauses excludes StructNone.
	if got := len(StructCauses()); got != NumStructCauses-1 {
		t.Errorf("StructCauses() has %d entries, want %d", got, NumStructCauses-1)
	}
	for _, c := range StructCauses() {
		if c == StructNone {
			t.Errorf("StructNone leaked into report order")
		}
	}
}

func TestSubClassStrings(t *testing.T) {
	labels := map[string]bool{}
	for _, w := range DataWheres() {
		labels[w.String()] = true
	}
	for _, want := range []string{"L1 cache", "L1 coalescing", "L2 cache", "remote L1 cache", "main memory"} {
		if !labels[want] {
			t.Errorf("missing data-stall label %q", want)
		}
	}
	labels = map[string]bool{}
	for _, c := range StructCauses() {
		labels[c.String()] = true
	}
	for _, want := range []string{"full MSHR", "full store buffer", "bank conflict", "pending release", "pending DMA"} {
		if !labels[want] {
			t.Errorf("missing structural label %q", want)
		}
	}
}
