package workloads

import (
	"fmt"

	"gsi/internal/cpu"
	"gsi/internal/gpu"
	"gsi/internal/isa"
)

// Steal is a work-stealing scheduler microbenchmark: every thread block
// owns a lock-protected deque of task ids, warps drain their own block's
// deque, and a warp that finds it empty rotates through victim deques
// stealing half the victim's tasks (round up) into its own — the classic
// steal-half policy. The initial distribution is skewed (by default every
// task starts in block 0's deque), so work diffuses through cascading
// steals: workers oscillate between processing and lock-spinning as the
// imbalance drains, which is exactly the contended-atomics pressure and
// irregular quiescence the fixed-shape workloads never produce. Results
// are schedule-independent (result[id] is a pure function of id), so the
// functional check stays exact no matter which warp processed a task.
//
// Steals take the thief's and the victim's deque locks together, acquired
// in lock-address order, so thieves can never deadlock against each other;
// owner pops take only the owner's lock and therefore never participate in
// a cycle. Termination is a rotation that finds every deque empty followed
// by an atomic read of the processed counter.
type Steal struct {
	// Tasks is the total task count; ids are 0..Tasks-1.
	Tasks int
	// Cap is the per-deque ring capacity (a power of two >= Tasks, since
	// the skewed seeding can put every task in one deque).
	Cap int
	// Blocks is the deque count (one deque per thread block) and
	// WarpsPerBlock the workers sharing each deque.
	Blocks        int
	WarpsPerBlock int
	// Work is the dependent hash-chain length per task and FMAs the FMA
	// chain extending it, as in the UTS node processing.
	Work int
	FMAs int
	// Skew is the percentage of tasks seeded into block 0's deque; the
	// remainder round-robin across the other deques. 100 means total
	// imbalance (every steal chain starts at deque 0).
	Skew int
}

// DefaultSteal sizes the workload for the 15-SM system.
func DefaultSteal(tasks int) Steal {
	return Steal{Tasks: tasks, Cap: ceilPow2(tasks), Blocks: 15,
		WarpsPerBlock: 4, Work: 12, FMAs: 4, Skew: 100}
}

// ceilPow2 returns the smallest power of two >= n (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Steal kernel registers (rZero/rOne shared, see framework.go).
const (
	rSlMyQ    isa.Reg = 2
	rSlVq     isa.Reg = 3
	rSlQn     isa.Reg = 4
	rSlMyLkA  isa.Reg = 5
	rSlMyHdA  isa.Reg = 6
	rSlMyTlA  isa.Reg = 7
	rSlMyRing isa.Reg = 8
	rSlVLkA   isa.Reg = 9
	rSlVHdA   isa.Reg = 10
	rSlVTlA   isa.Reg = 11
	rSlVRing  isa.Reg = 12
	rSlLoLk   isa.Reg = 13
	rSlHiLk   isa.Reg = 14
	rSlHead   isa.Reg = 15
	rSlTail   isa.Reg = 16
	rSlVHead  isa.Reg = 17
	rSlVTail  isa.Reg = 18
	rSlN      isa.Reg = 19
	rSlTask   isa.Reg = 20
	rSlI      isa.Reg = 21
	rSlOld    isa.Reg = 22
	rSlTmp    isa.Reg = 23
	rSlTmp2   isa.Reg = 24
	rSlAcc    isa.Reg = 25
	rSlMask   isa.Reg = 26
	rSlDoneA  isa.Reg = 27
	rSlTotal  isa.Reg = 28
	rSlResB   isa.Reg = 29
	rSlAtt    isa.Reg = 30
)

// stealProgram assembles the worker loop: pop own deque, process, and on
// empty rotate through victims stealing half under both locks (acquired in
// lock-address order).
func stealProgram(work, fmas int) *isa.Program {
	if work < 1 {
		work = 1
	}
	b := isa.NewBuilder("steal")
	main := b.NewLabel()
	ownEmpty := b.NewLabel()
	stealLoop := b.NewLabel()
	noWrap := b.NewLabel()
	xferDone := b.NewLabel()
	releaseNext := b.NewLabel()
	checkDone := b.NewLabel()
	retry := b.NewLabel()
	exitL := b.NewLabel()

	// --- pop one task from the own deque ---
	b.Bind(main)
	emitSpinAcquire(b, rSlOld, rSlMyLkA)
	b.Ld(rSlHead, rSlMyHdA, 0)
	b.Ld(rSlTail, rSlMyTlA, 0)
	b.BEQ(rSlHead, rSlTail, ownEmpty)
	b.And(rSlTmp, rSlHead, rSlMask)
	b.MulI(rSlTmp, rSlTmp, 8)
	b.Add(rSlTmp, rSlMyRing, rSlTmp)
	b.Ld(rSlTask, rSlTmp, 0)
	b.AddI(rSlHead, rSlHead, 1)
	b.St(rSlMyHdA, 0, rSlHead)
	emitUnlock(b, rSlOld, rSlMyLkA)

	// --- process: hash chain, FMA chain, result store, done count ---
	b.SFU(rSlAcc, rSlTask)
	for i := 1; i < work; i++ {
		b.SFU(rSlAcc, rSlAcc)
	}
	for i := 0; i < fmas; i++ {
		b.FMA(rSlAcc, rSlAcc, rSlAcc)
	}
	b.MulI(rSlTmp, rSlTask, 8)
	b.Add(rSlTmp, rSlResB, rSlTmp)
	b.St(rSlTmp, 0, rSlAcc)
	b.AtomAddNR(rSlDoneA, rOne, isa.Relaxed)
	b.Br(main)

	// --- own deque empty: rotate through victims ---
	b.Bind(ownEmpty)
	emitUnlock(b, rSlOld, rSlMyLkA)
	b.Bind(retry)
	b.MovI(rSlAtt, 1)
	b.Bind(stealLoop)
	b.BGE(rSlAtt, rSlQn, checkDone)
	b.Add(rSlVq, rSlMyQ, rSlAtt)
	b.BLT(rSlVq, rSlQn, noWrap)
	b.Sub(rSlVq, rSlVq, rSlQn)
	b.Bind(noWrap)
	b.MulI(rSlVLkA, rSlVq, sqMetaStride)
	b.AddI(rSlVLkA, rSlVLkA, addrSqMeta)
	b.AddI(rSlVHdA, rSlVLkA, 0x40)
	b.AddI(rSlVTlA, rSlVLkA, 0x80)
	b.MulI(rSlVRing, rSlVq, sqTaskStride)
	b.AddI(rSlVRing, rSlVRing, addrSqTasks)
	// Double acquire in lock-address order: no thief-thief deadlock.
	b.Min(rSlLoLk, rSlVLkA, rSlMyLkA)
	b.Add(rSlHiLk, rSlVLkA, rSlMyLkA)
	b.Sub(rSlHiLk, rSlHiLk, rSlLoLk)
	emitSpinAcquire(b, rSlOld, rSlLoLk)
	emitSpinAcquire(b, rSlOld, rSlHiLk)
	b.Ld(rSlVHead, rSlVHdA, 0)
	b.Ld(rSlVTail, rSlVTlA, 0)
	b.Sub(rSlN, rSlVTail, rSlVHead)
	b.BEQ(rSlN, rZero, releaseNext)
	// Steal half, round up: k = (n+1)>>1.
	b.AddI(rSlN, rSlN, 1)
	b.Shr(rSlN, rSlN, rOne)
	b.Ld(rSlTail, rSlMyTlA, 0)
	b.MovI(rSlI, 0)
	xfer := b.Here()
	b.BGE(rSlI, rSlN, xferDone)
	b.Add(rSlTmp, rSlVHead, rSlI)
	b.And(rSlTmp, rSlTmp, rSlMask)
	b.MulI(rSlTmp, rSlTmp, 8)
	b.Add(rSlTmp, rSlVRing, rSlTmp)
	b.Ld(rSlTask, rSlTmp, 0)
	b.Add(rSlTmp2, rSlTail, rSlI)
	b.And(rSlTmp2, rSlTmp2, rSlMask)
	b.MulI(rSlTmp2, rSlTmp2, 8)
	b.Add(rSlTmp2, rSlMyRing, rSlTmp2)
	b.St(rSlTmp2, 0, rSlTask)
	b.AddI(rSlI, rSlI, 1)
	b.Br(xfer)
	b.Bind(xferDone)
	b.Add(rSlVHead, rSlVHead, rSlN)
	b.St(rSlVHdA, 0, rSlVHead)
	b.Add(rSlTail, rSlTail, rSlN)
	b.St(rSlMyTlA, 0, rSlTail)
	emitUnlock(b, rSlOld, rSlHiLk)
	emitUnlock(b, rSlOld, rSlLoLk)
	b.Br(main)

	b.Bind(releaseNext)
	emitUnlock(b, rSlOld, rSlHiLk)
	emitUnlock(b, rSlOld, rSlLoLk)
	b.AddI(rSlAtt, rSlAtt, 1)
	b.Br(stealLoop)

	// --- every deque empty this rotation: all tasks processed? ---
	b.Bind(checkDone)
	// Atomic read (fetch-add 0) with acquire semantics: always fresh.
	b.AtomAdd(rSlTmp, rSlDoneA, rZero, isa.Acquire)
	b.BLT(rSlTmp, rSlTotal, retry)
	b.Bind(exitL)
	b.Exit()
	return b.MustBuild()
}

// seedDeques returns the initial per-deque task lists: the first
// Tasks*Skew/100 task ids into deque 0, the remainder round-robin over the
// other deques (deque 0 again when there is only one).
func (w Steal) seedDeques() [][]uint64 {
	qs := make([][]uint64, w.Blocks)
	hot := w.Tasks * w.Skew / 100
	for id := 0; id < w.Tasks; id++ {
		q := 0
		if id >= hot && w.Blocks > 1 {
			q = 1 + (id-hot)%(w.Blocks-1)
		}
		qs[q] = append(qs[q], uint64(id))
	}
	return qs
}

// Build writes the deques and task rings into host memory and returns the
// kernel.
func (w Steal) Build(h *cpu.Host) (*gpu.Kernel, error) {
	if w.Tasks < 1 || w.Blocks < 1 || w.WarpsPerBlock < 1 {
		return nil, fmt.Errorf("workloads: invalid steal %+v", w)
	}
	if w.Cap < w.Tasks || w.Cap&(w.Cap-1) != 0 {
		return nil, fmt.Errorf("workloads: steal ring cap %d must be a power of two >= %d tasks", w.Cap, w.Tasks)
	}
	if w.Skew < 0 || w.Skew > 100 {
		return nil, fmt.Errorf("workloads: steal skew %d%% out of range", w.Skew)
	}
	if sqMetaStride*uint64(w.Blocks) > addrSqTasks-addrSqMeta ||
		sqTaskStride*uint64(w.Blocks) > addrStealRes-addrSqTasks {
		return nil, fmt.Errorf("workloads: steal blocks %d overflow the deque regions", w.Blocks)
	}
	for q, tasks := range w.seedDeques() {
		h.Write64(sqLockAddr(q), 0)
		h.Write64(sqHeadAddr(q), 0)
		h.Write64(sqTailAddr(q), uint64(len(tasks)))
		h.WriteSlice(sqTasksBase(q), tasks)
	}
	h.Write64(addrStealDone, 0)
	for id := 0; id < w.Tasks; id++ {
		h.Write64(addrStealRes+uint64(id)*8, 0)
	}

	k := &gpu.Kernel{
		Name:          "steal",
		Program:       stealProgram(w.Work, w.FMAs),
		Blocks:        w.Blocks,
		WarpsPerBlock: w.WarpsPerBlock,
		InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
			InitConsts(regs)
			regs[rSlMyQ] = uint64(block)
			regs[rSlQn] = uint64(w.Blocks)
			regs[rSlMyLkA] = sqLockAddr(block)
			regs[rSlMyHdA] = sqHeadAddr(block)
			regs[rSlMyTlA] = sqTailAddr(block)
			regs[rSlMyRing] = sqTasksBase(block)
			regs[rSlMask] = uint64(w.Cap - 1)
			regs[rSlDoneA] = addrStealDone
			regs[rSlTotal] = uint64(w.Tasks)
			regs[rSlResB] = addrStealRes
		},
	}
	return k, nil
}

// Instance wraps the parameter block as a runnable workload with its
// functional verification hook attached.
func (w Steal) Instance() Instance {
	return NewInstance("steal", func(h *cpu.Host) (*gpu.Kernel, func(*cpu.Host) error, error) {
		k, err := w.Build(h)
		if err != nil {
			return nil, nil, err
		}
		return k, func(h *cpu.Host) error { return VerifySteal(h, w) }, nil
	})
}

// StealResult is the reference per-task result: the hash chain extended by
// the FMA chain, a pure function of the task id (which is what makes the
// workload's outcome schedule-independent).
func StealResult(id uint64, work, fmas int) uint64 {
	if work < 1 {
		work = 1
	}
	return applyFMA(HashChain(id, work), fmas)
}

// VerifySteal checks the post-run invariants: every task processed exactly
// once (the done counter equals the task count and every result word holds
// the exact chain value), every deque drained (head == tail), and every
// lock free.
func VerifySteal(h *cpu.Host, w Steal) error {
	if done := h.Read64(addrStealDone); done != uint64(w.Tasks) {
		return fmt.Errorf("workloads: steal done=%d, want %d", done, w.Tasks)
	}
	for id := 0; id < w.Tasks; id++ {
		want := StealResult(uint64(id), w.Work, w.FMAs)
		if got := h.Read64(addrStealRes + uint64(id)*8); got != want {
			return fmt.Errorf("workloads: steal result[%d] = %#x, want %#x", id, got, want)
		}
	}
	for q := 0; q < w.Blocks; q++ {
		head, tail := h.Read64(sqHeadAddr(q)), h.Read64(sqTailAddr(q))
		if head != tail {
			return fmt.Errorf("workloads: steal deque %d not drained (head=%d tail=%d)", q, head, tail)
		}
		if lock := h.Read64(sqLockAddr(q)); lock != 0 {
			return fmt.Errorf("workloads: steal deque %d lock still held (%d)", q, lock)
		}
	}
	return nil
}
