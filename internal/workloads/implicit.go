package workloads

import (
	"fmt"

	"gsi/internal/cpu"
	"gsi/internal/gpu"
	"gsi/internal/isa"
	"gsi/internal/scratchpad"
)

// Implicit is the synthetic microbenchmark of case study 2: an array is
// mapped to scratchpad/stash memory, each thread block owns a chunk, and
// every element is read, computed on, and written back in place.
//
// Three kernels exercise the three local-memory organizations:
//
//   - scratchpad: explicit load (global->register->scratchpad) and
//     write-back loops around the compute phase; the extra instructions
//     throttle the memory request rate (fewer structural stalls, more
//     "no stall" cycles — figure 6.3).
//   - scratchpad+DMA: the engine preloads the mapping; the kernel is just
//     the compute phase, but the first mapped access blocks the core until
//     the bulk transfer completes (pending-DMA stalls).
//   - stash: the compute phase loads mapped lines on demand (MSHR traffic,
//     warp-granularity blocking) and dirty lines register lazily through
//     the store buffer.
type Implicit struct {
	Seed uint64
	// Warps work on DataBytes/Warps-byte chunks (one block, one SM).
	Warps     int
	DataBytes int
	// FMAs per element group per round, and Rounds compute passes.
	FMAs   int
	Rounds int
}

// DefaultImplicit sizes the microbenchmark to fill the 16 KB scratchpad
// with one thread block of 16 warps (the paper's SM holds up to 48).
func DefaultImplicit() Implicit {
	return Implicit{Seed: 0xD17A, Warps: 32, DataBytes: 16 << 10, FMAs: 4, Rounds: 2}
}

// Implicit kernel registers.
const (
	riGBase   isa.Reg = 2
	riLBase   isa.Reg = 3
	riItersLd isa.Reg = 4
	riItersC  isa.Reg = 5
	riItersWB isa.Reg = 6
	riI       isa.Reg = 7
	riTmp     isa.Reg = 8
	riGA      isa.Reg = 9
	riLA      isa.Reg = 10
	riV0      isa.Reg = 11
	riV1      isa.Reg = 12
	riV2      isa.Reg = 13
	riV3      isa.Reg = 14
	riRound   isa.Reg = 15
	riRounds  isa.Reg = 16
	riT2      isa.Reg = 17
)

const (
	groupBytes = 256 // one warp-wide vector access (32 lanes x 8 B)
	loadUnroll = 2   // explicit-load unrolling (independent loads in flight)
	compUnroll = 1
	loadIterB  = groupBytes * loadUnroll
	compIterB  = groupBytes * compUnroll
)

// emitComputePhase appends the shared compute loop: Rounds passes over the
// chunk, each loading one group, applying FMAs, and storing it back to
// local (scratchpad or stash) memory. Under the stash this loop is also the
// demand-fill generator: each first-touch group produces global requests.
func emitComputePhase(b *isa.Builder, fmas int) {
	b.MovI(riRound, 0)
	round := b.Here()
	roundDone := b.NewLabel()
	b.BGE(riRound, riRounds, roundDone)
	b.MovI(riI, 0)
	comp := b.Here()
	compDone := b.NewLabel()
	b.BGE(riI, riItersC, compDone)
	b.MulI(riTmp, riI, compIterB)
	b.Add(riLA, riLBase, riTmp)
	b.LdLV(riV0, riLA, 8)
	for i := 0; i < fmas; i++ {
		b.FMA(riV0, riV0, riV0)
	}
	b.StLV(riLA, 8, riV0)
	b.AddI(riI, riI, 1)
	b.Br(comp)
	b.Bind(compDone)
	b.AddI(riRound, riRound, 1)
	b.Br(round)
	b.Bind(roundDone)
}

// implicitScratchProgram is the baseline: an explicit load phase (unrolled
// so several independent loads are in flight per warp — the MSHR-sweep
// dependency effect of figure 6.4b — but with the full per-access address
// computation the paper describes, which throttles the request rate),
// barrier, compute, barrier, explicit write-back.
func implicitScratchProgram(fmas int) *isa.Program {
	b := isa.NewBuilder("implicit-scratchpad")

	b.MovI(riI, 0)
	load := b.Here()
	loadDone := b.NewLabel()
	b.BGE(riI, riItersLd, loadDone)
	vregs := [loadUnroll]isa.Reg{riV0, riV1}
	for u := 0; u < loadUnroll; u++ {
		// Explicit per-access address computation (compiled scratchpad
		// code recomputes base + i*loadIterB + u*groupBytes each
		// time), then the load and the *dependent* store to the
		// scratchpad. The store following its load is the dependency
		// the paper names: with a small MSHR these waits classify as
		// full-MSHR structural stalls, with a large one they surface
		// as memory data stalls (figure 6.4b's 13X).
		b.MulI(riTmp, riI, loadIterB)
		b.AddI(riTmp, riTmp, int64(u*groupBytes))
		b.Add(riGA, riGBase, riTmp)
		b.Add(riLA, riLBase, riTmp)
		b.LdV(vregs[u], riGA, 8)
		b.StLV(riLA, 8, vregs[u])
	}
	b.AddI(riI, riI, 1)
	b.Br(load)
	b.Bind(loadDone)
	b.Bar()

	emitComputePhase(b, fmas)
	b.Bar()

	b.MovI(riI, 0)
	wb := b.Here()
	wbDone := b.NewLabel()
	b.BGE(riI, riItersWB, wbDone)
	b.MulI(riTmp, riI, groupBytes)
	b.Add(riLA, riLBase, riTmp)
	b.Add(riGA, riGBase, riTmp)
	b.LdLV(riV0, riLA, 8)
	b.StV(riGA, 8, riV0)
	b.AddI(riI, riI, 1)
	b.Br(wb)
	b.Bind(wbDone)
	b.Exit()
	return b.MustBuild()
}

// implicitLocalProgram is the kernel for scratchpad+DMA and stash: the
// data-movement loops disappear (the DMA engine or the stash's implicit
// loads do the work), leaving only the compute phase.
func implicitLocalProgram(name string, fmas int) *isa.Program {
	b := isa.NewBuilder(name)
	emitComputePhase(b, fmas)
	b.Exit()
	return b.MustBuild()
}

// Build initializes the data array and returns the kernel for the given
// local-memory organization.
func (im Implicit) Build(kind gpu.LocalKind, h *cpu.Host) (*gpu.Kernel, error) {
	if im.Warps < 1 || im.DataBytes < 1 {
		return nil, fmt.Errorf("workloads: invalid implicit %+v", im)
	}
	chunk := im.DataBytes / im.Warps
	if chunk%loadIterB != 0 {
		return nil, fmt.Errorf("workloads: chunk %d not a multiple of %d", chunk, loadIterB)
	}
	for j := 0; j < im.DataBytes/8; j++ {
		h.Write64(addrData+uint64(j)*8, isa.Mix64(im.Seed^uint64(j)))
	}

	var prog *isa.Program
	switch kind {
	case gpu.LocalScratch:
		prog = implicitScratchProgram(im.FMAs)
	case gpu.LocalScratchDMA:
		prog = implicitLocalProgram("implicit-dma", im.FMAs)
	case gpu.LocalStash:
		prog = implicitLocalProgram("implicit-stash", im.FMAs)
	default:
		return nil, fmt.Errorf("workloads: implicit needs a local-memory kind, got %s", kind)
	}

	k := &gpu.Kernel{
		Name:          "implicit-" + kind.String(),
		Program:       prog,
		Blocks:        1,
		WarpsPerBlock: im.Warps,
		Local:         kind,
		InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
			base := uint64(warp * chunk)
			regs[riGBase] = addrData + base
			regs[riLBase] = base
			regs[riItersLd] = uint64(chunk / loadIterB)
			regs[riItersC] = uint64(chunk / compIterB)
			regs[riItersWB] = uint64(chunk / groupBytes)
			regs[riRounds] = uint64(im.Rounds)
		},
	}
	if kind == gpu.LocalScratchDMA || kind == gpu.LocalStash {
		k.LocalMap = func(block int) scratchpad.Mapping {
			return scratchpad.Mapping{
				GlobalBase: addrData, LocalBase: 0, Bytes: uint64(im.DataBytes),
			}
		}
	}
	return k, nil
}

// Instance wraps the parameter block (in the given local-memory
// organization) as a runnable workload with its verification hook.
func (im Implicit) Instance(kind gpu.LocalKind) Instance {
	return NewInstance("implicit ("+kind.String()+")",
		func(h *cpu.Host) (*gpu.Kernel, func(*cpu.Host) error, error) {
			k, err := im.Build(kind, h)
			if err != nil {
				return nil, nil, err
			}
			return k, func(h *cpu.Host) error { return im.VerifyImplicit(h) }, nil
		})
}

// applyFMA iterates v = v*v + v.
func applyFMA(v uint64, n int) uint64 {
	for i := 0; i < n; i++ {
		v = v*v + v
	}
	return v
}

// VerifyImplicit checks the post-run array contents. Vector stores write
// the warp-scalar register to every lane, so after the kernel every word of
// a 256-byte group holds the FMA chain applied to the group's original
// first word (consistently across all three configurations — this is the
// cross-configuration functional check).
func (im Implicit) VerifyImplicit(h *cpu.Host) error {
	words := im.DataBytes / 8
	perGroup := groupBytes / 8
	for g := 0; g < words/perGroup; g++ {
		orig := isa.Mix64(im.Seed ^ uint64(g*perGroup))
		want := orig
		for r := 0; r < im.Rounds; r++ {
			want = applyFMA(want, im.FMAs)
		}
		for w := 0; w < perGroup; w++ {
			j := g*perGroup + w
			got := h.Read64(addrData + uint64(j)*8)
			if got != want {
				return fmt.Errorf("workloads: data[%d] = %#x, want %#x (group %d)", j, got, want, g)
			}
		}
	}
	return nil
}
