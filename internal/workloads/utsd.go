package workloads

import (
	"fmt"

	"gsi/internal/cpu"
	"gsi/internal/gpu"
	"gsi/internal/isa"
)

// UTSD is the decentralized variant of section 6.1.4: each SM owns a local
// task queue (its own lock, ring buffer) and falls back to the shared
// global queue only when the local queue overflows (push) or runs dry
// (pop). Locality makes producers and consumers meet on the same SM, which
// is what lets DeNovo's ownership pay off (figure 6.2).
type UTSD struct {
	Seed          uint64
	Nodes         int
	FrontierMin   int
	Blocks        int
	WarpsPerBlock int
	Work          int
	FMAs          int
	// LQCap is the per-SM ring capacity (power of two).
	LQCap int
}

// DefaultUTSD mirrors DefaultUTS with per-SM queues.
func DefaultUTSD(nodes int) UTSD {
	return UTSD{
		Seed:          0xC0FFEE,
		Nodes:         nodes,
		FrontierMin:   64,
		Blocks:        15,
		WarpsPerBlock: 8,
		Work:          16,
		FMAs:          4,
		LQCap:         128,
	}
}

// utsdProgram assembles the local-queue worker loop.
func utsdProgram(work, fmas int) *isa.Program {
	b := isa.NewBuilder("utsd")
	main := b.NewLabel()
	process := b.NewLabel()
	noteDone := b.NewLabel()
	lempty := b.NewLabel()
	gempty := b.NewLabel()

	// --- pop: local queue first ---
	b.Bind(main)
	emitSpinAcquire(b, rOld, rLLockA)
	b.Ld(rLHead, rLHeadA, 0)
	b.Ld(rLTail, rLTailA, 0)
	b.BEQ(rLHead, rLTail, lempty)
	b.And(rTmp, rLHead, rLQMask)
	b.MulI(rTmp, rTmp, 8)
	b.Add(rTmp, rLTasksB, rTmp)
	b.Ld(rNode, rTmp, 0)
	b.AddI(rLHead, rLHead, 1)
	b.St(rLHeadA, 0, rLHead)
	emitUnlock(b, rOld, rLLockA)
	b.Br(process)

	// --- local empty: try the global queue ---
	b.Bind(lempty)
	emitUnlock(b, rOld, rLLockA)
	emitSpinAcquire(b, rOld, rLockA)
	b.Ld(rHead, rHeadA, 0)
	b.Ld(rTail, rTailA, 0)
	b.BEQ(rHead, rTail, gempty)
	b.MulI(rTmp, rHead, 8)
	b.Add(rTmp, rTasksB, rTmp)
	b.Ld(rNode, rTmp, 0)
	b.AddI(rHead, rHead, 1)
	b.St(rHeadA, 0, rHead)
	emitUnlock(b, rOld, rLockA)
	b.Br(process)

	// --- both empty: terminate once every node is processed ---
	b.Bind(gempty)
	emitUnlock(b, rOld, rLockA)
	b.Ld(rDone, rDoneA, 0)
	b.BLT(rDone, rTotal, main)
	b.Exit()

	// --- process one node ---
	b.Bind(process)
	emitProcessNode(b, work, fmas)
	b.BEQ(rCount, rZero, noteDone)

	// --- push children: local ring while it has space ---
	b.MovI(rI, 0)
	emitSpinAcquire(b, rOld, rLLockA)
	b.Ld(rLHead, rLHeadA, 0)
	b.Ld(rLTail, rLTailA, 0)
	plocLoop := b.Here()
	plocDone := b.NewLabel()
	b.BGE(rI, rCount, plocDone)
	b.Sub(rTmp, rLTail, rLHead)
	b.BGE(rTmp, rLQCap, plocDone) // ring full: overflow to global
	b.And(rTmp, rLTail, rLQMask)
	b.MulI(rTmp, rTmp, 8)
	b.Add(rTmp, rLTasksB, rTmp)
	b.Add(rTmp2, rCBase, rI)
	b.St(rTmp, 0, rTmp2)
	b.AddI(rLTail, rLTail, 1)
	b.AddI(rI, rI, 1)
	b.Br(plocLoop)
	b.Bind(plocDone)
	b.St(rLTailA, 0, rLTail)
	emitUnlock(b, rOld, rLLockA)
	b.BGE(rI, rCount, noteDone)

	// --- overflow remainder to the global queue ---
	emitSpinAcquire(b, rOld, rLockA)
	b.Ld(rTail, rTailA, 0)
	pgLoop := b.Here()
	pgDone := b.NewLabel()
	b.BGE(rI, rCount, pgDone)
	b.MulI(rTmp, rTail, 8)
	b.Add(rTmp, rTasksB, rTmp)
	b.Add(rTmp2, rCBase, rI)
	b.St(rTmp, 0, rTmp2)
	b.AddI(rTail, rTail, 1)
	b.AddI(rI, rI, 1)
	b.Br(pgLoop)
	b.Bind(pgDone)
	b.St(rTailA, 0, rTail)
	emitUnlock(b, rOld, rLockA)

	b.Bind(noteDone)
	b.AtomAddNR(rDoneA, rOne, isa.Relaxed)
	b.Br(main)
	return b.MustBuild()
}

// Build initializes memory (frontier spread round-robin over the local
// queues) and returns the kernel.
func (u UTSD) Build(h *cpu.Host) (*gpu.Kernel, *Tree, Seeding, error) {
	if u.Nodes < 1 || u.Blocks < 1 || u.WarpsPerBlock < 1 {
		return nil, nil, Seeding{}, fmt.Errorf("workloads: invalid UTSD %+v", u)
	}
	if u.LQCap < 2 || u.LQCap&(u.LQCap-1) != 0 {
		return nil, nil, Seeding{}, fmt.Errorf("workloads: UTSD LQCap %d must be a power of two", u.LQCap)
	}
	tree := GenTree(u.Seed, u.Nodes)
	seed := tree.SeedFrontier(u.FrontierMin)
	initTreeMemory(h, tree)

	// Distribute the frontier round-robin across the local queues.
	counts := make([]uint64, u.Blocks)
	for i, n := range seed.Frontier {
		q := i % u.Blocks
		h.Write64(lqTasksBase(q)+counts[q]*8, n)
		counts[q]++
	}
	for q := 0; q < u.Blocks; q++ {
		h.Write64(lqLockAddr(q), 0)
		h.Write64(lqHeadAddr(q), 0)
		h.Write64(lqTailAddr(q), counts[q])
	}
	h.Write64(addrLock, 0)
	h.Write64(addrHead, 0)
	h.Write64(addrTail, 0)
	h.Write64(addrDone, seed.HostProcessed)

	total := uint64(tree.Nodes())
	k := &gpu.Kernel{
		Name:          "utsd",
		Program:       utsdProgram(u.Work, u.FMAs),
		Blocks:        u.Blocks,
		WarpsPerBlock: u.WarpsPerBlock,
		InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
			InitConsts(regs)
			regs[rLockA] = addrLock
			regs[rHeadA] = addrHead
			regs[rTailA] = addrTail
			regs[rDoneA] = addrDone
			regs[rTasksB] = addrTasks
			regs[rCCB] = addrChildCount
			regs[rCBB] = addrChildBase
			regs[rResB] = addrResult
			regs[rTotal] = total
			regs[rLLockA] = lqLockAddr(block)
			regs[rLHeadA] = lqHeadAddr(block)
			regs[rLTailA] = lqTailAddr(block)
			regs[rLTasksB] = lqTasksBase(block)
			regs[rLQMask] = uint64(u.LQCap - 1)
			regs[rLQCap] = uint64(u.LQCap)
		},
	}
	return k, tree, seed, nil
}

// Instance wraps the parameter block as a runnable workload with its
// functional verification hook attached.
func (u UTSD) Instance() Instance {
	return NewInstance("UTSD", func(h *cpu.Host) (*gpu.Kernel, func(*cpu.Host) error, error) {
		k, tree, seed, err := u.Build(h)
		if err != nil {
			return nil, nil, err
		}
		verify := func(h *cpu.Host) error {
			return VerifyUTSDRun(h, tree, seed, u)
		}
		return k, verify, nil
	})
}

// VerifyUTSDRun checks post-run invariants: every node processed, every
// queue (global and local) drained, and every result word exact.
func VerifyUTSDRun(h *cpu.Host, tree *Tree, seed Seeding, u UTSD) error {
	total := uint64(tree.Nodes())
	if done := h.Read64(addrDone); done != total {
		return fmt.Errorf("workloads: done=%d, want %d", done, total)
	}
	if head, tail := h.Read64(addrHead), h.Read64(addrTail); head != tail {
		return fmt.Errorf("workloads: global queue not drained: head=%d tail=%d", head, tail)
	}
	for q := 0; q < u.Blocks; q++ {
		head, tail := h.Read64(lqHeadAddr(q)), h.Read64(lqTailAddr(q))
		if head != tail {
			return fmt.Errorf("workloads: local queue %d not drained: head=%d tail=%d", q, head, tail)
		}
	}
	return VerifyResults(h, tree, seed, u.Work, u.FMAs)
}
