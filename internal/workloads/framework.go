package workloads

import (
	"gsi/internal/cpu"
	"gsi/internal/gpu"
	"gsi/internal/isa"
)

// Instance is a runnable workload: it initializes host memory, supplies
// the kernel, and returns the functional post-check that validates the
// run. The method set deliberately mirrors the public gsi.Workload
// interface, so every Instance is usable as a gsi Workload directly.
type Instance interface {
	// Name identifies the workload in reports.
	Name() string
	// Build writes initial memory through the host and returns the
	// kernel plus a post-run functional verification hook.
	Build(h *cpu.Host) (*gpu.Kernel, func(h *cpu.Host) error, error)
}

// instance adapts a name and a build closure to Instance — the shared
// wrapper every workload's Instance constructor uses, so the verification
// hook lives next to the kernel it checks instead of in per-workload
// wrapper types at the API layer.
type instance struct {
	name  string
	build func(h *cpu.Host) (*gpu.Kernel, func(h *cpu.Host) error, error)
}

// NewInstance wraps a build closure as an Instance.
func NewInstance(name string, build func(h *cpu.Host) (*gpu.Kernel, func(h *cpu.Host) error, error)) Instance {
	return instance{name: name, build: build}
}

func (i instance) Name() string { return i.name }

func (i instance) Build(h *cpu.Host) (*gpu.Kernel, func(h *cpu.Host) error, error) {
	return i.build(h)
}

// WarpChunk splits total work items among parts workers and returns the
// half-open range [start, end) owned by worker idx. The first total%parts
// workers get one extra item, so ranges cover everything and differ in
// size by at most one — the per-warp chunking convention shared by the
// streaming kernels (implicit, SpMV, GUPS).
func WarpChunk(total, parts, idx int) (start, end int) {
	if parts < 1 {
		return 0, total
	}
	base := total / parts
	extra := total % parts
	start = idx*base + min(idx, extra)
	end = start + base
	if idx < extra {
		end++
	}
	return start, end
}

// Shared register conventions: every kernel assembled in this package
// reserves r0 as the constant 0 and r1 as the constant 1 (see rZero and
// rOne in uts.go); InitConsts seeds them. The lock and queue emit helpers
// below rely on that convention.
func InitConsts(regs *[isa.NumRegs]uint64) {
	regs[rZero] = 0
	regs[rOne] = 1
}

// emitSpinAcquire appends the shared spin-lock acquire idiom: CAS the lock
// word at [rLock] from 0 to 1 with acquire semantics, spinning until the
// old value comes back 0. rOld receives the exchanged value and is
// clobbered. Uses the rZero/rOne register convention.
func emitSpinAcquire(b *isa.Builder, rOld, rLock isa.Reg) {
	spin := b.Here()
	b.AtomCAS(rOld, rLock, rZero, rOne, isa.Acquire)
	b.BNE(rOld, rZero, spin)
}

// emitUnlock appends the matching release: exchange the lock word back to
// 0 with release semantics (flushing the store buffer first, so every
// update made under the lock is visible before the lock frees). rOld is
// clobbered.
func emitUnlock(b *isa.Builder, rOld, rLock isa.Reg) {
	b.AtomExch(rOld, rLock, rZero, isa.Release)
}

// emitHashChain appends a dependent special-function chain of length n on
// rd (rd = Mix64^n(rd)) — the shared "process a token" compute phase.
func emitHashChain(b *isa.Builder, rd isa.Reg, n int) {
	for i := 0; i < n; i++ {
		b.SFU(rd, rd)
	}
}

// HashChain is the CPU-side mirror of emitHashChain for verifiers.
func HashChain(v uint64, n int) uint64 {
	for i := 0; i < n; i++ {
		v = isa.Mix64(v)
	}
	return v
}
