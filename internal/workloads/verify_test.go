package workloads

import (
	"strings"
	"testing"

	"gsi/internal/cpu"
	"gsi/internal/isa"
	"gsi/internal/mem"
)

// Fault injection: the post-run verifiers are the harness's defense against
// timing bugs that corrupt results; these tests prove each check actually
// fires when its invariant is broken.

// buildAndSimulateUTS builds UTS memory and forges a "perfect run" by
// writing the state a correct execution would leave.
func buildAndSimulateUTS(t *testing.T) (*cpu.Host, *Tree, Seeding, UTS) {
	t.Helper()
	h := cpu.NewHost(mem.NewBacking())
	u := UTS{Seed: 5, Nodes: 50, FrontierMin: 8, Blocks: 2, WarpsPerBlock: 2, Work: 2, FMAs: 1}
	_, tree, seed, err := u.Build(h)
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(tree.Nodes())
	h.Write64(addrDone, total)
	pushed := total - seed.HostProcessed
	h.Write64(addrHead, pushed)
	h.Write64(addrTail, pushed)
	for n := int(seed.HostProcessed); n < tree.Nodes(); n++ {
		v := uint64(n)
		for i := 0; i < u.Work; i++ {
			v = isa.Mix64(v)
		}
		for i := 0; i < u.FMAs; i++ {
			v = v*v + v
		}
		h.Write64(addrResult+uint64(n)*8, v)
	}
	return h, tree, seed, u
}

func TestVerifyQueueRunAcceptsPerfectRun(t *testing.T) {
	h, tree, seed, u := buildAndSimulateUTS(t)
	if err := VerifyQueueRun(h, tree, seed, u.Work, u.FMAs); err != nil {
		t.Fatalf("perfect run rejected: %v", err)
	}
}

func TestVerifyQueueRunDetectsFaults(t *testing.T) {
	faults := []struct {
		name   string
		inject func(h *cpu.Host, tree *Tree, seed Seeding)
		want   string
	}{
		{"lost node", func(h *cpu.Host, tree *Tree, seed Seeding) {
			h.Write64(addrDone, uint64(tree.Nodes())-1)
		}, "done="},
		{"queue not drained", func(h *cpu.Host, tree *Tree, seed Seeding) {
			h.Write64(addrHead, h.Read64(addrHead)-1)
		}, "not drained"},
		{"phantom pushes", func(h *cpu.Host, tree *Tree, seed Seeding) {
			h.Write64(addrHead, h.Read64(addrHead)+2)
			h.Write64(addrTail, h.Read64(addrTail)+2)
		}, "pushed"},
		{"corrupted result", func(h *cpu.Host, tree *Tree, seed Seeding) {
			n := uint64(tree.Nodes()) - 1
			h.Write64(addrResult+n*8, h.Read64(addrResult+n*8)^1)
		}, "result["},
	}
	for _, f := range faults {
		t.Run(f.name, func(t *testing.T) {
			h, tree, seed, u := buildAndSimulateUTS(t)
			f.inject(h, tree, seed)
			err := VerifyQueueRun(h, tree, seed, u.Work, u.FMAs)
			if err == nil {
				t.Fatal("fault not detected")
			}
			if !strings.Contains(err.Error(), f.want) {
				t.Fatalf("err = %v, want mention of %q", err, f.want)
			}
		})
	}
}

func TestVerifyUTSDRunDetectsLocalQueueFault(t *testing.T) {
	h := cpu.NewHost(mem.NewBacking())
	u := UTSD{Seed: 5, Nodes: 50, FrontierMin: 8, Blocks: 2, WarpsPerBlock: 2,
		Work: 2, FMAs: 1, LQCap: 16}
	_, tree, seed, err := u.Build(h)
	if err != nil {
		t.Fatal(err)
	}
	// Forge completion except local queue 1 still holds a task.
	h.Write64(addrDone, uint64(tree.Nodes()))
	h.Write64(lqHeadAddr(0), h.Read64(lqTailAddr(0)))
	h.Write64(lqHeadAddr(1), h.Read64(lqTailAddr(1))-1)
	err = VerifyUTSDRun(h, tree, seed, u)
	if err == nil || !strings.Contains(err.Error(), "local queue 1") {
		t.Fatalf("err = %v, want local queue fault", err)
	}
}

func TestVerifyImplicitDetectsCorruption(t *testing.T) {
	h := cpu.NewHost(mem.NewBacking())
	im := Implicit{Seed: 9, Warps: 4, DataBytes: 4096, FMAs: 2, Rounds: 1}
	if _, err := im.Build(1 /* LocalScratch */, h); err != nil {
		t.Fatal(err)
	}
	// Forge the expected output, then corrupt one word.
	perGroup := groupBytes / 8
	for g := 0; g < im.DataBytes/8/perGroup; g++ {
		want := applyFMA(isa.Mix64(im.Seed^uint64(g*perGroup)), im.FMAs)
		for w := 0; w < perGroup; w++ {
			h.Write64(addrData+uint64(g*perGroup+w)*8, want)
		}
	}
	if err := im.VerifyImplicit(h); err != nil {
		t.Fatalf("perfect output rejected: %v", err)
	}
	h.Write64(addrData+8*37, h.Read64(addrData+8*37)+1)
	if err := im.VerifyImplicit(h); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestUTSDBuildSeedsLocalQueues(t *testing.T) {
	h := cpu.NewHost(mem.NewBacking())
	u := DefaultUTSD(300)
	u.FrontierMin = 45
	_, _, seed, err := u.Build(h)
	if err != nil {
		t.Fatal(err)
	}
	var queued uint64
	for q := 0; q < u.Blocks; q++ {
		if h.Read64(lqHeadAddr(q)) != 0 {
			t.Fatalf("queue %d head nonzero", q)
		}
		queued += h.Read64(lqTailAddr(q))
	}
	if queued != uint64(len(seed.Frontier)) {
		t.Fatalf("seeded %d tasks, frontier has %d", queued, len(seed.Frontier))
	}
	// Round-robin distribution: counts differ by at most one.
	lo, hi := ^uint64(0), uint64(0)
	for q := 0; q < u.Blocks; q++ {
		n := h.Read64(lqTailAddr(q))
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if hi-lo > 1 {
		t.Fatalf("frontier unbalanced: min %d max %d", lo, hi)
	}
}

func TestLocalQueueLayoutSpreadsBanks(t *testing.T) {
	// The hot per-queue lines must spread across L2 banks (16-bank line
	// interleaving): a stride that aliases every lock onto a few banks
	// recreates the global hotspot UTSD exists to avoid.
	const banks, lineSize = 16, 64
	used := map[uint64]bool{}
	for q := 0; q < 15; q++ {
		used[(lqLockAddr(q)/lineSize)%banks] = true
	}
	if len(used) < 12 {
		t.Fatalf("15 queue locks alias onto only %d of %d banks", len(used), banks)
	}
}
