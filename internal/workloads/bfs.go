package workloads

import (
	"fmt"

	"gsi/internal/cpu"
	"gsi/internal/gpu"
	"gsi/internal/isa"
)

// BFS is level-synchronized breadth-first search over a CSR graph: all
// warps (across all blocks) cooperatively drain the current frontier
// queue through an atomic pop cursor, gather each vertex's neighbor list
// (irregular indirect loads), claim undiscovered neighbors with a CAS on
// the distance array, and push claims into the next frontier through an
// atomic push cursor. Levels are separated by a software global barrier
// (monotonic arrival counter + generation word), so the workload stresses
// exactly the stall sources GSI classifies for graph codes: scattered
// gathers that miss the L1, frontier atomics that serialize at the L2
// banks, and synchronization waits at the level barrier.
type BFS struct {
	// Seed drives deterministic graph generation.
	Seed uint64
	// Vertices is the exact vertex count; Root is always vertex 0.
	Vertices int
	// AvgDeg is the mean out-degree (degrees are drawn uniformly from
	// [0, 2*AvgDeg]).
	AvgDeg int
	// Blocks and WarpsPerBlock size the worker population. Every block
	// must be co-resident for the global barrier, so Blocks may not
	// exceed the SM count of the system the kernel runs on.
	Blocks        int
	WarpsPerBlock int
}

// DefaultBFS sizes the workload for the 15-SM system.
func DefaultBFS(vertices int) BFS {
	return BFS{Seed: 0xB4B4, Vertices: vertices, AvgDeg: 4, Blocks: 15, WarpsPerBlock: 4}
}

// Graph is a CSR adjacency structure: vertex v's neighbors are
// Col[RowPtr[v]:RowPtr[v+1]].
type Graph struct {
	RowPtr []uint64 // len n+1
	Col    []uint64
}

// Vertices returns the vertex count.
func (g *Graph) Vertices() int { return len(g.RowPtr) - 1 }

// GenGraph synthesizes a seeded directed graph with n vertices and
// degrees drawn uniformly from [0, 2*avgDeg] via splitmix64; neighbor ids
// are uniform over all vertices (duplicates and self-loops are legal —
// the CAS claim simply fails on them).
func GenGraph(seed uint64, n, avgDeg int) *Graph {
	g := &Graph{RowPtr: make([]uint64, 1, n+1)}
	for v := 0; v < n; v++ {
		deg := int(isa.Mix64(seed^uint64(v)) % uint64(2*avgDeg+1))
		for e := 0; e < deg; e++ {
			g.Col = append(g.Col, isa.Mix64(seed^(uint64(v)<<20)^uint64(e))%uint64(n))
		}
		g.RowPtr = append(g.RowPtr, uint64(len(g.Col)))
	}
	return g
}

// Levels runs the reference CPU BFS from vertex 0 and returns the
// distance array (dist[v] = BFS level + 1, 0 for unreachable vertices)
// and the number of nonempty frontiers processed — the exact values the
// GPU kernel must reproduce.
func (g *Graph) Levels() (dist []uint64, levels int) {
	n := g.Vertices()
	dist = make([]uint64, n)
	if n == 0 {
		return dist, 0
	}
	dist[0] = 1
	frontier := []uint64{0}
	for level := uint64(1); len(frontier) > 0; level++ {
		levels++
		var next []uint64
		for _, v := range frontier {
			for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
				n := g.Col[e]
				if dist[n] == 0 {
					dist[n] = level + 1
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return dist, levels
}

// BFS kernel registers (rZero/rOne shared, see framework.go).
const (
	rBfRowPB   isa.Reg = 2
	rBfColB    isa.Reg = 3
	rBfDistB   isa.Reg = 4
	rBfCurQ    isa.Reg = 5
	rBfNxtQ    isa.Reg = 6
	rBfCurHdA  isa.Reg = 7
	rBfNxtHdA  isa.Reg = 8
	rBfCurTlA  isa.Reg = 9
	rBfNxtTlA  isa.Reg = 10
	rBfBarCntA isa.Reg = 11
	rBfBarGenA isa.Reg = 12
	rBfWTot    isa.Reg = 13
	rBfLvlP1   isa.Reg = 14
	rBfLen     isa.Reg = 15
	rBfIdx     isa.Reg = 16
	rBfV       isa.Reg = 17
	rBfE       isa.Reg = 18
	rBfEEnd    isa.Reg = 19
	rBfN       isa.Reg = 20
	rBfOld     isa.Reg = 21
	rBfTmp     isa.Reg = 22
	rBfTmp2    isa.Reg = 23
	rBfSlot    isa.Reg = 24
	rBfBarTgt  isa.Reg = 25
	rBfGenWant isa.Reg = 26
	rBfSwap    isa.Reg = 27
)

// bfsProgram assembles the level-synchronized worker loop. Each level: pop
// vertices from the current frontier via fetch-add until the cursor passes
// the frontier length, gather and CAS-claim neighbors (claims push into
// the next frontier), then cross a global barrier. The last arriver resets
// the drained queue's cursors (it becomes the push target next level) and
// bumps the generation word; everyone spins on the generation with acquire
// semantics, swaps queue roles in registers, and reads the next frontier
// length. An empty frontier terminates.
func bfsProgram() *isa.Program {
	b := isa.NewBuilder("bfs")
	popLoop := b.NewLabel()
	edgeLoop := b.NewLabel()
	nextEdge := b.NewLabel()
	barrier := b.NewLabel()
	spin := b.NewLabel()

	// --- pop one frontier vertex ---
	b.Bind(popLoop)
	b.AtomAdd(rBfIdx, rBfCurHdA, rOne, isa.Relaxed)
	b.BGE(rBfIdx, rBfLen, barrier)
	b.MulI(rBfTmp, rBfIdx, 8)
	b.Add(rBfTmp, rBfCurQ, rBfTmp)
	b.Ld(rBfV, rBfTmp, 0)
	// Neighbor range: rowPtr[v], rowPtr[v+1].
	b.MulI(rBfTmp, rBfV, 8)
	b.Add(rBfTmp, rBfRowPB, rBfTmp)
	b.Ld(rBfE, rBfTmp, 0)
	b.Ld(rBfEEnd, rBfTmp, 8)

	// --- gather and claim neighbors ---
	b.Bind(edgeLoop)
	b.BGE(rBfE, rBfEEnd, popLoop)
	b.MulI(rBfTmp, rBfE, 8)
	b.Add(rBfTmp, rBfColB, rBfTmp)
	b.Ld(rBfN, rBfTmp, 0)
	b.MulI(rBfTmp2, rBfN, 8)
	b.Add(rBfTmp2, rBfDistB, rBfTmp2)
	b.AtomCAS(rBfOld, rBfTmp2, rZero, rBfLvlP1, isa.Relaxed)
	b.BNE(rBfOld, rZero, nextEdge)
	// Claimed: push into the next frontier.
	b.AtomAdd(rBfSlot, rBfNxtTlA, rOne, isa.Relaxed)
	b.MulI(rBfTmp2, rBfSlot, 8)
	b.Add(rBfTmp2, rBfNxtQ, rBfTmp2)
	b.St(rBfTmp2, 0, rBfN)
	b.Bind(nextEdge)
	b.AddI(rBfE, rBfE, 1)
	b.Br(edgeLoop)

	// --- global barrier: frontier drained ---
	b.Bind(barrier)
	b.Add(rBfBarTgt, rBfBarTgt, rBfWTot)
	b.AddI(rBfGenWant, rBfGenWant, 1)
	// Arrive with release semantics: every push store is flushed before
	// the arrival is visible.
	b.AtomAdd(rBfOld, rBfBarCntA, rOne, isa.Release)
	b.AddI(rBfTmp, rBfOld, 1)
	b.BNE(rBfTmp, rBfBarTgt, spin)
	// Last arriver: recycle the drained queue (it is next level's push
	// target) and publish the new generation. The release on the bump
	// flushes the cursor resets first.
	b.St(rBfCurHdA, 0, rZero)
	b.St(rBfCurTlA, 0, rZero)
	b.AtomAddNR(rBfBarGenA, rOne, isa.Release)
	b.Bind(spin)
	// Generation spin: an atomic read (fetch-add 0) with acquire
	// semantics, so passing the barrier self-invalidates the L1 and the
	// frontier reads below are fresh.
	b.AtomAdd(rBfOld, rBfBarGenA, rZero, isa.Acquire)
	b.BLT(rBfOld, rBfGenWant, spin)
	// Swap queue roles in registers.
	b.Mov(rBfSwap, rBfCurQ)
	b.Mov(rBfCurQ, rBfNxtQ)
	b.Mov(rBfNxtQ, rBfSwap)
	b.Mov(rBfSwap, rBfCurHdA)
	b.Mov(rBfCurHdA, rBfNxtHdA)
	b.Mov(rBfNxtHdA, rBfSwap)
	b.Mov(rBfSwap, rBfCurTlA)
	b.Mov(rBfCurTlA, rBfNxtTlA)
	b.Mov(rBfNxtTlA, rBfSwap)
	b.AddI(rBfLvlP1, rBfLvlP1, 1)
	b.Ld(rBfLen, rBfCurTlA, 0)
	b.BNE(rBfLen, rZero, popLoop)
	b.Exit()
	return b.MustBuild()
}

// Build writes the graph and frontier state into host memory and returns
// the kernel plus the generated graph (for verification).
func (w BFS) Build(h *cpu.Host) (*gpu.Kernel, *Graph, error) {
	if w.Vertices < 1 || w.Blocks < 1 || w.WarpsPerBlock < 1 || w.AvgDeg < 1 {
		return nil, nil, fmt.Errorf("workloads: invalid BFS %+v", w)
	}
	g := GenGraph(w.Seed, w.Vertices, w.AvgDeg)
	h.WriteSlice(addrBfsRowPtr, g.RowPtr)
	h.WriteSlice(addrBfsCol, g.Col)
	for v := 0; v < w.Vertices; v++ {
		h.Write64(addrBfsDist+uint64(v)*8, 0)
	}
	// Root pre-claimed at distance 1 and seeded into queue A.
	h.Write64(addrBfsDist, 1)
	h.Write64(addrBfsQueueA, 0)
	h.Write64(addrBfsHeadA, 0)
	h.Write64(addrBfsHeadB, 0)
	h.Write64(addrBfsTailA, 1)
	h.Write64(addrBfsTailB, 0)
	h.Write64(addrBfsBarCnt, 0)
	h.Write64(addrBfsBarGen, 0)

	total := uint64(w.Blocks * w.WarpsPerBlock)
	k := &gpu.Kernel{
		Name:          "bfs",
		Program:       bfsProgram(),
		Blocks:        w.Blocks,
		WarpsPerBlock: w.WarpsPerBlock,
		Coresident:    true,
		InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
			InitConsts(regs)
			regs[rBfRowPB] = addrBfsRowPtr
			regs[rBfColB] = addrBfsCol
			regs[rBfDistB] = addrBfsDist
			regs[rBfCurQ] = addrBfsQueueA
			regs[rBfNxtQ] = addrBfsQueueB
			regs[rBfCurHdA] = addrBfsHeadA
			regs[rBfNxtHdA] = addrBfsHeadB
			regs[rBfCurTlA] = addrBfsTailA
			regs[rBfNxtTlA] = addrBfsTailB
			regs[rBfBarCntA] = addrBfsBarCnt
			regs[rBfBarGenA] = addrBfsBarGen
			regs[rBfWTot] = total
			regs[rBfLvlP1] = 2 // first frontier holds distance-1 vertices
			regs[rBfLen] = 1   // queue A starts with the root
		},
	}
	return k, g, nil
}

// Instance wraps the parameter block as a runnable workload with its
// functional verification hook attached.
func (w BFS) Instance() Instance {
	return NewInstance("BFS", func(h *cpu.Host) (*gpu.Kernel, func(*cpu.Host) error, error) {
		k, g, err := w.Build(h)
		if err != nil {
			return nil, nil, err
		}
		verify := func(h *cpu.Host) error { return VerifyBFS(h, g, w) }
		return k, verify, nil
	})
}

// VerifyBFS checks the post-run state against the reference CPU traversal:
// the distance array must match exactly (level-synchronization makes BFS
// levels deterministic even though claim order is not), and the barrier
// words must record exactly one generation per nonempty frontier with
// every warp arriving at each one.
func VerifyBFS(h *cpu.Host, g *Graph, w BFS) error {
	want, levels := g.Levels()
	for v := range want {
		if got := h.Read64(addrBfsDist + uint64(v)*8); got != want[v] {
			return fmt.Errorf("workloads: bfs dist[%d] = %d, want %d", v, got, want[v])
		}
	}
	if gen := h.Read64(addrBfsBarGen); gen != uint64(levels) {
		return fmt.Errorf("workloads: bfs ran %d levels, want %d", gen, levels)
	}
	warps := uint64(w.Blocks * w.WarpsPerBlock)
	if cnt := h.Read64(addrBfsBarCnt); cnt != uint64(levels)*warps {
		return fmt.Errorf("workloads: bfs barrier count %d, want %d arrivals", cnt, uint64(levels)*warps)
	}
	return nil
}
