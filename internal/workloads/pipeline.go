package workloads

import (
	"fmt"

	"gsi/internal/cpu"
	"gsi/internal/gpu"
	"gsi/internal/isa"
)

// Pipeline is a producer-consumer pipeline with long idle phases between
// stages — the bursty, latency-dominated case the skip-ahead engine
// exists for. One thread block alternates two phases per round, separated
// by block barriers: producer warps walk a pointer chase through a seeded
// permutation (a chain of dependent scalar loads, each a full memory
// round trip with zero memory-level parallelism) and publish one token
// each; consumer warps then run a long dependent special-function chain
// over every token and store the results. While one stage runs, the other
// stage's warps sit at the barrier with nothing to issue, so the SM spends
// most of the round waiting on a single known future event — exactly the
// windows the engine jumps.
type Pipeline struct {
	// Seed drives the permutation and chase starting points.
	Seed uint64
	// Rounds is the number of produce/consume handoffs.
	Rounds int
	// Chase is the pointer-chase length per producer per round.
	Chase int
	// Work is the dependent hash-chain length a consumer runs per token.
	Work int
	// Producers and Consumers partition the block's warps: warps
	// [0,Producers) produce, [Producers, Producers+Consumers) consume.
	Producers int
	Consumers int
	// PermWords is the pointer-chase permutation size in words.
	PermWords int
}

// DefaultPipeline sizes the pipeline for one SM: a single producer warp
// chasing a 32 KB pointer permutation (4096 words — larger than its L1
// share, so hops regularly leave the core) and a single consumer warp, so
// each phase is one long dependent-latency chain.
func DefaultPipeline(rounds int) Pipeline {
	return Pipeline{
		Seed: 0x9199, Rounds: rounds, Chase: 64, Work: 24,
		Producers: 1, Consumers: 1, PermWords: 1 << 12,
	}
}

// Warps returns the block size: every producer plus every consumer.
func (w Pipeline) Warps() int { return w.Producers + w.Consumers }

// GenPerm builds the seeded pointer-chase permutation: a Fisher-Yates
// shuffle of [0,n) driven by splitmix64, giving one big cycle-free random
// successor function (perm[i] = next index).
func GenPerm(seed uint64, n int) []uint64 {
	perm := make([]uint64, n)
	for i := range perm {
		perm[i] = uint64(i)
	}
	for i := n - 1; i > 0; i-- {
		j := int(isa.Mix64(seed^uint64(i)) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// Pipeline kernel registers (rZero/rOne shared, see framework.go).
const (
	rPlPermB  isa.Reg = 2
	rPlTokB   isa.Reg = 3
	rPlResB   isa.Reg = 4
	rPlRound  isa.Reg = 5
	rPlRounds isa.Reg = 6
	rPlPtr    isa.Reg = 7
	rPlI      isa.Reg = 8
	rPlChase  isa.Reg = 9
	rPlTmp    isa.Reg = 10
	rPlWid    isa.Reg = 11
	rPlP      isa.Reg = 12
	rPlC      isa.Reg = 13
	rPlIdx    isa.Reg = 14
	rPlV      isa.Reg = 15
)

// pipelineProgram assembles the two-phase round loop. work is the
// statically unrolled consumer hash-chain length.
func pipelineProgram(work int) *isa.Program {
	b := isa.NewBuilder("pipeline")
	roundLoop := b.NewLabel()
	produceBar := b.NewLabel()
	chase := b.NewLabel()
	chaseDone := b.NewLabel()
	consLoop := b.NewLabel()
	consumeBar := b.NewLabel()
	done := b.NewLabel()

	b.Bind(roundLoop)
	b.BGE(rPlRound, rPlRounds, done)
	b.BGE(rPlWid, rPlP, produceBar) // consumers skip the produce phase

	// --- produce: pointer chase, then publish one token ---
	b.MovI(rPlI, 0)
	b.Bind(chase)
	b.BGE(rPlI, rPlChase, chaseDone)
	b.MulI(rPlTmp, rPlPtr, 8)
	b.Add(rPlTmp, rPlPermB, rPlTmp)
	b.Ld(rPlPtr, rPlTmp, 0) // dependent load: the whole phase serializes
	b.AddI(rPlI, rPlI, 1)
	b.Br(chase)
	b.Bind(chaseDone)
	b.Mul(rPlTmp, rPlRound, rPlP) // token index = round*P + wid
	b.Add(rPlTmp, rPlTmp, rPlWid)
	b.MulI(rPlTmp, rPlTmp, 8)
	b.Add(rPlTmp, rPlTokB, rPlTmp)
	b.St(rPlTmp, 0, rPlPtr)

	b.Bind(produceBar)
	b.Bar()
	b.BLT(rPlWid, rPlP, consumeBar) // producers skip the consume phase

	// --- consume: hash-chain every token of this round ---
	b.Sub(rPlIdx, rPlWid, rPlP) // consumer c starts at token c, steps by C
	b.Bind(consLoop)
	b.BGE(rPlIdx, rPlP, consumeBar)
	b.Mul(rPlTmp, rPlRound, rPlP)
	b.Add(rPlTmp, rPlTmp, rPlIdx)
	b.MulI(rPlTmp, rPlTmp, 8)
	b.Add(rPlV, rPlTokB, rPlTmp)
	b.Ld(rPlV, rPlV, 0)
	emitHashChain(b, rPlV, work)
	b.Add(rPlTmp, rPlResB, rPlTmp)
	b.St(rPlTmp, 0, rPlV)
	b.Add(rPlIdx, rPlIdx, rPlC)
	b.Br(consLoop)

	b.Bind(consumeBar)
	b.Bar()
	b.AddI(rPlRound, rPlRound, 1)
	b.Br(roundLoop)
	b.Bind(done)
	b.Exit()
	return b.MustBuild()
}

// chaseStart returns producer p's deterministic starting index.
func (w Pipeline) chaseStart(p int) uint64 {
	return isa.Mix64(w.Seed^0xCAFE^uint64(p)) % uint64(w.PermWords)
}

// Reference replays the pipeline on the CPU and returns the expected token
// and result arrays (Rounds*Producers entries each).
func (w Pipeline) Reference(perm []uint64) (toks, results []uint64) {
	n := w.Rounds * w.Producers
	toks = make([]uint64, n)
	results = make([]uint64, n)
	ptr := make([]uint64, w.Producers)
	for p := range ptr {
		ptr[p] = w.chaseStart(p)
	}
	for r := 0; r < w.Rounds; r++ {
		for p := 0; p < w.Producers; p++ {
			for i := 0; i < w.Chase; i++ {
				ptr[p] = perm[ptr[p]]
			}
			toks[r*w.Producers+p] = ptr[p]
			results[r*w.Producers+p] = HashChain(ptr[p], w.Work)
		}
	}
	return toks, results
}

// Build writes the permutation into host memory and returns the kernel
// plus the permutation (for verification).
func (w Pipeline) Build(h *cpu.Host) (*gpu.Kernel, []uint64, error) {
	if w.Rounds < 1 || w.Chase < 1 || w.Work < 1 || w.Producers < 1 ||
		w.Consumers < 1 || w.PermWords < 2 {
		return nil, nil, fmt.Errorf("workloads: invalid pipeline %+v", w)
	}
	perm := GenPerm(w.Seed, w.PermWords)
	h.WriteSlice(addrPipePerm, perm)
	for i := 0; i < w.Rounds*w.Producers; i++ {
		h.Write64(addrPipeTok+uint64(i)*8, 0)
		h.Write64(addrPipeRes+uint64(i)*8, 0)
	}

	k := &gpu.Kernel{
		Name:          "pipeline",
		Program:       pipelineProgram(w.Work),
		Blocks:        1,
		WarpsPerBlock: w.Warps(),
		InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
			InitConsts(regs)
			regs[rPlPermB] = addrPipePerm
			regs[rPlTokB] = addrPipeTok
			regs[rPlResB] = addrPipeRes
			regs[rPlRounds] = uint64(w.Rounds)
			regs[rPlChase] = uint64(w.Chase)
			regs[rPlWid] = uint64(warp)
			regs[rPlP] = uint64(w.Producers)
			regs[rPlC] = uint64(w.Consumers)
			if warp < w.Producers {
				regs[rPlPtr] = w.chaseStart(warp)
			}
		},
	}
	return k, perm, nil
}

// Instance wraps the parameter block as a runnable workload with its
// functional verification hook attached.
func (w Pipeline) Instance() Instance {
	return NewInstance("pipeline", func(h *cpu.Host) (*gpu.Kernel, func(*cpu.Host) error, error) {
		k, perm, err := w.Build(h)
		if err != nil {
			return nil, nil, err
		}
		verify := func(h *cpu.Host) error { return VerifyPipeline(h, perm, w) }
		return k, verify, nil
	})
}

// VerifyPipeline checks every token and result word against the CPU
// replay of the chase and hash chains.
func VerifyPipeline(h *cpu.Host, perm []uint64, w Pipeline) error {
	toks, results := w.Reference(perm)
	for i := range toks {
		if got := h.Read64(addrPipeTok + uint64(i)*8); got != toks[i] {
			return fmt.Errorf("workloads: pipeline token[%d] = %#x, want %#x", i, got, toks[i])
		}
		if got := h.Read64(addrPipeRes + uint64(i)*8); got != results[i] {
			return fmt.Errorf("workloads: pipeline result[%d] = %#x, want %#x", i, got, results[i])
		}
	}
	return nil
}
