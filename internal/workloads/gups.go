package workloads

import (
	"fmt"

	"gsi/internal/cpu"
	"gsi/internal/gpu"
	"gsi/internal/isa"
)

// gupsWindowBytes is the span one vector update touches: a full warp of
// lanes strided by one cache line (32 lanes x 64 B), so every update
// coalesces into 32 distinct line requests. The kernel assumes the Table
// 5.1 warp and line geometry, like the implicit microbenchmark's group
// constants.
const (
	gupsLanes       = 32
	gupsLineStride  = 64
	gupsWindowBytes = gupsLanes * gupsLineStride
)

// GUPS is a random-access update benchmark in the spirit of the HPCC
// giga-updates-per-second kernel, shaped to stress the MSHR and the
// coalescer: each warp owns a power-of-two slice of a large table and
// performs updates at hashed window offsets inside it. Every update is a
// vector load and store whose lanes stride by a full cache line, so a
// single instruction expands to 32 line requests — the coalescer drains
// them one per cycle while the MSHR fills, and with several warps per SM
// the breakdown is dominated by full-MSHR structural stalls (the
// small-MSHR regime of figure 6.4, sustained by every access instead of a
// load phase). Partitions are private per warp, so read-modify-write
// updates never race across warps and the CPU replay is exact.
type GUPS struct {
	// Seed drives the per-warp update streams and initial table fill.
	Seed uint64
	// Updates is the update count per warp.
	Updates int
	// WindowsPerWarp is each warp's partition size in update windows
	// (must be a power of two; a window is gupsWindowBytes).
	WindowsPerWarp int
	// Blocks and WarpsPerBlock size the worker population.
	Blocks        int
	WarpsPerBlock int
}

// DefaultGUPS sizes the workload for the 15-SM system: 60 warps each
// owning a 64 KB partition under MSHR pressure (four warps per SM, so
// there is always a warp observing the full MSHR while others drain).
func DefaultGUPS(updates int) GUPS {
	return GUPS{Seed: 0x6095, Updates: updates, WindowsPerWarp: 32, Blocks: 15, WarpsPerBlock: 4}
}

// GUPS kernel registers (rZero/rOne shared, see framework.go).
const (
	rGuPartB isa.Reg = 2
	rGuMask  isa.Reg = 3
	rGuSeedB isa.Reg = 4
	rGuI     isa.Reg = 5
	rGuUpd   isa.Reg = 6
	rGuH     isa.Reg = 7
	rGuX     isa.Reg = 8
	rGuTmp   isa.Reg = 9
	rGuAddr  isa.Reg = 10
	rGuV     isa.Reg = 11
)

// gupsProgram assembles the update loop: hash the update counter through
// the SFU, mask it to a window slot, then read-modify-write the window
// with line-strided vector accesses.
func gupsProgram() *isa.Program {
	b := isa.NewBuilder("gups")
	loop := b.NewLabel()
	done := b.NewLabel()

	b.Bind(loop)
	b.BGE(rGuI, rGuUpd, done)
	b.Add(rGuX, rGuSeedB, rGuI)
	b.SFU(rGuH, rGuX) // h = Mix64(seedBase + i)
	b.And(rGuTmp, rGuH, rGuMask)
	b.MulI(rGuTmp, rGuTmp, gupsWindowBytes)
	b.Add(rGuAddr, rGuPartB, rGuTmp)
	b.LdV(rGuV, rGuAddr, gupsLineStride) // 32 distinct lines per access
	b.FMA(rGuV, rGuV, rGuH)              // v = v*h + v
	b.StV(rGuAddr, gupsLineStride, rGuV)
	b.AddI(rGuI, rGuI, 1)
	b.Br(loop)
	b.Bind(done)
	b.Exit()
	return b.MustBuild()
}

// warps returns the total warp count.
func (w GUPS) warps() int { return w.Blocks * w.WarpsPerBlock }

// partBase returns the table base address of global warp gid's partition.
func (w GUPS) partBase(gid int) uint64 {
	return addrGupsTable + uint64(gid)*uint64(w.WindowsPerWarp)*gupsWindowBytes
}

// seedBase returns the hash-stream base for global warp gid.
func (w GUPS) seedBase(gid int) uint64 { return isa.Mix64(w.Seed ^ uint64(gid)) }

// tableWords returns the total table size in words.
func (w GUPS) tableWords() int {
	return w.warps() * w.WindowsPerWarp * gupsWindowBytes / 8
}

// initWord returns the deterministic initial table fill.
func (w GUPS) initWord(j int) uint64 { return isa.Mix64(w.Seed ^ 0x7AB1E ^ uint64(j)) }

// Reference replays every warp's update stream against a CPU copy of the
// table and returns the expected final contents.
func (w GUPS) Reference() []uint64 {
	tab := make([]uint64, w.tableWords())
	for j := range tab {
		tab[j] = w.initWord(j)
	}
	for gid := 0; gid < w.warps(); gid++ {
		base := (w.partBase(gid) - addrGupsTable) / 8
		sb := w.seedBase(gid)
		for i := 0; i < w.Updates; i++ {
			h := isa.Mix64(sb + uint64(i))
			slot := h & uint64(w.WindowsPerWarp-1)
			word := base + slot*gupsWindowBytes/8
			// A vector load takes lane 0's word; the vector store
			// writes the warp-scalar result to every lane address.
			v := tab[word]
			v = v*h + v
			for lane := 0; lane < gupsLanes; lane++ {
				tab[word+uint64(lane*gupsLineStride/8)] = v
			}
		}
	}
	return tab
}

// Build initializes the table and returns the kernel.
func (w GUPS) Build(h *cpu.Host) (*gpu.Kernel, error) {
	if w.Updates < 1 || w.Blocks < 1 || w.WarpsPerBlock < 1 {
		return nil, fmt.Errorf("workloads: invalid GUPS %+v", w)
	}
	if w.WindowsPerWarp < 1 || w.WindowsPerWarp&(w.WindowsPerWarp-1) != 0 {
		return nil, fmt.Errorf("workloads: GUPS WindowsPerWarp %d must be a power of two", w.WindowsPerWarp)
	}
	for j := 0; j < w.tableWords(); j++ {
		h.Write64(addrGupsTable+uint64(j)*8, w.initWord(j))
	}
	k := &gpu.Kernel{
		Name:          "gups",
		Program:       gupsProgram(),
		Blocks:        w.Blocks,
		WarpsPerBlock: w.WarpsPerBlock,
		InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
			InitConsts(regs)
			gid := block*w.WarpsPerBlock + warp
			regs[rGuPartB] = w.partBase(gid)
			regs[rGuMask] = uint64(w.WindowsPerWarp - 1)
			regs[rGuSeedB] = w.seedBase(gid)
			regs[rGuUpd] = uint64(w.Updates)
		},
	}
	return k, nil
}

// Instance wraps the parameter block as a runnable workload with its
// functional verification hook attached.
func (w GUPS) Instance() Instance {
	return NewInstance("GUPS", func(h *cpu.Host) (*gpu.Kernel, func(*cpu.Host) error, error) {
		k, err := w.Build(h)
		if err != nil {
			return nil, nil, err
		}
		verify := func(h *cpu.Host) error { return VerifyGUPS(h, w) }
		return k, verify, nil
	})
}

// VerifyGUPS checks the final table contents against the CPU replay.
func VerifyGUPS(h *cpu.Host, w GUPS) error {
	want := w.Reference()
	for j, wv := range want {
		if got := h.Read64(addrGupsTable + uint64(j)*8); got != wv {
			return fmt.Errorf("workloads: gups table[%d] = %#x, want %#x", j, got, wv)
		}
	}
	return nil
}
