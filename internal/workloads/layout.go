package workloads

// Memory layout of the workloads in the unified address space. Regions are
// spaced far apart so distinct structures never share cache lines, and
// every hot synchronization variable gets its own line.
const (
	// Global task queue (UTS and UTSD overflow).
	addrLock = 0x0001_0000 // queue lock word
	addrHead = 0x0001_0040 // pop index
	addrTail = 0x0001_0080 // push index
	addrDone = 0x0001_00C0 // processed-node counter (atomic)

	addrTasks = 0x0010_0000 // global task ids, 8 B each

	addrChildCount = 0x0100_0000 // per-node child count
	addrChildBase  = 0x0180_0000 // per-node first-child id
	addrResult     = 0x0280_0000 // per-node result word written on process

	// UTSD per-SM local queues: lock/head/tail on separate lines within
	// a lqMetaStride region per queue; ring buffers of lqCap tasks. The
	// strides are odd multiples of the line size so consecutive queues'
	// hot lines spread across all L2 banks instead of aliasing onto a
	// few (16-bank interleaving; a stride that is a multiple of 16 lines
	// would put every queue's lock on the same bank).
	addrLQMeta   = 0x0300_0000
	lqMetaStride = 0x440
	addrLQTasks  = 0x0310_0000
	lqTaskStride = 0x1_0440

	// Implicit microbenchmark data array.
	addrData = 0x0800_0000

	// BFS over a CSR graph: rowPtr (n+1 entries), column indices, the
	// per-vertex distance array the CAS claims write, and the two
	// alternating frontier queues. The queue cursors and the global
	// barrier words each get their own cache line.
	addrBfsRowPtr = 0x1000_0000
	addrBfsCol    = 0x1100_0000
	addrBfsDist   = 0x1200_0000
	addrBfsQueueA = 0x1300_0000
	addrBfsQueueB = 0x1380_0000
	addrBfsHeadA  = 0x13F0_0000 // pop cursor, queue A
	addrBfsHeadB  = 0x13F0_0040
	addrBfsTailA  = 0x13F0_0080 // push cursor, queue A
	addrBfsTailB  = 0x13F0_00C0
	addrBfsBarCnt = 0x13F0_0100 // barrier arrival counter (monotonic)
	addrBfsBarGen = 0x13F0_0140 // barrier generation (monotonic)

	// SpMV in CSR form: rowPtr, column indices, values, the dense input
	// vector x, and the output vector y.
	addrSpmRowPtr = 0x1400_0000
	addrSpmCol    = 0x1500_0000
	addrSpmVal    = 0x1600_0000
	addrSpmX      = 0x1700_0000
	addrSpmY      = 0x1800_0000

	// Producer-consumer pipeline: the pointer-chase permutation the
	// producers walk, the per-round token buffer handed across the
	// stage barrier, and the consumer result array.
	addrPipePerm = 0x1900_0000
	addrPipeTok  = 0x1A00_0000
	addrPipeRes  = 0x1B00_0000

	// GUPS random-access table, partitioned per warp (each warp owns a
	// power-of-two slice it updates through randomized windows).
	addrGupsTable = 0x2000_0000

	// Stencil per-block band windows: each co-resident block owns one
	// contiguous window holding its two ping-pong planes (ghost rows
	// included), DMA-mapped into the scratchpad at block start and bulk
	// written back at kernel end. Halo rows are exchanged through the
	// parity-indexed slot arrays; the global barrier words get their own
	// cache lines.
	addrStenGrid   = 0x2100_0000
	addrStenHaloDn = 0x2800_0000
	addrStenHaloUp = 0x2C00_0000
	addrStenBarCnt = 0x2F00_0000
	addrStenBarGen = 0x2F00_0040

	// Work-stealing deques: per-block lock/head/tail on separate lines
	// within a sqMetaStride region, ring buffers of task ids, the
	// per-task result array, and the processed counter. As with the UTSD
	// queues, the strides are odd multiples of the line size so
	// consecutive deques' hot lines spread across all 16 L2 banks.
	addrSqMeta    = 0x3000_0000
	sqMetaStride  = 0x4C0
	addrSqTasks   = 0x3100_0000
	sqTaskStride  = 0x2_04C0
	addrStealRes  = 0x3800_0000
	addrStealDone = 0x3F00_0000
)

func lqLockAddr(q int) uint64 { return addrLQMeta + uint64(q)*lqMetaStride }
func lqHeadAddr(q int) uint64 { return lqLockAddr(q) + 0x40 }
func lqTailAddr(q int) uint64 { return lqLockAddr(q) + 0x80 }
func lqTasksBase(q int) uint64 {
	return addrLQTasks + uint64(q)*lqTaskStride
}

func sqLockAddr(q int) uint64 { return addrSqMeta + uint64(q)*sqMetaStride }
func sqHeadAddr(q int) uint64 { return sqLockAddr(q) + 0x40 }
func sqTailAddr(q int) uint64 { return sqLockAddr(q) + 0x80 }
func sqTasksBase(q int) uint64 {
	return addrSqTasks + uint64(q)*sqTaskStride
}
