package workloads

import (
	"strings"
	"testing"

	"gsi/internal/cpu"
	"gsi/internal/mem"
)

// Fault injection for the stencil and steal verifiers, in the same spirit
// as verify_test.go: forge the exact memory image a perfect run leaves,
// confirm the verifier accepts it, then break one invariant at a time and
// confirm the matching check fires.

// forgeStencilRun builds stencil memory and overwrites it with the CPU
// replay's final image plus the barrier words a complete run leaves.
func forgeStencilRun(t *testing.T) (*cpu.Host, Stencil) {
	t.Helper()
	h := cpu.NewHost(mem.NewBacking())
	w := Stencil{Seed: 7, Width: 16, Rows: 2, Steps: 3, Blocks: 3, WarpsPerBlock: 2, Work: 1}
	if _, err := w.Build(h); err != nil {
		t.Fatal(err)
	}
	ref := w.Reference()
	for b := 0; b < w.Blocks; b++ {
		for i, v := range ref.win[b] {
			h.Write64(w.windowAddr(b)+uint64(i)*8, v)
		}
	}
	for p := 0; p < 2; p++ {
		for b := -1; b < w.Blocks; b++ {
			for c, v := range ref.haloDn[(b+1)*2+p] {
				h.Write64(w.haloDnAddr(b, p)+uint64(c)*8, v)
			}
		}
		for b := 0; b <= w.Blocks; b++ {
			for c, v := range ref.haloUp[b*2+p] {
				h.Write64(w.haloUpAddr(b, p)+uint64(c)*8, v)
			}
		}
	}
	h.Write64(addrStenBarGen, uint64(w.Steps))
	h.Write64(addrStenBarCnt, uint64(w.Steps*w.Blocks*w.WarpsPerBlock))
	return h, w
}

func TestVerifyStencilAcceptsPerfectRun(t *testing.T) {
	h, w := forgeStencilRun(t)
	if err := VerifyStencil(h, w); err != nil {
		t.Fatalf("perfect run rejected: %v", err)
	}
}

func TestVerifyStencilDetectsFaults(t *testing.T) {
	faults := []struct {
		name   string
		inject func(h *cpu.Host, w Stencil)
		want   string
	}{
		{"corrupted interior cell", func(h *cpu.Host, w Stencil) {
			a := w.windowAddr(1) + w.planeBytes() + w.rowBytes() + 2*8
			h.Write64(a, h.Read64(a)^1)
		}, "plane"},
		{"stale down halo", func(h *cpu.Host, w Stencil) {
			a := w.haloDnAddr(0, 1) + 3*8
			h.Write64(a, h.Read64(a)+1)
		}, "haloDn"},
		{"stale up halo", func(h *cpu.Host, w Stencil) {
			a := w.haloUpAddr(1, 0) + 5*8
			h.Write64(a, h.Read64(a)+1)
		}, "haloUp"},
		{"missing step", func(h *cpu.Host, w Stencil) {
			h.Write64(addrStenBarGen, uint64(w.Steps)-1)
		}, "steps"},
		{"lost barrier arrival", func(h *cpu.Host, w Stencil) {
			h.Write64(addrStenBarCnt, h.Read64(addrStenBarCnt)-1)
		}, "barrier count"},
	}
	for _, f := range faults {
		t.Run(f.name, func(t *testing.T) {
			h, w := forgeStencilRun(t)
			f.inject(h, w)
			err := VerifyStencil(h, w)
			if err == nil {
				t.Fatal("fault not detected")
			}
			if !strings.Contains(err.Error(), f.want) {
				t.Fatalf("err = %v, want mention of %q", err, f.want)
			}
		})
	}
}

// forgeStealRun builds steal memory and forges the state a correct run
// leaves: every deque drained, every result word exact, done == Tasks.
func forgeStealRun(t *testing.T) (*cpu.Host, Steal) {
	t.Helper()
	h := cpu.NewHost(mem.NewBacking())
	w := Steal{Tasks: 40, Cap: 64, Blocks: 3, WarpsPerBlock: 2, Work: 2, FMAs: 1, Skew: 100}
	if _, err := w.Build(h); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < w.Blocks; q++ {
		h.Write64(sqHeadAddr(q), h.Read64(sqTailAddr(q)))
	}
	h.Write64(addrStealDone, uint64(w.Tasks))
	for id := 0; id < w.Tasks; id++ {
		h.Write64(addrStealRes+uint64(id)*8, StealResult(uint64(id), w.Work, w.FMAs))
	}
	return h, w
}

func TestVerifyStealAcceptsPerfectRun(t *testing.T) {
	h, w := forgeStealRun(t)
	if err := VerifySteal(h, w); err != nil {
		t.Fatalf("perfect run rejected: %v", err)
	}
}

func TestVerifyStealDetectsFaults(t *testing.T) {
	faults := []struct {
		name   string
		inject func(h *cpu.Host, w Steal)
		want   string
	}{
		{"lost task", func(h *cpu.Host, w Steal) {
			h.Write64(addrStealDone, uint64(w.Tasks)-1)
		}, "done="},
		{"corrupted result", func(h *cpu.Host, w Steal) {
			a := addrStealRes + uint64(w.Tasks-1)*8
			h.Write64(a, h.Read64(a)^1)
		}, "result["},
		{"deque not drained", func(h *cpu.Host, w Steal) {
			h.Write64(sqHeadAddr(1), h.Read64(sqHeadAddr(1))+1)
		}, "not drained"},
		{"lock leaked", func(h *cpu.Host, w Steal) {
			h.Write64(sqLockAddr(2), 1)
		}, "lock still held"},
	}
	for _, f := range faults {
		t.Run(f.name, func(t *testing.T) {
			h, w := forgeStealRun(t)
			f.inject(h, w)
			err := VerifySteal(h, w)
			if err == nil {
				t.Fatal("fault not detected")
			}
			if !strings.Contains(err.Error(), f.want) {
				t.Fatalf("err = %v, want mention of %q", err, f.want)
			}
		})
	}
}

func TestStealSeedDequesSkew(t *testing.T) {
	w := Steal{Tasks: 100, Cap: 128, Blocks: 5, WarpsPerBlock: 2, Skew: 60}
	qs := w.seedDeques()
	if n := len(qs[0]); n != 60 {
		t.Fatalf("deque 0 seeded with %d tasks, want 60", n)
	}
	total := 0
	for _, q := range qs {
		total += len(q)
	}
	if total != w.Tasks {
		t.Fatalf("seeded %d tasks, want %d", total, w.Tasks)
	}
	// The cold deques split the remainder evenly.
	for q := 1; q < w.Blocks; q++ {
		if len(qs[q]) != 10 {
			t.Fatalf("deque %d seeded with %d tasks, want 10", q, len(qs[q]))
		}
	}
}

func TestStealDequeLayoutSpreadsBanks(t *testing.T) {
	// Same property the UTSD queues guarantee: deque locks must spread
	// across the 16 L2 banks rather than aliasing onto a few.
	const banks, lineSize = 16, 64
	used := map[uint64]bool{}
	for q := 0; q < 15; q++ {
		used[(sqLockAddr(q)/lineSize)%banks] = true
	}
	if len(used) < 12 {
		t.Fatalf("15 deque locks alias onto only %d of %d banks", len(used), banks)
	}
}
