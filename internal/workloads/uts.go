package workloads

import (
	"fmt"

	"gsi/internal/cpu"
	"gsi/internal/gpu"
	"gsi/internal/isa"
)

// UTS is the unbalanced tree search benchmark of case study 1: workers
// (one per warp) pop nodes from a single global task queue protected by one
// lock, process the node's payload, and push its children back. The single
// lock is the benchmark's defining property: all workers serialize on it,
// so synchronization stalls dominate (figure 6.1a).
type UTS struct {
	// Seed drives deterministic tree generation.
	Seed uint64
	// Nodes is the exact tree size.
	Nodes int
	// FrontierMin is the host pre-expansion width before launch.
	FrontierMin int
	// Blocks and WarpsPerBlock size the worker population (the paper
	// uses all 15 SMs).
	Blocks        int
	WarpsPerBlock int
	// Work is the dependent special-function (hash) chain length per
	// node: real UTS hashes a descriptor per node (SHA-1), so processing
	// is compute-heavy relative to the queue operations.
	Work int
	// FMAs extends the per-node compute with an FMA chain.
	FMAs int
}

// DefaultUTS sizes the workload for the 15-SM system of case study 1.
func DefaultUTS(nodes int) UTS {
	return UTS{
		Seed:          0xC0FFEE,
		Nodes:         nodes,
		FrontierMin:   64,
		Blocks:        15,
		WarpsPerBlock: 8,
		Work:          16,
		FMAs:          4,
	}
}

// Registers used by the UTS/UTSD kernels (r0 and r1 hold the constants 0
// and 1 and are never written).
const (
	rZero   isa.Reg = 0
	rOne    isa.Reg = 1
	rLockA  isa.Reg = 2
	rHeadA  isa.Reg = 3
	rTailA  isa.Reg = 4
	rDoneA  isa.Reg = 5
	rTasksB isa.Reg = 6
	rCCB    isa.Reg = 7
	rCBB    isa.Reg = 8
	rTotal  isa.Reg = 10
	rOld    isa.Reg = 11
	rHead   isa.Reg = 12
	rTail   isa.Reg = 13
	rNode   isa.Reg = 14
	rCount  isa.Reg = 15
	rCBase  isa.Reg = 16
	rTmp    isa.Reg = 17
	rTmp2   isa.Reg = 18
	rAcc    isa.Reg = 19
	rI      isa.Reg = 20
	rDone   isa.Reg = 21
	rPayA   isa.Reg = 22
	// UTSD extras.
	rLLockA  isa.Reg = 23
	rLHeadA  isa.Reg = 24
	rLTailA  isa.Reg = 25
	rLTasksB isa.Reg = 26
	rLQMask  isa.Reg = 27 // local ring capacity - 1 (power of two)
	rLQCap   isa.Reg = 28
	rLHead   isa.Reg = 29
	rLTail   isa.Reg = 30
	rResB    isa.Reg = 31 // result array base
)

// emitProcessNode appends the shared node-processing sequence: fetch child
// metadata, hash the node descriptor (real UTS derives children by hashing,
// so processing is compute- not data-bound), and write the node's result.
// The result store is what repeat releases pay for under GPU coherence and
// what ownership makes cheap under DeNovo; the queue structures remain the
// memory hot path, as in the paper.
func emitProcessNode(b *isa.Builder, work, fmas int) {
	b.MulI(rTmp, rNode, 8)
	b.Add(rTmp2, rCCB, rTmp)
	b.Ld(rCount, rTmp2, 0)
	b.Add(rTmp2, rCBB, rTmp)
	b.Ld(rCBase, rTmp2, 0)
	if work < 1 {
		work = 1
	}
	b.SFU(rAcc, rNode)
	for i := 1; i < work; i++ {
		b.SFU(rAcc, rAcc)
	}
	for i := 0; i < fmas; i++ {
		b.FMA(rAcc, rAcc, rAcc)
	}
	b.MulI(rPayA, rNode, 8)
	b.Add(rPayA, rResB, rPayA)
	b.St(rPayA, 0, rAcc)
}

// utsProgram assembles the global-queue worker loop.
func utsProgram(work, fmas int) *isa.Program {
	b := isa.NewBuilder("uts")
	main := b.NewLabel()
	empty := b.NewLabel()
	noteDone := b.NewLabel()
	exitL := b.NewLabel()

	b.Bind(main)
	// Acquire the global queue lock: CAS(lock, 0 -> 1) with acquire
	// semantics; spin until the old value is 0.
	emitSpinAcquire(b, rOld, rLockA)
	// Pop: if head == tail the queue is empty.
	b.Ld(rHead, rHeadA, 0)
	b.Ld(rTail, rTailA, 0)
	b.BEQ(rHead, rTail, empty)
	b.MulI(rTmp, rHead, 8)
	b.Add(rTmp, rTasksB, rTmp)
	b.Ld(rNode, rTmp, 0)
	b.AddI(rHead, rHead, 1)
	b.St(rHeadA, 0, rHead)
	// Unlock: exchange with release semantics (flushes the store
	// buffer: the head update becomes visible before the lock frees).
	emitUnlock(b, rOld, rLockA)

	// Process the node: fetch child metadata, stream the payload,
	// compute on it, store its result.
	emitProcessNode(b, work, fmas)

	// Push children, if any, under the same global lock.
	b.BEQ(rCount, rZero, noteDone)
	emitSpinAcquire(b, rOld, rLockA)
	b.Ld(rTail, rTailA, 0)
	b.MovI(rI, 0)
	pushLoop := b.Here()
	pushDone := b.NewLabel()
	b.BGE(rI, rCount, pushDone)
	b.MulI(rTmp, rTail, 8)
	b.Add(rTmp, rTasksB, rTmp)
	b.Add(rTmp2, rCBase, rI)
	b.St(rTmp, 0, rTmp2)
	b.AddI(rTail, rTail, 1)
	b.AddI(rI, rI, 1)
	b.Br(pushLoop)
	b.Bind(pushDone)
	b.St(rTailA, 0, rTail)
	emitUnlock(b, rOld, rLockA)

	b.Bind(noteDone)
	// Count the node processed: fire-and-forget fetch-add at the L2.
	b.AtomAddNR(rDoneA, rOne, isa.Relaxed)
	b.Br(main)

	b.Bind(empty)
	emitUnlock(b, rOld, rLockA)
	// Termination: all nodes processed? The done line was
	// self-invalidated by this iteration's acquire, so the load is
	// fresh.
	b.Ld(rDone, rDoneA, 0)
	b.BLT(rDone, rTotal, main)
	b.Bind(exitL)
	b.Exit()
	return b.MustBuild()
}

// Build writes the tree and queue into host memory and returns the kernel
// plus the generated tree (for verification).
func (u UTS) Build(h *cpu.Host) (*gpu.Kernel, *Tree, Seeding, error) {
	if u.Nodes < 1 || u.Blocks < 1 || u.WarpsPerBlock < 1 {
		return nil, nil, Seeding{}, fmt.Errorf("workloads: invalid UTS %+v", u)
	}
	tree := GenTree(u.Seed, u.Nodes)
	seed := tree.SeedFrontier(u.FrontierMin)
	initTreeMemory(h, tree)

	// Global queue: the frontier is pre-loaded, head at 0.
	h.WriteSlice(addrTasks, seed.Frontier)
	h.Write64(addrLock, 0)
	h.Write64(addrHead, 0)
	h.Write64(addrTail, uint64(len(seed.Frontier)))
	h.Write64(addrDone, seed.HostProcessed)

	total := uint64(tree.Nodes())
	k := &gpu.Kernel{
		Name:          "uts",
		Program:       utsProgram(u.Work, u.FMAs),
		Blocks:        u.Blocks,
		WarpsPerBlock: u.WarpsPerBlock,
		InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
			InitConsts(regs)
			regs[rLockA] = addrLock
			regs[rHeadA] = addrHead
			regs[rTailA] = addrTail
			regs[rDoneA] = addrDone
			regs[rTasksB] = addrTasks
			regs[rCCB] = addrChildCount
			regs[rCBB] = addrChildBase
			regs[rResB] = addrResult
			regs[rTotal] = total
		},
	}
	return k, tree, seed, nil
}

// Instance wraps the parameter block as a runnable workload with its
// functional verification hook attached.
func (u UTS) Instance() Instance {
	return NewInstance("UTS", func(h *cpu.Host) (*gpu.Kernel, func(*cpu.Host) error, error) {
		k, tree, seed, err := u.Build(h)
		if err != nil {
			return nil, nil, err
		}
		verify := func(h *cpu.Host) error {
			return VerifyQueueRun(h, tree, seed, u.Work, u.FMAs)
		}
		return k, verify, nil
	})
}

// initTreeMemory writes the tree's metadata arrays.
func initTreeMemory(h *cpu.Host, tree *Tree) {
	h.WriteSlice(addrChildCount, tree.ChildCount)
	h.WriteSlice(addrChildBase, tree.ChildBase)
}

// VerifyQueueRun checks the post-run invariants of a global-queue
// execution: every node processed exactly once, the queue drained, and
// every node's result word holding the exact hash+FMA chain.
func VerifyQueueRun(h *cpu.Host, tree *Tree, seed Seeding, work, fmas int) error {
	total := uint64(tree.Nodes())
	if done := h.Read64(addrDone); done != total {
		return fmt.Errorf("workloads: done=%d, want %d", done, total)
	}
	head, tail := h.Read64(addrHead), h.Read64(addrTail)
	if head != tail {
		return fmt.Errorf("workloads: queue not drained: head=%d tail=%d", head, tail)
	}
	wantPushed := total - seed.HostProcessed
	if tail != wantPushed {
		return fmt.Errorf("workloads: pushed %d tasks, want %d", tail, wantPushed)
	}
	return VerifyResults(h, tree, seed, work, fmas)
}

// VerifyResults checks every GPU-processed node's result word: the kernel
// computes result[n] = FMA^fmas(Mix64^work(n)). Host pre-expansion pops
// nodes in BFS (= id) order, so nodes 0 through HostProcessed-1 were
// handled by the host and have no GPU result.
func VerifyResults(h *cpu.Host, tree *Tree, seed Seeding, work, fmas int) error {
	if work < 1 {
		work = 1
	}
	for n := int(seed.HostProcessed); n < tree.Nodes(); n++ {
		v := uint64(n)
		for i := 0; i < work; i++ {
			v = isa.Mix64(v)
		}
		for i := 0; i < fmas; i++ {
			v = v*v + v
		}
		if got := h.Read64(addrResult + uint64(n)*8); got != v {
			return fmt.Errorf("workloads: result[%d] = %#x, want %#x", n, got, v)
		}
	}
	return nil
}
