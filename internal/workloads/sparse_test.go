package workloads

import (
	"strings"
	"testing"

	"gsi/internal/cpu"
	"gsi/internal/mem"
)

// The four sparse/bursty workloads' verifiers are the harness's defense
// against timing bugs that corrupt results; as with the UTS family, these
// tests forge a perfect run and then prove each check fires when its
// invariant is broken.

func TestWarpChunk(t *testing.T) {
	for _, tt := range []struct{ total, parts int }{
		{10, 3}, {7, 7}, {5, 8}, {100, 1}, {0, 4},
	} {
		covered := 0
		prevEnd := 0
		for i := 0; i < tt.parts; i++ {
			start, end := WarpChunk(tt.total, tt.parts, i)
			if start != prevEnd {
				t.Fatalf("chunk(%d,%d,%d) starts at %d, want %d", tt.total, tt.parts, i, start, prevEnd)
			}
			if end < start || end-start > tt.total/tt.parts+1 {
				t.Fatalf("chunk(%d,%d,%d) = [%d,%d): bad size", tt.total, tt.parts, i, start, end)
			}
			covered += end - start
			prevEnd = end
		}
		if covered != tt.total || prevEnd != tt.total {
			t.Fatalf("chunks of (%d,%d) cover %d items ending at %d", tt.total, tt.parts, covered, prevEnd)
		}
	}
}

func TestGenGraphDeterministicCSR(t *testing.T) {
	a := GenGraph(7, 500, 4)
	b := GenGraph(7, 500, 4)
	if a.Vertices() != 500 || len(a.RowPtr) != 501 {
		t.Fatalf("graph shape: %d vertices, %d rowptr", a.Vertices(), len(a.RowPtr))
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			t.Fatal("graph generation not deterministic")
		}
	}
	for v := 0; v < a.Vertices(); v++ {
		if a.RowPtr[v] > a.RowPtr[v+1] {
			t.Fatalf("rowptr not monotonic at %d", v)
		}
	}
	for _, c := range a.Col {
		if c >= 500 {
			t.Fatalf("neighbor %d out of range", c)
		}
	}
	dist, levels := a.Levels()
	if dist[0] != 1 || levels < 1 {
		t.Fatalf("levels: dist[0]=%d levels=%d", dist[0], levels)
	}
}

// forgeBFS builds BFS memory and writes the state a correct run leaves.
func forgeBFS(t *testing.T) (*cpu.Host, *Graph, BFS) {
	t.Helper()
	h := cpu.NewHost(mem.NewBacking())
	w := BFS{Seed: 11, Vertices: 120, AvgDeg: 3, Blocks: 2, WarpsPerBlock: 2}
	_, g, err := w.Build(h)
	if err != nil {
		t.Fatal(err)
	}
	dist, levels := g.Levels()
	for v, d := range dist {
		h.Write64(addrBfsDist+uint64(v)*8, d)
	}
	h.Write64(addrBfsBarGen, uint64(levels))
	h.Write64(addrBfsBarCnt, uint64(levels*w.Blocks*w.WarpsPerBlock))
	return h, g, w
}

func TestVerifyBFSDetectsFaults(t *testing.T) {
	h, g, w := forgeBFS(t)
	if err := VerifyBFS(h, g, w); err != nil {
		t.Fatalf("perfect run rejected: %v", err)
	}
	faults := []struct {
		name   string
		inject func(h *cpu.Host)
		want   string
	}{
		{"wrong distance", func(h *cpu.Host) {
			h.Write64(addrBfsDist+8*17, h.Read64(addrBfsDist+8*17)+1)
		}, "dist["},
		{"missed level", func(h *cpu.Host) {
			h.Write64(addrBfsBarGen, h.Read64(addrBfsBarGen)-1)
		}, "levels"},
		{"lost barrier arrival", func(h *cpu.Host) {
			h.Write64(addrBfsBarCnt, h.Read64(addrBfsBarCnt)-1)
		}, "barrier"},
	}
	for _, f := range faults {
		t.Run(f.name, func(t *testing.T) {
			h, g, w := forgeBFS(t)
			f.inject(h)
			err := VerifyBFS(h, g, w)
			if err == nil {
				t.Fatal("fault not detected")
			}
			if !strings.Contains(err.Error(), f.want) {
				t.Fatalf("err = %v, want mention of %q", err, f.want)
			}
		})
	}
}

func TestVerifySpMVDetectsCorruption(t *testing.T) {
	h := cpu.NewHost(mem.NewBacking())
	w := SpMV{Seed: 13, Rows: 64, NnzPerRow: 4, Blocks: 2, WarpsPerBlock: 2}
	_, m, x, err := w.Build(h)
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range m.Multiply(x) {
		h.Write64(addrSpmY+uint64(r)*8, v)
	}
	if err := VerifySpMV(h, m, x); err != nil {
		t.Fatalf("perfect run rejected: %v", err)
	}
	h.Write64(addrSpmY+8*31, h.Read64(addrSpmY+8*31)^1)
	if err := VerifySpMV(h, m, x); err == nil || !strings.Contains(err.Error(), "y[31]") {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestVerifyPipelineDetectsCorruption(t *testing.T) {
	h := cpu.NewHost(mem.NewBacking())
	w := Pipeline{Seed: 17, Rounds: 3, Chase: 8, Work: 4, Producers: 2, Consumers: 1, PermWords: 64}
	_, perm, err := w.Build(h)
	if err != nil {
		t.Fatal(err)
	}
	toks, results := w.Reference(perm)
	for i := range toks {
		h.Write64(addrPipeTok+uint64(i)*8, toks[i])
		h.Write64(addrPipeRes+uint64(i)*8, results[i])
	}
	if err := VerifyPipeline(h, perm, w); err != nil {
		t.Fatalf("perfect run rejected: %v", err)
	}
	h.Write64(addrPipeRes+8*2, h.Read64(addrPipeRes+8*2)+1)
	if err := VerifyPipeline(h, perm, w); err == nil || !strings.Contains(err.Error(), "result[2]") {
		t.Fatalf("corruption not detected: %v", err)
	}
	// Token corruption is a distinct failure (the handoff itself broke).
	h2 := cpu.NewHost(mem.NewBacking())
	if _, _, err := w.Build(h2); err != nil {
		t.Fatal(err)
	}
	for i := range toks {
		h2.Write64(addrPipeTok+uint64(i)*8, toks[i])
		h2.Write64(addrPipeRes+uint64(i)*8, results[i])
	}
	h2.Write64(addrPipeTok+0, toks[0]+1)
	if err := VerifyPipeline(h2, perm, w); err == nil || !strings.Contains(err.Error(), "token[0]") {
		t.Fatalf("token corruption not detected: %v", err)
	}
}

func TestVerifyGUPSDetectsCorruption(t *testing.T) {
	h := cpu.NewHost(mem.NewBacking())
	w := GUPS{Seed: 19, Updates: 6, WindowsPerWarp: 4, Blocks: 2, WarpsPerBlock: 1}
	if _, err := w.Build(h); err != nil {
		t.Fatal(err)
	}
	for j, v := range w.Reference() {
		h.Write64(addrGupsTable+uint64(j)*8, v)
	}
	if err := VerifyGUPS(h, w); err != nil {
		t.Fatalf("perfect run rejected: %v", err)
	}
	h.Write64(addrGupsTable+8*100, h.Read64(addrGupsTable+8*100)^2)
	if err := VerifyGUPS(h, w); err == nil || !strings.Contains(err.Error(), "table[100]") {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestSparseWorkloadValidation(t *testing.T) {
	h := cpu.NewHost(mem.NewBacking())
	if _, _, err := (BFS{Vertices: 0, AvgDeg: 1, Blocks: 1, WarpsPerBlock: 1}).Build(h); err == nil {
		t.Error("BFS accepted zero vertices")
	}
	if _, _, _, err := (SpMV{Rows: 10, NnzPerRow: 0, Blocks: 1, WarpsPerBlock: 1}).Build(h); err == nil {
		t.Error("SpMV accepted zero nnz")
	}
	if _, _, err := (Pipeline{Rounds: 1, Chase: 1, Work: 1, Producers: 1, Consumers: 0, PermWords: 4}).Build(h); err == nil {
		t.Error("pipeline accepted zero consumers")
	}
	if _, err := (GUPS{Updates: 1, WindowsPerWarp: 3, Blocks: 1, WarpsPerBlock: 1}).Build(h); err == nil {
		t.Error("GUPS accepted non-power-of-two partition")
	}
}

// TestRegistrySchemaMatchesConstructors: every entry's Small overrides
// name real schema parameters, and defaults resolve through New without
// error (the schema and the constructors cannot drift apart).
func TestRegistrySchemaMatchesConstructors(t *testing.T) {
	reg := Builtins()
	for _, name := range reg.Names() {
		e, _ := reg.Lookup(name)
		if _, err := e.Build(nil); err != nil {
			t.Errorf("%s: defaults do not construct: %v", name, err)
		}
		if _, err := e.BuildSmall(nil); err != nil {
			t.Errorf("%s: Small overrides do not construct: %v", name, err)
		}
	}
}

// TestValuesUint64ParsesHex pins the seed-parameter encoding: the schema
// defaults are written with 0x prefixes, and a hex-prefixed value must
// parse as hex (a regression here silently runs registry workloads on
// different seeds than the same-named programmatic constructors).
func TestValuesUint64ParsesHex(t *testing.T) {
	for in, want := range map[string]uint64{
		"0x9199": 0x9199, "0xC0FFEE": 0xC0FFEE, "123": 123,
	} {
		got, err := Values{"seed": in}.Uint64("seed")
		if err != nil || got != want {
			t.Errorf("Uint64(%q) = %#x, %v; want %#x", in, got, err, want)
		}
	}
	if _, err := (Values{"seed": "xyz"}).Uint64("seed"); err == nil {
		t.Error("non-numeric seed accepted")
	}
}
