package workloads

import (
	"fmt"

	"gsi/internal/cpu"
	"gsi/internal/gpu"
	"gsi/internal/isa"
)

// SpMV is sparse matrix-vector multiplication in CSR form: each warp owns
// a contiguous row range (the shared WarpChunk convention) and streams its
// rows' values and column indices while gathering x[col] through an
// indirect load per nonzero. The value/index streams prefetch well but the
// gathers scatter across the whole vector, so the breakdown is dominated
// by memory data stalls split between the L2 and main memory — the classic
// streaming-with-indirection signature, with no synchronization at all.
type SpMV struct {
	// Seed drives deterministic matrix and vector generation.
	Seed uint64
	// Rows is the matrix dimension (square: columns = rows).
	Rows int
	// NnzPerRow is the mean nonzeros per row (drawn uniformly from
	// [1, 2*NnzPerRow+1]).
	NnzPerRow int
	// Blocks and WarpsPerBlock size the worker population; rows are
	// chunked over Blocks*WarpsPerBlock warps.
	Blocks        int
	WarpsPerBlock int
}

// DefaultSpMV sizes the workload for the 15-SM system.
func DefaultSpMV(rows int) SpMV {
	return SpMV{Seed: 0x59A7, Rows: rows, NnzPerRow: 8, Blocks: 15, WarpsPerBlock: 8}
}

// Matrix is a CSR sparse matrix with 64-bit integer values (arithmetic is
// wrap-around, matching the GPU's ALU).
type Matrix struct {
	RowPtr []uint64 // len rows+1
	Col    []uint64
	Val    []uint64
}

// GenMatrix synthesizes a seeded CSR matrix with the given shape.
func GenMatrix(seed uint64, rows, nnzPerRow int) *Matrix {
	m := &Matrix{RowPtr: make([]uint64, 1, rows+1)}
	for r := 0; r < rows; r++ {
		nnz := 1 + int(isa.Mix64(seed^uint64(r))%uint64(2*nnzPerRow+1))
		for e := 0; e < nnz; e++ {
			h := isa.Mix64(seed ^ (uint64(r) << 24) ^ uint64(e))
			m.Col = append(m.Col, h%uint64(rows))
			m.Val = append(m.Val, isa.Mix64(h))
		}
		m.RowPtr = append(m.RowPtr, uint64(len(m.Col)))
	}
	return m
}

// Multiply computes y = A*x with wrap-around 64-bit arithmetic using the
// same fused multiply-add the kernel issues (acc = val*x + acc).
func (m *Matrix) Multiply(x []uint64) []uint64 {
	rows := len(m.RowPtr) - 1
	y := make([]uint64, rows)
	for r := 0; r < rows; r++ {
		var acc uint64
		for e := m.RowPtr[r]; e < m.RowPtr[r+1]; e++ {
			acc = m.Val[e]*x[m.Col[e]] + acc
		}
		y[r] = acc
	}
	return y
}

// SpMV kernel registers (rZero/rOne shared, see framework.go).
const (
	rSpRowPB  isa.Reg = 2
	rSpColB   isa.Reg = 3
	rSpValB   isa.Reg = 4
	rSpXB     isa.Reg = 5
	rSpYB     isa.Reg = 6
	rSpRow    isa.Reg = 7
	rSpRowEnd isa.Reg = 8
	rSpE      isa.Reg = 9
	rSpEEnd   isa.Reg = 10
	rSpTmp    isa.Reg = 11
	rSpTmp2   isa.Reg = 12
	rSpAcc    isa.Reg = 13
	rSpC      isa.Reg = 14
	rSpV      isa.Reg = 15
)

// spmvProgram assembles the per-warp row loop.
func spmvProgram() *isa.Program {
	b := isa.NewBuilder("spmv")
	rowLoop := b.NewLabel()
	edgeLoop := b.NewLabel()
	rowDone := b.NewLabel()
	done := b.NewLabel()

	b.Bind(rowLoop)
	b.BGE(rSpRow, rSpRowEnd, done)
	b.MulI(rSpTmp, rSpRow, 8)
	b.Add(rSpTmp, rSpRowPB, rSpTmp)
	b.Ld(rSpE, rSpTmp, 0)
	b.Ld(rSpEEnd, rSpTmp, 8)
	b.MovI(rSpAcc, 0)

	b.Bind(edgeLoop)
	b.BGE(rSpE, rSpEEnd, rowDone)
	b.MulI(rSpTmp, rSpE, 8)
	b.Add(rSpTmp2, rSpColB, rSpTmp)
	b.Ld(rSpC, rSpTmp2, 0) // column index (streaming)
	b.Add(rSpTmp2, rSpValB, rSpTmp)
	b.Ld(rSpV, rSpTmp2, 0) // value (streaming)
	b.MulI(rSpTmp2, rSpC, 8)
	b.Add(rSpTmp2, rSpXB, rSpTmp2)
	b.Ld(rSpC, rSpTmp2, 0) // x[col] (indirect gather)
	b.FMA(rSpAcc, rSpV, rSpC)
	b.AddI(rSpE, rSpE, 1)
	b.Br(edgeLoop)

	b.Bind(rowDone)
	b.MulI(rSpTmp, rSpRow, 8)
	b.Add(rSpTmp, rSpYB, rSpTmp)
	b.St(rSpTmp, 0, rSpAcc)
	b.AddI(rSpRow, rSpRow, 1)
	b.Br(rowLoop)
	b.Bind(done)
	b.Exit()
	return b.MustBuild()
}

// Build writes the matrix and vectors into host memory and returns the
// kernel plus the generated inputs (for verification).
func (w SpMV) Build(h *cpu.Host) (*gpu.Kernel, *Matrix, []uint64, error) {
	if w.Rows < 1 || w.Blocks < 1 || w.WarpsPerBlock < 1 || w.NnzPerRow < 1 {
		return nil, nil, nil, fmt.Errorf("workloads: invalid SpMV %+v", w)
	}
	m := GenMatrix(w.Seed, w.Rows, w.NnzPerRow)
	x := make([]uint64, w.Rows)
	for i := range x {
		x[i] = isa.Mix64(w.Seed ^ 0xF00D ^ uint64(i))
	}
	h.WriteSlice(addrSpmRowPtr, m.RowPtr)
	h.WriteSlice(addrSpmCol, m.Col)
	h.WriteSlice(addrSpmVal, m.Val)
	h.WriteSlice(addrSpmX, x)
	for r := 0; r < w.Rows; r++ {
		h.Write64(addrSpmY+uint64(r)*8, 0)
	}

	warps := w.Blocks * w.WarpsPerBlock
	k := &gpu.Kernel{
		Name:          "spmv",
		Program:       spmvProgram(),
		Blocks:        w.Blocks,
		WarpsPerBlock: w.WarpsPerBlock,
		InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
			InitConsts(regs)
			regs[rSpRowPB] = addrSpmRowPtr
			regs[rSpColB] = addrSpmCol
			regs[rSpValB] = addrSpmVal
			regs[rSpXB] = addrSpmX
			regs[rSpYB] = addrSpmY
			start, end := WarpChunk(w.Rows, warps, block*w.WarpsPerBlock+warp)
			regs[rSpRow] = uint64(start)
			regs[rSpRowEnd] = uint64(end)
		},
	}
	return k, m, x, nil
}

// Instance wraps the parameter block as a runnable workload with its
// functional verification hook attached.
func (w SpMV) Instance() Instance {
	return NewInstance("SpMV", func(h *cpu.Host) (*gpu.Kernel, func(*cpu.Host) error, error) {
		k, m, x, err := w.Build(h)
		if err != nil {
			return nil, nil, err
		}
		verify := func(h *cpu.Host) error { return VerifySpMV(h, m, x) }
		return k, verify, nil
	})
}

// VerifySpMV checks every output word against the reference product.
func VerifySpMV(h *cpu.Host, m *Matrix, x []uint64) error {
	want := m.Multiply(x)
	for r, wv := range want {
		if got := h.Read64(addrSpmY + uint64(r)*8); got != wv {
			return fmt.Errorf("workloads: spmv y[%d] = %#x, want %#x", r, got, wv)
		}
	}
	return nil
}
