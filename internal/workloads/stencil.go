package workloads

import (
	"fmt"

	"gsi/internal/cpu"
	"gsi/internal/gpu"
	"gsi/internal/isa"
	"gsi/internal/scratchpad"
)

// Stencil is a 2D 5-point Jacobi iteration with halo exchange and DMA
// double-buffering: the logical grid (Blocks*Rows interior rows plus fixed
// boundary rows, Width columns with fixed edge columns) is banded across
// co-resident thread blocks. Each block's band lives in its scratchpad as
// two ping-pong planes with ghost rows, bulk-loaded by the DMA engine at
// block start (the pending-DMA stall burst) and bulk-written back at
// kernel end. Every time step each warp copies the ghost rows it alone
// consumes from the global halo slots, updates its interior rows from the
// source plane into the destination plane (wrapping uint64 sums through a
// hash chain), publishes its band-boundary rows to the parity-indexed
// halo slots of the *next* step, and crosses a BFS-style global barrier.
// The workload stresses bulk-transfer/latency overlap (DMA in/out),
// neighbor communication through the L2 (halo stores and loads), and
// barrier synchronization — the structured-grid pattern none of the
// irregular workloads produce.
type Stencil struct {
	// Seed drives the deterministic initial grid fill.
	Seed uint64
	// Width is the column count including the two fixed edge columns; it
	// must be a multiple of 8 so rows are whole cache lines.
	Width int
	// Rows is the interior row count per block; the logical grid has
	// Blocks*Rows interior rows plus the two fixed boundary rows.
	Rows int
	// Steps is the Jacobi time-step count.
	Steps int
	// Blocks bands the grid (one block per SM — the global barrier needs
	// every block co-resident); WarpsPerBlock splits each band's rows.
	Blocks        int
	WarpsPerBlock int
	// Work is the hash-chain length applied to each 5-point sum.
	Work int
}

// DefaultStencil sizes the workload for the 15-SM system: 15 bands of 4
// rows fill under half the 16 KB scratchpad per block.
func DefaultStencil() Stencil {
	return Stencil{Seed: 0x57E9, Width: 64, Rows: 4, Steps: 8,
		Blocks: 15, WarpsPerBlock: 2, Work: 2}
}

// Derived layout: a block's window holds two (Rows+2)-row planes
// back-to-back; halo slots are one row plus a line of padding apart so
// consecutive slots spread across the L2 banks.
func (w Stencil) rowBytes() uint64    { return uint64(w.Width) * 8 }
func (w Stencil) planeBytes() uint64  { return uint64(w.Rows+2) * w.rowBytes() }
func (w Stencil) windowBytes() uint64 { return 2 * w.planeBytes() }
func (w Stencil) haloStride() uint64  { return w.rowBytes() + 64 }

func (w Stencil) windowAddr(b int) uint64 {
	return addrStenGrid + uint64(b)*w.windowBytes()
}

// haloDnAddr is the slot holding block b's last band row (the row its
// down-neighbor reads as its top ghost); b ranges from -1 (the fixed top
// boundary row of the grid) to Blocks-1. p is the step parity the slot
// serves as input.
func (w Stencil) haloDnAddr(b, p int) uint64 {
	return addrStenHaloDn + uint64((b+1)*2+p)*w.haloStride()
}

// haloUpAddr is the slot holding block b's first band row (the up
// neighbor's bottom ghost); b ranges from 0 to Blocks (the fixed bottom
// boundary row).
func (w Stencil) haloUpAddr(b, p int) uint64 {
	return addrStenHaloUp + uint64(b*2+p)*w.haloStride()
}

// globalRow maps a block's plane row index (0 = top ghost, 1..Rows = band,
// Rows+1 = bottom ghost) to the logical grid row.
func (w Stencil) globalRow(b, planeRow int) int { return b*w.Rows + planeRow }

// cellInit is the deterministic initial value of logical grid cell (g, c).
func (w Stencil) cellInit(g, c int) uint64 {
	return isa.Mix64(w.Seed ^ (uint64(g) << 20) ^ uint64(c))
}

// Stencil kernel registers (rZero/rOne shared, see framework.go).
const (
	rStT       isa.Reg = 2
	rStParity  isa.Reg = 3
	rStSrcP    isa.Reg = 4
	rStDstP    isa.Reg = 5
	rStRow0    isa.Reg = 6
	rStRow1    isa.Reg = 7
	rStRow     isa.Reg = 8
	rStC       isa.Reg = 9
	rStA       isa.Reg = 10
	rStVal     isa.Reg = 11
	rStAcc     isa.Reg = 12
	rStHAb     isa.Reg = 13
	rStHBe     isa.Reg = 14
	rStHUpW    isa.Reg = 15
	rStHDnW    isa.Reg = 16
	rStROff    isa.Reg = 17
	rStWOff    isa.Reg = 18
	rStBarCntA isa.Reg = 19
	rStBarGenA isa.Reg = 20
	rStBarTgt  isa.Reg = 21
	rStGenWant isa.Reg = 22
	rStWTot    isa.Reg = 23
	rStOld     isa.Reg = 24
	rStTmp     isa.Reg = 25
	rStTmp2    isa.Reg = 26
)

// emitHaloRowCopy appends a loop over interior columns 1..Width-2 copying
// a row between a global halo slot and a scratchpad plane row: global
// reads feed local ghost stores when toLocal, local boundary-row loads
// feed global halo stores otherwise. rStTmp2 must hold the global row
// base and localOff the plane-row byte offset from the source/destination
// plane base (held in planeBase).
func (w Stencil) emitHaloRowCopy(b *isa.Builder, planeBase isa.Reg, localOff int64, toLocal bool) {
	b.MovI(rStC, 1)
	loop := b.Here()
	done := b.NewLabel()
	b.MovI(rStTmp, int64(w.Width-1))
	b.BGE(rStC, rStTmp, done)
	b.MulI(rStTmp, rStC, 8)
	if toLocal {
		b.Add(rStA, rStTmp2, rStTmp)
		b.Ld(rStVal, rStA, 0)
		b.AddI(rStA, rStTmp, localOff)
		b.Add(rStA, planeBase, rStA)
		b.StL(rStA, 0, rStVal)
	} else {
		b.AddI(rStA, rStTmp, localOff)
		b.Add(rStA, planeBase, rStA)
		b.LdL(rStVal, rStA, 0)
		b.Add(rStA, rStTmp2, rStTmp)
		b.St(rStA, 0, rStVal)
	}
	b.AddI(rStC, rStC, 1)
	b.Br(loop)
	b.Bind(done)
}

// stencilProgram assembles the time-step loop: ghost copies, the 5-point
// update between the ping-pong planes, halo publication, and the global
// barrier.
func (w Stencil) stencilProgram() *isa.Program {
	rowB := int64(w.rowBytes())
	planeB := int64(w.planeBytes())
	haloS := int64(w.haloStride())
	b := isa.NewBuilder("stencil")
	iterLoop := b.NewLabel()
	barrier := b.NewLabel()
	spin := b.NewLabel()
	done := b.NewLabel()
	noTop := b.NewLabel()
	noBot := b.NewLabel()
	rowLoop := b.NewLabel()
	rowsDone := b.NewLabel()
	colLoop := b.NewLabel()
	colsDone := b.NewLabel()
	noPubTop := b.NewLabel()
	noPubBot := b.NewLabel()

	// DMA warm-up: touch the pad and consume the value immediately. The
	// load parks until the bulk-in completes while the dependent add
	// freezes this warp with its registers intact (a parked access is
	// replayed with the warp's *current* registers, so the kernel must
	// never let a mapped store park with address arithmetic running
	// ahead of it). Every later mapped access finds the DMA finished.
	b.LdL(rStVal, rZero, 0)
	b.Add(rStVal, rStVal, rZero)

	b.MovI(rStT, 0)
	b.Bind(iterLoop)
	b.MovI(rStTmp, int64(w.Steps))
	b.BGE(rStT, rStTmp, done)
	// Parity selects the source plane and the halo read slots; the
	// destination plane and halo write slots are the other parity.
	b.AndI(rStParity, rStT, 1)
	b.MulI(rStSrcP, rStParity, planeB)
	b.MovI(rStDstP, planeB)
	b.Sub(rStDstP, rStDstP, rStSrcP)
	b.MulI(rStROff, rStParity, haloS)
	b.MovI(rStWOff, haloS)
	b.Sub(rStWOff, rStWOff, rStROff)
	// Warps with no rows only keep the barrier count.
	b.BEQ(rStRow0, rStRow1, barrier)

	// Ghost copies: each boundary-owning warp fetches exactly the ghost
	// row it alone consumes, so no intra-block synchronization is needed.
	b.BNE(rStRow0, rOne, noTop)
	b.Add(rStTmp2, rStHAb, rStROff)
	w.emitHaloRowCopy(b, rStSrcP, 0, true)
	b.Bind(noTop)
	b.MovI(rStTmp, int64(w.Rows+1))
	b.BNE(rStRow1, rStTmp, noBot)
	b.Add(rStTmp2, rStHBe, rStROff)
	w.emitHaloRowCopy(b, rStSrcP, int64(w.Rows+1)*rowB, true)
	b.Bind(noBot)

	// 5-point update: dst[r][c] = hash^Work(sum of src neighborhood).
	b.Mov(rStRow, rStRow0)
	b.Bind(rowLoop)
	b.BGE(rStRow, rStRow1, rowsDone)
	b.MovI(rStC, 1)
	b.Bind(colLoop)
	b.MovI(rStTmp, int64(w.Width-1))
	b.BGE(rStC, rStTmp, colsDone)
	b.MulI(rStA, rStRow, rowB)
	b.Add(rStA, rStSrcP, rStA)
	b.MulI(rStTmp, rStC, 8)
	b.Add(rStA, rStA, rStTmp)
	b.LdL(rStAcc, rStA, -rowB)
	b.LdL(rStVal, rStA, rowB)
	b.Add(rStAcc, rStAcc, rStVal)
	b.LdL(rStVal, rStA, -8)
	b.Add(rStAcc, rStAcc, rStVal)
	b.LdL(rStVal, rStA, 8)
	b.Add(rStAcc, rStAcc, rStVal)
	b.LdL(rStVal, rStA, 0)
	b.Add(rStAcc, rStAcc, rStVal)
	emitHashChain(b, rStAcc, w.Work)
	b.Sub(rStA, rStA, rStSrcP)
	b.Add(rStA, rStA, rStDstP)
	b.StL(rStA, 0, rStAcc)
	b.AddI(rStC, rStC, 1)
	b.Br(colLoop)
	b.Bind(colsDone)
	b.AddI(rStRow, rStRow, 1)
	b.Br(rowLoop)
	b.Bind(rowsDone)

	// Publish the band-boundary rows of the destination plane into the
	// next step's halo slots (the other parity).
	b.BNE(rStRow0, rOne, noPubTop)
	b.Add(rStTmp2, rStHUpW, rStWOff)
	w.emitHaloRowCopy(b, rStDstP, rowB, false)
	b.Bind(noPubTop)
	b.MovI(rStTmp, int64(w.Rows+1))
	b.BNE(rStRow1, rStTmp, noPubBot)
	b.Add(rStTmp2, rStHDnW, rStWOff)
	w.emitHaloRowCopy(b, rStDstP, int64(w.Rows)*rowB, false)
	b.Bind(noPubBot)

	// Global barrier, the BFS idiom: arrive with release (flushing the
	// halo stores), last arriver publishes the generation, everyone
	// spins with acquire (self-invalidating, so next step's halo reads
	// are fresh).
	b.Bind(barrier)
	b.Add(rStBarTgt, rStBarTgt, rStWTot)
	b.AddI(rStGenWant, rStGenWant, 1)
	b.AtomAdd(rStOld, rStBarCntA, rOne, isa.Release)
	b.AddI(rStTmp, rStOld, 1)
	b.BNE(rStTmp, rStBarTgt, spin)
	b.AtomAddNR(rStBarGenA, rOne, isa.Release)
	b.Bind(spin)
	b.AtomAdd(rStOld, rStBarGenA, rZero, isa.Acquire)
	b.BLT(rStOld, rStGenWant, spin)
	b.AddI(rStT, rStT, 1)
	b.Br(iterLoop)
	b.Bind(done)
	b.Exit()
	return b.MustBuild()
}

// validate checks the parameter block's internal consistency.
func (w Stencil) validate() error {
	switch {
	case w.Width < 8 || w.Width%8 != 0:
		return fmt.Errorf("workloads: stencil width %d must be a multiple of 8 (whole cache lines)", w.Width)
	case w.Rows < 1 || w.Steps < 1 || w.Blocks < 1 || w.WarpsPerBlock < 1 || w.Work < 0:
		return fmt.Errorf("workloads: invalid stencil %+v", w)
	case w.windowBytes() > 16<<10:
		return fmt.Errorf("workloads: stencil band window %d B exceeds the 16 KB scratchpad", w.windowBytes())
	case uint64(w.Blocks)*w.windowBytes() > addrStenHaloDn-addrStenGrid:
		return fmt.Errorf("workloads: stencil blocks %d overflow the band region", w.Blocks)
	case uint64(w.Blocks+1)*2*w.haloStride() > addrStenHaloUp-addrStenHaloDn:
		return fmt.Errorf("workloads: stencil blocks %d overflow the halo region", w.Blocks)
	}
	return nil
}

// Build writes the band windows and halo slots into host memory and
// returns the kernel.
func (w Stencil) Build(h *cpu.Host) (*gpu.Kernel, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	// Band windows: both planes start as the initial grid (the plane
	// written first still exposes its untouched edge columns and ghost
	// rows to the write-back, so they must be initialized identically).
	for b := 0; b < w.Blocks; b++ {
		for p := 0; p < 2; p++ {
			for pr := 0; pr <= w.Rows+1; pr++ {
				base := w.windowAddr(b) + uint64(p)*w.planeBytes() + uint64(pr)*w.rowBytes()
				g := w.globalRow(b, pr)
				for c := 0; c < w.Width; c++ {
					h.Write64(base+uint64(c)*8, w.cellInit(g, c))
				}
			}
		}
	}
	// Halo slots, both parities: block b's boundary rows at their initial
	// values (parity 0 feeds step 0; parity 1 is overwritten before its
	// first read except for the fixed boundary-row slots, which are never
	// written at all).
	for p := 0; p < 2; p++ {
		for b := -1; b < w.Blocks; b++ {
			g := w.globalRow(b, w.Rows) // block b's last band row
			for c := 0; c < w.Width; c++ {
				h.Write64(w.haloDnAddr(b, p)+uint64(c)*8, w.cellInit(g, c))
			}
		}
		for b := 0; b <= w.Blocks; b++ {
			g := w.globalRow(b, 1) // block b's first band row
			for c := 0; c < w.Width; c++ {
				h.Write64(w.haloUpAddr(b, p)+uint64(c)*8, w.cellInit(g, c))
			}
		}
	}
	h.Write64(addrStenBarCnt, 0)
	h.Write64(addrStenBarGen, 0)

	total := uint64(w.Blocks * w.WarpsPerBlock)
	k := &gpu.Kernel{
		Name:          "stencil",
		Program:       w.stencilProgram(),
		Blocks:        w.Blocks,
		WarpsPerBlock: w.WarpsPerBlock,
		Coresident:    true,
		Local:         gpu.LocalScratchDMA,
		LocalMap: func(block int) scratchpad.Mapping {
			return scratchpad.Mapping{
				GlobalBase: w.windowAddr(block), LocalBase: 0, Bytes: w.windowBytes(),
			}
		},
		InitRegs: func(block, warp int, regs *[isa.NumRegs]uint64) {
			InitConsts(regs)
			start, end := WarpChunk(w.Rows, w.WarpsPerBlock, warp)
			regs[rStRow0] = uint64(1 + start)
			regs[rStRow1] = uint64(1 + end)
			regs[rStHAb] = w.haloDnAddr(block-1, 0)
			regs[rStHBe] = w.haloUpAddr(block+1, 0)
			regs[rStHUpW] = w.haloUpAddr(block, 0)
			regs[rStHDnW] = w.haloDnAddr(block, 0)
			regs[rStBarCntA] = addrStenBarCnt
			regs[rStBarGenA] = addrStenBarGen
			regs[rStWTot] = total
		},
	}
	return k, nil
}

// stencilState is the CPU replay's mirror of the workload's memory: one
// window image per block and the halo slot arrays, indexed exactly like
// the device layout.
type stencilState struct {
	win    [][]uint64 // [block][2 planes * (Rows+2) rows * Width]
	haloDn [][]uint64 // [(b+1)*2+p][Width]
	haloUp [][]uint64 // [b*2+p][Width]
}

// Reference replays the kernel's semantics step by step — ghost copies,
// 5-point updates, halo publication — and returns the exact final memory
// image the hardware run must produce.
func (w Stencil) Reference() *stencilState {
	width, rows := w.Width, w.Rows
	planeWords := (rows + 2) * width
	s := &stencilState{
		win:    make([][]uint64, w.Blocks),
		haloDn: make([][]uint64, (w.Blocks+1)*2),
		haloUp: make([][]uint64, (w.Blocks+1)*2),
	}
	for b := 0; b < w.Blocks; b++ {
		s.win[b] = make([]uint64, 2*planeWords)
		for p := 0; p < 2; p++ {
			for pr := 0; pr <= rows+1; pr++ {
				for c := 0; c < width; c++ {
					s.win[b][p*planeWords+pr*width+c] = w.cellInit(w.globalRow(b, pr), c)
				}
			}
		}
	}
	for p := 0; p < 2; p++ {
		for b := -1; b < w.Blocks; b++ {
			row := make([]uint64, width)
			for c := range row {
				row[c] = w.cellInit(w.globalRow(b, rows), c)
			}
			s.haloDn[(b+1)*2+p] = row
		}
		for b := 0; b <= w.Blocks; b++ {
			row := make([]uint64, width)
			for c := range row {
				row[c] = w.cellInit(w.globalRow(b, 1), c)
			}
			s.haloUp[b*2+p] = row
		}
	}
	cell := func(b, plane, pr, c int) *uint64 {
		return &s.win[b][plane*planeWords+pr*width+c]
	}
	for t := 0; t < w.Steps; t++ {
		p := t & 1
		src, dst := p, 1-p
		for b := 0; b < w.Blocks; b++ {
			for c := 1; c < width-1; c++ {
				*cell(b, src, 0, c) = s.haloDn[b*2+p][c] // (b-1)'s down slot
				*cell(b, src, rows+1, c) = s.haloUp[(b+1)*2+p][c]
			}
		}
		for b := 0; b < w.Blocks; b++ {
			for pr := 1; pr <= rows; pr++ {
				for c := 1; c < width-1; c++ {
					sum := *cell(b, src, pr-1, c) + *cell(b, src, pr+1, c) +
						*cell(b, src, pr, c-1) + *cell(b, src, pr, c+1) +
						*cell(b, src, pr, c)
					*cell(b, dst, pr, c) = HashChain(sum, w.Work)
				}
			}
		}
		for b := 0; b < w.Blocks; b++ {
			for c := 1; c < width-1; c++ {
				s.haloUp[b*2+dst][c] = *cell(b, dst, 1, c)
				s.haloDn[(b+1)*2+dst][c] = *cell(b, dst, rows, c)
			}
		}
	}
	return s
}

// Instance wraps the parameter block as a runnable workload with its
// functional verification hook attached.
func (w Stencil) Instance() Instance {
	return NewInstance("stencil", func(h *cpu.Host) (*gpu.Kernel, func(*cpu.Host) error, error) {
		k, err := w.Build(h)
		if err != nil {
			return nil, nil, err
		}
		return k, func(h *cpu.Host) error { return VerifyStencil(h, w) }, nil
	})
}

// VerifyStencil compares the post-run memory against the CPU replay: every
// word of every band window (the DMA write-back image, both planes, ghost
// rows and edge columns included), every halo slot, and the barrier words
// (Steps generations with every warp arriving at each).
func VerifyStencil(h *cpu.Host, w Stencil) error {
	ref := w.Reference()
	planeWords := (w.Rows + 2) * w.Width
	for b := 0; b < w.Blocks; b++ {
		for i, want := range ref.win[b] {
			if got := h.Read64(w.windowAddr(b) + uint64(i)*8); got != want {
				p, r := i/planeWords, (i%planeWords)/w.Width
				return fmt.Errorf("workloads: stencil block %d plane %d row %d col %d = %#x, want %#x",
					b, p, r, i%w.Width, got, want)
			}
		}
	}
	for p := 0; p < 2; p++ {
		for b := -1; b < w.Blocks; b++ {
			for c := 0; c < w.Width; c++ {
				want := ref.haloDn[(b+1)*2+p][c]
				if got := h.Read64(w.haloDnAddr(b, p) + uint64(c)*8); got != want {
					return fmt.Errorf("workloads: stencil haloDn[b=%d p=%d c=%d] = %#x, want %#x", b, p, c, got, want)
				}
			}
		}
		for b := 0; b <= w.Blocks; b++ {
			for c := 0; c < w.Width; c++ {
				want := ref.haloUp[b*2+p][c]
				if got := h.Read64(w.haloUpAddr(b, p) + uint64(c)*8); got != want {
					return fmt.Errorf("workloads: stencil haloUp[b=%d p=%d c=%d] = %#x, want %#x", b, p, c, got, want)
				}
			}
		}
	}
	if gen := h.Read64(addrStenBarGen); gen != uint64(w.Steps) {
		return fmt.Errorf("workloads: stencil ran %d steps, want %d", gen, w.Steps)
	}
	warps := uint64(w.Blocks * w.WarpsPerBlock)
	if cnt := h.Read64(addrStenBarCnt); cnt != uint64(w.Steps)*warps {
		return fmt.Errorf("workloads: stencil barrier count %d, want %d arrivals", cnt, uint64(w.Steps)*warps)
	}
	return nil
}
