package workloads

import (
	"testing"
	"testing/quick"
)

func TestGenTreeExactSize(t *testing.T) {
	for _, target := range []int{1, 2, 10, 100, 1000} {
		tr := GenTree(1, target)
		if tr.Nodes() != target {
			t.Errorf("GenTree(1, %d) has %d nodes", target, tr.Nodes())
		}
	}
}

func TestGenTreeDeterministic(t *testing.T) {
	a, b := GenTree(7, 500), GenTree(7, 500)
	for i := range a.ChildCount {
		if a.ChildCount[i] != b.ChildCount[i] || a.ChildBase[i] != b.ChildBase[i] {
			t.Fatalf("trees differ at node %d", i)
		}
	}
	c := GenTree(8, 500)
	same := true
	for i := range a.ChildCount {
		if a.ChildCount[i] != c.ChildCount[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical trees")
	}
}

// TestGenTreeWellFormed: every non-root node is the child of exactly one
// parent, ids are contiguous, and child ranges never overlap.
func TestGenTreeWellFormed(t *testing.T) {
	prop := func(seed uint64, sz uint16) bool {
		target := int(sz%2000) + 1
		tr := GenTree(seed, target)
		if tr.Nodes() != target {
			return false
		}
		parentCount := make([]int, target)
		for i := 0; i < target; i++ {
			base, count := tr.ChildBase[i], tr.ChildCount[i]
			for c := uint64(0); c < count; c++ {
				child := base + c
				if child >= uint64(target) || child == 0 {
					return false
				}
				parentCount[child]++
			}
		}
		for i := 1; i < target; i++ {
			if parentCount[i] != 1 {
				return false
			}
		}
		return parentCount[0] == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGenTreeUnbalanced(t *testing.T) {
	// Child counts must vary (the benchmark's point): both leaves and
	// multi-child nodes exist in a non-trivial tree.
	tr := GenTree(0xC0FFEE, 1000)
	counts := map[uint64]int{}
	for _, c := range tr.ChildCount {
		counts[c]++
	}
	if counts[0] == 0 || counts[2]+counts[3] == 0 {
		t.Fatalf("degenerate tree: count histogram %v", counts)
	}
	if tr.MaxDepth() < 5 {
		t.Fatalf("tree too shallow: depth %d", tr.MaxDepth())
	}
}

func TestSeedFrontier(t *testing.T) {
	tr := GenTree(0xC0FFEE, 1000)
	seed := tr.SeedFrontier(64)
	if len(seed.Frontier) < 64 {
		t.Fatalf("frontier %d < requested 64", len(seed.Frontier))
	}
	// Host-processed nodes are exactly ids 0..HostProcessed-1 (BFS in
	// creation order), and the frontier is disjoint from them.
	for _, n := range seed.Frontier {
		if n < seed.HostProcessed {
			t.Fatalf("frontier node %d already host-processed", n)
		}
	}
	// Conservation: processed + frontier + unexpanded-descendants = all.
	// At minimum: frontier nodes are distinct.
	seen := map[uint64]bool{}
	for _, n := range seed.Frontier {
		if seen[n] {
			t.Fatalf("frontier node %d duplicated", n)
		}
		seen[n] = true
	}
}

func TestSeedFrontierExhaustsTinyTree(t *testing.T) {
	tr := GenTree(3, 2)
	seed := tr.SeedFrontier(1000)
	if int(seed.HostProcessed)+len(seed.Frontier) > tr.Nodes() {
		t.Fatalf("processed %d + frontier %d exceeds %d nodes",
			seed.HostProcessed, len(seed.Frontier), tr.Nodes())
	}
}

func TestProgramsBuild(t *testing.T) {
	// The kernels must assemble without label or register errors for a
	// range of work/FMA settings.
	for _, work := range []int{0, 1, 8, 32} {
		for _, fmas := range []int{0, 4} {
			if p := utsProgram(work, fmas); p.Len() == 0 {
				t.Fatal("empty UTS program")
			}
			if p := utsdProgram(work, fmas); p.Len() == 0 {
				t.Fatal("empty UTSD program")
			}
		}
	}
	for _, fmas := range []int{0, 4} {
		if p := implicitScratchProgram(fmas); p.Len() == 0 {
			t.Fatal("empty implicit program")
		}
		if p := implicitLocalProgram("x", fmas); p.Len() == 0 {
			t.Fatal("empty local program")
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, _, _, err := (UTS{}).Build(nil); err == nil {
		t.Error("zero UTS accepted")
	}
	if _, _, _, err := (UTSD{Nodes: 10, Blocks: 1, WarpsPerBlock: 1, LQCap: 3}).Build(nil); err == nil {
		t.Error("non-power-of-two LQCap accepted")
	}
	if _, err := (Implicit{}).Build(0, nil); err == nil {
		t.Error("zero implicit accepted")
	}
	if _, err := (Implicit{Warps: 3, DataBytes: 16 << 10}).Build(0, nil); err == nil {
		t.Error("non-divisible chunk accepted")
	}
}

func TestApplyFMA(t *testing.T) {
	if got := applyFMA(2, 1); got != 6 {
		t.Fatalf("applyFMA(2,1) = %d, want 6", got)
	}
	if got := applyFMA(2, 2); got != 42 {
		t.Fatalf("applyFMA(2,2) = %d, want 42", got)
	}
	if got := applyFMA(5, 0); got != 5 {
		t.Fatalf("applyFMA(5,0) = %d, want 5", got)
	}
}
