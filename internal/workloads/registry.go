package workloads

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"gsi/internal/gpu"
	"gsi/internal/sim"
)

// Param is one entry of a workload's parameter schema: a name, a help
// string, and the default-scale value in string form.
type Param struct {
	Name    string
	Help    string
	Default string
}

// Values holds parameter overrides by name (string forms, as parsed from
// a CLI or config file).
type Values map[string]string

// Entry describes one registered workload: its constructor, its parameter
// schema with default-scale values, the SmallScale overrides the test
// suites run at, and an optional system-shaping hook.
type Entry struct {
	// Name is the registry key (lower case).
	Name string
	// Summary is a one-line description for listings.
	Summary string
	// Params is the parameter schema; defaults are the default scale.
	Params []Param
	// Small overrides a subset of parameters for SmallScale runs (unit
	// tests, golden figures, engine diffs).
	Small Values
	// New constructs an Instance from fully resolved values (every
	// schema parameter present).
	New func(v Values) (Instance, error)
	// Tune, when non-nil, shapes the base system configuration for this
	// workload (e.g. the implicit microbenchmark's single-SM system).
	// It sees the resolved values, so parameters may inform the shape.
	Tune func(v Values, cfg sim.Config) sim.Config
}

// Registry maps workload names to entries, preserving registration order
// for deterministic listings.
type Registry struct {
	order  []string
	byName map[string]*Entry
}

// NewRegistry builds a registry from entries; duplicate names panic.
func NewRegistry(entries ...*Entry) *Registry {
	r := &Registry{byName: make(map[string]*Entry, len(entries))}
	for _, e := range entries {
		name := strings.ToLower(e.Name)
		if _, dup := r.byName[name]; dup {
			panic(fmt.Sprintf("workloads: duplicate registry entry %q", name))
		}
		r.byName[name] = e
		r.order = append(r.order, name)
	}
	return r
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string { return append([]string(nil), r.order...) }

// Describe renders the registry table — every name, summary, parameter
// schema with default-scale values, and the SmallScale overrides the test
// suites run at. Both CLIs' -list-workloads print this.
func (r *Registry) Describe(w io.Writer) {
	for _, name := range r.order {
		e := r.byName[name]
		fmt.Fprintf(w, "%-10s %s\n", name, e.Summary)
		for _, p := range e.Params {
			small := ""
			if v, ok := e.Small[p.Name]; ok {
				small = fmt.Sprintf("  (small scale: %s)", v)
			}
			fmt.Fprintf(w, "    %-12s %-52s default %s%s\n", p.Name, p.Help, p.Default, small)
		}
	}
}

// Lookup finds an entry by name (case-insensitive).
func (r *Registry) Lookup(name string) (*Entry, bool) {
	e, ok := r.byName[strings.ToLower(strings.TrimSpace(name))]
	return e, ok
}

// Defaults returns the schema's default-scale values.
func (e *Entry) Defaults() Values {
	v := make(Values, len(e.Params))
	for _, p := range e.Params {
		v[p.Name] = p.Default
	}
	return v
}

// resolve merges override layers over the defaults, rejecting overrides
// that name no schema parameter.
func (e *Entry) resolve(layers ...Values) (Values, error) {
	v := e.Defaults()
	for _, layer := range layers {
		for name, val := range layer {
			if _, ok := v[name]; !ok {
				known := make([]string, 0, len(e.Params))
				for _, p := range e.Params {
					known = append(known, p.Name)
				}
				sort.Strings(known)
				return nil, fmt.Errorf("workloads: %s has no parameter %q (have %s)",
					e.Name, name, strings.Join(known, ", "))
			}
			v[name] = val
		}
	}
	return v, nil
}

// Build constructs the workload at default scale with the given overrides
// (nil for pure defaults).
func (e *Entry) Build(overrides Values) (Instance, error) {
	v, err := e.resolve(overrides)
	if err != nil {
		return nil, err
	}
	return e.New(v)
}

// BuildSmall constructs the workload at SmallScale (the entry's Small
// overrides, then the caller's) — the sizing the test suites run at.
func (e *Entry) BuildSmall(overrides Values) (Instance, error) {
	v, err := e.resolve(e.Small, overrides)
	if err != nil {
		return nil, err
	}
	return e.New(v)
}

// TuneSystem applies the entry's system-shaping hook (identity when the
// entry has none) at the given scale.
func (e *Entry) TuneSystem(small bool, overrides Values, cfg sim.Config) (sim.Config, error) {
	if e.Tune == nil {
		return cfg, nil
	}
	layers := []Values{overrides}
	if small {
		layers = []Values{e.Small, overrides}
	}
	v, err := e.resolve(layers...)
	if err != nil {
		return cfg, err
	}
	return e.Tune(v, cfg), nil
}

// Int parses an integer parameter.
func (v Values) Int(name string) (int, error) {
	s, ok := v[name]
	if !ok {
		return 0, fmt.Errorf("workloads: missing parameter %q", name)
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("workloads: parameter %s=%q is not an integer", name, s)
	}
	return n, nil
}

// Uint64 parses a uint64 parameter (hex with 0x prefix or decimal).
func (v Values) Uint64(name string) (uint64, error) {
	s, ok := v[name]
	if !ok {
		return 0, fmt.Errorf("workloads: missing parameter %q", name)
	}
	n, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("workloads: parameter %s=%q is not a uint64", name, s)
	}
	return n, nil
}

// Str returns a string parameter.
func (v Values) Str(name string) (string, error) {
	s, ok := v[name]
	if !ok {
		return "", fmt.Errorf("workloads: missing parameter %q", name)
	}
	return strings.TrimSpace(s), nil
}

// ints parses a list of integer parameters in one call.
func (v Values) ints(names ...string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		x, err := v.Int(n)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}

// Builtins returns the registry of every workload this package ships:
// the paper's three benchmarks plus the sparse/bursty additions. Both
// CLIs and the sweep grid's workload axis drive this table.
func Builtins() *Registry {
	return NewRegistry(
		utsEntry(), utsdEntry(), implicitEntry(),
		bfsEntry(), spmvEntry(), pipelineEntry(), gupsEntry(),
		stencilEntry(), stealEntry(),
	)
}

func utsEntry() *Entry {
	return &Entry{
		Name:    "uts",
		Summary: "unbalanced tree search on one global task queue (sync-stall dominated, case study 1)",
		Params: []Param{
			{"nodes", "tree size", "6000"},
			{"frontier", "host pre-expansion width", "120"},
			{"blocks", "thread blocks (one per SM)", "15"},
			{"warps", "warps per block", "8"},
			{"work", "hash chain length per node", "16"},
			{"fmas", "FMA chain length per node", "4"},
			{"seed", "tree generation seed", "0xC0FFEE"},
		},
		Small: Values{"nodes": "250", "frontier": "60"},
		New: func(v Values) (Instance, error) {
			n, err := v.ints("nodes", "frontier", "blocks", "warps", "work", "fmas")
			if err != nil {
				return nil, err
			}
			seed, err := v.Uint64("seed")
			if err != nil {
				return nil, err
			}
			return UTS{Seed: seed, Nodes: n[0], FrontierMin: n[1], Blocks: n[2],
				WarpsPerBlock: n[3], Work: n[4], FMAs: n[5]}.Instance(), nil
		},
	}
}

func utsdEntry() *Entry {
	return &Entry{
		Name:    "utsd",
		Summary: "decentralized tree search with per-SM local queues (locality case, figure 6.2)",
		Params: []Param{
			{"nodes", "tree size", "6000"},
			{"frontier", "host pre-expansion width", "120"},
			{"blocks", "thread blocks (one per SM)", "15"},
			{"warps", "warps per block", "8"},
			{"work", "hash chain length per node", "16"},
			{"fmas", "FMA chain length per node", "4"},
			{"lqcap", "per-SM ring capacity (power of two)", "128"},
			{"seed", "tree generation seed", "0xC0FFEE"},
		},
		Small: Values{"nodes": "250", "frontier": "60"},
		New: func(v Values) (Instance, error) {
			n, err := v.ints("nodes", "frontier", "blocks", "warps", "work", "fmas", "lqcap")
			if err != nil {
				return nil, err
			}
			seed, err := v.Uint64("seed")
			if err != nil {
				return nil, err
			}
			return UTSD{Seed: seed, Nodes: n[0], FrontierMin: n[1], Blocks: n[2],
				WarpsPerBlock: n[3], Work: n[4], FMAs: n[5], LQCap: n[6]}.Instance(), nil
		},
	}
}

func implicitEntry() *Entry {
	return &Entry{
		Name:    "implicit",
		Summary: "streaming microbenchmark over scratchpad/DMA/stash local memory (case study 2)",
		Params: []Param{
			{"local", "local-memory organization: scratchpad | dma | stash", "scratchpad"},
			{"warps", "warp count (memory-level parallelism)", "32"},
			{"databytes", "array size in bytes", "16384"},
			{"fmas", "FMA chain per element group", "4"},
			{"rounds", "compute passes over the array", "2"},
			{"seed", "data fill seed", "0xD17A"},
		},
		New: func(v Values) (Instance, error) {
			kind, err := parseLocalKind(v)
			if err != nil {
				return nil, err
			}
			n, err := v.ints("warps", "databytes", "fmas", "rounds")
			if err != nil {
				return nil, err
			}
			seed, err := v.Uint64("seed")
			if err != nil {
				return nil, err
			}
			return Implicit{Seed: seed, Warps: n[0], DataBytes: n[1],
				FMAs: n[2], Rounds: n[3]}.Instance(kind), nil
		},
		Tune: func(v Values, cfg sim.Config) sim.Config {
			// Case study 2's machine: one SM holding the whole block.
			cfg.NumSMs = 1
			cfg.WarpsPerSM = 32
			if warps, err := v.Int("warps"); err == nil && warps > 0 && warps < cfg.WarpsPerSM {
				cfg.WarpsPerSM = warps
			}
			return cfg
		},
	}
}

func parseLocalKind(v Values) (gpu.LocalKind, error) {
	s, err := v.Str("local")
	if err != nil {
		return gpu.LocalNone, err
	}
	switch strings.ToLower(s) {
	case "scratchpad", "scratch":
		return gpu.LocalScratch, nil
	case "dma", "scratchpad+dma":
		return gpu.LocalScratchDMA, nil
	case "stash":
		return gpu.LocalStash, nil
	}
	return gpu.LocalNone, fmt.Errorf("workloads: unknown local memory %q (want scratchpad, dma, or stash)", s)
}

func bfsEntry() *Entry {
	return &Entry{
		Name:    "bfs",
		Summary: "level-synchronized BFS over a CSR graph (irregular gathers, frontier atomics, global barriers)",
		Params: []Param{
			{"vertices", "graph size", "4000"},
			{"avgdeg", "mean out-degree", "4"},
			{"blocks", "thread blocks (must all be co-resident)", "15"},
			{"warps", "warps per block", "4"},
			{"seed", "graph generation seed", "0xB4B4"},
		},
		Small: Values{"vertices": "300", "blocks": "4", "warps": "2"},
		New: func(v Values) (Instance, error) {
			n, err := v.ints("vertices", "avgdeg", "blocks", "warps")
			if err != nil {
				return nil, err
			}
			seed, err := v.Uint64("seed")
			if err != nil {
				return nil, err
			}
			return BFS{Seed: seed, Vertices: n[0], AvgDeg: n[1],
				Blocks: n[2], WarpsPerBlock: n[3]}.Instance(), nil
		},
	}
}

func spmvEntry() *Entry {
	return &Entry{
		Name:    "spmv",
		Summary: "CSR sparse matrix-vector product (streaming rows, indirect x gathers)",
		Params: []Param{
			{"rows", "matrix dimension", "2048"},
			{"nnz", "mean nonzeros per row", "8"},
			{"blocks", "thread blocks", "15"},
			{"warps", "warps per block", "8"},
			{"seed", "matrix generation seed", "0x59A7"},
		},
		Small: Values{"rows": "192", "blocks": "8", "warps": "4"},
		New: func(v Values) (Instance, error) {
			n, err := v.ints("rows", "nnz", "blocks", "warps")
			if err != nil {
				return nil, err
			}
			seed, err := v.Uint64("seed")
			if err != nil {
				return nil, err
			}
			return SpMV{Seed: seed, Rows: n[0], NnzPerRow: n[1],
				Blocks: n[2], WarpsPerBlock: n[3]}.Instance(), nil
		},
	}
}

func pipelineEntry() *Entry {
	return &Entry{
		Name:    "pipeline",
		Summary: "producer-consumer pipeline with long idle phases between stages (the skip-ahead showcase)",
		Params: []Param{
			{"rounds", "produce/consume handoffs", "12"},
			{"chase", "pointer-chase length per producer per round", "64"},
			{"work", "hash-chain length per token", "24"},
			{"producers", "producer warps", "1"},
			{"consumers", "consumer warps", "1"},
			{"permwords", "pointer-chase permutation words (>= 2)", "4096"},
			{"seed", "permutation seed", "0x9199"},
		},
		Small: Values{"rounds": "4", "chase": "24", "work": "12", "permwords": "1024"},
		New: func(v Values) (Instance, error) {
			n, err := v.ints("rounds", "chase", "work", "producers", "consumers", "permwords")
			if err != nil {
				return nil, err
			}
			seed, err := v.Uint64("seed")
			if err != nil {
				return nil, err
			}
			return Pipeline{Seed: seed, Rounds: n[0], Chase: n[1], Work: n[2],
				Producers: n[3], Consumers: n[4], PermWords: n[5]}.Instance(), nil
		},
		Tune: func(v Values, cfg sim.Config) sim.Config {
			// One block on one SM: the idle stage's warps are the only
			// other residents, so the bursty phases are pure waits.
			cfg.NumSMs = 1
			if p, err := v.Int("producers"); err == nil {
				if c, err := v.Int("consumers"); err == nil && p+c > cfg.WarpsPerSM {
					cfg.WarpsPerSM = p + c
				}
			}
			return cfg
		},
	}
}

func stencilEntry() *Entry {
	return &Entry{
		Name:    "stencil",
		Summary: "2D Jacobi with DMA double-buffered bands and global halo exchange (bulk-transfer/barrier pressure)",
		Params: []Param{
			{"width", "grid columns including fixed edges (multiple of 8)", "64"},
			{"rows", "interior rows per block band", "4"},
			{"steps", "Jacobi time steps", "8"},
			{"blocks", "thread blocks (must all be co-resident)", "15"},
			{"warps", "warps per block", "2"},
			{"work", "hash chain length per cell update", "2"},
			{"seed", "initial grid fill seed", "0x57E9"},
		},
		Small: Values{"width": "32", "rows": "2", "steps": "3", "blocks": "4"},
		New: func(v Values) (Instance, error) {
			n, err := v.ints("width", "rows", "steps", "blocks", "warps", "work")
			if err != nil {
				return nil, err
			}
			seed, err := v.Uint64("seed")
			if err != nil {
				return nil, err
			}
			return Stencil{Seed: seed, Width: n[0], Rows: n[1], Steps: n[2],
				Blocks: n[3], WarpsPerBlock: n[4], Work: n[5]}.Instance(), nil
		},
		Tune: func(v Values, cfg sim.Config) sim.Config {
			// The band bands one block per SM; widen the warp slots when
			// a band is split finer than the default residency.
			if warps, err := v.Int("warps"); err == nil && warps > cfg.WarpsPerSM {
				cfg.WarpsPerSM = warps
			}
			return cfg
		},
	}
}

func stealEntry() *Entry {
	return &Entry{
		Name:    "steal",
		Summary: "work-stealing deques with steal-half policy (contended atomics, irregular quiescence)",
		Params: []Param{
			{"tasks", "total task count", "2000"},
			{"cap", "per-deque ring capacity (power of two >= tasks)", "2048"},
			{"blocks", "thread blocks (one deque each)", "15"},
			{"warps", "warps per block", "4"},
			{"work", "hash chain length per task", "12"},
			{"fmas", "FMA chain length per task", "4"},
			{"skew", "percent of tasks seeded into deque 0", "100"},
		},
		Small: Values{"tasks": "96", "cap": "128", "blocks": "4", "warps": "2", "work": "8", "fmas": "2"},
		New: func(v Values) (Instance, error) {
			n, err := v.ints("tasks", "cap", "blocks", "warps", "work", "fmas", "skew")
			if err != nil {
				return nil, err
			}
			return Steal{Tasks: n[0], Cap: n[1], Blocks: n[2], WarpsPerBlock: n[3],
				Work: n[4], FMAs: n[5], Skew: n[6]}.Instance(), nil
		},
		Tune: func(v Values, cfg sim.Config) sim.Config {
			if warps, err := v.Int("warps"); err == nil && warps > cfg.WarpsPerSM {
				cfg.WarpsPerSM = warps
			}
			return cfg
		},
	}
}

func gupsEntry() *Entry {
	return &Entry{
		Name:    "gups",
		Summary: "random-access table updates through line-strided vector windows (MSHR/coalescer pressure)",
		Params: []Param{
			{"updates", "updates per warp", "96"},
			{"windows", "partition size per warp in 2 KB windows (power of two)", "32"},
			{"blocks", "thread blocks", "15"},
			{"warps", "warps per block", "4"},
			{"seed", "update stream seed", "0x6095"},
		},
		Small: Values{"updates": "12", "windows": "8", "blocks": "4"},
		New: func(v Values) (Instance, error) {
			n, err := v.ints("updates", "windows", "blocks", "warps")
			if err != nil {
				return nil, err
			}
			seed, err := v.Uint64("seed")
			if err != nil {
				return nil, err
			}
			return GUPS{Seed: seed, Updates: n[0], WindowsPerWarp: n[1],
				Blocks: n[2], WarpsPerBlock: n[3]}.Instance(), nil
		},
	}
}
