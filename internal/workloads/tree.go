// Package workloads implements the simulator's benchmark suite as kernels
// for the simulated GPU: the paper's three — UTS (unbalanced tree search
// over a single global task queue, section 6.1.2), UTSD (the
// decentralized variant with per-SM local queues and a global overflow
// queue, section 6.1.4), and the implicit streaming microbenchmark of
// case study 2 in its three local-memory configurations — plus the
// sparse/bursty additions that span the event-density spectrum:
// level-synchronized BFS (frontier atomics, software global barriers),
// CSR SpMV (streaming rows, indirect gathers), a producer-consumer
// pipeline (long idle phases, the skip-ahead showcase), and GUPS
// (random-access updates, MSHR/coalescer saturation).
//
// Every workload is deterministic: inputs are synthesized from a seed
// (splitmix64 via isa.Mix64) and each run ends with a CPU-side functional
// verifier that recomputes the expected memory image. The Registry maps
// workload names to constructors, parameter schemas with default and
// SmallScale values, and optional system-shaping hooks; both CLIs and the
// sweep Grid's workload axis drive that one table, and registering an
// entry enrolls the workload in the engine diff tests automatically.
// framework.go holds the shared kernel-authoring helpers (WarpChunk,
// InitConsts, spin-lock and hash-chain emitters); see the README's
// "Authoring a workload" guide and docs/ARCHITECTURE.md for the component
// and engine contracts kernels must respect.
package workloads

import "gsi/internal/isa"

// Tree is a precomputed unbalanced tree: node i has ChildCount[i] children
// with consecutive ids starting at ChildBase[i]. Ids are assigned in
// creation (BFS) order, so the layout is deterministic.
type Tree struct {
	ChildCount []uint64
	ChildBase  []uint64
}

// Nodes returns the total node count.
func (t *Tree) Nodes() int { return len(t.ChildCount) }

// GenTree synthesizes a tree with exactly target nodes (target >= 1).
// Child counts are drawn uniformly from {0,1,2,3} (mean 1.5) via
// splitmix64; the draw is nudged up only when the frontier would otherwise
// die before reaching the target, keeping generation deterministic and
// total size exact.
func GenTree(seed uint64, target int) *Tree {
	if target < 1 {
		target = 1
	}
	t := &Tree{
		ChildCount: make([]uint64, 0, target),
		ChildBase:  make([]uint64, 0, target),
	}
	next := 1 // next unassigned node id
	for i := 0; i < next; i++ {
		c := int(isa.Mix64(seed^uint64(i)) % 4)
		if next+c > target {
			c = target - next
		}
		if c == 0 && i == next-1 && next < target {
			// Last frontier node: keep the tree alive.
			c = 1
		}
		t.ChildCount = append(t.ChildCount, uint64(c))
		t.ChildBase = append(t.ChildBase, uint64(next))
		next += c
	}
	return t
}

// Seeding is the host-side pre-expansion: the host processes the first
// levels of the tree (breadth-first) until the frontier is wide enough to
// spread across workers, then hands the frontier to the GPU queues.
type Seeding struct {
	// Frontier holds node ids ready for GPU processing.
	Frontier []uint64
	// HostProcessed counts nodes the host already expanded; the kernel's
	// termination counter starts here.
	HostProcessed uint64
}

// SeedFrontier expands breadth-first until at least minSize nodes are
// pending (or the tree is exhausted).
func (t *Tree) SeedFrontier(minSize int) Seeding {
	frontier := []uint64{0}
	var processed uint64
	for len(frontier) < minSize && len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		processed++
		for c := uint64(0); c < t.ChildCount[n]; c++ {
			frontier = append(frontier, t.ChildBase[n]+c)
		}
	}
	return Seeding{Frontier: frontier, HostProcessed: processed}
}

// MaxDepth returns the tree height (diagnostics and tests).
func (t *Tree) MaxDepth() int {
	depth := make([]int, t.Nodes())
	maxD := 0
	for i := 0; i < t.Nodes(); i++ {
		for c := uint64(0); c < t.ChildCount[i]; c++ {
			child := int(t.ChildBase[i] + c)
			depth[child] = depth[i] + 1
			if depth[child] > maxD {
				maxD = depth[child]
			}
		}
	}
	return maxD
}
