package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func bd(name string, vals ...float64) Breakdown {
	labels := make([]string, len(vals))
	for i := range labels {
		labels[i] = string(rune('a' + i))
	}
	return NewBreakdown(name, labels, vals)
}

func TestBreakdownTotalAndGet(t *testing.T) {
	b := NewBreakdown("x", []string{"sync", "data"}, []float64{3, 4})
	if b.Total() != 7 {
		t.Errorf("Total = %v, want 7", b.Total())
	}
	if b.Get("data") != 4 {
		t.Errorf("Get(data) = %v", b.Get("data"))
	}
	if b.Get("missing") != 0 {
		t.Errorf("Get(missing) = %v, want 0", b.Get("missing"))
	}
}

func TestBreakdownMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched labels/values")
		}
	}()
	NewBreakdown("bad", []string{"one"}, []float64{1, 2})
}

func TestNormalizeTo(t *testing.T) {
	b := bd("x", 2, 6)
	n := b.NormalizeTo(4)
	if n.Values[0] != 0.5 || n.Values[1] != 1.5 {
		t.Errorf("normalized = %v", n.Values)
	}
	// Source unchanged (copy semantics).
	if b.Values[0] != 2 {
		t.Errorf("NormalizeTo mutated the source: %v", b.Values)
	}
	z := b.NormalizeTo(0)
	if z.Total() != 0 {
		t.Errorf("zero-base normalize produced %v", z.Values)
	}
}

func TestGroupNormalizedToBaseline(t *testing.T) {
	g := NewGroup("fig", []string{"a", "b"})
	g.Add(bd("base", 5, 5))
	g.Add(bd("other", 2, 3))
	n := g.Normalized("base")
	if got := n.Bars[0].Total(); math.Abs(got-1) > 1e-12 {
		t.Errorf("baseline normalized total = %v, want 1", got)
	}
	if got := n.Bars[1].Total(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("other normalized total = %v, want 0.5", got)
	}
	// Unknown baseline: unchanged.
	same := g.Normalized("nope")
	if same.Bars[0].Total() != 10 {
		t.Errorf("missing baseline changed the group")
	}
}

func TestGroupAddValidation(t *testing.T) {
	g := NewGroup("fig", []string{"a", "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic adding bar with wrong labels")
		}
	}()
	g.Add(NewBreakdown("bad", []string{"a", "z"}, []float64{1, 2}))
}

func TestTableRendering(t *testing.T) {
	g := NewGroup("my title", []string{"sync", "data"})
	g.Add(bd2("cfg1", []string{"sync", "data"}, 10, 0.125))
	out := g.Table()
	for _, want := range []string{"my title", "cfg1", "sync", "data", "10", "0.125", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func bd2(name string, labels []string, vals ...float64) Breakdown {
	return NewBreakdown(name, labels, vals)
}

func TestCSV(t *testing.T) {
	g := NewGroup("t", []string{"a,x", `b"y`})
	g.Add(bd2("cfg", []string{"a,x", `b"y`}, 1, 2))
	out := g.CSV()
	if !strings.Contains(out, `"a,x"`) || !strings.Contains(out, `"b""y"`) {
		t.Errorf("CSV escaping wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Errorf("CSV has %d lines, want 2", len(lines))
	}
	if !strings.HasSuffix(lines[1], ",3") {
		t.Errorf("CSV total column wrong: %q", lines[1])
	}
}

func TestChartBounds(t *testing.T) {
	g := NewGroup("chart", []string{"a", "b", "c"})
	g.Add(bd("one", 1, 2, 3))
	g.Add(bd("two", 6, 0, 0))
	out := g.Chart(40)
	if !strings.Contains(out, "legend:") {
		t.Errorf("chart missing legend:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			j := strings.LastIndexByte(line, '|')
			if j-i-1 > 41 {
				t.Errorf("bar wider than width: %q", line)
			}
		}
	}
	empty := NewGroup("empty", []string{"a"})
	empty.Add(bd("zero", 0))
	if out := empty.Chart(40); !strings.Contains(out, "all bars empty") {
		t.Errorf("empty chart output: %q", out)
	}
}

// TestChartWidthProperty: the longest bar always spans close to the target
// width (rounding may drop at most one cell) and no bar exceeds it.
func TestChartWidthProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 6 {
			raw = raw[:6]
		}
		vals := make([]float64, len(raw))
		total := 0.0
		for i, v := range raw {
			vals[i] = float64(v)
			total += float64(v)
		}
		if total == 0 {
			return true
		}
		g := NewGroup("p", NewBreakdown("x", nil, nil).Labels)
		g = NewGroup("p", labelsFor(len(vals)))
		g.Add(NewBreakdown("bar", labelsFor(len(vals)), vals))
		out := g.Chart(50)
		for _, line := range strings.Split(out, "\n") {
			i := strings.IndexByte(line, '|')
			j := strings.LastIndexByte(line, '|')
			if i < 0 || j <= i {
				continue
			}
			w := j - i - 1
			if w > 51 || w < 49 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func labelsFor(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('a' + i))
	}
	return out
}
