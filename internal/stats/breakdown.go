// Package stats provides the reporting layer for GSI: ordered breakdowns,
// normalization against a baseline, and text renderings (aligned tables,
// stacked ASCII bar charts, CSV) that mirror the figures in the paper.
package stats

import (
	"fmt"
	"strings"
)

// Breakdown is an ordered list of labeled values (stall cycles by category).
// Order is significant: it is the stacking order in charts and the column
// order in CSV output.
type Breakdown struct {
	Name   string    `json:"name"`
	Labels []string  `json:"labels"`
	Values []float64 `json:"values"`
}

// NewBreakdown builds a breakdown from parallel label/value slices.
// It panics if the lengths differ, which is always a programming error.
func NewBreakdown(name string, labels []string, values []float64) Breakdown {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("stats: %d labels but %d values", len(labels), len(values)))
	}
	return Breakdown{
		Name:   name,
		Labels: append([]string(nil), labels...),
		Values: append([]float64(nil), values...),
	}
}

// Total returns the sum of all values.
func (b Breakdown) Total() float64 {
	var t float64
	for _, v := range b.Values {
		t += v
	}
	return t
}

// Get returns the value for a label, or 0 if the label is absent.
func (b Breakdown) Get(label string) float64 {
	for i, l := range b.Labels {
		if l == label {
			return b.Values[i]
		}
	}
	return 0
}

// Scale returns a copy with every value multiplied by f.
func (b Breakdown) Scale(f float64) Breakdown {
	out := NewBreakdown(b.Name, b.Labels, b.Values)
	for i := range out.Values {
		out.Values[i] *= f
	}
	return out
}

// NormalizeTo returns a copy scaled so that the paper's convention holds:
// every value is divided by base (typically the baseline configuration's
// total). A zero base yields an all-zero breakdown rather than NaNs.
func (b Breakdown) NormalizeTo(base float64) Breakdown {
	if base == 0 {
		return b.Scale(0)
	}
	return b.Scale(1 / base)
}

// Group is a set of breakdowns over the same categories, one per
// configuration — exactly one sub-figure in the paper (e.g. fig 6.2a holds
// "GPU coherence" and "DeNovo" execution-time breakdowns).
type Group struct {
	Title  string      `json:"title"`
	Labels []string    `json:"labels"`
	Bars   []Breakdown `json:"bars"`
}

// NewGroup builds a group; every added bar must use the group's labels.
func NewGroup(title string, labels []string) *Group {
	return &Group{Title: title, Labels: append([]string(nil), labels...)}
}

// Add appends a bar. It panics if the bar's labels do not match the
// group's, which is always a programming error in the harness.
func (g *Group) Add(b Breakdown) {
	if len(b.Labels) != len(g.Labels) {
		panic(fmt.Sprintf("stats: bar %q has %d labels, group %q has %d",
			b.Name, len(b.Labels), g.Title, len(g.Labels)))
	}
	for i := range b.Labels {
		if b.Labels[i] != g.Labels[i] {
			panic(fmt.Sprintf("stats: bar %q label %d is %q, group wants %q",
				b.Name, i, b.Labels[i], g.Labels[i]))
		}
	}
	g.Bars = append(g.Bars, b)
}

// Normalized returns a copy of the group with every bar divided by the
// total of the bar named baseline (the paper normalizes each sub-figure to
// its baseline configuration). If the baseline is absent the group is
// returned unchanged.
func (g *Group) Normalized(baseline string) *Group {
	var base float64
	for _, b := range g.Bars {
		if b.Name == baseline {
			base = b.Total()
			break
		}
	}
	if base == 0 {
		return g
	}
	out := NewGroup(g.Title, g.Labels)
	for _, b := range g.Bars {
		out.Add(b.NormalizeTo(base))
	}
	return out
}

// Table renders the group as an aligned text table: one row per bar, one
// column per category, plus a total column.
func (g *Group) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", g.Title)
	nameW := len("config")
	for _, b := range g.Bars {
		if len(b.Name) > nameW {
			nameW = len(b.Name)
		}
	}
	colW := make([]int, len(g.Labels))
	for i, l := range g.Labels {
		colW[i] = max(len(l), 9)
	}
	fmt.Fprintf(&sb, "%-*s", nameW, "config")
	for i, l := range g.Labels {
		fmt.Fprintf(&sb, "  %*s", colW[i], l)
	}
	fmt.Fprintf(&sb, "  %9s\n", "total")
	for _, b := range g.Bars {
		fmt.Fprintf(&sb, "%-*s", nameW, b.Name)
		for i, v := range b.Values {
			fmt.Fprintf(&sb, "  %*s", colW[i], formatVal(v))
		}
		fmt.Fprintf(&sb, "  %9s\n", formatVal(b.Total()))
	}
	return sb.String()
}

func formatVal(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v == float64(int64(v)) && v < 1e9:
		return fmt.Sprintf("%d", int64(v))
	case v < 0.0005:
		return fmt.Sprintf("%.1e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// CSV renders the group as comma-separated values with a header row.
func (g *Group) CSV() string {
	var sb strings.Builder
	sb.WriteString("config")
	for _, l := range g.Labels {
		sb.WriteString(",")
		sb.WriteString(csvEscape(l))
	}
	sb.WriteString(",total\n")
	for _, b := range g.Bars {
		sb.WriteString(csvEscape(b.Name))
		for _, v := range b.Values {
			fmt.Fprintf(&sb, ",%g", v)
		}
		fmt.Fprintf(&sb, ",%g\n", b.Total())
	}
	return sb.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
