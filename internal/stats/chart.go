package stats

import (
	"fmt"
	"strings"
)

// glyphs used to fill stacked bar segments, one per category, cycling if a
// group has more categories than glyphs.
var barGlyphs = []byte{'#', '=', '+', ':', 'o', '*', '.', '%', '@', '~'}

// Chart renders the group as a horizontal stacked bar chart resembling the
// paper's figures: one bar per configuration, segments in category order,
// scaled so the longest bar spans width characters. A legend maps glyphs to
// category labels with each bar's percentage share.
func (g *Group) Chart(width int) string {
	if width < 10 {
		width = 10
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", g.Title)
	maxTotal := 0.0
	nameW := 0
	for _, b := range g.Bars {
		if t := b.Total(); t > maxTotal {
			maxTotal = t
		}
		if len(b.Name) > nameW {
			nameW = len(b.Name)
		}
	}
	if maxTotal == 0 {
		sb.WriteString("(all bars empty)\n")
		return sb.String()
	}
	for _, b := range g.Bars {
		fmt.Fprintf(&sb, "%-*s |", nameW, b.Name)
		drawn := 0
		want := 0.0
		for i, v := range b.Values {
			want += v / maxTotal * float64(width)
			// Accumulate fractional widths so rounding error never
			// exceeds one cell across the whole bar.
			n := int(want+0.5) - drawn
			if n <= 0 {
				continue
			}
			sb.Write(bytesRepeat(barGlyphs[i%len(barGlyphs)], n))
			drawn += n
		}
		fmt.Fprintf(&sb, "| %s\n", formatVal(b.Total()))
	}
	sb.WriteString("legend: ")
	for i, l := range g.Labels {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%c=%s", barGlyphs[i%len(barGlyphs)], l)
	}
	sb.WriteString("\n")
	return sb.String()
}

func bytesRepeat(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}
