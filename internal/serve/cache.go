package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// resultCache is the content-addressed result store: cache key (a
// gsi.CacheKey hex digest) -> the exact serialized Report bytes of the
// run. Entries are immutable once written — determinism means a key has
// exactly one correct value — so hits can hand out the stored slice
// without copying. The cache lives in memory; when a directory is
// configured, entries already on disk are loaded at construction and new
// entries are written out by flush (the drain path).
type resultCache struct {
	dir string

	mu      sync.Mutex
	entries map[string][]byte
	dirty   map[string]bool
}

// newResultCache builds the cache, loading any persisted entries from
// dir (which is created if missing). An empty dir disables persistence.
func newResultCache(dir string) (*resultCache, error) {
	c := &resultCache{dir: dir, entries: map[string][]byte{}, dirty: map[string]bool{}}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("serve: loading cache entry: %w", err)
		}
		key := strings.TrimSuffix(filepath.Base(name), ".json")
		c.entries[key] = data
	}
	return c, nil
}

// get returns the stored bytes for key.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.entries[key]
	return data, ok
}

// put stores the bytes for key; a pre-existing entry wins (it is
// necessarily identical, and keeping it makes put idempotent under the
// rare leader/raced-completion overlap).
func (c *resultCache) put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = data
	c.dirty[key] = true
}

// size returns the number of cached results.
func (c *resultCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// flush writes entries not yet persisted to the cache directory; without
// a directory it is a no-op. Used by the drain path so a restarted server
// starts warm.
func (c *resultCache) flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir == "" {
		c.dirty = map[string]bool{}
		return nil
	}
	for key := range c.dirty {
		path := filepath.Join(c.dir, key+".json")
		if err := os.WriteFile(path, c.entries[key], 0o644); err != nil {
			return fmt.Errorf("serve: flushing cache entry: %w", err)
		}
		delete(c.dirty, key)
	}
	return nil
}
