package serve

import (
	"bufio"
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// resultCache is the content-addressed result store: cache key (a
// gsi.CacheKey hex digest) -> the exact serialized Report bytes of the
// run. Entries are immutable once written — determinism means a key has
// exactly one correct value — so hits can hand out the stored slice
// without copying. The cache lives in memory; when a directory is
// configured, entries already on disk are loaded at construction and new
// entries are written out by flush (the drain path).
//
// Persistence is crash-safe through a write-behind journal: every put
// appends the entry to <dir>/journal.jsonl and fsyncs before returning,
// so a kill -9 loses at most the simulations that were still in flight.
// At construction the journal is replayed (a torn final record — the
// crash interrupted the append — is tolerated and dropped) and compacted
// into the per-key *.json files; flush does the same compaction on the
// drain path.
//
// The in-memory set is bounded: maxEntries and maxBytes (0 = unlimited)
// cap it with LRU eviction — get and put refresh an entry's recency, and
// put evicts from the cold end until both limits hold. Evicting is always
// sound (a future request for the key re-simulates and recomputes the
// identical bytes); an evicted entry that was never flushed to a
// configured cache directory is written out on eviction, best effort, so
// bounding memory does not silently discard persistence.
type resultCache struct {
	dir        string
	maxEntries int
	maxBytes   int

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     list.List // front = most recent; values are *cacheEntry
	bytes   int
	dirty   map[string]bool
	evicted uint64

	// traces holds per-key trace artifacts (Chrome trace-event JSON) for
	// submissions that opted in. Artifacts live outside the LRU bounds —
	// they are written through to <dir>/<key>.trace immediately (the
	// ".trace" suffix keeps the boot glob from loading them as results)
	// and the in-memory copy is dropped when the key's result is evicted;
	// getTrace falls back to disk, so bounding memory never loses an
	// artifact that reached a configured directory. Unlike results they
	// are not journaled: a trace is an observability extra, and a crash
	// losing one loses nothing a re-run with tracing cannot recreate.
	traces map[string][]byte

	journal     *os.File // open append handle; nil without a cache dir
	replayed    int      // entries recovered from the journal at boot
	journalErrs uint64   // failed journal appends (entry stays dirty)
}

// journalRecord is one line of journal.jsonl.
type journalRecord struct {
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// cacheEntry is one LRU node's payload.
type cacheEntry struct {
	key  string
	data []byte
}

// cacheStats is the cache's observability snapshot for /metrics.
type cacheStats struct {
	entries     int
	bytes       int
	evictions   uint64
	replayed    int
	journalErrs uint64
}

// newResultCache builds the cache, loading any persisted entries from
// dir (which is created if missing). An empty dir disables persistence;
// maxEntries/maxBytes of 0 disable the corresponding bound. Loaded
// entries count against the bounds (oldest names evict first — disk
// files are kept, only the in-memory copy is dropped).
func newResultCache(dir string, maxEntries, maxBytes int) (*resultCache, error) {
	c := &resultCache{
		dir:        dir,
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    map[string]*list.Element{},
		dirty:      map[string]bool{},
		traces:     map[string][]byte{},
	}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("serve: loading cache entry: %w", err)
		}
		key := strings.TrimSuffix(filepath.Base(name), ".json")
		c.insert(key, data)
		c.evict()
	}
	if err := c.replayJournal(); err != nil {
		return nil, err
	}
	journal, err := os.OpenFile(c.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening cache journal: %w", err)
	}
	c.journal = journal
	return c, nil
}

func (c *resultCache) journalPath() string {
	return filepath.Join(c.dir, "journal.jsonl")
}

// replayJournal recovers entries a crashed process journaled but never
// compacted, then compacts: recovered entries go to their per-key files
// and the journal is removed. Replay stops at the first undecodable line
// — appends are sequential, so only the final record can be torn, and a
// torn record is an in-flight put the crash legitimately lost.
func (c *resultCache) replayJournal() error {
	f, err := os.Open(c.journalPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: opening cache journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			break // torn final record from the crash; drop it
		}
		if _, ok := c.entries[rec.Key]; ok {
			continue // the per-key file already provided it
		}
		c.insert(rec.Key, []byte(rec.Data))
		c.dirty[rec.Key] = true
		c.replayed++
		c.evict()
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		return fmt.Errorf("serve: reading cache journal: %w", err)
	}
	if err := c.flushLocked(); err != nil {
		return err
	}
	return os.Remove(c.journalPath())
}

// get returns the stored bytes for key, refreshing its recency.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// put stores the bytes for key; a pre-existing entry wins (it is
// necessarily identical, and keeping it makes put idempotent under the
// rare leader/raced-completion overlap). The entry is journaled to disk
// (appended and fsynced) before put returns, so a crash after put cannot
// lose it; a failed append leaves the entry dirty for the flush path and
// bumps the journal-error counter. Over-limit cold entries are evicted
// afterwards.
func (c *resultCache) put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.insert(key, data)
	c.dirty[key] = true
	if c.journal != nil {
		if err := c.appendJournal(key, data); err != nil {
			c.journalErrs++
		}
	}
	c.evict()
}

// appendJournal writes one durable journal record. Caller holds mu.
func (c *resultCache) appendJournal(key string, data []byte) error {
	line, err := json.Marshal(journalRecord{Key: key, Data: data})
	if err != nil {
		return err
	}
	if _, err := c.journal.Write(append(line, '\n')); err != nil {
		return err
	}
	return c.journal.Sync()
}

// insert adds a fresh entry at the hot end. Caller holds mu (or owns the
// cache exclusively, during construction).
func (c *resultCache) insert(key string, data []byte) {
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, data: data})
	c.bytes += len(data)
}

// evict drops cold entries until both bounds hold. A dirty entry (never
// flushed to a configured cache directory) is written out first, best
// effort — failing that it is dropped anyway, since the bound is the
// contract. Caller holds mu (or owns the cache exclusively).
func (c *resultCache) evict() {
	over := func() bool {
		if c.maxEntries > 0 && len(c.entries) > c.maxEntries {
			return true
		}
		return c.maxBytes > 0 && c.bytes > c.maxBytes
	}
	for over() {
		el := c.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*cacheEntry)
		if c.dirty[e.key] && c.dir != "" {
			path := filepath.Join(c.dir, e.key+".json")
			_ = os.WriteFile(path, e.data, 0o644)
		}
		delete(c.dirty, e.key)
		delete(c.entries, e.key)
		delete(c.traces, e.key) // the write-through file, if any, remains
		c.lru.Remove(el)
		c.bytes -= len(e.data)
		c.evicted++
	}
}

// putTrace stores a trace artifact for key, writing it through to the
// cache directory at once (best effort — the in-memory copy still
// serves). First write wins, like put: a key's trace is as deterministic
// as its result, event for event.
func (c *resultCache) putTrace(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.traces[key]; ok {
		return
	}
	c.traces[key] = data
	if c.dir != "" {
		_ = os.WriteFile(filepath.Join(c.dir, key+".trace"), data, 0o644)
	}
}

// getTrace returns the trace artifact for key, falling back to the cache
// directory when the in-memory copy was dropped with its evicted result
// (or belongs to a previous process).
func (c *resultCache) getTrace(key string) ([]byte, bool) {
	c.mu.Lock()
	data, ok := c.traces[key]
	dir := c.dir
	c.mu.Unlock()
	if ok {
		return data, true
	}
	if dir == "" || strings.ContainsAny(key, "/\\") {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(dir, key+".trace"))
	if err != nil {
		return nil, false
	}
	return data, true
}

// size returns the number of cached results.
func (c *resultCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// stats snapshots the cache's entry count, byte footprint, and lifetime
// eviction count for /metrics.
func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{entries: len(c.entries), bytes: c.bytes,
		evictions: c.evicted, replayed: c.replayed, journalErrs: c.journalErrs}
}

// flush writes entries not yet persisted to the cache directory and
// compacts the journal (every journaled entry now lives in its per-key
// file, so the journal restarts empty); without a directory it is a
// no-op. Used by the drain path so a restarted server starts warm.
func (c *resultCache) flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

// flushLocked is flush under an already-held mu (or exclusive ownership
// during construction).
func (c *resultCache) flushLocked() error {
	if c.dir == "" {
		c.dirty = map[string]bool{}
		return nil
	}
	for key := range c.dirty {
		path := filepath.Join(c.dir, key+".json")
		if err := os.WriteFile(path, c.entries[key].Value.(*cacheEntry).data, 0o644); err != nil {
			return fmt.Errorf("serve: flushing cache entry: %w", err)
		}
		delete(c.dirty, key)
	}
	if c.journal != nil {
		if err := c.journal.Truncate(0); err != nil {
			return fmt.Errorf("serve: compacting cache journal: %w", err)
		}
	}
	return nil
}
