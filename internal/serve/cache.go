package serve

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// resultCache is the content-addressed result store: cache key (a
// gsi.CacheKey hex digest) -> the exact serialized Report bytes of the
// run. Entries are immutable once written — determinism means a key has
// exactly one correct value — so hits can hand out the stored slice
// without copying. The cache lives in memory; when a directory is
// configured, entries already on disk are loaded at construction and new
// entries are written out by flush (the drain path).
//
// The in-memory set is bounded: maxEntries and maxBytes (0 = unlimited)
// cap it with LRU eviction — get and put refresh an entry's recency, and
// put evicts from the cold end until both limits hold. Evicting is always
// sound (a future request for the key re-simulates and recomputes the
// identical bytes); an evicted entry that was never flushed to a
// configured cache directory is written out on eviction, best effort, so
// bounding memory does not silently discard persistence.
type resultCache struct {
	dir        string
	maxEntries int
	maxBytes   int

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     list.List // front = most recent; values are *cacheEntry
	bytes   int
	dirty   map[string]bool
	evicted uint64
}

// cacheEntry is one LRU node's payload.
type cacheEntry struct {
	key  string
	data []byte
}

// cacheStats is the cache's observability snapshot for /metrics.
type cacheStats struct {
	entries   int
	bytes     int
	evictions uint64
}

// newResultCache builds the cache, loading any persisted entries from
// dir (which is created if missing). An empty dir disables persistence;
// maxEntries/maxBytes of 0 disable the corresponding bound. Loaded
// entries count against the bounds (oldest names evict first — disk
// files are kept, only the in-memory copy is dropped).
func newResultCache(dir string, maxEntries, maxBytes int) (*resultCache, error) {
	c := &resultCache{
		dir:        dir,
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    map[string]*list.Element{},
		dirty:      map[string]bool{},
	}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("serve: loading cache entry: %w", err)
		}
		key := strings.TrimSuffix(filepath.Base(name), ".json")
		c.insert(key, data)
		c.evict()
	}
	return c, nil
}

// get returns the stored bytes for key, refreshing its recency.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// put stores the bytes for key; a pre-existing entry wins (it is
// necessarily identical, and keeping it makes put idempotent under the
// rare leader/raced-completion overlap). Over-limit cold entries are
// evicted afterwards.
func (c *resultCache) put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.insert(key, data)
	c.dirty[key] = true
	c.evict()
}

// insert adds a fresh entry at the hot end. Caller holds mu (or owns the
// cache exclusively, during construction).
func (c *resultCache) insert(key string, data []byte) {
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, data: data})
	c.bytes += len(data)
}

// evict drops cold entries until both bounds hold. A dirty entry (never
// flushed to a configured cache directory) is written out first, best
// effort — failing that it is dropped anyway, since the bound is the
// contract. Caller holds mu (or owns the cache exclusively).
func (c *resultCache) evict() {
	over := func() bool {
		if c.maxEntries > 0 && len(c.entries) > c.maxEntries {
			return true
		}
		return c.maxBytes > 0 && c.bytes > c.maxBytes
	}
	for over() {
		el := c.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*cacheEntry)
		if c.dirty[e.key] && c.dir != "" {
			path := filepath.Join(c.dir, e.key+".json")
			_ = os.WriteFile(path, e.data, 0o644)
		}
		delete(c.dirty, e.key)
		delete(c.entries, e.key)
		c.lru.Remove(el)
		c.bytes -= len(e.data)
		c.evicted++
	}
}

// size returns the number of cached results.
func (c *resultCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// stats snapshots the cache's entry count, byte footprint, and lifetime
// eviction count for /metrics.
func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{entries: len(c.entries), bytes: c.bytes, evictions: c.evicted}
}

// flush writes entries not yet persisted to the cache directory; without
// a directory it is a no-op. Used by the drain path so a restarted server
// starts warm.
func (c *resultCache) flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir == "" {
		c.dirty = map[string]bool{}
		return nil
	}
	for key := range c.dirty {
		path := filepath.Join(c.dir, key+".json")
		if err := os.WriteFile(path, c.entries[key].Value.(*cacheEntry).data, 0o644); err != nil {
			return fmt.Errorf("serve: flushing cache entry: %w", err)
		}
		delete(c.dirty, key)
	}
	return nil
}
