package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCacheLRUEntryBound covers the maxEntries bound: the cold end
// evicts, get/put refresh recency, and the eviction counter advances.
func TestCacheLRUEntryBound(t *testing.T) {
	c, err := newResultCache("", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Touch k0 so k1 is now the coldest entry.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.put("k3", []byte{3})
	if _, ok := c.get("k1"); ok {
		t.Error("k1 survived eviction despite being coldest")
	}
	for _, key := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(key); !ok {
			t.Errorf("%s evicted, want kept", key)
		}
	}
	st := c.stats()
	if st.entries != 3 || st.evictions != 1 {
		t.Errorf("stats = %+v, want 3 entries / 1 eviction", st)
	}
}

// TestCacheLRUByteBound covers the maxBytes bound, including a single
// put evicting multiple cold entries to make room.
func TestCacheLRUByteBound(t *testing.T) {
	c, err := newResultCache("", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("k%d", i), make([]byte, 25))
	}
	if st := c.stats(); st.bytes != 100 || st.evictions != 0 {
		t.Fatalf("stats = %+v, want 100 bytes / 0 evictions", st)
	}
	c.put("big", make([]byte, 60)) // needs k0..k2 gone
	st := c.stats()
	if st.bytes > 100 {
		t.Errorf("byte bound violated: %d > 100", st.bytes)
	}
	if st.evictions != 3 {
		t.Errorf("evictions = %d, want 3", st.evictions)
	}
	if _, ok := c.get("k3"); !ok {
		t.Error("k3 evicted, want kept (hottest small entry)")
	}
	if _, ok := c.get("big"); !ok {
		t.Error("big entry missing after its own put")
	}
}

// TestCacheEvictionPersistsDirty: evicting a never-flushed entry writes
// it to the cache directory first, so the memory bound does not lose
// persistence — a fresh cache over the same directory serves the entry.
func TestCacheEvictionPersistsDirty(t *testing.T) {
	dir := t.TempDir()
	c, err := newResultCache(dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.put("aaaa", []byte("first"))
	c.put("bbbb", []byte("second")) // evicts dirty aaaa -> disk
	if _, err := os.Stat(filepath.Join(dir, "aaaa.json")); err != nil {
		t.Fatalf("evicted dirty entry not written to disk: %v", err)
	}
	reloaded, err := newResultCache(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := reloaded.get("aaaa"); !ok || string(data) != "first" {
		t.Errorf("reloaded cache: get(aaaa) = %q, %v; want the evicted bytes", data, ok)
	}
}

// TestServeMetricsPrometheus checks the text exposition endpoint: the
// versioned content type, counter/gauge families, and the cumulative
// histogram with its +Inf terminator and matching _count.
func TestServeMetricsPrometheus(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	doc := submit(t, ts, smallSweep("prom"))
	wait(t, ts, doc.ID)

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"# TYPE gsi_jobs_queued gauge",
		"# TYPE gsi_simulations_total counter",
		"gsi_simulations_total 4",
		"gsi_jobs_done_total 4",
		"# TYPE gsi_sim_ns_per_cycle histogram",
		`gsi_sim_ns_per_cycle_bucket{le="+Inf"} 4`,
		"gsi_sim_ns_per_cycle_count 4",
		"gsi_sim_ns_per_cycle_sum ",
		"gsi_cache_evictions_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}
}

// TestServeParallelTicksByteIdentical runs the same sweep on a serial
// server and on one configured with the parallel tick engine, and
// requires every result document to match byte for byte — the service
// restatement of the four-way engine identity.
func TestServeParallelTicksByteIdentical(t *testing.T) {
	_, serial := newTestServer(t, Config{Workers: 2})
	_, par := newTestServer(t, Config{Workers: 2, Parallel: 2})
	a := wait(t, serial, submit(t, serial, smallSweep("serial")).ID)
	b := wait(t, par, submit(t, par, smallSweep("ticks")).ID)
	if a.Failed != 0 || b.Failed != 0 {
		t.Fatalf("failures: serial %d, parallel %d", a.Failed, b.Failed)
	}
	if len(a.Jobs) == 0 || len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("job counts: serial %d, parallel %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i].Key != b.Jobs[i].Key {
			t.Fatalf("job %d keys diverge: %s vs %s", i, a.Jobs[i].Key, b.Jobs[i].Key)
		}
		sr := getResult(t, serial, a.Jobs[i].Key)
		pr := getResult(t, par, b.Jobs[i].Key)
		if !bytes.Equal(sr, pr) {
			t.Errorf("job %d (%s): parallel-tick result differs from serial", i, a.Jobs[i].Key)
		}
	}
}
