package serve

import (
	"fmt"
	"io"
	"strconv"
	"sync"

	"gsi"
	"gsi/internal/core"
)

// nsPerCycleBounds are the upper bounds (inclusive, in nanoseconds of
// wall clock per simulated GPU cycle) of the throughput histogram's
// buckets; observations above the last bound land in the overflow
// bucket. Powers of two from 1 ns to ~1 ms per cycle cover everything
// from skip-ahead bursts to dense-mode crawls.
var nsPerCycleBounds = []float64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
	1024, 4096, 16384, 65536, 262144, 1048576,
}

// metrics is the server's observability state, exposed on /metrics. All
// methods are safe for concurrent use.
type metrics struct {
	mu sync.Mutex

	submitted uint64 // jobs accepted across all sweeps
	running   uint64 // simulations executing right now (pool slots held)
	done      uint64 // jobs finished successfully (any source)
	failed    uint64 // jobs finished with an error

	cacheHits   uint64 // jobs served from the result cache
	dedupHits   uint64 // jobs that shared another job's in-flight run
	simulations uint64 // fresh simulations completed
	panics      uint64 // simulation attempts that panicked (contained)
	retries     uint64 // simulation attempts retried after a transient failure
	canceled    uint64 // jobs that ended on cancellation or deadline

	simNanos  uint64 // total wall-clock nanoseconds across simulations
	simCycles uint64 // total simulated cycles across simulations

	// Aggregates folded from every fresh simulation's Report: classified
	// stall cycles by top-level kind (summed across SMs), and the
	// engine/mesh event counters behind the run.
	stallCycles  [core.NumStallKinds]uint64
	engJumps     uint64 // skip-ahead clock jumps
	engSkipped   uint64 // cycles the skip-ahead jumps covered
	engExpress   uint64 // express-routed mesh deliveries
	engDemotions uint64 // express flits demoted to hop-by-hop routing

	hist    []uint64 // ns-per-cycle histogram; last slot is overflow
	histSum float64  // sum of observed ns-per-cycle values (Prometheus _sum)
}

func newMetrics() *metrics {
	return &metrics{hist: make([]uint64, len(nsPerCycleBounds)+1)}
}

func (m *metrics) enqueue(n int) {
	m.mu.Lock()
	m.submitted += uint64(n)
	m.mu.Unlock()
}

func (m *metrics) runStart() {
	m.mu.Lock()
	m.running++
	m.mu.Unlock()
}

func (m *metrics) runEnd() {
	m.mu.Lock()
	m.running--
	m.mu.Unlock()
}

func (m *metrics) jobDone(failed bool) {
	m.mu.Lock()
	if failed {
		m.failed++
	} else {
		m.done++
	}
	m.mu.Unlock()
}

func (m *metrics) cacheHit() {
	m.mu.Lock()
	m.cacheHits++
	m.mu.Unlock()
}

func (m *metrics) dedupHit() {
	m.mu.Lock()
	m.dedupHits++
	m.mu.Unlock()
}

// panicked counts one contained simulation panic: the attempt became a
// per-job error instead of taking the process down.
func (m *metrics) panicked() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// retried counts one transient-failure retry of a simulation attempt.
func (m *metrics) retried() {
	m.mu.Lock()
	m.retries++
	m.mu.Unlock()
}

// cancel counts one job ended by cancellation or deadline.
func (m *metrics) cancel() {
	m.mu.Lock()
	m.canceled++
	m.mu.Unlock()
}

// report folds one fresh simulation's Report into the aggregate stall
// and engine counters. Cached and deduplicated jobs are deliberately not
// folded: the aggregates count simulation work performed by this
// process, and double-counting a shared run would skew the per-kind mix.
func (m *metrics) report(rep *gsi.Report) {
	m.mu.Lock()
	for k, n := range rep.Counts.Cycles {
		m.stallCycles[k] += n
	}
	m.engJumps += rep.EngineStats.Jumps
	m.engSkipped += rep.EngineStats.SkippedCycles
	m.engExpress += rep.EngineStats.ExpressDeliveries
	m.engDemotions += rep.EngineStats.ExpressDemotions
	m.mu.Unlock()
}

// simulation records one completed fresh run: its wall-clock cost and the
// simulated cycles it covered, bucketed as ns per cycle.
func (m *metrics) simulation(nanos uint64, cycles uint64) {
	if cycles == 0 {
		cycles = 1
	}
	perCycle := float64(nanos) / float64(cycles)
	m.mu.Lock()
	m.simulations++
	m.simNanos += nanos
	m.simCycles += cycles
	slot := len(nsPerCycleBounds)
	for i, le := range nsPerCycleBounds {
		if perCycle <= le {
			slot = i
			break
		}
	}
	m.hist[slot]++
	m.histSum += perCycle
	m.mu.Unlock()
}

// histBucket is one /metrics histogram row; Le is nil on the overflow
// bucket (JSON null, read it as +Inf).
type histBucket struct {
	Le    *float64 `json:"le"`
	Count uint64   `json:"count"`
}

// metricsSnapshot is the /metrics response document.
type metricsSnapshot struct {
	Jobs struct {
		Queued  uint64 `json:"queued"`
		Running uint64 `json:"running"`
		Done    uint64 `json:"done"`
		Failed  uint64 `json:"failed"`
	} `json:"jobs"`
	Cache struct {
		Hits            uint64 `json:"hits"`
		DedupHits       uint64 `json:"dedupHits"`
		Entries         uint64 `json:"entries"`
		Bytes           uint64 `json:"bytes"`
		Evictions       uint64 `json:"evictions"`
		JournalReplayed uint64 `json:"journalReplayed"`
		JournalErrors   uint64 `json:"journalErrors"`
	} `json:"cache"`
	Simulations uint64       `json:"simulations"`
	Panics      uint64       `json:"panics"`
	Retries     uint64       `json:"retries"`
	Canceled    uint64       `json:"canceled"`
	SimNanos    uint64       `json:"simNanos"`
	SimCycles   uint64       `json:"simCycles"`
	NsPerCycle  []histBucket `json:"nsPerCycle"`
	// StallCycles aggregates classified cycles by top-level stall kind
	// (label-keyed, summed over every SM of every fresh simulation).
	StallCycles map[string]uint64 `json:"stallCycles"`
	Engine      struct {
		Jumps             uint64 `json:"jumps"`
		SkippedCycles     uint64 `json:"skippedCycles"`
		ExpressDeliveries uint64 `json:"expressDeliveries"`
		ExpressDemotions  uint64 `json:"expressDemotions"`
	} `json:"engine"`

	histSum float64 // carried for the Prometheus rendering, not in JSON

	// stallByKind carries the kind-ordered counts for the Prometheus
	// rendering (label maps lose the taxonomy order).
	stallByKind [core.NumStallKinds]uint64
}

// snapshot captures a consistent view; queued is derived (submitted jobs
// neither finished nor currently simulating).
func (m *metrics) snapshot(cs cacheStats) metricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s metricsSnapshot
	finished := m.done + m.failed
	s.Jobs.Queued = m.submitted - finished - m.running
	s.Jobs.Running = m.running
	s.Jobs.Done = m.done
	s.Jobs.Failed = m.failed
	s.Cache.Hits = m.cacheHits
	s.Cache.DedupHits = m.dedupHits
	s.Cache.Entries = uint64(cs.entries)
	s.Cache.Bytes = uint64(cs.bytes)
	s.Cache.Evictions = cs.evictions
	s.Cache.JournalReplayed = uint64(cs.replayed)
	s.Cache.JournalErrors = cs.journalErrs
	s.Simulations = m.simulations
	s.Panics = m.panics
	s.Retries = m.retries
	s.Canceled = m.canceled
	s.SimNanos = m.simNanos
	s.SimCycles = m.simCycles
	s.StallCycles = make(map[string]uint64, core.NumStallKinds)
	for _, k := range core.StallKinds() {
		s.StallCycles[k.String()] = m.stallCycles[k]
	}
	s.stallByKind = m.stallCycles
	s.Engine.Jumps = m.engJumps
	s.Engine.SkippedCycles = m.engSkipped
	s.Engine.ExpressDeliveries = m.engExpress
	s.Engine.ExpressDemotions = m.engDemotions
	s.histSum = m.histSum
	s.NsPerCycle = make([]histBucket, len(m.hist))
	for i, n := range m.hist {
		b := histBucket{Count: n}
		if i < len(nsPerCycleBounds) {
			le := nsPerCycleBounds[i]
			b.Le = &le
		}
		s.NsPerCycle[i] = b
	}
	return s
}

// prometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): gauges for instantaneous values, counters for
// monotone totals, and the ns-per-cycle histogram in the standard
// cumulative-bucket form with le labels and the +Inf terminator.
func (s metricsSnapshot) prometheus(w io.Writer) {
	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("gsi_jobs_queued", "Jobs accepted but neither finished nor simulating.", s.Jobs.Queued)
	gauge("gsi_jobs_running", "Simulations holding a pool slot right now.", s.Jobs.Running)
	counter("gsi_jobs_done_total", "Jobs finished successfully.", s.Jobs.Done)
	counter("gsi_jobs_failed_total", "Jobs finished with an error.", s.Jobs.Failed)
	counter("gsi_cache_hits_total", "Jobs served from the result cache.", s.Cache.Hits)
	counter("gsi_cache_dedup_hits_total", "Jobs that shared another job's in-flight run.", s.Cache.DedupHits)
	gauge("gsi_cache_entries", "Results currently cached in memory.", s.Cache.Entries)
	gauge("gsi_cache_bytes", "Bytes of cached result documents in memory.", s.Cache.Bytes)
	counter("gsi_cache_evictions_total", "Cache entries evicted by the LRU bounds.", s.Cache.Evictions)
	counter("gsi_cache_journal_replayed_total", "Results recovered from the write-behind journal at boot.", s.Cache.JournalReplayed)
	counter("gsi_cache_journal_errors_total", "Failed journal appends (entry deferred to the flush path).", s.Cache.JournalErrors)
	counter("gsi_simulations_total", "Fresh simulations completed.", s.Simulations)
	counter("gsi_sim_panics_total", "Simulation attempts that panicked and were contained.", s.Panics)
	counter("gsi_sim_retries_total", "Simulation attempts retried after a transient failure.", s.Retries)
	counter("gsi_jobs_canceled_total", "Jobs ended by cancellation or deadline.", s.Canceled)
	counter("gsi_sim_nanoseconds_total", "Wall-clock nanoseconds across fresh simulations.", s.SimNanos)
	counter("gsi_sim_cycles_total", "Simulated cycles across fresh simulations.", s.SimCycles)
	counter("gsi_engine_jumps_total", "Skip-ahead clock jumps across fresh simulations.", s.Engine.Jumps)
	counter("gsi_engine_skipped_cycles_total", "Cycles covered by skip-ahead jumps across fresh simulations.", s.Engine.SkippedCycles)
	counter("gsi_engine_express_deliveries_total", "Express-routed mesh deliveries across fresh simulations.", s.Engine.ExpressDeliveries)
	counter("gsi_engine_express_demotions_total", "Express flits demoted to hop-by-hop routing across fresh simulations.", s.Engine.ExpressDemotions)
	fmt.Fprintf(w, "# HELP gsi_stall_cycles_total Classified cycles by top-level stall kind across fresh simulations.\n# TYPE gsi_stall_cycles_total counter\n")
	for _, k := range core.StallKinds() {
		fmt.Fprintf(w, "gsi_stall_cycles_total{kind=%q} %d\n", k.String(), s.stallByKind[k])
	}

	name := "gsi_sim_ns_per_cycle"
	fmt.Fprintf(w, "# HELP %s Wall-clock nanoseconds per simulated cycle.\n# TYPE %s histogram\n", name, name)
	var cum uint64
	for _, b := range s.NsPerCycle {
		cum += b.Count
		le := "+Inf"
		if b.Le != nil {
			le = strconv.FormatFloat(*b.Le, 'g', -1, 64)
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
	}
	fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(s.histSum, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}
