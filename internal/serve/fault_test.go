package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"gsi/internal/faultinject"
)

func mustInjector(t *testing.T, spec string) *faultinject.Injector {
	t.Helper()
	in, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestServeChaosPanicIsolated is the poisoned-point contract: with panics
// injected into the stash half of a sweep, those points fail individually
// with the contained-panic error, the scratchpad siblings complete and
// cache normally, the panic counter moves, and the process (trivially)
// survives.
func TestServeChaosPanicIsolated(t *testing.T) {
	inj := mustInjector(t, "stash:panic")
	_, ts := newTestServer(t, Config{Workers: 2, Chaos: inj, Retries: -1})
	doc := submit(t, ts, smallSweep("chaos"))
	final := wait(t, ts, doc.ID)

	var failed, done int
	for _, j := range final.Jobs {
		faulted := inj.Decide(j.Label) != faultinject.FaultNone
		switch {
		case faulted && j.Status == "failed":
			failed++
			if !strings.Contains(j.Err, "panicked") {
				t.Errorf("job %q error %q does not identify the contained panic", j.Label, j.Err)
			}
			// A faulted point must never be cached.
			resp, err := http.Get(ts.URL + "/results/" + j.Key)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("faulted job %q has a cached result (status %d)", j.Label, resp.StatusCode)
			}
		case !faulted && j.Status == "done":
			done++
			getResult(t, ts, j.Key) // sibling's result must be served
		default:
			t.Errorf("job %q: status %q with fault=%v", j.Label, j.Status, inj.Decide(j.Label))
		}
	}
	if failed == 0 || done == 0 {
		t.Fatalf("chaos spec did not split the sweep (failed=%d done=%d)", failed, done)
	}
	m := getMetrics(t, ts)
	if m.Panics != uint64(failed) {
		t.Errorf("panic counter = %d, want %d", m.Panics, failed)
	}
	if m.Jobs.Failed != uint64(failed) || m.Jobs.Done != uint64(done) {
		t.Errorf("job counters failed=%d done=%d, want %d/%d", m.Jobs.Failed, m.Jobs.Done, failed, done)
	}
}

// TestServeChaosRetriesTransient: a panic-class failure is retried with
// backoff up to the budget; every attempt panics here, so the job still
// fails — but the retry and panic counters record the attempts.
func TestServeChaosRetriesTransient(t *testing.T) {
	inj := mustInjector(t, "implicit:panic")
	_, ts := newTestServer(t, Config{Workers: 1, Chaos: inj, Retries: 1})
	sub := smallSweep("retry")
	sub.LocalMems = []string{"scratchpad"}
	sub.MSHRSizes = []int{16}
	doc := submit(t, ts, sub)
	final := wait(t, ts, doc.ID)
	if final.Failed != 1 || final.Total != 1 {
		t.Fatalf("failed=%d total=%d, want 1/1", final.Failed, final.Total)
	}
	m := getMetrics(t, ts)
	if m.Retries != 1 {
		t.Errorf("retries = %d, want 1", m.Retries)
	}
	if m.Panics != 2 {
		t.Errorf("panics = %d, want 2 (initial attempt + retry)", m.Panics)
	}
	if got := inj.Injected(faultinject.FaultPanic); got != 2 {
		t.Errorf("injector recorded %d panics, want 2", got)
	}
}

// TestServeJobDeadline: a stalled point blows its wall-clock deadline and
// fails with the typed diagnosis-carrying error while its healthy
// siblings complete.
func TestServeJobDeadline(t *testing.T) {
	inj := mustInjector(t, "stash:stall")
	_, ts := newTestServer(t, Config{Workers: 2, Chaos: inj, Retries: -1,
		JobTimeout: 300 * time.Millisecond})
	doc := submit(t, ts, smallSweep("deadline"))
	final := wait(t, ts, doc.ID)

	var failed, done int
	for _, j := range final.Jobs {
		if inj.Decide(j.Label) != faultinject.FaultNone {
			failed++
			if j.Status != "failed" || !strings.Contains(j.Err, "deadline") {
				t.Errorf("stalled job %q: status %q err %q, want a deadline failure", j.Label, j.Status, j.Err)
			}
			if !strings.Contains(j.Err, "diagnosis") {
				t.Errorf("deadline error for %q carries no engine diagnosis: %q", j.Label, j.Err)
			}
		} else {
			done++
			if j.Status != "done" {
				t.Errorf("healthy job %q: status %q err %q", j.Label, j.Status, j.Err)
			}
		}
	}
	if failed == 0 || done == 0 {
		t.Fatalf("chaos spec did not split the sweep (failed=%d done=%d)", failed, done)
	}
	if m := getMetrics(t, ts); m.Canceled != uint64(failed) {
		t.Errorf("canceled counter = %d, want %d", m.Canceled, failed)
	}
}

// TestServeDeleteCancelsInFlight: DELETE /sweeps/{id} stops the sweep's
// running simulations at their next cooperative check — stalled points
// that would otherwise spin to the 50M-cycle watchdog unwind promptly and
// the sweep reaches finished with per-job canceled errors.
func TestServeDeleteCancelsInFlight(t *testing.T) {
	inj := mustInjector(t, "implicit:stall")
	_, ts := newTestServer(t, Config{Workers: 4, Chaos: inj, Retries: -1})
	doc := submit(t, ts, smallSweep("doomed"))

	// Wait until at least one simulation holds a pool slot.
	deadline := time.Now().Add(10 * time.Second)
	for getMetrics(t, ts).Jobs.Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no simulation started within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/sweeps/"+doc.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var delDoc sweepDoc
	if err := json.NewDecoder(resp.Body).Decode(&delDoc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !delDoc.Canceled {
		t.Errorf("DELETE response does not mark the sweep canceled")
	}

	start := time.Now()
	final := wait(t, ts, doc.ID)
	if waited := time.Since(start); waited > 30*time.Second {
		t.Errorf("sweep took %v to unwind after DELETE", waited)
	}
	if !final.Canceled || final.Failed != final.Total {
		t.Fatalf("after DELETE: canceled=%v failed=%d/%d, want all jobs failed",
			final.Canceled, final.Failed, final.Total)
	}
	for _, j := range final.Jobs {
		if !strings.Contains(j.Err, "cancel") {
			t.Errorf("job %q error %q does not identify the cancellation", j.Label, j.Err)
		}
	}
	if m := getMetrics(t, ts); m.Canceled != uint64(final.Total) {
		t.Errorf("canceled counter = %d, want %d", m.Canceled, final.Total)
	}
}

// TestServeJournalCrashRecovery is the kill -9 contract: results are
// journaled as they complete, so a server that dies without draining
// loses nothing already finished — a fresh server over the same directory
// replays the journal (visible on /readyz and /metrics) and re-serves the
// sweep with zero new simulations.
func TestServeJournalCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{Workers: 2, CacheDir: dir})
	doc := submit(t, ts1, smallSweep("pre-crash"))
	final := wait(t, ts1, doc.ID)
	if final.Failed != 0 {
		t.Fatalf("seed sweep failed: %+v", final)
	}
	// No Drain, no FlushCache: the process "dies" here. The journal must
	// already hold every completed result; per-key files must not exist.
	journal, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatalf("no journal after completed jobs: %v", err)
	}
	if n := bytes.Count(journal, []byte("\n")); n != final.Total {
		t.Fatalf("journal holds %d records, want %d", n, final.Total)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(files) != 0 {
		t.Fatalf("per-key files written before any flush: %v", files)
	}
	// Simulate the crash tearing a final, in-flight append.
	f, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, ts2 := newTestServer(t, Config{Workers: 2, CacheDir: dir})
	var ready struct {
		Ready           bool `json:"ready"`
		JournalReplayed int  `json:"journalReplayed"`
	}
	resp, err := http.Get(ts2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ready.Ready || ready.JournalReplayed != final.Total {
		t.Fatalf("readyz = %+v, want ready with %d replayed", ready, final.Total)
	}
	// Replay compacts: every entry now has its per-key file and the
	// journal is gone until the next fresh result.
	if files, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(files) != final.Total {
		t.Errorf("compaction wrote %d per-key files, want %d", len(files), final.Total)
	}
	// Boot compaction removes the replayed journal and reopens a fresh
	// (empty) one for subsequent results.
	if st, err := os.Stat(filepath.Join(dir, "journal.jsonl")); err == nil && st.Size() != 0 {
		t.Errorf("journal still holds %d bytes after boot compaction", st.Size())
	}

	doc2 := submit(t, ts2, smallSweep("post-crash"))
	final2 := wait(t, ts2, doc2.ID)
	for _, j := range final2.Jobs {
		if j.Status != "done" || !j.Cached {
			t.Errorf("post-crash job %q: status %q cached %v, want cached done", j.Label, j.Status, j.Cached)
		}
	}
	m := getMetrics(t, ts2)
	if m.Simulations != 0 {
		t.Errorf("restart re-simulated %d points; journal replay should serve all", m.Simulations)
	}
	if m.Cache.JournalReplayed != uint64(final.Total) {
		t.Errorf("journalReplayed metric = %d, want %d", m.Cache.JournalReplayed, final.Total)
	}
}

// TestServeDrainUnderLoad: a forced drain (grace already expired) with
// in-flight stalled jobs and an open SSE stream cancels the simulations
// cooperatively, lets every stream end, refuses new work, flips /readyz,
// and leaks no goroutines.
func TestServeDrainUnderLoad(t *testing.T) {
	inj := mustInjector(t, "implicit:stall")
	s, ts := newTestServer(t, Config{Workers: 4, CacheDir: t.TempDir(), Chaos: inj, Retries: -1})
	baseline := runtime.NumGoroutine()

	doc := submit(t, ts, smallSweep("drain-load"))
	// Open an SSE stream and hold it across the drain.
	sseResp, err := http.Get(ts.URL + "/sweeps/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for getMetrics(t, ts).Jobs.Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no simulation started within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.DrainContext(ctx); err != nil {
		t.Fatalf("DrainContext: %v", err)
	}

	// Draining: not ready, no new sweeps.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: status %d, want 503", resp.StatusCode)
	}
	if _, status := trySubmit(t, ts, smallSweep("late")); status != http.StatusServiceUnavailable {
		t.Errorf("submission during drain: status %d, want 503", status)
	}

	// The sweep finished (canceled), so the SSE stream must end with the
	// done event rather than hang.
	sawDone := false
	sc := bufio.NewScanner(sseResp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: done") {
			sawDone = true
		}
	}
	if !sawDone {
		t.Errorf("SSE stream did not end with the done event after drain")
	}
	final := wait(t, ts, doc.ID)
	if final.Failed != final.Total {
		t.Errorf("forced drain: %d/%d jobs failed, want all (canceled)", final.Failed, final.Total)
	}

	// No goroutine leaks: everything spawned for the sweep (pool waits,
	// flight leaders, SSE plumbing) unwinds. Allow scheduling slack.
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after drain: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeSubmissionBodyLimit: an oversized POST /sweeps body is refused
// with 413 instead of being buffered.
func TestServeSubmissionBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	big := fmt.Sprintf(`{"name":%q,"workloads":["implicit"]}`, strings.Repeat("x", maxSubmissionBytes))
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized submission: status %d, want 413", resp.StatusCode)
	}
}

// TestServeTimeoutOverride: submissions may override the default job
// deadline but a bad value is a 400 and the server cap always wins.
func TestServeTimeoutOverride(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	sub := smallSweep("bad-timeout")
	sub.Timeout = "soon"
	if _, status := trySubmit(t, ts, sub); status != http.StatusBadRequest {
		t.Errorf("bad timeout: status %d, want 400", status)
	}

	cfg := Config{JobTimeout: time.Minute, MaxJobTimeout: 2 * time.Minute}
	for _, tc := range []struct {
		override time.Duration
		want     time.Duration
	}{
		{0, time.Minute},                     // default applies
		{30 * time.Second, 30 * time.Second}, // override wins
		{time.Hour, 2 * time.Minute},         // cap beats the override
	} {
		if got := cfg.jobTimeout(tc.override); got != tc.want {
			t.Errorf("jobTimeout(%v) = %v, want %v", tc.override, got, tc.want)
		}
	}
	// A cap with no default still bounds every job.
	capped := Config{MaxJobTimeout: time.Minute}
	if got := capped.jobTimeout(0); got != time.Minute {
		t.Errorf("jobTimeout(0) under cap-only config = %v, want the cap", got)
	}
}

// TestFlightWaiterDetach: the singleflight keeps a shared run alive while
// any waiter remains — canceling sweep A's job must not kill the
// simulation sweep B is waiting on — and cancels the run only when the
// last waiter detaches.
func TestFlightWaiterDetach(t *testing.T) {
	var g flightGroup
	started := make(chan context.Context, 1)
	release := make(chan []byte, 1)
	fn := func(fctx context.Context) ([]byte, error) {
		started <- fctx
		select {
		case data := <-release:
			return data, nil
		case <-fctx.Done():
			return nil, fctx.Err()
		}
	}

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	type result struct {
		val []byte
		err error
	}
	aDone := make(chan result, 1)
	bDone := make(chan result, 1)
	go func() {
		val, err, _ := g.Do(ctxA, "k", fn)
		aDone <- result{val, err}
	}()
	fctx := <-started // the leader's fn is running
	go func() {
		val, err, _ := g.Do(context.Background(), "k", fn)
		bDone <- result{val, err}
	}()

	// Give B a moment to join the flight, then cancel A: A detaches with
	// its own context error while the flight keeps running for B.
	time.Sleep(20 * time.Millisecond)
	cancelA()
	a := <-aDone
	if !errors.Is(a.err, context.Canceled) {
		t.Fatalf("canceled waiter got %v, want context.Canceled", a.err)
	}
	select {
	case <-fctx.Done():
		t.Fatal("flight canceled while a waiter remained")
	default:
	}

	release <- []byte("result")
	b := <-bDone
	if b.err != nil || string(b.val) != "result" {
		t.Fatalf("surviving waiter got (%q, %v), want the result", b.val, b.err)
	}

	// Second flight: when the last waiter detaches, the flight context
	// must fire so the simulation stops.
	ctxC, cancelC := context.WithCancel(context.Background())
	cDone := make(chan result, 1)
	go func() {
		val, err, _ := g.Do(ctxC, "k2", fn)
		cDone <- result{val, err}
	}()
	fctx2 := <-started
	cancelC()
	<-cDone
	select {
	case <-fctx2.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("flight context did not cancel after the last waiter detached")
	}
}
