package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gsi"
	"gsi/internal/core"
)

// smallSweep is a fast 4-point submission (implicit microbenchmark, two
// local memories x two MSHR sizes, 1-SM tuned system, ~1k cycles each).
func smallSweep(name string) Submission {
	return Submission{
		Name:      name,
		Workloads: []string{"implicit"},
		LocalMems: []string{"scratchpad", "stash"},
		MSHRSizes: []int{16, 32},
		Params:    map[string]string{"warps": "4", "databytes": "2048", "rounds": "1"},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// submit POSTs a submission and decodes the acceptance document.
func submit(t *testing.T, ts *httptest.Server, sub Submission) sweepDoc {
	t.Helper()
	doc, status := trySubmit(t, ts, sub)
	if status != http.StatusAccepted {
		t.Fatalf("POST /sweeps: status %d", status)
	}
	return doc
}

func trySubmit(t *testing.T, ts *httptest.Server, sub Submission) (sweepDoc, int) {
	t.Helper()
	body, err := json.Marshal(sub)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc sweepDoc
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
	}
	return doc, resp.StatusCode
}

// wait blocks until the sweep finishes and returns its final status doc.
func wait(t *testing.T, ts *httptest.Server, id string) sweepDoc {
	t.Helper()
	resp, err := http.Get(ts.URL + "/sweeps/" + id + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc sweepDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Finished {
		t.Fatalf("sweep %s not finished after wait", id)
	}
	return doc
}

func getMetrics(t *testing.T, ts *httptest.Server) metricsSnapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func getResult(t *testing.T, ts *httptest.Server, key string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /results/%s: status %d", key, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeCachedSweepByteIdentical is the service's core contract:
// resubmitting a sweep serves every point from the content-addressed
// cache — zero new simulations, observable on /metrics — and the cached
// bytes are identical to the fresh run's.
func TestServeCachedSweepByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	first := submit(t, ts, smallSweep("first"))
	if first.Total != 4 {
		t.Fatalf("submission expanded to %d jobs, want 4", first.Total)
	}
	firstDone := wait(t, ts, first.ID)
	if firstDone.Failed != 0 {
		t.Fatalf("first pass had %d failures: %+v", firstDone.Failed, firstDone.Jobs)
	}
	m := getMetrics(t, ts)
	if m.Simulations != 4 {
		t.Fatalf("first pass ran %d simulations, want 4", m.Simulations)
	}
	fresh := map[string][]byte{}
	for _, job := range firstDone.Jobs {
		fresh[job.Key] = getResult(t, ts, job.Key)
		if _, err := gsi.DecodeReport(fresh[job.Key]); err != nil {
			t.Fatalf("job %q: cached bytes are not a Report: %v", job.Label, err)
		}
	}

	second := submit(t, ts, smallSweep("second"))
	secondDone := wait(t, ts, second.ID)
	if secondDone.Failed != 0 {
		t.Fatalf("second pass had %d failures", secondDone.Failed)
	}
	m = getMetrics(t, ts)
	if m.Simulations != 4 {
		t.Errorf("second pass ran %d new simulations, want 0 (total still 4)", m.Simulations-4)
	}
	if m.Cache.Hits != 4 {
		t.Errorf("second pass recorded %d cache hits, want 4", m.Cache.Hits)
	}
	for i, job := range secondDone.Jobs {
		if !job.Cached {
			t.Errorf("second-pass job %q not marked cached", job.Label)
		}
		if job.Key != firstDone.Jobs[i].Key {
			t.Errorf("job %q: key changed between submissions", job.Label)
		}
		if got := getResult(t, ts, job.Key); !bytes.Equal(got, fresh[job.Key]) {
			t.Errorf("job %q: cached response not byte-identical to fresh run", job.Label)
		}
	}
	if m.Jobs.Done != 8 || m.Jobs.Queued != 0 || m.Jobs.Running != 0 {
		t.Errorf("job gauges off: %+v", m.Jobs)
	}
}

// TestServeConcurrentOverlappingSubmissions: many clients submitting the
// same grid at once must collapse onto one simulation per distinct point
// (cache + singleflight), every response byte-identical. Run under -race
// this is also the server's concurrency-safety test.
func TestServeConcurrentOverlappingSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	const clients = 6
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			doc, status := trySubmit(t, ts, smallSweep(fmt.Sprintf("client-%d", c)))
			if status == http.StatusAccepted {
				ids[c] = doc.ID
			}
		}(c)
	}
	wg.Wait()
	keys := map[string][]byte{}
	for _, id := range ids {
		if id == "" {
			t.Fatal("a concurrent submission was not accepted")
		}
		done := wait(t, ts, id)
		if done.Failed != 0 {
			t.Fatalf("sweep %s had failures: %+v", id, done.Jobs)
		}
		for _, job := range done.Jobs {
			data := getResult(t, ts, job.Key)
			if prev, ok := keys[job.Key]; ok && !bytes.Equal(prev, data) {
				t.Errorf("key %s served different bytes to different clients", job.Key)
			}
			keys[job.Key] = data
		}
	}
	if len(keys) != 4 {
		t.Fatalf("%d distinct keys, want 4", len(keys))
	}
	m := getMetrics(t, ts)
	if m.Simulations != 4 {
		t.Errorf("%d simulations for %d distinct points across %d clients (dedup failed)",
			m.Simulations, len(keys), clients)
	}
	if got := m.Cache.Hits + m.Cache.DedupHits + m.Simulations; got != clients*4 {
		t.Errorf("hits(%d) + dedup(%d) + simulations(%d) = %d, want %d jobs accounted",
			m.Cache.Hits, m.Cache.DedupHits, m.Simulations, got, clients*4)
	}
}

// TestServeDrain: after BeginDrain the server refuses new submissions
// with 503 while in-flight jobs run to completion.
func TestServeDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	doc := submit(t, ts, smallSweep("pre-drain"))
	s.BeginDrain()
	if _, status := trySubmit(t, ts, smallSweep("late")); status != http.StatusServiceUnavailable {
		t.Fatalf("late submission got status %d, want 503", status)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	done := wait(t, ts, doc.ID)
	if done.Failed != 0 || done.Done != done.Total {
		t.Fatalf("in-flight sweep did not complete cleanly: %+v", done)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]bool
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health["draining"] {
		t.Error("healthz does not report draining")
	}
}

// TestServeEventsStream: the SSE endpoint delivers one progress event per
// job (replayed or live) and a terminal done event.
func TestServeEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	doc := submit(t, ts, smallSweep("events"))
	resp, err := http.Get(ts.URL + "/sweeps/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var events []progressEvent
	sawDone := false
	scanner := bufio.NewScanner(resp.Body)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if event == "done" {
				sawDone = true
				continue
			}
			var ev progressEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad event payload %q: %v", line, err)
			}
			events = append(events, ev)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != doc.Total {
		t.Fatalf("%d progress events, want %d", len(events), doc.Total)
	}
	if !sawDone {
		t.Error("stream ended without a done event")
	}
	seen := map[int]bool{}
	for _, ev := range events {
		if ev.Total != doc.Total || ev.Err != "" {
			t.Errorf("unexpected event %+v", ev)
		}
		seen[ev.Index] = true
	}
	if len(seen) != doc.Total {
		t.Errorf("events covered %d distinct jobs, want %d", len(seen), doc.Total)
	}
}

// TestServeJobErrorsSurface: a submission whose points cannot build (uts
// has no local-memory parameter) completes with per-job errors that name
// the cause, on both the status document and the event stream.
func TestServeJobErrorsSurface(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	doc := submit(t, ts, Submission{
		Name:      "broken",
		Workloads: []string{"uts"},
		LocalMems: []string{"stash"},
	})
	done := wait(t, ts, doc.ID)
	if done.Failed != done.Total {
		t.Fatalf("%d of %d jobs failed, want all", done.Failed, done.Total)
	}
	for _, job := range done.Jobs {
		if job.Status != "failed" || !strings.Contains(job.Err, `no parameter "local"`) {
			t.Errorf("job %q: status %q err %q does not explain the failure",
				job.Label, job.Status, job.Err)
		}
	}
	m := getMetrics(t, ts)
	if m.Simulations != 0 {
		t.Errorf("broken jobs still ran %d simulations", m.Simulations)
	}
	if m.Jobs.Failed != uint64(done.Total) {
		t.Errorf("metrics count %d failures, want %d", m.Jobs.Failed, done.Total)
	}
}

// TestServeSubmissionValidation: malformed submissions are rejected up
// front with 400s, not accepted as doomed sweeps.
func TestServeSubmissionValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, sub := range map[string]Submission{
		"no workloads":     {Name: "x"},
		"unknown workload": {Workloads: []string{"nosuch"}},
		"bad protocol":     {Workloads: []string{"uts"}, Protocols: []string{"mesi"}},
		"bad local memory": {Workloads: []string{"implicit"}, LocalMems: []string{"l3"}},
	} {
		if _, status := trySubmit(t, ts, sub); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("syntactically bad body: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/results/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown result key: status %d, want 404", resp.StatusCode)
	}
}

// TestServeCachePersistence: a drained server flushes its cache to the
// configured directory, and a fresh server over the same directory serves
// the old results without re-simulating.
func TestServeCachePersistence(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{Workers: 2, CacheDir: dir})
	doc := submit(t, ts1, smallSweep("warmup"))
	done := wait(t, ts1, doc.ID)
	if err := s1.Drain(); err != nil {
		t.Fatal(err)
	}
	fresh := map[string][]byte{}
	for _, job := range done.Jobs {
		fresh[job.Key] = getResult(t, ts1, job.Key)
	}
	ts1.Close()

	_, ts2 := newTestServer(t, Config{Workers: 2, CacheDir: dir})
	doc2 := submit(t, ts2, smallSweep("warm"))
	done2 := wait(t, ts2, doc2.ID)
	m := getMetrics(t, ts2)
	if m.Simulations != 0 {
		t.Errorf("warm server re-ran %d simulations", m.Simulations)
	}
	if m.Cache.Hits != uint64(done2.Total) {
		t.Errorf("warm server recorded %d hits, want %d", m.Cache.Hits, done2.Total)
	}
	for _, job := range done2.Jobs {
		if got := getResult(t, ts2, job.Key); !bytes.Equal(got, fresh[job.Key]) {
			t.Errorf("persisted result for %q differs from the original run", job.Label)
		}
	}
}

// TestServeMetricsHistogram: fresh simulations populate the ns-per-cycle
// histogram (total observations equal the simulation count) and the
// aggregate cycle/nanosecond counters.
func TestServeMetricsHistogram(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	doc := submit(t, ts, smallSweep("hist"))
	wait(t, ts, doc.ID)
	m := getMetrics(t, ts)
	var observations uint64
	for _, b := range m.NsPerCycle {
		observations += b.Count
	}
	if observations != m.Simulations {
		t.Errorf("histogram holds %d observations for %d simulations", observations, m.Simulations)
	}
	if m.SimCycles == 0 {
		t.Error("no simulated cycles recorded")
	}
	if m.NsPerCycle[len(m.NsPerCycle)-1].Le != nil {
		t.Error("last histogram bucket should be the +Inf overflow (le null)")
	}
}

// tracedPoint is a one-point submission with the trace opt-in set.
func tracedPoint(name string, trace bool) Submission {
	return Submission{
		Name:      name,
		Workloads: []string{"implicit"},
		Params:    map[string]string{"warps": "4", "databytes": "2048", "rounds": "1"},
		Trace:     trace,
	}
}

// TestServeTraceArtifact: a submission with "trace": true stores a
// Chrome-trace artifact next to the cached result, served at
// /results/{key}/trace; the result bytes themselves stay byte-identical
// to an untraced run (trace presence is outside the cache identity), and
// a key that never opted in has no artifact.
func TestServeTraceArtifact(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 2, CacheDir: dir})
	done := wait(t, ts, submit(t, ts, tracedPoint("traced", true)).ID)
	if done.Failed != 0 {
		t.Fatalf("traced sweep had failures: %+v", done.Jobs)
	}
	key := done.Jobs[0].Key

	resp, err := http.Get(ts.URL + "/results/" + key + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d", resp.StatusCode)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatalf("trace artifact is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("trace artifact has no events")
	}

	// Tracing must not have perturbed the result: an untraced submission
	// of the same point is a cache hit on the same key with the same bytes.
	tracedBytes := getResult(t, ts, key)
	done2 := wait(t, ts, submit(t, ts, tracedPoint("untraced", false)).ID)
	if done2.Jobs[0].Key != key {
		t.Fatalf("trace opt-in changed the cache key: %s vs %s", done2.Jobs[0].Key, key)
	}
	if !done2.Jobs[0].Cached {
		t.Error("untraced resubmission was not a cache hit")
	}
	if !bytes.Equal(getResult(t, ts, key), tracedBytes) {
		t.Error("result bytes changed between traced and untraced submissions")
	}

	// The artifact is written through to the cache directory with a
	// suffix the result boot-glob ignores.
	if _, err := os.Stat(filepath.Join(dir, key+".trace")); err != nil {
		t.Errorf("trace artifact not persisted: %v", err)
	}

	// A restarted server serves the persisted artifact from disk.
	_, ts2 := newTestServer(t, Config{Workers: 2, CacheDir: dir})
	resp2, err := http.Get(ts2.URL + "/results/" + key + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("restarted server: GET trace status %d", resp2.StatusCode)
	}

	// A fresh key that never opted in has no artifact.
	done3 := wait(t, ts, submit(t, ts, Submission{
		Name:      "plain",
		Workloads: []string{"implicit"},
		Params:    map[string]string{"warps": "2", "databytes": "1024", "rounds": "1"},
	}).ID)
	resp3, err := http.Get(ts.URL + "/results/" + done3.Jobs[0].Key + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("untraced key served a trace: status %d", resp3.StatusCode)
	}
}

// TestServeStallMetrics: fresh simulations fold their per-kind stall
// cycles and engine counters into /metrics, in both the JSON and the
// Prometheus renderings; cached jobs do not double-count.
func TestServeStallMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	wait(t, ts, submit(t, ts, smallSweep("stalls")).ID)
	m := getMetrics(t, ts)
	var total uint64
	for _, n := range m.StallCycles {
		total += n
	}
	if total == 0 {
		t.Fatal("no stall cycles folded into /metrics")
	}
	if len(m.StallCycles) != core.NumStallKinds {
		t.Errorf("StallCycles has %d kinds, want %d", len(m.StallCycles), core.NumStallKinds)
	}
	before := total

	// A cache-hit pass must leave the aggregates untouched.
	wait(t, ts, submit(t, ts, smallSweep("again")).ID)
	m = getMetrics(t, ts)
	total = 0
	for _, n := range m.StallCycles {
		total += n
	}
	if total != before {
		t.Errorf("cached pass changed the stall aggregate: %d -> %d", before, total)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, series := range []string{
		`gsi_stall_cycles_total{kind="idle"}`,
		"gsi_engine_jumps_total",
		"gsi_engine_express_deliveries_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("prometheus output missing %s", series)
		}
	}
}
