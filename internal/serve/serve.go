// Package serve implements sweep-as-a-service: a long-running HTTP/JSON
// server that accepts sweep submissions in the public Grid/Axes
// vocabulary, expands them into jobs on one shared bounded worker pool,
// and answers through a content-addressed result cache.
//
// The cache is sound because simulations are deterministic: a grid point
// is fully described by (Options, workload name, parameters), so its
// gsi.CacheKey content address maps to exactly one correct serialized
// Report, and a cached response is byte-identical to a fresh run.
// Identical grid points from overlapping client sweeps therefore become
// cache hits instead of re-simulations, and concurrent duplicates share
// one in-flight run via singleflight. See docs/ARCHITECTURE.md, "Sweep
// serving and the result cache".
//
// Failure is isolated per grid point: a panicking or deadline-blown job
// becomes a typed per-job error (streamed like any other completion) and
// never poisons its siblings, the cache, or the process. See
// docs/ARCHITECTURE.md, "Failure domains and recovery".
//
// Endpoints:
//
//	POST   /sweeps            submit a sweep (Submission document); 202 + job keys
//	GET    /sweeps            list sweeps
//	GET    /sweeps/{id}       sweep status (+ ?wait=1 to block until finished)
//	DELETE /sweeps/{id}       cancel the sweep's unfinished jobs
//	GET    /sweeps/{id}/events  per-job progress as Server-Sent Events
//	GET    /results/{key}     cached Report bytes by content address
//	GET    /results/{key}/trace  Chrome/Perfetto trace of the run (submissions with "trace": true)
//	GET    /metrics           jobs queued/running/done, cache hits/bytes/evictions, stall-cycle and
//	                          engine counters, ns-per-cycle histogram
//	                          (?format=prometheus for the text exposition format)
//	GET    /healthz           liveness (reports draining state)
//	GET    /readyz            readiness: 503 while draining; reports journal replay
//	GET    /debug/pprof/      live profiles (internal/prof)
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"gsi"
	"gsi/internal/faultinject"
	"gsi/internal/prof"
	"gsi/internal/sweep"
)

// maxSubmissionBytes bounds a POST /sweeps request body; a submission is
// a small JSON grid document, so anything past this is a client bug or
// abuse, not a bigger sweep.
const maxSubmissionBytes = 1 << 20

// Transient-failure retry policy: a failed attempt whose error is
// retryable (a contained panic or an I/O error — see retryable) is
// re-run up to the configured attempt budget with exponential backoff,
// jittered to keep a burst of failures from retrying in lockstep.
const (
	defaultRetries   = 2
	retryBackoffBase = 25 * time.Millisecond
)

// errSimPanic classifies a simulation attempt that panicked and was
// contained; the wrapped error carries the panic value and stack.
var errSimPanic = errors.New("serve: simulation panicked")

// Config parameterizes a Server.
type Config struct {
	// Workers bounds the shared simulation pool: at most this many
	// simulations run at once across all submissions (anything below 1
	// selects GOMAXPROCS, as in SweepConfig.Parallel).
	Workers int
	// Engine selects the scheduling loop every job runs under. Results
	// are byte-identical across modes, so this is a wall-clock knob; the
	// cache key canonicalizes it away.
	Engine gsi.EngineMode
	// Parallel, when >= 2, runs every simulation under the parallel tick
	// engine with that many tick workers (also a pure wall-clock knob —
	// the cache key canonicalizes it away). The pool size then shrinks to
	// keep Workers x Parallel within the machine; see New.
	Parallel int
	// CacheDir, when non-empty, persists the result cache: entries found
	// there are loaded at startup and new entries are written back by
	// Drain (or FlushCache).
	CacheDir string
	// CacheMaxEntries and CacheMaxBytes bound the in-memory result cache
	// with LRU eviction (0 = unlimited). Eviction is sound — a future
	// request re-simulates to the identical bytes — and evicted entries
	// not yet flushed to CacheDir are written out on the way.
	CacheMaxEntries int
	CacheMaxBytes   int
	// JobTimeout is the default per-job wall-clock deadline: a simulation
	// running longer is canceled at its next cooperative check and fails
	// with gsi.ErrDeadline (carrying the engine diagnosis). 0 means no
	// deadline. Submissions may override it per request, up to
	// MaxJobTimeout.
	JobTimeout time.Duration
	// MaxJobTimeout caps the effective per-job deadline, including
	// per-submission overrides (0 = no cap).
	MaxJobTimeout time.Duration
	// Retries is the transient-failure retry budget per job: 0 selects
	// the default (2), negative disables retries.
	Retries int
	// Chaos, when non-nil, wraps every fresh simulation's workload with
	// the fault injector — test wiring for the chaos gate, never for
	// production serving. Injected failures are contained exactly like
	// real ones; faulted results are never cached.
	Chaos *faultinject.Injector
}

// retryBudget resolves Config.Retries.
func (c Config) retryBudget() int {
	switch {
	case c.Retries < 0:
		return 0
	case c.Retries == 0:
		return defaultRetries
	}
	return c.Retries
}

// jobTimeout resolves the effective deadline for one submission:
// override (when positive) beats the default, and MaxJobTimeout caps
// the result.
func (c Config) jobTimeout(override time.Duration) time.Duration {
	t := c.JobTimeout
	if override > 0 {
		t = override
	}
	if c.MaxJobTimeout > 0 && (t <= 0 || t > c.MaxJobTimeout) {
		t = c.MaxJobTimeout
	}
	return t
}

// Server is the sweep service. Create with New, mount Handler on an
// http.Server, and Drain on shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	sem     chan struct{}
	cache   *resultCache
	flight  flightGroup
	metrics *metrics

	// rootCtx parents every sweep's context (and, through the flight
	// group, every simulation); rootCancel is the hard-stop lever the
	// forced-drain path pulls.
	rootCtx    context.Context
	rootCancel context.CancelFunc

	mu       sync.Mutex
	draining bool
	sweeps   map[string]*sweepRun
	order    []string
	nextID   int

	jobs sync.WaitGroup
}

// New builds a Server, loading any persisted cache entries.
func New(cfg Config) (*Server, error) {
	cache, err := newResultCache(cfg.CacheDir, cfg.CacheMaxEntries, cfg.CacheMaxBytes)
	if err != nil {
		return nil, err
	}
	workers := sweep.Workers(cfg.Workers)
	if cfg.Parallel > 1 {
		// Nested-parallelism budget: each simulation spreads its tick
		// pass over cfg.Parallel workers, so the concurrent-simulation
		// pool shrinks to keep the product within the machine.
		if max := runtime.NumCPU() / cfg.Parallel; workers > max {
			workers = max
		}
		if workers < 1 {
			workers = 1
		}
	}
	rootCtx, rootCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		sem:        make(chan struct{}, workers),
		cache:      cache,
		metrics:    newMetrics(),
		rootCtx:    rootCtx,
		rootCancel: rootCancel,
		sweeps:     map[string]*sweepRun{},
	}
	s.flight.root = rootCtx
	s.mux.HandleFunc("/sweeps", s.handleSweeps)
	s.mux.HandleFunc("/sweeps/", s.handleSweep)
	s.mux.HandleFunc("/results/", s.handleResult)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	prof.Routes(s.mux)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain stops the server accepting new sweep submissions (they are
// refused with 503); jobs already submitted keep running.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// WaitJobs blocks until every submitted job has finished.
func (s *Server) WaitJobs() { s.jobs.Wait() }

// FlushCache persists cache entries not yet on disk (no-op without a
// cache directory).
func (s *Server) FlushCache() error { return s.cache.flush() }

// Drain is the graceful-shutdown sequence: stop accepting, let running
// jobs finish, flush the cache. The caller then shuts the http.Server
// down so streaming responses complete.
func (s *Server) Drain() error {
	return s.DrainContext(context.Background())
}

// DrainContext is Drain with a grace bound: if ctx fires before the
// in-flight jobs finish on their own, every running simulation is
// canceled cooperatively (it unwinds at its next context check with
// gsi.ErrCanceled) and the drain completes once they do. Completed
// results are journaled as they finish, so even a forced drain loses
// only work that was still in flight.
func (s *Server) DrainContext(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.rootCancel()
		<-done
	}
	return s.FlushCache()
}

// Submission is the POST /sweeps request body: a cartesian grid in the
// public Grid/Axes vocabulary. Workloads is required (registry names);
// an empty axis contributes its default point exactly as gsi.Grid does.
// Params are registry parameter overrides applied to every point.
type Submission struct {
	Name         string            `json:"name"`
	Workloads    []string          `json:"workloads"`
	Protocols    []string          `json:"protocols,omitempty"`
	MSHRSizes    []int             `json:"mshrSizes,omitempty"`
	LocalMems    []string          `json:"localMems,omitempty"`
	SFIFO        []bool            `json:"sfifo,omitempty"`
	OwnedAtomics []bool            `json:"ownedAtomics,omitempty"`
	StrongCycle  []bool            `json:"strongCycle,omitempty"`
	Params       map[string]string `json:"params,omitempty"`
	// Timeout overrides the server's default per-job deadline for this
	// submission (Go duration syntax, e.g. "90s"); the server's
	// -job-timeout-max cap still applies.
	Timeout string `json:"timeout,omitempty"`
	// Trace, when true, records a structured event trace for every fresh
	// simulation this submission triggers and stores the Chrome/Perfetto
	// artifact next to the cached result, served at
	// /results/{key}/trace. Tracing never changes the Report or the cache
	// key: a traced and an untraced submission of the same grid point
	// share one result entry, and a job served from the cache (or from a
	// shared in-flight run) reuses whatever trace artifact the key
	// already has rather than re-simulating.
	Trace bool `json:"trace,omitempty"`
}

// grid expands the submission into the equivalent gsi.Grid.
func (sub Submission) grid(mode gsi.EngineMode, parallel int) (gsi.Grid, error) {
	if len(sub.Workloads) == 0 {
		return gsi.Grid{}, fmt.Errorf("serve: submission needs at least one workload")
	}
	reg := gsi.Workloads()
	for _, name := range sub.Workloads {
		if _, ok := reg.Lookup(name); !ok {
			return gsi.Grid{}, fmt.Errorf("serve: unknown workload %q", name)
		}
	}
	g := gsi.Grid{
		Name:         sub.Name,
		Workloads:    sub.Workloads,
		MSHRSizes:    sub.MSHRSizes,
		SFIFO:        sub.SFIFO,
		OwnedAtomics: sub.OwnedAtomics,
		StrongCycle:  sub.StrongCycle,
		Params:       gsi.WorkloadValues(sub.Params),
		System:       gsi.SystemConfig{Engine: mode, Parallel: parallel},
	}
	for _, p := range sub.Protocols {
		proto, err := gsi.ParseProtocol(p)
		if err != nil {
			return gsi.Grid{}, err
		}
		g.Protocols = append(g.Protocols, proto)
	}
	for _, lm := range sub.LocalMems {
		kind, err := gsi.ParseLocalMem(lm)
		if err != nil {
			return gsi.Grid{}, err
		}
		g.LocalMems = append(g.LocalMems, kind)
	}
	return g, nil
}

// jobState is one grid point of a submitted sweep. Immutable fields are
// set at submission; status/errMsg are guarded by the sweepRun mutex.
type jobState struct {
	index   int
	label   string
	key     string
	options gsi.Options
	thunk   func() gsi.Workload
	timeout time.Duration // effective wall-clock deadline; 0 = none
	trace   bool          // record + store a trace artifact on a fresh run

	status string // "queued", "running", "done", "failed"
	errMsg string
	cached bool
}

// progressEvent is one job-completion event, the serve counterpart of
// gsi.SweepProgress (plus the cache disposition), streamed on
// /sweeps/{id}/events and replayed to late subscribers.
type progressEvent struct {
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Index  int    `json:"index"`
	Label  string `json:"label"`
	Err    string `json:"err,omitempty"`
	Cached bool   `json:"cached"`
}

// sweepRun is the server-side state of one submission. ctx parents every
// job's work; cancel (DELETE /sweeps/{id}) detaches the sweep's jobs
// from their simulations — a simulation shared with another sweep keeps
// running for that sweep, an unshared one stops at its next cooperative
// check.
type sweepRun struct {
	id     string
	name   string
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	jobs     []jobState
	done     int
	failed   int
	canceled bool
	events   []progressEvent
	subs     map[chan progressEvent]bool
	finished chan struct{}
}

// subscribe registers an events channel, returning the events already
// emitted (for replay) and whether the sweep is already finished. The
// channel is buffered for every remaining event, so senders never block.
func (sw *sweepRun) subscribe() (replay []progressEvent, ch chan progressEvent, finished bool) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	replay = append(replay, sw.events...)
	if sw.done == len(sw.jobs) {
		return replay, nil, true
	}
	ch = make(chan progressEvent, len(sw.jobs)-sw.done)
	sw.subs[ch] = true
	return replay, ch, false
}

// unsubscribe removes a subscriber (client went away before the end).
func (sw *sweepRun) unsubscribe(ch chan progressEvent) {
	sw.mu.Lock()
	delete(sw.subs, ch)
	sw.mu.Unlock()
}

// setRunning marks a job as actively processing.
func (sw *sweepRun) setRunning(i int) {
	sw.mu.Lock()
	sw.jobs[i].status = "running"
	sw.mu.Unlock()
}

// complete records one job's outcome, emits its progress event, and on
// the last job closes finished and the subscriber channels.
func (sw *sweepRun) complete(i int, errMsg string, cached bool) {
	sw.mu.Lock()
	job := &sw.jobs[i]
	job.errMsg = errMsg
	job.cached = cached
	job.status = "done"
	if errMsg != "" {
		job.status = "failed"
		sw.failed++
	}
	sw.done++
	ev := progressEvent{Done: sw.done, Total: len(sw.jobs), Index: i,
		Label: job.label, Err: errMsg, Cached: cached}
	sw.events = append(sw.events, ev)
	last := sw.done == len(sw.jobs)
	for ch := range sw.subs {
		ch <- ev // buffered for every remaining event; never blocks
		if last {
			close(ch)
		}
	}
	if last {
		sw.subs = map[chan progressEvent]bool{}
		close(sw.finished)
	}
	sw.mu.Unlock()
}

// sweepDoc is the JSON view of a sweep's status.
type sweepDoc struct {
	ID       string   `json:"id"`
	Name     string   `json:"name"`
	Total    int      `json:"total"`
	Done     int      `json:"done"`
	Failed   int      `json:"failed"`
	Finished bool     `json:"finished"`
	Canceled bool     `json:"canceled,omitempty"`
	Jobs     []jobDoc `json:"jobs,omitempty"`
}

// jobDoc is the JSON view of one job. Result is the job's content
// address; fetch the Report bytes from /results/{result}.
type jobDoc struct {
	Index  int    `json:"index"`
	Label  string `json:"label"`
	Key    string `json:"key"`
	Status string `json:"status"`
	Err    string `json:"err,omitempty"`
	Cached bool   `json:"cached,omitempty"`
}

// doc snapshots the sweep, with per-job detail when jobs is true.
func (sw *sweepRun) doc(jobs bool) sweepDoc {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	d := sweepDoc{ID: sw.id, Name: sw.name, Total: len(sw.jobs),
		Done: sw.done, Failed: sw.failed, Finished: sw.done == len(sw.jobs),
		Canceled: sw.canceled}
	if !jobs {
		return d
	}
	d.Jobs = make([]jobDoc, len(sw.jobs))
	for i, j := range sw.jobs {
		d.Jobs[i] = jobDoc{Index: j.index, Label: j.label, Key: j.key,
			Status: j.status, Err: j.errMsg, Cached: j.cached}
	}
	return d
}

// handleSweeps serves POST /sweeps (submit) and GET /sweeps (list).
func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submit(w, r)
	case http.MethodGet:
		s.mu.Lock()
		docs := make([]sweepDoc, 0, len(s.order))
		for _, id := range s.order {
			docs = append(docs, s.sweeps[id].doc(false))
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, docs)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// submit expands a Submission into jobs, registers the sweep, and kicks
// every job onto the shared pool. Jobs whose key is already cached (or
// already in flight) complete without a fresh simulation.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmissionBytes)
	var sub Submission
	if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, fmt.Sprintf("bad submission: %v", err), status)
		return
	}
	var override time.Duration
	if sub.Timeout != "" {
		d, err := time.ParseDuration(sub.Timeout)
		if err != nil || d < 0 {
			http.Error(w, fmt.Sprintf("bad submission timeout %q", sub.Timeout), http.StatusBadRequest)
			return
		}
		override = d
	}
	grid, err := sub.grid(s.cfg.Engine, s.cfg.Parallel)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	batch := grid.Sweep()
	ctx, cancel := context.WithCancel(s.rootCtx)
	sw := &sweepRun{
		name:     grid.Name,
		ctx:      ctx,
		cancel:   cancel,
		jobs:     make([]jobState, len(batch.Jobs)),
		subs:     map[chan progressEvent]bool{},
		finished: make(chan struct{}),
	}
	timeout := s.cfg.jobTimeout(override)
	for i, job := range batch.Jobs {
		sw.jobs[i] = jobState{
			index:   i,
			label:   job.Label,
			key:     gsi.CacheKey(job.Options, job.Axes.Workload, grid.PointParams(job.Axes)),
			options: job.Options,
			thunk:   job.Workload,
			timeout: timeout,
			trace:   sub.Trace,
			status:  "queued",
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		http.Error(w, "draining: not accepting new sweeps", http.StatusServiceUnavailable)
		return
	}
	s.nextID++
	sw.id = fmt.Sprintf("s%d", s.nextID)
	s.sweeps[sw.id] = sw
	s.order = append(s.order, sw.id)
	// Register the jobs with the drain group while still holding the
	// lock: BeginDrain flips draining under the same lock, so every
	// accepted job is Added before WaitJobs can observe the group.
	s.jobs.Add(len(sw.jobs))
	s.mu.Unlock()

	s.metrics.enqueue(len(sw.jobs))
	go func() {
		// Release the sweep's context once every job has completed.
		<-sw.finished
		cancel()
	}()
	for i := range sw.jobs {
		go s.runJob(sw, i)
	}
	writeJSON(w, http.StatusAccepted, sw.doc(true))
}

// runJob resolves one job: cache hit, shared in-flight run, or a fresh
// simulation on the bounded pool. Any failure — panic, deadline,
// cancellation, simulation error — lands in this job's error slot and
// nowhere else: siblings keep running and nothing failed is cached.
func (s *Server) runJob(sw *sweepRun, i int) {
	defer s.jobs.Done()
	job := &sw.jobs[i]
	if _, ok := s.cache.get(job.key); ok {
		s.metrics.cacheHit()
		s.metrics.jobDone(false)
		sw.complete(i, "", true)
		return
	}
	sw.setRunning(i)
	_, err, shared := s.flight.Do(sw.ctx, job.key, func(fctx context.Context) ([]byte, error) {
		// The slot gates the simulation itself; singleflight followers
		// wait without occupying the pool, and a flight nobody wants any
		// more gives up the wait.
		select {
		case s.sem <- struct{}{}:
		case <-fctx.Done():
			return nil, fctx.Err()
		}
		defer func() { <-s.sem }()
		if data, ok := s.cache.get(job.key); ok {
			// A previous leader finished between our cache check and
			// flight entry; serve its bytes.
			return data, nil
		}
		var lastErr error
		for attempt := 0; attempt <= s.cfg.retryBudget(); attempt++ {
			if attempt > 0 {
				s.metrics.retried()
				if !sleepCtx(fctx, backoff(attempt)) {
					return nil, fctx.Err()
				}
			}
			data, err := s.simulate(fctx, job)
			if err == nil {
				return data, nil
			}
			lastErr = err
			if !retryable(err) || fctx.Err() != nil {
				break
			}
		}
		return nil, lastErr
	})
	cached := false
	if shared && err == nil {
		s.metrics.dedupHit()
		cached = true
	}
	var errMsg string
	if err != nil {
		errMsg = err.Error()
		if isCancelClass(err) {
			s.metrics.cancel()
		}
	}
	s.metrics.jobDone(err != nil)
	sw.complete(i, errMsg, cached)
}

// simulate runs one attempt at a job's simulation under the job's
// wall-clock deadline, containing any panic (a component bug, an injected
// fault) as a typed error: the pool worker survives, the sweep's other
// points are untouched, and nothing is cached.
func (s *Server) simulate(fctx context.Context, job *jobState) (data []byte, err error) {
	runCtx := fctx
	if job.timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(fctx, job.timeout)
		defer cancel()
	}
	s.metrics.runStart()
	defer s.metrics.runEnd()
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panicked()
			err = fmt.Errorf("%w: %v\n%s", errSimPanic, r, debug.Stack())
		}
	}()
	wl := job.thunk()
	if s.cfg.Chaos != nil {
		wl = s.cfg.Chaos.Wrap(job.label, wl).(gsi.Workload)
	}
	// Tracing rides on a copy of the job's options: the collector is
	// attempt-local (a retried attempt restarts it), and the stored
	// options stay trace-free so the cache key derivation they fed
	// remains visibly untouched.
	opts := job.options
	var tr *gsi.Trace
	if job.trace {
		tr = gsi.NewTrace()
		opts.Trace = tr
	}
	start := time.Now()
	rep, err := gsi.RunContext(runCtx, opts, wl)
	if err != nil {
		return nil, err
	}
	doc, err := rep.JSON()
	if err != nil {
		return nil, err
	}
	s.cache.put(job.key, doc)
	if tr != nil {
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err == nil {
			s.cache.putTrace(job.key, buf.Bytes())
		}
	}
	s.metrics.report(rep)
	s.metrics.simulation(uint64(time.Since(start).Nanoseconds()), rep.Cycles)
	return doc, nil
}

// retryable classifies a failed attempt: contained panics and I/O errors
// are worth a bounded retry; everything else — deterministic simulation
// failures (ErrMaxCycles, ErrStalled, verification), deadlines,
// cancellation — fails the same way every time or was asked for, so
// retrying only burns pool time.
func retryable(err error) bool {
	if errors.Is(err, errSimPanic) {
		return true
	}
	var pathErr *os.PathError
	var sysErr *os.SyscallError
	return errors.As(err, &pathErr) || errors.As(err, &sysErr)
}

// isCancelClass reports whether a job error came from cancellation or a
// deadline rather than the simulation itself.
func isCancelClass(err error) bool {
	return errors.Is(err, gsi.ErrCanceled) || errors.Is(err, gsi.ErrDeadline) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// backoff returns the jittered exponential delay before retry attempt n
// (n >= 1): base*2^(n-1), plus up to 100% jitter so a burst of transient
// failures does not retry in lockstep.
func backoff(n int) time.Duration {
	d := retryBackoffBase << (n - 1)
	return d + time.Duration(rand.Int63n(int64(d)))
}

// sleepCtx sleeps for d, reporting false if ctx fires first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// handleSweep serves GET /sweeps/{id} (status, ?wait=1 blocks until the
// sweep finishes), DELETE /sweeps/{id} (cancel the sweep's unfinished
// jobs), and GET /sweeps/{id}/events (SSE progress stream).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/sweeps/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	sw, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("no sweep %q", id), http.StatusNotFound)
		return
	}
	if r.Method == http.MethodDelete && sub == "" {
		sw.mu.Lock()
		sw.canceled = true
		sw.mu.Unlock()
		// Unfinished jobs observe the cancellation at their next
		// cooperative check and complete with a canceled error; the
		// sweep still reaches finished, so waiters and SSE streams end
		// normally.
		sw.cancel()
		writeJSON(w, http.StatusOK, sw.doc(false))
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch sub {
	case "":
		if r.URL.Query().Get("wait") != "" {
			// A long poll can outlive the server's WriteTimeout budget;
			// lift the per-connection write deadline for this response.
			http.NewResponseController(w).SetWriteDeadline(time.Time{})
			select {
			case <-sw.finished:
			case <-r.Context().Done():
				return
			}
		}
		writeJSON(w, http.StatusOK, sw.doc(true))
	case "events":
		s.streamEvents(w, r, sw)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// streamEvents writes the sweep's progress as Server-Sent Events: every
// already-emitted event is replayed, live events follow, and the stream
// ends when the sweep finishes.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, sw *sweepRun) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	// SSE streams are long-lived by design: exempt this response from the
	// server's WriteTimeout (a stuck client is still bounded — every
	// write goes through Flush, and the kernel buffer eventually refuses).
	http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Push the headers out now: a subscriber to a sweep with no events yet
	// must still see the stream open rather than a never-arriving response.
	flusher.Flush()
	send := func(ev progressEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data)
		flusher.Flush()
		return true
	}
	replay, ch, finished := sw.subscribe()
	for _, ev := range replay {
		if !send(ev) {
			return
		}
	}
	if !finished {
		defer sw.unsubscribe(ch)
		for {
			select {
			case ev, open := <-ch:
				if !open {
					goto done
				}
				if !send(ev) {
					return
				}
			case <-r.Context().Done():
				return
			}
		}
	}
done:
	fmt.Fprintf(w, "event: done\ndata: {}\n\n")
	flusher.Flush()
}

// handleResult serves GET /results/{key} (the exact cached Report bytes)
// and GET /results/{key}/trace (the run's Chrome/Perfetto trace artifact,
// present only when a submission opted in with "trace": true).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	key, sub, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/results/"), "/")
	switch sub {
	case "":
		data, ok := s.cache.get(key)
		if !ok {
			http.Error(w, "no cached result for key", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case "trace":
		data, ok := s.cache.getTrace(key)
		if !ok {
			http.Error(w, "no trace artifact for key", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// handleMetrics serves GET /metrics as an indented JSON document, or in
// the Prometheus text exposition format with ?format=prometheus.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot(s.cache.stats())
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		snap.prometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleHealth serves GET /healthz; the body reports the drain state.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true, "draining": draining})
}

// handleReady serves GET /readyz: readiness as distinct from liveness.
// A draining server is alive (healthz stays 200) but not ready — load
// balancers should stop routing to it. The body also reports how many
// results the boot-time journal replay recovered, so an operator
// restarting after a crash can see the recovery happened.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := http.StatusOK
	if draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":           !draining,
		"draining":        draining,
		"journalReplayed": s.cache.stats().replayed,
	})
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
