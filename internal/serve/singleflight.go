package serve

import (
	"context"
	"sync"
)

// flightCall is one in-flight simulation that concurrent requesters of
// the same cache key share. waiters counts every job still interested in
// the outcome; when the last one detaches (its own context fired) the
// flight's context is canceled so the simulation stops doing work nobody
// wants.
type flightCall struct {
	done    chan struct{}
	val     []byte
	err     error
	waiters int
	cancel  context.CancelFunc
}

// flightGroup is a context-aware singleflight: Do collapses concurrent
// calls with the same key onto one execution of fn, so overlapping sweep
// submissions never simulate the same grid point twice at the same time.
//
// Cancellation is per waiter, not per flight: fn runs under a context
// derived from the group root (not from any one caller), and each caller
// whose ctx fires merely detaches. Deleting sweep A therefore never kills
// a run sweep B is also waiting on; only when every waiter is gone does
// the flight's context cancel and the engine unwind at its next
// cooperative check.
type flightGroup struct {
	// root parents every flight's context; canceling it (server
	// shutdown) stops all in-flight simulations.
	root context.Context

	mu sync.Mutex
	m  map[string]*flightCall
}

// Do runs fn once per key at a time. The first caller (the leader) starts
// fn on its own goroutine; every caller — leader included — waits for
// either the result (shared reports whether another caller led the run)
// or its own ctx, whichever comes first. A caller whose ctx fires gets
// ctx.Err() and detaches; the flight keeps running for the remaining
// waiters.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(ctx context.Context) ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	root := g.root
	if root == nil {
		root = context.Background()
	}
	c, found := g.m[key]
	if !found {
		fctx, cancel := context.WithCancel(root)
		c = &flightCall{done: make(chan struct{}), cancel: cancel}
		g.m[key] = c
		go func() {
			c.val, c.err = fn(fctx)
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			close(c.done)
			cancel()
		}()
	}
	c.waiters++
	g.mu.Unlock()

	select {
	case <-c.done:
		g.mu.Lock()
		c.waiters--
		g.mu.Unlock()
		return c.val, c.err, found
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			// Nobody is listening any more: stop the simulation.
			c.cancel()
		}
		g.mu.Unlock()
		return nil, ctx.Err(), false
	}
}
