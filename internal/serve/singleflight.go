package serve

import "sync"

// flightCall is one in-flight simulation that concurrent requesters of
// the same cache key share.
type flightCall struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// flightGroup is a minimal singleflight: Do collapses concurrent calls
// with the same key onto one execution of fn, so overlapping sweep
// submissions never simulate the same grid point twice at the same time.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// Do runs fn once per key at a time. The first caller (the leader)
// executes fn; callers arriving while it runs wait and receive the same
// result with shared=true.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(flightCall)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, c.err, false
}
