package noc

import (
	"fmt"
	"testing"
)

// lockstep drives two meshes — express-on and express-off — through the
// identical send schedule. send injects at the cycle the meshes have not
// ticked yet; sendPostTick injects at the cycle they just ticked, which is
// the engine's actual per-cycle ordering (the mesh is registered first, so
// cores Send after it has ticked their cycle). Both orderings must produce
// identical worlds.
type lockstep struct {
	on, off *Mesh
	logOn   []delivery
	logOff  []delivery
	cycle   uint64
}

func newLockstep(w, h, linkLat, routerLat int) *lockstep {
	ls := &lockstep{}
	ls.on = New(w, h, linkLat, routerLat, func(cycle uint64, tile int, port Port, payload any) {
		ls.logOn = append(ls.logOn, delivery{tile, port, payload, cycle})
	})
	ls.on.SetExpress(true)
	ls.off = New(w, h, linkLat, routerLat, func(cycle uint64, tile int, port Port, payload any) {
		ls.logOff = append(ls.logOff, delivery{tile, port, payload, cycle})
	})
	return ls
}

func (ls *lockstep) tick() {
	ls.on.Tick(ls.cycle)
	ls.off.Tick(ls.cycle)
	ls.cycle++
}

func (ls *lockstep) send(src, dst int, payload any) {
	ls.on.Send(ls.cycle, src, dst, PortL2, payload)
	ls.off.Send(ls.cycle, src, dst, PortL2, payload)
}

// sendPostTick injects during the most recently ticked cycle — legal only
// after at least one tick. This exercises curPos's fully-processed branch
// (hasTicked && t <= ticked), which every engine-driven Send goes through.
func (ls *lockstep) sendPostTick(src, dst int, payload any) {
	ls.on.Send(ls.cycle-1, src, dst, PortL2, payload)
	ls.off.Send(ls.cycle-1, src, dst, PortL2, payload)
}

// diff compares the two worlds: every delivery (cycle, tile, port,
// payload, order) and the shared traffic statistics must match exactly.
func (ls *lockstep) diff(t *testing.T, label string) {
	t.Helper()
	if len(ls.logOn) != len(ls.logOff) {
		t.Fatalf("%s: express delivered %d messages, per-hop %d", label, len(ls.logOn), len(ls.logOff))
	}
	for i := range ls.logOn {
		if ls.logOn[i] != ls.logOff[i] {
			t.Fatalf("%s: delivery %d diverges: express %+v, per-hop %+v",
				label, i, ls.logOn[i], ls.logOff[i])
		}
	}
	on, off := ls.on.Stats, ls.off.Stats
	if on.Messages != off.Messages || on.Hops != off.Hops ||
		on.Injected != off.Injected || on.InFlight != off.InFlight {
		t.Fatalf("%s: stats diverge: express %+v, per-hop %+v", label, on, off)
	}
}

// xorshift is a tiny deterministic generator for the property tests.
type xorshift uint64

func (x *xorshift) next(bound uint64) uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v % bound
}

// TestExpressUncontendedDeliveryMatchesPerHop: a lone message's express
// delivery cycle is exactly the per-hop pipeline's, for every source and
// destination pair (including src == dst) and several latency settings.
func TestExpressUncontendedDeliveryMatchesPerHop(t *testing.T) {
	for _, lat := range [][2]int{{1, 1}, {2, 1}, {0, 1}, {3, 2}} {
		for src := 0; src < 16; src += 3 {
			for dst := 0; dst < 16; dst += 2 {
				ls := newLockstep(4, 4, lat[0], lat[1])
				ls.send(src, dst, "p")
				for i := 0; i < 80; i++ {
					ls.tick()
				}
				label := fmt.Sprintf("link %d router %d, %d->%d", lat[0], lat[1], src, dst)
				ls.diff(t, label)
				if !ls.on.Quiesced() {
					t.Fatalf("%s: express mesh did not quiesce", label)
				}
				if ls.on.Stats.ExpressDeliveries != 1 {
					t.Fatalf("%s: express deliveries = %d, want 1 (grant should succeed on an empty mesh)",
						label, ls.on.Stats.ExpressDeliveries)
				}
			}
		}
	}
}

// TestExpressMatchesPerHop is the express-routing property test: for
// randomized traffic — bursts that force contention and demotion, quiet
// gaps that let express engage, overlapping and disjoint routes — the
// express-on mesh must produce the byte-identical delivery sequence and
// traffic statistics of the per-hop mesh, at every cycle.
func TestExpressMatchesPerHop(t *testing.T) {
	var demotions, expressed uint64
	for seed := 1; seed <= 60; seed++ {
		rng := xorshift(uint64(seed) * 0x9E3779B97F4A7C15)
		ls := newLockstep(4, 4, 1, 1)
		sent := 0
		for step := 0; step < 120; step++ {
			// A burst of 0-3 sends this cycle — each randomly landing
			// before the cycle's tick or just after the previous one
			// (the engine's ordering) — then a 0-12 cycle gap.
			for n := rng.next(4); n > 0; n-- {
				if ls.cycle > 0 && rng.next(2) == 0 {
					ls.sendPostTick(int(rng.next(16)), int(rng.next(16)), sent)
				} else {
					ls.send(int(rng.next(16)), int(rng.next(16)), sent)
				}
				sent++
			}
			for gap := rng.next(13); ; gap-- {
				ls.tick()
				if gap == 0 {
					break
				}
			}
			ls.diff(t, fmt.Sprintf("seed %d step %d", seed, step))
		}
		for i := 0; i < 200 && !ls.on.Quiesced(); i++ {
			ls.tick()
		}
		label := fmt.Sprintf("seed %d drain", seed)
		ls.diff(t, label)
		if !ls.on.Quiesced() || !ls.off.Quiesced() {
			t.Fatalf("%s: meshes did not quiesce (express in-flight %d, per-hop %d)",
				label, ls.on.Stats.InFlight, ls.off.Stats.InFlight)
		}
		if got := len(ls.logOn); got != sent {
			t.Fatalf("%s: delivered %d of %d messages", label, got, sent)
		}
		demotions += ls.on.Stats.ExpressDemotions
		expressed += ls.on.Stats.ExpressDeliveries
	}
	// The property is vacuous if the schedule never exercised both paths.
	if expressed == 0 {
		t.Fatal("no traffic pattern ever completed an express traversal")
	}
	if demotions == 0 {
		t.Fatal("no traffic pattern ever demoted an express flit back to per-hop")
	}
}

// TestExpressMaterializationEachHop pins mid-flight demotion at every
// interpolated hop: a flit crossing a 4x1 row (virtual pops at cycles 1,
// 3, 5 and delivery at 7) is contended at each cycle of its traversal by
// a message entering each edge of its remaining path, and the resulting
// delivery times must match the per-hop world exactly, with exactly one
// demotion recorded.
func TestExpressMaterializationEachHop(t *testing.T) {
	// Contender sources chosen so the contender's own route enters the
	// express path edge under test: tile k sending east enters (k, East);
	// tile 3 sending to itself enters (3, Local).
	triggers := []struct {
		src, dst int
		name     string
	}{
		{0, 3, "src queue (0,E)"},
		{1, 3, "mid queue (1,E)"},
		{2, 3, "mid queue (2,E)"},
		{3, 3, "ejection queue (3,L)"},
	}
	for _, trig := range triggers {
		for contendAt := uint64(0); contendAt <= 7; contendAt++ {
			ls := newLockstep(4, 1, 1, 1)
			ls.send(0, 3, "flit")
			if ls.on.exCount != 1 {
				t.Fatalf("flit was not granted express on an empty mesh")
			}
			for ls.cycle <= 40 {
				if ls.cycle == contendAt {
					ls.send(trig.src, trig.dst, "contender")
				}
				ls.tick()
			}
			label := fmt.Sprintf("%s at cycle %d", trig.name, contendAt)
			ls.diff(t, label)
			if !ls.on.Quiesced() {
				t.Fatalf("%s: express mesh did not quiesce", label)
			}
			// Demotion fires iff the contender entered a path edge the
			// flit had not yet virtually crossed; in every such case the
			// flit must have re-entered the per-hop pipeline (exactly one
			// demotion, no express delivery for it).
			st := ls.on.Stats
			if st.ExpressDemotions > 1 {
				t.Fatalf("%s: %d demotions for one flit", label, st.ExpressDemotions)
			}
			if st.ExpressDemotions+st.ExpressDeliveries < 1 {
				t.Fatalf("%s: flit neither delivered express nor demoted: %+v", label, st)
			}
		}
	}
}

// TestExpressGrantRequiresCleanPath: a non-empty queue anywhere on the
// route, or a pending express flit sharing an edge, denies the grant; the
// denied message runs per-hop and, on reaching the shared edge, demotes
// the earlier flit.
func TestExpressGrantRequiresCleanPath(t *testing.T) {
	ls := newLockstep(4, 1, 1, 1)
	ls.send(0, 3, 1) // granted: empty mesh
	if ls.on.exCount != 1 {
		t.Fatal("first send was not granted express")
	}
	// The second send shares (1,E),(2,E),(3,L) with the pending flit, so
	// the grant is denied; it then travels per-hop, and its injection push
	// into (1,E) — a pending edge — demotes the first flit on the spot.
	ls.send(1, 3, 2)
	if ls.on.exCount > 1 {
		t.Fatal("overlapping send was granted express despite shared edges")
	}
	if ls.on.Stats.ExpressDemotions != 1 || ls.on.exCount != 0 {
		t.Fatalf("demotions = %d, express in flight = %d; want the overlap to demote the first flit (1, 0)",
			ls.on.Stats.ExpressDemotions, ls.on.exCount)
	}
	for i := 0; i < 40; i++ {
		ls.tick()
	}
	ls.diff(t, "overlap")
	if !ls.on.Quiesced() {
		t.Fatal("express mesh did not quiesce")
	}
}

// TestExpressNextEventReportsDelivery: the due tracker carries the express
// delivery time, so NextEvent lets the skip engine jump the whole
// traversal rather than the 1-2 cycles between per-hop events.
func TestExpressNextEventReportsDelivery(t *testing.T) {
	var got []delivery
	m := New(4, 4, 1, 1, func(cycle uint64, tile int, port Port, payload any) {
		got = append(got, delivery{tile, port, payload, cycle})
	})
	m.SetExpress(true)
	m.Send(0, 0, 15, PortCore, "x")
	want := uint64(0) + 1 + uint64(m.Distance(0, 15))*2 // inject + routerLat + hops*(link+router)
	if next := m.NextEvent(0); next != want {
		t.Fatalf("NextEvent = %d, want the express delivery time %d", next, want)
	}
	// Jump straight to the delivery cycle, as the skip engine would.
	if m.Tick(want) {
		t.Fatalf("mesh still busy after express delivery tick")
	}
	if len(got) != 1 || got[0].cycle != want {
		t.Fatalf("deliveries = %+v, want one at cycle %d", got, want)
	}
	if m.Stats.ExpressDeliveries != 1 || m.Stats.Hops != uint64(m.Distance(0, 15)) {
		t.Fatalf("stats = %+v", m.Stats)
	}
}

// scanDueMinExpress extends the brute-force due scan with express
// delivery times, the reference for the tracker when express is enabled.
func scanDueMinExpress(m *Mesh) (uint64, bool) {
	min, ok := scanDueMin(m)
	for _, f := range m.exLocal {
		if f != nil && (!ok || f.deliverAt < min) {
			min, ok = f.deliverAt, true
		}
	}
	return min, ok
}

// TestExpressDueTrackerMatchesScan: with express enabled, the tracker's
// minimum must still equal a brute-force scan over buffered messages plus
// pending express deliveries, at every cycle of an arbitrary pattern.
func TestExpressDueTrackerMatchesScan(t *testing.T) {
	for seed := 1; seed <= 20; seed++ {
		rng := xorshift(uint64(seed) * 0x6C62272E07BB0142)
		var got []delivery
		m := New(4, 4, 1, 1, func(cycle uint64, tile int, port Port, payload any) {
			got = append(got, delivery{tile, port, payload, cycle})
		})
		m.SetExpress(true)
		for c := uint64(0); c < 250; c++ {
			wantMin, wantOK := scanDueMinExpress(m)
			gotMin, gotOK := m.due.min()
			if wantOK != gotOK || (wantOK && wantMin != gotMin) {
				t.Fatalf("seed %d cycle %d: tracker min = (%d,%v), scan = (%d,%v)",
					seed, c, gotMin, gotOK, wantMin, wantOK)
			}
			if m.Stats.InFlight > 0 {
				if next := m.NextEvent(c); next <= c {
					t.Fatalf("seed %d cycle %d: NextEvent = %d not in the future", seed, c, next)
				}
			} else if m.NextEvent(c) != noEvent {
				t.Fatalf("seed %d cycle %d: quiesced mesh promised an event", seed, c)
			}
			m.Tick(c)
			if rng.next(3) == 0 {
				m.Send(c, int(rng.next(16)), int(rng.next(16)), PortL2, c)
			}
		}
	}
}
