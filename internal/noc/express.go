package noc

// Express routing: when a message's entire XY route is uncontended — every
// output queue it would occupy is empty and no other express flit's pending
// path shares an edge — the mesh schedules one timed delivery event at
//
//	inject + routerLat + hops*(linkLat+routerLat)
//
// instead of moving the flit hop by hop. The due tracker carries that
// delivery time, so Mesh.NextEvent lets the skip-ahead engine jump the
// whole traversal in one step; this is what breaks the event-density
// ceiling on mesh-bound workloads (UTS spin traffic used to bound every
// jump to the 1-2 cycles between per-hop events).
//
// The latency model is unchanged: the express delivery time is exactly the
// cycle the per-hop pipeline would deliver an uncontended message, because
// with empty queues each hop pops precisely at its readyAt. The moment any
// traffic is pushed into a queue the flit has not yet traversed — traffic
// that could contend for that link's bandwidth — the flit is demoted: it
// materializes as an ordinary buffered message at the hop the per-hop
// pipeline would place it at that instant (interpolated from its virtual
// pop schedule, including intra-cycle router order) and re-enters per-hop
// simulation, so contended links keep byte-identical timing and occupancy
// accounting with the dense model. Demotion is conservative — pushed
// traffic that would not actually have delayed the flit still demotes it —
// but never wrong, since the materialized flit's timing is exact either
// way. The congestion-adaptive switch has a second, preventive half: while
// any region (square tile block; see Mesh.buildRegions) of a message's
// route holds buffered per-hop traffic, a grant is not attempted (see the
// gate in tryExpress) — refusing a grant is timing-neutral, and on
// congested phases it zeroes the express bookkeeping for traversals that
// would only be demoted, while disjoint routes on a moderately loaded mesh
// keep expressing past the hot spot. The equivalence is enforced by
// TestExpressMatchesPerHop (randomized traffic, lockstep express-on vs
// express-off meshes) and TestExpressMaterializationEachHop in
// express_test.go, and end-to-end by the cross-engine diff (dense mode
// always runs per-hop).

// exFlit is one in-flight express message. It occupies no router queue;
// its position at any instant is interpolated from the virtual pop
// schedule popAt(k) = inject + routerLat + k*(linkLat+routerLat) for edge
// k of its path (edge hops = the local ejection at dst).
type exFlit struct {
	src, dst  int
	port      Port
	payload   any
	inject    uint64 // Send cycle
	hops      int    // Manhattan distance src->dst
	deliverAt uint64 // popAt(hops): the single timed event
}

// popAt returns the cycle edge k's virtual pop happens: the flit leaves
// queue k of its path (k == hops is the local ejection, i.e. delivery).
func (m *Mesh) popAt(f *exFlit, k int) uint64 {
	return f.inject + m.routerLat + uint64(k)*(m.linkLat+m.routerLat)
}

// exEdge is one entry of the flat pending-edge table: the express flit
// whose path crosses this (tile, direction) queue, plus the edge's index
// on that flit's path. Storing the index makes staleness checks O(1) —
// no re-walk of the flit's route per contention probe.
type exEdge struct {
	f *exFlit
	k int
}

// edgeKey indexes a (tile, output direction) queue in the flat pending
// edge table (tiles x numDirs entries, allocated once): express grant,
// demotion trigger, and cleanup all touch it with plain array stores, so
// the bookkeeping adds no hashing or allocation to the send hot path.
func edgeKey(tile, dir int) int { return tile*numDirs + dir }

// posOf is a queue's intra-tick position: Tick processes routers in index
// order and each router's output queues in direction order, so events of
// the same cycle are ordered by tile*numDirs+dir. Materialization compares
// these positions to decide whether a virtual pop scheduled for the
// current tick cycle has conceptually already happened.
func posOf(tile, dir int) int { return tile*numDirs + dir }

// posEnd orders after every queue of a tick (the send phase between ticks).
const posEnd = int(^uint(0) >> 1)

// pathMask returns the bitmask of regions the XY route src->dst touches,
// computing and caching it on first use (the route set is static, so each
// pair is walked at most once per Mesh).
func (m *Mesh) pathMask(src, dst int) uint64 {
	key := src*m.Tiles() + dst
	mask := m.pathMasks[key]
	if mask == 0 {
		m.walkPath(src, dst, func(_, tile, _ int) bool {
			mask |= 1 << uint(m.regionOf[tile])
			return true
		})
		m.pathMasks[key] = mask
	}
	return mask
}

// walkPath visits the XY route from src to dst: fn is called once per edge
// with the edge index, the router holding the queue, and the output
// direction (the final edge is (dst, dirLocal)). Visiting stops early when
// fn returns false.
func (m *Mesh) walkPath(src, dst int, fn func(k, tile, dir int) bool) {
	tile := src
	for k := 0; ; k++ {
		dir := m.dirToward(tile, dst)
		if !fn(k, tile, dir) || dir == dirLocal {
			return
		}
		tile = m.neighbor(tile, dir)
	}
}

// dirToward returns the XY-routing output direction at tile for a message
// headed to dst (X first, then Y, then local ejection).
func (m *Mesh) dirToward(tile, dst int) int {
	tx, ty := tile%m.w, tile/m.w
	dx, dy := dst%m.w, dst/m.w
	switch {
	case dx > tx:
		return dirEast
	case dx < tx:
		return dirWest
	case dy > ty:
		return dirSouth
	case dy < ty:
		return dirNorth
	}
	return dirLocal
}

// curPos returns the reference per-hop world's intra-cycle progress for
// events scheduled at cycle t, at the moment of the current call: every
// queue position strictly below the returned value has already been
// processed for cycle t. Outside a tick, a cycle the mesh has ticked is
// fully processed and a cycle it has not ticked yet is untouched.
func (m *Mesh) curPos(t uint64) int {
	if m.inTick {
		if t < m.tickCycle {
			return posEnd
		}
		if t > m.tickCycle {
			return -1
		}
		return m.tickPos
	}
	if m.hasTicked && t <= m.ticked {
		return posEnd
	}
	return -1
}

// executed reports whether edge k's virtual pop has conceptually happened
// by now: its scheduled cycle has been ticked past, or it is scheduled for
// the cycle currently being processed at a queue position the router loop
// has already passed.
func (m *Mesh) executed(f *exFlit, k, tile, dir int) bool {
	at := m.popAt(f, k)
	pos := m.curPos(at)
	return posOf(tile, dir) < pos
}

// tryExpress grants the express path for a Send when the whole route is
// provably uncontended: every queue on it is empty and no other express
// flit's pending path shares an edge (stale entries for edges a flit has
// already virtually passed are pruned rather than counted as conflicts).
// Grants are denied during the mesh's own tick — a mid-tick injection's
// per-hop timing depends on router processing order, which the per-hop
// pipeline already models exactly. On success the delivery time enters the
// due tracker (one event for the whole traversal) and every path edge is
// indexed for demotion triggering.
func (m *Mesh) tryExpress(cycle uint64, src, dst int, port Port, payload any) bool {
	if !m.express || m.inTick || m.routerLat == 0 {
		return false
	}
	// Congestion gate, per region: grants are only attempted while every
	// region the route touches holds no buffered per-hop traffic
	// (in-flight express flits don't count — they occupy no queues).
	// Refusing a grant is always timing-neutral: the message simply runs
	// per-hop, which delivers at the identical cycle whenever express
	// would have. On congested phases — where a granted flit would almost
	// certainly be demoted a few cycles later — this zeroes the express
	// bookkeeping cost (path probing, edge indexing, demotion) instead of
	// paying it for traversals that never pan out. Unlike the old
	// whole-mesh version of this gate, a hot corner of the mesh no longer
	// stops disjoint routes elsewhere from expressing: the pre-filter
	// compares the route's cached region mask against the busy-region
	// bitmask, one AND per probe.
	if m.regionBusy&m.pathMask(src, dst) != 0 {
		return false
	}
	free := true
	m.walkPath(src, dst, func(k, tile, dir int) bool {
		if len(m.routers[tile].out[dir].q) > 0 {
			free = false
			return false
		}
		if g := m.exEdges[edgeKey(tile, dir)]; g.f != nil {
			if m.executed(g.f, g.k, tile, dir) {
				m.exEdges[edgeKey(tile, dir)] = exEdge{}
				return true
			}
			free = false
			return false
		}
		return true
	})
	if !free {
		return false
	}
	f := &exFlit{src: src, dst: dst, port: port, payload: payload,
		inject: cycle, hops: m.Distance(src, dst)}
	f.deliverAt = m.popAt(f, f.hops)
	m.walkPath(src, dst, func(k, tile, dir int) bool {
		m.exEdges[edgeKey(tile, dir)] = exEdge{f: f, k: k}
		return true
	})
	m.exLocal[dst] = f
	m.exCount++
	m.due.add(f.deliverAt)
	return true
}

// contend is the demotion trigger, called before every push into a router
// queue: if an express flit still has that queue on its remaining path,
// the flit materializes first, so the pushed message lands behind it in
// FIFO order exactly as it would in the per-hop world.
func (m *Mesh) contend(tile, dir int) {
	key := edgeKey(tile, dir)
	g := m.exEdges[key]
	if g.f == nil {
		return
	}
	if m.executed(g.f, g.k, tile, dir) {
		// The edge is already behind the flit — traffic entering the
		// queue now can no longer contend with it. Prune the entry.
		m.exEdges[key] = exEdge{}
		return
	}
	m.demote(g.f)
}

// demote materializes an in-flight express flit at its current
// interpolated hop and re-enters it into the per-hop pipeline: the first
// edge whose virtual pop has not yet happened is where the per-hop world
// would hold the flit right now, so a message with that queue's readyAt is
// inserted there (the queue is empty by the express invariant — any
// earlier push would have demoted sooner). The flit's delivery event and
// pending-edge index are removed; from here on its timing is the ordinary
// per-hop model's, byte-identical to a run that never granted express.
func (m *Mesh) demote(f *exFlit) {
	mtile, mdir, mk := -1, -1, -1
	m.walkPath(f.src, f.dst, func(k, tile, dir int) bool {
		if m.exEdges[edgeKey(tile, dir)].f == f {
			m.exEdges[edgeKey(tile, dir)] = exEdge{}
		}
		if mk < 0 && !m.executed(f, k, tile, dir) {
			mtile, mdir, mk = tile, dir, k
		}
		return true
	})
	m.exLocal[f.dst] = nil
	m.exCount--
	m.due.remove(f.deliverAt)
	m.Stats.ExpressDemotions++
	if m.obs != nil && mk >= 0 {
		m.obs.ExpressDemotion(m.popAt(f, mk), f.inject, f.src, f.dst, mk)
	}
	if mk < 0 {
		// Every edge including the local ejection has conceptually
		// executed, yet the flit was not delivered — unreachable, because
		// the delivery edge only executes by delivering. Drop to the
		// defensive path: deliver immediately at the ejection queue.
		mtile, mdir, mk = f.dst, dirLocal, f.hops
	}
	mg := &msg{dst: f.dst, port: f.port, payload: f.payload,
		readyAt: m.popAt(f, mk), hops: mk}
	m.routers[mtile].out[mdir].push(mg)
	m.routers[mtile].queued++
	m.regionAdd(mtile)
	m.due.add(mg.readyAt)
}

// deliverExpress ejects a due express flit at its destination tile during
// the router loop's local-queue slot — the same intra-cycle position the
// per-hop pipeline delivers from, so handler side effects interleave
// identically. Bookkeeping is cleared before the handler runs: a handler
// that immediately injects new traffic must not see the delivered flit as
// still pending.
func (m *Mesh) deliverExpress(f *exFlit, cycle uint64, tile int) {
	m.walkPath(f.src, f.dst, func(k, etile, edir int) bool {
		if m.exEdges[edgeKey(etile, edir)].f == f {
			m.exEdges[edgeKey(etile, edir)] = exEdge{}
		}
		return true
	})
	m.exLocal[tile] = nil
	m.exCount--
	m.due.remove(f.deliverAt)
	m.Stats.Messages++
	m.Stats.Hops += uint64(f.hops)
	m.Stats.InFlight--
	m.Stats.ExpressDeliveries++
	if m.obs != nil {
		m.obs.ExpressDelivery(cycle, f.inject, f.src, f.dst, f.hops)
	}
	m.handler(cycle, tile, f.port, f.payload)
}
