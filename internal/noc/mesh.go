// Package noc models the on-chip interconnect: a 2D mesh with XY routing,
// per-output-port FIFOs with single-message-per-cycle link bandwidth, and a
// fixed per-router pipeline latency. Latency between tiles is therefore
// distance dependent plus contention, which is what produces the paper's
// reported latency ranges (L2 hit 29-61 cycles, remote L1 35-83, memory
// 197-261) from single base parameters.
package noc

import "fmt"

// Port selects the endpoint within a tile a message is delivered to: each
// tile hosts one core-side endpoint (an L1 / LSU) and one L2 bank.
type Port uint8

const (
	// PortCore delivers to the tile's core-side endpoint (L1 miss
	// handler, DMA engine, stash fill unit).
	PortCore Port = iota
	// PortL2 delivers to the tile's L2 bank.
	PortL2
)

// Handler receives delivered message payloads. Delivery happens during the
// mesh tick of the given cycle, before cores and caches tick in the same
// cycle (the mesh is registered first).
type Handler func(cycle uint64, tile int, port Port, payload any)

type msg struct {
	dst     int
	port    Port
	payload any
	readyAt uint64
	hops    int
}

const (
	dirNorth = iota
	dirEast
	dirSouth
	dirWest
	dirLocal
	numDirs
)

type outQueue struct {
	q []*msg
}

func (q *outQueue) push(m *msg) { q.q = append(q.q, m) }

func (q *outQueue) popReady(cycle uint64) *msg {
	if len(q.q) == 0 || q.q[0].readyAt > cycle {
		return nil
	}
	m := q.q[0]
	q.q[0] = nil
	q.q = q.q[1:]
	return m
}

type router struct {
	out    [numDirs]outQueue
	queued int // messages buffered across all output queues
}

// Mesh is a W x H mesh of routers with deterministic XY (X-first) routing.
type Mesh struct {
	w, h      int
	linkLat   uint64
	routerLat uint64
	routers   []router
	handler   Handler
	wake      func()

	// Stats counts traffic for network reporting.
	Stats Stats
}

// Stats aggregates mesh traffic counters.
type Stats struct {
	Messages uint64 // messages delivered
	Hops     uint64 // total link traversals
	Injected uint64 // messages injected
	InFlight int    // messages currently buffered
}

// New builds a w x h mesh. handler receives every delivered message.
func New(w, h, linkLat, routerLat int, handler Handler) *Mesh {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("noc: invalid mesh %dx%d", w, h))
	}
	return &Mesh{
		w: w, h: h,
		linkLat:   uint64(linkLat),
		routerLat: uint64(routerLat),
		routers:   make([]router, w*h),
		handler:   handler,
	}
}

// SetWaker installs the callback that re-arms the mesh in the scheduling
// engine; Send invokes it so an idle mesh starts ticking again as soon as a
// message is injected.
func (m *Mesh) SetWaker(wake func()) { m.wake = wake }

// Tiles returns the number of tiles.
func (m *Mesh) Tiles() int { return m.w * m.h }

// Distance returns the Manhattan hop distance between two tiles.
func (m *Mesh) Distance(a, b int) int {
	ax, ay := a%m.w, a/m.w
	bx, by := b%m.w, b/m.w
	return abs(ax-bx) + abs(ay-by)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Send injects a message at tile src destined for (dst, port) during the
// given cycle. It may be called at any point within the cycle; the message
// becomes eligible to move on the next mesh tick.
func (m *Mesh) Send(cycle uint64, src, dst int, port Port, payload any) {
	if src < 0 || src >= m.Tiles() || dst < 0 || dst >= m.Tiles() {
		panic(fmt.Sprintf("noc: send %d->%d outside %d-tile mesh", src, dst, m.Tiles()))
	}
	m.Stats.Injected++
	m.Stats.InFlight++
	m.route(src, &msg{dst: dst, port: port, payload: payload, readyAt: cycle + m.routerLat})
	if m.wake != nil {
		m.wake()
	}
}

// route places a message in the proper output queue of tile's router.
// XY routing: correct X first, then Y, then eject locally.
func (m *Mesh) route(tile int, mg *msg) {
	tx, ty := tile%m.w, tile/m.w
	dx, dy := mg.dst%m.w, mg.dst/m.w
	dir := dirLocal
	switch {
	case dx > tx:
		dir = dirEast
	case dx < tx:
		dir = dirWest
	case dy > ty:
		dir = dirSouth
	case dy < ty:
		dir = dirNorth
	}
	m.routers[tile].out[dir].push(mg)
	m.routers[tile].queued++
}

// neighbor returns the tile index one hop in dir from tile.
func (m *Mesh) neighbor(tile, dir int) int {
	switch dir {
	case dirNorth:
		return tile - m.w
	case dirSouth:
		return tile + m.w
	case dirEast:
		return tile + 1
	case dirWest:
		return tile - 1
	}
	return tile
}

// Tick advances every router by one cycle: each output port forwards at
// most one ready message (link bandwidth), and each local port delivers at
// most one ready message to its endpoint (ejection bandwidth). It reports
// whether any message remains buffered (the mesh sleeps otherwise).
func (m *Mesh) Tick(cycle uint64) bool {
	for i := range m.routers {
		r := &m.routers[i]
		if r.queued == 0 {
			// Idle router: no queue can pop anything, skip the scan.
			continue
		}
		for dir := 0; dir < dirLocal; dir++ {
			mg := r.out[dir].popReady(cycle)
			if mg == nil {
				continue
			}
			r.queued--
			mg.hops++
			mg.readyAt = cycle + m.linkLat + m.routerLat
			m.route(m.neighbor(i, dir), mg)
		}
		if mg := r.out[dirLocal].popReady(cycle); mg != nil {
			r.queued--
			m.Stats.Messages++
			m.Stats.Hops += uint64(mg.hops)
			m.Stats.InFlight--
			m.handler(cycle, i, mg.port, mg.payload)
		}
	}
	return m.Stats.InFlight > 0
}

// Quiesced reports whether no messages are buffered anywhere in the mesh.
func (m *Mesh) Quiesced() bool { return m.Stats.InFlight == 0 }

// noEvent mirrors sim.NoEvent (the package is deliberately free of
// simulator dependencies).
const noEvent = ^uint64(0)

// NextEvent implements the engine's skip-ahead extension: the earliest
// cycle after now at which any router can move a message. Ticks only ever
// pop queue heads, so the minimum head readyAt across all output queues is
// exact; a head already due means the next tick has work.
func (m *Mesh) NextEvent(now uint64) uint64 {
	if m.Stats.InFlight == 0 {
		return noEvent
	}
	next := noEvent
	for i := range m.routers {
		r := &m.routers[i]
		if r.queued == 0 {
			continue
		}
		for dir := 0; dir < numDirs; dir++ {
			if q := r.out[dir].q; len(q) > 0 {
				if t := q[0].readyAt; t < next {
					next = t
				}
			}
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// Diagnose describes pending traffic for engine deadlock dumps.
func (m *Mesh) Diagnose() string {
	return fmt.Sprintf("in-flight=%d injected=%d delivered=%d",
		m.Stats.InFlight, m.Stats.Injected, m.Stats.Messages)
}
