// Package noc models the on-chip interconnect: a 2D mesh with XY routing,
// per-output-port FIFOs with single-message-per-cycle link bandwidth, and a
// fixed per-router pipeline latency. Latency between tiles is therefore
// distance dependent plus contention, which is what produces the paper's
// reported latency ranges (L2 hit 29-61 cycles, remote L1 35-83, memory
// 197-261) from single base parameters.
//
// The mesh participates in event-driven skip-ahead through two mechanisms.
// NextEvent reports the earliest cycle any buffered message can move,
// maintained incrementally by a due-time tracker. Express routing (see
// express.go, enabled via SetExpress) goes further: a message whose whole
// route is uncontended is modeled as one timed delivery event instead of
// per-hop queue movements, and is demoted back into the per-hop pipeline —
// materialized at its current interpolated hop — the moment potentially
// contending traffic enters its path. Both preserve the per-hop latency
// model exactly; they only change how many simulation events it takes to
// realize it.
package noc

import "fmt"

// Port selects the endpoint within a tile a message is delivered to: each
// tile hosts one core-side endpoint (an L1 / LSU) and one L2 bank.
type Port uint8

const (
	// PortCore delivers to the tile's core-side endpoint (L1 miss
	// handler, DMA engine, stash fill unit).
	PortCore Port = iota
	// PortL2 delivers to the tile's L2 bank.
	PortL2
)

// Handler receives delivered message payloads. Delivery happens during the
// mesh tick of the given cycle, before cores and caches tick in the same
// cycle (the mesh is registered first).
type Handler func(cycle uint64, tile int, port Port, payload any)

type msg struct {
	dst     int
	port    Port
	payload any
	readyAt uint64
	hops    int
}

const (
	dirNorth = iota
	dirEast
	dirSouth
	dirWest
	dirLocal
	numDirs
)

type outQueue struct {
	q []*msg
}

func (q *outQueue) push(m *msg) { q.q = append(q.q, m) }

func (q *outQueue) popReady(cycle uint64) *msg {
	if len(q.q) == 0 || q.q[0].readyAt > cycle {
		return nil
	}
	m := q.q[0]
	q.q[0] = nil
	q.q = q.q[1:]
	return m
}

// dueTracker maintains the minimum readyAt across every buffered message
// incrementally, so NextEvent costs O(log k) instead of a scan over all
// routers and queues. It is a lazy min-heap of due times with a reference
// count per time: add/remove adjust the count, and min discards heap
// entries whose count has dropped to zero. Tracking all messages rather
// than only queue heads can only report a time at or before the true next
// head event, which the NextEvent contract allows (an early report costs a
// wasted tick; a late one would lose simulated work).
type dueTracker struct {
	count map[uint64]int
	heap  []uint64
}

func newDueTracker() dueTracker {
	return dueTracker{count: make(map[uint64]int)}
}

// add records one buffered message becoming due at t.
func (d *dueTracker) add(t uint64) {
	d.count[t]++
	if d.count[t] == 1 {
		d.heap = append(d.heap, t)
		i := len(d.heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if d.heap[p] <= d.heap[i] {
				break
			}
			d.heap[p], d.heap[i] = d.heap[i], d.heap[p]
			i = p
		}
	}
}

// remove forgets one message that was due at t (it moved or delivered),
// then prunes stale heap tops. Pruning here — not just in min — keeps the
// heap bounded even when NextEvent is never called (the dense and
// quiescent engines): due times grow with the clock, so dead times sink
// to the top and are popped as traffic drains.
func (d *dueTracker) remove(t uint64) {
	if d.count[t]--; d.count[t] <= 0 {
		delete(d.count, t)
	}
	for len(d.heap) > 0 && d.count[d.heap[0]] <= 0 {
		d.popTop()
	}
}

// min returns the earliest live due time; ok is false when nothing is
// buffered. Stale heap entries (times whose count reached zero) are popped
// lazily here.
func (d *dueTracker) min() (uint64, bool) {
	for len(d.heap) > 0 {
		if top := d.heap[0]; d.count[top] > 0 {
			return top, true
		}
		d.popTop()
	}
	return 0, false
}

// popTop removes the heap's root and restores the heap property.
func (d *dueTracker) popTop() {
	last := len(d.heap) - 1
	d.heap[0] = d.heap[last]
	d.heap = d.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(d.heap) && d.heap[l] < d.heap[smallest] {
			smallest = l
		}
		if r < len(d.heap) && d.heap[r] < d.heap[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		d.heap[i], d.heap[smallest] = d.heap[smallest], d.heap[i]
		i = smallest
	}
}

type router struct {
	out    [numDirs]outQueue
	queued int // messages buffered across all output queues
}

// Mesh is a W x H mesh of routers with deterministic XY (X-first) routing.
type Mesh struct {
	w, h      int
	linkLat   uint64
	routerLat uint64
	routers   []router
	handler   Handler
	wake      func()
	obs       Observer
	due       dueTracker

	// Express-routing state (see express.go): exEdges indexes every
	// pending (router, direction) queue of every in-flight express flit
	// for O(1) demotion triggering, exLocal holds at most one pending
	// express delivery per destination tile, and exCount the flits in
	// flight. The intra-tick fields record how far the router loop has
	// progressed so a demotion can materialize a flit at exactly the
	// per-hop position the reference pipeline would hold it.
	express   bool
	exEdges   []exEdge
	exLocal   []*exFlit
	exCount   int
	inTick    bool
	tickCycle uint64
	tickPos   int
	ticked    uint64
	hasTicked bool

	// Per-region occupancy for the express grant pre-filter (see
	// regionGateClear in express.go): tiles are coarsened into square
	// blocks (at most 64 regions, so a region set fits one uint64 mask),
	// regionQueued counts buffered per-hop messages per region, regionBusy
	// mirrors it as a bitmask, and pathMasks lazily caches the region mask
	// of each src->dst XY route (0 = not yet computed; a real mask always
	// includes the source tile's region bit).
	regionOf     []int
	regionQueued []int
	regionBusy   uint64
	pathMasks    []uint64

	// Stats counts traffic for network reporting.
	Stats Stats
}

// Stats aggregates mesh traffic counters.
type Stats struct {
	Messages uint64 // messages delivered
	Hops     uint64 // total link traversals
	Injected uint64 // messages injected
	InFlight int    // messages currently buffered (incl. express flits)

	// ExpressDeliveries counts messages whose whole traversal was
	// modeled as one timed event; ExpressDemotions counts express flits
	// that were materialized back into the per-hop pipeline because
	// potentially contending traffic entered their path.
	ExpressDeliveries uint64
	ExpressDemotions  uint64
}

// New builds a w x h mesh. handler receives every delivered message.
func New(w, h, linkLat, routerLat int, handler Handler) *Mesh {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("noc: invalid mesh %dx%d", w, h))
	}
	m := &Mesh{
		w: w, h: h,
		linkLat:   uint64(linkLat),
		routerLat: uint64(routerLat),
		routers:   make([]router, w*h),
		handler:   handler,
		due:       newDueTracker(),
		exEdges:   make([]exEdge, w*h*numDirs),
		exLocal:   make([]*exFlit, w*h),
		pathMasks: make([]uint64, w*h*w*h),
	}
	m.buildRegions()
	return m
}

// buildRegions partitions the mesh into square tile blocks for the express
// occupancy pre-filter. Blocks start at 2x2 and double in side length until
// at most 64 regions remain, so any mesh's region set fits one uint64.
func (m *Mesh) buildRegions() {
	bs := 2
	for ((m.w+bs-1)/bs)*((m.h+bs-1)/bs) > 64 {
		bs *= 2
	}
	rw := (m.w + bs - 1) / bs
	m.regionOf = make([]int, m.w*m.h)
	nRegions := 0
	for t := range m.regionOf {
		r := (t/m.w/bs)*rw + (t % m.w / bs)
		m.regionOf[t] = r
		if r+1 > nRegions {
			nRegions = r + 1
		}
	}
	m.regionQueued = make([]int, nRegions)
}

// regionAdd records one per-hop message buffered at tile's router.
func (m *Mesh) regionAdd(tile int) {
	r := m.regionOf[tile]
	m.regionQueued[r]++
	if m.regionQueued[r] == 1 {
		m.regionBusy |= 1 << uint(r)
	}
}

// regionSub records one per-hop message leaving tile's router.
func (m *Mesh) regionSub(tile int) {
	r := m.regionOf[tile]
	m.regionQueued[r]--
	if m.regionQueued[r] == 0 {
		m.regionBusy &^= 1 << uint(r)
	}
}

// SetExpress enables or disables express routing (off by default; the
// memory system enables it per sim.Config.Express, never in dense mode, so
// the dense reference loop always exercises the per-hop pipeline the
// engine diff compares against).
func (m *Mesh) SetExpress(on bool) { m.express = on }

// SetWaker installs the callback that re-arms the mesh in the scheduling
// engine; Send invokes it so an idle mesh starts ticking again as soon as a
// message is injected.
func (m *Mesh) SetWaker(wake func()) { m.wake = wake }

// Observer receives express-routing events for structured tracing
// (implemented by trace.Collector; defined here so noc stays dependency
// free). Both callbacks run during mesh operations on the engine
// goroutine and must not touch mesh state.
type Observer interface {
	// ExpressDelivery reports a completed express traversal: injected at
	// inject, delivered at cycle, src to dst over hops links.
	ExpressDelivery(cycle, inject uint64, src, dst, hops int)
	// ExpressDemotion reports an express flit materialized back into the
	// per-hop pipeline at hop index hop, with its queue entry due at at.
	ExpressDemotion(at, inject uint64, src, dst, hop int)
}

// SetObserver installs (or, with nil, removes) the express-event observer.
// Observation never changes routing decisions or timing.
func (m *Mesh) SetObserver(o Observer) { m.obs = o }

// Tiles returns the number of tiles.
func (m *Mesh) Tiles() int { return m.w * m.h }

// Distance returns the Manhattan hop distance between two tiles.
func (m *Mesh) Distance(a, b int) int {
	ax, ay := a%m.w, a/m.w
	bx, by := b%m.w, b/m.w
	return abs(ax-bx) + abs(ay-by)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Send injects a message at tile src destined for (dst, port) during the
// given cycle. It may be called at any point within the cycle; the message
// becomes eligible to move on the next mesh tick.
func (m *Mesh) Send(cycle uint64, src, dst int, port Port, payload any) {
	if src < 0 || src >= m.Tiles() || dst < 0 || dst >= m.Tiles() {
		panic(fmt.Sprintf("noc: send %d->%d outside %d-tile mesh", src, dst, m.Tiles()))
	}
	m.Stats.Injected++
	m.Stats.InFlight++
	if m.tryExpress(cycle, src, dst, port, payload) {
		if m.wake != nil {
			m.wake()
		}
		return
	}
	m.route(src, &msg{dst: dst, port: port, payload: payload, readyAt: cycle + m.routerLat})
	if m.wake != nil {
		m.wake()
	}
}

// route places a message in the proper output queue of tile's router.
// XY routing: correct X first, then Y, then eject locally. Any express
// flit whose remaining path still includes the target queue is demoted
// first (materialized into the per-hop pipeline), so the pushed message
// lands behind it in FIFO order exactly as the per-hop world would have
// it.
func (m *Mesh) route(tile int, mg *msg) {
	dir := m.dirToward(tile, mg.dst)
	if m.exCount > 0 {
		m.contend(tile, dir)
	}
	m.routers[tile].out[dir].push(mg)
	m.routers[tile].queued++
	m.regionAdd(tile)
	m.due.add(mg.readyAt)
}

// neighbor returns the tile index one hop in dir from tile.
func (m *Mesh) neighbor(tile, dir int) int {
	switch dir {
	case dirNorth:
		return tile - m.w
	case dirSouth:
		return tile + m.w
	case dirEast:
		return tile + 1
	case dirWest:
		return tile - 1
	}
	return tile
}

// Tick advances every router by one cycle: each output port forwards at
// most one ready message (link bandwidth), and each local port delivers at
// most one ready message to its endpoint (ejection bandwidth) — a due
// express flit ejects from the same slot, at the same intra-cycle
// position, the per-hop pipeline would deliver it from. It reports whether
// any message remains buffered (the mesh sleeps otherwise).
func (m *Mesh) Tick(cycle uint64) bool {
	m.inTick = true
	m.tickCycle = cycle
	m.tickPos = 0
	for i := range m.routers {
		r := &m.routers[i]
		if r.queued == 0 {
			// Idle router: no queue can pop anything; skip the scan
			// unless an express delivery is due here this cycle.
			if f := m.exLocal[i]; f == nil || f.deliverAt > cycle {
				continue
			}
		}
		for dir := 0; dir < dirLocal; dir++ {
			m.tickPos = posOf(i, dir)
			mg := r.out[dir].popReady(cycle)
			if mg == nil {
				continue
			}
			r.queued--
			m.regionSub(i)
			m.due.remove(mg.readyAt)
			mg.hops++
			mg.readyAt = cycle + m.linkLat + m.routerLat
			m.route(m.neighbor(i, dir), mg)
		}
		m.tickPos = posOf(i, dirLocal)
		// Re-read the delivery slot: a demotion triggered by one of the
		// pops above may have materialized the flit into a real queue.
		if f := m.exLocal[i]; f != nil && f.deliverAt <= cycle {
			m.deliverExpress(f, cycle, i)
		} else if mg := r.out[dirLocal].popReady(cycle); mg != nil {
			r.queued--
			m.regionSub(i)
			m.due.remove(mg.readyAt)
			m.Stats.Messages++
			m.Stats.Hops += uint64(mg.hops)
			m.Stats.InFlight--
			m.handler(cycle, i, mg.port, mg.payload)
		}
	}
	m.inTick = false
	m.ticked = cycle
	m.hasTicked = true
	return m.Stats.InFlight > 0
}

// Quiesced reports whether no messages are buffered anywhere in the mesh.
func (m *Mesh) Quiesced() bool { return m.Stats.InFlight == 0 }

// noEvent mirrors sim.NoEvent (the package is deliberately free of
// simulator dependencies).
const noEvent = ^uint64(0)

// NextEvent implements the engine's skip-ahead extension: the earliest
// cycle after now at which any router can move a message. The due tracker
// maintains the minimum readyAt across all buffered messages incrementally
// (updated on every push and pop), so planning a jump costs O(log k)
// instead of the all-router scan it replaces. The tracked minimum is over
// all messages rather than only queue heads, so it can come out earlier
// than the true next head event when FIFO order inverts due times — an
// early report is always safe under the NextEvent contract (it costs at
// most a wasted tick), while a late one would lose simulated work.
func (m *Mesh) NextEvent(now uint64) uint64 {
	if m.Stats.InFlight == 0 {
		return noEvent
	}
	next, ok := m.due.min()
	if !ok {
		// Unreachable while messages are in flight; fall back to the
		// defensive "tick me next cycle" promise.
		return now + 1
	}
	if next <= now {
		return now + 1
	}
	return next
}

// Diagnose describes pending traffic for engine deadlock dumps.
func (m *Mesh) Diagnose() string {
	return fmt.Sprintf("in-flight=%d (express %d) injected=%d delivered=%d",
		m.Stats.InFlight, m.exCount, m.Stats.Injected, m.Stats.Messages)
}
