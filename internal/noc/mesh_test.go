package noc

import (
	"testing"
	"testing/quick"
)

// collect builds a mesh whose deliveries append to a slice.
type delivery struct {
	tile    int
	port    Port
	payload any
	cycle   uint64
}

func testMesh(w, h int) (*Mesh, *[]delivery) {
	var got []delivery
	m := New(w, h, 1, 1, func(cycle uint64, tile int, port Port, payload any) {
		got = append(got, delivery{tile, port, payload, cycle})
	})
	return m, &got
}

func runCycles(m *Mesh, got *[]delivery, from, n uint64) {
	for c := from; c < from+n; c++ {
		m.Tick(c)
	}
}

func TestMeshDistance(t *testing.T) {
	m, _ := testMesh(4, 4)
	tests := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 1}, {0, 5, 2}, {0, 15, 6}, {3, 12, 6},
	}
	for _, tt := range tests {
		if got := m.Distance(tt.a, tt.b); got != tt.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMeshDeliveryAndLatency(t *testing.T) {
	m, got := testMesh(4, 4)
	m.Send(0, 0, 0, PortL2, "local")
	runCycles(m, got, 0, 5)
	if len(*got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(*got))
	}
	d := (*got)[0]
	if d.tile != 0 || d.port != PortL2 || d.payload != "local" {
		t.Fatalf("delivery = %+v", d)
	}
	localLat := d.cycle

	// A remote message takes longer, by roughly 2 cycles per hop.
	*got = (*got)[:0]
	m.Send(5, 0, 15, PortCore, "far")
	runCycles(m, got, 5, 40)
	if len(*got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(*got))
	}
	farLat := (*got)[0].cycle - 5
	wantMin := uint64(2 * m.Distance(0, 15)) // link+router per hop
	if farLat < wantMin {
		t.Errorf("far latency %d < expected minimum %d", farLat, wantMin)
	}
	if farLat <= localLat {
		t.Errorf("far latency %d not greater than local %d", farLat, localLat)
	}
}

func TestMeshXYOrderingPreserved(t *testing.T) {
	// Two messages on the same path arrive in send order (link FIFOs).
	m, got := testMesh(4, 4)
	m.Send(0, 0, 3, PortL2, 1)
	m.Send(0, 0, 3, PortL2, 2)
	runCycles(m, got, 0, 30)
	if len(*got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(*got))
	}
	if (*got)[0].payload != 1 || (*got)[1].payload != 2 {
		t.Fatalf("out of order: %+v", *got)
	}
	if (*got)[1].cycle <= (*got)[0].cycle {
		t.Fatalf("no serialization: %d then %d", (*got)[0].cycle, (*got)[1].cycle)
	}
}

func TestMeshContentionSerializes(t *testing.T) {
	// Ejection bandwidth is one message per tile per cycle: n messages to
	// the same tile take at least n cycles to deliver.
	m, got := testMesh(4, 4)
	const n = 8
	for i := 0; i < n; i++ {
		m.Send(0, i%4, 5, PortL2, i)
	}
	runCycles(m, got, 0, 60)
	if len(*got) != n {
		t.Fatalf("deliveries = %d, want %d", len(*got), n)
	}
	first, last := (*got)[0].cycle, (*got)[n-1].cycle
	if last-first < n/2 {
		t.Errorf("contention did not serialize: first %d last %d", first, last)
	}
}

func TestMeshStatsAndQuiesce(t *testing.T) {
	m, got := testMesh(2, 2)
	if !m.Quiesced() {
		t.Fatal("fresh mesh not quiesced")
	}
	m.Send(0, 0, 3, PortCore, "x")
	if m.Quiesced() {
		t.Fatal("mesh quiesced with message in flight")
	}
	runCycles(m, got, 0, 20)
	if !m.Quiesced() {
		t.Fatal("mesh not quiesced after delivery")
	}
	if m.Stats.Injected != 1 || m.Stats.Messages != 1 {
		t.Fatalf("stats = %+v", m.Stats)
	}
	if m.Stats.Hops != uint64(m.Distance(0, 3)) {
		t.Fatalf("hops = %d, want %d", m.Stats.Hops, m.Distance(0, 3))
	}
}

func TestMeshSendValidation(t *testing.T) {
	m, _ := testMesh(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range tile")
		}
	}()
	m.Send(0, 0, 9, PortL2, nil)
}

// scanDueMin recomputes the minimum readyAt over every buffered message by
// brute force — the reference for the incrementally maintained tracker.
func scanDueMin(m *Mesh) (uint64, bool) {
	min, ok := ^uint64(0), false
	for i := range m.routers {
		for dir := 0; dir < numDirs; dir++ {
			for _, mg := range m.routers[i].out[dir].q {
				if mg != nil && mg.readyAt < min {
					min, ok = mg.readyAt, true
				}
			}
		}
	}
	return min, ok
}

// TestMeshNextEventMatchesScan: the incrementally maintained due minimum
// must equal a brute-force scan over every buffered message, at every cycle
// of an arbitrary traffic pattern (including mid-flight hops, contention,
// and drain).
func TestMeshNextEventMatchesScan(t *testing.T) {
	prop := func(pairs []uint8) bool {
		m, _ := testMesh(4, 4)
		for i, p := range pairs {
			if i >= 48 {
				break
			}
			m.Send(uint64(i%3), int(p)%16, int(p>>4)%16, PortL2, i)
		}
		for c := uint64(0); c < 400; c++ {
			wantMin, wantOK := scanDueMin(m)
			gotMin, gotOK := m.due.min()
			if wantOK != gotOK || (wantOK && wantMin != gotMin) {
				t.Logf("cycle %d: tracker min = (%d,%v), scan = (%d,%v)",
					c, gotMin, gotOK, wantMin, wantOK)
				return false
			}
			if m.Stats.InFlight > 0 {
				if next := m.NextEvent(c); next <= c {
					t.Logf("cycle %d: NextEvent = %d, not strictly in the future", c, next)
					return false
				}
			} else if m.NextEvent(c) != noEvent {
				t.Logf("cycle %d: quiesced mesh promised an event", c)
				return false
			}
			m.Tick(c)
		}
		return m.Quiesced()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMeshDueTrackerBounded: the due tracker must not grow without bound
// when NextEvent is never consulted (the dense and quiescent engines):
// remove prunes stale heap tops, so a long run's heap stays proportional
// to the live buffered traffic, not to the distinct due times ever seen.
func TestMeshDueTrackerBounded(t *testing.T) {
	m, _ := testMesh(4, 4)
	for c := uint64(0); c < 20_000; c++ {
		if c%3 == 0 {
			m.Send(c, int(c)%16, int(c/3)%16, PortL2, nil)
		}
		m.Tick(c) // NextEvent deliberately never called
	}
	if n := len(m.due.heap); n > 64 {
		t.Fatalf("due heap grew to %d entries without NextEvent pruning", n)
	}
	if n := len(m.due.count); n > 64 {
		t.Fatalf("due count map grew to %d entries", n)
	}
}

// TestMeshAllDelivered: every injected message is eventually delivered to
// its destination exactly once, for arbitrary traffic patterns.
func TestMeshAllDelivered(t *testing.T) {
	prop := func(pairs []uint8) bool {
		if len(pairs) > 64 {
			pairs = pairs[:64]
		}
		m, got := testMesh(4, 4)
		want := map[int]int{} // dst -> count
		for i, p := range pairs {
			src, dst := int(p)%16, int(p>>4)%16
			m.Send(0, src, dst, PortL2, i)
			want[dst]++
		}
		runCycles(m, got, 0, 600)
		if !m.Quiesced() || len(*got) != len(pairs) {
			return false
		}
		have := map[int]int{}
		for _, d := range *got {
			have[d.tile]++
		}
		for dst, n := range want {
			if have[dst] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
