package scratchpad

import "testing"

func testStash() *Stash {
	s := NewStash(New(16<<10, 32), 64)
	s.SetMapping(Mapping{GlobalBase: 0x10000, LocalBase: 0, Bytes: 16 << 10})
	return s
}

func TestStashLoadStateMachine(t *testing.T) {
	s := testStash()
	if got := s.LoadAccess(0x40); got != StashNeedFill {
		t.Fatalf("first touch = %v, want need-fill", got)
	}
	s.FillStarted(0x40)
	if got := s.LoadAccess(0x48); got != StashFillPending {
		t.Fatalf("during fill = %v, want pending", got)
	}
	s.FillDone(0x10040) // global line for local line 1
	if got := s.LoadAccess(0x40); got != StashHit {
		t.Fatalf("after fill = %v, want hit", got)
	}
	if s.Hits != 1 || s.FillsStarted != 1 || s.FillsMerged != 1 {
		t.Fatalf("stats: hits=%d starts=%d merges=%d", s.Hits, s.FillsStarted, s.FillsMerged)
	}
}

func TestStashFillDoneIgnoresForeignLines(t *testing.T) {
	s := testStash()
	s.FillDone(0x9999_0000) // outside the mapping: ignored
	if got := s.LoadAccess(0); got != StashNeedFill {
		t.Fatalf("foreign fill marked a line present: %v", got)
	}
}

func TestStashStoreWriteAllocates(t *testing.T) {
	s := testStash()
	s.StoreAccess(0x80)
	// Write-allocate: the line is present and dirty without any fill.
	if got := s.LoadAccess(0x80); got != StashHit {
		t.Fatalf("after store = %v, want hit", got)
	}
	if s.DirtyLines() != 1 {
		t.Fatalf("dirty lines = %d", s.DirtyLines())
	}
}

func TestStashTranslation(t *testing.T) {
	s := testStash()
	if s.GlobalFor(0x100) != 0x10100 {
		t.Fatalf("GlobalFor = %#x", s.GlobalFor(0x100))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unmapped address")
		}
	}()
	s.GlobalFor(0x20000)
}

func TestStashSetMappingResets(t *testing.T) {
	s := testStash()
	s.StoreAccess(0x80)
	s.SetMapping(Mapping{GlobalBase: 0x20000, LocalBase: 0, Bytes: 16 << 10})
	if s.DirtyLines() != 0 {
		t.Fatal("remap kept dirty state")
	}
	if got := s.LoadAccess(0x80); got != StashNeedFill {
		t.Fatalf("remap kept present state: %v", got)
	}
}
