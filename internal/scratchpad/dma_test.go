package scratchpad

import (
	"testing"

	"gsi/internal/coherence"
	"gsi/internal/core"
	"gsi/internal/mem"
	"gsi/internal/sim"
)

// dmaHarness wires a DMA engine to a real memory system on core 0.
type dmaHarness struct {
	t   *testing.T
	sys *mem.System
	eng *sim.Engine
	pad *Scratchpad
	dma *DMAEngine
}

func newDMAHarness(t *testing.T) *dmaHarness {
	t.Helper()
	cfg := sim.Default()
	cfg.NumSMs = 1
	sys, err := mem.NewSystem(cfg, coherence.PoliciesFor(cfg.NumSMs, coherence.DeNovo{}))
	if err != nil {
		t.Fatal(err)
	}
	h := &dmaHarness{t: t, sys: sys, eng: sim.NewEngine()}
	h.pad = New(cfg.ScratchSize, cfg.ScratchBanks)
	h.dma = NewDMAEngine(h.pad, sys.Cores[0], sys.Backing, sys.Mesh,
		sys.CoreTile(0), 0, sys.BankTile, cfg.LineSize)
	// The harness starts transfers between steps with no wake wiring, so
	// drive both components densely.
	h.eng.SetDense(true)
	h.eng.Register("mem", sim.TickFunc(sys.Tick))
	h.eng.Register("dma", sim.TickFunc(h.dma.Tick))
	return h
}

func TestDMAInTransfersAndUnblocks(t *testing.T) {
	h := newDMAHarness(t)
	cm := h.sys.Cores[0]
	cm.OnLoadDone = func(tg mem.Target, _ core.DataWhere) {
		if tg.Kind == mem.TargetDMAFill {
			h.dma.FillDone(tg.Aux)
		}
	}
	const base, bytes = uint64(0x2_0000), uint64(1024)
	for off := uint64(0); off < bytes; off += 8 {
		h.sys.Backing.Store64(base+off, off)
	}
	m := Mapping{GlobalBase: base, LocalBase: 0, Bytes: bytes}
	h.dma.StartIn(m)
	if h.dma.State() != DMALoading {
		t.Fatal("engine not loading")
	}
	if !h.dma.Blocking(0) || !h.dma.Blocking(bytes-8) {
		t.Fatal("mapped accesses must block during the bulk load")
	}
	for i := 0; i < 100_000 && h.dma.State() != DMAReady; i++ {
		h.eng.Step()
	}
	if h.dma.State() != DMAReady {
		t.Fatal("bulk load never completed")
	}
	if h.dma.Blocking(0) {
		t.Fatal("still blocking after completion")
	}
	// Functional copy-in happened.
	for off := uint64(0); off < bytes; off += 8 {
		if h.pad.Load64(off) != off {
			t.Fatalf("pad[%#x] = %d, want %d", off, h.pad.Load64(off), off)
		}
	}
	if h.dma.LinesIn != bytes/64 {
		t.Fatalf("LinesIn = %d, want %d", h.dma.LinesIn, bytes/64)
	}
}

func TestDMAOutWritesBack(t *testing.T) {
	h := newDMAHarness(t)
	const base, bytes = uint64(0x3_0000), uint64(512)
	m := Mapping{GlobalBase: base, LocalBase: 0, Bytes: bytes}
	h.dma.StartIn(Mapping{}) // empty in-transfer completes immediately
	if h.dma.State() != DMAReady {
		t.Fatal("empty transfer should be ready")
	}
	h.dma.mapping = m
	for off := uint64(0); off < bytes; off += 8 {
		h.pad.Store64(off, off*3)
	}
	cm := h.sys.Cores[0]
	cm.OnWriteAck = h.dma.WriteAcked
	h.dma.StartOut()
	for i := 0; i < 100_000 && h.dma.State() != DMADone; i++ {
		h.eng.Step()
	}
	if h.dma.State() != DMADone {
		t.Fatal("write-back never completed")
	}
	for off := uint64(0); off < bytes; off += 8 {
		if got := h.sys.Backing.Load64(base + off); got != off*3 {
			t.Fatalf("backing[%#x] = %d, want %d", base+off, got, off*3)
		}
	}
	if h.dma.LinesOut != bytes/64 {
		t.Fatalf("LinesOut = %d", h.dma.LinesOut)
	}
	if !h.dma.Quiesced() {
		t.Fatal("engine not quiesced")
	}
}

func TestDMAConsumesMSHRs(t *testing.T) {
	h := newDMAHarness(t)
	cm := h.sys.Cores[0]
	cm.OnLoadDone = func(tg mem.Target, _ core.DataWhere) {
		if tg.Kind == mem.TargetDMAFill {
			h.dma.FillDone(tg.Aux)
		}
	}
	// A transfer much larger than the MSHR: the engine must throttle
	// (MSHRWaits > 0) and still finish.
	const bytes = uint64(64 * 64) // 64 lines >> 32 MSHRs
	h.dma.StartIn(Mapping{GlobalBase: 0x5_0000, LocalBase: 0, Bytes: bytes})
	sawFull := false
	for i := 0; i < 200_000 && h.dma.State() != DMAReady; i++ {
		h.eng.Step()
		if cm.MSHRFree() == 0 {
			sawFull = true
		}
	}
	if h.dma.State() != DMAReady {
		t.Fatal("large transfer never completed")
	}
	if !sawFull {
		t.Fatal("64-line DMA never filled the 32-entry MSHR")
	}
	if h.dma.MSHRWaits == 0 {
		t.Fatal("engine never throttled on the MSHR")
	}
}
