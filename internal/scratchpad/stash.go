package scratchpad

import "fmt"

// Stash is the hybrid local memory of Komuravelli et al.: directly
// addressed like a scratchpad, but part of the coherent global address
// space. A stash map translates local addresses to global ones; the first
// load of an unfilled line generates a global request (filling the stash
// directly, bypassing the L1), and dirty lines are registered through the
// store buffer so remote readers can be served and write-back is lazy.
//
// Stash timing interplay (MSHR use, SB use, warp-granularity blocking) is
// driven by the SM's load/store unit; this type tracks the map and the
// per-line fill/dirty state.
type Stash struct {
	pad      *Scratchpad
	mapping  Mapping
	lineSize uint64

	present map[uint64]bool // local line index -> filled
	filling map[uint64]bool // local line index -> fill in flight
	dirty   map[uint64]bool

	// Stats.
	Hits, FillsStarted, FillsMerged uint64
}

// NewStash wraps a scratchpad array as a stash.
func NewStash(pad *Scratchpad, lineSize int) *Stash {
	return &Stash{
		pad:      pad,
		lineSize: uint64(lineSize),
		present:  make(map[uint64]bool),
		filling:  make(map[uint64]bool),
		dirty:    make(map[uint64]bool),
	}
}

// SetMapping programs the stash map for the running block.
func (s *Stash) SetMapping(m Mapping) {
	s.mapping = m
	clear(s.present)
	clear(s.filling)
	clear(s.dirty)
}

// Mapping returns the active map.
func (s *Stash) Mapping() Mapping { return s.mapping }

func (s *Stash) lineOf(local uint64) uint64 { return local / s.lineSize }

// GlobalFor translates a local stash address to its global address. It
// panics if the address is outside the mapping — a kernel bug.
func (s *Stash) GlobalFor(local uint64) uint64 {
	if !s.mapping.Contains(local) {
		panic(fmt.Sprintf("stash: local %#x outside mapping", local))
	}
	return s.mapping.GlobalFor(local)
}

// LoadState classifies a stash load access.
type LoadState uint8

const (
	// StashHit: the word's line is present; 1-cycle local access.
	StashHit LoadState = iota
	// StashNeedFill: first touch; the LSU must issue a global fill.
	StashNeedFill
	// StashFillPending: a fill for this line is already in flight; the
	// LSU merges (the load completes when the fill returns).
	StashFillPending
)

// LoadAccess classifies a load of the given local address.
func (s *Stash) LoadAccess(local uint64) LoadState {
	l := s.lineOf(local)
	switch {
	case s.present[l]:
		s.Hits++
		return StashHit
	case s.filling[l]:
		s.FillsMerged++
		return StashFillPending
	default:
		return StashNeedFill
	}
}

// FillStarted marks a fill in flight for the line containing local.
func (s *Stash) FillStarted(local uint64) {
	s.FillsStarted++
	s.filling[s.lineOf(local)] = true
}

// FillDone marks the line containing the *global* line address as present.
func (s *Stash) FillDone(globalLine uint64) {
	if globalLine < s.mapping.GlobalBase ||
		globalLine >= s.mapping.GlobalBase+s.mapping.Bytes {
		return
	}
	l := s.lineOf(s.mapping.LocalFor(globalLine))
	delete(s.filling, l)
	s.present[l] = true
}

// StoreAccess records a store: write-allocate (the line becomes present
// without a fill; word data is functionally in the global backing store)
// and dirty.
func (s *Stash) StoreAccess(local uint64) {
	l := s.lineOf(local)
	s.present[l] = true
	s.dirty[l] = true
}

// DirtyLines reports the number of dirty stash lines (tests/stats).
func (s *Stash) DirtyLines() int { return len(s.dirty) }
