package scratchpad

import (
	"testing"
	"testing/quick"
)

func TestScratchpadLoadStore(t *testing.T) {
	s := New(1024, 32)
	if s.Size() != 1024 || s.Banks() != 32 {
		t.Fatalf("geometry: size=%d banks=%d", s.Size(), s.Banks())
	}
	s.Store64(8, 42)
	if s.Load64(8) != 42 {
		t.Fatal("roundtrip failed")
	}
	s.Reset()
	if s.Load64(8) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestScratchpadBoundsPanic(t *testing.T) {
	s := New(64, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Load64(64)
}

func TestConflictCycles(t *testing.T) {
	s := New(16<<10, 32)
	addr := func(word int) uint64 { return uint64(word * 8) }
	tests := []struct {
		name  string
		words []int
		want  int
	}{
		{"empty", nil, 1},
		{"single", []int{0}, 1},
		{"consecutive words hit distinct banks", seq(0, 32, 1), 1},
		{"stride 32 words aliases one bank", seq(0, 8, 32), 8},
		{"stride 16 words aliases pairwise", seq(0, 32, 16), 16},
		{"stride 2 uses half the banks", seq(0, 32, 2), 2},
		{"same word everywhere", []int{5, 5, 5, 5}, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			addrs := make([]uint64, len(tt.words))
			for i, w := range tt.words {
				addrs[i] = addr(w)
			}
			if got := s.ConflictCycles(addrs); got != tt.want {
				t.Errorf("ConflictCycles = %d, want %d", got, tt.want)
			}
		})
	}
}

func seq(start, n, stride int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i*stride
	}
	return out
}

// TestConflictCyclesBounds: the conflict cost is always between 1 and the
// lane count, and at least lanes/banks (pigeonhole).
func TestConflictCyclesBounds(t *testing.T) {
	s := New(16<<10, 32)
	prop := func(words []uint16) bool {
		if len(words) == 0 {
			return true
		}
		if len(words) > 32 {
			words = words[:32]
		}
		addrs := make([]uint64, len(words))
		for i, w := range words {
			addrs[i] = uint64(w%2048) * 8
		}
		c := s.ConflictCycles(addrs)
		minC := (len(addrs) + s.Banks() - 1) / s.Banks()
		return c >= minC && c <= len(addrs)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapping(t *testing.T) {
	m := Mapping{GlobalBase: 0x1000, LocalBase: 0x100, Bytes: 0x200}
	if !m.Contains(0x100) || !m.Contains(0x2FF) || m.Contains(0x300) || m.Contains(0xFF) {
		t.Fatal("Contains wrong")
	}
	if m.GlobalFor(0x180) != 0x1080 {
		t.Fatalf("GlobalFor = %#x", m.GlobalFor(0x180))
	}
	if m.LocalFor(0x1080) != 0x180 {
		t.Fatalf("LocalFor = %#x", m.LocalFor(0x1080))
	}
}
