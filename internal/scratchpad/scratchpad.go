// Package scratchpad implements the three local-memory organizations of
// case study 2: the baseline software-managed scratchpad, the
// scratchpad+DMA configuration (a D2MA-like engine bulk-transfers the
// mapped region, blocking local accesses at core granularity until the
// transfer completes), and the stash (a coherent hybrid that fills mapped
// lines on demand from the global space and lazily registers dirty lines,
// blocking only the touching warp).
package scratchpad

import "fmt"

// Scratchpad is a banked, directly addressed local memory private to a
// thread block. It is not coherent: data moves in and out only through
// explicit instructions or an attached DMA engine.
type Scratchpad struct {
	words []uint64
	banks int
	// laneCounts is the reusable per-bank tally of ConflictCycles — the
	// conflict check runs for every local access, so it must not allocate.
	laneCounts []uint16
}

// New builds a scratchpad of size bytes with the given bank count.
func New(size, banks int) *Scratchpad {
	if size <= 0 || banks <= 0 {
		panic(fmt.Sprintf("scratchpad: invalid geometry size=%d banks=%d", size, banks))
	}
	return &Scratchpad{words: make([]uint64, size/8), banks: banks}
}

// Size returns capacity in bytes.
func (s *Scratchpad) Size() int { return len(s.words) * 8 }

// Reset zeroes the contents (a new thread block takes over the SM).
func (s *Scratchpad) Reset() {
	clear(s.words)
}

// Banks returns the bank count.
func (s *Scratchpad) Banks() int { return s.banks }

func (s *Scratchpad) wordIndex(addr uint64) int {
	i := int(addr / 8)
	if i < 0 || i >= len(s.words) {
		panic(fmt.Sprintf("scratchpad: address %#x outside %d-byte scratchpad", addr, s.Size()))
	}
	return i
}

// Load64 reads the local word at addr.
func (s *Scratchpad) Load64(addr uint64) uint64 { return s.words[s.wordIndex(addr)] }

// Store64 writes the local word at addr.
func (s *Scratchpad) Store64(addr uint64, v uint64) { s.words[s.wordIndex(addr)] = v }

// ConflictCycles returns the serialization cost of a set of simultaneous
// lane accesses: the maximum number of lanes mapping to any single bank
// (word-interleaved banking). One access per bank proceeds per cycle, so a
// conflict-free warp access costs 1 cycle.
func (s *Scratchpad) ConflictCycles(addrs []uint64) int {
	if len(addrs) == 0 {
		return 1
	}
	if s.laneCounts == nil {
		s.laneCounts = make([]uint16, s.banks)
	}
	counts := s.laneCounts
	clear(counts)
	maxCount := uint16(0)
	for _, a := range addrs {
		b := int(a/8) % s.banks
		counts[b]++
		if counts[b] > maxCount {
			maxCount = counts[b]
		}
	}
	return int(maxCount)
}
