package scratchpad

import (
	"fmt"

	"gsi/internal/mem"
	"gsi/internal/noc"
)

// Mapping describes a block's scratchpad/stash window onto the global
// address space: Bytes bytes starting at GlobalBase map to local addresses
// starting at LocalBase.
type Mapping struct {
	GlobalBase uint64
	LocalBase  uint64
	Bytes      uint64
}

// Contains reports whether the local address falls inside the mapping.
func (m Mapping) Contains(local uint64) bool {
	return local >= m.LocalBase && local < m.LocalBase+m.Bytes
}

// GlobalFor translates a local address inside the mapping.
func (m Mapping) GlobalFor(local uint64) uint64 {
	return m.GlobalBase + (local - m.LocalBase)
}

// LocalFor translates a global address inside the mapping.
func (m Mapping) LocalFor(global uint64) uint64 {
	return m.LocalBase + (global - m.GlobalBase)
}

// DMAState is the engine's phase.
type DMAState uint8

const (
	// DMAIdle: no transfer programmed.
	DMAIdle DMAState = iota
	// DMALoading: the bulk load into the scratchpad is in progress;
	// local accesses to the mapped region block (core granularity).
	DMALoading
	// DMAReady: the load finished; the scratchpad is usable.
	DMAReady
	// DMAWritingBack: the bulk write-back to global memory is draining.
	DMAWritingBack
	// DMADone: everything including write-back has completed.
	DMADone
)

// DMAEngine approximates D2MA: it transfers the mapped region into the
// scratchpad in bulk, issuing one line request per cycle, bypassing the
// pipeline and the L1 but consuming MSHR entries (which is why the paper's
// scratchpad+DMA configuration fills the MSHR faster than the baseline).
// On write-back it issues one write-through per cycle and waits for acks.
type DMAEngine struct {
	pad      *Scratchpad
	cm       *mem.CoreMem
	backing  *mem.Backing
	mesh     *noc.Mesh
	tile     int
	coreID   int
	bankTile func(line uint64) int
	lineSize uint64

	state   DMAState
	mapping Mapping

	// staged defers write-back mesh sends for the parallel tick engine:
	// Tick runs concurrently with other SMs' ticks, so instead of
	// injecting into the shared mesh it parks (dst, payload) pairs that
	// FlushStaged hands over during the owning SM's commit phase — the
	// same cycle, in the same order.
	staged  bool
	staging []stagedSend

	nextIn     uint64 // next global line offset to request
	pendingIn  map[uint64]struct{}
	nextOut    uint64
	pendingOut map[uint64]struct{}

	// Stats.
	LinesIn, LinesOut uint64
	MSHRWaits         uint64
}

// stagedSend is one deferred write-back injection.
type stagedSend struct {
	dst     int
	payload any
}

// SetStaged switches the engine's mesh sends into staged mode (see the
// staged field); gpu.Run enables it for parallel-engine runs.
func (d *DMAEngine) SetStaged(on bool) { d.staged = on }

// FlushStaged injects the sends staged by this cycle's Tick into the mesh.
// Called from the owning SM's commit phase on the engine goroutine.
func (d *DMAEngine) FlushStaged(cycle uint64) {
	for _, s := range d.staging {
		d.mesh.Send(cycle, d.tile, s.dst, noc.PortL2, s.payload)
	}
	d.staging = d.staging[:0]
}

// NewDMAEngine builds an engine attached to one SM's scratchpad and memory
// unit.
func NewDMAEngine(pad *Scratchpad, cm *mem.CoreMem, backing *mem.Backing,
	mesh *noc.Mesh, tile, coreID int, bankTile func(uint64) int, lineSize int) *DMAEngine {
	return &DMAEngine{
		pad: pad, cm: cm, backing: backing, mesh: mesh,
		tile: tile, coreID: coreID, bankTile: bankTile,
		lineSize:   uint64(lineSize),
		pendingIn:  make(map[uint64]struct{}),
		pendingOut: make(map[uint64]struct{}),
	}
}

// State returns the engine phase.
func (d *DMAEngine) State() DMAState { return d.state }

// Blocking reports whether a local access to the mapped region must stall
// (pending DMA): true during the bulk load. The paper's scratchpad+DMA
// blocks at core granularity, so the LSU treats any mapped access as
// blocked while this is true.
func (d *DMAEngine) Blocking(local uint64) bool {
	return d.state == DMALoading && d.mapping.Contains(local)
}

// StartIn programs the load transfer; data becomes usable when State
// reaches DMAReady.
func (d *DMAEngine) StartIn(m Mapping) {
	d.mapping = m
	d.state = DMALoading
	d.nextIn = 0
	if m.Bytes == 0 {
		d.state = DMAReady
	}
}

// StartOut programs the bulk write-back (kernel end).
func (d *DMAEngine) StartOut() {
	if d.mapping.Bytes == 0 {
		d.state = DMADone
		return
	}
	d.state = DMAWritingBack
	d.nextOut = 0
}

// Tick issues at most one line transfer per cycle in either direction. It
// reports whether a transfer is still in progress.
func (d *DMAEngine) Tick(cycle uint64) bool {
	switch d.state {
	case DMALoading:
		d.tickIn(cycle)
	case DMAWritingBack:
		d.tickOut(cycle)
	}
	return d.state == DMALoading || d.state == DMAWritingBack
}

func (d *DMAEngine) tickIn(cycle uint64) {
	if d.nextIn >= d.mapping.Bytes {
		if len(d.pendingIn) == 0 {
			d.state = DMAReady
		}
		return
	}
	global := d.mapping.GlobalBase + d.nextIn
	line := global &^ (d.lineSize - 1)
	switch d.cm.Load(global, mem.Target{Kind: mem.TargetDMAFill, Aux: line, NoL1: true}, cycle) {
	case mem.LoadMSHRFull:
		d.MSHRWaits++
		return // retry next cycle
	case mem.LoadHit:
		d.copyIn(line)
	case mem.LoadMiss, mem.LoadMerged:
		d.pendingIn[line] = struct{}{}
	}
	d.LinesIn++
	d.nextIn += d.lineSize
}

// FillDone completes one inbound line; the SM routes TargetDMAFill
// completions here.
func (d *DMAEngine) FillDone(line uint64) {
	if _, ok := d.pendingIn[line]; !ok {
		return
	}
	delete(d.pendingIn, line)
	d.copyIn(line)
	if d.state == DMALoading && d.nextIn >= d.mapping.Bytes && len(d.pendingIn) == 0 {
		d.state = DMAReady
	}
}

// copyIn moves one line's words from global memory into the scratchpad
// (functional side of the transfer).
func (d *DMAEngine) copyIn(line uint64) {
	for off := uint64(0); off < d.lineSize; off += 8 {
		g := line + off
		if g < d.mapping.GlobalBase || g >= d.mapping.GlobalBase+d.mapping.Bytes {
			continue
		}
		d.pad.Store64(d.mapping.LocalFor(g), d.backing.Load64(g))
	}
}

func (d *DMAEngine) tickOut(cycle uint64) {
	if d.nextOut >= d.mapping.Bytes {
		if len(d.pendingOut) == 0 {
			d.state = DMADone
		}
		return
	}
	global := d.mapping.GlobalBase + d.nextOut
	line := global &^ (d.lineSize - 1)
	// Functional copy-out of the line's mapped words, then a
	// write-through carrying the line to its home bank.
	for off := uint64(0); off < d.lineSize; off += 8 {
		g := line + off
		if g < d.mapping.GlobalBase || g >= d.mapping.GlobalBase+d.mapping.Bytes {
			continue
		}
		d.backing.Store64(g, d.pad.Load64(d.mapping.LocalFor(g)))
	}
	d.pendingOut[line] = struct{}{}
	wt := mem.WriteThrough{Line: line, Requestor: d.coreID}
	if d.staged {
		d.staging = append(d.staging, stagedSend{dst: d.bankTile(line), payload: wt})
	} else {
		d.mesh.Send(cycle, d.tile, d.bankTile(line), noc.PortL2, wt)
	}
	d.LinesOut++
	d.nextOut += d.lineSize
}

// WriteAcked consumes write-back acknowledgements (the SM forwards every
// WriteAck; lines not in the outstanding set are someone else's).
func (d *DMAEngine) WriteAcked(line uint64) {
	if _, ok := d.pendingOut[line]; !ok {
		return
	}
	delete(d.pendingOut, line)
	if d.state == DMAWritingBack && d.nextOut >= d.mapping.Bytes && len(d.pendingOut) == 0 {
		d.state = DMADone
	}
}

// Quiesced reports no transfer in progress.
func (d *DMAEngine) Quiesced() bool {
	return d.state == DMAIdle || d.state == DMAReady || d.state == DMADone
}

// noEvent mirrors sim.NoEvent.
const noEvent = ^uint64(0)

// NextEvent implements the engine's skip-ahead extension for the SM that
// hosts this engine: while a transfer still has lines to issue (or MSHR-full
// retries to make) the engine works — and counts retry stats — every cycle,
// and once the final line completes synchronously (an L1 hit) the phase
// transition itself happens on the next tick. Only a transfer whose issued
// lines are all waiting on fills or write acks is a pure external waiter
// (the last arrival performs the transition directly).
func (d *DMAEngine) NextEvent(now uint64) uint64 {
	switch d.state {
	case DMALoading:
		if d.nextIn < d.mapping.Bytes || len(d.pendingIn) == 0 {
			return now + 1
		}
	case DMAWritingBack:
		if d.nextOut < d.mapping.Bytes || len(d.pendingOut) == 0 {
			return now + 1
		}
	}
	return noEvent
}

// Diagnose describes the transfer state for engine deadlock dumps.
func (d *DMAEngine) Diagnose() string {
	return fmt.Sprintf("dma state=%d pending-in=%d pending-out=%d",
		d.state, len(d.pendingIn), len(d.pendingOut))
}
