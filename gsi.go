// Package gsi is the public API of the GPU Stall Inspector reproduction:
// a cycle-level simulator of a tightly coupled CPU-GPU system (15 SMs + 1
// CPU on a 4x4 mesh with a banked NUCA L2) instrumented with GSI, the
// stall-attribution methodology of Alsop, Sinclair, and Adve (ISPASS 2016).
//
// A simulation is described by Options (system parameters + coherence
// protocol + ablation switches) and a Workload drawn from the registry
// (Workloads): the paper's benchmarks (UTS, UTSD, and the implicit
// microbenchmark in three local-memory organizations) plus the
// sparse/bursty additions (level-synchronized BFS, SpMV, a
// producer-consumer pipeline, and GUPS random-access updates). Run
// executes the workload to completion, functionally verifies it, and
// returns a Report containing the per-cycle stall breakdown, the memory
// data stall sub-classification (by service location), and the memory
// structural sub-classification (by blocking resource).
//
//	rep, err := gsi.Run(gsi.Options{Protocol: gsi.DeNovo}, gsi.NewUTSD(2000))
//	fmt.Print(rep.Summary())
//
// Batches of configurations run through the sweep layer: a Grid declares a
// cartesian product of axes (protocol, MSHR size, local-memory kind,
// ablations), expands to a Sweep, and Sweep.Run fans the jobs out across a
// worker pool. Results return in job order and are byte-identical to a
// serial run for any worker count. The paper's figures are declared as
// FigureSpec sweeps; Report and FigureSet serialize to labeled JSON.
package gsi

import (
	"fmt"
	"strings"

	"gsi/internal/coherence"
	"gsi/internal/core"
	"gsi/internal/gpu"
	"gsi/internal/mem"
	"gsi/internal/scratchpad"
	"gsi/internal/sim"
	"gsi/internal/trace"
	"gsi/internal/workloads"
)

// The stall taxonomy, re-exported so report consumers can index Counts
// without reaching into internal packages.
type (
	// StallKind is a top-level cycle classification (Algorithm 2).
	StallKind = core.StallKind
	// DataWhere sub-classifies memory data stalls by service location.
	DataWhere = core.DataWhere
	// StructCause sub-classifies memory structural stalls by resource.
	StructCause = core.StructCause
	// Counts is a stall profile: cycles by kind plus both sub-breakdowns.
	Counts = core.Counts
)

// Top-level stall kinds (section 4.1 of the paper).
const (
	NoStall        = core.NoStall
	Idle           = core.Idle
	Control        = core.Control
	Sync           = core.Sync
	MemData        = core.MemData
	MemStructural  = core.MemStructural
	CompData       = core.CompData
	CompStructural = core.CompStructural
)

// Memory data stall service locations (section 4.3).
const (
	WhereL1           = core.WhereL1
	WhereL1Coalescing = core.WhereL1Coalescing
	WhereL2           = core.WhereL2
	WhereRemoteL1     = core.WhereRemoteL1
	WhereMemory       = core.WhereMemory
)

// Memory structural stall causes (section 4.4).
const (
	StructMSHRFull        = core.StructMSHRFull
	StructStoreBufferFull = core.StructStoreBufferFull
	StructBankConflict    = core.StructBankConflict
	StructPendingRelease  = core.StructPendingRelease
	StructPendingDMA      = core.StructPendingDMA
)

// Compute-stall units (the conclusion's suggested extension).
const (
	ALUUnit   = core.UnitALU
	SFUUnit   = core.UnitSFU
	IssueUnit = core.UnitIssue
)

// Protocol selects the GPU coherence protocol (the CPU always runs DeNovo,
// as in the paper's methodology).
type Protocol uint8

const (
	// GPUCoherence is the conventional software protocol: acquire
	// self-invalidates the whole L1, releases write dirty data through
	// to the L2.
	GPUCoherence Protocol = iota
	// DeNovo registers ownership of dirty lines at the L2 directory;
	// owned lines survive acquires, serve remote readers, and make
	// repeat releases free.
	DeNovo
)

// ParseProtocol parses a protocol name as the CLIs and the serve layer
// accept it: "gpu" (also "gpucoherence", "gpu-coherence") or "denovo",
// case-insensitively.
func ParseProtocol(s string) (Protocol, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "gpu", "gpucoherence", "gpu-coherence":
		return GPUCoherence, nil
	case "denovo":
		return DeNovo, nil
	}
	return DeNovo, fmt.Errorf("gsi: unknown protocol %q (want gpu or denovo)", s)
}

// String names the protocol as in the paper's figures.
func (p Protocol) String() string {
	switch p {
	case GPUCoherence:
		return "GPU coherence"
	case DeNovo:
		return "DeNovo"
	}
	return fmt.Sprintf("Protocol(%d)", uint8(p))
}

func (p Protocol) policy() mem.Policy {
	if p == DeNovo {
		return coherence.DeNovo{}
	}
	return coherence.GPUCoherence{}
}

// LocalMem selects a local-memory organization for the implicit
// microbenchmark (case study 2).
type LocalMem = gpu.LocalKind

// Local-memory organizations.
const (
	Scratchpad    = gpu.LocalScratch
	ScratchpadDMA = gpu.LocalScratchDMA
	Stash         = gpu.LocalStash
)

// ParseLocalMem parses a local-memory organization name as the CLIs and
// the serve layer accept it: "scratchpad" (also "scratch"), "dma" (also
// "scratchpad+dma"), or "stash", case-insensitively.
func ParseLocalMem(s string) (LocalMem, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "scratchpad", "scratch":
		return Scratchpad, nil
	case "dma", "scratchpad+dma":
		return ScratchpadDMA, nil
	case "stash":
		return Stash, nil
	}
	return Scratchpad, fmt.Errorf("gsi: unknown local memory %q (want scratchpad, dma, or stash)", s)
}

// SystemConfig re-exports the architectural parameter block; the zero
// value is not valid — start from DefaultConfig (Table 5.1).
type SystemConfig = sim.Config

// DefaultConfig returns the Table 5.1 system.
func DefaultConfig() SystemConfig { return sim.Default() }

// EngineMode re-exports the scheduling-loop selector
// (SystemConfig.Engine). All modes produce byte-identical Reports; they
// differ only in wall-clock cost.
type EngineMode = sim.EngineMode

// Engine modes: skip-ahead (the default), quiescent (active set, no
// jumps), the dense reference loop, and the parallel tick engine
// (skip-ahead semantics with the tick pass spread over a worker pool;
// select it with SystemConfig.Parallel >= 2).
const (
	EngineSkip      = sim.EngineSkip
	EngineQuiescent = sim.EngineQuiescent
	EngineDense     = sim.EngineDense
	EngineParallel  = sim.EngineParallel
)

// ParseEngineMode parses a -engine flag value ("dense", "quiescent",
// "skip", "parallel").
func ParseEngineMode(s string) (EngineMode, error) { return sim.ParseEngineMode(s) }

// EngineStats re-exports the engine's scheduling counters (tick passes,
// skip-ahead jumps, skipped cycles), reported per run on Report.
type EngineStats = sim.EngineStats

// Typed simulation-failure sentinels, re-exported from the engine for
// errors.Is checks on Run/RunContext (and per-job Sweep) errors. Callers
// use them to separate terminal failures (a deadlocked workload will
// deadlock again) from transient ones worth retrying.
var (
	// ErrMaxCycles marks the in-sim watchdog: the cycle limit was reached
	// before the workload completed. The error string carries the engine's
	// per-component diagnosis dump.
	ErrMaxCycles = sim.ErrMaxCycles
	// ErrStalled marks a fully quiesced but unfinished simulation — no
	// tick can ever change anything again. Carries the diagnosis dump.
	ErrStalled = sim.ErrStalled
	// ErrDeadline marks an expired wall-clock deadline on the RunContext
	// context. Carries the diagnosis dump, so a deadline on a wedged
	// simulation still says which unit held work.
	ErrDeadline = sim.ErrDeadline
	// ErrCanceled marks a cooperative stop: the RunContext context was
	// canceled (job deletion, shutdown). No diagnosis is attached — the
	// caller asked for the stop.
	ErrCanceled = sim.ErrCanceled
)

// Mapping re-exports the scratchpad/stash window descriptor for custom
// kernels.
type Mapping = scratchpad.Mapping

// Workload parameter blocks, re-exported from internal/workloads.
type (
	// UTS parameterizes unbalanced tree search on one global queue.
	UTS = workloads.UTS
	// UTSD parameterizes the decentralized variant.
	UTSD = workloads.UTSD
	// Implicit parameterizes the streaming microbenchmark.
	Implicit = workloads.Implicit
	// BFS parameterizes level-synchronized breadth-first search over a
	// CSR graph (irregular gathers, frontier atomics, global barriers).
	BFS = workloads.BFS
	// SpMV parameterizes the CSR sparse matrix-vector product
	// (streaming rows with indirect column gathers).
	SpMV = workloads.SpMV
	// Pipeline parameterizes the producer-consumer pipeline with long
	// idle phases between stages (the skip-ahead engine's bursty case).
	Pipeline = workloads.Pipeline
	// GUPS parameterizes the random-access update benchmark
	// (MSHR/coalescer pressure through line-strided vector windows).
	GUPS = workloads.GUPS
	// Stencil parameterizes the 2D halo-exchange stencil with
	// DMA-staged band windows (bulk-transfer/latency-overlap pressure).
	Stencil = workloads.Stencil
	// Steal parameterizes the work-stealing deque benchmark with a
	// steal-half policy (contended atomics, irregular quiescence).
	Steal = workloads.Steal
)

// Workload registry types, re-exported from internal/workloads. The
// registry is the single table both CLIs and the sweep Grid's workload
// axis drive: every entry carries a constructor, a parameter schema with
// default-scale values, SmallScale overrides, and an optional
// system-shaping hook. See Workloads.
type (
	// WorkloadEntry is one registered workload.
	WorkloadEntry = workloads.Entry
	// WorkloadParam is one entry of a parameter schema.
	WorkloadParam = workloads.Param
	// WorkloadValues holds parameter overrides by name.
	WorkloadValues = workloads.Values
	// WorkloadRegistry maps workload names to entries.
	WorkloadRegistry = workloads.Registry
)

// Workloads returns the registry of every built-in workload.
func Workloads() *WorkloadRegistry { return workloads.Builtins() }

// Options configures one simulation.
type Options struct {
	// System holds the architectural parameters; zero means
	// DefaultConfig.
	System SystemConfig
	// Protocol selects GPU coherence or DeNovo for the GPU L1s.
	Protocol Protocol
	// SFIFO enables the QuickRelease-style S-FIFO ablation (memory
	// operations keep issuing during a release flush; paper §6.1.4).
	SFIFO bool
	// OwnedAtomics enables the owned-atomics optimization the paper's
	// §6.1.4 suggests (atomics register L1 ownership; repeat atomics to
	// the same line execute locally). Effective only under DeNovo.
	OwnedAtomics bool
	// StrongCycle classifies cycles with the strong (Algorithm 1)
	// priority instead of the paper's weak order — ablation of §4.2.
	StrongCycle bool
	// EagerAttribution disables deferred memory-data attribution —
	// ablation of §4.3's methodology.
	EagerAttribution bool
	// Timeline records and renders a per-SM stall timeline in the
	// report (one character column per time bucket).
	Timeline bool
	// SkipVerify skips the workload's functional post-check (used by
	// fault-injection tests).
	SkipVerify bool
	// Trace, when non-nil, collects a structured event trace of the run
	// (per-SM stall spans, clock jumps, parallel phase timings, express
	// mesh events) for export via Trace.WriteChromeTrace or
	// Trace.WriteHTML. Tracing never changes simulation results: a traced
	// run's Report is byte-identical to an untraced one. The field is
	// excluded from JSON encodings and from CacheKey — trace presence
	// never changes a cache identity.
	Trace *Trace `json:"-"`
}

// Trace re-exports the structured trace collector. Allocate one with
// NewTrace, set it on Options.Trace, run, then export with
// WriteChromeTrace (Chrome/Perfetto trace-event JSON) or WriteHTML (a
// self-contained interactive timeline page).
type Trace = trace.Collector

// NewTrace returns an empty trace collector ready to set on
// Options.Trace. A collector may be reused across runs; each run resets
// it first.
func NewTrace() *Trace { return trace.New() }

// TimelineSnapshot re-exports the structured per-SM stall timeline
// captured when Options.Timeline is set (bucketed per-kind cycle counts,
// the data behind Report.Timeline's ASCII rendering).
type TimelineSnapshot = core.TimelineSnapshot

// TimelineColumn re-exports one time bucket of a TimelineSnapshot.
type TimelineColumn = core.TimelineColumn

// withDefaults fills in the zero value, preserving an engine-mode (and
// tick-worker) selection made on an otherwise-zero System.
func (o Options) withDefaults() Options {
	if o.System.NumSMs == 0 {
		mode := o.System.EngineMode()
		parallel := o.System.Parallel
		o.System = DefaultConfig()
		o.System.Engine = mode
		o.System.Parallel = parallel
	}
	return o
}
