package gsi

import (
	"context"
	"fmt"
	"strings"

	"gsi/internal/stats"
)

// FigureSet is one reproduced figure: the three stacked-bar sub-figures of
// the paper's case studies ((a) execution-time breakdown, (b) memory data
// stall sub-classification, (c) memory structural sub-classification),
// with one bar per configuration.
type FigureSet struct {
	ID       string       `json:"id"`
	Title    string       `json:"title"`
	Baseline string       `json:"baseline"` // bar the paper normalizes to
	Exec     *stats.Group `json:"exec"`
	Data     *stats.Group `json:"data"`
	Struct   *stats.Group `json:"struct"`
	Reports  []*Report    `json:"reports"`
}

// add folds one run into the three groups.
func (fs *FigureSet) add(r *Report) { fs.addNamed(r, "") }

// addNamed folds one run in with an explicit bar name ("" keeps the
// report's default: local-memory kind or protocol).
func (fs *FigureSet) addNamed(r *Report, bar string) {
	if fs.Exec == nil {
		fs.Exec = stats.NewGroup(fs.ID+"a: execution time breakdown", r.ExecBreakdown().Labels)
		fs.Data = stats.NewGroup(fs.ID+"b: memory data stall breakdown", r.MemDataBreakdown().Labels)
		fs.Struct = stats.NewGroup(fs.ID+"c: memory structural stall breakdown", r.MemStructBreakdown().Labels)
	}
	rename := func(b stats.Breakdown) stats.Breakdown {
		if bar != "" {
			b.Name = bar
		}
		return b
	}
	fs.Exec.Add(rename(r.ExecBreakdown()))
	fs.Data.Add(rename(r.MemDataBreakdown()))
	fs.Struct.Add(rename(r.MemStructBreakdown()))
	fs.Reports = append(fs.Reports, r)
}

// BaselineTotal returns the execution-time total of the baseline bar.
func (fs *FigureSet) BaselineTotal() float64 {
	for _, b := range fs.Exec.Bars {
		if b.Name == fs.Baseline {
			return b.Total()
		}
	}
	return 0
}

// Normalized returns the three sub-figures normalized to the baseline
// bar's execution-time total, the paper's convention ("normalized to GPU
// coherence" / "normalized to baseline scratchpad"): every sub-figure is
// divided by the same denominator so components remain comparable across
// sub-figures.
func (fs *FigureSet) Normalized() (exec, data, structural *stats.Group) {
	return fs.NormalizedTo(fs.BaselineTotal())
}

// NormalizedTo normalizes all three sub-figures by an explicit denominator
// (the MSHR sweep of figure 6.4 normalizes every set to the 32-entry
// scratchpad baseline).
func (fs *FigureSet) NormalizedTo(base float64) (exec, data, structural *stats.Group) {
	norm := func(g *stats.Group) *stats.Group {
		if base == 0 {
			return g
		}
		out := stats.NewGroup(g.Title+" (normalized)", g.Labels)
		for _, b := range g.Bars {
			out.Add(b.NormalizeTo(base))
		}
		return out
	}
	return norm(fs.Exec), norm(fs.Data), norm(fs.Struct)
}

// Render prints the normalized tables and charts for the whole figure.
func (fs *FigureSet) Render(width int) string {
	return fs.RenderTo(width, fs.BaselineTotal())
}

// RenderTo renders with an explicit normalization denominator.
func (fs *FigureSet) RenderTo(width int, base float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== Figure %s: %s (normalized to %s) ===\n", fs.ID, fs.Title, fs.Baseline)
	ne, nd, ns := fs.NormalizedTo(base)
	for _, g := range []*stats.Group{ne, nd, ns} {
		sb.WriteString(g.Table())
		sb.WriteString(g.Chart(width))
		sb.WriteString("\n")
	}
	return sb.String()
}

// Scale sizes the experiment workloads. Tests use small trees for speed;
// the benchmark harness uses the defaults.
type Scale struct {
	UTSNodes    int
	UTSDNodes   int
	FrontierMin int
	MSHRSizes   []int

	// Sparse/bursty workload sizing (the workload-gallery spec).
	BFSVertices    int
	SpMVRows       int
	PipelineRounds int
	GUPSUpdates    int
}

// DefaultScale is the benchmark-harness sizing: 6k-node trees and the
// widened figure 6.4 MSHR axis (up to 512 entries), both affordable since
// the skip-ahead engine stopped paying per cycle for latency waits.
func DefaultScale() Scale {
	return Scale{UTSNodes: 6000, UTSDNodes: 6000, FrontierMin: 120,
		MSHRSizes:   []int{32, 64, 128, 256, 512},
		BFSVertices: 4000, SpMVRows: 2048, PipelineRounds: 12, GUPSUpdates: 96}
}

// SmallScale keeps unit-test runtimes low; its MSHR axis spans the same
// widened range as DefaultScale (smallest and largest sizes only).
func SmallScale() Scale {
	return Scale{UTSNodes: 250, UTSDNodes: 250, FrontierMin: 60,
		MSHRSizes:   []int{32, 512},
		BFSVertices: 300, SpMVRows: 192, PipelineRounds: 4, GUPSUpdates: 12}
}

// FigureSpec is one reproduced figure declared as a sweep: run the jobs,
// fold each report into a FigureSet. The specs let the CLI batch every
// requested figure through one worker pool; the FigureXX wrappers keep the
// original serial API.
type FigureSpec struct {
	ID       string
	Title    string
	Baseline string
	// BaselineGroup, when non-empty, names a shared-normalization group:
	// every spec in the group renders against the baseline-bar total of
	// the group's first set (figure 6.4 normalizes all MSHR sizes to the
	// smallest size's scratchpad bar). Empty means self-normalized.
	BaselineGroup string
	// BarName, when non-nil, names the bar each job's report contributes
	// (the workload gallery names bars by workload; the default is the
	// report's local-memory kind or protocol).
	BarName func(r *Report) string
	Sweep   Sweep
}

// RenderBases returns the normalization denominator for each set produced
// by RunFigureSpecs(specs, ...): the set's own baseline-bar total, or the
// group leader's total for specs sharing a BaselineGroup. It is the single
// source of the paper's normalization conventions for renderers.
func RenderBases(specs []FigureSpec, sets []*FigureSet) []float64 {
	bases := make([]float64, len(sets))
	group := make(map[string]float64)
	for i := range sets {
		if i >= len(specs) || specs[i].BaselineGroup == "" {
			bases[i] = sets[i].BaselineTotal()
			continue
		}
		b, ok := group[specs[i].BaselineGroup]
		if !ok {
			b = sets[i].BaselineTotal()
			group[specs[i].BaselineGroup] = b
		}
		bases[i] = b
	}
	return bases
}

// Run executes the spec's sweep under cfg and folds the reports, in job
// order, into the FigureSet.
func (sp FigureSpec) Run(cfg SweepConfig) (*FigureSet, error) {
	sets, err := RunFigureSpecs([]FigureSpec{sp}, cfg)
	if err != nil {
		return nil, err
	}
	return sets[0], nil
}

// RunFigureSpecs concatenates every spec's jobs into one batch, runs it
// through the worker pool, and rebuilds one FigureSet per spec:
// RunFigureSpecsContext under context.Background().
func RunFigureSpecs(specs []FigureSpec, cfg SweepConfig) ([]*FigureSet, error) {
	return RunFigureSpecsContext(context.Background(), specs, cfg)
}

// RunFigureSpecsContext concatenates every spec's jobs into one batch,
// runs it through the worker pool under ctx, and rebuilds one FigureSet
// per spec. Results are identical to running each spec serially, for any
// parallelism; cancellation and per-job deadlines behave as in
// Sweep.RunContext, and any job failure (including cancellation) fails
// the whole figure batch.
func RunFigureSpecsContext(ctx context.Context, specs []FigureSpec, cfg SweepConfig) ([]*FigureSet, error) {
	var all Sweep
	all.Name = "figures"
	for _, sp := range specs {
		for _, j := range sp.Sweep.Jobs {
			// Keep the per-figure sweep name in the label so progress
			// lines and job errors say which figure (and MSHR size) a
			// repeated bar name like "stash" belongs to.
			if sp.Sweep.Name != "" {
				j.Label = sp.Sweep.Name + ": " + j.Label
			}
			all.Jobs = append(all.Jobs, j)
		}
	}
	results, err := all.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]*FigureSet, len(specs))
	i := 0
	for si, sp := range specs {
		fs := &FigureSet{ID: sp.ID, Title: sp.Title, Baseline: sp.Baseline}
		for range sp.Sweep.Jobs {
			bar := ""
			if sp.BarName != nil {
				bar = sp.BarName(results[i].Report)
			}
			fs.addNamed(results[i].Report, bar)
			i++
		}
		out[si] = fs
	}
	return out, nil
}

// Figure61Spec declares figure 6.1: UTS under GPU coherence vs DeNovo.
func Figure61Spec(sc Scale) FigureSpec {
	return FigureSpec{
		ID: "6.1", Title: "UTS, GPU coherence vs DeNovo", Baseline: GPUCoherence.String(),
		Sweep: Grid{
			Name:      "figure 6.1",
			Protocols: []Protocol{GPUCoherence, DeNovo},
			Workload: func(ax Axes) Workload {
				return NewUTSWith(UTS{Seed: 0xC0FFEE, Nodes: sc.UTSNodes, FrontierMin: sc.FrontierMin,
					Blocks: 15, WarpsPerBlock: 8, Work: 8, FMAs: 4})
			},
		}.Sweep(),
	}
}

// Figure61 reproduces figure 6.1: UTS under GPU coherence vs DeNovo
// (execution dominated by synchronization stalls; remote-L1 data stalls and
// pending-release structural stalls appear under DeNovo).
func Figure61(sc Scale) (*FigureSet, error) {
	return Figure61Spec(sc).Run(SweepConfig{Parallel: 1})
}

// Figure62Spec declares figure 6.2: UTSD under both protocols.
func Figure62Spec(sc Scale) FigureSpec {
	return FigureSpec{
		ID: "6.2", Title: "UTSD, GPU coherence vs DeNovo", Baseline: GPUCoherence.String(),
		Sweep: Grid{
			Name:      "figure 6.2",
			Protocols: []Protocol{GPUCoherence, DeNovo},
			Workload: func(ax Axes) Workload {
				return NewUTSDWith(UTSD{Seed: 0xC0FFEE, Nodes: sc.UTSDNodes, FrontierMin: sc.FrontierMin,
					Blocks: 15, WarpsPerBlock: 8, Work: 8, FMAs: 4, LQCap: 128})
			},
		}.Sweep(),
	}
}

// Figure62 reproduces figure 6.2: UTSD under both protocols (DeNovo cuts
// memory data stalls via the L2 component and memory structural stalls via
// pending release).
func Figure62(sc Scale) (*FigureSet, error) {
	return Figure62Spec(sc).Run(SweepConfig{Parallel: 1})
}

// ImplicitSystem returns the case-study-2 system: one SM with a 32-warp
// thread block (the paper's microbenchmark uses a single GPU core) and the
// given MSHR size; the store buffer scales with the MSHR as in the figure
// 6.4 sweep.
func ImplicitSystem(mshr int) SystemConfig { return implicitSystem(mshr) }

// implicitSystem is the case-study-2 system: one SM (the paper's
// microbenchmark uses a single GPU core).
func implicitSystem(mshr int) SystemConfig {
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	cfg.WarpsPerSM = 32
	cfg.MSHREntries = mshr
	// The sweep scales the store buffer with the MSHR "to prevent store
	// buffer stalls from becoming the new bottleneck" (section 6.2.4).
	cfg.StoreBufEntries = mshr
	return cfg
}

// Figure63Spec declares figure 6.3: the implicit microbenchmark on baseline
// scratchpad, scratchpad+DMA, and stash (all under DeNovo, 32-entry MSHR).
func Figure63Spec() FigureSpec {
	return FigureSpec{
		ID: "6.3", Title: "implicit microbenchmark, local-memory organizations",
		Baseline: Scratchpad.String(),
		Sweep:    implicitGrid("figure 6.3", 32).Sweep(),
	}
}

// Figure63 reproduces figure 6.3 serially through its spec.
func Figure63() (*FigureSet, error) {
	return Figure63Spec().Run(SweepConfig{Parallel: 1})
}

// implicitGrid is the case-study-2 grid at one MSHR size: all three
// local-memory organizations under DeNovo on the single-SM system.
func implicitGrid(name string, mshr int) Grid {
	return Grid{
		Name:      name,
		LocalMems: []LocalMem{Scratchpad, ScratchpadDMA, Stash},
		System:    implicitSystem(mshr),
		Workload:  func(ax Axes) Workload { return NewImplicit(ax.LocalMem) },
	}
}

// WorkloadGallerySpec declares the sparse/bursty workload gallery: the
// four post-paper workloads (BFS, SpMV, pipeline, GUPS) under DeNovo in
// the paper's three-sub-figure presentation, one bar per workload. It is
// not a paper figure — it is the cross-application comparison GSI's
// methodology exists for, extended to the stall sources the original
// suite does not reach (frontier atomics, indirect gathers, bursty idle
// phases, MSHR/coalescer pressure). Worker populations shrink with the
// scale so the SmallScale gallery stays cheap for the test suites.
func WorkloadGallerySpec(sc Scale) FigureSpec {
	small := sc.BFSVertices < 1000
	bfs := BFS{Seed: 0xB4B4, Vertices: sc.BFSVertices, AvgDeg: 4, Blocks: 15, WarpsPerBlock: 4}
	spmv := SpMV{Seed: 0x59A7, Rows: sc.SpMVRows, NnzPerRow: 8, Blocks: 15, WarpsPerBlock: 8}
	pipe := Pipeline{Seed: 0x9199, Rounds: sc.PipelineRounds, Chase: 64, Work: 24,
		Producers: 1, Consumers: 1, PermWords: 4096}
	gups := GUPS{Seed: 0x6095, Updates: sc.GUPSUpdates, WindowsPerWarp: 32,
		Blocks: 15, WarpsPerBlock: 4}
	if small {
		bfs.Blocks, bfs.WarpsPerBlock = 4, 2
		spmv.Blocks, spmv.WarpsPerBlock = 8, 4
		pipe.Chase, pipe.Work, pipe.PermWords = 24, 12, 1024
		gups.WindowsPerWarp, gups.Blocks = 8, 4
	}
	return FigureSpec{
		ID: "W", Title: "sparse/bursty workload gallery", Baseline: "BFS",
		BarName: func(r *Report) string { return r.Workload },
		Sweep: Grid{
			Name:      "workload gallery",
			Workloads: []string{"bfs", "spmv", "pipeline", "gups"},
			Workload: func(ax Axes) Workload {
				switch ax.Workload {
				case "bfs":
					return NewBFSWith(bfs)
				case "spmv":
					return NewSpMVWith(spmv)
				case "pipeline":
					return NewPipelineWith(pipe)
				default:
					return NewGUPSWith(gups)
				}
			},
			// No Options func: the default grid mapping applies each
			// registry entry's system-shaping hook, which is what puts
			// the pipeline point on its single-SM machine.
		}.Sweep(),
	}
}

// WorkloadGallery runs the gallery serially through its spec.
func WorkloadGallery(sc Scale) (*FigureSet, error) {
	return WorkloadGallerySpec(sc).Run(SweepConfig{Parallel: 1})
}

// PipelineSystem returns the pipeline workload's machine: the default
// system narrowed to one SM, so the idle stage's warps are the only other
// residents and the bursty phases are pure waits. It matches the registry
// entry's tuning for pipelines of up to WarpsPerSM total warps; larger
// stage populations should go through the registry's TuneSystem, which
// also widens WarpsPerSM to fit producers+consumers.
func PipelineSystem() SystemConfig {
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	return cfg
}

// Figure64Specs declares figure 6.4 (the MSHR sensitivity sweep) as one
// spec per MSHR size: each FigureSet groups the three local-memory bars at
// that size, the paper's presentation.
func Figure64Specs(sc Scale) []FigureSpec {
	specs := make([]FigureSpec, len(sc.MSHRSizes))
	for i, mshr := range sc.MSHRSizes {
		specs[i] = FigureSpec{
			ID:            fmt.Sprintf("6.4[mshr=%d]", mshr),
			Title:         fmt.Sprintf("implicit, %d-entry MSHR", mshr),
			Baseline:      Scratchpad.String(),
			BaselineGroup: "6.4",
			Sweep:         implicitGrid(fmt.Sprintf("figure 6.4 (mshr=%d)", mshr), mshr).Sweep(),
		}
	}
	return specs
}

// Figure64 reproduces figure 6.4: the MSHR sensitivity sweep. One FigureSet
// per MSHR size; normalize every set with Figure64Baseline (baseline
// scratchpad at the smallest MSHR), the paper's convention.
func Figure64(sc Scale) ([]*FigureSet, error) {
	return RunFigureSpecs(Figure64Specs(sc), SweepConfig{Parallel: 1})
}

// Figure64Baseline returns the common denominator (baseline scratchpad,
// first MSHR size) for normalizing a Figure64 sweep.
func Figure64Baseline(sets []*FigureSet) float64 {
	if len(sets) == 0 {
		return 0
	}
	for _, b := range sets[0].Exec.Bars {
		if b.Name == Scratchpad.String() {
			return b.Total()
		}
	}
	return 0
}
