package gsi

import (
	"fmt"
	"strings"

	"gsi/internal/stats"
)

// FigureSet is one reproduced figure: the three stacked-bar sub-figures of
// the paper's case studies ((a) execution-time breakdown, (b) memory data
// stall sub-classification, (c) memory structural sub-classification),
// with one bar per configuration.
type FigureSet struct {
	ID       string
	Title    string
	Baseline string // bar the paper normalizes to
	Exec     *stats.Group
	Data     *stats.Group
	Struct   *stats.Group
	Reports  []*Report
}

// add folds one run into the three groups.
func (fs *FigureSet) add(r *Report) {
	if fs.Exec == nil {
		fs.Exec = stats.NewGroup(fs.ID+"a: execution time breakdown", r.ExecBreakdown().Labels)
		fs.Data = stats.NewGroup(fs.ID+"b: memory data stall breakdown", r.MemDataBreakdown().Labels)
		fs.Struct = stats.NewGroup(fs.ID+"c: memory structural stall breakdown", r.MemStructBreakdown().Labels)
	}
	fs.Exec.Add(r.ExecBreakdown())
	fs.Data.Add(r.MemDataBreakdown())
	fs.Struct.Add(r.MemStructBreakdown())
	fs.Reports = append(fs.Reports, r)
}

// BaselineTotal returns the execution-time total of the baseline bar.
func (fs *FigureSet) BaselineTotal() float64 {
	for _, b := range fs.Exec.Bars {
		if b.Name == fs.Baseline {
			return b.Total()
		}
	}
	return 0
}

// Normalized returns the three sub-figures normalized to the baseline
// bar's execution-time total, the paper's convention ("normalized to GPU
// coherence" / "normalized to baseline scratchpad"): every sub-figure is
// divided by the same denominator so components remain comparable across
// sub-figures.
func (fs *FigureSet) Normalized() (exec, data, structural *stats.Group) {
	return fs.NormalizedTo(fs.BaselineTotal())
}

// NormalizedTo normalizes all three sub-figures by an explicit denominator
// (the MSHR sweep of figure 6.4 normalizes every set to the 32-entry
// scratchpad baseline).
func (fs *FigureSet) NormalizedTo(base float64) (exec, data, structural *stats.Group) {
	norm := func(g *stats.Group) *stats.Group {
		if base == 0 {
			return g
		}
		out := stats.NewGroup(g.Title+" (normalized)", g.Labels)
		for _, b := range g.Bars {
			out.Add(b.NormalizeTo(base))
		}
		return out
	}
	return norm(fs.Exec), norm(fs.Data), norm(fs.Struct)
}

// Render prints the normalized tables and charts for the whole figure.
func (fs *FigureSet) Render(width int) string {
	return fs.RenderTo(width, fs.BaselineTotal())
}

// RenderTo renders with an explicit normalization denominator.
func (fs *FigureSet) RenderTo(width int, base float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== Figure %s: %s (normalized to %s) ===\n", fs.ID, fs.Title, fs.Baseline)
	ne, nd, ns := fs.NormalizedTo(base)
	for _, g := range []*stats.Group{ne, nd, ns} {
		sb.WriteString(g.Table())
		sb.WriteString(g.Chart(width))
		sb.WriteString("\n")
	}
	return sb.String()
}

// Scale sizes the experiment workloads. Tests use small trees for speed;
// the benchmark harness uses the defaults.
type Scale struct {
	UTSNodes    int
	UTSDNodes   int
	FrontierMin int
	MSHRSizes   []int
}

// DefaultScale is the benchmark-harness sizing.
func DefaultScale() Scale {
	return Scale{UTSNodes: 1500, UTSDNodes: 1500, FrontierMin: 120, MSHRSizes: []int{32, 64, 128, 256}}
}

// SmallScale keeps unit-test runtimes low.
func SmallScale() Scale {
	return Scale{UTSNodes: 250, UTSDNodes: 250, FrontierMin: 60, MSHRSizes: []int{32, 256}}
}

// Figure61 reproduces figure 6.1: UTS under GPU coherence vs DeNovo
// (execution dominated by synchronization stalls; remote-L1 data stalls and
// pending-release structural stalls appear under DeNovo).
func Figure61(sc Scale) (*FigureSet, error) {
	fs := &FigureSet{ID: "6.1", Title: "UTS, GPU coherence vs DeNovo", Baseline: GPUCoherence.String()}
	for _, p := range []Protocol{GPUCoherence, DeNovo} {
		u := UTS{Seed: 0xC0FFEE, Nodes: sc.UTSNodes, FrontierMin: sc.FrontierMin,
			Blocks: 15, WarpsPerBlock: 8, Work: 8, FMAs: 4}
		rep, err := Run(Options{Protocol: p}, NewUTSWith(u))
		if err != nil {
			return nil, fmt.Errorf("figure 6.1 (%s): %w", p, err)
		}
		fs.add(rep)
	}
	return fs, nil
}

// Figure62 reproduces figure 6.2: UTSD under both protocols (DeNovo cuts
// memory data stalls via the L2 component and memory structural stalls via
// pending release).
func Figure62(sc Scale) (*FigureSet, error) {
	fs := &FigureSet{ID: "6.2", Title: "UTSD, GPU coherence vs DeNovo", Baseline: GPUCoherence.String()}
	for _, p := range []Protocol{GPUCoherence, DeNovo} {
		u := UTSD{Seed: 0xC0FFEE, Nodes: sc.UTSDNodes, FrontierMin: sc.FrontierMin,
			Blocks: 15, WarpsPerBlock: 8, Work: 8, FMAs: 4, LQCap: 128}
		rep, err := Run(Options{Protocol: p}, NewUTSDWith(u))
		if err != nil {
			return nil, fmt.Errorf("figure 6.2 (%s): %w", p, err)
		}
		fs.add(rep)
	}
	return fs, nil
}

// ImplicitSystem returns the case-study-2 system: one SM with a 32-warp
// thread block (the paper's microbenchmark uses a single GPU core) and the
// given MSHR size; the store buffer scales with the MSHR as in the figure
// 6.4 sweep.
func ImplicitSystem(mshr int) SystemConfig { return implicitSystem(mshr) }

// implicitSystem is the case-study-2 system: one SM (the paper's
// microbenchmark uses a single GPU core).
func implicitSystem(mshr int) SystemConfig {
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	cfg.WarpsPerSM = 32
	cfg.MSHREntries = mshr
	// The sweep scales the store buffer with the MSHR "to prevent store
	// buffer stalls from becoming the new bottleneck" (section 6.2.4).
	cfg.StoreBufEntries = mshr
	return cfg
}

// Figure63 reproduces figure 6.3: the implicit microbenchmark on baseline
// scratchpad, scratchpad+DMA, and stash (all under DeNovo, 32-entry MSHR).
func Figure63() (*FigureSet, error) {
	fs := &FigureSet{ID: "6.3", Title: "implicit microbenchmark, local-memory organizations",
		Baseline: Scratchpad.String()}
	for _, kind := range []LocalMem{Scratchpad, ScratchpadDMA, Stash} {
		rep, err := Run(Options{System: implicitSystem(32), Protocol: DeNovo}, NewImplicit(kind))
		if err != nil {
			return nil, fmt.Errorf("figure 6.3 (%s): %w", kind, err)
		}
		fs.add(rep)
	}
	return fs, nil
}

// Figure64 reproduces figure 6.4: the MSHR sensitivity sweep. One FigureSet
// per MSHR size; normalize every set with Figure64Baseline (baseline
// scratchpad at the smallest MSHR), the paper's convention.
func Figure64(sc Scale) ([]*FigureSet, error) {
	var out []*FigureSet
	for _, mshr := range sc.MSHRSizes {
		fs := &FigureSet{
			ID:       fmt.Sprintf("6.4[mshr=%d]", mshr),
			Title:    fmt.Sprintf("implicit, %d-entry MSHR", mshr),
			Baseline: Scratchpad.String(),
		}
		for _, kind := range []LocalMem{Scratchpad, ScratchpadDMA, Stash} {
			rep, err := Run(Options{System: implicitSystem(mshr), Protocol: DeNovo}, NewImplicit(kind))
			if err != nil {
				return nil, fmt.Errorf("figure 6.4 (%s, mshr=%d): %w", kind, mshr, err)
			}
			fs.add(rep)
		}
		out = append(out, fs)
	}
	return out, nil
}

// Figure64Baseline returns the common denominator (baseline scratchpad,
// first MSHR size) for normalizing a Figure64 sweep.
func Figure64Baseline(sets []*FigureSet) float64 {
	if len(sets) == 0 {
		return 0
	}
	for _, b := range sets[0].Exec.Bars {
		if b.Name == Scratchpad.String() {
			return b.Total()
		}
	}
	return 0
}
