// Quickstart: run one workload on the simulated tightly coupled CPU-GPU
// system and print its GSI stall profile.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gsi"
)

func main() {
	// ImplicitSystem is the Table 5.1 machine narrowed to case study
	// 2's shape: one SM, a 32-warp block, 32-entry MSHR and store
	// buffer.
	cfg := gsi.ImplicitSystem(32)

	rep, err := gsi.Run(
		gsi.Options{System: cfg, Protocol: gsi.DeNovo, Timeline: true},
		gsi.NewImplicit(gsi.Scratchpad),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The report carries the classified execution-time breakdown plus
	// GSI's two memory sub-classifications and the stall timeline.
	fmt.Print(rep.Summary())
	fmt.Print(rep.Timeline)

	fmt.Printf("\nkernel ran %d cycles; %.1f%% of cycles issued no instruction\n",
		rep.Cycles,
		100*(1-float64(rep.Counts.Cycles[0])/float64(rep.Counts.Total())))
}
