// bfs-sweep: run level-synchronized BFS across both coherence protocols
// and a range of graph densities, and compare where the cycles go. Denser
// graphs shift work from the level barriers (synchronization stalls, paid
// at the global generation word) toward the neighbor gathers (memory data
// stalls scattered across the L2 banks and DRAM).
//
//	go run ./examples/bfs-sweep
package main

import (
	"fmt"
	"log"

	"gsi"
	"gsi/internal/stats"
)

func main() {
	degrees := []int{2, 4, 8}

	var sweep gsi.Sweep
	sweep.Name = "bfs density sweep"
	for _, deg := range degrees {
		for _, proto := range []gsi.Protocol{gsi.GPUCoherence, gsi.DeNovo} {
			deg, proto := deg, proto
			sweep.Add(
				fmt.Sprintf("deg=%d %s", deg, proto),
				gsi.Options{Protocol: proto},
				func() gsi.Workload {
					p := gsi.BFS{Seed: 0xB4B4, Vertices: 1500, AvgDeg: deg,
						Blocks: 15, WarpsPerBlock: 4}
					return gsi.NewBFSWith(p)
				},
			)
		}
	}

	results, err := sweep.Run(gsi.SweepConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("BFS, 1500 vertices, 15 SMs x 4 warps: stall mix vs graph density")
	fmt.Printf("%-22s %10s %8s %8s %8s\n", "config", "cycles", "sync%", "mem%", "idle%")
	for _, res := range results {
		r := res.Report
		total := float64(r.Counts.Total())
		pct := func(v uint64) float64 { return 100 * float64(v) / total }
		fmt.Printf("%-22s %10d %7.1f%% %7.1f%% %7.1f%%\n",
			res.Job.Label, r.Cycles,
			pct(r.Counts.Cycles[gsi.Sync]),
			pct(r.Counts.Cycles[gsi.MemData]+r.Counts.Cycles[gsi.MemStructural]),
			pct(r.Counts.Cycles[gsi.Idle]))
	}

	// The registry drives the same workload by name — this is what both
	// CLIs and the sweep Grid's Workloads axis use.
	entry, _ := gsi.Workloads().Lookup("bfs")
	w, err := entry.Build(gsi.WorkloadValues{"vertices": "1500", "avgdeg": "8"})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := gsi.Run(gsi.Options{Protocol: gsi.DeNovo}, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregistry-built bfs (deg=8, DeNovo): %d cycles\n", rep.Cycles)
	b := rep.ExecBreakdown()
	g := stats.NewGroup(b.Name, b.Labels)
	g.Add(b)
	fmt.Print(g.Chart(60))
}
