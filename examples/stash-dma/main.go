// Case study 2 (section 6.2 of the paper): compare the baseline
// scratchpad, scratchpad+DMA, and stash on the implicit streaming
// microbenchmark, reproducing the figure 6.3 breakdowns.
//
//	go run ./examples/stash-dma
package main

import (
	"fmt"
	"log"

	"gsi"
)

func main() {
	fs, err := gsi.Figure63()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fs.Render(64))

	base := fs.Reports[0]
	fmt.Printf("%-16s %10s %12s %14s\n", "config", "cycles", "instructions", "mem structural")
	for _, r := range fs.Reports {
		fmt.Printf("%-16s %10d %12d %14d\n",
			r.Workload, r.Cycles, r.InstrsIssued, r.Counts.Cycles[gsi.MemStructural])
	}
	for _, r := range fs.Reports[1:] {
		fmt.Printf("\n%s: %.0f%% fewer instructions than the explicit scratchpad copy loops",
			r.Workload, 100*(1-float64(r.InstrsIssued)/float64(base.InstrsIssued)))
	}
	fmt.Println()
}
