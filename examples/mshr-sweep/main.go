// MSHR sensitivity sweep (section 6.2.4, figure 6.4): run the implicit
// microbenchmark on all three local-memory organizations while growing the
// MSHR (and store buffer) from 32 to 512 entries, and show how eliminating
// full-MSHR stalls surfaces the next bottleneck of each organization.
//
//	go run ./examples/mshr-sweep
package main

import (
	"fmt"
	"log"

	"gsi"
)

func main() {
	sc := gsi.DefaultScale() // MSHR sizes 32 to 512
	// Batch all twelve runs through the worker pool (Parallel 0 = all
	// cores); results are identical to the serial gsi.Figure64.
	sets, err := gsi.RunFigureSpecs(gsi.Figure64Specs(sc), gsi.SweepConfig{})
	if err != nil {
		log.Fatal(err)
	}
	base := gsi.Figure64Baseline(sets)

	fmt.Printf("%-8s %-16s %10s %10s %10s %12s\n",
		"MSHR", "config", "exec", "MSHR-full", "pend. DMA", "mem data")
	for i, fs := range sets {
		for _, r := range fs.Reports {
			fmt.Printf("%-8d %-16s %10.3f %10d %10d %12d\n",
				sc.MSHRSizes[i], r.Workload,
				float64(r.Counts.Total())/base,
				r.Counts.MemStruct[gsi.StructMSHRFull],
				r.Counts.MemStruct[gsi.StructPendingDMA],
				r.Counts.Cycles[gsi.MemData])
		}
	}
	fmt.Println("\nexec is normalized to baseline scratchpad with a 32-entry MSHR, as in figure 6.4")

	first, last := sets[0], sets[len(sets)-1]
	for i := range first.Reports {
		s, b := first.Reports[i], last.Reports[i]
		fmt.Printf("%-16s: growing the MSHR %dx changes execution time by %+.0f%%\n",
			s.Workload, sc.MSHRSizes[len(sc.MSHRSizes)-1]/sc.MSHRSizes[0],
			100*(float64(b.Counts.Total())/float64(s.Counts.Total())-1))
	}
}
