// Case study 1 (sections 6.1 of the paper): compare GPU coherence against
// DeNovo on unbalanced tree search, with both the single-global-queue (UTS)
// and decentralized (UTSD) variants, and print the stall breakdowns that
// explain the difference.
//
//	go run ./examples/coherence-compare [-nodes 1500]
package main

import (
	"flag"
	"fmt"
	"log"

	"gsi"
)

func main() {
	nodes := flag.Int("nodes", 800, "tree size")
	flag.Parse()

	sc := gsi.Scale{UTSNodes: *nodes, UTSDNodes: *nodes, FrontierMin: 120}

	fmt.Println("--- UTS: one global task queue, one lock ---")
	f61, err := gsi.Figure61(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(f61.Render(64))

	fmt.Println("--- UTSD: per-SM local queues + global overflow queue ---")
	f62, err := gsi.Figure62(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(f62.Render(64))

	for i, p := range []gsi.Protocol{gsi.GPUCoherence, gsi.DeNovo} {
		uts, utsd := f61.Reports[i].Cycles, f62.Reports[i].Cycles
		fmt.Printf("%-14s: decentralizing the queue cuts execution time by %.0f%% (%d -> %d cycles)\n",
			p, 100*(1-float64(utsd)/float64(uts)), uts, utsd)
	}
	gpuRep, dnvRep := f62.Reports[0], f62.Reports[1]
	fmt.Printf("UTSD under DeNovo: %.0f%% fewer cycles than GPU coherence\n",
		100*(1-float64(dnvRep.Cycles)/float64(gpuRep.Cycles)))
	fmt.Printf("ownership at work: %d remote L1 reads served, %d free (already-owned) release flushes\n",
		dnvRep.Mem.RemoteServed, dnvRep.Mem.FlushNoops)
}
