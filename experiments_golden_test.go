package gsi

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the golden figures:
//
//	go test -run TestGoldenFigures -update
//
// Golden files pin the rendered SmallScale figures so timing-model changes
// show up as reviewable diffs instead of silent drift. A failure here is
// not necessarily a bug — if the change to the breakdown is intended and
// the shape tests still pass, regenerate and review the diff.
var update = flag.Bool("update", false, "rewrite golden figure files")

const goldenWidth = 64

// goldenFigures renders every figure at SmallScale exactly as the CLI
// does: each figure normalized to its own baseline, the 6.4 sweep to the
// shared small-MSHR scratchpad baseline.
func goldenFigures(t *testing.T) map[string]string {
	t.Helper()
	sc := SmallScale()
	specs := []FigureSpec{Figure61Spec(sc), Figure62Spec(sc), Figure63Spec(), WorkloadGallerySpec(sc)}
	specs = append(specs, Figure64Specs(sc)...)
	sets, err := RunFigureSpecs(specs, SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bases := RenderBases(specs, sets)
	out := make(map[string]string)
	for i, fs := range sets {
		name := strings.NewReplacer("[", "_", "]", "", "=", "").Replace("figure" + fs.ID)
		out[name+".golden"] = fs.RenderTo(goldenWidth, bases[i])
	}
	return out
}

func TestGoldenFigures(t *testing.T) {
	for name, got := range goldenFigures(t) {
		path := filepath.Join("testdata", name)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run `go test -run TestGoldenFigures -update` to create golden files)", err)
		}
		if got != string(want) {
			t.Errorf("%s drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s\n"+
				"If the change is intended, regenerate with -update and review the diff.",
				name, got, want)
		}
	}
}
