package gsi

import (
	"bytes"
	"testing"
)

// figureSpecsEngine returns every figure spec at small scale with the given
// scheduling engine forced on each job. Jobs whose System is zero resolve
// to DefaultConfig through withDefaults, so the switch is applied to the
// resolved config.
func figureSpecsEngine(mode EngineMode) []FigureSpec {
	sc := SmallScale()
	specs := []FigureSpec{Figure61Spec(sc), Figure62Spec(sc), Figure63Spec(), WorkloadGallerySpec(sc)}
	specs = append(specs, Figure64Specs(sc)...)
	for si := range specs {
		for ji := range specs[si].Sweep.Jobs {
			o := &specs[si].Sweep.Jobs[ji].Options
			*o = o.withDefaults()
			o.System.Engine = mode
			if mode == EngineParallel {
				// Force a real worker pool even on a single-core host so
				// the concurrent group phase and commit path are exercised,
				// not the serial-inline fallback.
				o.System.Parallel = 4
			}
		}
	}
	return specs
}

// TestEnginesByteIdentical is the cross-engine determinism contract: for
// every figure spec, the dense reference loop, the quiescence-aware loop,
// the event-driven skip-ahead engine, and the parallel tick engine (four
// workers) must produce byte-identical reports — same cycles, same stall
// counts, same memory statistics, same JSON.
func TestEnginesByteIdentical(t *testing.T) {
	type engineRun struct {
		mode EngineMode
		sets []*FigureSet
		json [][]byte
	}
	runs := []*engineRun{
		{mode: EngineDense},
		{mode: EngineQuiescent},
		{mode: EngineSkip},
		{mode: EngineParallel},
	}
	for _, r := range runs {
		sets, err := RunFigureSpecs(figureSpecsEngine(r.mode), SweepConfig{})
		if err != nil {
			t.Fatalf("%s engine: %v", r.mode, err)
		}
		r.sets = sets
		r.json = make([][]byte, len(sets))
		for i, fs := range sets {
			doc, err := fs.JSON()
			if err != nil {
				t.Fatal(err)
			}
			r.json[i] = doc
		}
	}
	ref := runs[0]
	for _, r := range runs[1:] {
		if len(r.sets) != len(ref.sets) {
			t.Fatalf("%s vs %s: set counts differ: %d vs %d",
				r.mode, ref.mode, len(r.sets), len(ref.sets))
		}
		for i := range ref.sets {
			if !bytes.Equal(r.json[i], ref.json[i]) {
				rd, dd := diffLine(r.json[i], ref.json[i])
				t.Errorf("figure %s diverges between %s and %s engines:\n %s: %s\n %s: %s",
					ref.sets[i].ID, r.mode, ref.mode, r.mode, rd, ref.mode, dd)
			}
		}
	}
}

// diffLine returns the first differing line of two documents.
func diffLine(a, b []byte) (string, string) {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return string(al[i]), string(bl[i])
		}
	}
	return "<prefix>", "<prefix>"
}

// TestEnginesIdenticalWithTimeline pins the bulk span-crediting paths: with
// the per-SM timeline enabled (the collector most sensitive to when cycles
// are recorded), a 15-SM run whose SMs drain at different times must render
// identically whether cycles were observed one at a time (dense), idle
// tails were credited as one span at the end (quiescent), or whole stall
// windows were credited per jump (skip-ahead).
func TestEnginesIdenticalWithTimeline(t *testing.T) {
	w := NewUTSDWith(UTSD{Seed: 0xC0FFEE, Nodes: 120, FrontierMin: 40,
		Blocks: 15, WarpsPerBlock: 8, Work: 8, FMAs: 4, LQCap: 128})
	run := func(mode EngineMode) *Report {
		opt := Options{Protocol: DeNovo, Timeline: true}
		opt.System = DefaultConfig()
		opt.System.Engine = mode
		if mode == EngineParallel {
			opt.System.Parallel = 4
		}
		rep, err := Run(opt, w)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	d := run(EngineDense)
	for _, mode := range []EngineMode{EngineQuiescent, EngineSkip, EngineParallel} {
		q := run(mode)
		if q.Timeline != d.Timeline {
			t.Errorf("%s: timelines diverge:\n--- %s ---\n%s\n--- dense ---\n%s",
				mode, mode, q.Timeline, d.Timeline)
		}
		if q.Cycles != d.Cycles {
			t.Errorf("%s: cycles diverge: %d vs %d", mode, q.Cycles, d.Cycles)
		}
		if q.Counts != d.Counts {
			t.Errorf("%s: counts diverge:\n%+v\nvs\n%+v", mode, q.Counts, d.Counts)
		}
	}
}

// TestEnginesByteIdenticalWithTrace extends the cross-engine contract to
// the observability layer: with a trace collector attached — every
// Inspector classification, engine jump, parallel phase sample, and mesh
// express event flowing into it — each of the four engine modes must
// still produce the byte-identical JSON report an untraced dense run
// does. Tracing is observation only; any hook that perturbs simulation
// state diverges here.
func TestEnginesByteIdenticalWithTrace(t *testing.T) {
	w := NewUTSDWith(UTSD{Seed: 0xC0FFEE, Nodes: 120, FrontierMin: 40,
		Blocks: 15, WarpsPerBlock: 8, Work: 8, FMAs: 4, LQCap: 128})
	run := func(mode EngineMode, tr *Trace) *Report {
		opt := Options{Protocol: DeNovo, Trace: tr}
		opt.System = DefaultConfig()
		opt.System.Engine = mode
		if mode == EngineParallel {
			opt.System.Parallel = 4
		}
		rep, err := Run(opt, w)
		if err != nil {
			t.Fatalf("%s engine: %v", mode, err)
		}
		return rep
	}
	dj, err := run(EngineDense, nil).JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []EngineMode{EngineDense, EngineQuiescent, EngineSkip, EngineParallel} {
		tr := NewTrace()
		rj, err := run(mode, tr).JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rj, dj) {
			a, b := diffLine(rj, dj)
			t.Errorf("traced %s diverges from untraced dense:\n %s: %s\n dense: %s", mode, mode, a, b)
		}
		if tr.NumSMs() == 0 || tr.EndCycle() == 0 {
			t.Errorf("traced %s run collected nothing (sms=%d end=%d)", mode, tr.NumSMs(), tr.EndCycle())
		}
		var spans int
		for sm := 0; sm < tr.NumSMs(); sm++ {
			spans += len(tr.Spans(sm))
		}
		if spans == 0 {
			t.Errorf("traced %s run recorded no stall spans", mode)
		}
	}
}

// TestNextEventWorkloadPool is the full-system analog of the sim package's
// NextEvent property test: every workload in the registry — the pool now
// includes BFS's global barriers, SpMV's gathers, the pipeline's bursty
// idle phases, and GUPS's MSHR saturation — runs at SmallScale under the
// skip-ahead engine and must produce the byte-identical JSON report the
// dense reference loop does. Any component under-promising on any of
// these access patterns diverges here. The skip engine runs twice, with
// mesh express routing on and off, so an express-timing bug is isolated
// from a skip-planning bug: express-off skip diverging blames the
// planner, express-on alone diverging blames the express path.
func TestNextEventWorkloadPool(t *testing.T) {
	reg := Workloads()
	for _, name := range reg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			e, _ := reg.Lookup(name)
			run := func(mode EngineMode, express bool) *Report {
				w, err := e.BuildSmall(nil)
				if err != nil {
					t.Fatal(err)
				}
				opt := Options{Protocol: DeNovo}
				opt.System = DefaultConfig()
				cfg, err := e.TuneSystem(true, nil, opt.System)
				if err != nil {
					t.Fatal(err)
				}
				opt.System = cfg
				opt.System.Engine = mode
				opt.System.Express = express
				if mode == EngineParallel {
					opt.System.Parallel = 4
				}
				rep, err := Run(opt, w)
				if err != nil {
					t.Fatalf("%s engine: %v", mode, err)
				}
				return rep
			}
			dense := run(EngineDense, false)
			dj, err := dense.JSON()
			if err != nil {
				t.Fatal(err)
			}
			variants := []struct {
				label   string
				mode    EngineMode
				express bool
			}{
				{"quiescent", EngineQuiescent, true},
				{"skip", EngineSkip, true},
				{"skip/no-express", EngineSkip, false},
				{"parallel", EngineParallel, true},
			}
			for _, v := range variants {
				rep := run(v.mode, v.express)
				rj, err := rep.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(rj, dj) {
					a, b := diffLine(rj, dj)
					t.Errorf("%s diverges from dense:\n %s: %s\n dense: %s", v.label, v.label, a, b)
				}
			}
		})
	}
}

// TestSkipAheadActuallyJumps guards the point of the skip-ahead engine: on
// a latency-dominated configuration (large MSHR, so structural stalls
// vanish and warps mostly wait on memory), the engine must take jumps and
// skip a substantial share of the simulated cycles — while producing the
// exact same report the dense loop does (covered by the diff tests above).
func TestSkipAheadActuallyJumps(t *testing.T) {
	rep, err := Run(Options{System: latencyBoundSystem(170), Protocol: DeNovo}, latencyBoundWorkload())
	if err != nil {
		t.Fatal(err)
	}
	st := rep.EngineStats
	if st.Jumps == 0 {
		t.Fatalf("skip-ahead engine took no jumps on a latency-dominated run (%d cycles)", rep.Cycles)
	}
	if st.SkippedCycles == 0 || st.Steps+st.SkippedCycles == 0 {
		t.Fatalf("no cycles skipped: stats %+v", st)
	}
	frac := float64(st.SkippedCycles) / float64(st.Steps+st.SkippedCycles)
	if frac < 0.2 {
		t.Errorf("skip-ahead skipped only %.1f%% of %d cycles on a high-MSHR run; expected a latency-dominated workload to jump most of its waiting",
			frac*100, rep.Cycles)
	}
	// The jump-width histogram partitions the jumps: every jump lands in
	// exactly one width bucket.
	var histTotal uint64
	for _, n := range st.JumpHist {
		histTotal += n
	}
	if histTotal != st.Jumps {
		t.Errorf("jump-width histogram sums to %d, want Jumps=%d (%+v)", histTotal, st.Jumps, st.JumpHist)
	}
	// The jumps must not have changed anything: the same configuration on
	// the dense loop produces the identical report.
	sys := latencyBoundSystem(170)
	sys.Engine = EngineDense
	dense, err := Run(Options{System: sys, Protocol: DeNovo}, latencyBoundWorkload())
	if err != nil {
		t.Fatal(err)
	}
	sj, _ := rep.JSON()
	dj, _ := dense.JSON()
	if !bytes.Equal(sj, dj) {
		a, b := diffLine(sj, dj)
		t.Errorf("latency-bound config diverges between skip and dense:\n skip:  %s\n dense: %s", a, b)
	}
}
